package cypher

// End-to-end tests for the slotted row runtime: differential runs of the
// engine (serial and morsel-parallel) against the literal reference
// semantics, byte-identical ordered output across worker counts, and a race
// hammer that drives the pooled uniqueness sets and reused row buffers from
// many goroutines at once (meaningful under `go test -race`).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/parser"
	"repro/internal/refsem"
	"repro/internal/result"
)

// slottedCorpus is a read-only corpus within the fragment the reference
// semantics covers (MATCH / OPTIONAL MATCH / WHERE / WITH / UNWIND / RETURN
// with aggregation, ORDER BY, SKIP, LIMIT, UNION), chosen to stress every
// borrowed-row operator: scans, single- and multi-hop expands, uniqueness
// sets, var-length paths, projection shadowing, DISTINCT, and scope cuts.
var slottedCorpus = []string{
	"MATCH (r:Researcher) RETURN r.name AS name ORDER BY name",
	"MATCH (a)--(b) RETURN a.name AS a, b.name AS b",
	"MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) RETURN r.name AS name, count(p) AS pubs ORDER BY pubs DESC, name",
	"MATCH (a:Researcher)-[:AUTHORS]->(p)<-[:AUTHORS]-(b:Researcher) RETURN a.name AS a, b.name AS b",
	"MATCH (p1:Publication)<-[:CITES*1..3]-(p2:Publication) RETURN p1.title AS cited, count(*) AS paths ORDER BY paths DESC, cited LIMIT 10",
	"MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN r.name AS name, count(s) AS students ORDER BY name",
	"MATCH (r:Researcher) WITH r.name AS name WHERE name STARTS WITH 'A' RETURN name ORDER BY name",
	"MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN DISTINCT r.name AS name ORDER BY name",
	"UNWIND [3, 1, 2, 1] AS x RETURN x ORDER BY x SKIP 1 LIMIT 2",
	"MATCH (r:Researcher) RETURN r.name AS n UNION MATCH (s:Student) RETURN s.name AS n",
}

// TestSlottedDifferentialEngineVsRefsem runs the corpus through the slotted
// engine at 1, 4 and 8 workers and through the reference semantics, and
// requires: (a) all engine runs byte-identical to each other, (b) the same
// bag of rows as the reference.
func TestSlottedDifferentialEngineVsRefsem(t *testing.T) {
	store, _ := datasets.Citations()
	engines := map[int]*Graph{}
	for _, workers := range []int{1, 4, 8} {
		engines[workers] = Wrap(store, Options{Parallelism: workers, MorselSize: 4})
	}
	for _, q := range slottedCorpus {
		serial := engines[1].MustRun(q, nil)
		for _, workers := range []int{4, 8} {
			got := engines[workers].MustRun(q, nil)
			if got.String() != serial.String() {
				t.Errorf("parallelism=%d diverged from serial for %s\nserial:\n%s\nparallel:\n%s",
					workers, q, serial.String(), got.String())
			}
		}
		parsed, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		want, err := refsem.Evaluate(parsed, store, nil)
		if err != nil {
			t.Fatalf("refsem %s: %v", q, err)
		}
		if !result.EqualAsBags(serial.inner.Table, want) {
			t.Errorf("engine disagrees with the reference semantics for %s\nengine:\n%s\nreference:\n%s",
				q, serial.String(), want.String())
		}
	}
}

// TestPooledRowsRaceHammer runs uniqueness-set-heavy queries (multi-hop
// expands and var-length paths pull id sets from the shared pool on every
// row) concurrently on serial and parallel engines over one store, checking
// every iteration's output against a precomputed answer. Under -race this
// verifies the pools and reused row buffers never leak state across
// goroutines; without -race it still catches cross-query contamination,
// because a dirty pooled set changes uniqueness filtering and therefore row
// counts.
func TestPooledRowsRaceHammer(t *testing.T) {
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 400, FriendsEach: 4, Seed: 9})
	serial := Wrap(store, Options{})
	parallel := Wrap(store, Options{Parallelism: 4, MorselSize: 32})
	queries := []string{
		"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN count(*) AS c",
		"MATCH (a:Person)-[:KNOWS*1..2]->(b) RETURN count(*) AS c",
		"MATCH (a:Person)-[:KNOWS]->(b) WHERE a.age < b.age RETURN count(*) AS c",
		"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(a2) RETURN count(a2) AS c",
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = serial.MustRun(q, nil).String()
		if got := parallel.MustRun(q, nil).String(); got != want[i] {
			t.Fatalf("parallel warm-up diverged for %s", q)
		}
	}
	const goroutines = 8
	const iterations = 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			eng := serial
			if gi%2 == 1 {
				eng = parallel
			}
			for i := 0; i < iterations; i++ {
				qi := (gi + i) % len(queries)
				res, err := eng.Run(queries[qi], nil)
				if err != nil {
					errCh <- err
					return
				}
				if res.String() != want[qi] {
					errCh <- fmt.Errorf("goroutine %d iteration %d: %s returned\n%s\nwant\n%s",
						gi, i, queries[qi], res.String(), want[qi])
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestSlottedTCKUnderParallelism re-runs every built-in TCK scenario's query
// shape indirectly: the tck package runs each scenario on a fresh serial
// engine, and this test asserts the parallel engine agrees on a
// representative mutating-and-reading sequence (mutating queries always take
// the serial path, so the interesting property is that reads planned with
// slots behave identically before and after mutations).
func TestSlottedTCKUnderParallelism(t *testing.T) {
	g := NewWithOptions(Options{Parallelism: 4, MorselSize: 8})
	for i := 0; i < 100; i++ {
		g.MustRun("CREATE (:P {i: $i, grp: $g})", map[string]any{"i": i, "g": i % 7})
	}
	g.MustRun("MATCH (a:P {i: 0}), (b:P {i: 1}) CREATE (a)-[:L]->(b)", nil)
	res := g.MustRun("MATCH (p:P) RETURN p.grp AS grp, count(*) AS c ORDER BY grp", nil)
	if res.Len() != 7 {
		t.Fatalf("expected 7 groups, got %d", res.Len())
	}
	// grp 3 holds the 14 nodes with i ≡ 3 (mod 7); deleting them leaves 86.
	g.MustRun("MATCH (p:P {grp: 3}) DETACH DELETE p", nil)
	res = g.MustRun("MATCH (p:P) RETURN count(*) AS c", nil)
	if got := res.Records()[0]["c"]; got != int64(86) {
		t.Fatalf("count after delete = %v, want 86", got)
	}
	// The deleted group's label index bucket is gone; scans rebuild cleanly.
	res = g.MustRun("MATCH (p:P) RETURN p.grp AS grp, count(*) AS c ORDER BY grp", nil)
	if res.Len() != 6 {
		t.Fatalf("expected 6 groups after delete, got %d", res.Len())
	}
}
