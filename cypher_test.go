package cypher

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := New()
	g.MustRun("CREATE (:Person {name: 'Ada'})-[:KNOWS {since: 1842}]->(:Person {name: 'Grace'})", nil)
	res, err := g.Run("MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN a.name AS from, b.name AS to, k.since AS since", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 3 || got[0] != "from" {
		t.Fatalf("columns = %v", got)
	}
	recs := res.Records()
	if len(recs) != 1 || recs[0]["from"] != "Ada" || recs[0]["to"] != "Grace" || recs[0]["since"] != int64(1842) {
		t.Fatalf("records = %v", recs)
	}
	if !res.ReadOnly() {
		t.Errorf("MATCH should be read-only")
	}
	if res.Plan() == "" {
		t.Errorf("plan should be recorded")
	}
	if !strings.Contains(res.String(), "from") {
		t.Errorf("String rendering should include the header")
	}
	s := g.Stats()
	if s.Nodes != 2 || s.Relationships != 1 || s.Labels["Person"] != 2 || s.Types["KNOWS"] != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPublicAPIParametersAndEntities(t *testing.T) {
	g := New()
	g.MustRun("UNWIND $people AS p CREATE (:Person {name: p.name, age: p.age})", map[string]any{
		"people": []any{
			map[string]any{"name": "Ann", "age": 31},
			map[string]any{"name": "Bo", "age": 25},
		},
	})
	res, err := g.Run("MATCH (p:Person) WHERE p.age > $min RETURN p ORDER BY p.name", map[string]any{"min": 30})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	node, ok := rows[0][0].(Node)
	if !ok {
		t.Fatalf("expected a Node, got %T", rows[0][0])
	}
	if node.Property("name").String() != "'Ann'" || !node.HasLabel("Person") {
		t.Errorf("node view wrong: %v", node)
	}
	vals := res.Values()
	if len(vals) != 1 || vals[0][0].Kind().String() != "NODE" {
		t.Errorf("Values() wrong: %v", vals)
	}
}

func TestPublicAPIErrorsAndExplain(t *testing.T) {
	g := New()
	if _, err := g.Run("MATCH (n) RETURN missing", nil); err == nil {
		t.Errorf("unknown variable should surface as an error")
	}
	if _, err := g.Run("THIS IS NOT CYPHER", nil); err == nil {
		t.Errorf("syntax errors should surface")
	}
	g.CreateIndex("Person", "name")
	g.MustRun("CREATE (:Person {name: 'X'})", nil)
	plan, err := g.Explain("MATCH (p:Person {name: 'X'}) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeIndexSeek") {
		t.Errorf("plan should use the declared index:\n%s", plan)
	}
}

func TestPublicAPIMorphismOption(t *testing.T) {
	g := NewWithOptions(Options{Name: "social", Morphism: Homomorphism, MaxVarLengthDepth: 4})
	g.MustRun("CREATE (a:P)-[:R]->(a)", nil)
	res := g.MustRun("MATCH (x)-[*1..]->(x) RETURN count(*) AS c", nil)
	if res.Records()[0]["c"] != int64(4) {
		t.Errorf("homomorphism with depth cap 4 should yield 4 matches, got %v", res.Records()[0]["c"])
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustRun should panic on error")
		}
	}()
	New().MustRun("NOT A QUERY", nil)
}
