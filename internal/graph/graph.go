// Package graph implements the property graph data model of Section 4.1 of
// the Cypher paper: a graph G = (N, R, src, tgt, iota, lambda, tau) of nodes
// and relationships with properties, node labels and relationship types.
//
// The store is an in-memory, native-adjacency representation: every node
// holds direct references to its incident relationships, so the Expand
// operator of the execution engine never needs an index to find related
// nodes (the property the paper highlights for Neo4j's storage layout).
// Label and relationship-type indexes and simple statistics support the
// planner's scan selection and cost model.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Direction selects which relationships of a node to traverse.
type Direction int

// Traversal directions.
const (
	// Outgoing follows relationships whose source is the node.
	Outgoing Direction = iota
	// Incoming follows relationships whose target is the node.
	Incoming
	// Both follows relationships regardless of direction.
	Both
)

// String returns a readable name for the direction.
func (d Direction) String() string {
	switch d {
	case Outgoing:
		return "OUTGOING"
	case Incoming:
		return "INCOMING"
	default:
		return "BOTH"
	}
}

// Node is a property graph node: an identifier, a set of labels lambda(n) and
// a property map iota(n, .). Nodes also hold their incident relationships
// (index-free adjacency), both as flat slices in creation order and bucketed
// by relationship type, so a type-filtered traversal walks exactly the
// relationships of that type without comparing type strings per edge.
type Node struct {
	id     int64
	graph  *Graph
	labels []string // sorted
	props  map[string]value.Value
	out    []*Relationship
	in     []*Relationship
	// outByType/inByType bucket the same relationships by type, preserving
	// the relative order of the flat slices. Maintained by the graph's
	// mutators; nil until the first relationship arrives.
	outByType map[string][]*Relationship
	inByType  map[string][]*Relationship
}

// Relationship is a property graph relationship: an identifier, a type
// tau(r), source src(r), target tgt(r) and a property map iota(r, .).
type Relationship struct {
	id    int64
	typ   string
	start *Node
	end   *Node
	props map[string]value.Value
}

// Graph is an in-memory property graph. All exported methods are safe for
// concurrent use; read-heavy operations take a shared lock.
type Graph struct {
	mu         sync.RWMutex
	name       string
	nodes      map[int64]*Node
	rels       map[int64]*Relationship
	nextNodeID int64
	nextRelID  int64

	labelIndex map[string]map[int64]*Node
	typeIndex  map[string]map[int64]*Relationship
	propIndex  map[indexKey]*propIndexData // (label, property) -> hash + ordered buckets

	// epoch counts mutations (data and index changes). Cached query plans
	// record the epoch they were compiled at and are discarded when it moves,
	// so plan caches never serve decisions based on stale statistics or a
	// vanished index.
	epoch atomic.Uint64

	// hook, when set, observes every mutation from inside the write lock in
	// commit order; the storage layer journals the stream to its WAL. See
	// SetMutationHook.
	hook MutationHook

	// snap caches the sorted scan orders (all nodes, nodes per label) behind
	// an atomic pointer, stamped with the epoch they were built at. Scans and
	// morsel partitioning hit the cache allocation-free until the next
	// mutation invalidates it. See scan.go.
	snap atomicSnap
}

type indexKey struct {
	label    string
	property string
}

// New creates an empty property graph.
func New() *Graph {
	return &Graph{
		name:       "graph",
		nodes:      make(map[int64]*Node),
		rels:       make(map[int64]*Relationship),
		labelIndex: make(map[string]map[int64]*Node),
		typeIndex:  make(map[string]map[int64]*Relationship),
		propIndex:  make(map[indexKey]*propIndexData),
	}
}

// NewNamed creates an empty property graph with a name (used by the multiple
// named graphs catalog).
func NewNamed(name string) *Graph {
	g := New()
	g.name = name
	return g
}

// Name returns the graph's name.
func (g *Graph) Name() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.name
}

// Epoch returns the graph's current mutation epoch. It is incremented by
// every data or index mutation; equal epochs imply the graph (as seen by the
// planner: contents, statistics, indexes) has not changed in between.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// bumpEpoch records a mutation. Callers hold the write lock; the counter is
// atomic anyway so Epoch() can be read without any lock.
func (g *Graph) bumpEpoch() { g.epoch.Add(1) }

// --- Node: value.Node implementation and accessors ---

// ID returns the node identifier.
func (n *Node) ID() int64 { return n.id }

// Labels returns the node's labels, sorted.
func (n *Node) Labels() []string {
	return append([]string(nil), n.labels...)
}

// HasLabel reports whether the node carries the label.
func (n *Node) HasLabel(label string) bool {
	i := sort.SearchStrings(n.labels, label)
	return i < len(n.labels) && n.labels[i] == label
}

// Property returns the property value for key, or null if absent.
func (n *Node) Property(key string) value.Value {
	if v, ok := n.props[key]; ok {
		return v
	}
	return value.Null()
}

// PropertyKeys returns the node's property keys, sorted.
func (n *Node) PropertyKeys() []string {
	keys := make([]string, 0, len(n.props))
	for k := range n.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Properties returns a copy of the node's property map; used by the
// persistence and import paths, which need the whole map at once.
func (n *Node) Properties() map[string]value.Value {
	out := make(map[string]value.Value, len(n.props))
	for k, v := range n.props {
		out[k] = v
	}
	return out
}

// Degree returns the number of incident relationships in the given direction,
// optionally restricted to a set of relationship types (empty means any).
// With the type buckets this is a constant-time length sum — no per-edge
// filtering and no closure allocation.
func (n *Node) Degree(dir Direction, types ...string) int {
	count := 0
	if len(types) == 0 {
		if dir == Outgoing || dir == Both {
			count += len(n.out)
		}
		if dir == Incoming || dir == Both {
			count += len(n.in)
		}
		return count
	}
	for i, t := range types {
		if duplicateType(types, i) {
			continue
		}
		if dir == Outgoing || dir == Both {
			count += len(n.outByType[t])
		}
		if dir == Incoming || dir == Both {
			count += len(n.inByType[t])
		}
	}
	return count
}

// duplicateType reports whether types[i] already occurred earlier in types
// (a rel pattern like [:A|A] must not count relationships twice).
func duplicateType(types []string, i int) bool {
	for j := 0; j < i; j++ {
		if types[j] == types[i] {
			return true
		}
	}
	return false
}

// typeMatches reports whether typ is in types (empty means any).
func typeMatches(typ string, types []string) bool {
	if len(types) == 0 {
		return true
	}
	for _, t := range types {
		if t == typ {
			return true
		}
	}
	return false
}

// EachRelationship calls fn for the node's incident relationships in the
// given direction, optionally restricted to relationship types, in the same
// order Relationships returns them. It allocates nothing: a single type
// filter walks that type's bucket directly, the untyped form walks the flat
// adjacency slices. fn returning false stops the iteration (EachRelationship
// then also returns false).
//
// The iteration reads the live adjacency slices, so callers must not mutate
// the graph from inside fn; mutating paths use Relationships, which copies.
func (n *Node) EachRelationship(dir Direction, types []string, fn func(*Relationship) bool) bool {
	if len(types) == 1 {
		t := types[0]
		if dir == Outgoing || dir == Both {
			for _, r := range n.outByType[t] {
				if !fn(r) {
					return false
				}
			}
		}
		if dir == Incoming || dir == Both {
			for _, r := range n.inByType[t] {
				// A self-loop appears in both adjacency lists; report it once.
				if dir == Both && r.start == r.end {
					continue
				}
				if !fn(r) {
					return false
				}
			}
		}
		return true
	}
	if dir == Outgoing || dir == Both {
		for _, r := range n.out {
			if !typeMatches(r.typ, types) {
				continue
			}
			if !fn(r) {
				return false
			}
		}
	}
	if dir == Incoming || dir == Both {
		for _, r := range n.in {
			if !typeMatches(r.typ, types) {
				continue
			}
			if dir == Both && r.start == r.end {
				continue
			}
			if !fn(r) {
				return false
			}
		}
	}
	return true
}

// OutgoingRels returns the node's live outgoing adjacency for the requested
// types with zero allocations: the type bucket for a single type, the flat
// slice otherwise. filtered reports whether the returned slice is already
// restricted to the requested types (it is not for two or more types; the
// caller must filter). The slice aliases the node's adjacency and must only
// be read, and only while the graph is not being mutated.
func (n *Node) OutgoingRels(types []string) (rels []*Relationship, filtered bool) {
	switch len(types) {
	case 0:
		return n.out, true
	case 1:
		return n.outByType[types[0]], true
	default:
		return n.out, false
	}
}

// IncomingRels is OutgoingRels for the incoming adjacency.
func (n *Node) IncomingRels(types []string) (rels []*Relationship, filtered bool) {
	switch len(types) {
	case 0:
		return n.in, true
	case 1:
		return n.inByType[types[0]], true
	default:
		return n.in, false
	}
}

// Relationships returns the node's incident relationships in the given
// direction, optionally restricted to relationship types. The returned slice
// is freshly allocated, so it stays valid while the caller mutates the
// graph; read-only hot paths use EachRelationship instead.
func (n *Node) Relationships(dir Direction, types ...string) []*Relationship {
	var out []*Relationship
	n.EachRelationship(dir, types, func(r *Relationship) bool {
		out = append(out, r)
		return true
	})
	return out
}

// --- Relationship: value.Relationship implementation and accessors ---

// ID returns the relationship identifier.
func (r *Relationship) ID() int64 { return r.id }

// RelType returns the relationship type tau(r).
func (r *Relationship) RelType() string { return r.typ }

// StartNodeID returns src(r).
func (r *Relationship) StartNodeID() int64 { return r.start.id }

// EndNodeID returns tgt(r).
func (r *Relationship) EndNodeID() int64 { return r.end.id }

// StartNode returns the source node.
func (r *Relationship) StartNode() *Node { return r.start }

// EndNode returns the target node.
func (r *Relationship) EndNode() *Node { return r.end }

// StartEndNodes returns both endpoints as value.Node views; the expression
// evaluator uses this for the startNode() and endNode() functions.
func (r *Relationship) StartEndNodes() (start, end value.Node) {
	return r.start, r.end
}

// Other returns the endpoint of r that is not n. For self-loops it returns n.
func (r *Relationship) Other(n *Node) *Node {
	if r.start == n {
		return r.end
	}
	return r.start
}

// Property returns the property value for key, or null if absent.
func (r *Relationship) Property(key string) value.Value {
	if v, ok := r.props[key]; ok {
		return v
	}
	return value.Null()
}

// PropertyKeys returns the relationship's property keys, sorted.
func (r *Relationship) PropertyKeys() []string {
	keys := make([]string, 0, len(r.props))
	for k := range r.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Properties returns a copy of the relationship's property map; used by the
// persistence and import paths, which need the whole map at once.
func (r *Relationship) Properties() map[string]value.Value {
	out := make(map[string]value.Value, len(r.props))
	for k, v := range r.props {
		out[k] = v
	}
	return out
}

// --- Graph read access ---

// NodeByID returns the node with the given identifier.
func (g *Graph) NodeByID(id int64) (*Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	return n, ok
}

// RelationshipByID returns the relationship with the given identifier.
func (g *Graph) RelationshipByID(id int64) (*Relationship, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.rels[id]
	return r, ok
}

// Relationships returns all relationships, ordered by identifier.
func (g *Graph) Relationships() []*Relationship {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Relationship, 0, len(g.rels))
	for _, r := range g.rels {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RelationshipsByType returns all relationships of the given type, ordered by
// identifier.
func (g *Graph) RelationshipsByType(typ string) []*Relationship {
	g.mu.RLock()
	defer g.mu.RUnlock()
	idx, ok := g.typeIndex[typ]
	if !ok {
		return nil
	}
	out := make([]*Relationship, 0, len(idx))
	for _, r := range idx {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Labels returns all labels present in the graph, sorted. Empty index
// buckets are pruned eagerly on delete (see mutate.go), so every bucket that
// exists is non-empty and no per-call emptiness scan is needed.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.labelIndex))
	for l := range g.labelIndex {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// RelationshipTypes returns all relationship types present in the graph,
// sorted. Like Labels, it relies on delete-time pruning of empty buckets.
func (g *Graph) RelationshipTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.typeIndex))
	for t := range g.typeIndex {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return fmt.Sprintf("Graph(%s: %d nodes, %d relationships)", g.name, len(g.nodes), len(g.rels))
}

// DebugDump renders the complete logical state of the graph — ID counters,
// indexes, nodes with labels and properties, relationships with endpoints
// and properties — as a canonical string. Two graphs are logically identical
// exactly when their dumps are equal; the persistence tests use this to
// prove snapshot+replay equivalence. Not for hot paths.
func (g *Graph) DebugDump() string {
	var sb strings.Builder
	nn, nr := g.IDCounters()
	fmt.Fprintf(&sb, "counters %d %d\n", nn, nr)
	for _, idx := range g.Indexes() {
		fmt.Fprintf(&sb, "index (%s, %s)\n", idx[0], idx[1])
	}
	for _, n := range g.Nodes() {
		fmt.Fprintf(&sb, "node %d %v {", n.ID(), n.Labels())
		for _, k := range n.PropertyKeys() {
			fmt.Fprintf(&sb, " %s: %s", k, n.Property(k))
		}
		sb.WriteString(" }\n")
	}
	for _, r := range g.Relationships() {
		fmt.Fprintf(&sb, "rel %d %d-[:%s]->%d {", r.ID(), r.StartNodeID(), r.RelType(), r.EndNodeID())
		for _, k := range r.PropertyKeys() {
			fmt.Fprintf(&sb, " %s: %s", k, r.Property(k))
		}
		sb.WriteString(" }\n")
	}
	return sb.String()
}
