package graph

import "sync"

// MVCC versioned store. The engine's query-level concurrency used to be a
// single RWMutex: any number of readers XOR one writer, so one slow write
// query stalled the whole read fleet for its full execution. VersionedStore
// replaces that with snapshot-isolated versioned reads over two full graph
// replicas (version retention K=2):
//
//   - Readers Pin() the published head version at query start and read it
//     lock-free for their whole execution (the pin itself is two short
//     mutex-protected counter updates). They never wait for a writer.
//   - Writers (serialized by the engine) prepare off to the side: BeginWrite
//     first catches the spare replica up to the last committed state by
//     replaying the captured mutation backlog (the same Mutation/Apply
//     machinery the WAL uses), atomically publishes that replica as the read
//     head, waits for readers still pinned to the primary to drain, and only
//     then mutates the primary in place. New readers arriving during the
//     write see the replica — the committed state as of the previous commit.
//   - Publish (called at WAL group-commit, after the batch is appended)
//     atomically republishes the primary, making the write visible to
//     readers that pin afterwards. Readers still pinned to the replica
//     finish undisturbed on their snapshot; the next BeginWrite waits for
//     them before touching the replica again.
//
// The guarantee is snapshot isolation for readers (no dirty reads, repeatable
// reads within a query) and, because writers fully serialize, no lost updates
// and no write skew — the schedule is serializable. Write queries execute
// against the primary, so they read their own earlier clauses' writes.
//
// The cost is one extra copy of the graph (built lazily at the first write)
// and one extra application of every committed batch (the replica replay).
// Read-mostly workloads — the target of this design — pay nothing beyond the
// pin counters.
type VersionedStore struct {
	mu   sync.Mutex // guards everything below; held only for O(1) sections
	cond *sync.Cond // signalled when a version's pin count drops to zero

	// primary is the graph writers mutate in place; its identity is stable
	// for the engine's lifetime (Engine.Graph() keeps returning it).
	// replica is the spare version, nil until the first write materializes
	// it; it is only ever mutated by backlog replay, never by queries.
	primary *Graph
	replica *Graph

	// head is the published version (primary or replica) that new readers
	// pin. Between writes it is always the primary; from BeginWrite to
	// Publish it is the replica.
	head *Graph

	pinsPrimary int
	pinsReplica int

	// enabled flips when the replica is first materialized; until then
	// Capture drops mutations (the clone captures them wholesale).
	enabled bool
	// backlog holds the committed-to-primary mutations the replica has not
	// replayed yet — at steady state, exactly the previous write's batch.
	backlog []Mutation

	pins        uint64 // total Pin() calls
	publishes   uint64 // versions published at commit
	writerWaits uint64 // BeginWrite drain episodes that actually waited
	rebuilds    uint64 // replica re-clones after a replay divergence
}

// NewVersionedStore creates a versioned store over the primary graph. No
// replica is built until the first BeginWrite.
func NewVersionedStore(primary *Graph) *VersionedStore {
	vs := &VersionedStore{primary: primary, head: primary}
	vs.cond = sync.NewCond(&vs.mu)
	return vs
}

func (vs *VersionedStore) pinsOf(g *Graph) *int {
	if g == vs.primary {
		return &vs.pinsPrimary
	}
	return &vs.pinsReplica
}

// Pin returns the published version for a reader and registers the pin. The
// returned graph is immutable until Unpin: writers wait for every pin on a
// version to be released before mutating it. Pin never blocks beyond the
// store's O(1) critical section.
func (vs *VersionedStore) Pin() *Graph {
	vs.mu.Lock()
	g := vs.head
	*vs.pinsOf(g)++
	vs.pins++
	vs.mu.Unlock()
	return g
}

// Unpin releases a pin taken with Pin. The graph argument must be the value
// Pin returned.
func (vs *VersionedStore) Unpin(g *Graph) {
	vs.mu.Lock()
	p := vs.pinsOf(g)
	*p--
	if *p == 0 {
		// A writer may be draining this version; wake it.
		vs.cond.Broadcast()
	}
	vs.mu.Unlock()
}

// BeginWrite prepares the store for a write query and returns the graph the
// writer must mutate (always the primary). Callers must serialize BeginWrite/
// Publish pairs externally (the engine's write mutex). On return, the replica
// — caught up to the last committed state — is published as the read head and
// no reader holds a pin on the primary, so the writer may mutate it freely.
func (vs *VersionedStore) BeginWrite() *Graph {
	vs.mu.Lock()
	if !vs.enabled {
		// First write: materialize the replica. The clone only reads the
		// primary, so concurrent readers keep running; no writer can race us
		// (the caller serializes writes).
		vs.mu.Unlock()
		rep := vs.primary.Clone()
		vs.mu.Lock()
		vs.replica = rep
		vs.enabled = true
	}
	// Drain readers still pinned to the replica from the previous write
	// window. head is the primary here, so no new replica pins can arrive;
	// the count only decreases.
	if vs.pinsReplica > 0 {
		vs.writerWaits++
		for vs.pinsReplica > 0 {
			vs.cond.Wait()
		}
	}
	backlog := vs.backlog
	vs.backlog = nil
	vs.mu.Unlock()

	// Catch the replica up to the committed state. Replay runs outside the
	// store mutex: the replica is unpinned and unpublished, so nothing can
	// observe the intermediate states.
	healthy := true
	for _, m := range backlog {
		if err := vs.replica.Apply(m); err != nil {
			healthy = false
			break
		}
	}
	// Replaying the primary's mutation stream must land the replica on the
	// primary's exact epoch (both count the same mutations). A divergence
	// means the stream was incomplete — e.g. a second engine re-installed
	// the graph's mutation hook — and the replica can no longer be trusted:
	// rebuild it from the primary.
	if !healthy || vs.replica.Epoch() != vs.primary.Epoch() {
		rep := vs.primary.Clone()
		vs.mu.Lock()
		vs.replica = rep
		vs.rebuilds++
		vs.mu.Unlock()
	}

	// Publish the replica as the read head, then wait for readers still on
	// the primary to drain. New readers pin the replica from here on, so the
	// primary's count only decreases; once it is zero the writer owns the
	// primary exclusively (with respect to this store's discipline).
	vs.mu.Lock()
	vs.head = vs.replica
	if vs.pinsPrimary > 0 {
		vs.writerWaits++
		for vs.pinsPrimary > 0 {
			vs.cond.Wait()
		}
	}
	vs.mu.Unlock()
	return vs.primary
}

// Publish atomically republishes the primary as the read head, making the
// write that just committed visible to readers that pin from now on. Readers
// still pinned to the replica keep their snapshot until they finish.
func (vs *VersionedStore) Publish() {
	vs.mu.Lock()
	vs.head = vs.primary
	vs.publishes++
	vs.mu.Unlock()
}

// Capture records one committed-to-primary mutation for later replica
// replay. It is wired into the graph's mutation hook, so it runs inside the
// primary's write lock in mutation order; it copies the record's live
// references (label slice, property map) immediately, as the hook contract
// requires. A no-op until the replica exists.
func (vs *VersionedStore) Capture(m Mutation) {
	vs.mu.Lock()
	if vs.enabled {
		vs.backlog = append(vs.backlog, m.copyForReplay())
	}
	vs.mu.Unlock()
}

// MVCCStats is a point-in-time view of the versioned store's counters,
// exposed through cypher.Graph.MVCCStats and the serve /stats endpoint.
type MVCCStats struct {
	// Enabled reports whether the replica has been materialized (it is,
	// after the first write query).
	Enabled bool
	// Versions is the number of retained graph versions (1 before the first
	// write, 2 after).
	Versions int
	// PublishedEpoch is the mutation epoch of the currently published head —
	// the version new readers pin.
	PublishedEpoch uint64
	// LiveEpoch is the primary's epoch; it runs ahead of PublishedEpoch
	// while a write query is executing.
	LiveEpoch uint64
	// ActivePins is the number of readers currently pinning a version.
	ActivePins int
	// Pins counts Pin() calls since the engine was created.
	Pins uint64
	// Publishes counts committed version publishes.
	Publishes uint64
	// WriterDrainWaits counts the times a writer had to wait for readers to
	// drain off a version before reusing it. Readers never wait; this is the
	// price writers pay instead.
	WriterDrainWaits uint64
	// Rebuilds counts replica re-clones forced by a replay divergence
	// (normally zero; non-zero means the mutation stream was incomplete).
	Rebuilds uint64
	// BacklogLen is the number of committed mutations the replica has not
	// replayed yet.
	BacklogLen int
}

// Stats returns the store's current counters.
func (vs *VersionedStore) Stats() MVCCStats {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	versions := 1
	if vs.enabled {
		versions = 2
	}
	return MVCCStats{
		Enabled:          vs.enabled,
		Versions:         versions,
		PublishedEpoch:   vs.head.Epoch(),
		LiveEpoch:        vs.primary.Epoch(),
		ActivePins:       vs.pinsPrimary + vs.pinsReplica,
		Pins:             vs.pins,
		Publishes:        vs.publishes,
		WriterDrainWaits: vs.writerWaits,
		Rebuilds:         vs.rebuilds,
		BacklogLen:       len(vs.backlog),
	}
}
