package graph

import (
	"testing"
	"time"

	"repro/internal/value"
)

func TestCloneDeepCopy(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"Person"}, props("name", "Ada", "age", 36))
	b := g.CreateNode([]string{"Person"}, props("name", "Bob"))
	if _, err := g.CreateRelationship(a, b, "KNOWS", props("since", 1999)); err != nil {
		t.Fatal(err)
	}
	g.CreateIndex("Person", "name")

	c := g.Clone()
	if c.Epoch() != g.Epoch() {
		t.Fatalf("clone epoch = %d, want %d", c.Epoch(), g.Epoch())
	}
	if len(c.Nodes()) != 2 || len(c.Relationships()) != 1 {
		t.Fatalf("clone has %d nodes / %d rels, want 2 / 1", len(c.Nodes()), len(c.Relationships()))
	}
	if got := c.Indexes(); len(got) != 1 || got[0] != [2]string{"Person", "name"} {
		t.Fatalf("clone indexes = %v", got)
	}
	// Same identifiers, independent entities.
	ca, ok := c.NodeByID(a.ID())
	if !ok {
		t.Fatalf("clone is missing node %d", a.ID())
	}
	if ca == a {
		t.Fatalf("clone shares the node object with the source")
	}
	if got := ca.Property("name"); got != value.NewString("Ada") {
		t.Fatalf("clone node name = %v", got)
	}
	// Clone's index answers queries.
	if hits := c.NodesByLabelProperty("Person", "name", value.NewString("Ada")); len(hits) != 1 {
		t.Fatalf("clone index lookup returned %d nodes", len(hits))
	}
	// ID counters carried over: new entities in the clone don't collide.
	fresh := c.CreateNode(nil, nil)
	if fresh.ID() == a.ID() || fresh.ID() == b.ID() {
		t.Fatalf("clone reused id %d", fresh.ID())
	}
	// Mutating the source is invisible in the clone and vice versa.
	if err := g.SetNodeProperty(a, "name", value.NewString("Alice")); err != nil {
		t.Fatal(err)
	}
	if got := ca.Property("name"); got != value.NewString("Ada") {
		t.Fatalf("source mutation leaked into clone: %v", got)
	}
}

// newVersionedGraph wires a fresh graph to a VersionedStore the way the
// engine does: the graph's mutation hook feeds the store's replay backlog.
func newVersionedGraph() (*Graph, *VersionedStore) {
	g := New()
	vs := NewVersionedStore(g)
	g.SetMutationHook(vs.Capture)
	return g, vs
}

func TestVersionedStoreReadOnlyCostsNothing(t *testing.T) {
	g, vs := newVersionedGraph()
	g.CreateNode([]string{"Person"}, nil)

	v := vs.Pin()
	if v != g {
		t.Fatalf("head before any write should be the primary")
	}
	vs.Unpin(v)

	st := vs.Stats()
	if st.Enabled || st.Versions != 1 {
		t.Fatalf("replica materialized without a write: %+v", st)
	}
	if st.BacklogLen != 0 {
		t.Fatalf("mutations captured before the replica exists: %+v", st)
	}
}

func TestVersionedStoreWriteCycle(t *testing.T) {
	g, vs := newVersionedGraph()
	g.CreateNode([]string{"Person"}, props("name", "Ada"))

	// First write: replica materializes, head moves off the primary.
	target := vs.BeginWrite()
	if target != g {
		t.Fatalf("BeginWrite must return the primary")
	}
	mid := vs.Pin()
	if mid == g {
		t.Fatalf("reader pinned the primary while a writer owns it")
	}
	if mid.Epoch() != g.Epoch() {
		t.Fatalf("published replica epoch %d != primary epoch %d", mid.Epoch(), g.Epoch())
	}
	// The write happens on the primary; the pinned snapshot must not see it.
	n := g.CreateNode([]string{"Person"}, props("name", "Bob"))
	if _, ok := mid.NodeByID(n.ID()); ok {
		t.Fatalf("in-flight write visible through the pinned snapshot (dirty read)")
	}
	vs.Unpin(mid)
	vs.Publish()

	after := vs.Pin()
	if after != g {
		t.Fatalf("head after Publish should be the primary again")
	}
	vs.Unpin(after)

	// Second write: backlog (Bob's create) replays into the replica, epochs
	// stay in lockstep with no rebuild.
	vs.BeginWrite()
	rep := vs.Pin()
	if rep.Epoch() != g.Epoch() {
		t.Fatalf("replayed replica epoch %d != primary epoch %d", rep.Epoch(), g.Epoch())
	}
	if _, ok := rep.NodeByID(n.ID()); !ok {
		t.Fatalf("previous commit missing from replayed replica")
	}
	vs.Unpin(rep)
	vs.Publish()

	st := vs.Stats()
	if !st.Enabled || st.Versions != 2 {
		t.Fatalf("stats = %+v, want enabled with 2 versions", st)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("healthy replay forced %d rebuilds", st.Rebuilds)
	}
	if st.Publishes != 2 {
		t.Fatalf("publishes = %d, want 2", st.Publishes)
	}
	if st.BacklogLen != 0 {
		t.Fatalf("backlog not drained: %+v", st)
	}
}

func TestVersionedStoreWriterDrainsPinnedReaders(t *testing.T) {
	g, vs := newVersionedGraph()
	g.CreateNode(nil, nil)

	// A reader pinned to the primary must stall BeginWrite (writers wait for
	// readers, never the reverse).
	v := vs.Pin()
	began := make(chan struct{})
	go func() {
		vs.BeginWrite()
		close(began)
	}()
	select {
	case <-began:
		t.Fatalf("BeginWrite returned while a reader was pinned to the primary")
	case <-time.After(20 * time.Millisecond):
	}
	vs.Unpin(v)
	select {
	case <-began:
	case <-time.After(2 * time.Second):
		t.Fatalf("BeginWrite did not resume after the pin was released")
	}
	vs.Publish()
	if st := vs.Stats(); st.WriterDrainWaits == 0 {
		t.Fatalf("drain wait not counted: %+v", st)
	}
}

func TestVersionedStoreSelfHealsBrokenMutationStream(t *testing.T) {
	g, vs := newVersionedGraph()
	g.CreateNode(nil, nil)
	vs.BeginWrite()
	g.CreateNode(nil, nil)
	vs.Publish()

	// Sabotage the capture stream: mutations land on the primary without
	// reaching the backlog (models a second engine re-installing the hook).
	g.SetMutationHook(nil)
	g.CreateNode(nil, nil)
	g.SetMutationHook(vs.Capture)

	vs.BeginWrite()
	rep := vs.Pin()
	if rep.Epoch() != g.Epoch() {
		t.Fatalf("self-heal left replica at epoch %d, primary at %d", rep.Epoch(), g.Epoch())
	}
	if len(rep.Nodes()) != len(g.Nodes()) {
		t.Fatalf("self-heal left replica with %d nodes, primary has %d", len(rep.Nodes()), len(g.Nodes()))
	}
	vs.Unpin(rep)
	vs.Publish()
	if st := vs.Stats(); st.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Rebuilds)
	}
}

func TestCaptureCopiesLiveReferences(t *testing.T) {
	// The hook contract says Labels/Props alias live store state; Capture
	// must copy them before the mutator reuses the memory.
	g, vs := newVersionedGraph()
	g.CreateNode(nil, nil)
	vs.BeginWrite() // materialize the replica so Capture starts recording
	vs.Publish()

	n := g.CreateNode([]string{"Person"}, props("name", "Ada"))
	// Mutate the live property map after the create was captured.
	if err := g.SetNodeProperty(n, "name", value.NewString("Alice")); err != nil {
		t.Fatal(err)
	}
	vs.BeginWrite()
	rep := vs.Pin()
	rn, ok := rep.NodeByID(n.ID())
	if !ok {
		t.Fatalf("replica missing node %d", n.ID())
	}
	if got := rn.Property("name"); got != value.NewString("Alice") {
		t.Fatalf("replayed node name = %v, want Alice (create then set)", got)
	}
	vs.Unpin(rep)
	vs.Publish()
}
