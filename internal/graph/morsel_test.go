package graph

import (
	"testing"

	"repro/internal/value"
)

func TestNodeMorsels(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		label := "Even"
		if i%2 == 1 {
			label = "Odd"
		}
		g.CreateNode([]string{label}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}

	morsels := g.NodeMorsels(4)
	if len(morsels) != 3 {
		t.Fatalf("10 nodes at morsel size 4 should give 3 morsels, got %d", len(morsels))
	}
	sizes := []int{4, 4, 2}
	var prev int64 = -1
	for i, m := range morsels {
		if len(m) != sizes[i] {
			t.Errorf("morsel %d has %d nodes, want %d", i, len(m), sizes[i])
		}
		for _, n := range m {
			if n.ID() <= prev {
				t.Errorf("morsels must preserve identifier order: %d after %d", n.ID(), prev)
			}
			prev = n.ID()
		}
	}

	if got := g.LabelMorsels("Odd", 2); len(got) != 3 || len(got[0]) != 2 || len(got[2]) != 1 {
		t.Errorf("5 :Odd nodes at morsel size 2 should give morsels of 2,2,1, got %d morsels", len(got))
	}
	if got := g.LabelMorsels("Missing", 2); got != nil {
		t.Errorf("an absent label should yield no morsels, got %d", len(got))
	}
	if got := g.NodeMorsels(0); len(got) != 1 || len(got[0]) != 10 {
		t.Errorf("non-positive size should fall back to DefaultMorselSize (one morsel here)")
	}
}
