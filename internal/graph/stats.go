package graph

import "sort"

// Statistics is a snapshot of graph cardinalities used by the planner's cost
// model (the paper describes Neo4j's cost-based IDP planning; cardinality
// statistics are its input).
//
// Every figure derives from counters the mutators (and WAL replay, which
// funnels through the same helpers) keep incrementally: map lengths of the
// label/type indexes and the per-index entry counters. Building a snapshot
// therefore costs O(#labels + #types + #indexes) — it never scans nodes or
// relationships — and snapshots taken at the same mutation epoch are
// identical, which is what lets the plan cache reuse cost-based decisions
// until the next mutation.
type Statistics struct {
	// NodeCount is the total number of nodes.
	NodeCount int
	// RelationshipCount is the total number of relationships.
	RelationshipCount int
	// NodesByLabel maps each label to the number of nodes carrying it.
	NodesByLabel map[string]int
	// RelationshipsByType maps each relationship type to its count.
	RelationshipsByType map[string]int
	// AverageDegree is the mean number of incident relationship endpoints per
	// node (2*|R| / |N|), 0 for an empty graph.
	AverageDegree float64
	// Indexes lists the selectivity statistics of every property index,
	// sorted by (label, property).
	Indexes []IndexStatistics
}

// IndexStatistics summarises one property index for the cost model.
type IndexStatistics struct {
	// Label and Property identify the index.
	Label, Property string
	// Entries is the number of indexed nodes (nodes with the label that have
	// the property).
	Entries int
	// DistinctKeys is the number of distinct indexed values.
	DistinctKeys int
}

// RowsPerKey estimates how many nodes an equality seek returns: the average
// bucket size Entries/DistinctKeys (at least 1 when the index is non-empty).
func (is IndexStatistics) RowsPerKey() float64 {
	if is.DistinctKeys == 0 {
		return 0
	}
	r := float64(is.Entries) / float64(is.DistinctKeys)
	if r < 1 {
		return 1
	}
	return r
}

// Selectivity is the fraction of indexed entries an equality seek returns
// (1/DistinctKeys), 1.0 for an empty index so estimates stay conservative.
func (is IndexStatistics) Selectivity() float64 {
	if is.DistinctKeys == 0 {
		return 1.0
	}
	return 1.0 / float64(is.DistinctKeys)
}

// Stats builds a statistics snapshot of the graph from its incremental
// counters.
func (g *Graph) Stats() Statistics {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Statistics{
		NodeCount:           len(g.nodes),
		RelationshipCount:   len(g.rels),
		NodesByLabel:        make(map[string]int, len(g.labelIndex)),
		RelationshipsByType: make(map[string]int, len(g.typeIndex)),
	}
	for l, nodes := range g.labelIndex {
		if len(nodes) > 0 {
			s.NodesByLabel[l] = len(nodes)
		}
	}
	for t, rels := range g.typeIndex {
		if len(rels) > 0 {
			s.RelationshipsByType[t] = len(rels)
		}
	}
	if s.NodeCount > 0 {
		s.AverageDegree = 2 * float64(s.RelationshipCount) / float64(s.NodeCount)
	}
	if len(g.propIndex) > 0 {
		s.Indexes = make([]IndexStatistics, 0, len(g.propIndex))
		for key, idx := range g.propIndex {
			s.Indexes = append(s.Indexes, IndexStatistics{
				Label:        key.label,
				Property:     key.property,
				Entries:      idx.entries,
				DistinctKeys: len(idx.buckets),
			})
		}
		sort.Slice(s.Indexes, func(i, j int) bool {
			if s.Indexes[i].Label != s.Indexes[j].Label {
				return s.Indexes[i].Label < s.Indexes[j].Label
			}
			return s.Indexes[i].Property < s.Indexes[j].Property
		})
	}
	return s
}

// LabelCardinality returns the number of nodes carrying the label.
func (s Statistics) LabelCardinality(label string) int {
	return s.NodesByLabel[label]
}

// TypeCardinality returns the number of relationships of the given type.
func (s Statistics) TypeCardinality(typ string) int {
	return s.RelationshipsByType[typ]
}

// LabelSelectivity returns the fraction of nodes carrying the label (1.0 for
// an unknown label on an empty graph, so estimates stay conservative).
func (s Statistics) LabelSelectivity(label string) float64 {
	if s.NodeCount == 0 {
		return 1.0
	}
	return float64(s.NodesByLabel[label]) / float64(s.NodeCount)
}

// Index returns the statistics of the (label, property) index, with ok false
// when no such index exists.
func (s Statistics) Index(label, property string) (is IndexStatistics, ok bool) {
	for _, idx := range s.Indexes {
		if idx.Label == label && idx.Property == property {
			return idx, true
		}
	}
	return IndexStatistics{}, false
}

// TypeDegree estimates the average per-node degree for relationships of the
// given types (all types when empty) in the given direction: outgoing and
// incoming each contribute |R_t|/|N| (every relationship has exactly one
// source and one target), Both contributes twice that.
func (s Statistics) TypeDegree(types []string, dir Direction) float64 {
	if s.NodeCount == 0 {
		return 0
	}
	count := 0
	if len(types) == 0 {
		count = s.RelationshipCount
	} else {
		seen := map[string]bool{}
		for _, t := range types {
			if !seen[t] {
				seen[t] = true
				count += s.RelationshipsByType[t]
			}
		}
	}
	d := float64(count) / float64(s.NodeCount)
	if dir == Both {
		return 2 * d
	}
	return d
}
