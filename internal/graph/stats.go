package graph

// Statistics is a snapshot of graph cardinalities used by the planner's cost
// model (the paper describes Neo4j's cost-based IDP planning; cardinality
// statistics are its input).
type Statistics struct {
	// NodeCount is the total number of nodes.
	NodeCount int
	// RelationshipCount is the total number of relationships.
	RelationshipCount int
	// NodesByLabel maps each label to the number of nodes carrying it.
	NodesByLabel map[string]int
	// RelationshipsByType maps each relationship type to its count.
	RelationshipsByType map[string]int
	// AverageDegree is the mean number of incident relationship endpoints per
	// node (2*|R| / |N|), 0 for an empty graph.
	AverageDegree float64
}

// Stats computes a statistics snapshot of the graph.
func (g *Graph) Stats() Statistics {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Statistics{
		NodeCount:           len(g.nodes),
		RelationshipCount:   len(g.rels),
		NodesByLabel:        make(map[string]int, len(g.labelIndex)),
		RelationshipsByType: make(map[string]int, len(g.typeIndex)),
	}
	for l, nodes := range g.labelIndex {
		if len(nodes) > 0 {
			s.NodesByLabel[l] = len(nodes)
		}
	}
	for t, rels := range g.typeIndex {
		if len(rels) > 0 {
			s.RelationshipsByType[t] = len(rels)
		}
	}
	if s.NodeCount > 0 {
		s.AverageDegree = 2 * float64(s.RelationshipCount) / float64(s.NodeCount)
	}
	return s
}

// LabelCardinality returns the number of nodes carrying the label.
func (s Statistics) LabelCardinality(label string) int {
	return s.NodesByLabel[label]
}

// TypeCardinality returns the number of relationships of the given type.
func (s Statistics) TypeCardinality(typ string) int {
	return s.RelationshipsByType[typ]
}

// LabelSelectivity returns the fraction of nodes carrying the label (1.0 for
// an unknown label on an empty graph, so estimates stay conservative).
func (s Statistics) LabelSelectivity(label string) float64 {
	if s.NodeCount == 0 {
		return 1.0
	}
	return float64(s.NodesByLabel[label]) / float64(s.NodeCount)
}
