package graph

import (
	"testing"

	"repro/internal/value"
)

func TestPropertyIndexLookup(t *testing.T) {
	g := New()
	nils := g.CreateNode([]string{"Researcher"}, props("name", "Nils"))
	elin := g.CreateNode([]string{"Researcher"}, props("name", "Elin"))
	g.CreateNode([]string{"Student"}, props("name", "Nils")) // same name, other label

	// Without an index the lookup falls back to scanning the label.
	got := g.NodesByLabelProperty("Researcher", "name", value.NewString("Nils"))
	if len(got) != 1 || got[0] != nils {
		t.Fatalf("scan lookup = %v", got)
	}

	g.CreateIndex("Researcher", "name")
	if !g.HasIndex("Researcher", "name") {
		t.Fatalf("index should exist")
	}
	g.CreateIndex("Researcher", "name") // idempotent
	got = g.NodesByLabelProperty("Researcher", "name", value.NewString("Elin"))
	if len(got) != 1 || got[0] != elin {
		t.Fatalf("indexed lookup = %v", got)
	}
	if got := g.NodesByLabelProperty("Researcher", "name", value.NewString("Thor")); len(got) != 0 {
		t.Errorf("lookup of absent value should be empty, got %v", got)
	}
	idxs := g.Indexes()
	if len(idxs) != 1 || idxs[0] != [2]string{"Researcher", "name"} {
		t.Errorf("Indexes = %v", idxs)
	}
}

func TestPropertyIndexMaintenance(t *testing.T) {
	g := New()
	g.CreateIndex("Person", "ssn")

	a := g.CreateNode([]string{"Person"}, props("ssn", 111))
	b := g.CreateNode([]string{"Person"}, props("ssn", 111))
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 2 {
		t.Fatalf("index should contain both nodes, got %d", len(got))
	}

	// Changing the property moves the node to a different index entry.
	if err := g.SetNodeProperty(a, "ssn", value.NewInt(222)); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 1 || got[0] != b {
		t.Errorf("index not updated on property change: %v", got)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(222)); len(got) != 1 || got[0] != a {
		t.Errorf("index missing the new value: %v", got)
	}

	// Removing the property removes the node from the index.
	if err := g.SetNodeProperty(a, "ssn", value.Null()); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(222)); len(got) != 0 {
		t.Errorf("index should drop nodes whose property was removed: %v", got)
	}

	// Removing the label removes the node from the index.
	if err := g.RemoveNodeLabel(b, "Person"); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 0 {
		t.Errorf("index should drop nodes whose label was removed: %v", got)
	}

	// Adding the label back (with the property still present) re-indexes.
	if err := g.AddNodeLabel(b, "Person"); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 1 {
		t.Errorf("index should pick nodes up again when the label returns: %v", got)
	}

	// Deleting a node removes it from the index.
	if err := g.DetachDeleteNode(b); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 0 {
		t.Errorf("index should drop deleted nodes: %v", got)
	}

	g.DropIndex("Person", "ssn")
	if g.HasIndex("Person", "ssn") {
		t.Errorf("DropIndex should remove the index")
	}
}

func TestReplacePropertiesKeepsIndexConsistent(t *testing.T) {
	g := New()
	g.CreateIndex("Acct", "no")
	n := g.CreateNode([]string{"Acct"}, props("no", 7))
	if err := g.ReplaceNodeProperties(n, props("no", 8, "extra", true)); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Acct", "no", value.NewInt(7)); len(got) != 0 {
		t.Errorf("old value should no longer be indexed")
	}
	if got := g.NodesByLabelProperty("Acct", "no", value.NewInt(8)); len(got) != 1 {
		t.Errorf("new value should be indexed")
	}
}
