package graph

import (
	"math"
	"testing"

	"repro/internal/value"
)

func TestPropertyIndexLookup(t *testing.T) {
	g := New()
	nils := g.CreateNode([]string{"Researcher"}, props("name", "Nils"))
	elin := g.CreateNode([]string{"Researcher"}, props("name", "Elin"))
	g.CreateNode([]string{"Student"}, props("name", "Nils")) // same name, other label

	// Without an index the lookup falls back to scanning the label.
	got := g.NodesByLabelProperty("Researcher", "name", value.NewString("Nils"))
	if len(got) != 1 || got[0] != nils {
		t.Fatalf("scan lookup = %v", got)
	}

	g.CreateIndex("Researcher", "name")
	if !g.HasIndex("Researcher", "name") {
		t.Fatalf("index should exist")
	}
	g.CreateIndex("Researcher", "name") // idempotent
	got = g.NodesByLabelProperty("Researcher", "name", value.NewString("Elin"))
	if len(got) != 1 || got[0] != elin {
		t.Fatalf("indexed lookup = %v", got)
	}
	if got := g.NodesByLabelProperty("Researcher", "name", value.NewString("Thor")); len(got) != 0 {
		t.Errorf("lookup of absent value should be empty, got %v", got)
	}
	idxs := g.Indexes()
	if len(idxs) != 1 || idxs[0] != [2]string{"Researcher", "name"} {
		t.Errorf("Indexes = %v", idxs)
	}
}

func TestPropertyIndexMaintenance(t *testing.T) {
	g := New()
	g.CreateIndex("Person", "ssn")

	a := g.CreateNode([]string{"Person"}, props("ssn", 111))
	b := g.CreateNode([]string{"Person"}, props("ssn", 111))
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 2 {
		t.Fatalf("index should contain both nodes, got %d", len(got))
	}

	// Changing the property moves the node to a different index entry.
	if err := g.SetNodeProperty(a, "ssn", value.NewInt(222)); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 1 || got[0] != b {
		t.Errorf("index not updated on property change: %v", got)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(222)); len(got) != 1 || got[0] != a {
		t.Errorf("index missing the new value: %v", got)
	}

	// Removing the property removes the node from the index.
	if err := g.SetNodeProperty(a, "ssn", value.Null()); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(222)); len(got) != 0 {
		t.Errorf("index should drop nodes whose property was removed: %v", got)
	}

	// Removing the label removes the node from the index.
	if err := g.RemoveNodeLabel(b, "Person"); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 0 {
		t.Errorf("index should drop nodes whose label was removed: %v", got)
	}

	// Adding the label back (with the property still present) re-indexes.
	if err := g.AddNodeLabel(b, "Person"); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 1 {
		t.Errorf("index should pick nodes up again when the label returns: %v", got)
	}

	// Deleting a node removes it from the index.
	if err := g.DetachDeleteNode(b); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Person", "ssn", value.NewInt(111)); len(got) != 0 {
		t.Errorf("index should drop deleted nodes: %v", got)
	}

	g.DropIndex("Person", "ssn")
	if g.HasIndex("Person", "ssn") {
		t.Errorf("DropIndex should remove the index")
	}
}

func TestReplacePropertiesKeepsIndexConsistent(t *testing.T) {
	g := New()
	g.CreateIndex("Acct", "no")
	n := g.CreateNode([]string{"Acct"}, props("no", 7))
	if err := g.ReplaceNodeProperties(n, props("no", 8, "extra", true)); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByLabelProperty("Acct", "no", value.NewInt(7)); len(got) != 0 {
		t.Errorf("old value should no longer be indexed")
	}
	if got := g.NodesByLabelProperty("Acct", "no", value.NewInt(8)); len(got) != 1 {
		t.Errorf("new value should be indexed")
	}
}

// Satellite regression (PR 5): hash-index buckets key on value.GroupKey,
// which must normalise numerically equal integers and floats to the same
// bucket — Cypher's `=` compares numbers across int/float, so {age: 1} and
// {age: 1.0} are the same value for seek purposes. Also covers -0.0/0.0.
func TestHashIndexGroupKeyNormalisation(t *testing.T) {
	g := New()
	g.CreateIndex("N", "v")
	intOne := g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewInt(1)})
	floatOne := g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewFloat(1.0)})
	negZero := g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewFloat(math.Copysign(0, -1))})
	half := g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewFloat(2.5)})

	// Seeking with either numeric form must find both stored forms.
	for _, probe := range []value.Value{value.NewInt(1), value.NewFloat(1.0)} {
		got := g.NodesByLabelProperty("N", "v", probe)
		if len(got) != 2 || got[0] != intOne || got[1] != floatOne {
			t.Fatalf("seek %s = %v (want [intOne floatOne])", probe, got)
		}
	}
	if got := g.NodesByLabelProperty("N", "v", value.NewInt(0)); len(got) != 1 || got[0] != negZero {
		t.Errorf("-0.0 must live in the 0 bucket, got %v", got)
	}
	if got := g.NodesByLabelProperty("N", "v", value.NewFloat(2.5)); len(got) != 1 || got[0] != half {
		t.Errorf("2.5 seek = %v", got)
	}
	// The distinct-key statistics must agree: 1/1.0 share a bucket, so the
	// index holds three distinct keys (1, -0.0, 2.5) over four entries.
	is, ok := g.Stats().Index("N", "v")
	if !ok || is.Entries != 4 || is.DistinctKeys != 3 {
		t.Errorf("index stats = %+v (want 4 entries, 3 distinct)", is)
	}

	// Known caveat, pinned here: beyond 2^53 Cypher's cross-type numeric
	// equality is not transitive (Int 2^53 = Float 2^53 = Int 2^53+1 as
	// floats, yet the two ints differ), so no single bucket key can honour
	// it; the index keys exact ints distinctly, like grouping does.
	big := int64(1) << 53
	g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewInt(big + 1)})
	if got := g.NodesByLabelProperty("N", "v", value.NewInt(big+1)); len(got) != 1 {
		t.Errorf("exact big-int seek should find its node, got %v", got)
	}
}

func TestOrderedIndexRangeSeek(t *testing.T) {
	g := New()
	g.CreateIndex("N", "v")
	mk := func(v value.Value) *Node {
		return g.CreateNode([]string{"N"}, map[string]value.Value{"v": v})
	}
	n10 := mk(value.NewInt(10))
	n20a := mk(value.NewInt(20))
	n20b := mk(value.NewFloat(20.0))
	n30 := mk(value.NewInt(30))
	str := mk(value.NewString("hello"))
	mk(value.NewBool(true))
	nan := mk(value.NewFloat(math.NaN()))

	ids := func(nodes []*Node) []int64 {
		out := make([]int64, len(nodes))
		for i, n := range nodes {
			out[i] = n.ID()
		}
		return out
	}
	cases := []struct {
		name         string
		lo, hi       value.Value
		loInc, hiInc bool
		want         []*Node
	}{
		{"gt", value.NewInt(10), nil, false, false, []*Node{n20a, n20b, n30}},
		{"ge", value.NewInt(20), nil, true, false, []*Node{n20a, n20b, n30}},
		{"lt", nil, value.NewInt(20), false, false, []*Node{n10}},
		{"le", nil, value.NewFloat(20.0), false, true, []*Node{n10, n20a, n20b}},
		{"closed", value.NewInt(10), value.NewInt(30), false, false, []*Node{n20a, n20b}},
		{"closed-inclusive", value.NewInt(10), value.NewInt(30), true, true, []*Node{n10, n20a, n20b, n30}},
		{"empty", value.NewInt(100), nil, false, false, nil},
		{"string-range", value.NewString("a"), nil, false, false, []*Node{str}},
	}
	for _, c := range cases {
		got := g.NodesByLabelPropertyRange("N", "v", c.lo, c.loInc, c.hi, c.hiInc)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v want %v", c.name, ids(got), ids(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v want %v", c.name, ids(got), ids(c.want))
				break
			}
		}
	}
	// NaN compares false against everything: never inside a range.
	for _, got := range [][]*Node{
		g.NodesByLabelPropertyRange("N", "v", value.NewInt(0), true, nil, false),
		g.NodesByLabelPropertyRange("N", "v", nil, false, value.NewFloat(math.Inf(1)), true),
	} {
		for _, n := range got {
			if n == nan {
				t.Fatalf("NaN must not satisfy any range: %v", ids(got))
			}
		}
	}
	// The unindexed fallback must agree with the indexed path.
	g2 := New()
	for _, n := range g.NodesByLabel("N") {
		g2.CreateNode([]string{"N"}, n.Properties())
	}
	for _, c := range cases {
		a := ids(g.NodesByLabelPropertyRange("N", "v", c.lo, c.loInc, c.hi, c.hiInc))
		b := ids(g2.NodesByLabelPropertyRange("N", "v", c.lo, c.loInc, c.hi, c.hiInc))
		if len(a) != len(b) {
			t.Errorf("%s: fallback disagrees: indexed %v vs scan %v", c.name, a, b)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: fallback disagrees: indexed %v vs scan %v", c.name, a, b)
				break
			}
		}
	}
}

func TestOrderedIndexPrefixAndInSeek(t *testing.T) {
	g := New()
	g.CreateIndex("N", "name")
	mk := func(s string) *Node {
		return g.CreateNode([]string{"N"}, map[string]value.Value{"name": value.NewString(s)})
	}
	ann := mk("ann")
	anna := mk("anna")
	bob := mk("bob")
	mkNum := g.CreateNode([]string{"N"}, map[string]value.Value{"name": value.NewInt(7)})

	if got := g.NodesByLabelPropertyPrefix("N", "name", "ann"); len(got) != 2 || got[0] != ann || got[1] != anna {
		t.Errorf("prefix 'ann' = %v", got)
	}
	if got := g.NodesByLabelPropertyPrefix("N", "name", ""); len(got) != 3 {
		t.Errorf("empty prefix matches all strings (not the int), got %d", len(got))
	}
	if got := g.NodesByLabelPropertyPrefix("N", "name", "zz"); len(got) != 0 {
		t.Errorf("absent prefix = %v", got)
	}

	in := g.NodesByLabelPropertyIn("N", "name", []value.Value{
		value.NewString("bob"),
		value.NewString("bob"), // duplicate element must not duplicate rows
		value.Null(),           // null element never matches
		value.NewFloat(7.0),    // numeric normalisation applies to IN too
	})
	if len(in) != 2 || in[0] != bob || in[1] != mkNum {
		t.Errorf("IN seek = %v", in)
	}

	// Fallback without an index agrees.
	if got := g.NodesByLabelPropertyIn("N", "missing", []value.Value{value.NewString("x")}); len(got) != 0 {
		t.Errorf("IN over missing property = %v", got)
	}
}

// The ordered bucket list must stay sorted and consistent under churn.
func TestOrderedIndexMaintenance(t *testing.T) {
	g := New()
	g.CreateIndex("N", "v")
	var nodes []*Node
	for i := 0; i < 40; i++ {
		nodes = append(nodes, g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewInt(int64(i * 7 % 40))}))
	}
	for i, n := range nodes {
		if i%3 == 0 {
			if err := g.SetNodeProperty(n, "v", value.NewInt(int64(100+i))); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			if err := g.DetachDeleteNode(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx := g.propIndex[indexKey{label: "N", property: "v"}]
	if len(idx.buckets) != len(idx.ordered) {
		t.Fatalf("hash and ordered bucket counts diverged: %d vs %d", len(idx.buckets), len(idx.ordered))
	}
	total := 0
	for i, b := range idx.ordered {
		total += len(b.nodes)
		if i > 0 && value.Compare(idx.ordered[i-1].val, b.val) > 0 {
			t.Fatalf("ordered buckets out of order at %d", i)
		}
		if len(b.nodes) == 0 {
			t.Fatalf("empty bucket survived at %d", i)
		}
	}
	if total != idx.entries {
		t.Fatalf("entries counter %d != actual %d", idx.entries, total)
	}
	// Cross-check a range against a straight scan.
	want := g2Filter(g, 50)
	got := g.NodesByLabelPropertyRange("N", "v", value.NewInt(50), false, nil, false)
	if len(got) != len(want) {
		t.Fatalf("range after churn: got %d nodes, want %d", len(got), len(want))
	}
}

// g2Filter counts label-N nodes with v > bound by direct scan.
func g2Filter(g *Graph, bound int64) []*Node {
	var out []*Node
	for _, n := range g.NodesByLabel("N") {
		if pv, ok := n.props["v"]; ok && value.Greater(pv, value.NewInt(bound)) == value.TrueT {
			out = append(out, n)
		}
	}
	return out
}

// Review fix (PR 5): bucket membership is by GroupKey (grouping
// equivalence), which is coarser than Cypher `=` where null or NaN is
// involved — seeks must recheck Equals so they stay exactly as selective as
// the filter they replace.
func TestSeekRechecksEqualsSemantics(t *testing.T) {
	g := New()
	g.CreateIndex("N", "v")
	listWithNull := value.NewListOf([]value.Value{value.NewInt(1), value.Null()})
	g.CreateNode([]string{"N"}, map[string]value.Value{"v": listWithNull})
	g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewFloat(math.NaN())})
	plain := g.CreateNode([]string{"N"}, map[string]value.Value{"v": value.NewListOf([]value.Value{value.NewInt(1)})})

	// [1, null] = [1, null] is unknown; NaN = NaN is false: neither may be
	// returned by an equality seek, indexed or not.
	if got := g.NodesByLabelProperty("N", "v", listWithNull); len(got) != 0 {
		t.Errorf("null-containing list seek must return nothing, got %d", len(got))
	}
	if got := g.NodesByLabelProperty("N", "v", value.NewFloat(math.NaN())); len(got) != 0 {
		t.Errorf("NaN seek must return nothing, got %d", len(got))
	}
	if got := g.NodesByLabelPropertyIn("N", "v", []value.Value{listWithNull, value.NewFloat(math.NaN())}); len(got) != 0 {
		t.Errorf("IN seek with unknown-equality elements must return nothing, got %d", len(got))
	}
	// Ordinary values still match.
	if got := g.NodesByLabelProperty("N", "v", value.NewListOf([]value.Value{value.NewFloat(1.0)})); len(got) != 1 || got[0] != plain {
		t.Errorf("plain list seek = %v", got)
	}
}
