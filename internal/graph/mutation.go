package graph

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// MutationKind identifies a logical mutation of the graph. The set of kinds
// is exactly the set of primitives every updating clause funnels through
// (mutate.go and index.go), so a stream of Mutation records is a complete
// description of how a graph evolved — the property the storage layer's
// write-ahead log relies on.
type MutationKind uint8

// The logical mutation kinds.
const (
	// MutCreateNode creates a node with ID, Labels and Props.
	MutCreateNode MutationKind = iota + 1
	// MutDeleteNode deletes the node ID (its relationships are already gone).
	MutDeleteNode
	// MutCreateRel creates relationship ID of type Label from Start to End
	// with Props.
	MutCreateRel
	// MutDeleteRel deletes the relationship ID.
	MutDeleteRel
	// MutSetNodeProp sets property Key on node ID to Value (null removes).
	MutSetNodeProp
	// MutSetRelProp sets property Key on relationship ID to Value (null
	// removes).
	MutSetRelProp
	// MutReplaceNodeProps replaces all properties of node ID with Props.
	MutReplaceNodeProps
	// MutReplaceRelProps replaces all properties of relationship ID with
	// Props.
	MutReplaceRelProps
	// MutAddLabel adds Label to node ID.
	MutAddLabel
	// MutRemoveLabel removes Label from node ID.
	MutRemoveLabel
	// MutCreateIndex declares a property index on (Label, Key).
	MutCreateIndex
	// MutDropIndex drops the property index on (Label, Key).
	MutDropIndex
)

// String names the mutation kind (used by the WAL dump tool and errors).
func (k MutationKind) String() string {
	switch k {
	case MutCreateNode:
		return "CREATE_NODE"
	case MutDeleteNode:
		return "DELETE_NODE"
	case MutCreateRel:
		return "CREATE_REL"
	case MutDeleteRel:
		return "DELETE_REL"
	case MutSetNodeProp:
		return "SET_NODE_PROP"
	case MutSetRelProp:
		return "SET_REL_PROP"
	case MutReplaceNodeProps:
		return "REPLACE_NODE_PROPS"
	case MutReplaceRelProps:
		return "REPLACE_REL_PROPS"
	case MutAddLabel:
		return "ADD_LABEL"
	case MutRemoveLabel:
		return "REMOVE_LABEL"
	case MutCreateIndex:
		return "CREATE_INDEX"
	case MutDropIndex:
		return "DROP_INDEX"
	default:
		return fmt.Sprintf("MUTATION(%d)", uint8(k))
	}
}

// Mutation is one logical change to the graph. Which fields are meaningful
// depends on Kind; unused fields are zero. Label doubles as the relationship
// type for MutCreateRel and as the index label for the index kinds; Key
// doubles as the index property.
type Mutation struct {
	Kind       MutationKind
	ID         int64
	Start, End int64
	Label      string
	Key        string
	Value      value.Value
	Labels     []string
	Props      map[string]value.Value
}

// MutationHook observes committed-to-memory mutations. It is invoked
// synchronously inside the graph's write lock, in mutation order, after the
// in-memory change has been applied — so the sequence of hook calls replayed
// through Apply reproduces the store exactly. Hooks must be fast and must
// not call back into the graph. The Labels and Props fields reference live
// store state; hooks that retain a Mutation beyond the call must copy them
// (the storage journal encodes them to bytes immediately instead).
type MutationHook func(m Mutation)

// SetMutationHook installs the (single) mutation hook; nil removes it. It is
// intended to be called once, before the graph is shared between goroutines.
func (g *Graph) SetMutationHook(h MutationHook) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hook = h
}

// emit reports a mutation to the hook. Callers hold the write lock.
func (g *Graph) emit(m Mutation) {
	if g.hook != nil {
		g.hook(m)
	}
}

// IDCounters returns the next-ID counters (last assigned node and
// relationship identifiers). The storage layer records them in snapshots so
// recovery never reuses the identifier of a deleted entity.
func (g *Graph) IDCounters() (node, rel int64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nextNodeID, g.nextRelID
}

// SetIDCounters raises the next-ID counters to at least the given values.
// Used by recovery after replaying a snapshot.
func (g *Graph) SetIDCounters(node, rel int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if node > g.nextNodeID {
		g.nextNodeID = node
	}
	if rel > g.nextRelID {
		g.nextRelID = rel
	}
}

// Apply replays a logical mutation with explicit identifiers, as read back
// from a snapshot or the write-ahead log. It mirrors the normal mutation
// methods but honours the recorded IDs instead of allocating fresh ones, and
// it does not invoke the mutation hook (replaying must not re-journal).
func (g *Graph) Apply(m Mutation) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch m.Kind {
	case MutCreateNode:
		if _, ok := g.nodes[m.ID]; ok {
			return fmt.Errorf("graph: apply %s: node %d already exists", m.Kind, m.ID)
		}
		n := &Node{
			id:     m.ID,
			graph:  g,
			labels: append([]string(nil), m.Labels...),
			props:  make(map[string]value.Value, len(m.Props)),
		}
		for k, v := range m.Props {
			if !value.IsNull(v) {
				n.props[k] = v
			}
		}
		g.nodes[n.id] = n
		for _, l := range n.labels {
			g.addToLabelIndex(l, n)
		}
		g.addToPropIndexes(n)
		if m.ID > g.nextNodeID {
			g.nextNodeID = m.ID
		}
	case MutDeleteNode:
		n, ok := g.nodes[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: node %d not found", m.Kind, m.ID)
		}
		if len(n.out) > 0 || len(n.in) > 0 {
			return fmt.Errorf("graph: apply %s: node %d still has relationships", m.Kind, m.ID)
		}
		delete(g.nodes, n.id)
		for _, l := range n.labels {
			g.removeFromLabelIndex(l, n)
		}
		g.removeFromPropIndexes(n)
	case MutCreateRel:
		if _, ok := g.rels[m.ID]; ok {
			return fmt.Errorf("graph: apply %s: relationship %d already exists", m.Kind, m.ID)
		}
		start, ok := g.nodes[m.Start]
		if !ok {
			return fmt.Errorf("graph: apply %s: start node %d not found", m.Kind, m.Start)
		}
		end, ok := g.nodes[m.End]
		if !ok {
			return fmt.Errorf("graph: apply %s: end node %d not found", m.Kind, m.End)
		}
		r := &Relationship{
			id:    m.ID,
			typ:   m.Label,
			start: start,
			end:   end,
			props: make(map[string]value.Value, len(m.Props)),
		}
		for k, v := range m.Props {
			if !value.IsNull(v) {
				r.props[k] = v
			}
		}
		g.rels[r.id] = r
		start.out = append(start.out, r)
		end.in = append(end.in, r)
		if start.outByType == nil {
			start.outByType = make(map[string][]*Relationship)
		}
		start.outByType[r.typ] = append(start.outByType[r.typ], r)
		if end.inByType == nil {
			end.inByType = make(map[string][]*Relationship)
		}
		end.inByType[r.typ] = append(end.inByType[r.typ], r)
		if g.typeIndex[r.typ] == nil {
			g.typeIndex[r.typ] = make(map[int64]*Relationship)
		}
		g.typeIndex[r.typ][r.id] = r
		if m.ID > g.nextRelID {
			g.nextRelID = m.ID
		}
	case MutDeleteRel:
		r, ok := g.rels[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: relationship %d not found", m.Kind, m.ID)
		}
		delete(g.rels, r.id)
		delete(g.typeIndex[r.typ], r.id)
		if len(g.typeIndex[r.typ]) == 0 {
			delete(g.typeIndex, r.typ)
		}
		r.start.out = removeRel(r.start.out, r)
		r.end.in = removeRel(r.end.in, r)
		removeRelBucket(r.start.outByType, r)
		removeRelBucket(r.end.inByType, r)
	case MutSetNodeProp:
		n, ok := g.nodes[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: node %d not found", m.Kind, m.ID)
		}
		g.removeFromPropIndexes(n)
		if value.IsNull(m.Value) {
			delete(n.props, m.Key)
		} else {
			n.props[m.Key] = m.Value
		}
		g.addToPropIndexes(n)
	case MutSetRelProp:
		r, ok := g.rels[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: relationship %d not found", m.Kind, m.ID)
		}
		if value.IsNull(m.Value) {
			delete(r.props, m.Key)
		} else {
			r.props[m.Key] = m.Value
		}
	case MutReplaceNodeProps:
		n, ok := g.nodes[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: node %d not found", m.Kind, m.ID)
		}
		g.removeFromPropIndexes(n)
		n.props = make(map[string]value.Value, len(m.Props))
		for k, v := range m.Props {
			if !value.IsNull(v) {
				n.props[k] = v
			}
		}
		g.addToPropIndexes(n)
	case MutReplaceRelProps:
		r, ok := g.rels[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: relationship %d not found", m.Kind, m.ID)
		}
		r.props = make(map[string]value.Value, len(m.Props))
		for k, v := range m.Props {
			if !value.IsNull(v) {
				r.props[k] = v
			}
		}
	case MutAddLabel:
		n, ok := g.nodes[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: node %d not found", m.Kind, m.ID)
		}
		if !n.HasLabel(m.Label) {
			n.labels = append(n.labels, m.Label)
			sort.Strings(n.labels)
			g.addToLabelIndex(m.Label, n)
			g.addToPropIndexes(n)
		}
	case MutRemoveLabel:
		n, ok := g.nodes[m.ID]
		if !ok {
			return fmt.Errorf("graph: apply %s: node %d not found", m.Kind, m.ID)
		}
		if n.HasLabel(m.Label) {
			g.removeFromPropIndexes(n)
			i := sort.SearchStrings(n.labels, m.Label)
			n.labels = append(n.labels[:i], n.labels[i+1:]...)
			g.removeFromLabelIndex(m.Label, n)
			g.addToPropIndexes(n)
		}
	case MutCreateIndex:
		g.createIndexLocked(m.Label, m.Key)
	case MutDropIndex:
		delete(g.propIndex, indexKey{label: m.Label, property: m.Key})
	default:
		return fmt.Errorf("graph: apply: unknown mutation kind %d", m.Kind)
	}
	g.bumpEpoch()
	return nil
}
