package graph

import (
	"sort"
	"sync/atomic"
)

// Scan snapshots. Nodes() and NodesByLabel() used to copy the whole store
// into a fresh slice and sort it on every call — once per query for a serial
// scan, and again for morsel partitioning. Instead the graph now keeps a
// lazily (re)built, epoch-stamped snapshot of each scan order behind an
// atomic pointer: a scan at an unchanged epoch returns the cached slice with
// zero allocations, and the first scan after a mutation rebuilds just the
// orders it needs.
//
// The returned slices are shared and must be treated as immutable by
// callers; every consumer in the engine only iterates (or sub-slices, for
// morsels). The engine's query locking makes the epoch stable for the
// duration of a query, so a query sees one consistent scan order.

// scanSnap is one immutable generation of cached scan orders. A new
// generation is published (copy-on-write) whenever an order is added or the
// epoch moves.
type scanSnap struct {
	epoch   uint64
	all     []*Node
	allOK   bool
	byLabel map[string][]*Node
}

type atomicSnap struct {
	p atomic.Pointer[scanSnap]
}

// Nodes returns all nodes, ordered by identifier. The returned slice is a
// shared snapshot; callers must not modify it.
func (g *Graph) Nodes() []*Node {
	if s := g.snap.p.Load(); s != nil && s.allOK && s.epoch == g.epoch.Load() {
		return s.all
	}
	g.mu.RLock()
	// Mutators bump the epoch while holding the write lock, so under the read
	// lock the epoch and the store contents are consistent.
	epoch := g.epoch.Load()
	all := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		all = append(all, n)
	}
	g.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	g.publishSnap(epoch, func(ns *scanSnap) {
		ns.all = all
		ns.allOK = true
	})
	return all
}

// NodesByLabel returns all nodes carrying the label, ordered by identifier.
// The returned slice is a shared snapshot; callers must not modify it.
func (g *Graph) NodesByLabel(label string) []*Node {
	if s := g.snap.p.Load(); s != nil && s.epoch == g.epoch.Load() {
		if out, ok := s.byLabel[label]; ok {
			return out
		}
	}
	g.mu.RLock()
	epoch := g.epoch.Load()
	var out []*Node
	if idx, ok := g.labelIndex[label]; ok {
		out = make([]*Node, 0, len(idx))
		for _, n := range idx {
			out = append(out, n)
		}
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	g.publishSnap(epoch, func(ns *scanSnap) {
		if ns.byLabel == nil {
			ns.byLabel = map[string][]*Node{label: out}
			return
		}
		ns.byLabel[label] = out
	})
	return out
}

// publishSnap installs a new snapshot generation for the epoch, carrying over
// every order the current generation already holds for the same epoch. Under
// a concurrent publish the loop retries with the freshly published state, so
// concurrently built orders are never lost. A build that raced with a
// mutation and lost (the published generation is already newer) is simply
// dropped — replacing a warm newer-epoch cache with a stale one would force
// the next scan to redo the full rebuild.
func (g *Graph) publishSnap(epoch uint64, set func(*scanSnap)) {
	for {
		old := g.snap.p.Load()
		if old != nil && old.epoch > epoch {
			return
		}
		ns := &scanSnap{epoch: epoch}
		if old != nil && old.epoch == epoch {
			ns.all, ns.allOK = old.all, old.allOK
			if len(old.byLabel) > 0 {
				ns.byLabel = make(map[string][]*Node, len(old.byLabel)+1)
				for k, v := range old.byLabel {
					ns.byLabel[k] = v
				}
			}
		}
		set(ns)
		if g.snap.p.CompareAndSwap(old, ns) {
			return
		}
	}
}
