package graph

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

func scanTestGraph(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		label := "Even"
		if i%2 == 1 {
			label = "Odd"
		}
		g.CreateNode([]string{label, "All"}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	return g
}

// TestScanSnapshotZeroAlloc is the headline property of the scan cache: at an
// unchanged epoch, Nodes() and NodesByLabel() return the cached order with
// zero allocations.
func TestScanSnapshotZeroAlloc(t *testing.T) {
	g := scanTestGraph(500)
	g.Nodes()
	g.NodesByLabel("Even")
	if allocs := testing.AllocsPerRun(100, func() {
		for range g.Nodes() {
		}
	}); allocs != 0 {
		t.Errorf("Nodes() on a warm snapshot allocates %.0f times", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for range g.NodesByLabel("Even") {
		}
	}); allocs != 0 {
		t.Errorf("NodesByLabel() on a warm snapshot allocates %.0f times", allocs)
	}
}

// TestScanSnapshotInvalidation verifies every scan observes mutations that
// happened before it, and that held snapshots are not retroactively changed.
func TestScanSnapshotInvalidation(t *testing.T) {
	g := scanTestGraph(10)
	before := g.Nodes()
	if len(before) != 10 {
		t.Fatalf("len(Nodes) = %d", len(before))
	}
	evenBefore := g.NodesByLabel("Even")
	if len(evenBefore) != 5 {
		t.Fatalf("len(Even) = %d", len(evenBefore))
	}

	n := g.CreateNode([]string{"Even"}, nil)
	if got := g.Nodes(); len(got) != 11 {
		t.Errorf("Nodes() after create = %d, want 11", len(got))
	}
	if got := g.NodesByLabel("Even"); len(got) != 6 {
		t.Errorf("Even after create = %d, want 6", len(got))
	}
	// The snapshot held from before the mutation is unchanged (it is a
	// point-in-time order, not a live view).
	if len(before) != 10 || len(evenBefore) != 5 {
		t.Errorf("held snapshots must not change length")
	}

	if err := g.DeleteNode(n); err != nil {
		t.Fatal(err)
	}
	if got := g.Nodes(); len(got) != 10 {
		t.Errorf("Nodes() after delete = %d, want 10", len(got))
	}
	// Ordering is by identifier.
	got := g.Nodes()
	for i := 1; i < len(got); i++ {
		if got[i-1].ID() >= got[i].ID() {
			t.Fatalf("Nodes() not sorted by id at %d", i)
		}
	}
	// Label changes invalidate label orders too.
	if err := g.AddNodeLabel(got[0], "Odd"); err != nil {
		t.Fatal(err)
	}
	if len(g.NodesByLabel("Odd")) != 6 {
		t.Errorf("Odd after AddNodeLabel = %d, want 6", len(g.NodesByLabel("Odd")))
	}
	if err := g.RemoveNodeLabel(got[0], "Odd"); err != nil {
		t.Fatal(err)
	}
	if len(g.NodesByLabel("Odd")) != 5 {
		t.Errorf("Odd after RemoveNodeLabel = %d, want 5", len(g.NodesByLabel("Odd")))
	}
}

// TestScanSnapshotConcurrent hammers the snapshot path from concurrent
// readers while writers invalidate it; meaningful under -race. Each reader
// checks its slice is internally consistent (sorted, no nils).
func TestScanSnapshotConcurrent(t *testing.T) {
	g := scanTestGraph(200)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				nodes := g.Nodes()
				for i := 1; i < len(nodes); i++ {
					if nodes[i] == nil || nodes[i-1].ID() >= nodes[i].ID() {
						t.Error("inconsistent snapshot")
						return
					}
				}
				g.NodesByLabel("Even")
				g.NodesByLabel("Odd")
			}
		}()
	}
	for i := 0; i < 200; i++ {
		g.CreateNode([]string{"Even"}, nil)
	}
	close(stop)
	wg.Wait()
	if got := len(g.Nodes()); got != 400 {
		t.Errorf("final node count = %d, want 400", got)
	}
}

// TestEmptyIndexBucketsPruned covers the delete-time pruning satellite:
// Labels() and RelationshipTypes() must forget labels/types whose last
// entity was removed, without a per-call emptiness scan.
func TestEmptyIndexBucketsPruned(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"Gone"}, nil)
	b := g.CreateNode([]string{"Stays"}, nil)
	r, err := g.CreateRelationship(a, b, "ONCE", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Labels(); len(got) != 2 {
		t.Fatalf("Labels = %v", got)
	}
	if got := g.RelationshipTypes(); len(got) != 1 || got[0] != "ONCE" {
		t.Fatalf("RelationshipTypes = %v", got)
	}
	if err := g.DeleteRelationship(r); err != nil {
		t.Fatal(err)
	}
	if got := g.RelationshipTypes(); len(got) != 0 {
		t.Errorf("RelationshipTypes after delete = %v, want empty", got)
	}
	if err := g.DetachDeleteNode(a); err != nil {
		t.Fatal(err)
	}
	if got := g.Labels(); len(got) != 1 || got[0] != "Stays" {
		t.Errorf("Labels after delete = %v, want [Stays]", got)
	}
	// Re-creating the label/type works after pruning.
	if _, err := g.CreateRelationship(b, g.CreateNode([]string{"Gone"}, nil), "ONCE", nil); err != nil {
		t.Fatal(err)
	}
	if got := g.Labels(); len(got) != 2 {
		t.Errorf("Labels after re-create = %v", got)
	}
	if got := g.RelationshipTypes(); len(got) != 1 {
		t.Errorf("RelationshipTypes after re-create = %v", got)
	}
}

// TestTypeBucketsMatchFlatAdjacency cross-checks the bucketed accessors
// against the flat adjacency under creates and deletes, including
// self-loops and multi-type filters.
func TestTypeBucketsMatchFlatAdjacency(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	c := g.CreateNode(nil, nil)
	mk := func(from, to *Node, typ string) *Relationship {
		r, err := g.CreateRelationship(from, to, typ, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mk(a, b, "X")
	loop := mk(a, a, "X")
	mk(a, c, "Y")
	mk(b, a, "X")
	mk(c, a, "Z")

	check := func() {
		t.Helper()
		for _, dir := range []Direction{Outgoing, Incoming, Both} {
			for _, types := range [][]string{nil, {"X"}, {"Y"}, {"X", "Z"}, {"X", "X"}, {"Missing"}} {
				want := fmt.Sprint(relIDsVia(a, dir, types, true))
				got := fmt.Sprint(relIDsVia(a, dir, types, false))
				if got != want {
					t.Errorf("dir=%v types=%v: EachRelationship=%v, reference=%v", dir, types, got, want)
				}
				wantDeg := len(relIDsVia(a, dir, types, true))
				if dir == Both {
					// Degree double-counts self-loops (both adjacency lists),
					// matching the pre-bucket behaviour.
					wantDeg = degreeReference(a, dir, types)
				}
				if gotDeg := a.Degree(dir, dedupTypes(types)...); gotDeg != wantDeg {
					t.Errorf("dir=%v types=%v: Degree=%d, want %d", dir, types, gotDeg, wantDeg)
				}
			}
		}
	}
	check()
	if err := g.DeleteRelationship(loop); err != nil {
		t.Fatal(err)
	}
	check()
}

// relIDsVia lists a's incident relationship ids either through the reference
// implementation (flat walk mirroring the pre-bucket code) or through
// EachRelationship.
func relIDsVia(n *Node, dir Direction, types []string, reference bool) []int64 {
	var out []int64
	if reference {
		match := func(r *Relationship) bool { return typeMatches(r.typ, types) }
		if dir == Outgoing || dir == Both {
			for _, r := range n.out {
				if match(r) {
					out = append(out, r.ID())
				}
			}
		}
		if dir == Incoming || dir == Both {
			for _, r := range n.in {
				if match(r) {
					if dir == Both && r.start == r.end {
						continue
					}
					out = append(out, r.ID())
				}
			}
		}
		return out
	}
	n.EachRelationship(dir, types, func(r *Relationship) bool {
		out = append(out, r.ID())
		return true
	})
	return out
}

// degreeReference mirrors the pre-bucket Degree loop (which counted
// self-loops twice for Both).
func degreeReference(n *Node, dir Direction, types []string) int {
	count := 0
	if dir == Outgoing || dir == Both {
		for _, r := range n.out {
			if typeMatches(r.typ, types) {
				count++
			}
		}
	}
	if dir == Incoming || dir == Both {
		for _, r := range n.in {
			if typeMatches(r.typ, types) {
				count++
			}
		}
	}
	return count
}

func dedupTypes(types []string) []string {
	var out []string
	for i, t := range types {
		if !duplicateType(types, i) {
			out = append(out, t)
		}
	}
	return out
}

// BenchmarkScanSnapshot contrasts the warm snapshot hit (amortised cost of
// every scan and morsel partitioning) with a forced rebuild after an epoch
// bump.
func BenchmarkScanSnapshot(b *testing.B) {
	g := scanTestGraph(50000)
	b.Run("hit", func(b *testing.B) {
		g.Nodes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(g.Nodes()) != 50000 {
				b.Fatal("wrong count")
			}
		}
	})
	b.Run("label-hit", func(b *testing.B) {
		g.NodesByLabel("Even")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(g.NodesByLabel("Even")) != 25000 {
				b.Fatal("wrong count")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		n, _ := g.NodeByID(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Touch a property to bump the epoch, forcing a rebuild.
			if err := g.SetNodeProperty(n, "touch", value.NewInt(int64(i))); err != nil {
				b.Fatal(err)
			}
			if len(g.Nodes()) != 50000 {
				b.Fatal("wrong count")
			}
		}
	})
}
