package graph

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestStats(t *testing.T) {
	g := New()
	s := g.Stats()
	if s.NodeCount != 0 || s.RelationshipCount != 0 || s.AverageDegree != 0 {
		t.Errorf("empty graph stats wrong: %+v", s)
	}
	if s.LabelSelectivity("X") != 1.0 {
		t.Errorf("selectivity on empty graph should be 1.0")
	}

	a := g.CreateNode([]string{"Person"}, nil)
	b := g.CreateNode([]string{"Person"}, nil)
	c := g.CreateNode([]string{"Publication"}, nil)
	if _, err := g.CreateRelationship(a, b, "KNOWS", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CreateRelationship(a, c, "AUTHORS", nil); err != nil {
		t.Fatal(err)
	}

	s = g.Stats()
	if s.NodeCount != 3 || s.RelationshipCount != 2 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.LabelCardinality("Person") != 2 || s.LabelCardinality("Publication") != 1 || s.LabelCardinality("X") != 0 {
		t.Errorf("label cardinalities wrong: %+v", s.NodesByLabel)
	}
	if s.TypeCardinality("KNOWS") != 1 || s.TypeCardinality("MISSING") != 0 {
		t.Errorf("type cardinalities wrong: %+v", s.RelationshipsByType)
	}
	if math.Abs(s.AverageDegree-4.0/3.0) > 1e-9 {
		t.Errorf("average degree = %f", s.AverageDegree)
	}
	if math.Abs(s.LabelSelectivity("Person")-2.0/3.0) > 1e-9 {
		t.Errorf("selectivity = %f", s.LabelSelectivity("Person"))
	}
}

// Property: after creating n nodes with label L and m without, the label
// index and statistics agree.
func TestQuickLabelIndexMatchesStats(t *testing.T) {
	f := func(withLabel, without uint8) bool {
		n := int(withLabel % 32)
		m := int(without % 32)
		g := New()
		for i := 0; i < n; i++ {
			g.CreateNode([]string{"L"}, nil)
		}
		for i := 0; i < m; i++ {
			g.CreateNode(nil, nil)
		}
		s := g.Stats()
		return len(g.NodesByLabel("L")) == n && s.LabelCardinality("L") == n && s.NodeCount == n+m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The store must be safe for concurrent mixed use.
func TestConcurrentAccess(t *testing.T) {
	g := New()
	seed := make([]*Node, 0, 50)
	for i := 0; i < 50; i++ {
		seed = append(seed, g.CreateNode([]string{"Seed"}, props("i", i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 4 {
				case 0:
					n := g.CreateNode([]string{"Person"}, props("w", w))
					if _, err := g.CreateRelationship(n, seed[i%len(seed)], "KNOWS", nil); err != nil {
						t.Errorf("create rel: %v", err)
						return
					}
				case 1:
					g.NodesByLabel("Person")
				case 2:
					g.Stats()
				case 3:
					if err := g.SetNodeProperty(seed[i%len(seed)], "touched", value.NewInt(int64(w))); err != nil {
						t.Errorf("set prop: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := g.Stats()
	if s.NodeCount != 50+8*25 {
		t.Errorf("node count after concurrent writes = %d", s.NodeCount)
	}
	if s.RelationshipCount != 8*25 {
		t.Errorf("relationship count after concurrent writes = %d", s.RelationshipCount)
	}
}

// Index statistics must track mutations incrementally (counters, no scans)
// and expose sane selectivity figures.
func TestIndexStatisticsIncremental(t *testing.T) {
	g := New()
	if len(g.Stats().Indexes) != 0 {
		t.Fatalf("no indexes expected on a fresh graph")
	}
	g.CreateIndex("P", "k")
	for i := 0; i < 10; i++ {
		g.CreateNode([]string{"P"}, props("k", i%5))
	}
	g.CreateNode([]string{"P"}, nil)           // no property: not indexed
	g.CreateNode([]string{"Q"}, props("k", 1)) // other label: not indexed

	is, ok := g.Stats().Index("P", "k")
	if !ok {
		t.Fatalf("index stats missing")
	}
	if is.Entries != 10 || is.DistinctKeys != 5 {
		t.Fatalf("stats = %+v (want 10 entries, 5 distinct)", is)
	}
	if is.RowsPerKey() != 2 {
		t.Errorf("RowsPerKey = %f", is.RowsPerKey())
	}
	if is.Selectivity() != 0.2 {
		t.Errorf("Selectivity = %f", is.Selectivity())
	}

	// Deletions shrink the counters; emptied buckets shrink DistinctKeys.
	for _, n := range g.NodesByLabelProperty("P", "k", value.NewInt(4)) {
		if err := g.DetachDeleteNode(n); err != nil {
			t.Fatal(err)
		}
	}
	is, _ = g.Stats().Index("P", "k")
	if is.Entries != 8 || is.DistinctKeys != 4 {
		t.Errorf("stats after delete = %+v (want 8 entries, 4 distinct)", is)
	}

	g.DropIndex("P", "k")
	if len(g.Stats().Indexes) != 0 {
		t.Errorf("dropped index still reported")
	}
}

func TestTypeDegree(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	for i := 0; i < 4; i++ {
		if _, err := g.CreateRelationship(a, b, "R", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.CreateRelationship(b, a, "S", nil); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if got := s.TypeDegree([]string{"R"}, Outgoing); got != 2 {
		t.Errorf("TypeDegree(R, out) = %f", got)
	}
	if got := s.TypeDegree([]string{"R"}, Both); got != 4 {
		t.Errorf("TypeDegree(R, both) = %f", got)
	}
	if got := s.TypeDegree(nil, Outgoing); got != 2.5 {
		t.Errorf("TypeDegree(all, out) = %f", got)
	}
	if got := s.TypeDegree([]string{"R", "R", "S"}, Outgoing); got != 2.5 {
		t.Errorf("duplicate types must count once: %f", got)
	}
	if got := (Statistics{}).TypeDegree([]string{"R"}, Outgoing); got != 0 {
		t.Errorf("empty graph degree = %f", got)
	}
}
