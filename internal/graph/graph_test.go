package graph

import (
	"errors"
	"testing"

	"repro/internal/value"
)

func props(kv ...any) map[string]value.Value {
	out := make(map[string]value.Value)
	for i := 0; i < len(kv); i += 2 {
		v, err := value.FromGo(kv[i+1])
		if err != nil {
			panic(err)
		}
		out[kv[i].(string)] = v
	}
	return out
}

func TestCreateNodeAndAccessors(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"Person", "Researcher", "Person"}, props("name", "Nils", "age", 44))
	if n.ID() == 0 {
		t.Fatalf("node should have a non-zero id")
	}
	labels := n.Labels()
	if len(labels) != 2 || labels[0] != "Person" || labels[1] != "Researcher" {
		t.Errorf("labels should be deduplicated and sorted, got %v", labels)
	}
	if !n.HasLabel("Person") || n.HasLabel("Student") {
		t.Errorf("HasLabel wrong")
	}
	if got := n.Property("name"); got != value.NewString("Nils") {
		t.Errorf("Property(name) = %v", got)
	}
	if !value.IsNull(n.Property("missing")) {
		t.Errorf("missing property should be null")
	}
	keys := n.PropertyKeys()
	if len(keys) != 2 || keys[0] != "age" || keys[1] != "name" {
		t.Errorf("PropertyKeys = %v", keys)
	}
	if got, ok := g.NodeByID(n.ID()); !ok || got != n {
		t.Errorf("NodeByID failed")
	}
	if _, ok := g.NodeByID(999); ok {
		t.Errorf("NodeByID should miss for unknown ids")
	}
}

func TestCreateNodeDropsNullProperties(t *testing.T) {
	g := New()
	n := g.CreateNode(nil, map[string]value.Value{"a": value.Null(), "b": value.NewInt(1)})
	if len(n.PropertyKeys()) != 1 {
		t.Errorf("null property should not be stored: %v", n.PropertyKeys())
	}
}

func TestCreateRelationshipAndAdjacency(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	r, err := g.CreateRelationship(a, b, "KNOWS", props("since", 1985))
	if err != nil {
		t.Fatalf("CreateRelationship: %v", err)
	}
	if r.RelType() != "KNOWS" || r.StartNodeID() != a.ID() || r.EndNodeID() != b.ID() {
		t.Errorf("relationship endpoints wrong")
	}
	if r.StartNode() != a || r.EndNode() != b {
		t.Errorf("StartNode/EndNode wrong")
	}
	if r.Other(a) != b || r.Other(b) != a {
		t.Errorf("Other wrong")
	}
	if got := r.Property("since"); got != value.NewInt(1985) {
		t.Errorf("relationship property = %v", got)
	}
	if !value.IsNull(r.Property("missing")) {
		t.Errorf("missing relationship property should be null")
	}
	if len(r.PropertyKeys()) != 1 {
		t.Errorf("PropertyKeys = %v", r.PropertyKeys())
	}

	if got := a.Degree(Outgoing); got != 1 {
		t.Errorf("out degree of a = %d", got)
	}
	if got := a.Degree(Incoming); got != 0 {
		t.Errorf("in degree of a = %d", got)
	}
	if got := b.Degree(Incoming, "KNOWS"); got != 1 {
		t.Errorf("typed in degree of b = %d", got)
	}
	if got := b.Degree(Incoming, "OTHER"); got != 0 {
		t.Errorf("degree with non-matching type = %d", got)
	}
	if got := a.Degree(Both); got != 1 {
		t.Errorf("both degree of a = %d", got)
	}
	if rels := a.Relationships(Outgoing, "KNOWS"); len(rels) != 1 || rels[0] != r {
		t.Errorf("Relationships(Outgoing) = %v", rels)
	}
	if rels := b.Relationships(Both); len(rels) != 1 {
		t.Errorf("Relationships(Both) on b = %v", rels)
	}
	if got, ok := g.RelationshipByID(r.ID()); !ok || got != r {
		t.Errorf("RelationshipByID failed")
	}
}

func TestCreateRelationshipToForeignNode(t *testing.T) {
	g1 := New()
	g2 := New()
	a := g1.CreateNode(nil, nil)
	b := g2.CreateNode(nil, nil)
	if _, err := g1.CreateRelationship(a, b, "X", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("relating to a node of another graph should fail, got %v", err)
	}
	if _, err := g1.CreateRelationship(b, a, "X", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("relating from a node of another graph should fail, got %v", err)
	}
}

func TestSelfLoopAdjacency(t *testing.T) {
	g := New()
	n := g.CreateNode(nil, nil)
	if _, err := g.CreateRelationship(n, n, "LOOP", nil); err != nil {
		t.Fatalf("self loop: %v", err)
	}
	// A self-loop is reported once when traversing Both.
	if rels := n.Relationships(Both); len(rels) != 1 {
		t.Errorf("self loop should appear once in Both, got %d", len(rels))
	}
	if rels := n.Relationships(Outgoing); len(rels) != 1 {
		t.Errorf("self loop outgoing = %d", len(rels))
	}
	if rels := n.Relationships(Incoming); len(rels) != 1 {
		t.Errorf("self loop incoming = %d", len(rels))
	}
}

func TestNodesAndRelationshipsOrdered(t *testing.T) {
	g := New()
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, g.CreateNode(nil, nil).ID())
	}
	nodes := g.Nodes()
	if len(nodes) != 10 {
		t.Fatalf("expected 10 nodes, got %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID() >= nodes[i].ID() {
			t.Errorf("nodes not ordered by id")
		}
	}
	for i := 0; i < 9; i++ {
		a, _ := g.NodeByID(ids[i])
		b, _ := g.NodeByID(ids[i+1])
		if _, err := g.CreateRelationship(a, b, "NEXT", nil); err != nil {
			t.Fatal(err)
		}
	}
	rels := g.Relationships()
	if len(rels) != 9 {
		t.Fatalf("expected 9 relationships, got %d", len(rels))
	}
	for i := 1; i < len(rels); i++ {
		if rels[i-1].ID() >= rels[i].ID() {
			t.Errorf("relationships not ordered by id")
		}
	}
}

func TestLabelAndTypeIndexes(t *testing.T) {
	g := New()
	p1 := g.CreateNode([]string{"Person"}, nil)
	p2 := g.CreateNode([]string{"Person", "Student"}, nil)
	g.CreateNode([]string{"Publication"}, nil)
	if got := g.NodesByLabel("Person"); len(got) != 2 {
		t.Errorf("NodesByLabel(Person) = %d", len(got))
	}
	if got := g.NodesByLabel("Student"); len(got) != 1 || got[0] != p2 {
		t.Errorf("NodesByLabel(Student) wrong")
	}
	if got := g.NodesByLabel("Missing"); got != nil {
		t.Errorf("unknown label should return nil")
	}
	if _, err := g.CreateRelationship(p1, p2, "KNOWS", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CreateRelationship(p2, p1, "SUPERVISES", nil); err != nil {
		t.Fatal(err)
	}
	if got := g.RelationshipsByType("KNOWS"); len(got) != 1 {
		t.Errorf("RelationshipsByType(KNOWS) = %d", len(got))
	}
	if got := g.RelationshipsByType("MISSING"); got != nil {
		t.Errorf("unknown type should return nil")
	}
	labels := g.Labels()
	if len(labels) != 3 || labels[0] != "Person" || labels[1] != "Publication" || labels[2] != "Student" {
		t.Errorf("Labels = %v", labels)
	}
	types := g.RelationshipTypes()
	if len(types) != 2 || types[0] != "KNOWS" || types[1] != "SUPERVISES" {
		t.Errorf("RelationshipTypes = %v", types)
	}
}

func TestDeleteRelationship(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRelationship(a, b, "R", nil)
	if err := g.DeleteRelationship(r); err != nil {
		t.Fatalf("DeleteRelationship: %v", err)
	}
	if a.Degree(Both) != 0 || b.Degree(Both) != 0 {
		t.Errorf("adjacency not cleaned up")
	}
	if _, ok := g.RelationshipByID(r.ID()); ok {
		t.Errorf("relationship still reachable after delete")
	}
	if len(g.RelationshipsByType("R")) != 0 {
		t.Errorf("type index not cleaned up")
	}
	if err := g.DeleteRelationship(r); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete should report not found, got %v", err)
	}
}

func TestDeleteNode(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"L"}, nil)
	b := g.CreateNode(nil, nil)
	if _, err := g.CreateRelationship(a, b, "R", nil); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteNode(a); !errors.Is(err, ErrNodeHasRelationships) {
		t.Errorf("deleting a connected node should fail, got %v", err)
	}
	if err := g.DetachDeleteNode(a); err != nil {
		t.Fatalf("DetachDeleteNode: %v", err)
	}
	if _, ok := g.NodeByID(a.ID()); ok {
		t.Errorf("node still reachable after detach delete")
	}
	if len(g.Relationships()) != 0 {
		t.Errorf("relationships should be removed by detach delete")
	}
	if len(g.NodesByLabel("L")) != 0 {
		t.Errorf("label index not cleaned up")
	}
	if b.Degree(Both) != 0 {
		t.Errorf("other endpoint adjacency not cleaned up")
	}
	if err := g.DeleteNode(b); err != nil {
		t.Errorf("deleting an isolated node should succeed, got %v", err)
	}
	if err := g.DeleteNode(b); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete should report not found, got %v", err)
	}
	if err := g.DetachDeleteNode(b); !errors.Is(err, ErrNotFound) {
		t.Errorf("detach delete of a missing node should report not found, got %v", err)
	}
}

func TestSetProperties(t *testing.T) {
	g := New()
	n := g.CreateNode(nil, props("a", 1))
	if err := g.SetNodeProperty(n, "b", value.NewString("x")); err != nil {
		t.Fatal(err)
	}
	if n.Property("b") != value.NewString("x") {
		t.Errorf("SetNodeProperty did not store the value")
	}
	if err := g.SetNodeProperty(n, "a", value.Null()); err != nil {
		t.Fatal(err)
	}
	if !value.IsNull(n.Property("a")) {
		t.Errorf("setting a property to null should remove it")
	}
	if err := g.ReplaceNodeProperties(n, props("only", true)); err != nil {
		t.Fatal(err)
	}
	if len(n.PropertyKeys()) != 1 || n.Property("only") != value.NewBool(true) {
		t.Errorf("ReplaceNodeProperties wrong: %v", n.PropertyKeys())
	}

	a := g.CreateNode(nil, nil)
	r, _ := g.CreateRelationship(n, a, "R", nil)
	if err := g.SetRelationshipProperty(r, "w", value.NewFloat(0.5)); err != nil {
		t.Fatal(err)
	}
	if r.Property("w") != value.NewFloat(0.5) {
		t.Errorf("SetRelationshipProperty did not store the value")
	}
	if err := g.SetRelationshipProperty(r, "w", value.Null()); err != nil {
		t.Fatal(err)
	}
	if !value.IsNull(r.Property("w")) {
		t.Errorf("setting a relationship property to null should remove it")
	}
	if err := g.ReplaceRelationshipProperties(r, props("z", 9)); err != nil {
		t.Fatal(err)
	}
	if len(r.PropertyKeys()) != 1 || r.Property("z") != value.NewInt(9) {
		t.Errorf("ReplaceRelationshipProperties wrong")
	}

	// Errors on deleted entities.
	other := g.CreateNode(nil, nil)
	if err := g.DeleteNode(other); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProperty(other, "x", value.NewInt(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("setting a property on a deleted node should fail")
	}
}

func TestAddAndRemoveLabels(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"A"}, nil)
	if err := g.AddNodeLabel(n, "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNodeLabel(n, "B"); err != nil {
		t.Fatal(err) // idempotent
	}
	if got := n.Labels(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("labels after add = %v", got)
	}
	if len(g.NodesByLabel("B")) != 1 {
		t.Errorf("label index not updated on add")
	}
	if err := g.RemoveNodeLabel(n, "A"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNodeLabel(n, "A"); err != nil {
		t.Fatal(err) // idempotent
	}
	if got := n.Labels(); len(got) != 1 || got[0] != "B" {
		t.Errorf("labels after remove = %v", got)
	}
	if len(g.NodesByLabel("A")) != 0 {
		t.Errorf("label index not updated on remove")
	}
}

func TestGraphNamesAndString(t *testing.T) {
	g := NewNamed("social")
	if g.Name() != "social" {
		t.Errorf("Name = %q", g.Name())
	}
	g.CreateNode(nil, nil)
	if got := g.String(); got != "Graph(social: 1 nodes, 0 relationships)" {
		t.Errorf("String = %q", got)
	}
	if New().Name() != "graph" {
		t.Errorf("default graph name should be \"graph\"")
	}
}

func TestDirectionString(t *testing.T) {
	if Outgoing.String() != "OUTGOING" || Incoming.String() != "INCOMING" || Both.String() != "BOTH" {
		t.Errorf("Direction.String wrong")
	}
}
