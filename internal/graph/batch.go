package graph

// Batched accessors for the vectorized executor: property gathers over node
// slices and adjacency iteration with the direction/type dispatch hoisted
// out of the per-node loop. Both read the live store under the same rules as
// their scalar counterparts (scan snapshots pin the node set; adjacency must
// not be mutated during iteration — readers run on a pinned MVCC version).

import "repro/internal/value"

// PropertyColumn gathers nodes[i].Property(key) into out[:len(nodes)] and
// returns it. Missing properties gather as value.Null(), matching
// Node.Property. out must have len >= len(nodes); the same backing slice can
// be reused across batches.
func PropertyColumn(nodes []*Node, key string, out []value.Value) []value.Value {
	out = out[:len(nodes)]
	for i, n := range nodes {
		if v, ok := n.props[key]; ok {
			out[i] = v
		} else {
			out[i] = value.Null()
		}
	}
	return out
}

// EachRelationshipBatch iterates the incident relationships of every node in
// the slice, calling fn(ord, rel) with the node's ordinal. Per-node
// semantics and order are exactly EachRelationship's (single-type walks the
// type bucket; Both reports self-loops once), but the type/direction
// dispatch happens once per batch instead of once per node. fn returning
// false stops the whole iteration (the function then also returns false).
func EachRelationshipBatch(nodes []*Node, dir Direction, types []string, fn func(ord int, r *Relationship) bool) bool {
	if len(types) == 1 {
		t := types[0]
		for ord, n := range nodes {
			if dir == Outgoing || dir == Both {
				for _, r := range n.outByType[t] {
					if !fn(ord, r) {
						return false
					}
				}
			}
			if dir == Incoming || dir == Both {
				for _, r := range n.inByType[t] {
					if dir == Both && r.start == r.end {
						continue
					}
					if !fn(ord, r) {
						return false
					}
				}
			}
		}
		return true
	}
	for ord, n := range nodes {
		if dir == Outgoing || dir == Both {
			for _, r := range n.out {
				if !typeMatches(r.typ, types) {
					continue
				}
				if !fn(ord, r) {
					return false
				}
			}
		}
		if dir == Incoming || dir == Both {
			for _, r := range n.in {
				if !typeMatches(r.typ, types) {
					continue
				}
				if dir == Both && r.start == r.end {
					continue
				}
				if !fn(ord, r) {
					return false
				}
			}
		}
	}
	return true
}
