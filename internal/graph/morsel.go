package graph

// Morsel-driven scan partitioning. A morsel is a fixed-size slice of the
// node array underlying a scan operator; the execution engine hands morsels
// to a bounded pool of workers so that one large read query can use many
// cores (morsel-driven parallelism in the style of HyPer [Leis et al. 2014],
// applied to the paper's scan→filter→project hot path).

// DefaultMorselSize is the number of nodes per morsel when the caller does
// not configure one. Large enough to amortise per-morsel scheduling, small
// enough that a typical scan splits into many more morsels than workers,
// which keeps the pool load-balanced when per-row costs are skewed.
const DefaultMorselSize = 1024

// partition slices nodes into contiguous chunks of at most size elements,
// preserving order. The chunks alias the input slice; they are never written.
func partition(nodes []*Node, size int) [][]*Node {
	if size <= 0 {
		size = DefaultMorselSize
	}
	if len(nodes) == 0 {
		return nil
	}
	out := make([][]*Node, 0, (len(nodes)+size-1)/size)
	for start := 0; start < len(nodes); start += size {
		end := start + size
		if end > len(nodes) {
			end = len(nodes)
		}
		out = append(out, nodes[start:end])
	}
	return out
}

// Morsels partitions an arbitrary node slice (e.g. the result of an index
// seek) into morsels of at most size nodes, preserving order. The chunks
// alias the input slice.
func Morsels(nodes []*Node, size int) [][]*Node {
	return partition(nodes, size)
}

// NodeMorsels partitions all nodes of the graph (in identifier order) into
// morsels of at most size nodes. The node slices are snapshots: a later
// mutation does not change them, matching the engine's snapshot-read
// discipline (scans run entirely under the engine's shared lock).
func (g *Graph) NodeMorsels(size int) [][]*Node {
	return partition(g.Nodes(), size)
}

// LabelMorsels partitions the nodes carrying the label (in identifier order)
// into morsels of at most size nodes.
func (g *Graph) LabelMorsels(label string, size int) [][]*Node {
	return partition(g.NodesByLabel(label), size)
}
