package graph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/value"
)

// ErrNodeHasRelationships is returned by DeleteNode when the node still has
// incident relationships (Cypher requires DETACH DELETE in that case).
var ErrNodeHasRelationships = errors.New("graph: cannot delete node with relationships (use DETACH DELETE)")

// ErrNotFound is returned when an entity does not exist (e.g. it was deleted).
var ErrNotFound = errors.New("graph: entity not found")

// CreateNode creates a node with the given labels and properties and returns
// it. Null-valued properties are not stored (Cypher treats storing null as
// removing the property).
func (g *Graph) CreateNode(labels []string, props map[string]value.Value) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextNodeID++
	n := &Node{
		id:    g.nextNodeID,
		graph: g,
		props: make(map[string]value.Value, len(props)),
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			n.labels = append(n.labels, l)
		}
	}
	sort.Strings(n.labels)
	for k, v := range props {
		if !value.IsNull(v) {
			n.props[k] = v
		}
	}
	g.nodes[n.id] = n
	for _, l := range n.labels {
		g.addToLabelIndex(l, n)
	}
	g.addToPropIndexes(n)
	g.emit(Mutation{Kind: MutCreateNode, ID: n.id, Labels: n.labels, Props: n.props})
	g.bumpEpoch()
	return n
}

// CreateRelationship creates a relationship of the given type from start to
// end, with the given properties.
func (g *Graph) CreateRelationship(start, end *Node, typ string, props map[string]value.Value) (*Relationship, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[start.id]; !ok || start.graph != g {
		return nil, fmt.Errorf("%w: start node %d", ErrNotFound, start.id)
	}
	if _, ok := g.nodes[end.id]; !ok || end.graph != g {
		return nil, fmt.Errorf("%w: end node %d", ErrNotFound, end.id)
	}
	g.nextRelID++
	r := &Relationship{
		id:    g.nextRelID,
		typ:   typ,
		start: start,
		end:   end,
		props: make(map[string]value.Value, len(props)),
	}
	for k, v := range props {
		if !value.IsNull(v) {
			r.props[k] = v
		}
	}
	g.rels[r.id] = r
	start.out = append(start.out, r)
	end.in = append(end.in, r)
	if start.outByType == nil {
		start.outByType = make(map[string][]*Relationship)
	}
	start.outByType[typ] = append(start.outByType[typ], r)
	if end.inByType == nil {
		end.inByType = make(map[string][]*Relationship)
	}
	end.inByType[typ] = append(end.inByType[typ], r)
	if g.typeIndex[typ] == nil {
		g.typeIndex[typ] = make(map[int64]*Relationship)
	}
	g.typeIndex[typ][r.id] = r
	g.emit(Mutation{Kind: MutCreateRel, ID: r.id, Start: start.id, End: end.id, Label: typ, Props: r.props})
	g.bumpEpoch()
	return r, nil
}

// DeleteRelationship removes the relationship from the graph.
func (g *Graph) DeleteRelationship(r *Relationship) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deleteRelationshipLocked(r)
}

func (g *Graph) deleteRelationshipLocked(r *Relationship) error {
	if _, ok := g.rels[r.id]; !ok {
		return fmt.Errorf("%w: relationship %d", ErrNotFound, r.id)
	}
	delete(g.rels, r.id)
	delete(g.typeIndex[r.typ], r.id)
	if len(g.typeIndex[r.typ]) == 0 {
		// Prune the empty bucket so RelationshipTypes never has to scan past
		// types that no longer exist.
		delete(g.typeIndex, r.typ)
	}
	r.start.out = removeRel(r.start.out, r)
	r.end.in = removeRel(r.end.in, r)
	removeRelBucket(r.start.outByType, r)
	removeRelBucket(r.end.inByType, r)
	g.emit(Mutation{Kind: MutDeleteRel, ID: r.id})
	g.bumpEpoch()
	return nil
}

// removeRelBucket removes r from its type bucket, dropping the bucket when it
// empties.
func removeRelBucket(byType map[string][]*Relationship, r *Relationship) {
	if byType == nil {
		return
	}
	rest := removeRel(byType[r.typ], r)
	if len(rest) == 0 {
		delete(byType, r.typ)
		return
	}
	byType[r.typ] = rest
}

func removeRel(rels []*Relationship, r *Relationship) []*Relationship {
	for i, x := range rels {
		if x == r {
			return append(rels[:i], rels[i+1:]...)
		}
	}
	return rels
}

// DeleteNode removes a node that has no incident relationships.
func (g *Graph) DeleteNode(n *Node) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	if len(n.out) > 0 || len(n.in) > 0 {
		return ErrNodeHasRelationships
	}
	g.removeNodeLocked(n)
	return nil
}

// DetachDeleteNode removes a node and all its incident relationships.
func (g *Graph) DetachDeleteNode(n *Node) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	for len(n.out) > 0 {
		if err := g.deleteRelationshipLocked(n.out[0]); err != nil {
			return err
		}
	}
	for len(n.in) > 0 {
		if err := g.deleteRelationshipLocked(n.in[0]); err != nil {
			return err
		}
	}
	g.removeNodeLocked(n)
	return nil
}

func (g *Graph) removeNodeLocked(n *Node) {
	delete(g.nodes, n.id)
	for _, l := range n.labels {
		g.removeFromLabelIndex(l, n)
	}
	g.removeFromPropIndexes(n)
	g.emit(Mutation{Kind: MutDeleteNode, ID: n.id})
	g.bumpEpoch()
}

// SetNodeProperty sets (or with a null value removes) a property on a node.
func (g *Graph) SetNodeProperty(n *Node, key string, v value.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	g.removeFromPropIndexes(n)
	if value.IsNull(v) {
		delete(n.props, key)
	} else {
		n.props[key] = v
	}
	g.addToPropIndexes(n)
	g.emit(Mutation{Kind: MutSetNodeProp, ID: n.id, Key: key, Value: v})
	g.bumpEpoch()
	return nil
}

// SetRelationshipProperty sets (or with a null value removes) a property on a
// relationship.
func (g *Graph) SetRelationshipProperty(r *Relationship, key string, v value.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.rels[r.id]; !ok {
		return fmt.Errorf("%w: relationship %d", ErrNotFound, r.id)
	}
	if value.IsNull(v) {
		delete(r.props, key)
	} else {
		r.props[key] = v
	}
	g.emit(Mutation{Kind: MutSetRelProp, ID: r.id, Key: key, Value: v})
	g.bumpEpoch()
	return nil
}

// ReplaceNodeProperties replaces all properties of a node (SET n = {...}).
func (g *Graph) ReplaceNodeProperties(n *Node, props map[string]value.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	g.removeFromPropIndexes(n)
	n.props = make(map[string]value.Value, len(props))
	for k, v := range props {
		if !value.IsNull(v) {
			n.props[k] = v
		}
	}
	g.addToPropIndexes(n)
	g.emit(Mutation{Kind: MutReplaceNodeProps, ID: n.id, Props: n.props})
	g.bumpEpoch()
	return nil
}

// ReplaceRelationshipProperties replaces all properties of a relationship.
func (g *Graph) ReplaceRelationshipProperties(r *Relationship, props map[string]value.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.rels[r.id]; !ok {
		return fmt.Errorf("%w: relationship %d", ErrNotFound, r.id)
	}
	r.props = make(map[string]value.Value, len(props))
	for k, v := range props {
		if !value.IsNull(v) {
			r.props[k] = v
		}
	}
	g.emit(Mutation{Kind: MutReplaceRelProps, ID: r.id, Props: r.props})
	g.bumpEpoch()
	return nil
}

// AddNodeLabel adds a label to a node.
func (g *Graph) AddNodeLabel(n *Node, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	if n.HasLabel(label) {
		return nil
	}
	n.labels = append(n.labels, label)
	sort.Strings(n.labels)
	g.addToLabelIndex(label, n)
	g.addToPropIndexes(n)
	g.emit(Mutation{Kind: MutAddLabel, ID: n.id, Label: label})
	g.bumpEpoch()
	return nil
}

// RemoveNodeLabel removes a label from a node.
func (g *Graph) RemoveNodeLabel(n *Node, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[n.id]; !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, n.id)
	}
	if !n.HasLabel(label) {
		return nil
	}
	g.removeFromPropIndexes(n)
	i := sort.SearchStrings(n.labels, label)
	n.labels = append(n.labels[:i], n.labels[i+1:]...)
	g.removeFromLabelIndex(label, n)
	g.addToPropIndexes(n)
	g.emit(Mutation{Kind: MutRemoveLabel, ID: n.id, Label: label})
	g.bumpEpoch()
	return nil
}

func (g *Graph) addToLabelIndex(label string, n *Node) {
	if g.labelIndex[label] == nil {
		g.labelIndex[label] = make(map[int64]*Node)
	}
	g.labelIndex[label][n.id] = n
}

// removeFromLabelIndex removes the node from the label's bucket, pruning the
// bucket when it empties so Labels() never iterates stale entries.
func (g *Graph) removeFromLabelIndex(label string, n *Node) {
	idx := g.labelIndex[label]
	delete(idx, n.id)
	if len(idx) == 0 {
		delete(g.labelIndex, label)
	}
}
