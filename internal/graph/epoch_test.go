package graph

import (
	"testing"

	"repro/internal/value"
)

func TestEpochMovesOnEveryMutation(t *testing.T) {
	g := New()
	last := g.Epoch()
	step := func(what string) {
		t.Helper()
		if e := g.Epoch(); e <= last {
			t.Errorf("%s should bump the epoch (still %d)", what, e)
		}
		last = g.Epoch()
	}

	n := g.CreateNode([]string{"A"}, nil)
	step("CreateNode")
	m := g.CreateNode([]string{"B"}, nil)
	step("CreateNode")
	r, err := g.CreateRelationship(n, m, "REL", nil)
	if err != nil {
		t.Fatal(err)
	}
	step("CreateRelationship")
	if err := g.SetNodeProperty(n, "k", value.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	step("SetNodeProperty")
	if err := g.SetRelationshipProperty(r, "w", value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	step("SetRelationshipProperty")
	if err := g.AddNodeLabel(n, "C"); err != nil {
		t.Fatal(err)
	}
	step("AddNodeLabel")
	if err := g.RemoveNodeLabel(n, "C"); err != nil {
		t.Fatal(err)
	}
	step("RemoveNodeLabel")
	g.CreateIndex("A", "k")
	step("CreateIndex")
	g.DropIndex("A", "k")
	step("DropIndex")
	if err := g.DeleteRelationship(r); err != nil {
		t.Fatal(err)
	}
	step("DeleteRelationship")
	if err := g.DeleteNode(m); err != nil {
		t.Fatal(err)
	}
	step("DeleteNode")
	if err := g.DetachDeleteNode(n); err != nil {
		t.Fatal(err)
	}
	step("DetachDeleteNode")
}

func TestEpochStableOnReads(t *testing.T) {
	g := New()
	g.CreateNode([]string{"A"}, map[string]value.Value{"k": value.NewInt(1)})
	g.CreateIndex("A", "k")
	before := g.Epoch()
	g.Nodes()
	g.NodesByLabel("A")
	g.NodesByLabelProperty("A", "k", value.NewInt(1))
	g.Stats()
	g.HasIndex("A", "k")
	g.Indexes()
	if g.Epoch() != before {
		t.Errorf("read-only operations must not move the epoch")
	}
}
