package graph

import (
	"fmt"

	"repro/internal/value"
)

// Clone builds an independent deep copy of the graph: same entity
// identifiers, labels, properties, relationships, declared indexes, ID
// counters and mutation epoch, but sharing no mutable structure with the
// source (property values are immutable and are shared). It is built from
// the same Apply records WAL recovery uses, so indexes and statistics come
// out identical to a recovered store.
//
// Clone only reads the source, taking its usual read locks, so concurrent
// readers of the source are fine; the caller must exclude concurrent writers
// (the MVCC store clones under the engine's write mutex).
func (g *Graph) Clone() *Graph {
	c := NewNamed(g.Name())
	for _, idx := range g.Indexes() {
		c.CreateIndex(idx[0], idx[1])
	}
	for _, n := range g.Nodes() {
		// Apply copies the label slice and property map, so handing it the
		// node's live references is safe.
		if err := c.Apply(Mutation{Kind: MutCreateNode, ID: n.id, Labels: n.labels, Props: n.props}); err != nil {
			panic(fmt.Sprintf("graph: clone of consistent graph failed: %v", err))
		}
	}
	for _, r := range g.Relationships() {
		if err := c.Apply(Mutation{Kind: MutCreateRel, ID: r.id, Start: r.start.id, End: r.end.id, Label: r.typ, Props: r.props}); err != nil {
			panic(fmt.Sprintf("graph: clone of consistent graph failed: %v", err))
		}
	}
	nextNode, nextRel := g.IDCounters()
	c.SetIDCounters(nextNode, nextRel)
	c.SetEpoch(g.Epoch())
	return c
}

// SetEpoch forces the graph's mutation epoch. It exists for replica
// construction (MVCC versioning, replication): a replica built by Clone or
// replay must report its source's epoch, because equal epochs are the
// engine's proof of identical logical content (the plan cache keys on them).
// Not for general use — moving the epoch backwards can revive stale cached
// plans.
func (g *Graph) SetEpoch(epoch uint64) {
	g.epoch.Store(epoch)
}

// copyForReplay returns a Mutation safe to retain beyond the hook call: the
// Labels and Props fields of a hook-delivered record alias live store state,
// which later mutations may change in place.
func (m Mutation) copyForReplay() Mutation {
	if len(m.Labels) > 0 {
		m.Labels = append([]string(nil), m.Labels...)
	}
	if m.Props != nil {
		props := make(map[string]value.Value, len(m.Props))
		for k, v := range m.Props {
			props[k] = v
		}
		m.Props = props
	}
	return m
}
