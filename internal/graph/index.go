package graph

import (
	"sort"

	"repro/internal/value"
)

// CreateIndex declares a property index on (label, property). Existing nodes
// are indexed immediately; subsequent mutations keep the index up to date.
// Creating the same index twice is a no-op.
func (g *Graph) CreateIndex(label, property string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.createIndexLocked(label, property) {
		return
	}
	g.emit(Mutation{Kind: MutCreateIndex, Label: label, Key: property})
	g.bumpEpoch()
}

// createIndexLocked builds the index if it does not exist yet, reporting
// whether anything changed. Callers hold the write lock.
func (g *Graph) createIndexLocked(label, property string) bool {
	key := indexKey{label: label, property: property}
	if _, ok := g.propIndex[key]; ok {
		return false
	}
	idx := make(map[string][]*Node)
	for _, n := range g.labelIndex[label] {
		if v, ok := n.props[property]; ok {
			gk := value.GroupKey(v)
			idx[gk] = append(idx[gk], n)
		}
	}
	g.propIndex[key] = idx
	return true
}

// DropIndex removes a property index.
func (g *Graph) DropIndex(label, property string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.propIndex[indexKey{label: label, property: property}]; !ok {
		return
	}
	delete(g.propIndex, indexKey{label: label, property: property})
	g.emit(Mutation{Kind: MutDropIndex, Label: label, Key: property})
	g.bumpEpoch()
}

// HasIndex reports whether a property index exists on (label, property).
func (g *Graph) HasIndex(label, property string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.propIndex[indexKey{label: label, property: property}]
	return ok
}

// Indexes returns the declared (label, property) index pairs, sorted.
func (g *Graph) Indexes() [][2]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([][2]string, 0, len(g.propIndex))
	for k := range g.propIndex {
		out = append(out, [2]string{k.label, k.property})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NodesByLabelProperty returns the nodes with the given label whose property
// equals v. If an index exists it is used; otherwise the label index is
// scanned and filtered.
func (g *Graph) NodesByLabelProperty(label, property string, v value.Value) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	key := indexKey{label: label, property: property}
	if idx, ok := g.propIndex[key]; ok {
		nodes := idx[value.GroupKey(v)]
		out := append([]*Node(nil), nodes...)
		sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
		return out
	}
	var out []*Node
	for _, n := range g.labelIndex[label] {
		if pv, ok := n.props[property]; ok && value.Equals(pv, v) == value.TrueT {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// addToPropIndexes adds a node to every property index whose label/property
// it matches. Callers must hold the write lock.
func (g *Graph) addToPropIndexes(n *Node) {
	for key, idx := range g.propIndex {
		if !n.HasLabel(key.label) {
			continue
		}
		v, ok := n.props[key.property]
		if !ok {
			continue
		}
		gk := value.GroupKey(v)
		present := false
		for _, existing := range idx[gk] {
			if existing == n {
				present = true
				break
			}
		}
		if !present {
			idx[gk] = append(idx[gk], n)
		}
	}
}

// removeFromPropIndexes removes a node from every property index. Callers
// must hold the write lock.
func (g *Graph) removeFromPropIndexes(n *Node) {
	for key, idx := range g.propIndex {
		if !n.HasLabel(key.label) {
			continue
		}
		v, ok := n.props[key.property]
		if !ok {
			continue
		}
		gk := value.GroupKey(v)
		nodes := idx[gk]
		for i, existing := range nodes {
			if existing == n {
				idx[gk] = append(nodes[:i], nodes[i+1:]...)
				break
			}
		}
		if len(idx[gk]) == 0 {
			delete(idx, gk)
		}
	}
}
