package graph

import (
	"sort"
	"strings"

	"repro/internal/value"
)

// Property indexes. Each (label, property) index keeps its entries in two
// coordinated shapes:
//
//   - a hash map from the value's canonical group key (value.GroupKey) to its
//     bucket, which serves O(1) equality and IN-list seeks;
//   - the same buckets in a slice ordered by value.Compare, which serves
//     range (<, <=, >, >=) and prefix (STARTS WITH) seeks by binary search.
//
// Both shapes hold *buckets* (one per distinct value), so maintaining them on
// mutation costs one hash lookup plus — only when a distinct value appears or
// disappears — one binary-searched insert/delete in the ordered slice. The
// entries counter and the bucket count feed the planner's selectivity
// statistics (see stats.go) without ever scanning the data.

// indexBucket holds the nodes sharing one distinct indexed value.
type indexBucket struct {
	val   value.Value
	nodes []*Node
}

// propIndexData is one (label, property) index.
type propIndexData struct {
	buckets map[string]*indexBucket // group key -> bucket
	ordered []*indexBucket          // buckets sorted by value.Compare(val)
	entries int                     // total indexed nodes across buckets
}

func newPropIndexData() *propIndexData {
	return &propIndexData{buckets: map[string]*indexBucket{}}
}

// add indexes the node under v (no-op if already present in the bucket).
func (d *propIndexData) add(n *Node, v value.Value) {
	gk := value.GroupKey(v)
	b, ok := d.buckets[gk]
	if !ok {
		b = &indexBucket{val: v}
		d.buckets[gk] = b
		// Insert the new distinct value into the ordered slice. Ties under
		// value.Compare (possible across int/float beyond 2^53, where numeric
		// equality is coarser than group-key identity) may order arbitrarily
		// among themselves; range seeks re-check per bucket, so correctness
		// does not depend on tie order.
		i := sort.Search(len(d.ordered), func(i int) bool {
			return value.Compare(d.ordered[i].val, v) >= 0
		})
		d.ordered = append(d.ordered, nil)
		copy(d.ordered[i+1:], d.ordered[i:])
		d.ordered[i] = b
	}
	for _, existing := range b.nodes {
		if existing == n {
			return
		}
	}
	b.nodes = append(b.nodes, n)
	d.entries++
}

// remove un-indexes the node from the bucket holding v.
func (d *propIndexData) remove(n *Node, v value.Value) {
	gk := value.GroupKey(v)
	b, ok := d.buckets[gk]
	if !ok {
		return
	}
	for i, existing := range b.nodes {
		if existing == n {
			b.nodes = append(b.nodes[:i], b.nodes[i+1:]...)
			d.entries--
			break
		}
	}
	if len(b.nodes) > 0 {
		return
	}
	delete(d.buckets, gk)
	// Find the emptied bucket in the ordered slice: binary search to the
	// first Compare-equal position, then walk the (normally length-1) tie
	// range to the identical bucket.
	i := sort.Search(len(d.ordered), func(i int) bool {
		return value.Compare(d.ordered[i].val, b.val) >= 0
	})
	for ; i < len(d.ordered); i++ {
		if d.ordered[i] == b {
			d.ordered = append(d.ordered[:i], d.ordered[i+1:]...)
			return
		}
		if value.Compare(d.ordered[i].val, b.val) != 0 {
			return
		}
	}
}

// CreateIndex declares a property index on (label, property). Existing nodes
// are indexed immediately; subsequent mutations keep the index up to date.
// Creating the same index twice is a no-op.
func (g *Graph) CreateIndex(label, property string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.createIndexLocked(label, property) {
		return
	}
	g.emit(Mutation{Kind: MutCreateIndex, Label: label, Key: property})
	g.bumpEpoch()
}

// createIndexLocked builds the index if it does not exist yet, reporting
// whether anything changed. Callers hold the write lock.
func (g *Graph) createIndexLocked(label, property string) bool {
	key := indexKey{label: label, property: property}
	if _, ok := g.propIndex[key]; ok {
		return false
	}
	idx := newPropIndexData()
	for _, n := range g.labelIndex[label] {
		if v, ok := n.props[property]; ok {
			idx.add(n, v)
		}
	}
	g.propIndex[key] = idx
	return true
}

// DropIndex removes a property index.
func (g *Graph) DropIndex(label, property string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.propIndex[indexKey{label: label, property: property}]; !ok {
		return
	}
	delete(g.propIndex, indexKey{label: label, property: property})
	g.emit(Mutation{Kind: MutDropIndex, Label: label, Key: property})
	g.bumpEpoch()
}

// HasIndex reports whether a property index exists on (label, property).
func (g *Graph) HasIndex(label, property string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.propIndex[indexKey{label: label, property: property}]
	return ok
}

// Indexes returns the declared (label, property) index pairs, sorted.
func (g *Graph) Indexes() [][2]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([][2]string, 0, len(g.propIndex))
	for k := range g.propIndex {
		out = append(out, [2]string{k.label, k.property})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// sortByID orders a freshly collected seek result by node identifier, so
// every index access path emits rows in the same order a label scan plus
// filter would — which keeps plan choice invisible to result order.
func sortByID(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	return nodes
}

// NodesByLabelProperty returns the nodes with the given label whose property
// equals v, ordered by identifier. If an index exists it is used; otherwise
// the label index is scanned and filtered.
func (g *Graph) NodesByLabelProperty(label, property string, v value.Value) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if idx, ok := g.propIndex[indexKey{label: label, property: property}]; ok {
		var out []*Node
		if b, ok := idx.buckets[value.GroupKey(v)]; ok {
			out = appendEqualNodes(out, b, property, v)
		}
		return sortByID(out)
	}
	var out []*Node
	for _, n := range g.labelIndex[label] {
		if pv, ok := n.props[property]; ok && value.Equals(pv, v) == value.TrueT {
			out = append(out, n)
		}
	}
	return sortByID(out)
}

// appendEqualNodes appends the bucket's nodes whose stored value is
// Cypher-equal (TrueT) to v. Bucket membership is by GroupKey — the
// equivalence used for grouping — which is coarser than `=` where null or
// NaN is involved: [1, null] = [1, null] is unknown and NaN = NaN is false,
// yet both pairs share a group key. The recheck keeps every seek exactly as
// selective as the filter predicate it replaced.
func appendEqualNodes(out []*Node, b *indexBucket, property string, v value.Value) []*Node {
	for _, n := range b.nodes {
		if pv, ok := n.props[property]; ok && value.Equals(pv, v) == value.TrueT {
			out = append(out, n)
		}
	}
	return out
}

// NodesByLabelPropertyIn returns the nodes with the given label whose
// property equals any of vs (an IN-list seek), ordered by identifier. Null
// elements never match (comparison with null is unknown) and duplicate list
// elements are deduplicated, so every matching node appears exactly once.
func (g *Graph) NodesByLabelPropertyIn(label, property string, vs []value.Value) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Node
	if idx, ok := g.propIndex[indexKey{label: label, property: property}]; ok {
		seen := make(map[string]bool, len(vs))
		for _, v := range vs {
			if value.IsNull(v) {
				continue
			}
			gk := value.GroupKey(v)
			if seen[gk] {
				continue
			}
			seen[gk] = true
			if b, ok := idx.buckets[gk]; ok {
				out = appendEqualNodes(out, b, property, v)
			}
		}
		return sortByID(out)
	}
	for _, n := range g.labelIndex[label] {
		pv, ok := n.props[property]
		if !ok {
			continue
		}
		for _, v := range vs {
			if value.Equals(pv, v) == value.TrueT {
				out = append(out, n)
				break
			}
		}
	}
	return sortByID(out)
}

// NodesByLabelPropertyRange returns the nodes with the given label whose
// property lies within the (possibly half-open) range, ordered by
// identifier. A nil bound is unbounded on that side. Semantics follow
// Cypher's ternary comparisons: only values actually comparable with the
// bounds qualify (a string property never satisfies `> 5`), and nodes
// without the property never match.
func (g *Graph) NodesByLabelPropertyRange(label, property string, lo value.Value, loInc bool, hi value.Value, hiInc bool) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Node
	if idx, ok := g.propIndex[indexKey{label: label, property: property}]; ok {
		start := 0
		if lo != nil {
			start = sort.Search(len(idx.ordered), func(i int) bool {
				return value.Compare(idx.ordered[i].val, lo) >= 0
			})
		}
		for i := start; i < len(idx.ordered); i++ {
			b := idx.ordered[i]
			if t := rangeMatch(b.val, lo, loInc, hi, hiInc); t == value.TrueT {
				out = append(out, b.nodes...)
			} else if beyondRange(b.val, lo, hi) {
				// Past the comparable segment (a different value kind, or past
				// the upper bound): nothing later in the order can match.
				break
			}
		}
		return sortByID(out)
	}
	for _, n := range g.labelIndex[label] {
		if pv, ok := n.props[property]; ok && rangeMatch(pv, lo, loInc, hi, hiInc) == value.TrueT {
			out = append(out, n)
		}
	}
	return sortByID(out)
}

// rangeMatch evaluates lo OP v AND v OP hi under ternary semantics.
func rangeMatch(v, lo value.Value, loInc bool, hi value.Value, hiInc bool) value.Ternary {
	if lo != nil {
		var t value.Ternary
		if loInc {
			t = value.GreaterEq(v, lo)
		} else {
			t = value.Greater(v, lo)
		}
		if t != value.TrueT {
			return t
		}
	}
	if hi != nil {
		if hiInc {
			return value.LessEq(v, hi)
		}
		return value.Less(v, hi)
	}
	return value.TrueT
}

// beyondRange reports whether v orders (by the total orderability order)
// strictly after the range, so an ordered walk can stop. NaN sorts at the end
// of the number segment but compares false rather than beyond, so the walk
// skips it and terminates at the next kind boundary (or the slice end).
func beyondRange(v, lo, hi value.Value) bool {
	if hi != nil {
		return value.Compare(v, hi) > 0
	}
	// Only the kind segment of the lower bound can possibly match.
	return value.Compare(v, lo) > 0 && rangeMatch(v, lo, true, nil, false) == value.UnknownT
}

// NodesByLabelPropertyPrefix returns the nodes with the given label whose
// string property starts with prefix, ordered by identifier. Non-string
// properties never match (STARTS WITH on a non-string is unknown).
func (g *Graph) NodesByLabelPropertyPrefix(label, property, prefix string) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Node
	if idx, ok := g.propIndex[indexKey{label: label, property: property}]; ok {
		p := value.NewString(prefix)
		start := sort.Search(len(idx.ordered), func(i int) bool {
			return value.Compare(idx.ordered[i].val, p) >= 0
		})
		// Strings order bytewise, so all strings sharing the prefix are
		// contiguous from the first value >= prefix.
		for i := start; i < len(idx.ordered); i++ {
			s, ok := value.AsString(idx.ordered[i].val)
			if !ok || !strings.HasPrefix(s, prefix) {
				break
			}
			out = append(out, idx.ordered[i].nodes...)
		}
		return sortByID(out)
	}
	for _, n := range g.labelIndex[label] {
		pv, ok := n.props[property]
		if !ok {
			continue
		}
		if s, ok := value.AsString(pv); ok && strings.HasPrefix(s, prefix) {
			out = append(out, n)
		}
	}
	return sortByID(out)
}

// addToPropIndexes adds a node to every property index whose label/property
// it matches. Callers must hold the write lock.
func (g *Graph) addToPropIndexes(n *Node) {
	for key, idx := range g.propIndex {
		if !n.HasLabel(key.label) {
			continue
		}
		if v, ok := n.props[key.property]; ok {
			idx.add(n, v)
		}
	}
}

// removeFromPropIndexes removes a node from every property index. Callers
// must hold the write lock.
func (g *Graph) removeFromPropIndexes(n *Node) {
	for key, idx := range g.propIndex {
		if !n.HasLabel(key.label) {
			continue
		}
		if v, ok := n.props[key.property]; ok {
			idx.remove(n, v)
		}
	}
}
