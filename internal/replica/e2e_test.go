package replica_test

// End-to-end replication harness: builds the real cypher-serve binary, boots
// a leader and two followers as separate OS processes, and drives the
// scenarios the CI replication job gates on — convergence to byte-identical
// query results, SIGKILL + restart with WAL-offset resume, and leader
// truncation forcing snapshot catch-up.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildServe compiles cmd/cypher-serve once per test run.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cypher-serve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/cypher-serve")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build cypher-serve: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// freeAddr reserves an ephemeral port and releases it for the server to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// node is one cypher-serve process.
type node struct {
	t    *testing.T
	bin  string
	addr string
	dir  string
	args []string
	cmd  *exec.Cmd
	logs *bytes.Buffer
}

func startNode(t *testing.T, bin, addr, dir string, extra ...string) *node {
	t.Helper()
	n := &node{t: t, bin: bin, addr: addr, dir: dir, args: extra, logs: &bytes.Buffer{}}
	n.start()
	t.Cleanup(func() { n.kill() })
	return n
}

func (n *node) start() {
	n.t.Helper()
	args := append([]string{"-addr", n.addr, "-data", n.dir}, n.args...)
	n.cmd = exec.Command(n.bin, args...)
	n.cmd.Stdout = n.logs
	n.cmd.Stderr = n.logs
	if err := n.cmd.Start(); err != nil {
		n.t.Fatalf("start %s: %v", n.addr, err)
	}
	n.waitHealthy()
}

// kill SIGKILLs the process — no graceful shutdown, no final checkpoint —
// exactly what a crashed node looks like.
func (n *node) kill() {
	if n.cmd != nil && n.cmd.Process != nil {
		n.cmd.Process.Kill()
		n.cmd.Wait()
		n.cmd = nil
	}
}

func (n *node) url() string { return "http://" + n.addr }

func (n *node) waitHealthy() {
	n.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.t.Fatalf("node %s never became healthy; logs:\n%s", n.addr, n.logs.String())
}

// query POSTs one Cypher query and returns the raw response body and status.
func (n *node) query(q string) (int, []byte) {
	n.t.Helper()
	client := &http.Client{
		// Do not follow redirects: the follower's 307 IS the assertion.
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	body, _ := json.Marshal(map[string]any{"query": q})
	resp, err := client.Post(n.url()+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		n.t.Fatalf("query %s on %s: %v", q, n.addr, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (n *node) mustQuery(q string) []byte {
	n.t.Helper()
	status, body := n.query(q)
	if status != http.StatusOK {
		n.t.Fatalf("query %s on %s: status %d: %s", q, n.addr, status, body)
	}
	return body
}

// resultData reduces a query response to its data — columns and rows,
// re-marshaled deterministically — dropping per-request fields (timings).
// "Byte-identical results" means these bytes.
func (n *node) resultData(q string) []byte {
	n.t.Helper()
	var res struct {
		Columns json.RawMessage `json:"columns"`
		Rows    json.RawMessage `json:"rows"`
		Count   int             `json:"count"`
	}
	if err := json.Unmarshal(n.mustQuery(q), &res); err != nil {
		n.t.Fatalf("decode query response: %v", err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		n.t.Fatal(err)
	}
	return out
}

// replStats is the /stats replication section.
type replStats struct {
	Role     string `json:"role"`
	State    string `json:"state"`
	Position struct {
		Gen    uint64 `json:"gen"`
		Offset int64  `json:"offset"`
		Seq    uint64 `json:"seq"`
	} `json:"position"`
	LagEntries       int64  `json:"lagEntries"`
	LagBytes         int64  `json:"lagBytes"`
	SnapshotCatchups uint64 `json:"snapshotCatchups"`
	Reconnects       uint64 `json:"reconnects"`
	LastError        string `json:"lastError"`
}

func (n *node) replication() replStats {
	n.t.Helper()
	resp, err := http.Get(n.url() + "/stats")
	if err != nil {
		n.t.Fatalf("stats on %s: %v", n.addr, err)
	}
	defer resp.Body.Close()
	var out struct {
		Replication replStats `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		n.t.Fatalf("decode stats: %v", err)
	}
	return out.Replication
}

// waitConverged polls until the follower's position equals the leader's and
// its reported lag is zero.
func waitConverged(t *testing.T, leader, follower *node) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ls, fs := leader.replication(), follower.replication()
		if ls.Position == fs.Position && fs.LagEntries == 0 && fs.LagBytes == 0 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("follower %s never converged: leader %+v, follower %+v\nfollower logs:\n%s",
		follower.addr, leader.replication(), follower.replication(), follower.logs.String())
}

const checkQuery = `MATCH (d:Doc) RETURN d.rev ORDER BY d.rev`

func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e harness; skipped in -short")
	}
	bin := buildServe(t)

	leaderAddr := freeAddr(t)
	leader := startNode(t, bin, leaderAddr, t.TempDir(), "-role", "leader")
	f1 := startNode(t, bin, freeAddr(t), t.TempDir(), "-role", "follower", "-follow", leader.url())
	f2 := startNode(t, bin, freeAddr(t), t.TempDir(), "-role", "follower", "-follow", leader.url())

	// Drive writes at the leader and wait for both followers to catch up.
	for i := 1; i <= 20; i++ {
		leader.mustQuery(fmt.Sprintf(`CREATE (:Doc {rev: %d})`, i))
	}
	waitConverged(t, leader, f1)
	waitConverged(t, leader, f2)

	// All three nodes answer the same query byte-identically.
	want := leader.resultData(checkQuery)
	for _, f := range []*node{f1, f2} {
		if got := f.resultData(checkQuery); !bytes.Equal(got, want) {
			t.Fatalf("follower %s diverges from leader:\nleader:   %s\nfollower: %s", f.addr, want, got)
		}
	}

	// A write sent to a follower is redirected (307 + Location) to the leader.
	status, _ := f1.query(`CREATE (:Doc {rev: 999})`)
	if status != http.StatusTemporaryRedirect {
		t.Fatalf("follower write status %d, want 307", status)
	}

	// --- Crash and WAL-offset resume -----------------------------------
	// SIGKILL follower 1 mid-stream, keep writing, restart it over the same
	// directory: it must resume from its durable WAL offset (no snapshot).
	f1.kill()
	for i := 21; i <= 30; i++ {
		leader.mustQuery(fmt.Sprintf(`CREATE (:Doc {rev: %d})`, i))
	}
	f1.start()
	waitConverged(t, leader, f1)
	if rs := f1.replication(); rs.SnapshotCatchups != 0 {
		t.Fatalf("restarted follower used %d snapshot catch-ups, want 0 (WAL resume)", rs.SnapshotCatchups)
	}
	if got := f1.resultData(checkQuery); !bytes.Equal(got, leader.resultData(checkQuery)) {
		t.Fatalf("follower 1 diverges after restart")
	}

	// --- Truncation and snapshot catch-up ------------------------------
	// Kill follower 2, write more, force a leader checkpoint (truncates the
	// WAL generation follower 2 is parked in), restart it: the 410 path must
	// install a whole snapshot.
	f2.kill()
	for i := 31; i <= 40; i++ {
		leader.mustQuery(fmt.Sprintf(`CREATE (:Doc {rev: %d})`, i))
	}
	resp, err := http.Post(leader.url()+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatalf("force checkpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	f2.start()
	waitConverged(t, leader, f2)
	if rs := f2.replication(); rs.SnapshotCatchups < 1 {
		t.Fatalf("follower 2 snapshot catch-ups = %d, want >= 1", rs.SnapshotCatchups)
	}
	if got := f2.resultData(checkQuery); !bytes.Equal(got, leader.resultData(checkQuery)) {
		t.Fatalf("follower 2 diverges after snapshot catch-up")
	}

	// Zero lag at convergence is already asserted by waitConverged; check the
	// health endpoint agrees and reports the follower role.
	hr, err := http.Get(f2.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string `json:"status"`
		Role       string `json:"role"`
		LagEntries int64  `json:"lagEntries"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.Role != "follower" || health.LagEntries != 0 {
		t.Fatalf("healthz = %+v", health)
	}
}

// clusterState is the election view a clustered node reports on /stats.
type clusterState struct {
	Role          string `json:"role"`
	State         string `json:"state"`
	Term          uint64 `json:"term"`
	Leader        string `json:"leader"`
	LagEntries    int64  `json:"lagEntries"`
	ForcedResyncs uint64 `json:"forcedResyncs"`
	Position      struct {
		Gen    uint64 `json:"gen"`
		Offset int64  `json:"offset"`
		Seq    uint64 `json:"seq"`
	} `json:"position"`
}

func (n *node) clusterState() (clusterState, error) {
	resp, err := http.Get(n.url() + "/stats")
	if err != nil {
		return clusterState{}, err
	}
	defer resp.Body.Close()
	var out struct {
		Replication clusterState `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return clusterState{}, err
	}
	return out.Replication, nil
}

// waitElectedLeader polls the live nodes until exactly one reports the leader
// role and every other live node recognizes it.
func waitElectedLeader(t *testing.T, nodes []*node, timeout time.Duration) *node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var lead *node
		count := 0
		for _, n := range nodes {
			st, err := n.clusterState()
			if err != nil {
				continue
			}
			if st.Role == "leader" {
				lead, count = n, count+1
			}
		}
		if count == 1 {
			agreed := true
			for _, n := range nodes {
				if n == lead {
					continue
				}
				if st, err := n.clusterState(); err != nil || st.Leader != lead.url() {
					agreed = false
					break
				}
			}
			if agreed {
				return lead
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, n := range nodes {
		st, err := n.clusterState()
		t.Logf("node %s: state=%+v err=%v", n.addr, st, err)
	}
	t.Fatalf("no agreed leader within %v", timeout)
	return nil
}

// waitClusterQuiet polls until every live node sits at the same position with
// exactly one leader and zero follower lag.
func waitClusterQuiet(t *testing.T, nodes []*node) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		leaders, ok := 0, true
		var pos [][3]int64
		for _, n := range nodes {
			st, err := n.clusterState()
			if err != nil {
				ok = false
				break
			}
			switch st.Role {
			case "leader":
				leaders++
			case "follower":
				if st.LagEntries != 0 {
					ok = false
				}
			default:
				ok = false
			}
			pos = append(pos, [3]int64{int64(st.Position.Gen), st.Position.Offset, int64(st.Position.Seq)})
		}
		if ok && leaders == 1 {
			same := true
			for _, p := range pos {
				if p != pos[0] {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, n := range nodes {
		st, err := n.clusterState()
		t.Logf("node %s: state=%+v err=%v\nlogs:\n%s", n.addr, st, err, n.logs.String())
	}
	t.Fatal("cluster never quiesced to one leader with zero lag")
}

// commitRevs drives write load at the cluster through a redirect-following
// client, posting each rev to the nodes round-robin and recording the ones
// acknowledged with a 200 — which, in cluster mode, certifies a quorum
// commit. Failed or ambiguous revs are abandoned, not retried: the invariant
// under test is that every acknowledged rev survives, not that every attempt
// lands.
func commitRevs(t *testing.T, nodes []*node, next *int, want int) []int {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	var acked []int
	deadline := time.Now().Add(45 * time.Second)
	for len(acked) < want && time.Now().Before(deadline) {
		rev := *next
		*next++
		target := nodes[rev%len(nodes)]
		body, _ := json.Marshal(map[string]any{"query": fmt.Sprintf(`CREATE (:Doc {rev: %d})`, rev)})
		resp, err := client.Post(target.url()+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			acked = append(acked, rev)
			continue
		}
		// 503 (leaderless window) or a refused redirect to a dead leader:
		// back off briefly and keep the load going.
		time.Sleep(50 * time.Millisecond)
	}
	if len(acked) < want {
		t.Fatalf("only %d/%d writes acknowledged before the deadline", len(acked), want)
	}
	return acked
}

// revSet reads the distinct committed revs a node holds.
func (n *node) revSet() map[int]bool {
	n.t.Helper()
	var res struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(n.mustQuery(`MATCH (d:Doc) RETURN DISTINCT d.rev ORDER BY d.rev`), &res); err != nil {
		n.t.Fatalf("decode revs: %v", err)
	}
	out := make(map[int]bool, len(res.Rows))
	for _, row := range res.Rows {
		if f, ok := row[0].(float64); ok {
			out[int(f)] = true
		}
	}
	return out
}

// TestClusterFailover is the chaos harness the failover CI job runs: a
// three-node -peers cluster under write load loses its leader to SIGKILL —
// twice — and must re-elect within ten seconds each time, lose no
// acknowledged write, and fence the resurrected ex-leader back to follower.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process failover harness; skipped in -short")
	}
	bin := buildServe(t)

	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peersCSV := strings.Join(urls, ",")
	nodes := make([]*node, len(addrs))
	for i := range nodes {
		nodes[i] = startNode(t, bin, addrs[i], t.TempDir(),
			"-peers", peersCSV, "-election-timeout", "750ms")
	}

	lead1 := waitElectedLeader(t, nodes, 15*time.Second)
	next := 1
	acked := commitRevs(t, nodes, &next, 15)

	// --- First failover ------------------------------------------------
	lead1.kill()
	killedAt := time.Now()
	var survivors []*node
	for _, n := range nodes {
		if n != lead1 {
			survivors = append(survivors, n)
		}
	}
	lead2 := waitElectedLeader(t, survivors, 10*time.Second)
	t.Logf("re-elected %s %v after SIGKILL", lead2.addr, time.Since(killedAt))
	acked = append(acked, commitRevs(t, survivors, &next, 15)...)

	// Resurrect the ex-leader: it must rejoin as a follower of the new
	// leader — its generation is fenced, so a write sent straight to it is
	// redirected, never applied as if it still led.
	lead1.start()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := lead1.clusterState()
		if err == nil && st.Role == "follower" && st.Leader == lead2.url() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ex-leader never rejoined as follower: %+v (err %v)\nlogs:\n%s", st, err, lead1.logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if status, _ := lead1.query(`CREATE (:Doc {rev: 100000})`); status != http.StatusTemporaryRedirect {
		t.Fatalf("write to the fenced ex-leader: status %d, want 307", status)
	}

	// --- Second failover -----------------------------------------------
	lead2.kill()
	killedAt = time.Now()
	survivors = survivors[:0]
	for _, n := range nodes {
		if n != lead2 {
			survivors = append(survivors, n)
		}
	}
	lead3 := waitElectedLeader(t, survivors, 10*time.Second)
	t.Logf("re-elected %s %v after second SIGKILL", lead3.addr, time.Since(killedAt))
	acked = append(acked, commitRevs(t, survivors, &next, 10)...)

	// Full strength again: everyone converges on one history.
	lead2.start()
	waitClusterQuiet(t, nodes)

	// Zero lost committed writes: every acknowledged rev is on every node,
	// and all three answer the check query byte-identically.
	want := nodes[0].resultData(checkQuery)
	for _, n := range nodes {
		revs := n.revSet()
		for _, rev := range acked {
			if !revs[rev] {
				t.Fatalf("node %s lost acknowledged rev %d", n.addr, rev)
			}
		}
		if got := n.resultData(checkQuery); !bytes.Equal(got, want) {
			t.Fatalf("node %s diverges:\nwant %s\ngot  %s", n.addr, want, got)
		}
	}

	// --- In-place recovery (/admin/resync) ------------------------------
	// Force a follower to rebuild from the leader's snapshot without a
	// restart; it must converge again and count the forced resync.
	var follower *node
	for _, n := range nodes {
		if st, err := n.clusterState(); err == nil && st.Role == "follower" {
			follower = n
			break
		}
	}
	if follower == nil {
		t.Fatal("no follower available for resync")
	}
	resp, err := http.Post(follower.url()+"/admin/resync", "application/json", nil)
	if err != nil {
		t.Fatalf("admin resync: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin resync status %d", resp.StatusCode)
	}
	waitClusterQuiet(t, nodes)
	if st, err := follower.clusterState(); err != nil || st.ForcedResyncs < 1 {
		t.Fatalf("forced resyncs = %d (err %v), want >= 1", st.ForcedResyncs, err)
	}
	if got := follower.resultData(checkQuery); !bytes.Equal(got, want) {
		t.Fatal("follower diverges after forced resync")
	}
}

// TestServeFlagValidation covers the role flag matrix without booting a
// cluster: invalid combinations must exit non-zero with a pointed message.
func TestServeFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildServe(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-role", "leader"}, "requires -data"},
		{[]string{"-role", "follower", "-data", "x"}, "requires -follow"},
		{[]string{"-role", "follower"}, "requires -data"},
		{[]string{"-role", "chief"}, "unknown -role"},
		{[]string{"-role", "single", "-follow", "http://x"}, "-follow requires -role follower"},
		{[]string{"-role", "follower", "-data", "x", "-follow", "http://x", "-dataset", "social"}, "-dataset cannot"},
		{[]string{"-role", "follower", "-data", "x", "-follow", "http://x", "-checkpoint-every", "1m"}, "-checkpoint-every cannot"},
		{[]string{"-role", "leader", "-data", "x", "-peers", "http://a,http://b"}, "-peers replaces -role"},
		{[]string{"-follow", "http://a", "-data", "x", "-peers", "http://a,http://b"}, "-peers replaces -follow"},
		{[]string{"-peers", "http://a,http://b"}, "-peers requires -data"},
		{[]string{"-peers", "http://a,http://b", "-data", "x", "-dataset", "social"}, "-dataset cannot be used with -peers"},
		{[]string{"-peers", "http://a,http://b", "-data", "x", "-checkpoint-every", "1m"}, "-checkpoint-every cannot be used with -peers"},
		{[]string{"-peers", "http://a,http://b", "-data", "x", "-heartbeat-timeout", "5s"}, "-heartbeat-timeout cannot be used with -peers"},
		{[]string{"-election-timeout", "2s"}, "-election-timeout requires -peers"},
	}
	for _, tc := range cases {
		cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, tc.args...)...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			cmd.Process.Kill()
			t.Errorf("args %v: expected a validation exit, server started", tc.args)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("args %v: output %q does not contain %q", tc.args, out, tc.want)
		}
	}
}
