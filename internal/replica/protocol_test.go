package replica

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/storage"
)

func frameBytes(t *testing.T, write func(io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	return buf.Bytes()
}

func readOne(raw []byte) (wireFrame, error) {
	return readWireFrame(bufio.NewReader(bytes.NewReader(raw)))
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("one committed batch")
	raw := frameBytes(t, func(w io.Writer) error { return writeEntryFrame(w, 9, 3, 4096, payload) })
	f, err := readOne(raw)
	if err != nil {
		t.Fatalf("read entry frame: %v", err)
	}
	if f.kind != frameEntry || f.term != 9 || f.pos.Gen != 3 || f.pos.Offset != 4096 || !bytes.Equal(f.payload, payload) {
		t.Fatalf("decoded %+v", f)
	}

	pos := storage.Position{Gen: 7, Offset: 123456, Seq: 42}
	raw = frameBytes(t, func(w io.Writer) error { return writePosFrame(w, 11, pos) })
	f, err = readOne(raw)
	if err != nil {
		t.Fatalf("read pos frame: %v", err)
	}
	if f.kind != framePos || f.term != 11 || f.pos != pos {
		t.Fatalf("decoded %+v, want term 11 pos %v", f, pos)
	}

	raw = frameBytes(t, func(w io.Writer) error { return writeResyncFrame(w) })
	f, err = readOne(raw)
	if err != nil || f.kind != frameResync {
		t.Fatalf("resync frame: %+v, %v", f, err)
	}
}

func TestFrameCleanEOFOnlyAtBoundary(t *testing.T) {
	payload := []byte("abc")
	raw := frameBytes(t, func(w io.Writer) error { return writeEntryFrame(w, 0, 0, 8, payload) })

	br := bufio.NewReader(bytes.NewReader(raw))
	if _, err := readWireFrame(br); err != nil {
		t.Fatalf("whole frame: %v", err)
	}
	// The stream ended exactly between frames: clean EOF.
	if _, err := readWireFrame(br); err != io.EOF {
		t.Fatalf("at boundary: err = %v, want io.EOF", err)
	}

	// Every possible mid-frame cut is a bad frame, never EOF and never a
	// partial result.
	for cut := 1; cut < len(raw); cut++ {
		_, err := readOne(raw[:cut])
		if !errors.Is(err, errBadFrame) {
			t.Fatalf("cut at %d/%d: err = %v, want errBadFrame", cut, len(raw), err)
		}
	}
}

func TestFrameBitFlipsRejected(t *testing.T) {
	payload := []byte("the payload under test")
	whole := frameBytes(t, func(w io.Writer) error { return writeEntryFrame(w, 2, 1, 64, payload) })

	// Flip one bit in every payload and checksum byte: all must be caught.
	// (Header gen/offset bytes are not covered by the frame CRC — the
	// follower store's exact-offset check rejects those — and a flip in the
	// length field either misparses into a short/long read or fails the CRC.)
	payloadStart := len(whole) - len(payload)
	for i := payloadStart - 4; i < len(whole); i++ {
		raw := append([]byte(nil), whole...)
		raw[i] ^= 0x01
		if _, err := readOne(raw); !errors.Is(err, errBadFrame) {
			t.Fatalf("bit flip at byte %d: err = %v, want errBadFrame", i, err)
		}
	}
}

func TestFrameUnknownKindRejected(t *testing.T) {
	if _, err := readOne([]byte{0xEE, 1, 2, 3}); !errors.Is(err, errBadFrame) {
		t.Fatalf("unknown kind: err = %v, want errBadFrame", err)
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	var raw [33]byte
	raw[0] = frameEntry
	binary.LittleEndian.PutUint32(raw[25:29], maxWireEntry+1)
	if _, err := readOne(raw[:]); !errors.Is(err, errBadFrame) {
		t.Fatalf("oversized length: err = %v, want errBadFrame", err)
	}
}
