package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Leader is the leader's base URL (scheme://host:port); the replication
	// endpoints are expected under Leader + "/repl".
	Leader string
	// Engine is the local read-only engine batches are applied through.
	Engine *core.Engine
	// Store is the local durable log the stream is journaled into. The
	// follower owns it after Start: Stop closes it.
	Store *storage.FollowerStore

	// HeartbeatTimeout declares the stream dead when no frame (entry or
	// heartbeat) arrives for this long; default 15s. It must exceed the
	// leader's heartbeat interval by a healthy margin.
	HeartbeatTimeout time.Duration
	// VerifyTimeout bounds the governed verification read the follower runs
	// after installing a snapshot, proving the engine actually serves
	// queries over the new state; default 5s, negative disables the check.
	VerifyTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff;
	// defaults 100ms / 5s. Each delay gets ±50% jitter so a fleet of
	// followers does not reconnect in lockstep.
	BackoffMin, BackoffMax time.Duration

	// Logf logs follower lifecycle events; default log.Printf.
	Logf func(format string, args ...any)

	// OnAck, when set, is called after every durably applied entry and after
	// every position heartbeat, with the follower's current durable position.
	// The cluster layer uses it to acknowledge the leader (commit quorum) —
	// and, because it fires on heartbeats too, it doubles as the leader's
	// lease renewal over the existing stream channel.
	OnAck func(storage.Position)
	// OnTermObserved, when set, is called with every stream frame's election
	// term. The cluster layer adopts (and persists) terms newer than its own.
	OnTermObserved func(term uint64)
}

// Follower tails a leader's replication stream: journal each shipped entry
// into the local WAL (durability first), apply it through the engine's MVCC
// publish cycle (visibility second), and reconnect from the last durable
// offset — with exponential backoff plus jitter — whenever the stream dies.
// When the leader has truncated past this follower's position it falls back
// to downloading and installing a whole snapshot.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	state     string
	leaderPos storage.Position
	lastErr   string

	reconnects    atomic.Uint64
	catchups      atomic.Uint64
	forcedResyncs atomic.Uint64

	// lastFrame is the unix-nano arrival time of the newest frame, fed to
	// the liveness watchdog (and, via LastContact, to the election layer's
	// leader-silence watchdog).
	lastFrame atomic.Int64

	// resyncCh carries Resync requests into the run loop; buffered so an
	// admin's trigger is never lost even while a catch-up is in flight.
	resyncCh chan struct{}
}

// NewFollower creates a follower; call Start to begin tailing.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.VerifyTimeout == 0 {
		cfg.VerifyTimeout = 5 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		cfg:      cfg,
		client:   &http.Client{}, // no global timeout: /stream is long-lived
		ctx:      ctx,
		cancel:   cancel,
		state:    StateConnecting,
		resyncCh: make(chan struct{}, 1),
	}
}

// Start launches the tail loop.
func (f *Follower) Start() {
	f.lastFrame.Store(time.Now().UnixNano())
	f.wg.Add(1)
	go f.run()
}

// Stop terminates the tail loop and closes the local store. Safe to call
// more than once.
func (f *Follower) Stop() error { return f.Shutdown(true) }

// Shutdown terminates the tail loop; closeStore false leaves the local store
// open and owned by the caller — the promotion path, which hands the same
// open WAL to FollowerStore.Promote. Safe to call more than once.
func (f *Follower) Shutdown(closeStore bool) error {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	if f.state != StateFailed {
		f.state = StateStopped
	}
	f.mu.Unlock()
	if closeStore {
		return f.cfg.Store.Close()
	}
	return nil
}

// Resync asks the tailer to recover by snapshot catch-up. Its main purpose is
// reviving a fail-stopped tailer in place (POST /admin/resync) — divergence
// fail-stops are exactly the state a whole-snapshot install repairs — but a
// healthy tailer honors it too, on its next reconnect. Non-blocking.
func (f *Follower) Resync() {
	select {
	case f.resyncCh <- struct{}{}:
	default: // one is already pending
	}
}

// LastContact reports when the newest stream frame (entry or heartbeat)
// arrived — the election layer's measure of leader silence.
func (f *Follower) LastContact() time.Time {
	return time.Unix(0, f.lastFrame.Load())
}

// run is the reconnect loop: stream until the connection dies, then retry
// from the last durable position with jittered exponential backoff. A 410
// from the leader switches to snapshot catch-up; a few errors are terminal
// (local log divergence, apply failure, follower-ahead) and fail-stop the
// tailer so a stale replica cannot masquerade as healthy.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.BackoffMin
	first := true
	for f.ctx.Err() == nil {
		if !first {
			f.reconnects.Add(1)
		}
		first = false

		// A pending admin resync takes priority over re-streaming: the
		// operator asked for a whole-snapshot repair.
		select {
		case <-f.resyncCh:
			f.forcedResyncs.Add(1)
			f.setState(StateSnapshot, "")
			if cerr := f.snapshotCatchup(); cerr != nil && f.ctx.Err() == nil {
				f.cfg.Logf("replica: forced resync failed: %v", cerr)
			} else if cerr == nil {
				f.catchups.Add(1)
			}
		default:
		}

		err := f.streamOnce()
		if f.ctx.Err() != nil {
			return
		}
		switch {
		case err == nil:
			// Clean server-side end (leader shutdown); retry.
		case errors.Is(err, errTruncated):
			f.setState(StateSnapshot, "")
			if cerr := f.snapshotCatchup(); cerr == nil {
				f.catchups.Add(1)
				backoff = f.cfg.BackoffMin
				continue
			} else if f.ctx.Err() == nil {
				f.cfg.Logf("replica: snapshot catch-up failed: %v", cerr)
				f.setState(StateConnecting, cerr.Error())
			}
		case errors.Is(err, errFatal):
			// Park instead of exiting: the tailer is unusable (divergent log,
			// failed apply) but the process still serves stale reads and
			// /healthz says so. POST /admin/resync revives it in place via
			// snapshot catch-up; until then only Stop ends the loop.
			f.setState(StateFailed, err.Error())
			f.cfg.Logf("replica: FATAL, follower parked (POST /admin/resync to recover): %v", err)
			select {
			case <-f.ctx.Done():
				return
			case <-f.resyncCh:
				f.forcedResyncs.Add(1)
				f.setState(StateSnapshot, "")
				if cerr := f.snapshotCatchup(); cerr == nil {
					f.catchups.Add(1)
					backoff = f.cfg.BackoffMin
					continue
				} else if f.ctx.Err() == nil {
					f.cfg.Logf("replica: forced resync failed: %v", cerr)
					f.setState(StateConnecting, cerr.Error())
				}
			}
		default:
			f.setState(StateConnecting, err.Error())
			f.cfg.Logf("replica: stream interrupted: %v (retrying in ~%v)", err, backoff)
		}

		// Jittered exponential backoff: delay in [0.5b, 1.5b].
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(d):
		}
		backoff *= 2
		if backoff > f.cfg.BackoffMax {
			backoff = f.cfg.BackoffMax
		}
	}
}

// Sentinel causes for the run loop.
var (
	// errTruncated: the leader no longer has this follower's position
	// (HTTP 410); catch up from a snapshot.
	errTruncated = errors.New("replica: position truncated on the leader")
	// errFatal: the replica cannot safely continue (divergent local log,
	// failed apply, or a position ahead of the leader's).
	errFatal = errors.New("replica: unrecoverable")
)

// streamOnce runs one stream session: connect at the current durable
// position and consume frames until the connection ends.
func (f *Follower) streamOnce() error {
	pos := f.cfg.Store.Position()
	url := fmt.Sprintf("%s/repl/stream?gen=%d&offset=%d&seq=%d", f.cfg.Leader, pos.Gen, pos.Offset, pos.Seq)
	ctx, cancel := context.WithCancel(f.ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	f.setState(StateConnecting, "")
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errTruncated
	case http.StatusConflict:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: this follower is ahead of the leader's log (%s); wipe its data directory to re-replicate", errFatal, string(body))
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: leader returned %s: %s", resp.Status, string(body))
	}
	f.setState(StateStreaming, "")

	// Liveness watchdog: the leader heartbeats every couple of seconds, so
	// a silent connection is a dead one — cancel the request to unblock the
	// body read.
	f.lastFrame.Store(time.Now().UnixNano())
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		t := time.NewTicker(f.cfg.HeartbeatTimeout / 4)
		defer t.Stop()
		for {
			select {
			case <-watchdogDone:
				return
			case <-t.C:
				if time.Since(time.Unix(0, f.lastFrame.Load())) > f.cfg.HeartbeatTimeout {
					cancel()
					return
				}
			}
		}
	}()

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		frame, err := readWireFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn/bit-flipped frame: reject it and re-request the entry by
			// reconnecting from the last durably journaled position.
			return err
		}
		f.lastFrame.Store(time.Now().UnixNano())
		if f.cfg.OnTermObserved != nil && frame.kind != frameResync {
			f.cfg.OnTermObserved(frame.term)
		}
		switch frame.kind {
		case frameEntry:
			if err := f.applyEntry(frame); err != nil {
				return err
			}
		case framePos:
			// A heartbeat from a deposed leader: drop the stream for good (the
			// election layer re-points the tailer at the winner).
			if fence := f.cfg.Store.FenceTerm(); frame.term < fence {
				return fmt.Errorf("%w: stream heartbeat from stale term %d (fence %d)", errFatal, frame.term, fence)
			}
			f.mu.Lock()
			f.leaderPos = frame.pos
			f.mu.Unlock()
			if f.cfg.OnAck != nil {
				f.cfg.OnAck(f.cfg.Store.Position())
			}
		case frameResync:
			// The generation rotated mid-stream; reconnect (the fresh
			// request gets the authoritative 410).
			return fmt.Errorf("replica: leader requested resync")
		}
	}
}

// applyEntry journals and applies one shipped entry: decode (validated),
// append to the local WAL at the exact expected offset, apply through the
// engine's publish cycle, then fsync per the sync mode. Durability precedes
// visibility, the same ordering as the leader's own commit path.
func (f *Follower) applyEntry(frame wireFrame) error {
	muts, err := storage.DecodeBatch(frame.payload)
	if err != nil {
		// Checksum passed but the payload does not decode: not a transport
		// tear but version skew or a leader-side bug. Retrying cannot fix
		// it; reconnecting would loop on the same entry.
		return fmt.Errorf("%w: shipped entry at %s does not decode: %v", errFatal, frame.pos, err)
	}
	if err := f.cfg.Store.AppendEntry(frame.pos, frame.term, frame.payload); err != nil {
		// Stale election term, offset mismatch or a local write failure: the
		// local log can no longer be trusted to mirror the (current) leader's.
		return fmt.Errorf("%w: %v", errFatal, err)
	}
	if err := f.cfg.Engine.ApplyReplicatedTerm(frame.term, muts); err != nil {
		return fmt.Errorf("%w: %v", errFatal, err)
	}
	f.cfg.Store.AddRecords(len(muts))
	if err := f.cfg.Store.Sync(); err != nil {
		return fmt.Errorf("%w: %v", errFatal, err)
	}
	if f.cfg.OnAck != nil {
		f.cfg.OnAck(f.cfg.Store.Position())
	}
	return nil
}

// snapshotCatchup downloads the leader's live snapshot, installs it as the
// local generation, and rebuilds the in-memory graph to match in one atomic
// publish. Readers pinned to the pre-catch-up version finish undisturbed.
func (f *Follower) snapshotCatchup() error {
	url := f.cfg.Leader + "/repl/snapshot"
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The leader is back at an un-checkpointed generation 0 — only
		// possible with a wiped/replaced leader. Re-streaming may work if
		// our own position is the fresh start; otherwise the next stream
		// request reports ahead-of-leader and fail-stops.
		return fmt.Errorf("replica: leader has no snapshot to catch up from")
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: snapshot download: %s: %s", resp.Status, string(body))
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Repl-Gen"), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: snapshot response missing X-Repl-Gen")
	}
	image, nextNode, nextRel, err := f.cfg.Store.InstallSnapshot(gen, resp.Body)
	if err != nil {
		return err
	}
	if err := f.cfg.Engine.ResetReplicated(image, nextNode, nextRel); err != nil {
		return fmt.Errorf("%w: %v", errFatal, err)
	}
	if err := f.verifyReadable(); err != nil {
		return err
	}
	f.cfg.Logf("replica: installed snapshot generation %d (%d records)", gen, len(image))
	return nil
}

// verifyReadable proves a freshly installed state actually serves reads by
// running a bounded query through the engine's governed path: it rides the
// follower's own context (so Stop cancels it like any stream I/O) plus the
// VerifyTimeout deadline. A timeout is retriable — the state may just be
// large — but a genuine engine error after a snapshot install means the
// replica cannot be trusted and fail-stops the tailer.
func (f *Follower) verifyReadable() error {
	if f.cfg.VerifyTimeout < 0 {
		return nil
	}
	_, err := f.cfg.Engine.RunContext(f.ctx, `MATCH (n) RETURN count(n)`, nil,
		core.RunOptions{Timeout: f.cfg.VerifyTimeout})
	if err == nil || f.ctx.Err() != nil {
		return f.ctx.Err()
	}
	var canceled *exec.CanceledError
	if errors.As(err, &canceled) {
		return fmt.Errorf("replica: post-snapshot verification read timed out: %w", err)
	}
	return fmt.Errorf("%w: post-snapshot verification read failed: %v", errFatal, err)
}

func (f *Follower) setState(state, lastErr string) {
	f.mu.Lock()
	f.state = state
	f.lastErr = lastErr
	f.mu.Unlock()
}

// Stats reports the follower's replication state, positions and lag.
func (f *Follower) Stats() Stats {
	local := f.cfg.Store.Position()
	ss := f.cfg.Store.Stats()
	f.mu.Lock()
	leaderPos := f.leaderPos
	state := f.state
	lastErr := f.lastErr
	f.mu.Unlock()
	st := Stats{
		Role:             RoleFollower,
		State:            state,
		Term:             f.cfg.Store.FenceTerm(),
		Leader:           f.cfg.Leader,
		Local:            local,
		LeaderPos:        leaderPos,
		LagEntries:       -1,
		LagBytes:         -1,
		AppliedBatches:   ss.Batches,
		AppliedRecords:   ss.Records,
		AppliedBytes:     ss.Bytes,
		SnapshotCatchups: f.catchups.Load(),
		ForcedResyncs:    f.forcedResyncs.Load(),
		Reconnects:       f.reconnects.Load(),
		LastError:        lastErr,
	}
	if leaderPos != (storage.Position{}) {
		st.LagEntries, st.LagBytes = Lag(local, leaderPos)
	}
	return st
}
