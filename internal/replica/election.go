// Lease-based leader election over the replication stream. A Cluster wraps
// one node's replication machinery — the engine, the follower store/tailer,
// and (when elected) the leader stream server — and runs the coordination
// protocol between them:
//
//   - Every node persists a monotonic election term (storage.TermRecord)
//     next to its WAL generation. The term is the cluster's logical clock:
//     stamped on every stream frame, checked against the fence on every
//     append and every ApplyReplicated.
//   - The leader's lease is renewed by follower acknowledgements riding the
//     existing /repl/stream heartbeat channel (every applied entry and every
//     position heartbeat POSTs /repl/ack back). Lose a quorum of recent acks
//     and the leader degrades to read-only (writes answer 503 + Retry-After)
//     rather than accepting writes it cannot commit.
//   - Followers watch stream silence. When the heartbeat watchdog fires they
//     campaign over POST /repl/vote: a pre-vote round (no state change)
//     verifies a quorum is reachable and grantable, then the real campaign
//     durably bumps the term and collects votes. Highest (generation,
//     WAL offset) wins; voters refuse candidates behind their own log, so a
//     majority-committed entry can never be elected away.
//   - The winner promotes in place — the tailer stops (keeping the store),
//     FollowerStore.Promote hands the open WAL to a leader-side Store, the
//     engine flips to writer — and immediately checkpoints. The generation
//     bump is the second fence: every old-generation stream position,
//     including a deposed leader's divergent tail, resolves to 410 Gone and
//     whole-snapshot catch-up instead of a silent mismatch.
//   - A deposed leader that resurfaces steps down on the first higher term
//     it sees (vote request, declare broadcast, ack reply or stream frame),
//     demotes its store back to a FollowerStore, and re-tails the winner.
//     Its late writes are refused fail-stop by everyone else's term fence.
//
// The protocol is Raft's election core (terms, majority votes, up-to-date
// check, randomized timeouts, pre-vote) adapted to this engine's primitives:
// WAL positions take the place of (lastLogTerm, lastLogIndex) — sound here
// because follower logs are byte-identical prefixes of their leader's within
// a generation, and every leadership change starts a fresh generation.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// DefaultElectionTimeout is how long a follower tolerates leader silence
// before campaigning, and the base unit the other cluster timings derive
// from. Deployments that want sub-second failover lower it via
// ClusterConfig.ElectionTimeout (cypher-serve -election-timeout).
const DefaultElectionTimeout = 3 * time.Second

// ClusterConfig configures one node of a replication cluster.
type ClusterConfig struct {
	// Dir is the node's data directory; the term record persists there.
	Dir string
	// Advertise is this node's public base URL (scheme://host:port). It is
	// the node's identity in votes and acks.
	Advertise string
	// Peers are the base URLs of every cluster member. Advertise may be
	// included (it is filtered out); quorum is computed over the full set.
	Peers []string
	// Engine is the local engine; the cluster flips its role and durable
	// store at promotion/demotion.
	Engine *core.Engine
	// Store is the node's follower store, opened with storage.OpenFollower.
	// Every node boots as a follower; the first election decides who
	// promotes.
	Store *storage.FollowerStore

	// ElectionTimeout is the leader-silence threshold before campaigning
	// (default DefaultElectionTimeout). Actual campaign starts are jittered
	// to desynchronize simultaneous candidates.
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's idle stream heartbeat (and thus the
	// ack/lease renewal cadence); default ElectionTimeout/6.
	HeartbeatInterval time.Duration
	// LeaderLease is how stale the newest quorum of acks may grow before
	// the leader degrades writes to 503; default ElectionTimeout.
	LeaderLease time.Duration

	// Logf logs election and failover events; default log.Printf.
	Logf func(format string, args ...any)
}

// peerAck is the freshest acknowledgement a leader holds from one peer.
type peerAck struct {
	pos storage.Position
	at  time.Time
}

// stepdown is a pending leader→follower transition, recorded by HTTP
// handlers (which must stay cheap) and executed by the supervisor.
type stepdown struct {
	term   uint64
	leader string // "" = unknown; discovery finds the winner
}

// Cluster runs one node's side of the election protocol. Create with
// NewCluster, mount Handler under /repl, then Start.
type Cluster struct {
	cfg    ClusterConfig
	peers  []string // excluding self
	quorum int      // majority of the full member set

	client *http.Client // votes, acks, declares, info probes

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	notify chan struct{} // supervisor wake-up

	mu        sync.Mutex
	term      uint64
	votedFor  string
	role      string // RoleFollower | RoleCandidate | RoleLeader
	leaderURL string // advertised URL of the recognized leader ("" = none)
	fstore    *storage.FollowerStore
	lstore    *storage.Store
	tailer    *Follower
	tailTo    string // the leader URL the current tailer follows
	leaderObj *Leader
	leaderAt  time.Time // when this node became leader (lease grace)
	degraded  bool      // leader without a live quorum lease
	acks      map[string]peerAck
	ackNotify chan struct{} // closed+replaced whenever an ack lands
	pending   *stepdown
	resyncAt  time.Time // last automatic resync of a parked tailer

	elections atomic.Uint64
	resyncs   atomic.Uint64 // admin/auto resyncs routed through the cluster
}

// NewCluster builds the node. The engine starts leaderless read-only; Start
// begins discovery/elections.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("replica: cluster needs an advertise URL")
	}
	if cfg.Engine == nil || cfg.Store == nil {
		return nil, fmt.Errorf("replica: cluster needs an engine and a follower store")
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = DefaultElectionTimeout
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.ElectionTimeout / 6
	}
	if cfg.LeaderLease <= 0 {
		cfg.LeaderLease = cfg.ElectionTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	rec, err := storage.LoadTermRecord(cfg.Dir)
	if err != nil {
		return nil, err
	}
	peers := make([]string, 0, len(cfg.Peers))
	total := 1 // self
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Advertise {
			continue
		}
		peers = append(peers, p)
		total++
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:       cfg,
		peers:     peers,
		quorum:    total/2 + 1,
		client:    &http.Client{Timeout: cfg.ElectionTimeout},
		ctx:       ctx,
		cancel:    cancel,
		notify:    make(chan struct{}, 1),
		term:      rec.Term,
		votedFor:  rec.VotedFor,
		role:      RoleFollower,
		fstore:    cfg.Store,
		acks:      map[string]peerAck{},
		ackNotify: make(chan struct{}),
	}
	// The fence starts at the persisted term: anything from an older term
	// was already superseded before this node last went down.
	cfg.Engine.SetFenceTerm(rec.Term)
	cfg.Store.SetFenceTerm(rec.Term)
	return c, nil
}

// Start boots the node read-only and launches the supervisor, which
// discovers an existing leader or campaigns.
func (c *Cluster) Start() {
	c.cfg.Engine.SetLeaderless()
	c.wg.Add(1)
	go c.run()
	c.kick()
}

// Stop shuts the supervisor down and closes whichever store side is open.
func (c *Cluster) Stop() error {
	c.cancel()
	c.wg.Wait()
	c.mu.Lock()
	t, fs, ls := c.tailer, c.fstore, c.lstore
	c.tailer, c.fstore, c.lstore, c.leaderObj = nil, nil, nil, nil
	c.mu.Unlock()
	var err error
	if t != nil {
		err = t.Stop() // closes fs
	} else if fs != nil {
		err = fs.Close()
	}
	if ls != nil {
		if cerr := ls.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Term returns the node's current election term.
func (c *Cluster) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Role returns the node's current role (RoleLeader, RoleFollower or
// RoleCandidate).
func (c *Cluster) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// LeaderURL returns the advertised URL of the leader this node currently
// recognizes ("" while campaigning or booting).
func (c *Cluster) LeaderURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaderURL
}

// Resync asks the node's tailer to recover via snapshot catch-up
// (POST /admin/resync). Returns an error on the leader, which has no tailer.
func (c *Cluster) Resync() error {
	c.mu.Lock()
	t := c.tailer
	role := c.role
	c.mu.Unlock()
	if role == RoleLeader || t == nil {
		return fmt.Errorf("replica: resync applies to followers (role %s)", role)
	}
	c.resyncs.Add(1)
	t.Resync()
	return nil
}

// kick wakes the supervisor without waiting for its next tick.
func (c *Cluster) kick() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// heartbeatTimeout is the tailer watchdog threshold: leader silence beyond
// it triggers a campaign. It must exceed the heartbeat interval by a wide
// margin so jitter and one lost frame never look like a dead leader.
func (c *Cluster) heartbeatTimeout() time.Duration {
	if ht := 4 * c.cfg.HeartbeatInterval; ht > c.cfg.ElectionTimeout {
		return ht
	}
	return c.cfg.ElectionTimeout
}

// run is the supervisor: a reconciliation loop that compares the desired
// role/leader state (mutated cheaply by HTTP handlers and callbacks) with
// the running components (tailer, leader server) and converges them. All
// heavy transitions — promote, demote, campaign — happen here, on one
// goroutine, so they serialize without holding c.mu across I/O.
func (c *Cluster) run() {
	defer c.wg.Done()
	for {
		tick := c.cfg.ElectionTimeout / 4
		tick = tick/2 + time.Duration(rand.Int63n(int64(tick)))
		select {
		case <-c.ctx.Done():
			return
		case <-c.notify:
		case <-time.After(tick):
		}
		c.reconcile()
	}
}

func (c *Cluster) reconcile() {
	c.mu.Lock()
	role := c.role
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()

	if pending != nil && role == RoleLeader {
		c.stepDown(pending)
		return
	}
	switch role {
	case RoleLeader:
		c.checkLease()
	default:
		c.reconcileFollower()
	}
}

// reconcileFollower converges the follower side: find a leader, tail it,
// campaign when it goes silent.
func (c *Cluster) reconcileFollower() {
	c.mu.Lock()
	leader := c.leaderURL
	tailer := c.tailer
	tailTo := c.tailTo
	c.mu.Unlock()

	if leader == "" {
		leader = c.discoverLeader()
	}
	if leader == "" {
		c.campaign()
		return
	}
	if tailer == nil || tailTo != leader {
		c.startTailer(leader)
		return
	}
	st := tailer.Stats()
	if st.State == StateFailed {
		// A parked tailer (divergent log, stale-term stream) cannot heal by
		// reconnecting; whole-snapshot resync repairs it in place. Rate-limit
		// so a persistent failure does not loop hot.
		c.mu.Lock()
		due := time.Since(c.resyncAt) > c.cfg.ElectionTimeout
		if due {
			c.resyncAt = time.Now()
		}
		c.mu.Unlock()
		if due {
			c.cfg.Logf("replica: tailer parked (%s); forcing snapshot resync", st.LastError)
			c.resyncs.Add(1)
			tailer.Resync()
		}
		return
	}
	if silence := time.Since(tailer.LastContact()); silence > c.heartbeatTimeout() {
		c.cfg.Logf("replica: no frame from leader %s for %v; campaigning", leader, silence.Round(time.Millisecond))
		c.mu.Lock()
		c.leaderURL = ""
		c.mu.Unlock()
		c.cfg.Engine.SetLeaderless()
		c.campaign()
	}
}

// discoverLeader probes peers' /repl/info for a live leader at our term or
// newer, adopting the newest term seen. Returns the leader URL or "".
func (c *Cluster) discoverLeader() string {
	c.mu.Lock()
	myTerm := c.term
	c.mu.Unlock()
	var (
		best     string
		bestTerm uint64
	)
	for _, p := range c.peers {
		info, err := c.fetchInfo(p)
		if err != nil {
			continue
		}
		if info.Term < myTerm {
			continue
		}
		claim := info.Leader
		if info.Role == RoleLeader {
			claim = info.Advertise
		}
		if claim != "" && claim != c.cfg.Advertise && (best == "" || info.Term > bestTerm) {
			best, bestTerm = claim, info.Term
		}
	}
	if best == "" {
		return ""
	}
	c.observeTerm(bestTerm)
	c.mu.Lock()
	if c.role == RoleLeader { // raced a successful campaign
		c.mu.Unlock()
		return ""
	}
	c.leaderURL = best
	c.mu.Unlock()
	c.cfg.Engine.SetFollowerOf(best)
	c.cfg.Logf("replica: discovered leader %s (term %d)", best, bestTerm)
	return best
}

// startTailer (re)points the stream tailer at leader, reusing the open
// follower store.
func (c *Cluster) startTailer(leader string) {
	c.mu.Lock()
	old := c.tailer
	fs := c.fstore
	c.tailer, c.tailTo = nil, ""
	c.mu.Unlock()
	if old != nil {
		old.Shutdown(false)
	}
	if fs == nil { // raced a promotion
		return
	}
	f := NewFollower(FollowerConfig{
		Leader:           leader,
		Engine:           c.cfg.Engine,
		Store:            fs,
		HeartbeatTimeout: c.heartbeatTimeout(),
		BackoffMin:       c.cfg.HeartbeatInterval / 4,
		BackoffMax:       c.cfg.ElectionTimeout / 2,
		Logf:             c.cfg.Logf,
		OnAck:            c.sendAck,
		OnTermObserved:   c.observeTerm,
	})
	f.Start()
	c.mu.Lock()
	c.tailer, c.tailTo = f, leader
	c.mu.Unlock()
	c.cfg.Engine.SetFollowerOf(leader)
}

// campaign runs one election round: jittered pause, pre-vote, durable term
// bump, real vote, promotion on majority.
func (c *Cluster) campaign() {
	c.mu.Lock()
	if c.role == RoleLeader || c.fstore == nil {
		c.mu.Unlock()
		return
	}
	c.role = RoleCandidate
	curTerm := c.term
	pos := c.fstore.Position()
	c.mu.Unlock()
	c.cfg.Engine.SetLeaderless()
	c.elections.Add(1)

	// Randomized pause so simultaneous campaigners split; a declare arriving
	// meanwhile (someone else won) aborts.
	select {
	case <-c.ctx.Done():
		return
	case <-time.After(time.Duration(rand.Int63n(int64(c.cfg.ElectionTimeout / 2)))):
	}
	c.mu.Lock()
	aborted := c.leaderURL != "" || c.role != RoleCandidate || c.term != curTerm
	c.mu.Unlock()
	if aborted {
		c.demoteCandidate()
		return
	}

	// Pre-vote: would a majority grant term+1? No durable state moves on
	// either side, so a partitioned node probing forever cannot inflate the
	// cluster's term or disrupt a healthy leader.
	if !c.requestVotes(curTerm+1, pos, true) {
		c.demoteCandidate()
		return
	}

	// Real campaign: persist the bumped term with our own vote BEFORE asking
	// anyone (a crash must not forget the candidacy and double-vote).
	c.mu.Lock()
	if c.term != curTerm || c.role != RoleCandidate {
		c.mu.Unlock()
		c.demoteCandidate()
		return
	}
	newTerm := curTerm + 1
	if err := storage.SaveTermRecord(c.cfg.Dir, storage.TermRecord{Term: newTerm, VotedFor: c.cfg.Advertise}); err != nil {
		c.mu.Unlock()
		c.cfg.Logf("replica: cannot persist term %d, aborting campaign: %v", newTerm, err)
		c.demoteCandidate()
		return
	}
	c.term = newTerm
	c.votedFor = c.cfg.Advertise
	c.applyFenceLocked(newTerm)
	c.mu.Unlock()

	if !c.requestVotes(newTerm, pos, false) {
		c.demoteCandidate()
		return
	}
	c.mu.Lock()
	won := c.term == newTerm && c.role == RoleCandidate
	c.mu.Unlock()
	if !won {
		c.demoteCandidate()
		return
	}
	c.becomeLeader(newTerm)
}

// demoteCandidate returns a failed candidate to the follower role; the next
// reconcile re-discovers or re-campaigns with fresh jitter.
func (c *Cluster) demoteCandidate() {
	c.mu.Lock()
	if c.role == RoleCandidate {
		c.role = RoleFollower
	}
	c.mu.Unlock()
}

// requestVotes asks every peer for term; counting our own vote, true means
// a majority granted. Any newer term in a reply is adopted and loses the
// campaign.
func (c *Cluster) requestVotes(term uint64, pos storage.Position, prevote bool) bool {
	granted := 1 // self
	if granted >= c.quorum {
		return true // single-node cluster
	}
	raw, _ := json.Marshal(voteRequest{Term: term, Candidate: c.cfg.Advertise, Pos: pos, PreVote: prevote})
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ElectionTimeout/2)
	defer cancel()
	ch := make(chan voteResponse, len(c.peers))
	for _, p := range c.peers {
		go func(peer string) {
			var resp voteResponse
			if err := c.postJSON(ctx, peer+"/repl/vote", raw, &resp); err != nil {
				resp = voteResponse{} // unreachable = not granted
			}
			ch <- resp
		}(p)
	}
	for range c.peers {
		select {
		case <-ctx.Done():
			return false
		case resp := <-ch:
			if resp.Term > term {
				c.observeTerm(resp.Term)
				return false
			}
			if resp.Granted {
				granted++
			}
			if granted >= c.quorum {
				return true
			}
		}
	}
	return false
}

// becomeLeader promotes this node: stop tailing, hand the WAL to a
// leader-side store, flip the engine to writer, checkpoint (the generation
// fence), and announce.
func (c *Cluster) becomeLeader(term uint64) {
	c.mu.Lock()
	t := c.tailer
	fs := c.fstore
	c.tailer, c.tailTo = nil, ""
	c.mu.Unlock()
	if t != nil {
		t.Shutdown(false)
	}
	if fs == nil {
		return
	}
	s, err := fs.Promote()
	if err != nil {
		c.cfg.Logf("replica: promotion failed: %v", err)
		c.demoteCandidate()
		return
	}
	c.cfg.Engine.PromoteToWriter(s)
	c.cfg.Engine.SetFenceTerm(term)
	l := NewLeader(s, c.cfg.Advertise)
	l.SetTerm(term)
	l.SetHeartbeatInterval(c.cfg.HeartbeatInterval)

	c.mu.Lock()
	c.fstore = nil
	c.lstore = s
	c.leaderObj = l
	c.role = RoleLeader
	c.leaderURL = c.cfg.Advertise
	c.leaderAt = time.Now()
	c.degraded = false
	c.acks = map[string]peerAck{}
	c.mu.Unlock()

	// The generation fence: a fresh snapshot+WAL generation means every
	// stream position from the old one — a healthy follower's or a deposed
	// leader's divergent tail alike — answers 410 Gone and converges through
	// snapshot catch-up onto exactly this node's history.
	if err := c.cfg.Engine.Checkpoint(); err != nil {
		c.cfg.Logf("replica: post-election checkpoint failed: %v", err)
	}
	c.cfg.Logf("replica: won election for term %d; leading at %s", term, c.cfg.Advertise)
	c.broadcastDeclare(term)
}

// broadcastDeclare announces leadership (best-effort; discovery and stream
// frames converge any peer that misses it).
func (c *Cluster) broadcastDeclare(term uint64) {
	raw, _ := json.Marshal(declareRequest{Term: term, Leader: c.cfg.Advertise})
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ElectionTimeout/2)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			var resp termResponse
			if err := c.postJSON(ctx, peer+"/repl/declare", raw, &resp); err == nil && resp.Term > term {
				c.observeTerm(resp.Term)
			}
		}(p)
	}
	wg.Wait()
}

// stepDown demotes a deposed leader back to follower: engine first (stops
// new writes), then the store (ends live stream sessions), then re-tail the
// winner when known.
func (c *Cluster) stepDown(sd *stepdown) {
	c.mu.Lock()
	if c.role != RoleLeader {
		c.mu.Unlock()
		return
	}
	c.leaderObj = nil // stream/snapshot handlers answer 503 from here on
	c.mu.Unlock()

	c.cfg.Logf("replica: stepping down (term %d, new leader %q)", sd.term, sd.leader)
	s := c.cfg.Engine.DemoteToReplica(sd.leader)
	if s == nil {
		c.mu.Lock()
		s = c.lstore
		c.mu.Unlock()
	}
	fs, err := s.Demote()
	if err != nil {
		// The store would not demote (failed state mid-write, ...). The node
		// stays read-only; operators see the error in stats/logs.
		c.cfg.Logf("replica: store demotion failed: %v", err)
		return
	}
	c.mu.Lock()
	c.lstore = nil
	c.fstore = fs
	c.role = RoleFollower
	c.leaderURL = sd.leader
	term := c.term
	c.applyFenceLocked(term)
	c.mu.Unlock()
	c.kick() // reconcile starts the tailer (or discovery) immediately
}

// checkLease verifies the leader still holds a quorum of recent acks;
// without one it degrades writes to 503 until the quorum returns, and probes
// for a newer leader it may have missed while partitioned.
func (c *Cluster) checkLease() {
	c.mu.Lock()
	need := c.quorum - 1
	fresh := 0
	for _, a := range c.acks {
		if time.Since(a.at) <= c.cfg.LeaderLease {
			fresh++
		}
	}
	grace := time.Since(c.leaderAt) < c.cfg.ElectionTimeout
	degraded := need > 0 && fresh < need && !grace
	was := c.degraded
	c.degraded = degraded
	c.mu.Unlock()

	switch {
	case degraded && !was:
		c.cfg.Logf("replica: quorum lease lost (%d/%d fresh acks); degrading writes", fresh, need)
		c.cfg.Engine.SetLeaderless()
	case !degraded && was:
		c.cfg.Logf("replica: quorum lease restored")
		c.cfg.Engine.SetFollowerOf("") // back to writer
	}
	if degraded {
		// A partitioned ex-leader heals by finding the new term on its own.
		for _, p := range c.peers {
			info, err := c.fetchInfo(p)
			if err != nil {
				continue
			}
			if info.Term > c.Term() {
				c.observeTerm(info.Term)
				break
			}
		}
	}
}

// observeTerm adopts a newer election term: persist, raise the fences and —
// on a leader — queue the stepdown. Safe from any goroutine.
func (c *Cluster) observeTerm(term uint64) {
	c.mu.Lock()
	if term <= c.term {
		c.mu.Unlock()
		return
	}
	if err := storage.SaveTermRecord(c.cfg.Dir, storage.TermRecord{Term: term}); err != nil {
		c.cfg.Logf("replica: cannot persist observed term %d: %v", term, err)
		c.mu.Unlock()
		return
	}
	c.term = term
	c.votedFor = ""
	c.applyFenceLocked(term)
	wasLeader := c.role == RoleLeader
	if wasLeader {
		c.pending = &stepdown{term: term}
		c.leaderURL = ""
	} else {
		// The leader we knew belonged to an older term.
		if c.role == RoleCandidate {
			c.role = RoleFollower
		}
	}
	c.mu.Unlock()
	if wasLeader {
		c.cfg.Engine.SetLeaderless()
	}
	c.kick()
}

// applyFenceLocked raises the term fence on the engine and whichever store
// side is live. Callers hold c.mu.
func (c *Cluster) applyFenceLocked(term uint64) {
	c.cfg.Engine.SetFenceTerm(term)
	if c.fstore != nil {
		c.fstore.SetFenceTerm(term)
	}
}

// sendAck is the tailer's OnAck callback: acknowledge the durable position
// to the current leader. It doubles as lease renewal; the reply's term heals
// a follower that missed an election.
func (c *Cluster) sendAck(pos storage.Position) {
	c.mu.Lock()
	leader := c.leaderURL
	term := c.term
	c.mu.Unlock()
	if leader == "" || leader == c.cfg.Advertise {
		return
	}
	raw, _ := json.Marshal(ackRequest{Peer: c.cfg.Advertise, Term: term, Pos: pos})
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ElectionTimeout/2)
	defer cancel()
	var resp termResponse
	if err := c.postJSON(ctx, leader+"/repl/ack", raw, &resp); err == nil && resp.Term > term {
		c.observeTerm(resp.Term)
	}
}

// WaitCommitted blocks until a majority of the cluster has durably
// acknowledged pos (the leader itself counts), the context ends, or this
// node stops leading. The serving layer calls it after each write query so a
// 200 means majority-committed, not merely leader-durable.
func (c *Cluster) WaitCommitted(ctx context.Context, pos storage.Position) error {
	for {
		c.mu.Lock()
		if c.role != RoleLeader {
			c.mu.Unlock()
			return fmt.Errorf("replica: no longer the leader; the write may or may not survive the failover")
		}
		need := c.quorum - 1
		have := 0
		for _, a := range c.acks {
			if a.pos.Gen == pos.Gen && a.pos.Offset >= pos.Offset {
				have++
			}
		}
		ch := c.ackNotify
		c.mu.Unlock()
		if have >= need {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica: write applied on the leader but not yet acknowledged by a quorum: %w", ctx.Err())
		case <-c.ctx.Done():
			return fmt.Errorf("replica: cluster shutting down before the write reached a quorum")
		case <-ch:
		}
	}
}

// Position returns the node's current durable stream position.
func (c *Cluster) Position() storage.Position {
	c.mu.Lock()
	fs, ls := c.fstore, c.lstore
	c.mu.Unlock()
	if ls != nil {
		return ls.Position()
	}
	if fs != nil {
		return fs.Position()
	}
	return storage.Position{}
}

// Stats merges the live component's replication stats with the election
// state (term, recognized leader, quorum, ack freshness).
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	role := c.role
	term := c.term
	leaderURL := c.leaderURL
	l := c.leaderObj
	t := c.tailer
	fs := c.fstore
	acked := 0
	for _, a := range c.acks {
		if time.Since(a.at) <= c.cfg.LeaderLease {
			acked++
		}
	}
	degraded := c.degraded
	c.mu.Unlock()

	var st Stats
	switch {
	case role == RoleLeader && l != nil:
		st = l.Stats()
		if degraded {
			st.State = "degraded"
		}
	case t != nil:
		st = t.Stats()
	default:
		st = Stats{Role: role, State: StateConnecting, LagEntries: -1, LagBytes: -1}
		if fs != nil {
			st.Local = fs.Position()
		}
	}
	st.Role = role
	st.Term = term
	st.ClusterLeader = leaderURL
	st.QuorumSize = c.quorum
	st.AckedPeers = acked
	st.Elections = c.elections.Load()
	st.ForcedResyncs += c.resyncs.Load()
	return st
}

// ---- HTTP surface ----------------------------------------------------------

// voteRequest asks for (or pre-probes) a vote in Term.
type voteRequest struct {
	Term      uint64           `json:"term"`
	Candidate string           `json:"candidate"`
	Pos       storage.Position `json:"pos"`
	PreVote   bool             `json:"preVote"`
}

// voteResponse is the voter's verdict plus its current term.
type voteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// declareRequest announces an elected leader.
type declareRequest struct {
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
}

// ackRequest acknowledges a follower's durable position to the leader.
type ackRequest struct {
	Peer string           `json:"peer"`
	Term uint64           `json:"term"`
	Pos  storage.Position `json:"pos"`
}

// termResponse carries the responder's term back (declare, ack).
type termResponse struct {
	Term uint64 `json:"term"`
}

// infoResponse is the /repl/info discovery document.
type infoResponse struct {
	Term      uint64           `json:"term"`
	Role      string           `json:"role"`
	Leader    string           `json:"leader"`
	Advertise string           `json:"advertise"`
	Pos       storage.Position `json:"pos"`
}

// Handler returns the node's replication endpoints: the leader's stream
// surface (served only while leading) plus the election endpoints. Mount
// under /repl with http.StripPrefix.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	serveLeader := func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		l := c.leaderObj
		leader := c.leaderURL
		c.mu.Unlock()
		if l == nil {
			w.Header().Set("Retry-After", "1")
			if leader != "" {
				w.Header().Set("X-Repl-Leader", leader)
			}
			http.Error(w, "replica: not the leader", http.StatusServiceUnavailable)
			return
		}
		l.Handler().ServeHTTP(w, r)
	}
	mux.HandleFunc("/position", serveLeader)
	mux.HandleFunc("/stream", serveLeader)
	mux.HandleFunc("/snapshot", serveLeader)
	mux.HandleFunc("/vote", c.handleVote)
	mux.HandleFunc("/declare", c.handleDeclare)
	mux.HandleFunc("/ack", c.handleAck)
	mux.HandleFunc("/info", c.handleInfo)
	return mux
}

func (c *Cluster) handleVote(w http.ResponseWriter, r *http.Request) {
	var req voteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	resp := voteResponse{Term: c.term}
	switch {
	case req.Term < c.term:
		// Stale candidate; the reply's term heals it.
	case c.heardFromLeaderLocked() && req.Candidate != c.leaderURL:
		// Leader stickiness: we have recent proof of a live leader, so this
		// candidacy is noise (an isolated node, a jittery link). Refuse
		// without adopting the term — that is what stops a flapping peer
		// from deposing a healthy leader.
	case req.PreVote:
		resp.Granted = c.candidateUpToDateLocked(req.Pos)
	default:
		if req.Term > c.term {
			if err := storage.SaveTermRecord(c.cfg.Dir, storage.TermRecord{Term: req.Term}); err != nil {
				c.cfg.Logf("replica: cannot persist term %d for vote: %v", req.Term, err)
				break
			}
			c.term = req.Term
			c.votedFor = ""
			resp.Term = req.Term
			c.applyFenceLocked(req.Term)
			if c.role == RoleLeader {
				c.pending = &stepdown{term: req.Term}
				c.leaderURL = ""
				defer func() { c.cfg.Engine.SetLeaderless(); c.kick() }()
			} else if c.role == RoleCandidate {
				c.role = RoleFollower
			}
		}
		grant := (c.votedFor == "" || c.votedFor == req.Candidate) && c.candidateUpToDateLocked(req.Pos)
		if grant && c.votedFor != req.Candidate {
			// The vote must be durable before the reply leaves: forgetting it
			// across a crash could elect two leaders in one term.
			if err := storage.SaveTermRecord(c.cfg.Dir, storage.TermRecord{Term: c.term, VotedFor: req.Candidate}); err != nil {
				c.cfg.Logf("replica: cannot persist vote: %v", err)
				grant = false
			} else {
				c.votedFor = req.Candidate
			}
		}
		resp.Granted = grant
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// heardFromLeaderLocked reports recent proof of a live leader (a stream
// frame within the election timeout).
func (c *Cluster) heardFromLeaderLocked() bool {
	if c.role != RoleFollower || c.leaderURL == "" || c.tailer == nil {
		return false
	}
	return time.Since(c.tailer.LastContact()) < c.cfg.ElectionTimeout
}

// candidateUpToDateLocked is the election safety rule: grant only to a
// candidate whose log is at least as complete as ours. Generations order
// leadership lineages (every election checkpoints into a fresh one); within
// a generation, logs are byte-identical prefixes of the same history, so the
// WAL offset is a total order.
func (c *Cluster) candidateUpToDateLocked(pos storage.Position) bool {
	var local storage.Position
	if c.fstore != nil {
		local = c.fstore.Position()
	} else if c.lstore != nil {
		local = c.lstore.Position()
	}
	if pos.Gen != local.Gen {
		return pos.Gen > local.Gen
	}
	return pos.Offset >= local.Offset
}

func (c *Cluster) handleDeclare(w http.ResponseWriter, r *http.Request) {
	var req declareRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	if req.Term < c.term || req.Leader == "" {
		resp := termResponse{Term: c.term}
		c.mu.Unlock()
		writeJSON(w, resp)
		return
	}
	if req.Term > c.term {
		if err := storage.SaveTermRecord(c.cfg.Dir, storage.TermRecord{Term: req.Term}); err != nil {
			c.cfg.Logf("replica: cannot persist declared term %d: %v", req.Term, err)
			resp := termResponse{Term: c.term}
			c.mu.Unlock()
			writeJSON(w, resp)
			return
		}
		c.term = req.Term
		c.votedFor = ""
	}
	c.applyFenceLocked(req.Term)
	c.leaderURL = req.Leader
	wasLeader := c.role == RoleLeader && req.Leader != c.cfg.Advertise
	if wasLeader {
		c.pending = &stepdown{term: req.Term, leader: req.Leader}
	} else if c.role == RoleCandidate {
		c.role = RoleFollower
	}
	resp := termResponse{Term: c.term}
	c.mu.Unlock()
	if wasLeader {
		c.cfg.Engine.SetLeaderless()
	} else {
		c.cfg.Engine.SetFollowerOf(req.Leader)
	}
	c.kick()
	writeJSON(w, resp)
}

func (c *Cluster) handleAck(w http.ResponseWriter, r *http.Request) {
	var req ackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	if req.Term > c.term {
		resp := termResponse{Term: c.term}
		c.mu.Unlock()
		c.observeTerm(req.Term)
		writeJSON(w, resp)
		return
	}
	if c.role == RoleLeader && req.Term == c.term && req.Peer != "" {
		c.acks[req.Peer] = peerAck{pos: req.Pos, at: time.Now()}
		close(c.ackNotify)
		c.ackNotify = make(chan struct{})
	}
	resp := termResponse{Term: c.term}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Cluster) handleInfo(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	info := infoResponse{
		Term:      c.term,
		Role:      c.role,
		Leader:    c.leaderURL,
		Advertise: c.cfg.Advertise,
	}
	fs, ls := c.fstore, c.lstore
	c.mu.Unlock()
	if ls != nil {
		info.Pos = ls.Position()
	} else if fs != nil {
		info.Pos = fs.Position()
	}
	writeJSON(w, info)
}

// fetchInfo GETs a peer's /repl/info.
func (c *Cluster) fetchInfo(peer string) (infoResponse, error) {
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ElectionTimeout/2)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/repl/info", nil)
	if err != nil {
		return infoResponse{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return infoResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return infoResponse{}, fmt.Errorf("replica: info %s: %s", peer, resp.Status)
	}
	var info infoResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info); err != nil {
		return infoResponse{}, err
	}
	return info, nil
}

// postJSON POSTs raw to url and decodes the JSON reply into out.
func (c *Cluster) postJSON(ctx context.Context, url string, raw []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: %s: %s: %s", url, resp.Status, string(body))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(out)
}

// writeJSON answers 200 with v as a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeJSON parses a request body, answering 400 on garbage.
func decodeJSON(w http.ResponseWriter, r *http.Request, out any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(out); err != nil {
		http.Error(w, fmt.Sprintf("replica: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}
