package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// DefaultHeartbeatInterval is how often an idle stream session re-sends the
// leader's position. It doubles as the follower's liveness signal, so it
// should stay well under the follower's heartbeat timeout (default 15s).
// Configurable per leader via SetHeartbeatInterval.
const DefaultHeartbeatInterval = 2 * time.Second

// streamChunkBytes bounds how much entry payload one ReadEntries call ships
// before flushing; lag-heavy followers catch up in bounded memory.
const streamChunkBytes = 1 << 20

// Leader serves a durable engine's WAL as a replication stream. It is an
// http.Handler factory: mount Handler() under /repl on the serving mux.
type Leader struct {
	store *storage.Store
	// advertise is the public base URL followers should send writes to; it
	// is returned to clients whose writes are rejected by a follower.
	advertise string
	// heartbeat is how often an idle stream re-sends the live position
	// (nanoseconds, read atomically so tests can tune a serving leader).
	heartbeat atomic.Int64
	// term is the election term this leader was elected at, stamped on every
	// stream frame so followers can fence deposed leaders. 0 in legacy
	// single-leader deployments.
	term atomic.Uint64

	mu       sync.Mutex
	nextID   int64
	sessions map[int64]*session

	streamedEntries atomic.Uint64
	streamedBytes   atomic.Uint64
	snapshotsServed atomic.Uint64
}

// session is one live follower stream connection, tracked for /stats.
type session struct {
	id     int64
	remote string
	since  time.Time

	mu   sync.Mutex
	sent storage.Position
}

// NewLeader creates the replication server over an opened store. advertise
// is the leader's public base URL (e.g. "http://10.0.0.1:7474").
func NewLeader(store *storage.Store, advertise string) *Leader {
	l := &Leader{store: store, advertise: advertise, sessions: map[int64]*session{}}
	l.heartbeat.Store(int64(DefaultHeartbeatInterval))
	return l
}

// SetHeartbeatInterval overrides how often idle stream sessions re-send the
// leader position. It must stay well under the followers' heartbeat timeout
// or their liveness watchdog will tear down healthy streams. Non-positive
// values are ignored. Safe to call while sessions are live; running sessions
// pick the new interval up on their next idle wait.
func (l *Leader) SetHeartbeatInterval(d time.Duration) {
	if d > 0 {
		l.heartbeat.Store(int64(d))
	}
}

// HeartbeatInterval reports the current idle-stream heartbeat interval.
func (l *Leader) HeartbeatInterval() time.Duration {
	return time.Duration(l.heartbeat.Load())
}

// Advertise returns the leader's advertised base URL.
func (l *Leader) Advertise() string { return l.advertise }

// SetTerm sets the election term stamped on every stream frame. Elections
// call it once at promotion, before the handler serves any stream.
func (l *Leader) SetTerm(term uint64) { l.term.Store(term) }

// Term returns the election term this leader stamps on stream frames.
func (l *Leader) Term() uint64 { return l.term.Load() }

// Handler returns the replication endpoints as one handler; mount it under
// /repl with http.StripPrefix.
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/position", l.handlePosition)
	mux.HandleFunc("/stream", l.handleStream)
	mux.HandleFunc("/snapshot", l.handleSnapshot)
	return mux
}

func (l *Leader) handlePosition(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(l.store.Position())
}

// handleStream is the tail loop: frames from the follower's position to the
// live end, then heartbeats while idle, until the client goes away or the
// generation rotates out from under the session.
func (l *Leader) handleStream(w http.ResponseWriter, r *http.Request) {
	pos, err := parsePosition(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Probe before committing to a 200: the initial position decides the
	// status (410 => snapshot catch-up, 409 => unrecoverable).
	sig := l.store.CommitSignal()
	frames, next, err := l.store.ReadEntries(pos, streamChunkBytes)
	if err != nil {
		l.writeStreamError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	sess := l.addSession(r.RemoteAddr, pos)
	defer l.dropSession(sess)

	// The serving layer sets a WriteTimeout on its listeners to shed dead
	// clients; that deadline is absolute per response and would sever this
	// infinite stream. Push it forward on every flush instead, so only a
	// stalled follower (no write progress for several heartbeats) is cut.
	rc := http.NewResponseController(w)
	extendDeadline := func() {
		// Ignore errors: the underlying writer may not support deadlines
		// (httptest recorders), in which case no server timeout exists either.
		_ = rc.SetWriteDeadline(time.Now().Add(4 * l.HeartbeatInterval()))
	}
	extendDeadline()

	ctx := r.Context()
	for {
		for _, f := range frames {
			if err := writeEntryFrame(w, l.term.Load(), pos.Gen, f.Offset, f.Payload); err != nil {
				return // client went away
			}
			l.streamedEntries.Add(1)
			l.streamedBytes.Add(uint64(len(f.Payload)))
		}
		pos = next
		sess.setSent(pos)
		// Always follow a drain with the live position: the follower's lag
		// arithmetic (and its liveness watchdog) keys off these.
		if err := writePosFrame(w, l.term.Load(), l.store.Position()); err != nil {
			return
		}
		flusher.Flush()
		extendDeadline()

		if len(frames) == 0 {
			select {
			case <-ctx.Done():
				return
			case <-sig:
			case <-time.After(l.HeartbeatInterval()):
			}
		}
		sig = l.store.CommitSignal()
		frames, next, err = l.store.ReadEntries(pos, streamChunkBytes)
		if err != nil {
			// Mid-stream the status line is gone; a resync frame tells the
			// follower to reconnect (and get the 410 properly).
			writeResyncFrame(w)
			flusher.Flush()
			return
		}
	}
}

// writeStreamError maps storage errors to the protocol's status codes.
func (l *Leader) writeStreamError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, storage.ErrPositionTruncated):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, storage.ErrFollowerAhead):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (l *Leader) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	gen, rc, size, err := l.store.LiveSnapshot()
	if err != nil {
		if errors.Is(err, storage.ErrNoSnapshot) {
			// Nothing has been checkpointed; the whole history is still in
			// wal-0 and the follower can stream it from the start.
			w.Header().Set("X-Repl-Gen", strconv.FormatUint(gen, 10))
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Gen", strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	if _, err := io.Copy(w, rc); err == nil {
		l.snapshotsServed.Add(1)
	}
}

func parsePosition(r *http.Request) (storage.Position, error) {
	q := r.URL.Query()
	gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
	if err != nil {
		return storage.Position{}, fmt.Errorf("replica: bad gen %q", q.Get("gen"))
	}
	off, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil {
		return storage.Position{}, fmt.Errorf("replica: bad offset %q", q.Get("offset"))
	}
	// seq is informational (the follower derives it locally); tolerate its
	// absence.
	seq, _ := strconv.ParseUint(q.Get("seq"), 10, 64)
	return storage.Position{Gen: gen, Offset: off, Seq: seq}, nil
}

func (l *Leader) addSession(remote string, pos storage.Position) *session {
	s := &session{remote: remote, since: time.Now(), sent: pos}
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.sessions[id] = s
	s.id = id
	l.mu.Unlock()
	return s
}

func (l *Leader) dropSession(s *session) {
	l.mu.Lock()
	delete(l.sessions, s.id)
	l.mu.Unlock()
}

func (s *session) setSent(pos storage.Position) {
	s.mu.Lock()
	s.sent = pos
	s.mu.Unlock()
}

// Stats reports the leader's replication counters and live sessions.
func (l *Leader) Stats() Stats {
	st := Stats{
		Role:            RoleLeader,
		State:           "serving",
		Term:            l.term.Load(),
		Advertise:       l.advertise,
		Local:           l.store.Position(),
		StreamedEntries: l.streamedEntries.Load(),
		StreamedBytes:   l.streamedBytes.Load(),
		SnapshotsServed: l.snapshotsServed.Load(),
	}
	l.mu.Lock()
	for _, s := range l.sessions {
		s.mu.Lock()
		st.Followers = append(st.Followers, FollowerSession{
			Remote:         s.remote,
			Sent:           s.sent,
			ConnectedSince: s.since,
		})
		s.mu.Unlock()
	}
	l.mu.Unlock()
	return st
}
