package replica

// In-process election harness: three cluster nodes on real HTTP listeners,
// optionally fronted by lossy/delaying TCP proxies (fault injection), driving
// the failover scenarios the chaos e2e test repeats at process level —
// single-leader convergence, committed-prefix preservation across leader
// death, zombie fencing through a healed partition, and election stability
// under network jitter.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/value"
)

// flakyProxy is a TCP forwarder with fault injection: per-chunk delay
// (jitter), connection drops, and full partition (sever everything, refuse
// new connections).
type flakyProxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	sever  bool
	delay  time.Duration
	dropN  int // close every Nth accepted connection immediately (0 = off)
	accept int
	conns  map[net.Conn]struct{}
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close(); p.Partition(true) })
	return p
}

func (p *flakyProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *flakyProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.accept++
		kill := p.sever || (p.dropN > 0 && p.accept%p.dropN == 0)
		if !kill {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if kill {
			c.Close()
			continue
		}
		go p.pipe(c)
	}
}

func (p *flakyProxy) pipe(down net.Conn) {
	defer p.drop(down)
	up, err := net.DialTimeout("tcp", p.target, time.Second)
	if err != nil {
		return
	}
	defer p.drop(up)
	p.mu.Lock()
	if p.sever {
		p.mu.Unlock()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	copyHalf := func(dst, src net.Conn) {
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				p.mu.Lock()
				d := p.delay
				p.mu.Unlock()
				if d > 0 {
					time.Sleep(d)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go copyHalf(up, down)
	go copyHalf(down, up)
	<-done
}

func (p *flakyProxy) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// Partition severs every live connection and refuses new ones until healed.
func (p *flakyProxy) Partition(on bool) {
	p.mu.Lock()
	p.sever = on
	if on {
		for c := range p.conns {
			c.Close()
		}
		p.conns = map[net.Conn]struct{}{}
	}
	p.mu.Unlock()
}

// SetDelay injects per-chunk forwarding latency in both directions.
func (p *flakyProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// clusterNode is one in-process cluster member.
type clusterNode struct {
	t       *testing.T
	dir     string
	g       *graph.Graph
	engine  *core.Engine
	cluster *Cluster
	srv     *httptest.Server
	proxy   *flakyProxy // nil unless the harness fronts the node
	url     string      // the node's advertised URL (proxy when fronted)
}

// startCluster boots n nodes over fresh directories; with proxied, every
// node's advertised identity is its proxy, so faults can be injected on any
// member's inbound path.
func startCluster(t *testing.T, n int, electionTimeout time.Duration, proxied bool) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	muxes := make([]*http.ServeMux, n)
	for i := range nodes {
		mux := http.NewServeMux()
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		node := &clusterNode{t: t, dir: t.TempDir(), srv: srv, url: srv.URL}
		if proxied {
			node.proxy = newFlakyProxy(t, srv.Listener.Addr().String())
			node.url = node.proxy.URL()
		}
		muxes[i], nodes[i], urls[i] = mux, node, node.url
	}
	for i, node := range nodes {
		node.g = graph.New()
		fs, err := storage.OpenFollower(node.dir, node.g, storage.Options{})
		if err != nil {
			t.Fatalf("open follower store: %v", err)
		}
		node.engine = core.NewEngine(node.g, core.Options{})
		cl, err := NewCluster(ClusterConfig{
			Dir:             node.dir,
			Advertise:       node.url,
			Peers:           urls,
			Engine:          node.engine,
			Store:           fs,
			ElectionTimeout: electionTimeout,
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatalf("new cluster: %v", err)
		}
		node.cluster = cl
		muxes[i].Handle("/repl/", http.StripPrefix("/repl", cl.Handler()))
		cl.Start()
		t.Cleanup(func() { cl.Stop() })
	}
	return nodes
}

// kill tears the node down abruptly: connections die and the process state
// vanishes, with no step-down courtesy to peers — what a crash looks like.
func (n *clusterNode) kill() {
	n.srv.CloseClientConnections()
	n.cluster.Stop()
	n.srv.Close()
}

// waitOneLeader polls until exactly one of nodes leads, every other node
// recognizes it, and its engine accepts writes.
func waitOneLeader(t *testing.T, nodes []*clusterNode, timeout time.Duration) *clusterNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leaders []*clusterNode
		for _, n := range nodes {
			if n.cluster.Role() == RoleLeader {
				leaders = append(leaders, n)
			}
		}
		if len(leaders) == 1 && leaders[0].engine.IsWriter() {
			lead := leaders[0]
			agreed := true
			for _, n := range nodes {
				if n != lead && n.cluster.LeaderURL() != lead.url {
					agreed = false
				}
			}
			if agreed {
				return lead
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range nodes {
		st := n.cluster.Stats()
		t.Logf("node %s: role=%s term=%d leader=%q state=%s lastErr=%q",
			n.url, st.Role, st.Term, st.ClusterLeader, st.State, st.LastError)
	}
	t.Fatalf("no single agreed leader within %v", timeout)
	return nil
}

// waitClusterConverged polls until every node's graph dump is identical to
// the leader's.
func waitClusterConverged(t *testing.T, lead *clusterNode, nodes []*clusterNode) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		want := lead.g.DebugDump()
		same := true
		for _, n := range nodes {
			if n.g.DebugDump() != want {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range nodes {
		st := n.cluster.Stats()
		t.Logf("node %s: role=%s term=%d state=%s pos=%v lastErr=%q",
			n.url, st.Role, st.Term, st.State, st.Local, st.LastError)
	}
	t.Fatal("cluster never converged on the leader's state")
}

// mustCommit writes one document through the leader and waits for a quorum
// acknowledgement, the same bar the serving layer sets for a 200.
func mustCommit(t *testing.T, lead *clusterNode, rev int) {
	t.Helper()
	if _, err := lead.engine.Run(fmt.Sprintf(`CREATE (:Doc {rev: %d})`, rev), nil); err != nil {
		t.Fatalf("write rev %d: %v", rev, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lead.cluster.WaitCommitted(ctx, lead.cluster.Position()); err != nil {
		t.Fatalf("rev %d never reached a quorum: %v", rev, err)
	}
}

func countDocs(t *testing.T, n *clusterNode) int {
	t.Helper()
	res, err := n.engine.Run(`MATCH (d:Doc) RETURN count(d)`, nil)
	if err != nil {
		t.Fatalf("count on %s: %v", n.url, err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("count rows = %d", len(rows))
	}
	cnt, ok := value.AsInt(rows[0][0])
	if !ok {
		t.Fatalf("count(d) = %v, want an integer", rows[0][0])
	}
	return int(cnt)
}

func TestClusterElectsSingleLeaderAndReplicates(t *testing.T) {
	nodes := startCluster(t, 3, 400*time.Millisecond, false)
	lead := waitOneLeader(t, nodes, 10*time.Second)

	for i := 1; i <= 10; i++ {
		mustCommit(t, lead, i)
	}
	waitClusterConverged(t, lead, nodes)

	// All nodes agree on the term and writes on followers are rejected with
	// the leader's address attached.
	term := lead.cluster.Term()
	if term == 0 {
		t.Fatal("leader at term 0; elections must bump the term")
	}
	for _, n := range nodes {
		if n == lead {
			continue
		}
		if got := n.cluster.Term(); got != term {
			t.Fatalf("node %s at term %d, leader at %d", n.url, got, term)
		}
		_, err := n.engine.Run(`CREATE (:Doc {rev: 999})`, nil)
		var ro *core.ReadOnlyReplicaError
		if !errors.As(err, &ro) {
			t.Fatalf("follower write error = %v, want ReadOnlyReplicaError", err)
		}
		if ro.Leader != lead.url {
			t.Fatalf("follower redirects to %q, want %q", ro.Leader, lead.url)
		}
	}
}

func TestFailoverPreservesCommittedWrites(t *testing.T) {
	nodes := startCluster(t, 3, 400*time.Millisecond, false)
	lead := waitOneLeader(t, nodes, 10*time.Second)
	termBefore := lead.cluster.Term()

	for i := 1; i <= 5; i++ {
		mustCommit(t, lead, i)
	}

	// Crash the leader. The two survivors must elect a replacement — and
	// because votes are refused to candidates behind the voter's log, the
	// winner is guaranteed to hold every quorum-committed write.
	var survivors []*clusterNode
	for _, n := range nodes {
		if n != lead {
			survivors = append(survivors, n)
		}
	}
	lead.kill()
	lead2 := waitOneLeader(t, survivors, 10*time.Second)

	if got := lead2.cluster.Term(); got <= termBefore {
		t.Fatalf("new leader term %d, want > %d", got, termBefore)
	}
	if got := countDocs(t, lead2); got != 5 {
		t.Fatalf("new leader holds %d committed docs, want 5", got)
	}

	// The new leader accepts and commits writes with the remaining quorum.
	for i := 6; i <= 10; i++ {
		mustCommit(t, lead2, i)
	}
	waitClusterConverged(t, lead2, survivors)
	for _, n := range survivors {
		if got := countDocs(t, n); got != 10 {
			t.Fatalf("node %s holds %d docs, want 10", n.url, got)
		}
	}
}

func TestPartitionHealsWithoutSplitBrain(t *testing.T) {
	nodes := startCluster(t, 3, 400*time.Millisecond, true)
	lead := waitOneLeader(t, nodes, 10*time.Second)
	for i := 1; i <= 3; i++ {
		mustCommit(t, lead, i)
	}
	waitClusterConverged(t, lead, nodes)

	// Partition the leader's inbound path: followers lose the stream and
	// their acks stop reaching it.
	lead.proxy.Partition(true)

	// A write slipped in during the partition applies locally but can never
	// reach a quorum — the commit bar, not local apply, is what a client's
	// 200 certifies.
	if _, err := lead.engine.Run(`CREATE (:Doc {rev: 666})`, nil); err == nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := lead.cluster.WaitCommitted(ctx, lead.cluster.Position()); err == nil {
			cancel()
			t.Fatal("partitioned leader quorum-committed a write")
		}
		cancel()
	}

	// The majority side elects a replacement; the old leader — lease lost —
	// must stop accepting writes even before it learns who won.
	var majority []*clusterNode
	for _, n := range nodes {
		if n != lead {
			majority = append(majority, n)
		}
	}
	lead2 := waitOneLeader(t, majority, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for lead.engine.IsWriter() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if lead.engine.IsWriter() {
		t.Fatal("partitioned ex-leader still accepts writes: split brain")
	}

	// Heal. The deposed leader must rejoin as a follower of the winner, its
	// unreplicated zombie write discarded by the resync onto the new
	// leader's history.
	lead.proxy.Partition(false)
	all := nodes
	lead3 := waitOneLeader(t, all, 15*time.Second)
	if lead3 != lead2 {
		t.Fatalf("healed cluster led by %s, want the majority's winner %s", lead3.url, lead2.url)
	}
	mustCommit(t, lead2, 4)
	waitClusterConverged(t, lead2, all)
	for _, n := range all {
		if got := countDocs(t, n); got != 4 {
			t.Fatalf("node %s holds %d docs, want 4 (zombie write must be gone)", n.url, got)
		}
	}
}

func TestHeartbeatJitterNoSpuriousElections(t *testing.T) {
	nodes := startCluster(t, 3, 600*time.Millisecond, true)
	lead := waitOneLeader(t, nodes, 10*time.Second)
	mustCommit(t, lead, 1)

	// Inject per-chunk latency well under the heartbeat timeout on every
	// link; frames arrive late but steadily, so the watchdog must not fire.
	for _, n := range nodes {
		n.proxy.SetDelay(40 * time.Millisecond)
	}
	before := make(map[*clusterNode]uint64, len(nodes))
	termBefore := lead.cluster.Term()
	for _, n := range nodes {
		before[n] = n.cluster.Stats().Elections
	}
	time.Sleep(2 * time.Second)

	if lead.cluster.Role() != RoleLeader {
		t.Fatalf("leader lost its role under jitter (now %s)", lead.cluster.Role())
	}
	if got := lead.cluster.Term(); got != termBefore {
		t.Fatalf("term moved %d -> %d under jitter", termBefore, got)
	}
	for _, n := range nodes {
		if got := n.cluster.Stats().Elections; got != before[n] {
			t.Fatalf("node %s campaigned under jitter (%d -> %d elections)", n.url, before[n], got)
		}
	}
	// Still live: a write commits through the delayed links.
	mustCommit(t, lead, 2)
}
