// Package replica turns the engine's write-ahead log into a replication
// stream: a leader ships committed WAL entries (and whole snapshots for
// catch-up) over HTTP, and followers tail the stream, journal the frames
// into a byte-identical local log, and apply each batch through the engine's
// MVCC publish cycle so follower reads are snapshot-consistent and never
// block on apply.
//
// Endpoints (mounted under /repl on the leader):
//
//	GET /repl/position                     -> JSON {gen, offset, seq}
//	GET /repl/stream?gen=G&offset=O&seq=S  -> chunked binary frame stream
//	GET /repl/snapshot                     -> live snapshot bytes (X-Repl-Gen header)
//
// The stream body is a sequence of self-checking frames (see below). HTTP
// status 410 Gone on /stream means the requested generation was truncated by
// a leader checkpoint — fall back to /snapshot. 409 Conflict means the
// follower's position is ahead of the leader's log, which has no automatic
// recovery (wipe the follower).
package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
)

// Stream frame kinds. A frame starts with one kind byte.
const (
	// frameEntry carries one committed WAL entry:
	// [kind][term u64][gen u64][offset i64][len u32][crc32c u32][payload].
	// term is the election term the sending leader holds — the follower
	// refuses entries older than its fence (a deposed leader's late writes).
	// gen/offset locate the entry's first header byte in the leader's WAL;
	// the follower requires them to equal its own log end before appending.
	frameEntry = byte(1)
	// framePos carries the leader's live position — a heartbeat:
	// [kind][term u64][gen u64][offset i64][seq u64]. Sent after every
	// drained batch and on an idle timer, it is what lets a follower report
	// lag (and detect a dead TCP peer); in a cluster it doubles as the
	// leader's lease renewal, and the term lets a follower notice a newer
	// leader even when no entry flows.
	framePos = byte(2)
	// frameResync ends a stream that can no longer continue from the
	// follower's position (the generation rotated mid-stream): [kind].
	// The follower reconnects; the fresh request is answered with 410 and
	// snapshot catch-up takes over.
	frameResync = byte(3)
)

// maxWireEntry bounds a single streamed entry; mirrors the WAL's own limit
// so a garbage length prefix cannot become an allocation request.
const maxWireEntry = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame is returned by readWireFrame for any torn, truncated or
// bit-flipped frame. The tailer treats it as a broken connection: drop the
// stream and re-request from the last locally journaled position.
var errBadFrame = errors.New("replica: corrupt or truncated stream frame")

// wireFrame is one decoded stream frame.
type wireFrame struct {
	kind byte
	// term is the election term stamped by the sending leader (frameEntry
	// and framePos; 0 in legacy single-leader mode).
	term uint64
	// pos: for frameEntry, where the entry starts in the leader's WAL (Seq
	// unused); for framePos, the leader's live position.
	pos storage.Position
	// payload: frameEntry only — the WAL entry payload, checksum-verified.
	payload []byte
}

// writeEntryFrame writes one committed entry frame.
func writeEntryFrame(w io.Writer, term, gen uint64, offset int64, payload []byte) error {
	var hdr [1 + 8 + 8 + 8 + 4 + 4]byte
	hdr[0] = frameEntry
	binary.LittleEndian.PutUint64(hdr[1:9], term)
	binary.LittleEndian.PutUint64(hdr[9:17], gen)
	binary.LittleEndian.PutUint64(hdr[17:25], uint64(offset))
	binary.LittleEndian.PutUint32(hdr[25:29], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[29:33], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writePosFrame writes a leader-position heartbeat frame.
func writePosFrame(w io.Writer, term uint64, pos storage.Position) error {
	var hdr [1 + 8 + 8 + 8 + 8]byte
	hdr[0] = framePos
	binary.LittleEndian.PutUint64(hdr[1:9], term)
	binary.LittleEndian.PutUint64(hdr[9:17], pos.Gen)
	binary.LittleEndian.PutUint64(hdr[17:25], uint64(pos.Offset))
	binary.LittleEndian.PutUint64(hdr[25:33], pos.Seq)
	_, err := w.Write(hdr[:])
	return err
}

// writeResyncFrame writes a stream-ending resync frame.
func writeResyncFrame(w io.Writer) error {
	_, err := w.Write([]byte{frameResync})
	return err
}

// readWireFrame reads and validates one frame. io.EOF is returned only at a
// clean frame boundary; a frame cut off partway — or one whose checksum or
// length field does not hold up — is errBadFrame, never a silent partial
// result. This mirrors the on-disk torn-tail discipline: a follower applies
// a shipped entry only if every byte of it arrived intact.
func readWireFrame(br *bufio.Reader) (wireFrame, error) {
	kind, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return wireFrame{}, io.EOF
		}
		return wireFrame{}, fmt.Errorf("%w: %v", errBadFrame, err)
	}
	switch kind {
	case frameEntry:
		var hdr [8 + 8 + 8 + 4 + 4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return wireFrame{}, fmt.Errorf("%w: truncated entry header", errBadFrame)
		}
		term := binary.LittleEndian.Uint64(hdr[0:8])
		gen := binary.LittleEndian.Uint64(hdr[8:16])
		offset := int64(binary.LittleEndian.Uint64(hdr[16:24]))
		length := binary.LittleEndian.Uint32(hdr[24:28])
		wantCRC := binary.LittleEndian.Uint32(hdr[28:32])
		if length > maxWireEntry {
			return wireFrame{}, fmt.Errorf("%w: entry length %d out of range", errBadFrame, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return wireFrame{}, fmt.Errorf("%w: truncated entry payload", errBadFrame)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return wireFrame{}, fmt.Errorf("%w: entry at offset %d fails checksum", errBadFrame, offset)
		}
		return wireFrame{kind: frameEntry, term: term, pos: storage.Position{Gen: gen, Offset: offset}, payload: payload}, nil
	case framePos:
		var hdr [8 + 8 + 8 + 8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return wireFrame{}, fmt.Errorf("%w: truncated position frame", errBadFrame)
		}
		return wireFrame{kind: framePos, term: binary.LittleEndian.Uint64(hdr[0:8]), pos: storage.Position{
			Gen:    binary.LittleEndian.Uint64(hdr[8:16]),
			Offset: int64(binary.LittleEndian.Uint64(hdr[16:24])),
			Seq:    binary.LittleEndian.Uint64(hdr[24:32]),
		}}, nil
	case frameResync:
		return wireFrame{kind: frameResync}, nil
	default:
		return wireFrame{}, fmt.Errorf("%w: unknown frame kind %d", errBadFrame, kind)
	}
}
