package replica

import (
	"time"

	"repro/internal/storage"
)

// Replication roles.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
	// RoleCandidate is a clustered node campaigning for leadership (no
	// leader is known; writes answer 503 + Retry-After).
	RoleCandidate = "candidate"
)

// Follower states, as reported in Stats.State.
const (
	StateConnecting = "connecting" // dialing or backing off before a retry
	StateStreaming  = "streaming"  // tailing the leader's WAL
	StateSnapshot   = "snapshot"   // downloading + installing a catch-up snapshot
	StateFailed     = "failed"     // unrecoverable (local WAL divergence, apply failure)
	StateStopped    = "stopped"    // Stop was called
)

// Stats is a point-in-time view of one node's replication side — leader or
// follower — exposed through cypher.Graph.ReplicationStats, the serve /stats
// replication section, and /healthz.
type Stats struct {
	// Role is RoleLeader, RoleFollower or RoleCandidate.
	Role string
	// State: "serving" on a leader; a State* value on a follower.
	State string
	// Term is the node's current election term (0 in legacy single-leader
	// deployments that never vote).
	Term uint64

	// Local is this node's stream position: the live WAL end on a leader,
	// the last durably journaled (and applied) entry on a follower.
	Local storage.Position

	// Leader-side fields.

	// Advertise is the leader's public base URL (redirect target for writes).
	Advertise string
	// Followers lists the live stream sessions.
	Followers []FollowerSession
	// StreamedEntries/StreamedBytes count entry frames shipped since start.
	StreamedEntries uint64
	StreamedBytes   uint64
	// SnapshotsServed counts catch-up snapshots shipped whole.
	SnapshotsServed uint64

	// Follower-side fields.

	// Leader is the base URL this follower tails.
	Leader string
	// LeaderPos is the leader's live position as of the last frame received.
	LeaderPos storage.Position
	// LagEntries/LagBytes are how far Local trails LeaderPos. -1 = unknown
	// (no heartbeat yet, or the positions are in different generations,
	// where byte arithmetic is meaningless).
	LagEntries int64
	LagBytes   int64
	// AppliedBatches/Records/Bytes count shipped entries applied since start.
	AppliedBatches uint64
	AppliedRecords uint64
	AppliedBytes   uint64
	// SnapshotCatchups counts whole-snapshot installs (leader truncated past
	// this follower's position).
	SnapshotCatchups uint64
	// ForcedResyncs counts admin-triggered snapshot recoveries
	// (POST /admin/resync) of a fail-stopped tailer.
	ForcedResyncs uint64
	// Reconnects counts stream re-establishments after the first.
	Reconnects uint64
	// LastError is the most recent stream/apply error ("" when healthy).
	LastError string

	// Cluster-side fields (leader elections; zero outside -peers mode).

	// ClusterLeader is the advertised URL of the leader this node currently
	// recognizes ("" while campaigning).
	ClusterLeader string
	// QuorumSize is the vote/ack majority for the configured peer set.
	QuorumSize int
	// AckedPeers is how many peers (excluding the leader itself) have
	// recently acknowledged the leader's stream — leader role only.
	AckedPeers int
	// Elections counts campaigns this node has started since boot.
	Elections uint64
}

// FollowerSession is one live stream connection as seen by the leader.
type FollowerSession struct {
	// Remote is the follower's TCP peer address.
	Remote string
	// Sent is the position the session has shipped through.
	Sent storage.Position
	// ConnectedSince is when the session attached.
	ConnectedSince time.Time
}

// Lag computes entry/byte lag between a local and a leader position,
// returning -1/-1 when the generations differ (the byte offsets are then in
// different files and not comparable).
func Lag(local, leader storage.Position) (entries, bytes int64) {
	if leader.Gen != local.Gen {
		return -1, -1
	}
	entries = int64(leader.Seq) - int64(local.Seq)
	bytes = leader.Offset - local.Offset
	if entries < 0 {
		entries = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return entries, bytes
}
