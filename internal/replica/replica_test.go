package replica

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/storage"
)

// testLeader is an in-process leader node: durable engine plus the
// replication endpoints on a real HTTP listener.
type testLeader struct {
	engine *core.Engine
	store  *storage.Store
	leader *Leader
	srv    *httptest.Server
}

// newTestLeader boots a leader over dir. wrap, when non-nil, decorates the
// replication handler (fault injection).
func newTestLeader(t *testing.T, dir string, wrap func(http.Handler) http.Handler) *testLeader {
	t.Helper()
	g := graph.New()
	st, err := storage.Open(dir, g, storage.Options{})
	if err != nil {
		t.Fatalf("storage.Open: %v", err)
	}
	e := core.NewEngine(g, core.Options{})
	e.SetDurability(st)

	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	l := NewLeader(st, srv.URL)
	var h http.Handler = l.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	mux.Handle("/repl/", http.StripPrefix("/repl", h))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { e.Close() })
	return &testLeader{engine: e, store: st, leader: l, srv: srv}
}

func (tl *testLeader) mustRun(t *testing.T, q string) {
	t.Helper()
	if _, err := tl.engine.Run(q, nil); err != nil {
		t.Fatalf("leader query failed: %s\n%v", q, err)
	}
}

// testFollower is an in-process follower node tailing a testLeader.
type testFollower struct {
	engine   *core.Engine
	follower *Follower
}

func newTestFollower(t *testing.T, dir, leaderURL string) *testFollower {
	t.Helper()
	g := graph.New()
	fs, err := storage.OpenFollower(dir, g, storage.Options{})
	if err != nil {
		t.Fatalf("storage.OpenFollower: %v", err)
	}
	e := core.NewEngine(g, core.Options{})
	e.SetFollowerOf(leaderURL)
	f := NewFollower(FollowerConfig{
		Leader:           leaderURL,
		Engine:           e,
		Store:            fs,
		HeartbeatTimeout: 2 * time.Second,
		BackoffMin:       10 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		Logf:             t.Logf,
	})
	f.Start()
	return &testFollower{engine: e, follower: f}
}

func (tf *testFollower) stop(t *testing.T) {
	t.Helper()
	if err := tf.follower.Stop(); err != nil {
		t.Fatalf("stop follower: %v", err)
	}
}

// waitConverged polls until the follower's applied state equals the leader's
// current graph (positions match and the store dumps are byte-identical).
func waitConverged(t *testing.T, tl *testLeader, tf *testFollower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		lp, fp := tl.store.Position(), tf.follower.cfg.Store.Position()
		if lp == fp && tl.engine.Graph().DebugDump() == tf.engine.Graph().DebugDump() {
			return
		}
		if time.Now().After(deadline) {
			st := tf.follower.Stats()
			t.Fatalf("no convergence: leader at %v, follower at %v (state %s, lastErr %q)",
				lp, fp, st.State, st.LastError)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowersConvergeAndServeReads(t *testing.T) {
	tl := newTestLeader(t, t.TempDir(), nil)
	tl.mustRun(t, `CREATE (:Person {name: 'Ada'})-[:KNOWS]->(:Person {name: 'Grace'})`)

	// Two followers, one joining after the first writes already committed.
	f1 := newTestFollower(t, t.TempDir(), tl.srv.URL)
	defer f1.stop(t)
	tl.mustRun(t, `CREATE (:Person {name: 'Alan'})`)
	f2 := newTestFollower(t, t.TempDir(), tl.srv.URL)
	defer f2.stop(t)
	tl.mustRun(t, `MATCH (p:Person {name: 'Ada'}) SET p.born = 1815`)

	waitConverged(t, tl, f1)
	waitConverged(t, tl, f2)

	// Reads on a follower answer from the replicated state.
	res, err := f1.engine.Run(`MATCH (p:Person) RETURN p.name ORDER BY p.name`, nil)
	if err != nil {
		t.Fatalf("follower read: %v", err)
	}
	if res.Len() != 3 {
		t.Fatalf("follower sees %d people, want 3", res.Len())
	}

	// Both followers report zero lag at convergence.
	for i, f := range []*testFollower{f1, f2} {
		st := f.follower.Stats()
		if st.LagEntries != 0 || st.LagBytes != 0 {
			t.Errorf("follower %d lag = %d entries / %d bytes, want 0/0", i+1, st.LagEntries, st.LagBytes)
		}
		if st.State != StateStreaming {
			t.Errorf("follower %d state = %s, want %s", i+1, st.State, StateStreaming)
		}
	}

	// Writes are rejected with the leader's address.
	_, err = f2.engine.Run(`CREATE (:Nope)`, nil)
	var ro *core.ReadOnlyReplicaError
	if !errors.As(err, &ro) {
		t.Fatalf("follower write err = %v, want ReadOnlyReplicaError", err)
	}
	if ro.Leader != tl.srv.URL {
		t.Fatalf("rejection points at %q, want %q", ro.Leader, tl.srv.URL)
	}

	// The leader sees both stream sessions.
	if st := tl.leader.Stats(); len(st.Followers) != 2 {
		t.Fatalf("leader reports %d sessions, want 2", len(st.Followers))
	}
}

// TestFollowerResumesFromWALOffset stops a follower, lets the leader commit
// more, and restarts the follower over the same directory: it must resume
// from its durable WAL offset (no snapshot install) and converge.
func TestFollowerResumesFromWALOffset(t *testing.T) {
	tl := newTestLeader(t, t.TempDir(), nil)
	fdir := t.TempDir()

	tl.mustRun(t, `CREATE (:Doc {rev: 1})`)
	f := newTestFollower(t, fdir, tl.srv.URL)
	waitConverged(t, tl, f)
	f.stop(t)

	for i := 2; i <= 5; i++ {
		tl.mustRun(t, fmt.Sprintf(`CREATE (:Doc {rev: %d})`, i))
	}

	f = newTestFollower(t, fdir, tl.srv.URL)
	defer f.stop(t)
	waitConverged(t, tl, f)
	if st := f.follower.Stats(); st.SnapshotCatchups != 0 {
		t.Fatalf("resume used %d snapshot catch-ups, want 0 (WAL offset resume)", st.SnapshotCatchups)
	}
}

// TestFollowerSnapshotCatchup truncates the leader's WAL past a stopped
// follower's position (checkpoint) and restarts the follower: the 410 path
// must install a whole snapshot and converge.
func TestFollowerSnapshotCatchup(t *testing.T) {
	tl := newTestLeader(t, t.TempDir(), nil)
	fdir := t.TempDir()

	tl.mustRun(t, `CREATE (:Doc {rev: 1})`)
	f := newTestFollower(t, fdir, tl.srv.URL)
	waitConverged(t, tl, f)
	f.stop(t)

	tl.mustRun(t, `CREATE (:Doc {rev: 2})`)
	if err := tl.engine.Checkpoint(); err != nil {
		t.Fatalf("leader checkpoint: %v", err)
	}
	tl.mustRun(t, `CREATE (:Doc {rev: 3})`)

	f = newTestFollower(t, fdir, tl.srv.URL)
	defer f.stop(t)
	waitConverged(t, tl, f)
	st := f.follower.Stats()
	if st.SnapshotCatchups < 1 {
		t.Fatalf("snapshot catch-ups = %d, want >= 1", st.SnapshotCatchups)
	}
	if st.Local.Gen != tl.store.Position().Gen {
		t.Fatalf("follower generation %d, leader %d", st.Local.Gen, tl.store.Position().Gen)
	}

	// The stream keeps flowing in the new generation.
	tl.mustRun(t, `CREATE (:Doc {rev: 4})`)
	waitConverged(t, tl, f)
}

// corruptingHandler flips one byte early in the body of the first /stream
// response, simulating a transport bit-flip. The follower must reject the
// frame and re-request it on a fresh connection (which is served intact).
type corruptingHandler struct {
	inner http.Handler
	mu    sync.Mutex
	done  bool
}

func (c *corruptingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/stream" {
		c.inner.ServeHTTP(w, r)
		return
	}
	c.mu.Lock()
	first := !c.done
	c.done = true
	c.mu.Unlock()
	if !first {
		c.inner.ServeHTTP(w, r)
		return
	}
	c.inner.ServeHTTP(&corruptWriter{ResponseWriter: w}, r)
}

// corruptWriter XORs the 30th body byte — inside the first entry frame's
// payload region for any realistic batch.
type corruptWriter struct {
	http.ResponseWriter
	n int
}

func (cw *corruptWriter) Write(p []byte) (int, error) {
	q := append([]byte(nil), p...)
	for i := range q {
		if cw.n+i == 30 {
			q[i] ^= 0xFF
		}
	}
	cw.n += len(q)
	return cw.ResponseWriter.Write(q)
}

func (cw *corruptWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func TestFollowerRerequestsCorruptFrame(t *testing.T) {
	tl := newTestLeader(t, t.TempDir(), func(h http.Handler) http.Handler {
		return &corruptingHandler{inner: h}
	})
	tl.mustRun(t, `CREATE (:Person {name: 'Ada', bio: 'first programmer, wrote notes on the analytical engine'})`)

	f := newTestFollower(t, t.TempDir(), tl.srv.URL)
	defer f.stop(t)
	waitConverged(t, tl, f)

	st := f.follower.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1 (the corrupt frame must force a re-request)", st.Reconnects)
	}
	if st.State == StateFailed {
		t.Fatalf("follower failed instead of re-requesting: %s", st.LastError)
	}
}
