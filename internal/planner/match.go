package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/plan"
)

// matchContext accumulates state across the pattern tuple of one MATCH
// clause: the relationship and node variables bound so far, which drive the
// relationship-isomorphism uniqueness checks of Section 4.2.
type matchContext struct {
	relVars  []string
	nodeVars []string
}

// planMatch compiles a MATCH or OPTIONAL MATCH clause.
func (p *Planner) planMatch(input plan.Operator, m *ast.Match, sc *scope) (plan.Operator, error) {
	if !m.Optional {
		op, newVars, err := p.planPatternTuple(input, m.Pattern, sc)
		if err != nil {
			return nil, err
		}
		for _, v := range newVars {
			sc.add(v)
		}
		if m.Where != nil {
			if err := p.checkVariables(m.Where, sc); err != nil {
				return nil, err
			}
			op = &plan.Filter{Input: op, Predicate: m.Where}
		}
		return op, nil
	}

	// OPTIONAL MATCH: the pattern (and its WHERE, per Figure 7) is evaluated
	// per driving row; rows without any match get null bindings for the
	// variables the pattern introduces.
	innerScope := sc.clone()
	inner, newVars, err := p.planPatternTuple(&plan.Argument{}, m.Pattern, innerScope)
	if err != nil {
		return nil, err
	}
	for _, v := range newVars {
		innerScope.add(v)
	}
	if m.Where != nil {
		if err := p.checkVariables(m.Where, innerScope); err != nil {
			return nil, err
		}
		inner = &plan.Filter{Input: inner, Predicate: m.Where}
	}
	var introduced []string
	for _, v := range newVars {
		if !sc.has(v) {
			introduced = append(introduced, v)
			sc.add(v)
		}
	}
	return &plan.Optional{Input: input, Inner: inner, IntroducedVars: introduced}, nil
}

// planPatternTuple plans all parts of a pattern tuple sequentially and
// returns the user-visible variables the pattern introduces.
func (p *Planner) planPatternTuple(input plan.Operator, pattern ast.Pattern, sc *scope) (plan.Operator, []string, error) {
	op := input
	mc := &matchContext{}
	bound := sc.clone()
	var newVars []string
	addVar := func(v string) {
		if v == "" {
			return
		}
		if !bound.has(v) {
			bound.add(v)
			if v[0] != ' ' { // anonymous variables carry a leading space
				newVars = append(newVars, v)
			}
		}
	}
	for _, part := range pattern.Parts {
		named := p.nameAnonymous(part)
		var err error
		op, err = p.planPart(op, named, bound, mc, addVar)
		if err != nil {
			return nil, nil, err
		}
	}
	return op, newVars, nil
}

// nameAnonymous returns a copy of the pattern part in which every anonymous
// node and relationship has been given a unique internal name (prefixed with
// a space so it can never collide with user variables and is pruned by the
// next WITH/RETURN).
func (p *Planner) nameAnonymous(part ast.PatternPart) ast.PatternPart {
	out := ast.PatternPart{Variable: part.Variable}
	out.Nodes = append([]ast.NodePattern(nil), part.Nodes...)
	out.Rels = append([]ast.RelationshipPattern(nil), part.Rels...)
	for i := range out.Nodes {
		if out.Nodes[i].Variable == "" {
			out.Nodes[i].Variable = p.nextAnon("node")
		}
	}
	for i := range out.Rels {
		if out.Rels[i].Variable == "" {
			out.Rels[i].Variable = p.nextAnon("rel")
		}
	}
	return out
}

// planPart plans one path pattern: a scan (or reuse of an already-bound
// variable) for the most selective node, then Expand operators along the
// chain in both directions.
func (p *Planner) planPart(input plan.Operator, part ast.PatternPart, bound *scope, mc *matchContext, addVar func(string)) (plan.Operator, error) {
	op := input
	start := p.chooseStartNode(part, bound)

	// Bind the start node.
	np := part.Nodes[start]
	if bound.has(np.Variable) {
		// Already bound by an earlier clause or an earlier part: only apply
		// any additional label/property predicates.
		if pred := nodePredicate(np); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
	} else {
		op = p.planNodeScan(op, np)
		addVar(np.Variable)
		mc.nodeVars = append(mc.nodeVars, np.Variable)
	}

	// Expand to the right of the start node, then to the left.
	for i := start; i < len(part.Rels); i++ {
		var err error
		op, err = p.planExpand(op, part, i, false, bound, mc, addVar)
		if err != nil {
			return nil, err
		}
	}
	for i := start - 1; i >= 0; i-- {
		var err error
		op, err = p.planExpand(op, part, i, true, bound, mc, addVar)
		if err != nil {
			return nil, err
		}
	}

	if part.Variable != "" {
		op = &plan.ProjectPath{Input: op, Var: part.Variable, Part: part}
		addVar(part.Variable)
	}
	return op, nil
}

// chooseStartNode picks the index of the node pattern to solve first: an
// already-bound variable if there is one, otherwise the node whose label (or
// label+property with an index) is estimated to be most selective.
func (p *Planner) chooseStartNode(part ast.PatternPart, bound *scope) int {
	for i, np := range part.Nodes {
		if bound.has(np.Variable) {
			return i
		}
	}
	best, bestCost := 0, int(^uint(0)>>1)
	for i, np := range part.Nodes {
		cost := p.stats.NodeCount
		if len(np.Labels) > 0 {
			minCard := p.stats.NodeCount
			for _, l := range np.Labels {
				if c := p.stats.LabelCardinality(l); c < minCard {
					minCard = c
				}
			}
			cost = minCard
			// A usable property index makes the node even cheaper to find.
			if np.Properties != nil {
				for _, l := range np.Labels {
					for _, k := range np.Properties.Keys {
						if p.g.HasIndex(l, k) {
							if cost > 1 {
								cost = 1
							}
						}
					}
				}
			}
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// planNodeScan emits the cheapest scan for an unbound node pattern, plus a
// filter for any predicates the scan does not cover.
func (p *Planner) planNodeScan(input plan.Operator, np ast.NodePattern) plan.Operator {
	if len(np.Labels) == 0 {
		op := plan.Operator(&plan.AllNodesScan{Input: input, Var: np.Variable})
		if pred := propertyPredicate(np); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
		return op
	}
	// Index seek if possible.
	if np.Properties != nil {
		for _, l := range np.Labels {
			for i, k := range np.Properties.Keys {
				if p.g.HasIndex(l, k) {
					op := plan.Operator(&plan.NodeIndexSeek{
						Input:    input,
						Var:      np.Variable,
						Label:    l,
						Property: k,
						Value:    np.Properties.Values[i],
					})
					if pred := nodePredicateExcluding(np, l, k); pred != nil {
						op = &plan.Filter{Input: op, Predicate: pred}
					}
					return op
				}
			}
		}
	}
	// Label scan on the most selective label.
	bestLabel := np.Labels[0]
	bestCard := p.stats.LabelCardinality(bestLabel)
	for _, l := range np.Labels[1:] {
		if c := p.stats.LabelCardinality(l); c < bestCard {
			bestLabel, bestCard = l, c
		}
	}
	op := plan.Operator(&plan.NodeByLabelScan{Input: input, Var: np.Variable, Label: bestLabel})
	if pred := nodePredicateExcluding(np, bestLabel, ""); pred != nil {
		op = &plan.Filter{Input: op, Predicate: pred}
	}
	return op
}

// planExpand plans relationship i of the part. When reversed is true the
// traversal goes from node i+1 to node i (the pattern is being solved
// right-to-left), so the pattern direction is flipped.
func (p *Planner) planExpand(input plan.Operator, part ast.PatternPart, i int, reversed bool, bound *scope, mc *matchContext, addVar func(string)) (plan.Operator, error) {
	rp := part.Rels[i]
	fromNP, toNP := part.Nodes[i], part.Nodes[i+1]
	dir := rp.Direction
	if reversed {
		fromNP, toNP = toNP, fromNP
		switch dir {
		case ast.DirOutgoing:
			dir = ast.DirIncoming
		case ast.DirIncoming:
			dir = ast.DirOutgoing
		}
	}
	if bound.has(rp.Variable) {
		return nil, fmt.Errorf("planner: relationship variable `%s` is already bound; relationship variables cannot be reused", rp.Variable)
	}
	expand := &plan.Expand{
		Input:         input,
		FromVar:       fromNP.Variable,
		RelVar:        rp.Variable,
		ToVar:         toNP.Variable,
		Types:         rp.Types,
		Direction:     dir,
		VarLength:     rp.VarLength,
		MinHops:       rp.MinHops,
		MaxHops:       rp.MaxHops,
		ExpandInto:    bound.has(toNP.Variable),
		RelProperties: rp.Properties,
		UniqueRels:    append([]string(nil), mc.relVars...),
		UniqueNodes:   append([]string(nil), mc.nodeVars...),
	}
	mc.relVars = append(mc.relVars, rp.Variable)
	addVar(rp.Variable)

	var op plan.Operator = expand
	if !expand.ExpandInto {
		addVar(toNP.Variable)
		mc.nodeVars = append(mc.nodeVars, toNP.Variable)
		if pred := nodePredicate(toNP); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
	} else if pred := nodePredicate(toNP); pred != nil {
		// The target node was already bound; its label/property predicates
		// still need to hold.
		op = &plan.Filter{Input: op, Predicate: pred}
	}
	return op, nil
}

// nodePredicate builds the boolean expression corresponding to a node
// pattern's labels and inline properties (nil when there are none).
func nodePredicate(np ast.NodePattern) ast.Expr {
	return nodePredicateExcluding(np, "", "")
}

// nodePredicateExcluding is nodePredicate minus one label and one property
// already guaranteed by the chosen scan.
func nodePredicateExcluding(np ast.NodePattern, coveredLabel, coveredProp string) ast.Expr {
	var preds []ast.Expr
	var labels []string
	for _, l := range np.Labels {
		if l != coveredLabel {
			labels = append(labels, l)
		} else {
			coveredLabel = "\x00" // only skip one occurrence
		}
	}
	if len(labels) > 0 {
		preds = append(preds, &ast.HasLabels{Subject: &ast.Variable{Name: np.Variable}, Labels: labels})
	}
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			if k == coveredProp {
				coveredProp = "\x00"
				continue
			}
			preds = append(preds, &ast.BinaryOp{
				Op:  ast.OpEq,
				LHS: &ast.PropertyAccess{Subject: &ast.Variable{Name: np.Variable}, Key: k},
				RHS: np.Properties.Values[i],
			})
		}
	}
	return conjunction(preds)
}

// propertyPredicate builds only the property part of a node pattern's
// predicate.
func propertyPredicate(np ast.NodePattern) ast.Expr {
	var preds []ast.Expr
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			preds = append(preds, &ast.BinaryOp{
				Op:  ast.OpEq,
				LHS: &ast.PropertyAccess{Subject: &ast.Variable{Name: np.Variable}, Key: k},
				RHS: np.Properties.Values[i],
			})
		}
	}
	return conjunction(preds)
}

func conjunction(preds []ast.Expr) ast.Expr {
	switch len(preds) {
	case 0:
		return nil
	case 1:
		return preds[0]
	default:
		out := preds[0]
		for _, p := range preds[1:] {
			out = &ast.BinaryOp{Op: ast.OpAnd, LHS: out, RHS: p}
		}
		return out
	}
}
