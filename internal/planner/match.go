package planner

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/plan"
)

// matchContext accumulates state across the pattern tuple of one MATCH
// clause: the relationship and node variables bound so far, which drive the
// relationship-isomorphism uniqueness checks of Section 4.2.
type matchContext struct {
	relVars  []string
	nodeVars []string
}

// planMatch compiles a MATCH or OPTIONAL MATCH clause.
//
// In the default cost-based mode the WHERE expression is split into its
// AND-conjuncts, which participate in planning three ways before anything is
// left to a plain post-pattern filter:
//
//   - `n:Label` conjuncts merge into the pattern's node labels, so they join
//     label-scan selection instead of always filtering after the scan;
//   - property comparisons against already-evaluable expressions feed the
//     access-path choice (equality, IN, range and prefix index seeks);
//   - everything else is pushed down to the earliest operator at which all
//     of its variables are bound.
//
// Legacy mode keeps the original behaviour: the whole WHERE becomes one
// Filter above the fully planned pattern.
func (p *Planner) planMatch(input plan.Operator, m *ast.Match, sc *scope) (plan.Operator, error) {
	if !m.Optional {
		var cs *conjunctSet
		pattern := m.Pattern
		if !p.opts.Legacy && m.Where != nil {
			// cs stays nil (legacy whole-WHERE filter) when any conjunct
			// could raise a runtime error; see newConjunctSet.
			if cs = newConjunctSet(m.Where); cs != nil {
				pattern = p.mergeLabelPredicates(pattern, cs, sc)
			}
		}
		op, newVars, err := p.planPatternTuple(input, pattern, sc, cs)
		if err != nil {
			return nil, err
		}
		for _, v := range newVars {
			sc.add(v)
		}
		if m.Where != nil {
			if err := p.checkVariables(m.Where, sc); err != nil {
				return nil, err
			}
			if cs == nil {
				op = &plan.Filter{Input: op, Predicate: m.Where}
			} else {
				op = cs.attachRemaining(op)
			}
		}
		return op, nil
	}

	// OPTIONAL MATCH: the pattern (and its WHERE, per Figure 7) is evaluated
	// per driving row; rows without any match get null bindings for the
	// variables the pattern introduces. Conjunct pushdown happens inside the
	// inner plan, which is exactly where the WHERE applies.
	innerScope := sc.clone()
	var cs *conjunctSet
	pattern := m.Pattern
	if !p.opts.Legacy && m.Where != nil {
		if cs = newConjunctSet(m.Where); cs != nil {
			pattern = p.mergeLabelPredicates(pattern, cs, innerScope)
		}
	}
	inner, newVars, err := p.planPatternTuple(&plan.Argument{}, pattern, innerScope, cs)
	if err != nil {
		return nil, err
	}
	for _, v := range newVars {
		innerScope.add(v)
	}
	if m.Where != nil {
		if err := p.checkVariables(m.Where, innerScope); err != nil {
			return nil, err
		}
		if cs == nil {
			inner = &plan.Filter{Input: inner, Predicate: m.Where}
		} else {
			inner = cs.attachRemaining(inner)
		}
	}
	var introduced []string
	for _, v := range newVars {
		if !sc.has(v) {
			introduced = append(introduced, v)
			sc.add(v)
		}
	}
	return &plan.Optional{Input: input, Inner: inner, IntroducedVars: introduced}, nil
}

// mergeLabelPredicates folds `WHERE v:Label` conjuncts into the pattern when
// v is a node variable the pattern itself binds (an already-bound variable
// gains nothing from merging: its scan has happened). The labels join every
// occurrence of the variable, so the first occurrence's scan selection sees
// them and later occurrences enforce them like inline labels.
func (p *Planner) mergeLabelPredicates(pattern ast.Pattern, cs *conjunctSet, sc *scope) ast.Pattern {
	merged := map[string][]string{}
	for _, c := range cs.items {
		hl, ok := c.expr.(*ast.HasLabels)
		if !ok {
			continue
		}
		v, ok := hl.Subject.(*ast.Variable)
		if !ok || sc.has(v.Name) || !patternBindsNodeVar(pattern, v.Name) {
			continue
		}
		merged[v.Name] = append(merged[v.Name], hl.Labels...)
		c.used = true
	}
	if len(merged) == 0 {
		return pattern
	}
	out := ast.Pattern{Parts: make([]ast.PatternPart, len(pattern.Parts))}
	for i, part := range pattern.Parts {
		np := ast.PatternPart{Variable: part.Variable, Rels: part.Rels}
		np.Nodes = append([]ast.NodePattern(nil), part.Nodes...)
		for j := range np.Nodes {
			if extra, ok := merged[np.Nodes[j].Variable]; ok {
				np.Nodes[j].Labels = appendMissingLabels(np.Nodes[j].Labels, extra)
			}
		}
		out.Parts[i] = np
	}
	return out
}

// patternBindsNodeVar reports whether the pattern contains a node with the
// given variable name.
func patternBindsNodeVar(pattern ast.Pattern, name string) bool {
	for _, part := range pattern.Parts {
		for _, np := range part.Nodes {
			if np.Variable == name {
				return true
			}
		}
	}
	return false
}

// appendMissingLabels appends the labels of extra not already present,
// without mutating the (shared) input slice.
func appendMissingLabels(labels, extra []string) []string {
	out := append([]string(nil), labels...)
	for _, l := range extra {
		seen := false
		for _, have := range out {
			if have == l {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, l)
		}
	}
	return out
}

// planPatternTuple plans all parts of a pattern tuple and returns the
// user-visible variables the pattern introduces. In cost-based mode the
// parts are solved cheapest-first (greedily, re-estimated as variables
// become bound, so connected parts follow the parts that bind their
// variables); legacy mode and single-part patterns keep source order.
func (p *Planner) planPatternTuple(input plan.Operator, pattern ast.Pattern, sc *scope, cs *conjunctSet) (plan.Operator, []string, error) {
	op := input
	mc := &matchContext{}
	bound := sc.clone()
	addVar := func(v string) {
		if v != "" {
			bound.add(v)
		}
	}
	// Conjuncts without variables (parameters, literals) filter the unit row
	// before any scanning happens.
	op = cs.attachReady(op, bound)

	if p.opts.Legacy || len(pattern.Parts) <= 1 {
		for _, part := range pattern.Parts {
			named := p.nameAnonymous(part)
			var err error
			op, err = p.planPart(op, named, bound, mc, addVar, cs)
			if err != nil {
				return nil, nil, err
			}
		}
		return op, p.introducedVars(pattern, sc, bound), nil
	}

	remaining := make([]int, len(pattern.Parts))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestAt, bestCost := 0, math.Inf(1)
		for at, idx := range remaining {
			part := pattern.Parts[idx]
			cost := math.Inf(1)
			for s := range part.Nodes {
				if c := p.partCost(part, s, bound, cs); c < cost {
					cost = c
				}
			}
			if cost < bestCost {
				bestAt, bestCost = at, cost
			}
		}
		idx := remaining[bestAt]
		remaining = append(remaining[:bestAt], remaining[bestAt+1:]...)
		named := p.nameAnonymous(pattern.Parts[idx])
		var err error
		op, err = p.planPart(op, named, bound, mc, addVar, cs)
		if err != nil {
			return nil, nil, err
		}
	}
	return op, p.introducedVars(pattern, sc, bound), nil
}

// introducedVars lists the user-visible variables the pattern introduced, in
// source-pattern order — NOT in solve order. Scope order decides the column
// order of RETURN *, so it must not depend on which end of a pattern (or
// which part of a tuple) the cost model chose to solve first.
func (p *Planner) introducedVars(pattern ast.Pattern, sc, bound *scope) []string {
	var out []string
	seen := map[string]bool{}
	collect := func(v string) {
		if v == "" || sc.has(v) || seen[v] || !bound.has(v) {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	for _, part := range pattern.Parts {
		for i, np := range part.Nodes {
			collect(np.Variable)
			if i < len(part.Rels) {
				collect(part.Rels[i].Variable)
			}
		}
		collect(part.Variable)
	}
	return out
}

// nameAnonymous returns a copy of the pattern part in which every anonymous
// node and relationship has been given a unique internal name (prefixed with
// a space so it can never collide with user variables and is pruned by the
// next WITH/RETURN).
func (p *Planner) nameAnonymous(part ast.PatternPart) ast.PatternPart {
	out := ast.PatternPart{Variable: part.Variable}
	out.Nodes = append([]ast.NodePattern(nil), part.Nodes...)
	out.Rels = append([]ast.RelationshipPattern(nil), part.Rels...)
	for i := range out.Nodes {
		if out.Nodes[i].Variable == "" {
			out.Nodes[i].Variable = p.nextAnon("node")
		}
	}
	for i := range out.Rels {
		if out.Rels[i].Variable == "" {
			out.Rels[i].Variable = p.nextAnon("rel")
		}
	}
	return out
}

// planPart plans one path pattern: a scan (or reuse of an already-bound
// variable) for the most selective node, then Expand operators along the
// chain in both directions. After every operator that binds variables, WHERE
// conjuncts whose variables are now all bound are attached as filters
// (predicate pushdown).
func (p *Planner) planPart(input plan.Operator, part ast.PatternPart, bound *scope, mc *matchContext, addVar func(string), cs *conjunctSet) (plan.Operator, error) {
	op := input
	start := p.chooseStartNode(part, bound, cs)

	// Bind the start node.
	np := part.Nodes[start]
	if bound.has(np.Variable) {
		// Already bound by an earlier clause or an earlier part: only apply
		// any additional label/property predicates.
		if pred := nodePredicate(np); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
	} else {
		op = p.planNodeScan(op, np, bound, cs)
		addVar(np.Variable)
		mc.nodeVars = append(mc.nodeVars, np.Variable)
		op = cs.attachReady(op, bound)
	}

	// Expand to the right of the start node, then to the left.
	for i := start; i < len(part.Rels); i++ {
		var err error
		op, err = p.planExpand(op, part, i, false, bound, mc, addVar)
		if err != nil {
			return nil, err
		}
		op = cs.attachReady(op, bound)
	}
	for i := start - 1; i >= 0; i-- {
		var err error
		op, err = p.planExpand(op, part, i, true, bound, mc, addVar)
		if err != nil {
			return nil, err
		}
		op = cs.attachReady(op, bound)
	}

	if part.Variable != "" {
		op = &plan.ProjectPath{Input: op, Var: part.Variable, Part: part}
		addVar(part.Variable)
		op = cs.attachReady(op, bound)
	}
	return op, nil
}

// chooseStartNode picks the index of the node pattern to solve first: an
// already-bound variable if there is one, otherwise (cost-based mode) the
// node minimising the estimated rows touched by solving the whole part from
// it — which folds in index seeks unlocked by WHERE conjuncts and the
// expansion fan-out in each direction — or (legacy mode) the node whose
// label/index lookup is estimated cheapest in isolation.
func (p *Planner) chooseStartNode(part ast.PatternPart, bound *scope, cs *conjunctSet) int {
	for i, np := range part.Nodes {
		if bound.has(np.Variable) {
			return i
		}
	}
	if !p.opts.Legacy {
		best, bestCost := 0, math.Inf(1)
		for i := range part.Nodes {
			if c := p.partCost(part, i, bound, cs); c < bestCost {
				best, bestCost = i, c
			}
		}
		return best
	}
	best, bestCost := 0, int(^uint(0)>>1)
	for i, np := range part.Nodes {
		cost := p.stats.NodeCount
		if len(np.Labels) > 0 {
			minCard := p.stats.NodeCount
			for _, l := range np.Labels {
				if c := p.stats.LabelCardinality(l); c < minCard {
					minCard = c
				}
			}
			cost = minCard
			// A usable property index makes the node even cheaper to find.
			if np.Properties != nil {
				for _, l := range np.Labels {
					for _, k := range np.Properties.Keys {
						if p.g.HasIndex(l, k) {
							if cost > 1 {
								cost = 1
							}
						}
					}
				}
			}
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// planNodeScan emits the cheapest access path for an unbound node pattern,
// plus a filter for any predicates the chosen path does not cover.
func (p *Planner) planNodeScan(input plan.Operator, np ast.NodePattern, bound *scope, cs *conjunctSet) plan.Operator {
	if !p.opts.Legacy {
		ap := p.bestAccess(np, bound, cs)
		ap.consume()
		op := ap.build(input, np.Variable)
		if pred := nodePredicateExcluding(np, ap.coveredLabel(), ap.coveredProp); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
		return op
	}
	if len(np.Labels) == 0 {
		op := plan.Operator(&plan.AllNodesScan{Input: input, Var: np.Variable})
		if pred := propertyPredicate(np); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
		return op
	}
	// Index seek if possible.
	if np.Properties != nil {
		for _, l := range np.Labels {
			for i, k := range np.Properties.Keys {
				if p.g.HasIndex(l, k) {
					op := plan.Operator(&plan.NodeIndexSeek{
						Input:    input,
						Var:      np.Variable,
						Label:    l,
						Property: k,
						Value:    np.Properties.Values[i],
					})
					if pred := nodePredicateExcluding(np, l, k); pred != nil {
						op = &plan.Filter{Input: op, Predicate: pred}
					}
					return op
				}
			}
		}
	}
	// Label scan on the most selective label.
	bestLabel := np.Labels[0]
	bestCard := p.stats.LabelCardinality(bestLabel)
	for _, l := range np.Labels[1:] {
		if c := p.stats.LabelCardinality(l); c < bestCard {
			bestLabel, bestCard = l, c
		}
	}
	op := plan.Operator(&plan.NodeByLabelScan{Input: input, Var: np.Variable, Label: bestLabel})
	if pred := nodePredicateExcluding(np, bestLabel, ""); pred != nil {
		op = &plan.Filter{Input: op, Predicate: pred}
	}
	return op
}

// planExpand plans relationship i of the part. When reversed is true the
// traversal goes from node i+1 to node i (the pattern is being solved
// right-to-left), so the pattern direction is flipped.
func (p *Planner) planExpand(input plan.Operator, part ast.PatternPart, i int, reversed bool, bound *scope, mc *matchContext, addVar func(string)) (plan.Operator, error) {
	rp := part.Rels[i]
	fromNP, toNP := part.Nodes[i], part.Nodes[i+1]
	dir := rp.Direction
	if reversed {
		fromNP, toNP = toNP, fromNP
		switch dir {
		case ast.DirOutgoing:
			dir = ast.DirIncoming
		case ast.DirIncoming:
			dir = ast.DirOutgoing
		}
	}
	if bound.has(rp.Variable) {
		return nil, fmt.Errorf("planner: relationship variable `%s` is already bound; relationship variables cannot be reused", rp.Variable)
	}
	expand := &plan.Expand{
		Input:         input,
		FromVar:       fromNP.Variable,
		RelVar:        rp.Variable,
		ToVar:         toNP.Variable,
		Types:         rp.Types,
		Direction:     dir,
		VarLength:     rp.VarLength,
		MinHops:       rp.MinHops,
		MaxHops:       rp.MaxHops,
		ExpandInto:    bound.has(toNP.Variable),
		RelProperties: rp.Properties,
		UniqueRels:    append([]string(nil), mc.relVars...),
		UniqueNodes:   append([]string(nil), mc.nodeVars...),
	}
	mc.relVars = append(mc.relVars, rp.Variable)
	addVar(rp.Variable)

	var op plan.Operator = expand
	if !expand.ExpandInto {
		addVar(toNP.Variable)
		mc.nodeVars = append(mc.nodeVars, toNP.Variable)
		if pred := nodePredicate(toNP); pred != nil {
			op = &plan.Filter{Input: op, Predicate: pred}
		}
	} else if pred := nodePredicate(toNP); pred != nil {
		// The target node was already bound; its label/property predicates
		// still need to hold.
		op = &plan.Filter{Input: op, Predicate: pred}
	}
	return op, nil
}

// nodePredicate builds the boolean expression corresponding to a node
// pattern's labels and inline properties (nil when there are none).
func nodePredicate(np ast.NodePattern) ast.Expr {
	return nodePredicateExcluding(np, "", "")
}

// nodePredicateExcluding is nodePredicate minus one label and one property
// already guaranteed by the chosen scan.
func nodePredicateExcluding(np ast.NodePattern, coveredLabel, coveredProp string) ast.Expr {
	var preds []ast.Expr
	var labels []string
	for _, l := range np.Labels {
		if l != coveredLabel {
			labels = append(labels, l)
		} else {
			coveredLabel = "\x00" // only skip one occurrence
		}
	}
	if len(labels) > 0 {
		preds = append(preds, &ast.HasLabels{Subject: &ast.Variable{Name: np.Variable}, Labels: labels})
	}
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			if k == coveredProp {
				coveredProp = "\x00"
				continue
			}
			preds = append(preds, &ast.BinaryOp{
				Op:  ast.OpEq,
				LHS: &ast.PropertyAccess{Subject: &ast.Variable{Name: np.Variable}, Key: k},
				RHS: np.Properties.Values[i],
			})
		}
	}
	return conjunction(preds)
}

// propertyPredicate builds only the property part of a node pattern's
// predicate.
func propertyPredicate(np ast.NodePattern) ast.Expr {
	var preds []ast.Expr
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			preds = append(preds, &ast.BinaryOp{
				Op:  ast.OpEq,
				LHS: &ast.PropertyAccess{Subject: &ast.Variable{Name: np.Variable}, Key: k},
				RHS: np.Properties.Values[i],
			})
		}
	}
	return conjunction(preds)
}

func conjunction(preds []ast.Expr) ast.Expr {
	switch len(preds) {
	case 0:
		return nil
	case 1:
		return preds[0]
	default:
		out := preds[0]
		for _, p := range preds[1:] {
			out = &ast.BinaryOp{Op: ast.OpAnd, LHS: out, RHS: p}
		}
		return out
	}
}
