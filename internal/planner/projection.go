package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/plan"
)

// planProjection compiles a WITH or RETURN clause. It returns the resulting
// operator and the declared output column names (which become the new scope
// for WITH and the result columns for RETURN). where is the WITH ... WHERE
// predicate (nil for RETURN).
func (p *Planner) planProjection(input plan.Operator, proj ast.Projection, sc *scope, where ast.Expr) (plan.Operator, []string, error) {
	items, err := p.expandStar(proj, sc)
	if err != nil {
		return nil, nil, err
	}
	var columns []string
	seen := map[string]bool{}
	for _, it := range items {
		name := it.Name()
		if seen[name] {
			return nil, nil, fmt.Errorf("planner: duplicate column name %q in projection", name)
		}
		seen[name] = true
		columns = append(columns, name)
	}

	hasAggregate := false
	for _, it := range items {
		if eval.ContainsAggregate(it.Expr) {
			hasAggregate = true
			break
		}
	}

	var op plan.Operator
	switch {
	case hasAggregate:
		op, err = p.planAggregation(input, items, sc)
		if err != nil {
			return nil, nil, err
		}
		op = &plan.SelectColumns{Input: op, Columns: columns}
		if proj.Distinct {
			op = &plan.Distinct{Input: op, Columns: columns}
		}
	case proj.Distinct:
		for _, it := range items {
			if err := p.checkVariables(it.Expr, sc); err != nil {
				return nil, nil, err
			}
		}
		op = &plan.Project{Input: input, Items: projectionItems(items)}
		op = &plan.SelectColumns{Input: op, Columns: columns}
		op = &plan.Distinct{Input: op, Columns: columns}
	default:
		for _, it := range items {
			if err := p.checkVariables(it.Expr, sc); err != nil {
				return nil, nil, err
			}
		}
		op = &plan.Project{Input: input, Items: projectionItems(items)}
	}

	if len(proj.OrderBy) > 0 {
		keys := make([]plan.SortKey, len(proj.OrderBy))
		for i, s := range proj.OrderBy {
			keys[i] = plan.SortKey{Expr: s.Expr, Descending: s.Descending}
		}
		op = &plan.Sort{Input: op, Keys: keys}
	}
	if proj.Skip != nil {
		op = &plan.Skip{Input: op, Count: proj.Skip}
	}
	if proj.Limit != nil {
		op = &plan.Limit{Input: op, Count: proj.Limit}
	}
	// The scope cut: only the declared columns survive (for the plain
	// non-aggregated case this also prunes the pre-projection variables that
	// ORDER BY was still allowed to see).
	op = &plan.SelectColumns{Input: op, Columns: columns}
	if where != nil {
		whereScope := newScope()
		for _, c := range columns {
			whereScope.add(c)
		}
		if err := p.checkVariables(where, whereScope); err != nil {
			return nil, nil, err
		}
		op = &plan.Filter{Input: op, Predicate: where}
	}
	return op, columns, nil
}

// expandStar resolves `*` projections into one item per variable in scope.
func (p *Planner) expandStar(proj ast.Projection, sc *scope) ([]ast.ReturnItem, error) {
	if !proj.Star {
		return proj.Items, nil
	}
	if len(sc.names) == 0 {
		return nil, fmt.Errorf("planner: RETURN * is not allowed when there are no variables in scope")
	}
	var items []ast.ReturnItem
	for _, name := range sc.names {
		items = append(items, ast.ReturnItem{Expr: &ast.Variable{Name: name}})
	}
	return append(items, proj.Items...), nil
}

func projectionItems(items []ast.ReturnItem) []plan.ProjectionItem {
	out := make([]plan.ProjectionItem, len(items))
	for i, it := range items {
		out[i] = plan.ProjectionItem{Name: it.Name(), Expr: it.Expr}
	}
	return out
}

// planAggregation compiles a projection that contains aggregating functions:
// the non-aggregating items become grouping keys (as in the paper's WITH
// example, where `r` acts as the implicit grouping key for count(s)), and
// every aggregate sub-expression is computed by an Aggregate operator; a
// final Project reassembles items that mix aggregates with other arithmetic.
func (p *Planner) planAggregation(input plan.Operator, items []ast.ReturnItem, sc *scope) (plan.Operator, error) {
	agg := &plan.Aggregate{Input: input}
	var postItems []plan.ProjectionItem
	aggCounter := 0

	for _, it := range items {
		name := it.Name()
		if !eval.ContainsAggregate(it.Expr) {
			if err := p.checkVariables(it.Expr, sc); err != nil {
				return nil, err
			}
			agg.Grouping = append(agg.Grouping, plan.ProjectionItem{Name: name, Expr: it.Expr})
			postItems = append(postItems, plan.ProjectionItem{Name: name, Expr: &ast.Variable{Name: name}})
			continue
		}
		if err := p.checkVariables(it.Expr, sc); err != nil {
			return nil, err
		}
		rewritten, aggItems, err := rewriteAggregates(it.Expr, &aggCounter)
		if err != nil {
			return nil, err
		}
		agg.Aggregations = append(agg.Aggregations, aggItems...)
		postItems = append(postItems, plan.ProjectionItem{Name: name, Expr: rewritten})
	}
	return &plan.Project{Input: agg, Items: postItems}, nil
}

// rewriteAggregates replaces every aggregate call in the expression with a
// reference to a generated column computed by the Aggregate operator.
func rewriteAggregates(e ast.Expr, counter *int) (ast.Expr, []plan.AggregationItem, error) {
	var items []plan.AggregationItem
	newExpr, err := rewriteExpr(e, func(sub ast.Expr) (ast.Expr, bool, error) {
		switch f := sub.(type) {
		case *ast.CountStar:
			*counter++
			name := fmt.Sprintf("  agg#%d", *counter)
			items = append(items, plan.AggregationItem{Name: name, Func: "count"})
			return &ast.Variable{Name: name}, true, nil
		case *ast.FunctionCall:
			if !eval.IsAggregate(f.Name) {
				return nil, false, nil
			}
			if len(f.Args) != 1 {
				return nil, false, fmt.Errorf("planner: %s(...) expects exactly one argument", f.Name)
			}
			if eval.ContainsAggregate(f.Args[0]) {
				return nil, false, fmt.Errorf("planner: aggregating functions cannot be nested")
			}
			*counter++
			name := fmt.Sprintf("  agg#%d", *counter)
			items = append(items, plan.AggregationItem{Name: name, Func: f.Name, Distinct: f.Distinct, Arg: f.Args[0]})
			return &ast.Variable{Name: name}, true, nil
		}
		return nil, false, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return newExpr, items, nil
}

// rewriteExpr rebuilds an expression tree, replacing sub-expressions for
// which replace returns a substitute.
func rewriteExpr(e ast.Expr, replace func(ast.Expr) (ast.Expr, bool, error)) (ast.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if sub, ok, err := replace(e); err != nil {
		return nil, err
	} else if ok {
		return sub, nil
	}
	rw := func(x ast.Expr) (ast.Expr, error) { return rewriteExpr(x, replace) }
	switch x := e.(type) {
	case *ast.PropertyAccess:
		s, err := rw(x.Subject)
		if err != nil {
			return nil, err
		}
		return &ast.PropertyAccess{Subject: s, Key: x.Key}, nil
	case *ast.ListLiteral:
		out := &ast.ListLiteral{}
		for _, el := range x.Elems {
			ne, err := rw(el)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, ne)
		}
		return out, nil
	case *ast.MapLiteral:
		out := &ast.MapLiteral{Keys: x.Keys}
		for _, v := range x.Values {
			nv, err := rw(v)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, nv)
		}
		return out, nil
	case *ast.Index:
		s, err := rw(x.Subject)
		if err != nil {
			return nil, err
		}
		i, err := rw(x.Idx)
		if err != nil {
			return nil, err
		}
		return &ast.Index{Subject: s, Idx: i}, nil
	case *ast.Slice:
		s, err := rw(x.Subject)
		if err != nil {
			return nil, err
		}
		from, err := rw(x.From)
		if err != nil {
			return nil, err
		}
		to, err := rw(x.To)
		if err != nil {
			return nil, err
		}
		return &ast.Slice{Subject: s, From: from, To: to}, nil
	case *ast.BinaryOp:
		l, err := rw(x.LHS)
		if err != nil {
			return nil, err
		}
		r, err := rw(x.RHS)
		if err != nil {
			return nil, err
		}
		return &ast.BinaryOp{Op: x.Op, LHS: l, RHS: r}, nil
	case *ast.UnaryOp:
		o, err := rw(x.Operand)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryOp{Op: x.Op, Operand: o}, nil
	case *ast.IsNull:
		o, err := rw(x.Operand)
		if err != nil {
			return nil, err
		}
		return &ast.IsNull{Operand: o, Negated: x.Negated}, nil
	case *ast.HasLabels:
		s, err := rw(x.Subject)
		if err != nil {
			return nil, err
		}
		return &ast.HasLabels{Subject: s, Labels: x.Labels}, nil
	case *ast.FunctionCall:
		out := &ast.FunctionCall{Name: x.Name, Distinct: x.Distinct}
		for _, a := range x.Args {
			na, err := rw(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, na)
		}
		return out, nil
	case *ast.Case:
		test, err := rw(x.Test)
		if err != nil {
			return nil, err
		}
		out := &ast.Case{Test: test}
		for _, alt := range x.Alternatives {
			w, err := rw(alt.When)
			if err != nil {
				return nil, err
			}
			th, err := rw(alt.Then)
			if err != nil {
				return nil, err
			}
			out.Alternatives = append(out.Alternatives, ast.CaseAlternative{When: w, Then: th})
		}
		els, err := rw(x.Else)
		if err != nil {
			return nil, err
		}
		out.Else = els
		return out, nil
	case *ast.ListComprehension:
		list, err := rw(x.List)
		if err != nil {
			return nil, err
		}
		where, err := rw(x.Where)
		if err != nil {
			return nil, err
		}
		proj, err := rw(x.Projection)
		if err != nil {
			return nil, err
		}
		return &ast.ListComprehension{Variable: x.Variable, List: list, Where: where, Projection: proj}, nil
	case *ast.Reduce:
		init, err := rw(x.Init)
		if err != nil {
			return nil, err
		}
		list, err := rw(x.List)
		if err != nil {
			return nil, err
		}
		expr, err := rw(x.Expr)
		if err != nil {
			return nil, err
		}
		return &ast.Reduce{Accumulator: x.Accumulator, Init: init, Variable: x.Variable, List: list, Expr: expr}, nil
	default:
		return e, nil
	}
}

// planCreate compiles a CREATE clause; the pattern's variables become bound.
func (p *Planner) planCreate(input plan.Operator, c *ast.Create, sc *scope) (plan.Operator, error) {
	for _, part := range c.Pattern.Parts {
		for i, np := range part.Nodes {
			if np.Properties != nil {
				for _, v := range np.Properties.Values {
					if err := p.checkVariables(v, sc); err != nil {
						return nil, err
					}
				}
			}
			_ = i
		}
	}
	op := &plan.CreateOp{Input: input, Pattern: c.Pattern}
	for _, v := range c.Pattern.Variables() {
		sc.add(v)
	}
	return op, nil
}

// planMerge compiles a MERGE clause.
func (p *Planner) planMerge(input plan.Operator, m *ast.Merge, sc *scope) (plan.Operator, error) {
	op := &plan.MergeOp{Input: input, Part: m.Part, OnCreate: m.OnCreate, OnMatch: m.OnMatch}
	for _, v := range m.Part.Variables() {
		sc.add(v)
	}
	return op, nil
}
