package planner

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/value"
)

func planFor(t *testing.T, g *graph.Graph, src string) *plan.Plan {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := New(g).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return p
}

func operators(p *plan.Plan) []string {
	var out []string
	for op := p.Root; op != nil; op = op.Source() {
		out = append(out, op.Describe())
	}
	return out
}

func hasOperator(p *plan.Plan, substr string) bool {
	for _, d := range operators(p) {
		if strings.Contains(d, substr) {
			return true
		}
	}
	return false
}

func TestScanSelection(t *testing.T) {
	g, _ := datasets.Citations()
	// No label: all nodes scan.
	p := planFor(t, g, "MATCH (n) RETURN n")
	if !hasOperator(p, "AllNodesScan") {
		t.Errorf("expected AllNodesScan:\n%s", p)
	}
	// Label: label scan.
	p = planFor(t, g, "MATCH (n:Researcher) RETURN n")
	if !hasOperator(p, "NodeByLabelScan(n:Researcher)") {
		t.Errorf("expected NodeByLabelScan:\n%s", p)
	}
	// Label + property + index: index seek.
	g.CreateIndex("Researcher", "name")
	p = planFor(t, New(g).g, "MATCH (n:Researcher {name: 'Elin'}) RETURN n")
	if !hasOperator(p, "NodeIndexSeek") {
		t.Errorf("expected NodeIndexSeek:\n%s", p)
	}
	// Label + property without index: label scan plus filter.
	p = planFor(t, g, "MATCH (n:Publication {acmid: 220}) RETURN n")
	if !hasOperator(p, "NodeByLabelScan(n:Publication)") || !hasOperator(p, "Filter(n.acmid = 220") {
		t.Errorf("expected label scan + filter:\n%s", p)
	}
}

func TestStartNodeSelectionBySelectivity(t *testing.T) {
	g := graph.New()
	// 100 Common nodes, 2 Rare nodes.
	var rare *graph.Node
	for i := 0; i < 100; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	for i := 0; i < 2; i++ {
		rare = g.CreateNode([]string{"Rare"}, nil)
	}
	_ = rare
	// The planner should start from the Rare side of the pattern.
	p := planFor(t, g, "MATCH (c:Common)-[:R]->(r:Rare) RETURN c")
	ops := operators(p)
	leaf := ops[len(ops)-2] // the operator just above Start
	if !strings.Contains(leaf, "NodeByLabelScan(r:Rare)") {
		t.Errorf("expected the scan to start from the rare label, got %q in\n%s", leaf, p)
	}
	// And expand in the reverse direction of the pattern arrow.
	if !hasOperator(p, "Expand((r)<--") {
		t.Errorf("expected a reversed expand:\n%s", p)
	}
}

func TestBoundVariableBecomesExpandInto(t *testing.T) {
	g, _ := datasets.Teachers()
	p := planFor(t, g, "MATCH (a)-[:KNOWS]->(b) MATCH (a)-[:KNOWS]->(b) RETURN a, b")
	// The second MATCH has both endpoints bound: it must check rather than
	// rebind, i.e. use ExpandInto.
	if !hasOperator(p, "ExpandInto") {
		t.Errorf("expected ExpandInto for the re-matched pattern:\n%s", p)
	}
	// A cyclic pattern inside one part also needs ExpandInto.
	p = planFor(t, g, "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(a) RETURN a")
	if !hasOperator(p, "ExpandInto") {
		t.Errorf("expected ExpandInto for the cyclic pattern:\n%s", p)
	}
}

func TestOptionalAndUnionPlans(t *testing.T) {
	g, _ := datasets.Citations()
	p := planFor(t, g, "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:AUTHORS]->(p:Publication) RETURN r, p")
	if !hasOperator(p, "Optional") {
		t.Errorf("expected an Optional operator:\n%s", p)
	}
	p = planFor(t, g, "MATCH (r:Researcher) RETURN r.name AS n UNION MATCH (s:Student) RETURN s.name AS n")
	if _, ok := p.Root.(*plan.Union); !ok {
		t.Errorf("expected a Union root:\n%s", p)
	}
	if p.Columns[0] != "n" {
		t.Errorf("union columns wrong: %v", p.Columns)
	}
}

func TestAggregationPlanShape(t *testing.T) {
	g, _ := datasets.Citations()
	p := planFor(t, g, "MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) RETURN r.name AS name, count(p) AS pubs ORDER BY pubs DESC LIMIT 1")
	if !hasOperator(p, "Aggregate(name") {
		t.Errorf("expected Aggregate with grouping key:\n%s", p)
	}
	if !hasOperator(p, "Sort") || !hasOperator(p, "Limit(1)") {
		t.Errorf("expected Sort and Limit:\n%s", p)
	}
	if p.Columns[0] != "name" || p.Columns[1] != "pubs" {
		t.Errorf("columns wrong: %v", p.Columns)
	}
	// count(*) + 1 is rewritten into an aggregate column plus projection.
	p = planFor(t, g, "MATCH (n) RETURN count(*) + 1 AS c")
	if !hasOperator(p, "Aggregate(") || !hasOperator(p, "Project(") {
		t.Errorf("expected aggregate + projection:\n%s", p)
	}
}

func TestUniquenessListsInExpand(t *testing.T) {
	g, _ := datasets.Teachers()
	q, err := parser.Parse("MATCH (a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second expand and check it lists the first relationship
	// variable for the uniqueness check.
	var second *plan.Expand
	for op := p.Root; op != nil; op = op.Source() {
		if e, ok := op.(*plan.Expand); ok {
			second = e
			break // the topmost expand in the chain is the last planned
		}
	}
	if second == nil {
		t.Fatalf("no expand found:\n%s", p)
	}
	if len(second.UniqueRels) != 1 {
		t.Errorf("the second expand should carry one earlier relationship variable, got %v", second.UniqueRels)
	}
}

func TestPlannerErrors(t *testing.T) {
	g, _ := datasets.Teachers()
	bad := []string{
		"MATCH (n) RETURN m",
		"MATCH (n) WITH n RETURN q",
		"MATCH (a)-[r]->(b)-[r]->(c) RETURN a",
		"RETURN *",
		"MATCH (n) RETURN n.a AS x, n.b AS x",
		"MATCH (a) RETURN a UNION MATCH (b) RETURN b",
		"MATCH (a) RETURN a AS x UNION MATCH (b) RETURN b AS x, b AS y",
		"UNWIND q AS x RETURN x",
		"MATCH (n) DELETE q",
	}
	for _, src := range bad {
		q, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := New(g).Plan(q); err == nil {
			t.Errorf("Plan(%q) should fail", src)
		}
	}
}

func TestReadOnlyFlagAndColumns(t *testing.T) {
	g, _ := datasets.Teachers()
	p := planFor(t, g, "MATCH (n) RETURN n.name AS name, id(n)")
	if !p.ReadOnly {
		t.Errorf("read query should be read-only")
	}
	if len(p.Columns) != 2 || p.Columns[0] != "name" || p.Columns[1] != "id(n)" {
		t.Errorf("columns = %v", p.Columns)
	}
	p = planFor(t, g, "CREATE (x:New {v: 1})")
	if p.ReadOnly {
		t.Errorf("create should not be read-only")
	}
	if len(p.Columns) != 0 {
		t.Errorf("update-only query has no columns, got %v", p.Columns)
	}
	p = planFor(t, g, "MATCH (n) RETURN *")
	if len(p.Columns) != 1 || p.Columns[0] != "n" {
		t.Errorf("RETURN * columns = %v", p.Columns)
	}
}

func TestValueLiteralInPlanDescription(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"L"}, map[string]value.Value{"k": value.NewInt(1)})
	p := planFor(t, g, "MATCH (n:L) WHERE n.k = 1 RETURN n")
	if !hasOperator(p, "Filter(n.k = 1)") {
		t.Errorf("WHERE should appear as a filter:\n%s", p)
	}
}
