package planner

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/value"
)

func planFor(t *testing.T, g *graph.Graph, src string) *plan.Plan {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := New(g).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return p
}

func operators(p *plan.Plan) []string {
	var out []string
	for op := p.Root; op != nil; op = op.Source() {
		out = append(out, op.Describe())
	}
	return out
}

func hasOperator(p *plan.Plan, substr string) bool {
	for _, d := range operators(p) {
		if strings.Contains(d, substr) {
			return true
		}
	}
	return false
}

func TestScanSelection(t *testing.T) {
	g, _ := datasets.Citations()
	// No label: all nodes scan.
	p := planFor(t, g, "MATCH (n) RETURN n")
	if !hasOperator(p, "AllNodesScan") {
		t.Errorf("expected AllNodesScan:\n%s", p)
	}
	// Label: label scan.
	p = planFor(t, g, "MATCH (n:Researcher) RETURN n")
	if !hasOperator(p, "NodeByLabelScan(n:Researcher)") {
		t.Errorf("expected NodeByLabelScan:\n%s", p)
	}
	// Label + property + index: index seek.
	g.CreateIndex("Researcher", "name")
	p = planFor(t, New(g).g, "MATCH (n:Researcher {name: 'Elin'}) RETURN n")
	if !hasOperator(p, "NodeIndexSeek") {
		t.Errorf("expected NodeIndexSeek:\n%s", p)
	}
	// Label + property without index: label scan plus filter.
	p = planFor(t, g, "MATCH (n:Publication {acmid: 220}) RETURN n")
	if !hasOperator(p, "NodeByLabelScan(n:Publication)") || !hasOperator(p, "Filter(n.acmid = 220") {
		t.Errorf("expected label scan + filter:\n%s", p)
	}
}

func TestStartNodeSelectionBySelectivity(t *testing.T) {
	g := graph.New()
	// 100 Common nodes, 2 Rare nodes.
	var rare *graph.Node
	for i := 0; i < 100; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	for i := 0; i < 2; i++ {
		rare = g.CreateNode([]string{"Rare"}, nil)
	}
	_ = rare
	// The planner should start from the Rare side of the pattern.
	p := planFor(t, g, "MATCH (c:Common)-[:R]->(r:Rare) RETURN c")
	ops := operators(p)
	leaf := ops[len(ops)-2] // the operator just above Start
	if !strings.Contains(leaf, "NodeByLabelScan(r:Rare)") {
		t.Errorf("expected the scan to start from the rare label, got %q in\n%s", leaf, p)
	}
	// And expand in the reverse direction of the pattern arrow.
	if !hasOperator(p, "Expand((r)<--") {
		t.Errorf("expected a reversed expand:\n%s", p)
	}
}

func TestBoundVariableBecomesExpandInto(t *testing.T) {
	g, _ := datasets.Teachers()
	p := planFor(t, g, "MATCH (a)-[:KNOWS]->(b) MATCH (a)-[:KNOWS]->(b) RETURN a, b")
	// The second MATCH has both endpoints bound: it must check rather than
	// rebind, i.e. use ExpandInto.
	if !hasOperator(p, "ExpandInto") {
		t.Errorf("expected ExpandInto for the re-matched pattern:\n%s", p)
	}
	// A cyclic pattern inside one part also needs ExpandInto.
	p = planFor(t, g, "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(a) RETURN a")
	if !hasOperator(p, "ExpandInto") {
		t.Errorf("expected ExpandInto for the cyclic pattern:\n%s", p)
	}
}

func TestOptionalAndUnionPlans(t *testing.T) {
	g, _ := datasets.Citations()
	p := planFor(t, g, "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:AUTHORS]->(p:Publication) RETURN r, p")
	if !hasOperator(p, "Optional") {
		t.Errorf("expected an Optional operator:\n%s", p)
	}
	p = planFor(t, g, "MATCH (r:Researcher) RETURN r.name AS n UNION MATCH (s:Student) RETURN s.name AS n")
	if _, ok := p.Root.(*plan.Union); !ok {
		t.Errorf("expected a Union root:\n%s", p)
	}
	if p.Columns[0] != "n" {
		t.Errorf("union columns wrong: %v", p.Columns)
	}
}

func TestAggregationPlanShape(t *testing.T) {
	g, _ := datasets.Citations()
	p := planFor(t, g, "MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) RETURN r.name AS name, count(p) AS pubs ORDER BY pubs DESC LIMIT 1")
	if !hasOperator(p, "Aggregate(name") {
		t.Errorf("expected Aggregate with grouping key:\n%s", p)
	}
	if !hasOperator(p, "Sort") || !hasOperator(p, "Limit(1)") {
		t.Errorf("expected Sort and Limit:\n%s", p)
	}
	if p.Columns[0] != "name" || p.Columns[1] != "pubs" {
		t.Errorf("columns wrong: %v", p.Columns)
	}
	// count(*) + 1 is rewritten into an aggregate column plus projection.
	p = planFor(t, g, "MATCH (n) RETURN count(*) + 1 AS c")
	if !hasOperator(p, "Aggregate(") || !hasOperator(p, "Project(") {
		t.Errorf("expected aggregate + projection:\n%s", p)
	}
}

func TestUniquenessListsInExpand(t *testing.T) {
	g, _ := datasets.Teachers()
	q, err := parser.Parse("MATCH (a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second expand and check it lists the first relationship
	// variable for the uniqueness check.
	var second *plan.Expand
	for op := p.Root; op != nil; op = op.Source() {
		if e, ok := op.(*plan.Expand); ok {
			second = e
			break // the topmost expand in the chain is the last planned
		}
	}
	if second == nil {
		t.Fatalf("no expand found:\n%s", p)
	}
	if len(second.UniqueRels) != 1 {
		t.Errorf("the second expand should carry one earlier relationship variable, got %v", second.UniqueRels)
	}
}

func TestPlannerErrors(t *testing.T) {
	g, _ := datasets.Teachers()
	bad := []string{
		"MATCH (n) RETURN m",
		"MATCH (n) WITH n RETURN q",
		"MATCH (a)-[r]->(b)-[r]->(c) RETURN a",
		"RETURN *",
		"MATCH (n) RETURN n.a AS x, n.b AS x",
		"MATCH (a) RETURN a UNION MATCH (b) RETURN b",
		"MATCH (a) RETURN a AS x UNION MATCH (b) RETURN b AS x, b AS y",
		"UNWIND q AS x RETURN x",
		"MATCH (n) DELETE q",
	}
	for _, src := range bad {
		q, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := New(g).Plan(q); err == nil {
			t.Errorf("Plan(%q) should fail", src)
		}
	}
}

func TestReadOnlyFlagAndColumns(t *testing.T) {
	g, _ := datasets.Teachers()
	p := planFor(t, g, "MATCH (n) RETURN n.name AS name, id(n)")
	if !p.ReadOnly {
		t.Errorf("read query should be read-only")
	}
	if len(p.Columns) != 2 || p.Columns[0] != "name" || p.Columns[1] != "id(n)" {
		t.Errorf("columns = %v", p.Columns)
	}
	p = planFor(t, g, "CREATE (x:New {v: 1})")
	if p.ReadOnly {
		t.Errorf("create should not be read-only")
	}
	if len(p.Columns) != 0 {
		t.Errorf("update-only query has no columns, got %v", p.Columns)
	}
	p = planFor(t, g, "MATCH (n) RETURN *")
	if len(p.Columns) != 1 || p.Columns[0] != "n" {
		t.Errorf("RETURN * columns = %v", p.Columns)
	}
}

func TestValueLiteralInPlanDescription(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"L"}, map[string]value.Value{"k": value.NewInt(1)})
	p := planFor(t, g, "MATCH (n:L) WHERE n.k = 1 RETURN n")
	if !hasOperator(p, "Filter(n.k = 1)") {
		t.Errorf("WHERE should appear as a filter:\n%s", p)
	}
}

// --- PR 5: cost-based planning ---

// rangeGraph builds a labelled, indexed dataset large enough that seeks are
// estimated cheaper than scans.
func rangeGraph() *graph.Graph {
	g := graph.New()
	for i := 0; i < 100; i++ {
		g.CreateNode([]string{"Person"}, map[string]value.Value{
			"age":  value.NewInt(int64(i)),
			"name": value.NewString(fmt.Sprintf("p%02d", i)),
		})
	}
	g.CreateIndex("Person", "age")
	g.CreateIndex("Person", "name")
	return g
}

func TestWherePredicatesBecomeIndexSeeks(t *testing.T) {
	g := rangeGraph()
	cases := []struct{ query, operator string }{
		{"MATCH (n:Person) WHERE n.age > 30 RETURN n", "NodeIndexRangeSeek(n:Person {age > 30})"},
		{"MATCH (n:Person) WHERE n.age > 30 AND n.age <= 40 RETURN n", "NodeIndexRangeSeek(n:Person {age > 30, age <= 40})"},
		{"MATCH (n:Person) WHERE 30 < n.age RETURN n", "NodeIndexRangeSeek(n:Person {age > 30})"},
		{"MATCH (n:Person) WHERE n.age >= $k RETURN n", "NodeIndexRangeSeek(n:Person {age >= $k})"},
		{"MATCH (n:Person) WHERE n.name STARTS WITH 'p1' RETURN n", "NodeIndexPrefixSeek(n:Person {name STARTS WITH 'p1'})"},
		{"MATCH (n:Person) WHERE n.age IN [1, 2, 3] RETURN n", "NodeIndexSeek(n:Person {age IN [1, 2, 3]})"},
		{"MATCH (n:Person) WHERE n.name = 'p07' RETURN n", "NodeIndexSeek(n:Person {name = 'p07'})"},
	}
	for _, c := range cases {
		p := planFor(t, g, c.query)
		if !hasOperator(p, c.operator) {
			t.Errorf("%s:\nexpected %s in\n%s", c.query, c.operator, p)
		}
		if hasOperator(p, "Filter(n.age") && c.operator != "NodeIndexSeek(n:Person {age IN [1, 2, 3]})" &&
			(c.query == cases[0].query || c.query == cases[1].query) {
			t.Errorf("%s: consumed range conjuncts must not reappear as filters:\n%s", c.query, p)
		}
	}
	// The residual part of the WHERE stays a filter.
	p := planFor(t, g, "MATCH (n:Person) WHERE n.age > 30 AND n.name <> 'x' RETURN n")
	if !hasOperator(p, "NodeIndexRangeSeek") || !hasOperator(p, "Filter(n.name <> 'x')") {
		t.Errorf("range conjunct should seek, the rest should filter:\n%s", p)
	}
}

// Satellite (PR 5): `WHERE n:Label` participates in label-scan selection
// rather than always filtering after an AllNodesScan.
func TestWhereLabelPredicateSelectsLabelScan(t *testing.T) {
	g := rangeGraph()
	p := planFor(t, g, "MATCH (n) WHERE n:Person RETURN n")
	if !hasOperator(p, "NodeByLabelScan(n:Person)") {
		t.Errorf("WHERE n:Person should drive a label scan:\n%s", p)
	}
	if hasOperator(p, "AllNodesScan") {
		t.Errorf("no AllNodesScan expected:\n%s", p)
	}
	// Combined with an indexed property predicate it becomes a seek.
	p = planFor(t, g, "MATCH (n) WHERE n:Person AND n.age = 30 RETURN n")
	if !hasOperator(p, "NodeIndexSeek(n:Person {age = 30})") {
		t.Errorf("WHERE n:Person AND n.age = 30 should seek:\n%s", p)
	}
	// A label predicate on an already-bound variable stays a filter.
	p = planFor(t, g, "MATCH (n) WITH n MATCH (m) WHERE n:Person RETURN m")
	if !hasOperator(p, "Filter(n:Person)") {
		t.Errorf("bound-variable label predicate should remain a filter:\n%s", p)
	}
}

// Predicates are pushed below later pattern parts: a conjunct mentioning
// only the first part's variables must filter before the second part's scan.
func TestPredicatePushdownBelowCartesianPart(t *testing.T) {
	g := rangeGraph()
	p := planFor(t, g, "MATCH (a:Person), (b:Person) WHERE a.age = 1 AND b.age = 2 RETURN a, b")
	// Both conjuncts become index seeks — no residual filters at all.
	if hasOperator(p, "Filter(") {
		t.Errorf("both conjuncts should be consumed by seeks:\n%s", p)
	}
	seeks := 0
	for _, d := range operators(p) {
		if strings.Contains(d, "NodeIndexSeek") {
			seeks++
		}
	}
	if seeks != 2 {
		t.Errorf("expected two index seeks, got %d:\n%s", seeks, p)
	}
}

func TestEstimatesAnnotateExplain(t *testing.T) {
	g := rangeGraph()
	p := planFor(t, g, "MATCH (n:Person) WHERE n.age > 30 RETURN n")
	if p.Est == nil {
		t.Fatalf("cost-based plans must carry estimates")
	}
	if !strings.Contains(p.String(), "rows~") || !strings.Contains(p.String(), "cost~") {
		t.Errorf("EXPLAIN should surface estimates:\n%s", p)
	}
	q, err := parser.Parse("MATCH (n:Person) WHERE n.age > 30 RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := NewWithOptions(g, Options{Legacy: true}).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Est != nil {
		t.Errorf("legacy plans carry no estimates")
	}
	if !hasOperator(lp, "NodeByLabelScan(n:Person)") || hasOperator(lp, "RangeSeek") {
		t.Errorf("legacy planner must keep the scan+filter shape:\n%s", lp)
	}
}

// The greedy part ordering starts with the cheapest pattern part and lets
// connected parts follow the parts that bind their variables.
func TestPatternPartOrderingByCost(t *testing.T) {
	g := graph.New()
	for i := 0; i < 100; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	rare := g.CreateNode([]string{"Rare"}, nil)
	common := g.NodesByLabel("Common")[0]
	if _, err := g.CreateRelationship(rare, common, "R", nil); err != nil {
		t.Fatal(err)
	}
	p := planFor(t, g, "MATCH (c:Common), (r:Rare) RETURN c, r")
	ops := operators(p)
	// The leaf (last scan before Start) must be the rare side.
	if !strings.Contains(ops[len(ops)-2], "NodeByLabelScan(r:Rare)") {
		t.Errorf("the cheapest part should be solved first:\n%s", p)
	}
}

// Review fix: a long IN list over a low-cardinality index must not be
// overcosted past the label scan — the seek can never return more than the
// index's entries.
func TestInSeekEstimateCappedAtEntries(t *testing.T) {
	g := graph.New()
	for i := 0; i < 200; i++ {
		g.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewInt(int64(i % 2))})
	}
	g.CreateIndex("P", "k")
	list := make([]string, 40)
	for i := range list {
		list[i] = fmt.Sprintf("%d", i)
	}
	p := planFor(t, g, "MATCH (n:P) WHERE n.k IN ["+strings.Join(list, ", ")+"] RETURN n")
	if !hasOperator(p, "NodeIndexSeek(n:P {k IN") {
		t.Errorf("long IN list should still seek (estimate capped at entries):\n%s", p)
	}
	for op, est := range p.Est {
		if strings.Contains(op.Describe(), "NodeIndexSeek") && est.Rows > 200 {
			t.Errorf("IN-seek estimate %f exceeds the index's %d entries", est.Rows, 200)
		}
	}
}

// Review fix: RETURN * column order must follow the source pattern, not the
// solve order the cost model happens to pick.
func TestReturnStarOrderIndependentOfSolveOrder(t *testing.T) {
	g := graph.New()
	for i := 0; i < 100; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	g.CreateNode([]string{"Rare"}, nil)
	p := planFor(t, g, "MATCH (c:Common), (r:Rare) RETURN *")
	if len(p.Columns) != 2 || p.Columns[0] != "c" || p.Columns[1] != "r" {
		t.Errorf("RETURN * columns = %v (want [c r] regardless of solve order)\n%s", p.Columns, p)
	}
	// The rare part is still solved first (leaf closest to Start).
	ops := operators(p)
	if !strings.Contains(ops[len(ops)-2], "Rare") {
		t.Errorf("solve order should still start from the rare part:\n%s", p)
	}
	// Anonymous nodes in a chain must not be miscosted as ExpandInto probes
	// (they are distinct fresh bindings); the plan stays a plain expand chain.
	p = planFor(t, g, "MATCH (a:Common)-->()-->() RETURN a")
	for _, d := range operators(p) {
		if strings.Contains(d, "ExpandInto") {
			t.Errorf("anonymous targets must not plan as ExpandInto:\n%s", p)
		}
	}
}
