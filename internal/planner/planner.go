// Package planner compiles Cypher ASTs into executable plans. Following the
// paper's description of Neo4j's runtime, planning is cost-informed: scan
// operators are chosen from graph statistics (label cardinalities, property
// indexes), the most selective end of each path pattern is chosen as the
// starting point, and the rest of the pattern is solved with Expand
// operators that exploit the store's direct adjacency.
package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/plan"
)

// Options configures a Planner.
type Options struct {
	// Legacy disables the cost-based layers added on top of the original
	// heuristic planner: WHERE-conjunct pushdown and index-aware access-path
	// selection, cost-ordered pattern parts, and estimate annotation. The
	// differential tests compare legacy plans against cost-based plans to
	// prove plan choice never changes results.
	Legacy bool
}

// Planner builds plans for one graph (whose statistics drive scan selection).
type Planner struct {
	g           *graph.Graph
	stats       graph.Statistics
	opts        Options
	anonCounter int
}

// New creates a cost-based planner for the graph.
func New(g *graph.Graph) *Planner {
	return NewWithOptions(g, Options{})
}

// NewWithOptions creates a planner with explicit options.
func NewWithOptions(g *graph.Graph, opts Options) *Planner {
	return &Planner{g: g, stats: g.Stats(), opts: opts}
}

// Plan compiles a full query (possibly a UNION of single queries).
func (p *Planner) Plan(q *ast.Query) (*plan.Plan, error) {
	root, cols, err := p.planSingleQuery(q.Parts[0])
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(q.Parts); i++ {
		rhs, rhsCols, err := p.planSingleQuery(q.Parts[i])
		if err != nil {
			return nil, err
		}
		if len(cols) != len(rhsCols) {
			return nil, fmt.Errorf("planner: all sub-queries of a UNION must return the same number of columns")
		}
		for j := range cols {
			if cols[j] != rhsCols[j] {
				return nil, fmt.Errorf("planner: all sub-queries of a UNION must return the same column names (%q vs %q)", cols[j], rhsCols[j])
			}
		}
		root = &plan.Union{
			Left:    root,
			Right:   rhs,
			All:     q.Unions[i-1] == ast.UnionAll,
			Columns: cols,
		}
	}
	pl := &plan.Plan{Root: root, Columns: cols, ReadOnly: q.IsReadOnly()}
	// Mark the plan's morsel-parallelism eligibility once at compile time;
	// the executor (and EXPLAIN) reuse the analysis on every run.
	pl.Parallel = plan.AnalyzeParallelism(pl)
	// Mark the batchable segment for vectorized execution the same way.
	pl.Vector = plan.AnalyzeVectorization(pl)
	// Assign every bindable name a fixed row slot; the executor carries rows
	// as slot-indexed slices instead of per-row maps.
	pl.Slots = plan.ComputeSlots(pl)
	if !p.opts.Legacy {
		// Annotate every operator with estimated rows/cost for EXPLAIN.
		p.annotatePlan(pl)
	}
	return pl, nil
}

// scope tracks the variables currently visible to the query, in order of
// introduction.
type scope struct {
	names []string
	set   map[string]bool
}

func newScope() *scope { return &scope{set: map[string]bool{}} }

func (s *scope) add(name string) {
	if name == "" || s.set[name] {
		return
	}
	s.set[name] = true
	s.names = append(s.names, name)
}

func (s *scope) has(name string) bool { return s.set[name] }

func (s *scope) clone() *scope {
	out := newScope()
	for _, n := range s.names {
		out.add(n)
	}
	return out
}

func (p *Planner) planSingleQuery(sq *ast.SingleQuery) (plan.Operator, []string, error) {
	var op plan.Operator = &plan.Start{}
	sc := newScope()
	var columns []string
	for _, clause := range sq.Clauses {
		var err error
		switch c := clause.(type) {
		case *ast.Match:
			op, err = p.planMatch(op, c, sc)
		case *ast.Unwind:
			if err := p.checkVariables(c.Expr, sc); err != nil {
				return nil, nil, err
			}
			op = &plan.Unwind{Input: op, Expr: c.Expr, Alias: c.Alias}
			sc.add(c.Alias)
		case *ast.With:
			op, columns, err = p.planProjection(op, c.Projection, sc, c.Where)
			if err == nil {
				ns := newScope()
				for _, col := range columns {
					ns.add(col)
				}
				*sc = *ns
			}
		case *ast.Return:
			op, columns, err = p.planProjection(op, c.Projection, sc, nil)
		case *ast.Create:
			op, err = p.planCreate(op, c, sc)
		case *ast.Merge:
			op, err = p.planMerge(op, c, sc)
		case *ast.Delete:
			for _, e := range c.Exprs {
				if err := p.checkVariables(e, sc); err != nil {
					return nil, nil, err
				}
			}
			op = &plan.DeleteOp{Input: op, Detach: c.Detach, Exprs: c.Exprs}
		case *ast.Set:
			op = &plan.SetOp{Input: op, Items: c.Items}
		case *ast.Remove:
			op = &plan.RemoveOp{Input: op, Items: c.Items}
		default:
			err = fmt.Errorf("planner: unsupported clause %T", clause)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	return op, columns, nil
}

// checkVariables verifies that every free variable of the expression is in
// scope.
func (p *Planner) checkVariables(e ast.Expr, sc *scope) error {
	if e == nil {
		return nil
	}
	for _, v := range eval.Variables(e) {
		if !sc.has(v) {
			return fmt.Errorf("planner: variable `%s` not defined", v)
		}
	}
	return nil
}

func (p *Planner) nextAnon(prefix string) string {
	p.anonCounter++
	return fmt.Sprintf("  %s#%d", prefix, p.anonCounter)
}
