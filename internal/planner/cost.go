package planner

import (
	"math"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/value"
)

// Cost model. The planner's decisions — which access path binds a node
// pattern, which end of a path pattern to solve first, in which order to
// solve the parts of a pattern tuple — all compare estimated row counts
// derived from the graph's incremental statistics (graph.Statistics). The
// same estimators annotate the finished plan for EXPLAIN. The default
// selectivity factors below follow the classic Selinger-style constants;
// they matter only relative to each other (an equality seek must look
// cheaper than a range seek, a range seek cheaper than a scan).
const (
	// selHalfRange estimates a one-sided range predicate (p > x).
	selHalfRange = 0.25
	// selClosedRange estimates a two-sided range predicate (x < p < y).
	selClosedRange = 0.1
	// selPrefix estimates a STARTS WITH predicate.
	selPrefix = 0.05
	// selFilter estimates a generic, unanalysed filter predicate.
	selFilter = 0.5
	// selEqProp estimates an equality property predicate without an index.
	selEqProp = 0.1
	// defaultInListSize is assumed for IN lists whose length is not known at
	// plan time (parameters, computed lists).
	defaultInListSize = 10
	// varLengthFudge multiplies the single-hop degree to approximate a
	// variable-length expansion's fan-out.
	varLengthFudge = 2
)

// accessKind enumerates the ways an unbound node pattern can be bound.
type accessKind int

const (
	accessAllNodes accessKind = iota
	accessLabelScan
	accessEqSeek
	accessInSeek
	accessRangeSeek
	accessPrefixSeek
)

// preference orders access kinds for estimate ties (lower wins): a seek
// whose estimate equals a scan's — common on small graphs where every
// cardinality is 1 — should still use the index, like the pre-cost-based
// planner did.
func (k accessKind) preference() int {
	switch k {
	case accessEqSeek:
		return 0
	case accessInSeek:
		return 1
	case accessRangeSeek:
		return 2
	case accessPrefixSeek:
		return 3
	case accessLabelScan:
		return 4
	default:
		return 5
	}
}

// accessPath is one candidate way to bind an unbound node pattern, with its
// estimated output cardinality and the WHERE conjuncts it would consume.
type accessPath struct {
	kind     accessKind
	label    string
	property string
	// value is the comparison operand: the equality value, the IN list or
	// the prefix, depending on kind.
	value        ast.Expr
	lo, hi       ast.Expr
	loInc, hiInc bool
	// coveredProp is the inline pattern property guaranteed by an equality
	// seek (excluded from the residual predicate); conjunct-derived seeks
	// leave it empty and mark their conjuncts used instead.
	coveredProp string
	conjs       []*conjunct
	est         float64
}

// build constructs the scan/seek operator for the path.
func (ap accessPath) build(input plan.Operator, varName string) plan.Operator {
	switch ap.kind {
	case accessAllNodes:
		return &plan.AllNodesScan{Input: input, Var: varName}
	case accessLabelScan:
		return &plan.NodeByLabelScan{Input: input, Var: varName, Label: ap.label}
	case accessEqSeek:
		return &plan.NodeIndexSeek{Input: input, Var: varName, Label: ap.label, Property: ap.property, Value: ap.value}
	case accessInSeek:
		return &plan.NodeIndexSeek{Input: input, Var: varName, Label: ap.label, Property: ap.property, Value: ap.value, In: true}
	case accessRangeSeek:
		return &plan.NodeIndexRangeSeek{Input: input, Var: varName, Label: ap.label, Property: ap.property,
			Lo: ap.lo, Hi: ap.hi, LoInc: ap.loInc, HiInc: ap.hiInc}
	default:
		return &plan.NodeIndexPrefixSeek{Input: input, Var: varName, Label: ap.label, Property: ap.property, Prefix: ap.value}
	}
}

// consume marks the WHERE conjuncts the path covers as used, so they are not
// re-applied as filters.
func (ap accessPath) consume() {
	for _, c := range ap.conjs {
		c.used = true
	}
}

// coveredLabel returns the label the access path guarantees ("" for an
// all-nodes scan), for exclusion from the residual predicate.
func (ap accessPath) coveredLabel() string {
	if ap.kind == accessAllNodes {
		return ""
	}
	return ap.label
}

// bestAccess selects the cheapest access path for an unbound node pattern,
// considering the label statistics, the available property indexes, the
// pattern's inline properties and the WHERE conjuncts that compare a property
// of this variable against an expression already evaluable (all its
// variables bound before this pattern). It does not mutate the conjunct set;
// the caller consumes the winner's conjuncts when it actually builds the
// operator.
func (p *Planner) bestAccess(np ast.NodePattern, bound *scope, cs *conjunctSet) accessPath {
	if len(np.Labels) == 0 {
		return accessPath{kind: accessAllNodes, est: float64(p.stats.NodeCount)}
	}
	// Baseline: label scan on the most selective label.
	best := accessPath{kind: accessLabelScan, label: np.Labels[0], est: float64(p.stats.LabelCardinality(np.Labels[0]))}
	for _, l := range np.Labels[1:] {
		if c := float64(p.stats.LabelCardinality(l)); c < best.est {
			best = accessPath{kind: accessLabelScan, label: l, est: c}
		}
	}
	consider := func(ap accessPath) {
		if ap.est < best.est || (ap.est == best.est && ap.kind.preference() < best.kind.preference()) {
			best = ap
		}
	}
	for _, l := range np.Labels {
		// Inline equality properties, e.g. (n:Person {name: $x}).
		if np.Properties != nil {
			for i, k := range np.Properties.Keys {
				if is, ok := p.stats.Index(l, k); ok {
					consider(accessPath{kind: accessEqSeek, label: l, property: k,
						value: np.Properties.Values[i], coveredProp: k, est: is.RowsPerKey()})
				}
			}
		}
		// WHERE conjuncts on this variable. Range bounds on the same indexed
		// property combine into one seek; every other shape stands alone.
		type rangeBounds struct {
			lo, hi       *conjunct
			loE, hiE     ast.Expr
			loInc, hiInc bool
		}
		ranges := map[string]*rangeBounds{}
		if cs != nil {
			for _, c := range cs.items {
				if c.used {
					continue
				}
				prop, op, rhs, ok := propComparison(c.expr, np.Variable, bound)
				if !ok {
					continue
				}
				is, ok := p.stats.Index(l, prop)
				if !ok {
					continue
				}
				switch op {
				case ast.OpEq:
					consider(accessPath{kind: accessEqSeek, label: l, property: prop,
						value: rhs, conjs: []*conjunct{c}, est: is.RowsPerKey()})
				case ast.OpIn:
					consider(accessPath{kind: accessInSeek, label: l, property: prop,
						value: rhs, conjs: []*conjunct{c}, est: inSeekEst(rhs, is)})
				case ast.OpStartsWith:
					consider(accessPath{kind: accessPrefixSeek, label: l, property: prop,
						value: rhs, conjs: []*conjunct{c}, est: math.Max(1, selPrefix*float64(is.Entries))})
				case ast.OpGt, ast.OpGe:
					rb := ranges[prop]
					if rb == nil {
						rb = &rangeBounds{}
						ranges[prop] = rb
					}
					if rb.lo == nil {
						rb.lo, rb.loE, rb.loInc = c, rhs, op == ast.OpGe
					}
				case ast.OpLt, ast.OpLe:
					rb := ranges[prop]
					if rb == nil {
						rb = &rangeBounds{}
						ranges[prop] = rb
					}
					if rb.hi == nil {
						rb.hi, rb.hiE, rb.hiInc = c, rhs, op == ast.OpLe
					}
				}
			}
		}
		for prop, rb := range ranges {
			is, _ := p.stats.Index(l, prop)
			sel := selHalfRange
			ap := accessPath{kind: accessRangeSeek, label: l, property: prop,
				loInc: rb.loInc, hiInc: rb.hiInc}
			if rb.lo != nil {
				ap.lo = rb.loE
				ap.conjs = append(ap.conjs, rb.lo)
			}
			if rb.hi != nil {
				ap.hi = rb.hiE
				ap.conjs = append(ap.conjs, rb.hi)
			}
			if rb.lo != nil && rb.hi != nil {
				sel = selClosedRange
			}
			ap.est = math.Max(1, sel*float64(is.Entries))
			consider(ap)
		}
	}
	return best
}

// inSeekEst estimates an IN-list seek: list length (known for literals,
// defaultInListSize otherwise) times the average bucket size, capped at the
// index's total entries — the seek can never return more nodes than are
// indexed, however long the list.
func inSeekEst(rhs ast.Expr, is graph.IndexStatistics) float64 {
	k := float64(defaultInListSize)
	if ll, ok := rhs.(*ast.ListLiteral); ok {
		k = float64(len(ll.Elems))
	}
	return math.Max(1, math.Min(k*is.RowsPerKey(), float64(is.Entries)))
}

// propComparison recognises a WHERE conjunct of the shape `v.prop OP rhs`
// (or the flipped `rhs OP v.prop` for comparisons), where every variable of
// rhs is already bound — so the seek operand can be evaluated when the scan
// runs. The returned operator is normalised to have the property access on
// the left.
func propComparison(e ast.Expr, varName string, bound *scope) (prop string, op ast.BinaryOperator, rhs ast.Expr, ok bool) {
	b, isBin := e.(*ast.BinaryOp)
	if !isBin {
		return "", 0, nil, false
	}
	side := func(e ast.Expr) (string, bool) {
		pa, ok := e.(*ast.PropertyAccess)
		if !ok {
			return "", false
		}
		v, ok := pa.Subject.(*ast.Variable)
		if !ok || v.Name != varName {
			return "", false
		}
		return pa.Key, true
	}
	evaluable := func(e ast.Expr) bool {
		for _, v := range eval.Variables(e) {
			if !bound.has(v) {
				return false
			}
		}
		return true
	}
	if p, isProp := side(b.LHS); isProp && evaluable(b.RHS) {
		switch b.Op {
		case ast.OpEq, ast.OpIn, ast.OpStartsWith, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			return p, b.Op, b.RHS, true
		}
		return "", 0, nil, false
	}
	if p, isProp := side(b.RHS); isProp && evaluable(b.LHS) {
		// Flip the comparison so the property is on the left; IN and STARTS
		// WITH are not symmetric and cannot be flipped.
		switch b.Op {
		case ast.OpEq:
			return p, ast.OpEq, b.LHS, true
		case ast.OpLt:
			return p, ast.OpGt, b.LHS, true
		case ast.OpLe:
			return p, ast.OpGe, b.LHS, true
		case ast.OpGt:
			return p, ast.OpLt, b.LHS, true
		case ast.OpGe:
			return p, ast.OpLe, b.LHS, true
		}
	}
	return "", 0, nil, false
}

// --- WHERE conjuncts ---

// conjunct is one AND-term of a MATCH clause's WHERE expression.
type conjunct struct {
	expr ast.Expr
	vars []string
	used bool
}

// conjunctSet tracks the conjuncts of one WHERE clause through pattern
// planning: access-path selection consumes some, predicate pushdown attaches
// the rest as Filter operators at the earliest point their variables are all
// bound.
type conjunctSet struct {
	items []*conjunct
}

// newConjunctSet splits the WHERE expression on top-level ANDs. Under
// ternary logic `a AND b` is true exactly when both a and b are true, so
// applying the conjuncts as separate filters (in any order, at any point
// where their variables are bound) is equivalent to one combined filter —
// PROVIDED evaluation cannot raise a runtime error. Pushdown evaluates
// predicates on a superset of the rows the single post-pattern filter would
// see (rows a later expansion eliminates, or the unit row when the pattern
// matches nothing), so an error-capable expression like `1/0 = 1` could
// abort queries that used to succeed. newConjunctSet therefore returns nil —
// falling back to the legacy whole-WHERE filter in its legacy position —
// unless every conjunct passes pushSafe.
func newConjunctSet(where ast.Expr) *conjunctSet {
	cs := &conjunctSet{}
	var split func(e ast.Expr)
	split = func(e ast.Expr) {
		if b, ok := e.(*ast.BinaryOp); ok && b.Op == ast.OpAnd {
			split(b.LHS)
			split(b.RHS)
			return
		}
		cs.items = append(cs.items, &conjunct{expr: e, vars: eval.Variables(e)})
	}
	split(where)
	for _, c := range cs.items {
		if !pushSafe(c.expr) {
			return nil
		}
	}
	return cs
}

// pushSafe conservatively recognises expressions whose evaluation cannot
// raise a runtime error, so evaluating them earlier (on more rows) than the
// legacy post-pattern filter is observationally equivalent: comparisons and
// string predicates are ternary-total, boolean connectives and label checks
// never error, and literals/parameters/variables are plain lookups.
// Arithmetic (division by zero), regex matches (bad patterns), function
// calls, subscripts and everything else unknown are excluded. Two narrow
// edges remain and are accepted: property access on a non-entity value and
// `IN $param` with a non-list parameter type-error on the pushed plan even
// when the pattern would have matched zero rows.
func pushSafe(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Literal, *ast.Parameter, *ast.Variable:
		return true
	case *ast.PropertyAccess:
		_, ok := x.Subject.(*ast.Variable)
		return ok
	case *ast.HasLabels:
		return pushSafe(x.Subject)
	case *ast.ListLiteral:
		for _, el := range x.Elems {
			if !pushSafe(el) {
				return false
			}
		}
		return true
	case *ast.UnaryOp:
		return x.Op == ast.OpNot && pushSafe(x.Operand)
	case *ast.BinaryOp:
		switch x.Op {
		case ast.OpEq, ast.OpNeq, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe,
			ast.OpAnd, ast.OpOr, ast.OpXor,
			ast.OpStartsWith, ast.OpEndsWith, ast.OpContains:
			return pushSafe(x.LHS) && pushSafe(x.RHS)
		case ast.OpIn:
			if !pushSafe(x.LHS) {
				return false
			}
			switch x.RHS.(type) {
			case *ast.Parameter, *ast.ListLiteral:
				return pushSafe(x.RHS)
			}
			return false
		}
		return false
	default:
		return false
	}
}

// attachReady wraps op in a Filter for every unused conjunct whose variables
// are all bound, in original conjunct order, marking them used.
func (cs *conjunctSet) attachReady(op plan.Operator, bound *scope) plan.Operator {
	if cs == nil {
		return op
	}
	for _, c := range cs.items {
		if c.used {
			continue
		}
		ready := true
		for _, v := range c.vars {
			if !bound.has(v) {
				ready = false
				break
			}
		}
		if ready {
			c.used = true
			op = &plan.Filter{Input: op, Predicate: c.expr}
		}
	}
	return op
}

// attachRemaining appends every still-unused conjunct as a Filter (the
// variables have been checked against the final scope by the caller).
func (cs *conjunctSet) attachRemaining(op plan.Operator) plan.Operator {
	for _, c := range cs.items {
		if !c.used {
			c.used = true
			op = &plan.Filter{Input: op, Predicate: c.expr}
		}
	}
	return op
}

// --- Pattern-part cost estimation ---

// toGraphDir maps a pattern direction (already flipped for reversed
// traversal) onto the statistics' direction.
func toGraphDir(d ast.Direction) graph.Direction {
	switch d {
	case ast.DirOutgoing:
		return graph.Outgoing
	case ast.DirIncoming:
		return graph.Incoming
	default:
		return graph.Both
	}
}

// labelsSelectivity multiplies the per-label selectivities (independence
// assumption).
func (p *Planner) labelsSelectivity(labels []string) float64 {
	sel := 1.0
	for _, l := range labels {
		sel *= p.stats.LabelSelectivity(l)
	}
	return sel
}

// partCost estimates the rows touched when solving the path pattern starting
// from node index start: the start node's access-path cardinality, then the
// fan-out of every expansion to the right and to the left — exactly the walk
// planPart performs. Expansions into an already-bound endpoint are costed as
// a probe (ExpandInto).
func (p *Planner) partCost(part ast.PatternPart, start int, bound *scope, cs *conjunctSet) float64 {
	n := math.Max(1, float64(p.stats.NodeCount))
	// seen tracks node variables bound within this walk. partCost runs on
	// the source pattern, before nameAnonymous, so anonymous nodes still
	// carry the empty name — they are always distinct fresh bindings and
	// must never be mistaken for one another (or for a bound variable).
	seen := map[string]bool{}
	np := part.Nodes[start]
	var rows float64
	if np.Variable != "" && bound.has(np.Variable) {
		rows = 1
	} else {
		rows = p.bestAccess(np, bound, cs).est
	}
	if np.Variable != "" {
		seen[np.Variable] = true
	}
	cost := rows
	step := func(i int, reversed bool) {
		rp := part.Rels[i]
		toNP := part.Nodes[i+1]
		dir := rp.Direction
		if reversed {
			toNP = part.Nodes[i]
			switch dir {
			case ast.DirOutgoing:
				dir = ast.DirIncoming
			case ast.DirIncoming:
				dir = ast.DirOutgoing
			}
		}
		deg := p.stats.TypeDegree(rp.Types, toGraphDir(dir))
		if rp.VarLength {
			deg *= varLengthFudge
		}
		if toNP.Variable != "" && (bound.has(toNP.Variable) || seen[toNP.Variable]) {
			// ExpandInto: one adjacency probe per row, few survivors.
			cost += rows
			rows = rows * deg / n
			return
		}
		if toNP.Variable != "" {
			seen[toNP.Variable] = true
		}
		rows *= deg
		rows *= p.labelsSelectivity(toNP.Labels)
		if toNP.Properties != nil {
			rows *= math.Pow(selEqProp, float64(len(toNP.Properties.Keys)))
		}
		cost += rows
	}
	for i := start; i < len(part.Rels); i++ {
		step(i, false)
	}
	for i := start - 1; i >= 0; i-- {
		step(i, true)
	}
	return cost
}

// --- Plan-wide estimate annotation (EXPLAIN) ---

// annotatePlan walks the finished operator tree and records an estimated
// row count and cumulative cost for every operator. Estimates use the same
// statistics and selectivity constants as the planning decisions, so EXPLAIN
// shows the numbers the planner actually compared.
func (p *Planner) annotatePlan(pl *plan.Plan) {
	est := make(map[plan.Operator]plan.Estimate)
	n := float64(p.stats.NodeCount)
	var walk func(op plan.Operator) (rows, cost float64)
	record := func(op plan.Operator, rows, cost float64) (float64, float64) {
		est[op] = plan.Estimate{Rows: rows, Cost: cost}
		return rows, cost
	}
	walk = func(op plan.Operator) (float64, float64) {
		if op == nil {
			return 0, 0
		}
		switch o := op.(type) {
		case *plan.Start, *plan.Argument:
			return record(op, 1, 0)
		case *plan.AllNodesScan:
			in, c := walk(o.Input)
			rows := in * n
			return record(op, rows, c+rows)
		case *plan.NodeByLabelScan:
			in, c := walk(o.Input)
			rows := in * float64(p.stats.LabelCardinality(o.Label))
			return record(op, rows, c+rows)
		case *plan.NodeIndexSeek:
			in, c := walk(o.Input)
			per := 1.0
			if is, ok := p.stats.Index(o.Label, o.Property); ok {
				if o.In {
					per = inSeekEst(o.Value, is)
				} else {
					per = is.RowsPerKey()
				}
			}
			rows := in * per
			return record(op, rows, c+rows)
		case *plan.NodeIndexRangeSeek:
			in, c := walk(o.Input)
			sel := selHalfRange
			if o.Lo != nil && o.Hi != nil {
				sel = selClosedRange
			}
			entries := 0
			if is, ok := p.stats.Index(o.Label, o.Property); ok {
				entries = is.Entries
			}
			rows := in * math.Max(1, sel*float64(entries))
			return record(op, rows, c+rows)
		case *plan.NodeIndexPrefixSeek:
			in, c := walk(o.Input)
			entries := 0
			if is, ok := p.stats.Index(o.Label, o.Property); ok {
				entries = is.Entries
			}
			rows := in * math.Max(1, selPrefix*float64(entries))
			return record(op, rows, c+rows)
		case *plan.Expand:
			in, c := walk(o.Input)
			deg := p.stats.TypeDegree(o.Types, toGraphDir(o.Direction))
			if o.VarLength {
				deg *= varLengthFudge
			}
			if o.ExpandInto {
				rows := in * deg / math.Max(1, n)
				return record(op, rows, c+in+rows)
			}
			rows := in * deg
			return record(op, rows, c+rows)
		case *plan.Filter:
			in, c := walk(o.Input)
			return record(op, in*selFilter, c+in)
		case *plan.Optional:
			in, c := walk(o.Input)
			innerRows, innerCost := walk(o.Inner)
			rows := in * math.Max(1, innerRows)
			return record(op, rows, c+in*innerCost+rows)
		case *plan.ProjectPath:
			in, c := walk(o.Input)
			return record(op, in, c+in)
		case *plan.Unwind:
			in, c := walk(o.Input)
			rows := in * defaultInListSize
			return record(op, rows, c+rows)
		case *plan.Project:
			in, c := walk(o.Input)
			return record(op, in, c+in)
		case *plan.Aggregate:
			in, c := walk(o.Input)
			rows := 1.0
			if len(o.Grouping) > 0 {
				rows = math.Max(1, in*0.1)
			}
			return record(op, rows, c+in)
		case *plan.Distinct:
			in, c := walk(o.Input)
			return record(op, math.Max(1, in*0.8), c+in)
		case *plan.Sort:
			in, c := walk(o.Input)
			return record(op, in, c+in)
		case *plan.Skip:
			in, c := walk(o.Input)
			rows := in * selFilter
			if k, ok := literalCount(o.Count); ok {
				rows = math.Max(0, in-k)
			}
			return record(op, rows, c+in)
		case *plan.Limit:
			in, c := walk(o.Input)
			rows := in * selFilter
			if k, ok := literalCount(o.Count); ok {
				rows = math.Min(in, k)
			}
			return record(op, rows, c+in)
		case *plan.SelectColumns:
			in, c := walk(o.Input)
			return record(op, in, c+in)
		case *plan.Union:
			lr, lc := walk(o.Left)
			rr, rc := walk(o.Right)
			rows := lr + rr
			if !o.All {
				rows *= 0.8
			}
			return record(op, rows, lc+rc+lr+rr)
		case *plan.CreateOp, *plan.MergeOp, *plan.DeleteOp, *plan.SetOp, *plan.RemoveOp:
			in, c := walk(op.Source())
			return record(op, in, c+in)
		default:
			in, c := walk(op.Source())
			return record(op, in, c+in)
		}
	}
	walk(pl.Root)
	pl.Est = est
}

// literalCount extracts a non-negative integer literal (SKIP/LIMIT counts).
func literalCount(e ast.Expr) (float64, bool) {
	if lit, ok := e.(*ast.Literal); ok {
		if n, ok := value.AsInt(lit.Value); ok && n >= 0 {
			return float64(n), true
		}
	}
	return 0, false
}
