package planner

import (
	"fmt"
	"testing"

	"repro/internal/datasets"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/result"
	"repro/internal/value"
)

// planChoiceCorpus exercises every plan shape the cost-based planner can
// choose differently from the legacy heuristic planner: WHERE-conjunct
// pushdown, equality/IN/range/prefix index seeks, label predicates in WHERE,
// cost-ordered cartesian parts, ExpandInto cycles, OPTIONAL MATCH with
// pushdown inside the optional side, and parameterised bounds.
var planChoiceCorpus = []struct {
	query  string
	params map[string]value.Value
}{
	{query: "MATCH (n:Person) WHERE n.age > 80 RETURN n.name AS name"},
	{query: "MATCH (n:Person) WHERE n.age > 80 AND n.age <= 90 RETURN n.name AS name"},
	{query: "MATCH (n:Person) WHERE 80 < n.age RETURN count(n) AS c"},
	{query: "MATCH (n:Person) WHERE n.age >= $k RETURN count(n) AS c", params: map[string]value.Value{"k": value.NewInt(95)}},
	{query: "MATCH (n:Person) WHERE n.name STARTS WITH 'p1' RETURN n.name AS name"},
	{query: "MATCH (n:Person) WHERE n.age IN [1, 2.0, 300] RETURN n.name AS name"},
	{query: "MATCH (n:Person) WHERE n.name = 'p07' RETURN n.age AS age"},
	{query: "MATCH (n) WHERE n:Person AND n.age = 5 RETURN n.name AS name"},
	{query: "MATCH (n) WHERE n:Person RETURN count(n) AS c"},
	{query: "MATCH (n:Person) WHERE n.age > 95 AND n.name <> 'p97' RETURN n.name AS name"},
	{query: "MATCH (a:Person), (b:Person) WHERE a.age = 1 AND b.age < 3 RETURN a.name AS a, b.name AS b"},
	{query: "MATCH (p:Person)-[:WORKS_AT]->(c:Company) WHERE p.age > 90 RETURN c.cid AS cid, count(p) AS n"},
	{query: "MATCH (p:Person) OPTIONAL MATCH (p)-[:WORKS_AT]->(c:Company) WHERE c.cid > 5 RETURN p.name AS name, c.cid AS cid"},
	{query: "MATCH (a:Person {age: 1})-[:WORKS_AT]->(c)<-[:WORKS_AT]-(b:Person {age: 11}) RETURN count(c) AS c"},
	{query: "MATCH (n:Person) WHERE n.age > 42 RETURN n.name AS name ORDER BY name LIMIT 5"},
	{query: "MATCH (n:Person) WHERE n.age = null RETURN count(n) AS c"},
	{query: "MATCH (n:Person) WHERE n.age > $missing RETURN count(n) AS c", params: map[string]value.Value{"missing": value.Null()}},
}

// diffGraph is an indexed dataset where seeks and scans genuinely diverge in
// cost: 100 Person nodes (age 0..99, name p00..p99), 10 Company nodes,
// everyone employed.
func diffGraph() *graph.Graph {
	g := graph.New()
	companies := make([]*graph.Node, 10)
	for i := range companies {
		companies[i] = g.CreateNode([]string{"Company"}, map[string]value.Value{"cid": value.NewInt(int64(i))})
	}
	for i := 0; i < 100; i++ {
		p := g.CreateNode([]string{"Person"}, map[string]value.Value{
			"age":  value.NewInt(int64(i)),
			"name": value.NewString(fmt.Sprintf("p%02d", i)),
		})
		if _, err := g.CreateRelationship(p, companies[i%10], "WORKS_AT", nil); err != nil {
			panic(err)
		}
	}
	g.CreateIndex("Person", "age")
	g.CreateIndex("Person", "name")
	return g
}

// canonical renders a table in a deterministic order-independent form.
func canonical(t *result.Table) string {
	t.SortByAllColumns()
	return t.String()
}

// TestDifferentialCostVsLegacyPlans proves plan choice is invisible to
// results: every corpus query, compiled by the cost-based planner and by the
// legacy heuristic planner and executed on the same engine, returns
// byte-identical canonicalised result tables.
func TestDifferentialCostVsLegacyPlans(t *testing.T) {
	graphs := []struct {
		name  string
		build func() *graph.Graph
		// corpusOnly restricts which queries run (the generic datasets lack
		// the Person/Company schema of the main corpus).
		queries []struct {
			query  string
			params map[string]value.Value
		}
	}{
		{name: "indexed", build: diffGraph, queries: planChoiceCorpus},
		{name: "teachers", build: func() *graph.Graph { g, _ := datasets.Teachers(); return g }, queries: planChoiceCorpus},
		{name: "social", build: func() *graph.Graph {
			g := datasets.SocialNetwork(datasets.SocialConfig{People: 20, FriendsEach: 3, Seed: 7})
			g.CreateIndex("Person", "name")
			return g
		}, queries: planChoiceCorpus},
	}
	for _, gc := range graphs {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.build()
			for _, c := range gc.queries {
				q, err := parser.Parse(c.query)
				if err != nil {
					t.Fatalf("parse %q: %v", c.query, err)
				}
				costPlan, err := New(g).Plan(q)
				if err != nil {
					t.Fatalf("cost plan %q: %v", c.query, err)
				}
				legacyPlan, err := NewWithOptions(g, Options{Legacy: true}).Plan(q)
				if err != nil {
					t.Fatalf("legacy plan %q: %v", c.query, err)
				}
				costTbl, err := exec.New(g, c.params, exec.Options{}).Execute(costPlan)
				if err != nil {
					t.Fatalf("cost exec %q: %v", c.query, err)
				}
				legacyTbl, err := exec.New(g, c.params, exec.Options{}).Execute(legacyPlan)
				if err != nil {
					t.Fatalf("legacy exec %q: %v", c.query, err)
				}
				got, want := canonical(costTbl), canonical(legacyTbl)
				if got != want {
					t.Errorf("plans disagree on %q\ncost plan:\n%s\nlegacy plan:\n%s\ncost result:\n%s\nlegacy result:\n%s",
						c.query, costPlan, legacyPlan, got, want)
				}
			}
		})
	}
}
