package ast

import (
	"strconv"
	"strings"
)

// Direction of a relationship pattern (Figure 3: ->, <-, undirected).
type Direction int

// Relationship pattern directions.
const (
	// DirOutgoing is -[]->.
	DirOutgoing Direction = iota
	// DirIncoming is <-[]-.
	DirIncoming
	// DirBoth is -[]- (undirected).
	DirBoth
)

// NodePattern is the node pattern chi = (a, L, P) of Section 4.2: an optional
// variable name, a set of labels, and a partial map from property keys to
// expressions.
type NodePattern struct {
	Variable   string // "" when anonymous
	Labels     []string
	Properties *MapLiteral // nil when absent
}

// RelationshipPattern is the relationship pattern rho = (d, a, T, P, I) of
// Section 4.2. VarLength corresponds to I != nil; MinHops/MaxHops of -1 stand
// for the respective bound being absent (nil in the paper's notation).
type RelationshipPattern struct {
	Direction  Direction
	Variable   string // "" when anonymous
	Types      []string
	Properties *MapLiteral
	VarLength  bool
	MinHops    int // -1 when unspecified
	MaxHops    int // -1 when unspecified
}

// PatternPart is a path pattern chi1 rho1 chi2 ... rho_{n-1} chi_n,
// optionally named (pi/a in the paper): len(Nodes) == len(Rels)+1.
type PatternPart struct {
	Variable string // "" when the path is not named
	Nodes    []NodePattern
	Rels     []RelationshipPattern
}

// Pattern is a tuple of path patterns as used by MATCH and CREATE.
type Pattern struct {
	Parts []PatternPart
}

// String renders the node pattern in ASCII-art syntax.
func (n NodePattern) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(n.Variable)
	for _, l := range n.Labels {
		sb.WriteString(":" + l)
	}
	if n.Properties != nil && len(n.Properties.Keys) > 0 {
		if sb.Len() > 1 {
			sb.WriteString(" ")
		}
		sb.WriteString(n.Properties.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// String renders the relationship pattern in ASCII-art syntax.
func (r RelationshipPattern) String() string {
	var inner strings.Builder
	inner.WriteString(r.Variable)
	for i, t := range r.Types {
		if i == 0 {
			inner.WriteString(":" + t)
		} else {
			inner.WriteString("|" + t)
		}
	}
	if r.VarLength {
		inner.WriteString("*")
		if r.MinHops >= 0 {
			inner.WriteString(strconv.Itoa(r.MinHops))
		}
		if r.MinHops != r.MaxHops || r.MinHops < 0 {
			if r.MinHops >= 0 || r.MaxHops >= 0 {
				inner.WriteString("..")
			}
			if r.MaxHops >= 0 {
				inner.WriteString(strconv.Itoa(r.MaxHops))
			}
		}
	}
	if r.Properties != nil && len(r.Properties.Keys) > 0 {
		if inner.Len() > 0 {
			inner.WriteString(" ")
		}
		inner.WriteString(r.Properties.String())
	}
	body := ""
	if inner.Len() > 0 {
		body = "[" + inner.String() + "]"
	}
	switch r.Direction {
	case DirOutgoing:
		return "-" + body + "->"
	case DirIncoming:
		return "<-" + body + "-"
	default:
		return "-" + body + "-"
	}
}

// String renders the path pattern in ASCII-art syntax.
func (p PatternPart) String() string {
	var sb strings.Builder
	if p.Variable != "" {
		sb.WriteString(p.Variable + " = ")
	}
	for i, n := range p.Nodes {
		if i > 0 {
			sb.WriteString(p.Rels[i-1].String())
		}
		sb.WriteString(n.String())
	}
	return sb.String()
}

// String renders the pattern tuple.
func (p Pattern) String() string {
	parts := make([]string, len(p.Parts))
	for i, pp := range p.Parts {
		parts[i] = pp.String()
	}
	return strings.Join(parts, ", ")
}

// Variables returns every variable named anywhere in the pattern part
// (path name, node variables, relationship variables), in order of first
// appearance.
func (p PatternPart) Variables() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	add(p.Variable)
	for i, n := range p.Nodes {
		add(n.Variable)
		if i < len(p.Rels) {
			add(p.Rels[i].Variable)
		}
	}
	return out
}

// Variables returns every variable named anywhere in the pattern.
func (p Pattern) Variables() []string {
	var out []string
	seen := map[string]bool{}
	for _, part := range p.Parts {
		for _, v := range part.Variables() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
