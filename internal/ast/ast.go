// Package ast defines the abstract syntax trees produced by the parser for
// the core Cypher language of the paper: expressions and patterns (Figures 3
// and 5), reading and projecting clauses, and the update clauses of Section 2.
package ast

import (
	"strings"

	"repro/internal/value"
)

// --- Expressions ---

// Expr is a Cypher expression node.
type Expr interface {
	exprNode()
	// String renders the expression in (approximately) Cypher syntax; used by
	// EXPLAIN output, implicit column names and error messages.
	String() string
}

// Literal is a constant value: an integer, float, string, boolean or null.
type Literal struct {
	Value value.Value
}

// Variable references a name bound earlier in the query.
type Variable struct {
	Name string
}

// Parameter references a query parameter ($name).
type Parameter struct {
	Name string
}

// PropertyAccess is expr.key.
type PropertyAccess struct {
	Subject Expr
	Key     string
}

// ListLiteral is [e1, e2, ...].
type ListLiteral struct {
	Elems []Expr
}

// MapLiteral is {k1: e1, k2: e2, ...}. Keys preserves the source order.
type MapLiteral struct {
	Keys   []string
	Values []Expr
}

// Index is subject[index].
type Index struct {
	Subject Expr
	Idx     Expr
}

// Slice is subject[from..to]; From and To may each be nil.
type Slice struct {
	Subject Expr
	From    Expr
	To      Expr
}

// BinaryOperator enumerates binary operators.
type BinaryOperator int

// Binary operators.
const (
	OpAdd BinaryOperator = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpXor
	OpIn
	OpStartsWith
	OpEndsWith
	OpContains
	OpRegexMatch
)

var binaryOpNames = map[BinaryOperator]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpPow: "^",
	OpEq: "=", OpNeq: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpIn: "IN",
	OpStartsWith: "STARTS WITH", OpEndsWith: "ENDS WITH",
	OpContains: "CONTAINS", OpRegexMatch: "=~",
}

// String returns the Cypher spelling of the operator.
func (op BinaryOperator) String() string { return binaryOpNames[op] }

// BinaryOp applies a binary operator to two operands.
type BinaryOp struct {
	Op  BinaryOperator
	LHS Expr
	RHS Expr
}

// UnaryOperator enumerates unary operators.
type UnaryOperator int

// Unary operators.
const (
	OpNot UnaryOperator = iota
	OpNeg
	OpPos
)

// UnaryOp applies a unary operator to an operand.
type UnaryOp struct {
	Op      UnaryOperator
	Operand Expr
}

// IsNull is `expr IS NULL` or `expr IS NOT NULL`.
type IsNull struct {
	Operand Expr
	Negated bool
}

// HasLabels is the label predicate `expr:Label1:Label2` usable in WHERE
// (e.g. `pInfo:SSN` in the paper's fraud-detection query).
type HasLabels struct {
	Subject Expr
	Labels  []string
}

// FunctionCall invokes a built-in function, possibly an aggregating one
// (count, collect, sum, ...). Distinct is the DISTINCT modifier inside the
// call, e.g. count(DISTINCT p2).
type FunctionCall struct {
	Name     string
	Distinct bool
	Args     []Expr
}

// CountStar is the expression count(*).
type CountStar struct{}

// CaseAlternative is one WHEN ... THEN ... arm of a CASE expression.
type CaseAlternative struct {
	When Expr
	Then Expr
}

// Case is a CASE expression, either simple (Test != nil) or searched.
type Case struct {
	Test         Expr
	Alternatives []CaseAlternative
	Else         Expr
}

// ListComprehension is [variable IN list WHERE predicate | projection].
// Where and Projection may be nil.
type ListComprehension struct {
	Variable   string
	List       Expr
	Where      Expr
	Projection Expr
}

// Reduce is the list fold reduce(acc = init, variable IN list | expr): acc
// starts at init and is rebound to expr for every element the variable runs
// over; the final acc is the result.
type Reduce struct {
	Accumulator string
	Init        Expr
	Variable    string
	List        Expr
	Expr        Expr
}

// PatternPredicate is a pattern used as a boolean expression in WHERE, for
// example `WHERE (a)-[:KNOWS]->(b)`, and the explicit form `EXISTS(pattern)`.
type PatternPredicate struct {
	Pattern PatternPart
}

// exprNode tags.
func (*Literal) exprNode()           {}
func (*Variable) exprNode()          {}
func (*Parameter) exprNode()         {}
func (*PropertyAccess) exprNode()    {}
func (*ListLiteral) exprNode()       {}
func (*MapLiteral) exprNode()        {}
func (*Index) exprNode()             {}
func (*Slice) exprNode()             {}
func (*BinaryOp) exprNode()          {}
func (*UnaryOp) exprNode()           {}
func (*IsNull) exprNode()            {}
func (*HasLabels) exprNode()         {}
func (*FunctionCall) exprNode()      {}
func (*CountStar) exprNode()         {}
func (*Case) exprNode()              {}
func (*ListComprehension) exprNode() {}
func (*Reduce) exprNode()            {}
func (*PatternPredicate) exprNode()  {}

// String renderings (used for implicit column names, EXPLAIN and errors).

func (e *Literal) String() string   { return e.Value.String() }
func (e *Variable) String() string  { return e.Name }
func (e *Parameter) String() string { return "$" + e.Name }
func (e *PropertyAccess) String() string {
	return e.Subject.String() + "." + e.Key
}
func (e *ListLiteral) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
func (e *MapLiteral) String() string {
	parts := make([]string, len(e.Keys))
	for i, k := range e.Keys {
		parts[i] = k + ": " + e.Values[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *Index) String() string { return e.Subject.String() + "[" + e.Idx.String() + "]" }
func (e *Slice) String() string {
	from, to := "", ""
	if e.From != nil {
		from = e.From.String()
	}
	if e.To != nil {
		to = e.To.String()
	}
	return e.Subject.String() + "[" + from + ".." + to + "]"
}
func (e *BinaryOp) String() string {
	return e.LHS.String() + " " + e.Op.String() + " " + e.RHS.String()
}
func (e *UnaryOp) String() string {
	switch e.Op {
	case OpNot:
		return "NOT " + e.Operand.String()
	case OpNeg:
		return "-" + e.Operand.String()
	default:
		return "+" + e.Operand.String()
	}
}
func (e *IsNull) String() string {
	if e.Negated {
		return e.Operand.String() + " IS NOT NULL"
	}
	return e.Operand.String() + " IS NULL"
}
func (e *HasLabels) String() string {
	return e.Subject.String() + ":" + strings.Join(e.Labels, ":")
}
func (e *FunctionCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}
func (e *CountStar) String() string { return "count(*)" }
func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Test != nil {
		sb.WriteString(" " + e.Test.String())
	}
	for _, alt := range e.Alternatives {
		sb.WriteString(" WHEN " + alt.When.String() + " THEN " + alt.Then.String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}
func (e *ListComprehension) String() string {
	var sb strings.Builder
	sb.WriteString("[" + e.Variable + " IN " + e.List.String())
	if e.Where != nil {
		sb.WriteString(" WHERE " + e.Where.String())
	}
	if e.Projection != nil {
		sb.WriteString(" | " + e.Projection.String())
	}
	sb.WriteString("]")
	return sb.String()
}
func (e *Reduce) String() string {
	return "reduce(" + e.Accumulator + " = " + e.Init.String() + ", " +
		e.Variable + " IN " + e.List.String() + " | " + e.Expr.String() + ")"
}
func (e *PatternPredicate) String() string { return e.Pattern.String() }
