package ast

import "strings"

// --- Clauses and queries ---

// Clause is a Cypher clause. Per Section 4 of the paper, every clause denotes
// a function from driving tables to tables.
type Clause interface {
	clauseNode()
	// String renders the clause approximately in Cypher syntax.
	String() string
}

// ReturnItem is one projection expression with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string // "" when no AS alias was given
}

// Name returns the output column name: the alias if present, otherwise the
// textual form of the expression (the paper's injective function alpha from
// expressions to names).
func (ri ReturnItem) Name() string {
	if ri.Alias != "" {
		return ri.Alias
	}
	return ri.Expr.String()
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr       Expr
	Descending bool
}

// Match is [OPTIONAL] MATCH pattern_tuple [WHERE expr].
type Match struct {
	Optional bool
	Pattern  Pattern
	Where    Expr // nil when absent
}

// Unwind is UNWIND expr AS a.
type Unwind struct {
	Expr  Expr
	Alias string
}

// Projection captures the shared shape of WITH and RETURN: a possibly
// DISTINCT projection list (or *), ORDER BY, SKIP and LIMIT.
type Projection struct {
	Distinct bool
	Star     bool
	Items    []ReturnItem
	OrderBy  []SortItem
	Skip     Expr // nil when absent
	Limit    Expr // nil when absent
}

// With is WITH ret [WHERE expr].
type With struct {
	Projection
	Where Expr // nil when absent
}

// Return is the final RETURN clause of a single query.
type Return struct {
	Projection
}

// Create is CREATE pattern.
type Create struct {
	Pattern Pattern
}

// Merge is MERGE pattern_part [ON CREATE SET ...] [ON MATCH SET ...].
type Merge struct {
	Part     PatternPart
	OnCreate []SetItem
	OnMatch  []SetItem
}

// Delete is [DETACH] DELETE expr, ....
type Delete struct {
	Detach bool
	Exprs  []Expr
}

// SetItemKind discriminates SET targets.
type SetItemKind int

// Kinds of SET items.
const (
	// SetProperty is SET expr.key = expr.
	SetProperty SetItemKind = iota
	// SetAllProperties is SET variable = expr (replace all properties).
	SetAllProperties
	// SetMergeProperties is SET variable += expr (merge properties).
	SetMergeProperties
	// SetLabels is SET variable:Label1:Label2.
	SetLabels
)

// SetItem is one assignment in a SET clause (or ON CREATE / ON MATCH).
type SetItem struct {
	Kind     SetItemKind
	Property *PropertyAccess // for SetProperty
	Variable string          // for SetAllProperties, SetMergeProperties, SetLabels
	Labels   []string        // for SetLabels
	Value    Expr            // for the three property forms
}

// Set is SET item, ....
type Set struct {
	Items []SetItem
}

// RemoveItemKind discriminates REMOVE targets.
type RemoveItemKind int

// Kinds of REMOVE items.
const (
	// RemoveProperty is REMOVE expr.key.
	RemoveProperty RemoveItemKind = iota
	// RemoveLabels is REMOVE variable:Label1:Label2.
	RemoveLabels
)

// RemoveItem is one item in a REMOVE clause.
type RemoveItem struct {
	Kind     RemoveItemKind
	Property *PropertyAccess
	Variable string
	Labels   []string
}

// Remove is REMOVE item, ....
type Remove struct {
	Items []RemoveItem
}

// clauseNode tags.
func (*Match) clauseNode()  {}
func (*Unwind) clauseNode() {}
func (*With) clauseNode()   {}
func (*Return) clauseNode() {}
func (*Create) clauseNode() {}
func (*Merge) clauseNode()  {}
func (*Delete) clauseNode() {}
func (*Set) clauseNode()    {}
func (*Remove) clauseNode() {}

// SingleQuery is a sequence of clauses (query° in Figure 5).
type SingleQuery struct {
	Clauses []Clause
}

// UnionKind discriminates UNION vs UNION ALL.
type UnionKind int

// Union kinds.
const (
	// UnionDistinct is UNION (duplicate-eliminating).
	UnionDistinct UnionKind = iota
	// UnionAll is UNION ALL (bag union).
	UnionAll
)

// Query is one or more single queries combined with UNION / UNION ALL.
// len(Unions) == len(Parts)-1; Unions[i] combines Parts[i+1] with the result
// so far.
type Query struct {
	Parts  []*SingleQuery
	Unions []UnionKind
}

// --- String renderings ---

func (p Projection) stringWithHead(head string) string {
	var sb strings.Builder
	sb.WriteString(head)
	if p.Distinct {
		sb.WriteString(" DISTINCT")
	}
	if p.Star {
		sb.WriteString(" *")
		if len(p.Items) > 0 {
			sb.WriteString(",")
		}
	}
	for i, it := range p.Items {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" " + it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if len(p.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, s := range p.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(s.Expr.String())
			if s.Descending {
				sb.WriteString(" DESC")
			}
		}
	}
	if p.Skip != nil {
		sb.WriteString(" SKIP " + p.Skip.String())
	}
	if p.Limit != nil {
		sb.WriteString(" LIMIT " + p.Limit.String())
	}
	return sb.String()
}

// String renders the MATCH clause.
func (c *Match) String() string {
	s := "MATCH " + c.Pattern.String()
	if c.Optional {
		s = "OPTIONAL " + s
	}
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

// String renders the UNWIND clause.
func (c *Unwind) String() string { return "UNWIND " + c.Expr.String() + " AS " + c.Alias }

// String renders the WITH clause.
func (c *With) String() string {
	s := c.stringWithHead("WITH")
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

// String renders the RETURN clause.
func (c *Return) String() string { return c.stringWithHead("RETURN") }

// String renders the CREATE clause.
func (c *Create) String() string { return "CREATE " + c.Pattern.String() }

// String renders the MERGE clause.
func (c *Merge) String() string { return "MERGE " + c.Part.String() }

// String renders the DELETE clause.
func (c *Delete) String() string {
	parts := make([]string, len(c.Exprs))
	for i, e := range c.Exprs {
		parts[i] = e.String()
	}
	head := "DELETE "
	if c.Detach {
		head = "DETACH DELETE "
	}
	return head + strings.Join(parts, ", ")
}

// String renders the SET clause.
func (c *Set) String() string {
	parts := make([]string, len(c.Items))
	for i, it := range c.Items {
		switch it.Kind {
		case SetProperty:
			parts[i] = it.Property.String() + " = " + it.Value.String()
		case SetAllProperties:
			parts[i] = it.Variable + " = " + it.Value.String()
		case SetMergeProperties:
			parts[i] = it.Variable + " += " + it.Value.String()
		case SetLabels:
			parts[i] = it.Variable + ":" + strings.Join(it.Labels, ":")
		}
	}
	return "SET " + strings.Join(parts, ", ")
}

// String renders the REMOVE clause.
func (c *Remove) String() string {
	parts := make([]string, len(c.Items))
	for i, it := range c.Items {
		switch it.Kind {
		case RemoveProperty:
			parts[i] = it.Property.String()
		case RemoveLabels:
			parts[i] = it.Variable + ":" + strings.Join(it.Labels, ":")
		}
	}
	return "REMOVE " + strings.Join(parts, ", ")
}

// String renders the single query.
func (q *SingleQuery) String() string {
	parts := make([]string, len(q.Clauses))
	for i, c := range q.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// String renders the full query including unions.
func (q *Query) String() string {
	var sb strings.Builder
	for i, p := range q.Parts {
		if i > 0 {
			if q.Unions[i-1] == UnionAll {
				sb.WriteString(" UNION ALL ")
			} else {
				sb.WriteString(" UNION ")
			}
		}
		sb.WriteString(p.String())
	}
	return sb.String()
}

// IsReadOnly reports whether the query contains no updating clauses.
func (q *Query) IsReadOnly() bool {
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			switch c.(type) {
			case *Create, *Merge, *Delete, *Set, *Remove:
				return false
			}
		}
	}
	return true
}
