package ast

import (
	"testing"

	"repro/internal/value"
)

func TestExpressionStringForms(t *testing.T) {
	e := &BinaryOp{
		Op:  OpAdd,
		LHS: &Literal{Value: value.NewInt(1)},
		RHS: &BinaryOp{Op: OpMul, LHS: &Variable{Name: "x"}, RHS: &Parameter{Name: "p"}},
	}
	if e.String() != "1 + x * $p" {
		t.Errorf("String = %q", e.String())
	}
	cases := []struct {
		e    Expr
		want string
	}{
		{&PropertyAccess{Subject: &Variable{Name: "n"}, Key: "name"}, "n.name"},
		{&ListLiteral{Elems: []Expr{&Literal{Value: value.NewInt(1)}, &Literal{Value: value.NewInt(2)}}}, "[1, 2]"},
		{&MapLiteral{Keys: []string{"a"}, Values: []Expr{&Literal{Value: value.NewInt(1)}}}, "{a: 1}"},
		{&Index{Subject: &Variable{Name: "l"}, Idx: &Literal{Value: value.NewInt(0)}}, "l[0]"},
		{&Slice{Subject: &Variable{Name: "l"}, From: &Literal{Value: value.NewInt(1)}}, "l[1..]"},
		{&Slice{Subject: &Variable{Name: "l"}, To: &Literal{Value: value.NewInt(2)}}, "l[..2]"},
		{&UnaryOp{Op: OpNot, Operand: &Variable{Name: "b"}}, "NOT b"},
		{&UnaryOp{Op: OpNeg, Operand: &Variable{Name: "b"}}, "-b"},
		{&UnaryOp{Op: OpPos, Operand: &Variable{Name: "b"}}, "+b"},
		{&IsNull{Operand: &Variable{Name: "x"}}, "x IS NULL"},
		{&IsNull{Operand: &Variable{Name: "x"}, Negated: true}, "x IS NOT NULL"},
		{&HasLabels{Subject: &Variable{Name: "n"}, Labels: []string{"A", "B"}}, "n:A:B"},
		{&FunctionCall{Name: "count", Distinct: true, Args: []Expr{&Variable{Name: "x"}}}, "count(DISTINCT x)"},
		{&CountStar{}, "count(*)"},
		{&Case{Alternatives: []CaseAlternative{{When: &Variable{Name: "a"}, Then: &Literal{Value: value.NewInt(1)}}}, Else: &Literal{Value: value.NewInt(2)}}, "CASE WHEN a THEN 1 ELSE 2 END"},
		{&Case{Test: &Variable{Name: "x"}, Alternatives: []CaseAlternative{{When: &Literal{Value: value.NewInt(1)}, Then: &Literal{Value: value.NewInt(2)}}}}, "CASE x WHEN 1 THEN 2 END"},
		{&ListComprehension{Variable: "x", List: &Variable{Name: "l"}, Where: &Variable{Name: "p"}, Projection: &Variable{Name: "x"}}, "[x IN l WHERE p | x]"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	for op, want := range map[BinaryOperator]string{OpStartsWith: "STARTS WITH", OpXor: "XOR", OpRegexMatch: "=~", OpNeq: "<>"} {
		if op.String() != want {
			t.Errorf("operator %d renders as %q, want %q", op, op.String(), want)
		}
	}
}

func TestPatternStringForms(t *testing.T) {
	node := NodePattern{Variable: "x", Labels: []string{"Person", "Male"}, Properties: &MapLiteral{Keys: []string{"age"}, Values: []Expr{&Literal{Value: value.NewInt(44)}}}}
	if node.String() != "(x:Person:Male {age: 44})" {
		t.Errorf("node pattern String = %q", node.String())
	}
	anon := NodePattern{}
	if anon.String() != "()" {
		t.Errorf("anonymous node String = %q", anon.String())
	}
	cases := []struct {
		rel  RelationshipPattern
		want string
	}{
		{RelationshipPattern{Direction: DirOutgoing, Variable: "r", Types: []string{"KNOWS"}, MinHops: -1, MaxHops: -1}, "-[r:KNOWS]->"},
		{RelationshipPattern{Direction: DirIncoming, Types: []string{"A", "B"}, MinHops: -1, MaxHops: -1}, "<-[:A|B]-"},
		{RelationshipPattern{Direction: DirBoth, MinHops: -1, MaxHops: -1}, "--"},
		{RelationshipPattern{Direction: DirOutgoing, Types: []string{"T"}, VarLength: true, MinHops: -1, MaxHops: -1}, "-[:T*]->"},
		{RelationshipPattern{Direction: DirOutgoing, Types: []string{"T"}, VarLength: true, MinHops: 2, MaxHops: 2}, "-[:T*2]->"},
		{RelationshipPattern{Direction: DirOutgoing, Types: []string{"T"}, VarLength: true, MinHops: 1, MaxHops: 3}, "-[:T*1..3]->"},
		{RelationshipPattern{Direction: DirOutgoing, Types: []string{"T"}, VarLength: true, MinHops: -1, MaxHops: 3}, "-[:T*..3]->"},
		{RelationshipPattern{Direction: DirOutgoing, Types: []string{"T"}, VarLength: true, MinHops: 2, MaxHops: -1}, "-[:T*2..]->"},
	}
	for _, c := range cases {
		if got := c.rel.String(); got != c.want {
			t.Errorf("relationship String = %q, want %q", got, c.want)
		}
	}
	part := PatternPart{
		Variable: "p",
		Nodes:    []NodePattern{{Variable: "a"}, {Variable: "b"}},
		Rels:     []RelationshipPattern{{Direction: DirOutgoing, Types: []string{"KNOWS"}, MinHops: -1, MaxHops: -1}},
	}
	if part.String() != "p = (a)-[:KNOWS]->(b)" {
		t.Errorf("pattern part String = %q", part.String())
	}
	pat := Pattern{Parts: []PatternPart{part, {Nodes: []NodePattern{{Variable: "c"}}}}}
	if pat.String() != "p = (a)-[:KNOWS]->(b), (c)" {
		t.Errorf("pattern String = %q", pat.String())
	}
}

func TestPatternVariables(t *testing.T) {
	part := PatternPart{
		Variable: "p",
		Nodes:    []NodePattern{{Variable: "a"}, {}, {Variable: "a"}},
		Rels: []RelationshipPattern{
			{Variable: "r1", MinHops: -1, MaxHops: -1},
			{MinHops: -1, MaxHops: -1},
		},
	}
	vars := part.Variables()
	want := []string{"p", "a", "r1"}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Variables = %v, want %v", vars, want)
		}
	}
	pat := Pattern{Parts: []PatternPart{part, {Nodes: []NodePattern{{Variable: "b"}, {Variable: "a"}}, Rels: []RelationshipPattern{{Variable: "r2", MinHops: -1, MaxHops: -1}}}}}
	all := pat.Variables()
	if len(all) != 5 { // p, a, r1, b, r2
		t.Errorf("Pattern.Variables = %v", all)
	}
}

func TestClauseStringFormsAndReadOnly(t *testing.T) {
	match := &Match{
		Optional: true,
		Pattern:  Pattern{Parts: []PatternPart{{Nodes: []NodePattern{{Variable: "a"}}}}},
		Where:    &HasLabels{Subject: &Variable{Name: "a"}, Labels: []string{"X"}},
	}
	if match.String() != "OPTIONAL MATCH (a) WHERE a:X" {
		t.Errorf("match String = %q", match.String())
	}
	ret := &Return{Projection: Projection{
		Distinct: true,
		Items:    []ReturnItem{{Expr: &Variable{Name: "a"}, Alias: "x"}},
		OrderBy:  []SortItem{{Expr: &Variable{Name: "x"}, Descending: true}},
		Skip:     &Literal{Value: value.NewInt(1)},
		Limit:    &Literal{Value: value.NewInt(2)},
	}}
	if ret.String() != "RETURN DISTINCT a AS x ORDER BY x DESC SKIP 1 LIMIT 2" {
		t.Errorf("return String = %q", ret.String())
	}
	with := &With{Projection: Projection{Star: true}, Where: &Variable{Name: "ok"}}
	if with.String() != "WITH * WHERE ok" {
		t.Errorf("with String = %q", with.String())
	}
	unwind := &Unwind{Expr: &Variable{Name: "xs"}, Alias: "x"}
	if unwind.String() != "UNWIND xs AS x" {
		t.Errorf("unwind String = %q", unwind.String())
	}
	del := &Delete{Detach: true, Exprs: []Expr{&Variable{Name: "n"}}}
	if del.String() != "DETACH DELETE n" {
		t.Errorf("delete String = %q", del.String())
	}
	set := &Set{Items: []SetItem{
		{Kind: SetProperty, Property: &PropertyAccess{Subject: &Variable{Name: "n"}, Key: "a"}, Value: &Literal{Value: value.NewInt(1)}},
		{Kind: SetLabels, Variable: "n", Labels: []string{"L"}},
		{Kind: SetMergeProperties, Variable: "n", Value: &MapLiteral{}},
		{Kind: SetAllProperties, Variable: "n", Value: &MapLiteral{}},
	}}
	if set.String() != "SET n.a = 1, n:L, n += {}, n = {}" {
		t.Errorf("set String = %q", set.String())
	}
	rem := &Remove{Items: []RemoveItem{
		{Kind: RemoveProperty, Property: &PropertyAccess{Subject: &Variable{Name: "n"}, Key: "a"}},
		{Kind: RemoveLabels, Variable: "n", Labels: []string{"L"}},
	}}
	if rem.String() != "REMOVE n.a, n:L" {
		t.Errorf("remove String = %q", rem.String())
	}

	readQuery := &Query{Parts: []*SingleQuery{{Clauses: []Clause{match, ret}}}}
	if !readQuery.IsReadOnly() {
		t.Errorf("read query should be read-only")
	}
	writeQuery := &Query{Parts: []*SingleQuery{{Clauses: []Clause{match, set}}}}
	if writeQuery.IsReadOnly() {
		t.Errorf("write query should not be read-only")
	}
	union := &Query{
		Parts:  []*SingleQuery{{Clauses: []Clause{ret}}, {Clauses: []Clause{ret}}},
		Unions: []UnionKind{UnionAll},
	}
	if union.String() != "RETURN DISTINCT a AS x ORDER BY x DESC SKIP 1 LIMIT 2 UNION ALL RETURN DISTINCT a AS x ORDER BY x DESC SKIP 1 LIMIT 2" {
		t.Errorf("union String = %q", union.String())
	}
}

func TestReturnItemName(t *testing.T) {
	aliased := ReturnItem{Expr: &Variable{Name: "x"}, Alias: "y"}
	if aliased.Name() != "y" {
		t.Errorf("aliased name = %q", aliased.Name())
	}
	implicit := ReturnItem{Expr: &PropertyAccess{Subject: &Variable{Name: "r"}, Key: "name"}}
	if implicit.Name() != "r.name" {
		t.Errorf("implicit name = %q", implicit.Name())
	}
}
