// Package result defines the tables that Cypher queries consume and produce.
// Following Section 4.1 of the paper, a table is a bag (multiset) of records,
// where a record is a partial function from names to values.
//
// The runtime representation compiles that partial function away: when a
// record is created from a SlotTable (see slots.go) its bindings live in a
// flat slice indexed by the slots the planner assigned, and only names the
// planner never saw (runtime binders such as list-comprehension variables)
// fall back to a small overflow map. A record without a slot table behaves
// exactly like the paper's name→value map; the reference semantics and the
// test harnesses use that form.
package result

import (
	"sort"
	"strings"

	"repro/internal/value"
)

// Record is a named tuple: a partial function from field names to values
// (u = (a1: v1, ..., an: vn) in the paper). The zero value is the empty
// record. Records have reference semantics like the map they replaced:
// copying the struct aliases the same bindings, Clone makes them independent.
type Record struct {
	tab   *SlotTable
	slots []value.Value // indexed by slot; nil means the name is unbound
	extra map[string]value.Value
}

// NewRecord returns an empty record (the record () of the paper) with no slot
// table; every binding goes to the overflow map.
func NewRecord() Record { return Record{} }

// NewSlotted returns an empty record whose bindings for the table's names are
// stored in fixed slots. This is the executor's row representation: creating
// or cloning it costs a single slice allocation.
func NewSlotted(tab *SlotTable) Record {
	return Record{tab: tab, slots: make([]value.Value, tab.Len())}
}

// FromMap builds a record from a name→value map (test and harness helper).
func FromMap(m map[string]value.Value) Record {
	r := Record{}
	for k, v := range m {
		r.Set(k, v)
	}
	return r
}

// Clone returns a copy of the record that can be extended independently.
func (r Record) Clone() Record {
	out := Record{tab: r.tab}
	if r.slots != nil {
		out.slots = make([]value.Value, len(r.slots))
		copy(out.slots, r.slots)
	}
	if len(r.extra) > 0 {
		out.extra = make(map[string]value.Value, len(r.extra)+1)
		for k, v := range r.extra {
			out.extra[k] = v
		}
	}
	return out
}

// Extended returns a copy of the record with one extra binding (the record
// (u, a: v) of the paper).
func (r Record) Extended(name string, v value.Value) Record {
	out := r.Clone()
	out.Set(name, v)
	return out
}

// Set binds the name to the value. Names with a slot in the record's table go
// to their slot; everything else goes to the overflow map. Like the map
// representation it replaces, Set through one alias of a record is visible
// through the others as long as the slot array is shared — callers that need
// an independent record must Clone first.
func (r *Record) Set(name string, v value.Value) {
	if i, ok := r.tab.Slot(name); ok {
		if r.slots == nil {
			r.slots = make([]value.Value, r.tab.Len())
		}
		r.slots[i] = v
		return
	}
	if r.extra == nil {
		r.extra = make(map[string]value.Value, 4)
	}
	r.extra[name] = v
}

// Unset removes the binding for the name, if any.
func (r *Record) Unset(name string) {
	if i, ok := r.tab.Slot(name); ok {
		if r.slots != nil {
			r.slots[i] = nil
		}
		return
	}
	delete(r.extra, name)
}

// Zero unbinds every name, reusing the slot array. The executor uses it to
// recycle a scratch row across loop iterations without reallocating.
func (r *Record) Zero() {
	for i := range r.slots {
		r.slots[i] = nil
	}
	if len(r.extra) > 0 {
		r.extra = nil
	}
}

// CopyFrom replaces the record's bindings with an independent copy of src's,
// reusing the slot array. Both records must come from the same slot table
// (the executor's scratch rows always do). Like Zero, this lets a scratch
// row be recycled across loop iterations without reallocating.
func (r *Record) CopyFrom(src Record) {
	if r.slots == nil && r.tab.Len() > 0 {
		r.slots = make([]value.Value, r.tab.Len())
	}
	if src.slots == nil {
		for i := range r.slots {
			r.slots[i] = nil
		}
	} else {
		copy(r.slots, src.slots)
	}
	r.extra = nil
	if len(src.extra) > 0 {
		r.extra = make(map[string]value.Value, len(src.extra))
		for k, v := range src.extra {
			r.extra[k] = v
		}
	}
}

// Fields returns the record's field names, sorted (dom(u)).
func (r Record) Fields() []string {
	out := make([]string, 0, len(r.extra)+4)
	if r.tab != nil {
		for i, name := range r.tab.Names() {
			if i < len(r.slots) && r.slots[i] != nil {
				out = append(out, name)
			}
		}
	}
	for k := range r.extra {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the value bound to the name, or null if the name is unbound.
func (r Record) Get(name string) value.Value {
	if i, ok := r.tab.Slot(name); ok {
		if i < len(r.slots) && r.slots[i] != nil {
			return r.slots[i]
		}
		// A slotted name can still live in the overflow map when the record
		// itself has no slot array (e.g. a harness record matched against a
		// slotted table); fall through.
	}
	if v, ok := r.extra[name]; ok {
		return v
	}
	return value.Null()
}

// MemEstimate returns a shallow estimate in bytes of the record's footprint:
// the struct, its slot array and its overflow entries, but not the values the
// slots point to (graph entities are shared with the store, not owned by the
// record). The executor's memory accountant charges this for every row a
// materializing operator retains — it is a consistent lower bound used to
// enforce per-query budgets, not a precise heap measurement.
func (r Record) MemEstimate() int64 {
	const (
		recordOverhead = 48 // struct header + slice header + map pointer
		slotCost       = 16 // one value.Value interface word pair
		extraCost      = 48 // map entry: key header + value + bucket share
	)
	n := int64(recordOverhead) + int64(len(r.slots))*slotCost
	if len(r.extra) > 0 {
		n += int64(len(r.extra)) * extraCost
	}
	return n
}

// Has reports whether the name is bound in the record (even to null).
func (r Record) Has(name string) bool {
	if i, ok := r.tab.Slot(name); ok && i < len(r.slots) && r.slots[i] != nil {
		return true
	}
	_, ok := r.extra[name]
	return ok
}

// Table is a bag of records together with an ordered list of column names.
type Table struct {
	Columns []string
	Records []Record
}

// NewTable creates an empty table with the given columns.
func NewTable(columns ...string) *Table {
	return &Table{Columns: columns}
}

// Unit returns the table containing the single empty record, T() in the
// paper: the starting point of query evaluation.
func Unit() *Table {
	return &Table{Records: []Record{NewRecord()}}
}

// Add appends a record to the table.
func (t *Table) Add(r Record) { t.Records = append(t.Records, r) }

// DetachEntities replaces every graph entity in the table with an immutable
// snapshot (see value.Detach). The engine calls this before a query's lock
// is released, so results stay safe to read while later queries mutate the
// graph.
func (t *Table) DetachEntities() {
	for i := range t.Records {
		r := &t.Records[i]
		for j, v := range r.slots {
			if v != nil {
				r.slots[j] = value.Detach(v)
			}
		}
		for k, v := range r.extra {
			r.extra[k] = value.Detach(v)
		}
	}
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Row returns the values of record i in column order.
func (t *Table) Row(i int) []value.Value {
	out := make([]value.Value, len(t.Columns))
	for j, c := range t.Columns {
		out[j] = t.Records[i].Get(c)
	}
	return out
}

// Rows returns all rows in column order.
func (t *Table) Rows() [][]value.Value {
	out := make([][]value.Value, t.Len())
	for i := range t.Records {
		out[i] = t.Row(i)
	}
	return out
}

// SortByAllColumns orders the records by their values in column order; useful
// for deterministic test comparison of bag results.
func (t *Table) SortByAllColumns() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		for _, c := range t.Columns {
			cmp := value.Compare(t.Records[i].Get(c), t.Records[j].Get(c))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// String renders the table in the ASCII layout used for the paper's figures:
//
//	| r.name | studentsSupervised |
//	| 'Nils' | 0                  |
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, t.Len())
	for i := range t.Records {
		row := t.Row(i)
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		sb.WriteString("|")
		for j, s := range vals {
			sb.WriteString(" ")
			sb.WriteString(s)
			sb.WriteString(strings.Repeat(" ", widths[j]-len(s)))
			sb.WriteString(" |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// EqualAsBags reports whether two tables contain the same bag of rows over
// the same columns (column order matters; row order does not).
func EqualAsBags(a, b *Table) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	if a.Len() != b.Len() {
		return false
	}
	counts := make(map[string]int, a.Len())
	for i := range a.Records {
		counts[rowKey(a, i)]++
	}
	for i := range b.Records {
		counts[rowKey(b, i)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func rowKey(t *Table, i int) string {
	vals := t.Row(i)
	return value.GroupKeyOf(vals...)
}
