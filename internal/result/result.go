// Package result defines the tables that Cypher queries consume and produce.
// Following Section 4.1 of the paper, a table is a bag (multiset) of records,
// where a record is a partial function from names to values.
package result

import (
	"sort"
	"strings"

	"repro/internal/value"
)

// Record is a named tuple: a partial map from field names to values
// (u = (a1: v1, ..., an: vn) in the paper).
type Record map[string]value.Value

// NewRecord returns an empty record (the record () of the paper).
func NewRecord() Record { return Record{} }

// Clone returns a copy of the record that can be extended independently.
func (r Record) Clone() Record {
	out := make(Record, len(r)+4)
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Extended returns a copy of the record with one extra binding (the record
// (u, a: v) of the paper).
func (r Record) Extended(name string, v value.Value) Record {
	out := r.Clone()
	out[name] = v
	return out
}

// Fields returns the record's field names, sorted (dom(u)).
func (r Record) Fields() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the value bound to the name, or null if the name is unbound.
func (r Record) Get(name string) value.Value {
	if v, ok := r[name]; ok {
		return v
	}
	return value.Null()
}

// Has reports whether the name is bound in the record (even to null).
func (r Record) Has(name string) bool {
	_, ok := r[name]
	return ok
}

// Table is a bag of records together with an ordered list of column names.
type Table struct {
	Columns []string
	Records []Record
}

// NewTable creates an empty table with the given columns.
func NewTable(columns ...string) *Table {
	return &Table{Columns: columns}
}

// Unit returns the table containing the single empty record, T() in the
// paper: the starting point of query evaluation.
func Unit() *Table {
	return &Table{Records: []Record{NewRecord()}}
}

// Add appends a record to the table.
func (t *Table) Add(r Record) { t.Records = append(t.Records, r) }

// DetachEntities replaces every graph entity in the table with an immutable
// snapshot (see value.Detach). The engine calls this before a query's lock
// is released, so results stay safe to read while later queries mutate the
// graph.
func (t *Table) DetachEntities() {
	for _, r := range t.Records {
		for k, v := range r {
			r[k] = value.Detach(v)
		}
	}
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Row returns the values of record i in column order.
func (t *Table) Row(i int) []value.Value {
	out := make([]value.Value, len(t.Columns))
	for j, c := range t.Columns {
		out[j] = t.Records[i].Get(c)
	}
	return out
}

// Rows returns all rows in column order.
func (t *Table) Rows() [][]value.Value {
	out := make([][]value.Value, t.Len())
	for i := range t.Records {
		out[i] = t.Row(i)
	}
	return out
}

// SortByAllColumns orders the records by their values in column order; useful
// for deterministic test comparison of bag results.
func (t *Table) SortByAllColumns() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		for _, c := range t.Columns {
			cmp := value.Compare(t.Records[i].Get(c), t.Records[j].Get(c))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// String renders the table in the ASCII layout used for the paper's figures:
//
//	| r.name | studentsSupervised |
//	| 'Nils' | 0                  |
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, t.Len())
	for i := range t.Records {
		row := t.Row(i)
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		sb.WriteString("|")
		for j, s := range vals {
			sb.WriteString(" ")
			sb.WriteString(s)
			sb.WriteString(strings.Repeat(" ", widths[j]-len(s)))
			sb.WriteString(" |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// EqualAsBags reports whether two tables contain the same bag of rows over
// the same columns (column order matters; row order does not).
func EqualAsBags(a, b *Table) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	if a.Len() != b.Len() {
		return false
	}
	counts := make(map[string]int, a.Len())
	for i := range a.Records {
		counts[rowKey(a, i)]++
	}
	for i := range b.Records {
		counts[rowKey(b, i)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func rowKey(t *Table, i int) string {
	vals := t.Row(i)
	return value.GroupKeyOf(vals...)
}
