package result

// Batch is the columnar unit of the vectorized executor: a fixed-capacity
// block of rows stored as one []value.Value column per slot of the plan's
// SlotTable, plus a selection vector naming the rows that are still live.
// Filters mark the selection vector in place instead of copying survivors;
// compaction happens only at materializing boundaries (Expand output, the
// row↔batch adapter, morsel buffers). A nil entry in a column means the slot
// is unbound for that row, mirroring Record's nil-slot convention.
//
// The borrowed-row discipline of the row runtime generalizes: batches flowing
// through a kernel chain are borrowed — a kernel may read them only until its
// emit returns, and any kernel that retains rows must copy them out. Pooled
// batches (see internal/exec) are recycled across queries, so Reset/Wipe
// clear stale values before reuse.

import "repro/internal/value"

// Batch holds up to Capacity rows of Len(tab) columns.
type Batch struct {
	tab      *SlotTable
	cols     [][]value.Value // one per slot, each sized to capacity
	capacity int
	n        int     // rows physically present (selection indexes into [0, n))
	hi       int     // high-water mark of n since the last Wipe
	sel      []int32 // live row indexes, in row order
}

// NewBatch returns an empty batch with the given row capacity over the
// table's slots.
func NewBatch(tab *SlotTable, capacity int) *Batch {
	b := &Batch{tab: tab, capacity: capacity}
	b.cols = make([][]value.Value, tab.Len())
	for i := range b.cols {
		b.cols[i] = make([]value.Value, capacity)
	}
	b.sel = make([]int32, 0, capacity)
	return b
}

// Capacity returns the row capacity.
func (b *Batch) Capacity() int { return b.capacity }

// Rows returns the number of live (selected) rows.
func (b *Batch) Rows() int { return len(b.sel) }

// Full reports whether another appended row would exceed capacity.
func (b *Batch) Full() bool { return b.n >= b.capacity }

// Selection returns the live row indexes in row order. Borrowed: valid until
// the next mutation of the batch.
func (b *Batch) Selection() []int32 { return b.sel }

// Col returns the column for a slot. Borrowed, indexed by physical row.
func (b *Batch) Col(slot int) []value.Value { return b.cols[slot] }

// Tab returns the slot table the batch's columns are laid out over.
func (b *Batch) Tab() *SlotTable { return b.tab }

// Reset prepares the batch to hold n freshly produced rows: every column's
// first n entries are cleared to unbound and the selection vector becomes the
// identity over [0, n). Scans call this before filling their output column.
func (b *Batch) Reset(n int) {
	for i := range b.cols {
		col := b.cols[i][:n]
		for j := range col {
			col[j] = nil
		}
	}
	b.n = n
	if n > b.hi {
		b.hi = n
	}
	b.sel = b.sel[:0]
	for i := 0; i < n; i++ {
		b.sel = append(b.sel, int32(i))
	}
}

// Clear empties the batch without touching column contents beyond row count;
// AppendFrom will overwrite every slot of the rows it writes.
func (b *Batch) Clear() {
	b.n = 0
	b.sel = b.sel[:0]
}

// AppendFrom copies row src.sel-independent physical row `row` of src into
// the next physical row of b (all slots), selects it, and returns its
// physical index so the caller can bind additional slots. The batch must not
// be Full.
func (b *Batch) AppendFrom(src *Batch, row int32) int32 {
	dst := int32(b.n)
	for i := range b.cols {
		b.cols[i][dst] = src.cols[i][row]
	}
	b.n++
	if b.n > b.hi {
		b.hi = b.n
	}
	b.sel = append(b.sel, dst)
	return dst
}

// FilterSel keeps only the selected rows for which keep returns true,
// compacting the selection vector in place. Rows are visited in selection
// order; the first error aborts and is returned (partial compaction state is
// then unspecified — callers treat the batch as dead).
func (b *Batch) FilterSel(keep func(row int32) (bool, error)) error {
	out := b.sel[:0]
	for _, row := range b.sel {
		ok, err := keep(row)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, row)
		}
	}
	b.sel = out
	return nil
}

// CompactSel keeps only the selected rows for which keep returns true, where
// keep also receives the ordinal position within the current selection
// (kernels use it to index precomputed dense scratch columns).
func (b *Batch) CompactSel(keep func(ord int, row int32) bool) {
	out := b.sel[:0]
	for ord, row := range b.sel {
		if keep(ord, row) {
			out = append(out, row)
		}
	}
	b.sel = out
}

// TruncateSel keeps only the first n selected rows (LIMIT).
func (b *Batch) TruncateSel(n int) {
	if n < len(b.sel) {
		b.sel = b.sel[:n]
	}
}

// LoadRecord copies physical row `row` into the record, which must be a
// slotted record over the same table. The record's overflow map is dropped:
// batched pipelines bind only slotted names.
func (b *Batch) LoadRecord(r *Record, row int32) {
	if r.slots == nil && b.tab.Len() > 0 {
		r.slots = make([]value.Value, b.tab.Len())
	}
	for i := range b.cols {
		r.slots[i] = b.cols[i][row]
	}
	r.extra = nil
}

// Retab re-shapes a pooled batch for a (possibly different) slot table with
// the same capacity, preserving column backing arrays where possible so
// cross-query reuse stays allocation-free for plans of similar width.
func (b *Batch) Retab(tab *SlotTable) {
	want := tab.Len()
	if want <= cap(b.cols) {
		have := len(b.cols)
		b.cols = b.cols[:want]
		for i := have; i < want; i++ {
			if b.cols[i] == nil {
				b.cols[i] = make([]value.Value, b.capacity)
			}
		}
	} else {
		cols := make([][]value.Value, want)
		copy(cols, b.cols)
		for i := len(b.cols); i < want; i++ {
			cols[i] = make([]value.Value, b.capacity)
		}
		b.cols = cols
	}
	b.tab = tab
	b.Clear()
}

// Wipe clears every written column entry so a pooled batch does not pin
// graph entities from a finished query. Only rows up to the high-water mark
// need clearing; rows above it were never written since the last Wipe.
func (b *Batch) Wipe() {
	b.cols = b.cols[:cap(b.cols)]
	for i := range b.cols {
		col := b.cols[i]
		if b.hi < len(col) {
			col = col[:b.hi]
		}
		for j := range col {
			col[j] = nil
		}
	}
	b.hi = 0
	b.Clear()
}
