package result

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestRecordBasics(t *testing.T) {
	r := NewRecord()
	if len(r.Fields()) != 0 {
		t.Errorf("empty record should have no fields")
	}
	if !value.IsNull(r.Get("x")) {
		t.Errorf("missing fields read as null")
	}
	if r.Has("x") {
		t.Errorf("missing field should not be Has()")
	}
	r2 := r.Extended("b", value.NewInt(2)).Extended("a", value.NewInt(1))
	if len(r.Fields()) != 0 {
		t.Errorf("Extended must not mutate the original")
	}
	fields := r2.Fields()
	if len(fields) != 2 || fields[0] != "a" || fields[1] != "b" {
		t.Errorf("Fields should be sorted: %v", fields)
	}
	clone := r2.Clone()
	clone["c"] = value.NewInt(3)
	if r2.Has("c") {
		t.Errorf("Clone must be independent")
	}
	if !r2.Has("a") || r2.Get("a") != value.NewInt(1) {
		t.Errorf("Get/Has wrong")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Add(Record{"a": value.NewInt(1), "b": value.NewString("x")})
	tbl.Add(Record{"a": value.NewInt(2)})
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	row := tbl.Row(1)
	if row[0] != value.NewInt(2) || !value.IsNull(row[1]) {
		t.Errorf("Row fills missing columns with null: %v", row)
	}
	rows := tbl.Rows()
	if len(rows) != 2 || rows[0][1] != value.NewString("x") {
		t.Errorf("Rows wrong: %v", rows)
	}
	if u := Unit(); u.Len() != 1 || len(u.Records[0]) != 0 {
		t.Errorf("Unit should contain a single empty record")
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable("name", "n")
	tbl.Add(Record{"name": value.NewString("Nils"), "n": value.NewInt(0)})
	tbl.Add(Record{"name": value.NewString("Elin"), "n": value.NewInt(2)})
	s := tbl.String()
	if !strings.Contains(s, "| name") || !strings.Contains(s, "| 'Nils'") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Errorf("expected header + 2 rows, got %d lines", len(lines))
	}
	// Columns are padded to equal width.
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("rows should be padded to the same width:\n%s", s)
	}
}

func TestSortByAllColumns(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Add(Record{"a": value.NewInt(2), "b": value.NewString("x")})
	tbl.Add(Record{"a": value.NewInt(1), "b": value.NewString("z")})
	tbl.Add(Record{"a": value.NewInt(1), "b": value.NewString("a")})
	tbl.SortByAllColumns()
	if tbl.Row(0)[0] != value.NewInt(1) || tbl.Row(0)[1] != value.NewString("a") {
		t.Errorf("sort wrong: %v", tbl.Rows())
	}
	if tbl.Row(2)[0] != value.NewInt(2) {
		t.Errorf("sort wrong: %v", tbl.Rows())
	}
}

func TestEqualAsBags(t *testing.T) {
	build := func(rows ...[]int64) *Table {
		tbl := NewTable("a", "b")
		for _, r := range rows {
			tbl.Add(Record{"a": value.NewInt(r[0]), "b": value.NewInt(r[1])})
		}
		return tbl
	}
	a := build([]int64{1, 2}, []int64{3, 4}, []int64{1, 2})
	b := build([]int64{3, 4}, []int64{1, 2}, []int64{1, 2})
	if !EqualAsBags(a, b) {
		t.Errorf("order must not matter")
	}
	c := build([]int64{1, 2}, []int64{3, 4})
	if EqualAsBags(a, c) {
		t.Errorf("multiplicities must matter")
	}
	d := build([]int64{1, 2}, []int64{3, 4}, []int64{5, 6})
	if EqualAsBags(a, d) {
		t.Errorf("different rows must not be equal")
	}
	diffCols := NewTable("a", "c")
	if EqualAsBags(a, diffCols) {
		t.Errorf("different columns must not be equal")
	}
	fewerCols := NewTable("a")
	if EqualAsBags(a, fewerCols) {
		t.Errorf("different column counts must not be equal")
	}
}
