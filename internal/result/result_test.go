package result

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// rec builds a map-backed record (the paper's representation) for tests.
func rec(kv ...any) Record {
	r := NewRecord()
	for i := 0; i < len(kv); i += 2 {
		r.Set(kv[i].(string), kv[i+1].(value.Value))
	}
	return r
}

func TestRecordBasics(t *testing.T) {
	r := NewRecord()
	if len(r.Fields()) != 0 {
		t.Errorf("empty record should have no fields")
	}
	if !value.IsNull(r.Get("x")) {
		t.Errorf("missing fields read as null")
	}
	if r.Has("x") {
		t.Errorf("missing field should not be Has()")
	}
	r2 := r.Extended("b", value.NewInt(2)).Extended("a", value.NewInt(1))
	if len(r.Fields()) != 0 {
		t.Errorf("Extended must not mutate the original")
	}
	fields := r2.Fields()
	if len(fields) != 2 || fields[0] != "a" || fields[1] != "b" {
		t.Errorf("Fields should be sorted: %v", fields)
	}
	clone := r2.Clone()
	clone.Set("c", value.NewInt(3))
	if r2.Has("c") {
		t.Errorf("Clone must be independent")
	}
	if !r2.Has("a") || r2.Get("a") != value.NewInt(1) {
		t.Errorf("Get/Has wrong")
	}
}

func TestSlotTable(t *testing.T) {
	tab := NewSlotTable()
	if got := tab.Add("a"); got != 0 {
		t.Fatalf("first slot = %d", got)
	}
	if got := tab.Add("b"); got != 1 {
		t.Fatalf("second slot = %d", got)
	}
	if got := tab.Add("a"); got != 0 {
		t.Fatalf("Add must be idempotent, got %d", got)
	}
	if got := tab.Add(""); got != -1 {
		t.Fatalf("empty names must be ignored, got %d", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if i, ok := tab.Slot("b"); !ok || i != 1 {
		t.Fatalf("Slot(b) = %d, %v", i, ok)
	}
	if _, ok := tab.Slot("missing"); ok {
		t.Fatalf("Slot must miss unknown names")
	}
	var nilTab *SlotTable
	if _, ok := nilTab.Slot("a"); ok || nilTab.Len() != 0 {
		t.Fatalf("nil table must behave as empty")
	}
}

func TestSlottedRecord(t *testing.T) {
	tab := NewSlotTable()
	tab.Add("n")
	tab.Add("m")
	r := NewSlotted(tab)
	if r.Has("n") || !value.IsNull(r.Get("n")) {
		t.Fatalf("fresh slotted record must be unbound")
	}
	r.Set("n", value.NewInt(7))
	if !r.Has("n") || r.Get("n") != value.NewInt(7) {
		t.Fatalf("slot binding lost")
	}
	// Binding to null is still a binding (OPTIONAL MATCH semantics).
	r.Set("m", value.Null())
	if !r.Has("m") || !value.IsNull(r.Get("m")) {
		t.Fatalf("null binding must be observable")
	}
	// Overflow: names outside the table land in the extra map.
	r.Set("binder", value.NewString("x"))
	if !r.Has("binder") || r.Get("binder") != value.NewString("x") {
		t.Fatalf("overflow binding lost")
	}
	fields := r.Fields()
	if len(fields) != 3 || fields[0] != "binder" || fields[1] != "m" || fields[2] != "n" {
		t.Fatalf("Fields = %v", fields)
	}
	// Clone independence covers both representations.
	c := r.Clone()
	c.Set("n", value.NewInt(8))
	c.Set("binder", value.NewString("y"))
	if r.Get("n") != value.NewInt(7) || r.Get("binder") != value.NewString("x") {
		t.Fatalf("Clone must not alias the original")
	}
	// Unset and Zero.
	c.Unset("m")
	if c.Has("m") {
		t.Fatalf("Unset must unbind")
	}
	c.Zero()
	if c.Has("n") || c.Has("binder") || len(c.Fields()) != 0 {
		t.Fatalf("Zero must unbind everything: %v", c.Fields())
	}
}

func TestSlottedRecordAliasing(t *testing.T) {
	// Plain struct assignment aliases the slot storage, like the map
	// representation it replaced.
	tab := NewSlotTable()
	tab.Add("x")
	a := NewSlotted(tab)
	b := a
	b.Set("x", value.NewInt(1))
	if a.Get("x") != value.NewInt(1) {
		t.Fatalf("assignment must alias slot storage")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Add(rec("a", value.NewInt(1), "b", value.NewString("x")))
	tbl.Add(rec("a", value.NewInt(2)))
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	row := tbl.Row(1)
	if row[0] != value.NewInt(2) || !value.IsNull(row[1]) {
		t.Errorf("Row fills missing columns with null: %v", row)
	}
	rows := tbl.Rows()
	if len(rows) != 2 || rows[0][1] != value.NewString("x") {
		t.Errorf("Rows wrong: %v", rows)
	}
	if u := Unit(); u.Len() != 1 || len(u.Records[0].Fields()) != 0 {
		t.Errorf("Unit should contain a single empty record")
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable("name", "n")
	tbl.Add(rec("name", value.NewString("Nils"), "n", value.NewInt(0)))
	tbl.Add(rec("name", value.NewString("Elin"), "n", value.NewInt(2)))
	s := tbl.String()
	if !strings.Contains(s, "| name") || !strings.Contains(s, "| 'Nils'") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Errorf("expected header + 2 rows, got %d lines", len(lines))
	}
	// Columns are padded to equal width.
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("rows should be padded to the same width:\n%s", s)
	}
}

func TestSortByAllColumns(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Add(rec("a", value.NewInt(2), "b", value.NewString("x")))
	tbl.Add(rec("a", value.NewInt(1), "b", value.NewString("z")))
	tbl.Add(rec("a", value.NewInt(1), "b", value.NewString("a")))
	tbl.SortByAllColumns()
	if tbl.Row(0)[0] != value.NewInt(1) || tbl.Row(0)[1] != value.NewString("a") {
		t.Errorf("sort wrong: %v", tbl.Rows())
	}
	if tbl.Row(2)[0] != value.NewInt(2) {
		t.Errorf("sort wrong: %v", tbl.Rows())
	}
}

func TestEqualAsBags(t *testing.T) {
	build := func(rows ...[]int64) *Table {
		tbl := NewTable("a", "b")
		for _, r := range rows {
			tbl.Add(rec("a", value.NewInt(r[0]), "b", value.NewInt(r[1])))
		}
		return tbl
	}
	a := build([]int64{1, 2}, []int64{3, 4}, []int64{1, 2})
	b := build([]int64{3, 4}, []int64{1, 2}, []int64{1, 2})
	if !EqualAsBags(a, b) {
		t.Errorf("order must not matter")
	}
	c := build([]int64{1, 2}, []int64{3, 4})
	if EqualAsBags(a, c) {
		t.Errorf("multiplicities must matter")
	}
	d := build([]int64{1, 2}, []int64{3, 4}, []int64{5, 6})
	if EqualAsBags(a, d) {
		t.Errorf("different rows must not be equal")
	}
	// Mixed representations compare by value: a slotted row equals a
	// map-backed row with the same bindings.
	tab := NewSlotTable()
	tab.Add("a")
	tab.Add("b")
	slotted := NewTable("a", "b")
	for _, r := range [][]int64{{1, 2}, {3, 4}, {1, 2}} {
		row := NewSlotted(tab)
		row.Set("a", value.NewInt(r[0]))
		row.Set("b", value.NewInt(r[1]))
		slotted.Add(row)
	}
	if !EqualAsBags(a, slotted) {
		t.Errorf("slotted and map-backed tables with equal rows must be equal")
	}
}

func TestFromMap(t *testing.T) {
	r := FromMap(map[string]value.Value{"a": value.NewInt(1)})
	if !r.Has("a") || r.Get("a") != value.NewInt(1) {
		t.Fatalf("FromMap lost the binding")
	}
}
