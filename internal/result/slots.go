package result

// SlotTable is a compile-time mapping from variable/column names to fixed
// integer slots. The planner computes one table per plan (every name any
// operator of the plan can bind gets a slot); at runtime a record is then a
// flat []value.Value indexed by slot instead of a hash map, which turns the
// per-row Clone/Extend operations of the executor from map allocations and
// rehashes into a single slice copy.
//
// A SlotTable is frozen once planning finishes: plans (and therefore their
// slot tables) are shared by concurrent queries through the plan cache, and
// immutability is what makes that sharing race-free. Names that show up only
// at runtime (list-comprehension binders, pattern-predicate scratch) fall
// back to a record's overflow map and need no slot.
type SlotTable struct {
	names []string
	index map[string]int
}

// NewSlotTable returns an empty slot table.
func NewSlotTable() *SlotTable {
	return &SlotTable{names: make([]string, 0, 8), index: make(map[string]int, 8)}
}

// Add assigns a slot to the name (idempotently) and returns it. Empty names
// (anonymous pattern elements that were never named) are ignored and get -1.
func (t *SlotTable) Add(name string) int {
	if name == "" {
		return -1
	}
	if i, ok := t.index[name]; ok {
		return i
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.index[name] = i
	return i
}

// Slot returns the slot of the name, if it has one. Safe on a nil table.
func (t *SlotTable) Slot(name string) (int, bool) {
	if t == nil {
		return 0, false
	}
	i, ok := t.index[name]
	return i, ok
}

// Len returns the number of slots.
func (t *SlotTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.names)
}

// Names returns the slot names in slot order. The returned slice is shared;
// callers must not modify it.
func (t *SlotTable) Names() []string {
	if t == nil {
		return nil
	}
	return t.names
}
