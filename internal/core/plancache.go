package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// cachedPlan is a compiled plan together with the graph epoch it was compiled
// at. A plan is only valid for the exact epoch: any data or index mutation
// moves the graph's epoch and implicitly invalidates the plan for that newer
// state (the planner's scan selection and cost estimates depend on the
// graph's statistics and declared indexes).
type cachedPlan struct {
	plan  *plan.Plan
	epoch uint64
}

// planEpochsRetained bounds how many distinct epochs the cache keeps per
// query. It matches the MVCC store's version retention (K=2): while a write
// query executes, readers are pinned to the previous committed version one
// epoch (or one batch of epochs) behind the live graph, so both the old and
// the new plan are legitimately in use at the same time. Retaining both means
// a writer publishing a version does not evict the plan the still-pinned
// readers are using.
const planEpochsRetained = 2

// planCache maps query text to compiled plans, retaining plans for up to
// planEpochsRetained recent epochs per query. Lookups key on the epoch of the
// PINNED graph version the caller is executing against — never the live
// graph's epoch — so a reader pinned to an older version can never be handed
// a plan compiled against newer statistics or indexes than its row source
// (and vice versa). The cache is internally synchronized and safe for
// concurrent use; plans themselves are immutable after compilation (the
// executor never writes to the operator tree), so a cached *plan.Plan may be
// executed by many goroutines at once.
type planCache struct {
	mu sync.Mutex
	// entries holds, per query, the cached plans sorted newest-epoch-first,
	// at most planEpochsRetained long.
	entries map[string][]cachedPlan
	// flights tracks in-progress compilations (single-flight): when many
	// readers miss on the same query at the same epoch — typical right
	// after an invalidation — one compiles and the rest wait for its
	// result instead of duplicating the planning work. Keyed by (query,
	// epoch) so a pinned reader and a fresh reader compiling for different
	// epochs do not serialize behind each other.
	flights map[flightKey]*flight
	max     int

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type flightKey struct {
	query string
	epoch uint64
}

type flight struct {
	done chan struct{}
	plan *plan.Plan
	err  error
}

// defaultPlanCacheSize bounds the number of queries with cached plans per
// engine.
const defaultPlanCacheSize = 1024

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = defaultPlanCacheSize
	}
	return &planCache{
		entries: make(map[string][]cachedPlan),
		flights: make(map[flightKey]*flight),
		max:     max,
	}
}

// getOrCompile returns the cached plan for the query at the given epoch,
// compiling (and caching) it via compile on a miss. A lookup at an epoch
// newer than every cached plan counts as an invalidation (the graph moved on
// and the old plans are stale for the live head); a lookup at an OLDER epoch
// — a reader pinned to a previous version — is a plain miss and leaves the
// newer plans untouched. Concurrent callers for the same query and epoch
// share one compilation.
func (c *planCache) getOrCompile(query string, epoch uint64, compile func() (*plan.Plan, error)) (*plan.Plan, error) {
	c.mu.Lock()
	if list, ok := c.entries[query]; ok {
		for _, e := range list {
			if e.epoch == epoch {
				c.mu.Unlock()
				c.hits.Add(1)
				return e.plan, nil
			}
		}
		if epoch > list[0].epoch {
			// The caller is executing against a state newer than anything
			// cached: every retained plan is stale for the new head.
			c.invalidations.Add(1)
		}
	}
	key := flightKey{query: query, epoch: epoch}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.misses.Add(1)
		<-f.done
		return f.plan, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.misses.Add(1)

	f.plan, f.err = compile()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		// When the cache is full it is reset wholesale — queries in a
		// serving workload are typically a small, recurring set, so an
		// eviction policy buys little over the map rebuild.
		if _, ok := c.entries[query]; !ok && len(c.entries) >= c.max {
			c.entries = make(map[string][]cachedPlan)
		}
		c.entries[query] = insertPlan(c.entries[query], cachedPlan{plan: f.plan, epoch: epoch})
	}
	c.mu.Unlock()
	close(f.done)
	return f.plan, f.err
}

// insertPlan inserts e into the newest-first list, keeping it sorted by epoch
// descending, deduplicated, and at most planEpochsRetained long (oldest
// dropped first). A pinned reader caching a plan for an old epoch therefore
// never evicts the live head's plan.
func insertPlan(list []cachedPlan, e cachedPlan) []cachedPlan {
	out := make([]cachedPlan, 0, planEpochsRetained)
	inserted := false
	for _, cur := range list {
		if cur.epoch == e.epoch {
			continue // replaced by the fresh compile
		}
		if !inserted && e.epoch > cur.epoch {
			out = append(out, e)
			inserted = true
		}
		out = append(out, cur)
	}
	if !inserted {
		out = append(out, e)
	}
	if len(out) > planEpochsRetained {
		out = out[:planEpochsRetained]
	}
	return out
}

// len returns the number of cached plans across all queries and epochs.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, list := range c.entries {
		n += len(list)
	}
	return n
}

// CacheStats summarises plan-cache effectiveness for monitoring endpoints.
type CacheStats struct {
	// Entries is the number of plans currently cached (a query executed at
	// two retained epochs contributes two).
	Entries int
	// Hits counts lookups answered from the cache at a matching epoch.
	Hits uint64
	// Misses counts lookups that had to compile (including stale entries).
	Misses uint64
	// Invalidations counts lookups whose epoch was newer than every cached
	// plan for the query — the graph's mutation epoch had moved since
	// compilation.
	Invalidations uint64
}

func (c *planCache) stats() CacheStats {
	return CacheStats{
		Entries:       c.len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
