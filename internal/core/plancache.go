package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// cachedPlan is a compiled plan together with the graph epoch it was compiled
// at. A plan is only valid while the epoch matches: any data or index
// mutation moves the graph's epoch and implicitly invalidates every cached
// plan (the planner's scan selection and cost estimates depend on the graph's
// statistics and declared indexes).
type cachedPlan struct {
	plan  *plan.Plan
	epoch uint64
}

// planCache maps query text to compiled plans. It is internally synchronized
// and safe for concurrent use; plans themselves are immutable after
// compilation (the executor never writes to the operator tree), so a cached
// *plan.Plan may be executed by many goroutines at once.
type planCache struct {
	mu      sync.Mutex
	entries map[string]cachedPlan
	// flights tracks in-progress compilations (single-flight): when many
	// readers miss on the same query at the same epoch — typical right
	// after an invalidation — one compiles and the rest wait for its
	// result instead of duplicating the planning work.
	flights map[string]*flight
	max     int

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type flight struct {
	done  chan struct{}
	epoch uint64
	plan  *plan.Plan
	err   error
}

// defaultPlanCacheSize bounds the number of cached plans per engine.
const defaultPlanCacheSize = 1024

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = defaultPlanCacheSize
	}
	return &planCache{
		entries: make(map[string]cachedPlan),
		flights: make(map[string]*flight),
		max:     max,
	}
}

// getOrCompile returns the cached plan for the query at the given epoch,
// compiling (and caching) it via compile on a miss. A stale entry is removed
// and counted as an invalidation. Concurrent callers for the same query and
// epoch share one compilation.
func (c *planCache) getOrCompile(query string, epoch uint64, compile func() (*plan.Plan, error)) (*plan.Plan, error) {
	c.mu.Lock()
	if e, ok := c.entries[query]; ok {
		if e.epoch == epoch {
			c.mu.Unlock()
			c.hits.Add(1)
			return e.plan, nil
		}
		delete(c.entries, query)
		c.invalidations.Add(1)
	}
	if f, ok := c.flights[query]; ok && f.epoch == epoch {
		c.mu.Unlock()
		c.misses.Add(1)
		<-f.done
		return f.plan, f.err
	}
	f := &flight{done: make(chan struct{}), epoch: epoch}
	c.flights[query] = f
	c.mu.Unlock()
	c.misses.Add(1)

	f.plan, f.err = compile()

	c.mu.Lock()
	delete(c.flights, query)
	if f.err == nil {
		// When the cache is full it is reset wholesale — queries in a
		// serving workload are typically a small, recurring set, so an
		// eviction policy buys little over the map rebuild.
		if len(c.entries) >= c.max {
			c.entries = make(map[string]cachedPlan)
		}
		c.entries[query] = cachedPlan{plan: f.plan, epoch: epoch}
	}
	c.mu.Unlock()
	close(f.done)
	return f.plan, f.err
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats summarises plan-cache effectiveness for monitoring endpoints.
type CacheStats struct {
	// Entries is the number of plans currently cached.
	Entries int
	// Hits counts lookups answered from the cache at a matching epoch.
	Hits uint64
	// Misses counts lookups that had to compile (including stale entries).
	Misses uint64
	// Invalidations counts cached plans discarded because the graph's
	// mutation epoch had moved since compilation.
	Invalidations uint64
}

func (c *planCache) stats() CacheStats {
	return CacheStats{
		Entries:       c.len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
