// Replication wiring: the apply side of WAL shipping. A follower engine
// never executes write queries; instead the replication tailer feeds it the
// leader's committed batches through ApplyReplicated, which drives them
// through the same BeginWrite → mutate → Publish cycle a local write query
// uses. Readers on a follower therefore keep the full MVCC contract — they
// pin a published immutable version and never block on (or observe a torn
// prefix of) an in-flight apply — and the plan cache keeps working
// unchanged, because each applied batch advances the published epoch exactly
// like a local commit would.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/storage"
)

// ReadOnlyReplicaError rejects a write on a follower engine. It carries the
// leader's advertised address so serving layers can redirect the client; an
// empty Leader means no leader is currently known (mid-election, or a
// degraded leader that lost its quorum lease) and the serving layer should
// answer 503 + Retry-After instead of a redirect.
type ReadOnlyReplicaError struct {
	// Leader is the advertised address writes should be sent to ("" =
	// unknown right now; retry shortly).
	Leader string
}

func (e *ReadOnlyReplicaError) Error() string {
	if e.Leader == "" {
		return "core: this graph is a read-only replica"
	}
	return fmt.Sprintf("core: this graph is a read-only replica; send writes to the leader at %s", e.Leader)
}

// StaleTermError rejects a replicated batch stamped with an election term
// older than the engine's fence: its sender is a deposed leader that does not
// yet know it lost. The tailer fail-stops on it — continuing to apply from
// that stream could interleave a zombie's writes with the real leader's.
type StaleTermError struct {
	// Term is the batch's term; Fence the newest term this engine has
	// acknowledged.
	Term, Fence uint64
}

func (e *StaleTermError) Error() string {
	return fmt.Sprintf("core: replicated batch from stale election term %d (fence %d)", e.Term, e.Fence)
}

// replicaRole is the engine's replication role. A nil pointer in Engine.role
// is the writer role (the common, standalone case pays no allocation).
type replicaRole struct {
	// leader is the advertised address of the node accepting writes; "" when
	// unknown (mid-election / degraded leader).
	leader string
}

// SetFollowerOf marks the engine as a read-only replica of the leader at the
// given advertised address: write queries, index creation and imports are
// rejected with a *ReadOnlyReplicaError from here on, leaving
// ApplyReplicated/ResetReplicated as the only mutation paths. An empty
// address restores the writer role. Safe to call while the engine is shared:
// elections re-point replicas at the new winner on the fly.
func (e *Engine) SetFollowerOf(leader string) {
	if leader == "" {
		e.role.Store(nil)
		return
	}
	e.role.Store(&replicaRole{leader: leader})
}

// SetLeaderless marks the engine read-only with no known leader: writes are
// rejected with a *ReadOnlyReplicaError whose Leader is empty, which serving
// layers map to 503 + Retry-After (degraded, not failed). Used mid-election
// and by a leader whose quorum lease lapsed.
func (e *Engine) SetLeaderless() {
	e.role.Store(&replicaRole{})
}

// IsWriter reports whether the engine currently accepts write queries.
func (e *Engine) IsWriter() bool { return e.role.Load() == nil }

// FollowerOf returns the leader address writes are redirected to, or "" when
// this engine is the writer (or knows no leader).
func (e *Engine) FollowerOf() string {
	if r := e.role.Load(); r != nil {
		return r.leader
	}
	return ""
}

// readOnlyErr returns the rejection for mutating operations on a replica,
// or nil on a writable engine.
func (e *Engine) readOnlyErr() error {
	if r := e.role.Load(); r != nil {
		return &ReadOnlyReplicaError{Leader: r.leader}
	}
	return nil
}

// PromoteToWriter flips the engine to the writer role with s as its durable
// store, under the write lock so the transition cannot interleave with a
// write query. The election layer calls it when this node wins a campaign
// (s is the promoted follower store).
func (e *Engine) PromoteToWriter(s *storage.Store) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.durable.Store(s)
	e.role.Store(nil)
}

// DemoteToReplica flips the engine to the follower role (leaderless when
// leader is "") and detaches the durable store, returning it so the election
// layer can hand it to storage.Store.Demote. Taking the write lock first
// means any in-flight write query finishes — and its batch is appended —
// before the store changes hands; writes queued behind it fail the role
// re-check instead of applying unjournaled mutations.
func (e *Engine) DemoteToReplica(leader string) *storage.Store {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.role.Store(&replicaRole{leader: leader})
	return e.durable.Swap(nil)
}

// SetFenceTerm raises the engine's term fence (monotonic; lower terms are
// ignored). Raised when this node votes in, declares, or observes a newer
// election term.
func (e *Engine) SetFenceTerm(term uint64) {
	for {
		cur := e.fence.Load()
		if term <= cur || e.fence.CompareAndSwap(cur, term) {
			return
		}
	}
}

// FenceTerm returns the newest election term the engine has acknowledged.
func (e *Engine) FenceTerm() uint64 { return e.fence.Load() }

// ApplyReplicated applies one committed batch from the replication stream:
// the decoded mutations of exactly one leader WAL entry. It runs the full
// write cycle — catch the spare version up, publish it as read head, drain
// pins off the primary, apply, republish — so concurrent readers only ever
// see the graph before or after the whole batch, never mid-batch, and each
// mutation is Captured into the MVCC backlog so the next cycle's replica
// replay stays in epoch lockstep (no defensive re-clone per batch).
//
// The caller is responsible for having journaled the entry locally first
// (durability precedes visibility, the same ordering the leader's commit
// path uses). ApplyReplicated stamps the batch with the engine's own current
// fence, so it always passes the term check — it is the legacy single-leader
// path; clustered tailers use ApplyReplicatedTerm with the stream frame's
// term.
func (e *Engine) ApplyReplicated(batch []graph.Mutation) error {
	return e.ApplyReplicatedTerm(e.fence.Load(), batch)
}

// ApplyReplicatedTerm is ApplyReplicated with the election term the batch's
// stream frame carried. A term older than the engine's fence is refused with
// a *StaleTermError before anything is applied: the batch comes from a
// deposed leader, and applying it would fork this replica from the history
// the new leader is writing.
func (e *Engine) ApplyReplicatedTerm(term uint64, batch []graph.Mutation) error {
	if fence := e.fence.Load(); term < fence {
		return &StaleTermError{Term: term, Fence: fence}
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	// Re-check under the lock: the fence may have risen while this apply
	// queued behind another writer (an election concluded mid-wait).
	if fence := e.fence.Load(); term < fence {
		return &StaleTermError{Term: term, Fence: fence}
	}
	target := e.versions.BeginWrite()
	defer e.versions.Publish()
	for _, m := range batch {
		if err := target.Apply(m); err != nil {
			// Deterministic replay of a leader-committed batch cannot
			// legally fail; if it does, the replica has diverged and must
			// not keep serving (the tailer fail-stops on this error).
			return fmt.Errorf("apply replicated batch: %w", err)
		}
		e.versions.Capture(m)
	}
	return nil
}

// ResetReplicated replaces the graph's entire contents with a shipped
// snapshot image (catch-up after the leader truncated the stream past this
// follower's position). It executes as one atomic replicated batch: readers
// pinned to the pre-reset version finish on it undisturbed, and the rebuilt
// state becomes visible in a single publish. The image's mutations must be
// in snapshot order (indexes, then nodes, then relationships).
func (e *Engine) ResetReplicated(image []graph.Mutation, nextNode, nextRel int64) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	target := e.versions.BeginWrite()
	defer e.versions.Publish()

	apply := func(m graph.Mutation) error {
		if err := target.Apply(m); err != nil {
			return fmt.Errorf("reset replica from snapshot: %w", err)
		}
		e.versions.Capture(m)
		return nil
	}
	// Tear down in dependency order: relationships, then nodes, then
	// indexes — through the same Apply primitives, so the MVCC capture
	// stream stays complete.
	for _, r := range target.Relationships() {
		if err := apply(graph.Mutation{Kind: graph.MutDeleteRel, ID: r.ID()}); err != nil {
			return err
		}
	}
	for _, n := range target.Nodes() {
		if err := apply(graph.Mutation{Kind: graph.MutDeleteNode, ID: n.ID()}); err != nil {
			return err
		}
	}
	for _, idx := range target.Indexes() {
		if err := apply(graph.Mutation{Kind: graph.MutDropIndex, Label: idx[0], Key: idx[1]}); err != nil {
			return err
		}
	}
	for _, m := range image {
		if err := apply(m); err != nil {
			return err
		}
	}
	target.SetIDCounters(nextNode, nextRel)
	return nil
}
