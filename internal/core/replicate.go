// Replication wiring: the apply side of WAL shipping. A follower engine
// never executes write queries; instead the replication tailer feeds it the
// leader's committed batches through ApplyReplicated, which drives them
// through the same BeginWrite → mutate → Publish cycle a local write query
// uses. Readers on a follower therefore keep the full MVCC contract — they
// pin a published immutable version and never block on (or observe a torn
// prefix of) an in-flight apply — and the plan cache keeps working
// unchanged, because each applied batch advances the published epoch exactly
// like a local commit would.
package core

import (
	"fmt"

	"repro/internal/graph"
)

// ReadOnlyReplicaError rejects a write on a follower engine. It carries the
// leader's advertised address so serving layers can redirect the client.
type ReadOnlyReplicaError struct {
	// Leader is the advertised address writes should be sent to.
	Leader string
}

func (e *ReadOnlyReplicaError) Error() string {
	if e.Leader == "" {
		return "core: this graph is a read-only replica"
	}
	return fmt.Sprintf("core: this graph is a read-only replica; send writes to the leader at %s", e.Leader)
}

// SetFollowerOf marks the engine as a read-only replica of the leader at the
// given advertised address: write queries, index creation and imports are
// rejected with a *ReadOnlyReplicaError from here on, leaving
// ApplyReplicated/ResetReplicated as the only mutation paths. Call before
// the engine is shared between goroutines.
func (e *Engine) SetFollowerOf(leader string) { e.followerOf = leader }

// FollowerOf returns the leader address set by SetFollowerOf, or "".
func (e *Engine) FollowerOf() string { return e.followerOf }

// readOnlyErr returns the rejection for mutating operations on a follower,
// or nil on a normal engine.
func (e *Engine) readOnlyErr() error {
	if e.followerOf != "" {
		return &ReadOnlyReplicaError{Leader: e.followerOf}
	}
	return nil
}

// ApplyReplicated applies one committed batch from the replication stream:
// the decoded mutations of exactly one leader WAL entry. It runs the full
// write cycle — catch the spare version up, publish it as read head, drain
// pins off the primary, apply, republish — so concurrent readers only ever
// see the graph before or after the whole batch, never mid-batch, and each
// mutation is Captured into the MVCC backlog so the next cycle's replica
// replay stays in epoch lockstep (no defensive re-clone per batch).
//
// The caller is responsible for having journaled the entry locally first
// (durability precedes visibility, the same ordering the leader's commit
// path uses).
func (e *Engine) ApplyReplicated(batch []graph.Mutation) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	target := e.versions.BeginWrite()
	defer e.versions.Publish()
	for _, m := range batch {
		if err := target.Apply(m); err != nil {
			// Deterministic replay of a leader-committed batch cannot
			// legally fail; if it does, the replica has diverged and must
			// not keep serving (the tailer fail-stops on this error).
			return fmt.Errorf("apply replicated batch: %w", err)
		}
		e.versions.Capture(m)
	}
	return nil
}

// ResetReplicated replaces the graph's entire contents with a shipped
// snapshot image (catch-up after the leader truncated the stream past this
// follower's position). It executes as one atomic replicated batch: readers
// pinned to the pre-reset version finish on it undisturbed, and the rebuilt
// state becomes visible in a single publish. The image's mutations must be
// in snapshot order (indexes, then nodes, then relationships).
func (e *Engine) ResetReplicated(image []graph.Mutation, nextNode, nextRel int64) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	target := e.versions.BeginWrite()
	defer e.versions.Publish()

	apply := func(m graph.Mutation) error {
		if err := target.Apply(m); err != nil {
			return fmt.Errorf("reset replica from snapshot: %w", err)
		}
		e.versions.Capture(m)
		return nil
	}
	// Tear down in dependency order: relationships, then nodes, then
	// indexes — through the same Apply primitives, so the MVCC capture
	// stream stays complete.
	for _, r := range target.Relationships() {
		if err := apply(graph.Mutation{Kind: graph.MutDeleteRel, ID: r.ID()}); err != nil {
			return err
		}
	}
	for _, n := range target.Nodes() {
		if err := apply(graph.Mutation{Kind: graph.MutDeleteNode, ID: n.ID()}); err != nil {
			return err
		}
	}
	for _, idx := range target.Indexes() {
		if err := apply(graph.Mutation{Kind: graph.MutDropIndex, Label: idx[0], Key: idx[1]}); err != nil {
			return err
		}
	}
	for _, m := range image {
		if err := apply(m); err != nil {
			return err
		}
	}
	target.SetIDCounters(nextNode, nextRel)
	return nil
}
