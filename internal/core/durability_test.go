package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
)

// openDurable builds an engine whose graph is journaled under dir,
// recovering whatever the directory already holds.
func openDurable(t *testing.T, dir string) (*Engine, *storage.Store) {
	t.Helper()
	g := graph.New()
	st, err := storage.Open(dir, g, storage.Options{})
	if err != nil {
		t.Fatalf("storage.Open: %v", err)
	}
	e := NewEngine(g, Options{})
	e.SetDurability(st)
	return e, st
}

// mutationWorkload is a mixed sequence exercising every updating clause:
// CREATE, MERGE, SET (property, +=, replace, label), REMOVE, DELETE and
// DETACH DELETE, plus index DDL via the engine API.
var mutationWorkload = []string{
	`CREATE (:Person {name: 'Ada', born: 1815})-[:KNOWS {since: 1830}]->(:Person {name: 'Babbage'})`,
	`CREATE (:Person {name: 'Grace', tags: ['navy', 'cobol'], meta: {rank: 1}})`,
	`MATCH (p:Person {name: 'Ada'}) SET p.born = 1816, p.note = 'corrected'`,
	`MATCH (p:Person {name: 'Grace'}) SET p:Admiral`,
	`MATCH (p:Person {name: 'Babbage'}) SET p += {field: 'engines'}`,
	`MERGE (:Person {name: 'Turing'})`,
	`MERGE (:Person {name: 'Turing'})`, // second MERGE must be a no-op
	`MATCH (a:Person {name: 'Grace'}), (b:Person {name: 'Turing'}) CREATE (a)-[:KNOWS {since: 1949}]->(b)`,
	`MATCH (p:Person {name: 'Ada'}) REMOVE p.note`,
	`MATCH (p:Admiral) REMOVE p:Admiral`,
	`CREATE (:Scratch {v: 1})-[:T]->(:Scratch {v: 2})`,
	`MATCH (s:Scratch) DETACH DELETE s`,
	`MATCH (p:Person {name: 'Turing'}) SET p = {name: 'Alan Turing', born: 1912}`,
	`CREATE (:Person {name: 'Tail'})`,
	`MATCH (p:Person {name: 'Tail'}) DELETE p`,
}

func runWorkload(t *testing.T, e *Engine) {
	t.Helper()
	for _, q := range mutationWorkload {
		if _, err := e.Run(q, nil); err != nil {
			t.Fatalf("workload query failed: %s\n%v", q, err)
		}
	}
	if err := e.CreateIndex("Person", "name"); err != nil {
		t.Fatalf("create index: %v", err)
	}
}

// TestRecoveryMatchesInMemoryRun is the snapshot+replay equivalence check:
// the same workload applied to a purely in-memory engine and to a durable
// engine that is closed and re-opened must yield byte-identical store dumps.
func TestRecoveryMatchesInMemoryRun(t *testing.T) {
	mem := emptyEngine()
	runWorkload(t, mem)

	dir := t.TempDir()
	dur, st := openDurable(t, dir)
	runWorkload(t, dur)
	before := dur.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, st2 := openDurable(t, dir)
	defer st2.Close()
	after := re.Graph().DebugDump()
	if after != before {
		t.Errorf("recovered state differs from pre-close state\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if got, want := after, mem.Graph().DebugDump(); got != want {
		t.Errorf("recovered state differs from in-memory run\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !re.Graph().HasIndex("Person", "name") {
		t.Error("index lost in recovery")
	}
}

// TestCheckpointEquivalenceAndTruncation proves that a checkpoint preserves
// state exactly, truncates the old generation, and that recovery afterwards
// loads the snapshot plus only the post-checkpoint WAL tail.
func TestCheckpointEquivalenceAndTruncation(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	runWorkload(t, e)

	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint writes land in the new WAL generation.
	if _, err := e.Run(`CREATE (:Person {name: 'PostCkpt'})`, nil); err != nil {
		t.Fatal(err)
	}
	want := e.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly one generation of files remains (plus the directory lock).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		if ent.Name() != "LOCK" {
			names = append(names, ent.Name())
		}
	}
	if len(names) != 2 {
		t.Fatalf("expected exactly snapshot+wal of one generation, found %v", names)
	}

	re, st2 := openDurable(t, dir)
	defer st2.Close()
	if got := re.Graph().DebugDump(); got != want {
		t.Errorf("post-checkpoint recovery mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	rec := st2.Recovery()
	if rec.SnapshotRecords == 0 {
		t.Error("recovery did not use the snapshot")
	}
	if rec.WALRecords != 1 {
		t.Errorf("recovery replayed %d WAL records, want 1 (the post-checkpoint create)", rec.WALRecords)
	}
}

// TestRecoveryRefusesCorruptSnapshot: a published snapshot that no longer
// loads makes recovery fail LOUDLY. Guessing — recovering from an older
// generation or from the WAL alone — could silently resurrect a stale
// prefix, because commits may live in the corrupt snapshot's own WAL
// generation; the operator must inspect and decide.
func TestRecoveryRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	if _, err := e.Run(`CREATE (:Person {name: 'Ada'})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(`CREATE (:Person {name: 'Grace'})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot the published generation-1 snapshot.
	path := filepath.Join(dir, "snapshot-000001.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	g := graph.New()
	if _, err := storage.Open(dir, g, storage.Options{}); err == nil {
		t.Fatal("recovery over a corrupt snapshot must fail, not guess")
	} else if !strings.Contains(err.Error(), "unreadable") {
		t.Errorf("error should name the unreadable snapshot, got: %v", err)
	}
}

// TestConcurrentWritersDurability hammers a durable engine with concurrent
// writers and readers (run under -race in CI), then recovers and checks that
// every committed write survived.
func TestConcurrentWritersDurability(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				q := fmt.Sprintf(`CREATE (:Item {w: %d, i: %d})`, w, i)
				if _, err := e.Run(q, nil); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%5 == 0 {
					if _, err := e.Run(`MATCH (n:Item) RETURN count(*)`, nil); err != nil {
						t.Errorf("reader in writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := e.Run(`MATCH (n:Item) WHERE n.i > 10 RETURN n.w, n.i`, nil); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := e.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, st2 := openDurable(t, dir)
	defer st2.Close()
	res, err := re.Run(`MATCH (n:Item) RETURN count(*) AS c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows()[0][0].String(); got != fmt.Sprint(writers*perWriter) {
		t.Errorf("recovered %s items, want %d", got, writers*perWriter)
	}
	if got := re.Graph().DebugDump(); got != want {
		t.Error("recovered state differs from pre-close state")
	}
}

// TestFailedQueryStillJournalsPartialEffects documents the no-rollback
// contract: a write query that errors midway leaves its partial effects in
// memory, and recovery must reproduce exactly those effects.
func TestFailedQueryStillJournalsPartialEffects(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	if _, err := e.Run(`CREATE (:A {v: 1})`, nil); err != nil {
		t.Fatal(err)
	}
	// DELETE without DETACH on a node with relationships fails after the
	// CREATE part of the statement sequence ran.
	if _, err := e.Run(`CREATE (:Hub)-[:T]->(:Spoke) WITH 1 AS one MATCH (h:Hub) DELETE h`, nil); err == nil {
		t.Fatal("expected the DELETE to fail")
	}
	want := e.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, st2 := openDurable(t, dir)
	defer st2.Close()
	if got := re.Graph().DebugDump(); got != want {
		t.Errorf("partial effects not reproduced\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFailedCheckpointLeftoverDoesNotLoseWAL covers the failure atomicity of
// Checkpoint: a checkpoint that died after creating wal-(N+1) but before
// publishing snapshot-(N+1) leaves an unpublished orphan WAL. Recovery must
// keep replaying the live generation's WAL (no committed write may be lost),
// clean the orphan up, and a later Checkpoint over the same generation must
// succeed.
func TestFailedCheckpointLeftoverDoesNotLoseWAL(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	if _, err := e.Run(`CREATE (:Person {name: 'Ada'})`, nil); err != nil {
		t.Fatal(err)
	}
	want := e.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge the half-done checkpoint: an unpublished wal-000001.log with a
	// valid header and no snapshot-000001.snap.
	orphan := filepath.Join(dir, "wal-000001.log")
	if err := os.WriteFile(orphan, []byte("CYWAL001"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, st2 := openDurable(t, dir)
	if got := re.Graph().DebugDump(); got != want {
		t.Errorf("recovery with orphan WAL lost data\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("unpublished orphan WAL not cleaned up (stat err: %v)", err)
	}
	// The next checkpoint claims generation 1 for real.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after orphan cleanup: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	re2, st3 := openDurable(t, dir)
	defer st3.Close()
	if got := re2.Graph().DebugDump(); got != want {
		t.Errorf("post-checkpoint recovery mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	if st3.Recovery().Generation != 1 {
		t.Errorf("live generation = %d, want 1", st3.Recovery().Generation)
	}
}

// TestEntityPropertyValuesRejectedBeforeMutation: storing a graph entity as
// a property value is a Cypher type error, and it must surface BEFORE any
// mutation happens — on a durable graph an after-the-fact encode failure
// would force the store into fail-stop. The data directory must stay fully
// recoverable afterwards.
func TestEntityPropertyValuesRejectedBeforeMutation(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	if _, err := e.Run(`CREATE (:X {v: 1})`, nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`MATCH (a:X) SET a.self = a`,
		`MATCH (a:X) CREATE (:Y {ref: a})`,
		`MATCH (a:X) SET a.l = [1, a]`,
		`MATCH (a:X) SET a = {ref: a}`,
	} {
		if _, err := e.Run(q, nil); err == nil {
			t.Errorf("storing an entity as a property must fail: %s", q)
		}
	}
	// The rejections happened pre-mutation: writes still work and the
	// directory recovers to exactly the pre-error state plus later writes.
	if _, err := e.Run(`MATCH (a:X) CREATE (a)-[:R]->(:Z)`, nil); err != nil {
		t.Fatalf("store wrongly entered fail-stop: %v", err)
	}
	want := e.Graph().DebugDump()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, st2 := openDurable(t, dir)
	defer st2.Close()
	if got := re.Graph().DebugDump(); got != want {
		t.Errorf("recovery mismatch after rejected entity-property writes\ngot:\n%s\nwant:\n%s", got, want)
	}
}
