package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// TestExpandIntoProbesSmallerSide pins the bound-endpoints expansion under
// asymmetric degrees — the executor probes whichever endpoint has the
// smaller adjacency, so both orientations of the probe must count the same
// relationships: parallel edges in both directions, self-loops excluded,
// direction respected.
func TestExpandIntoProbesSmallerSide(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	mustRel := func(from, to *graph.Node) {
		t.Helper()
		if _, err := g.CreateRelationship(from, to, "R", nil); err != nil {
			t.Fatal(err)
		}
	}
	// 3 parallel a->b edges, 2 b->a edges, one self-loop on each node.
	mustRel(a, b)
	mustRel(a, b)
	mustRel(a, b)
	mustRel(b, a)
	mustRel(b, a)
	mustRel(a, a)
	mustRel(b, b)
	// Inflate a's degree with spokes so the probe flips to b's side for
	// a-as-from queries (and covers the unflipped path for b-as-from).
	for i := 0; i < 50; i++ {
		mustRel(a, g.CreateNode([]string{"Spoke"}, nil))
	}
	e := NewEngine(g, Options{})

	cases := []struct {
		query string
		want  int64
	}{
		{"MATCH (a:A) MATCH (b:B) MATCH (a)-[:R]->(b) RETURN count(*) AS c", 3},
		{"MATCH (a:A) MATCH (b:B) MATCH (a)<-[:R]-(b) RETURN count(*) AS c", 2},
		{"MATCH (a:A) MATCH (b:B) MATCH (a)-[:R]-(b) RETURN count(*) AS c", 5},
		{"MATCH (a:A) MATCH (b:B) MATCH (b)-[:R]->(a) RETURN count(*) AS c", 2},
		// Self-probe (cyclic pattern on one node) keeps the from side: the
		// self-loop is found exactly once per direction.
		{"MATCH (a:A) MATCH (a)-[:R]->(a) RETURN count(*) AS c", 1},
		{"MATCH (a:A)-[r1:R]->(b:B)<-[r2:R]-(a) RETURN count(*) AS c", 6}, // 3 a->b edges x 2 remaining (rel-isomorphism)
	}
	for _, c := range cases {
		res := run(t, e, c.query)
		if got := res.Rows()[0][0]; value.Compare(got, value.NewInt(c.want)) != 0 {
			t.Errorf("%s = %s, want %d\nplan:\n%s", c.query, got, c.want, res.Plan)
		}
	}
}

// TestSeekSemanticsEdgeCases pins the agreement between index seeks and the
// filter predicates they replace on the awkward inputs: null bounds, type
// mismatches, missing properties, and IN over a non-list.
func TestSeekSemanticsEdgeCases(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewInt(1)})
	g.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewString("s")})
	g.CreateNode([]string{"P"}, nil) // no property
	g.CreateIndex("P", "k")
	e := NewEngine(g, Options{})

	count := func(q string, params map[string]any) int64 {
		t.Helper()
		res, err := e.RunWithGoParams(q, params)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		n, _ := value.AsInt(res.Rows()[0][0])
		return n
	}
	if got := count("MATCH (n:P) WHERE n.k > 0 RETURN count(n) AS c", nil); got != 1 {
		t.Errorf("numeric range must skip the string and missing properties, got %d", got)
	}
	if got := count("MATCH (n:P) WHERE n.k > $b RETURN count(n) AS c", map[string]any{"b": nil}); got != 0 {
		t.Errorf("null bound matches nothing, got %d", got)
	}
	if got := count("MATCH (n:P) WHERE n.k STARTS WITH 's' RETURN count(n) AS c", nil); got != 1 {
		t.Errorf("prefix seek, got %d", got)
	}
	if got := count("MATCH (n:P) WHERE n.k IN [1.0, 's', null] RETURN count(n) AS c", nil); got != 2 {
		t.Errorf("IN seek with mixed list, got %d", got)
	}
	// IN over a non-list must error exactly like the evaluator does.
	_, err := e.RunWithGoParams("MATCH (n:P) WHERE n.k IN $x RETURN n", map[string]any{"x": 5})
	if err == nil || !strings.Contains(err.Error(), "IN requires a list") {
		t.Errorf("IN over a non-list should type-error, got %v", err)
	}
}

// TestStatisticsAndIndexesSurviveRecovery proves the acceptance criterion
// that statistics are rebuilt by WAL replay: after reopening a durable
// graph, the selectivity counters match, EXPLAIN still chooses the range
// seek, and the seek returns the right rows.
func TestStatisticsAndIndexesSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir)
	if err := e.CreateIndex("P", "age"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		runParams(t, e, "CREATE (:P {age: $a})", map[string]any{"a": i % 10})
	}
	// Mutations after the index exists keep the counters moving.
	run(t, e, "MATCH (n:P) WHERE n.age = 0 DETACH DELETE n")
	before := e.Graph().Stats()
	planBefore := run(t, e, "MATCH (n:P) WHERE n.age > 7 RETURN count(n) AS c")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	e2, st2 := openDurable(t, dir)
	defer st2.Close()
	after := e2.Graph().Stats()
	bi, ok1 := before.Index("P", "age")
	ai, ok2 := after.Index("P", "age")
	if !ok1 || !ok2 || bi != ai {
		t.Fatalf("index statistics diverged across recovery: %+v vs %+v", bi, ai)
	}
	if bi.Entries != 45 || bi.DistinctKeys != 9 {
		t.Fatalf("unexpected counters before recovery: %+v", bi)
	}
	plan, err := e2.Explain("MATCH (n:P) WHERE n.age > 7 RETURN count(n) AS c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeIndexRangeSeek(n:P {age > 7})") {
		t.Errorf("recovered graph should still plan a range seek:\n%s", plan)
	}
	res := run(t, e2, "MATCH (n:P) WHERE n.age > 7 RETURN count(n) AS c")
	if value.Compare(res.Rows()[0][0], planBefore.Rows()[0][0]) != 0 {
		t.Errorf("recovered seek result %s != pre-crash %s", res.Rows()[0][0], planBefore.Rows()[0][0])
	}
}

// TestExplainRuntimeParallelismForSeekLeaf covers the engine's mirror of the
// executor's worker choice when the partitionable leaf is an index seek: the
// planner's estimate decides the morsel count shown by EXPLAIN.
func TestExplainRuntimeParallelismForSeekLeaf(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5000; i++ {
		g.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewInt(int64(i % 100))})
	}
	g.CreateIndex("P", "k")
	e := NewEngine(g, Options{Parallelism: 4, MorselSize: 128})
	pl, err := e.Explain("MATCH (n:P) WHERE n.k > 50 RETURN count(n) AS c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "NodeIndexRangeSeek") {
		t.Fatalf("expected a range-seek leaf:\n%s", pl)
	}
	if !strings.Contains(pl, "runtime parallelism: 4") {
		t.Errorf("a seek estimated at >4 morsels should use the full worker budget:\n%s", pl)
	}
	// And the execution itself goes parallel with correct results.
	res := run(t, e, "MATCH (n:P) WHERE n.k > 50 RETURN count(n) AS c")
	if res.Parallelism < 2 {
		t.Errorf("seek-leaf execution stayed serial (%d workers)", res.Parallelism)
	}
	if value.Compare(res.Rows()[0][0], value.NewInt(49*50)) != 0 {
		t.Errorf("parallel seek count = %s, want %d", res.Rows()[0][0], 49*50)
	}
	// A tiny seek keeps runtime parallelism at 1.
	pl, err = e.Explain("MATCH (n:P) WHERE n.k = 1 RETURN count(n) AS c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "runtime parallelism: 1") {
		t.Errorf("single-morsel seek should report serial runtime:\n%s", pl)
	}
}

// TestImportFromCopiesDataAndIndexes covers the dataset-seeding path: graph
// contents, relationships and index declarations (with their statistics)
// survive the copy into a fresh engine.
func TestImportFromCopiesDataAndIndexes(t *testing.T) {
	src := graph.New()
	a := src.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewInt(1)})
	b := src.CreateNode([]string{"P"}, map[string]value.Value{"k": value.NewInt(2)})
	if _, err := src.CreateRelationship(a, b, "R", map[string]value.Value{"w": value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	src.CreateIndex("P", "k")

	e := emptyEngine()
	if err := e.ImportFrom(src); err != nil {
		t.Fatal(err)
	}
	s := e.Graph().Stats()
	if s.NodeCount != 2 || s.RelationshipCount != 1 {
		t.Fatalf("imported stats = %+v", s)
	}
	is, ok := s.Index("P", "k")
	if !ok || is.Entries != 2 || is.DistinctKeys != 2 {
		t.Fatalf("imported index stats = %+v (ok=%v)", is, ok)
	}
	res := run(t, e, "MATCH (x:P)-[r:R]->(y:P) WHERE x.k < 2 RETURN y.k AS yk, r.w AS w")
	expectOrdered(t, res, [][]any{{int64(2), int64(9)}})
}

// TestErrorCapablePredicatesKeepLegacyFilterPosition pins the review fix:
// conjunct pushdown must not evaluate error-capable expressions on rows the
// legacy post-pattern filter never saw. A WHERE containing any expression
// that can raise a runtime error (arithmetic, here division by zero) is not
// split: it stays one filter above the fully planned pattern, so a query
// whose pattern matches nothing still succeeds — and one that does match
// still errors, exactly as before the cost-based planner.
func TestErrorCapablePredicatesKeepLegacyFilterPosition(t *testing.T) {
	e := emptyEngine()
	// Empty graph: the filter is never evaluated, no error.
	res := run(t, e, "MATCH (a) WHERE a.x > 0 AND 1/0 = 1 RETURN a")
	if res.Len() != 0 {
		t.Fatalf("expected zero rows, got %d", res.Len())
	}
	if !strings.Contains(res.Plan, "Filter(a.x > 0 AND 1 / 0 = 1)") {
		t.Errorf("error-capable WHERE must stay one unsplit filter:\n%s", res.Plan)
	}
	// Pattern yields no rows past the expansion: still no error.
	run(t, e, "CREATE (:Person {age: 1})")
	res = run(t, e, "MATCH (a:Person)-->(b) WHERE a.age/0 = 1 RETURN b")
	if res.Len() != 0 {
		t.Fatalf("expected zero rows, got %d", res.Len())
	}
	// A row actually reaches the filter: the error must still surface.
	if _, err := e.Run("MATCH (a:Person) WHERE a.age > 0 AND 1/0 = 1 RETURN a", nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("matched rows must still raise the evaluation error, got %v", err)
	}
	// Error-free conjuncts still split and seek as usual.
	e.Graph().CreateIndex("Person", "age")
	res = run(t, e, "MATCH (a:Person) WHERE a.age > 0 AND a.age < 5 RETURN a")
	if !strings.Contains(res.Plan, "NodeIndexRangeSeek") {
		t.Errorf("error-free conjuncts must keep seeking:\n%s", res.Plan)
	}
}
