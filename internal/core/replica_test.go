package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func personBatch(id int64, name string) []graph.Mutation {
	return []graph.Mutation{
		{Kind: graph.MutCreateNode, ID: id, Labels: []string{"Person"},
			Props: map[string]value.Value{"name": value.NewString(name)}},
	}
}

func TestApplyReplicatedVisibility(t *testing.T) {
	e := emptyEngine()
	e.SetFollowerOf("http://leader:7474")

	if err := e.ApplyReplicated(personBatch(1, "Ada")); err != nil {
		t.Fatalf("apply: %v", err)
	}
	res, err := e.Run(`MATCH (p:Person) RETURN p.name`, nil)
	if err != nil {
		t.Fatalf("read after apply: %v", err)
	}
	if res.Len() != 1 || res.Rows()[0][0].String() != "'Ada'" {
		t.Fatalf("read sees %v", res.Rows())
	}

	// Each applied batch advances the published epoch like a local commit, so
	// the plan cache, which keys on the pinned epoch, recompiles instead of
	// serving a stale plan.
	st := e.MVCCStats()
	if st.PublishedEpoch != st.LiveEpoch {
		t.Fatalf("published epoch %d lags live %d after apply", st.PublishedEpoch, st.LiveEpoch)
	}
}

func TestApplyReplicatedKeepsEpochLockstep(t *testing.T) {
	e := emptyEngine()
	e.SetFollowerOf("http://leader:7474")

	// Many small batches: if ApplyReplicated failed to Capture its mutations
	// into the MVCC backlog, every BeginWrite would detect replica divergence
	// and re-clone the whole graph.
	for i := 0; i < 20; i++ {
		if err := e.ApplyReplicated(personBatch(int64(i+1), fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if st := e.MVCCStats(); st.Rebuilds != 0 {
		t.Fatalf("replica re-cloned %d times; Capture is not keeping epoch lockstep", st.Rebuilds)
	}
}

func TestApplyReplicatedUnderConcurrentReaders(t *testing.T) {
	e := emptyEngine()
	e.SetFollowerOf("http://leader:7474")
	if err := e.ApplyReplicated(personBatch(1, "seed")); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Run(`MATCH (p:Person) RETURN count(p) AS c`, nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// Snapshot isolation: a batch is all-or-nothing, so the count
				// is whatever number of whole batches had published.
				if res.Len() != 1 {
					t.Errorf("read returned %d rows", res.Len())
					return
				}
			}
		}()
	}
	for i := 2; i <= 50; i++ {
		if err := e.ApplyReplicated(personBatch(int64(i), fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	res, err := e.Run(`MATCH (p:Person) RETURN count(p) AS c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows()[0][0].String(); got != "50" {
		t.Fatalf("final count %s, want 50", got)
	}
}

func TestResetReplicatedReplacesEverything(t *testing.T) {
	e := emptyEngine()
	// Existing state a snapshot catch-up must wipe: nodes, a relationship and
	// an index.
	if _, err := e.Run(`CREATE (:Old {v: 1})-[:R]->(:Old {v: 2})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("Old", "v"); err != nil {
		t.Fatal(err)
	}
	e.SetFollowerOf("http://leader:7474")

	image := []graph.Mutation{
		{Kind: graph.MutCreateIndex, Label: "New", Key: "k"},
		{Kind: graph.MutCreateNode, ID: 10, Labels: []string{"New"},
			Props: map[string]value.Value{"k": value.NewInt(1)}},
		{Kind: graph.MutCreateNode, ID: 11, Labels: []string{"New"},
			Props: map[string]value.Value{"k": value.NewInt(2)}},
		{Kind: graph.MutCreateRel, ID: 5, Start: 10, End: 11, Label: "LINKS"},
	}
	if err := e.ResetReplicated(image, 12, 6); err != nil {
		t.Fatalf("reset: %v", err)
	}

	res, err := e.Run(`MATCH (n) RETURN labels(n)[0] AS l, count(*) AS c ORDER BY l`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows()[0][0].String() != "'New'" || res.Rows()[0][1].String() != "2" {
		t.Fatalf("post-reset nodes: %v", res.Rows())
	}
	res, err = e.Run(`MATCH (:New)-[r:LINKS]->(:New) RETURN count(r)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].String() != "1" {
		t.Fatalf("post-reset relationships: %v", res.Rows())
	}
	// The shipped ID counters take effect (a later replicated create with the
	// next leader-assigned ID must not collide).
	if err := e.ApplyReplicated([]graph.Mutation{{Kind: graph.MutCreateNode, ID: 12, Labels: []string{"New"}}}); err != nil {
		t.Fatalf("apply after reset: %v", err)
	}
	// And MVCC stays in lockstep through the reset.
	if st := e.MVCCStats(); st.Rebuilds != 0 {
		t.Fatalf("reset caused %d replica rebuilds, want 0", st.Rebuilds)
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	e := emptyEngine()
	e.SetFollowerOf("http://leader:7474")
	if err := e.ApplyReplicated(personBatch(1, "Ada")); err != nil {
		t.Fatal(err)
	}

	var ro *ReadOnlyReplicaError
	if _, err := e.Run(`CREATE (:Person {name: 'local'})`, nil); !errors.As(err, &ro) {
		t.Fatalf("write query err = %v, want ReadOnlyReplicaError", err)
	} else if ro.Leader != "http://leader:7474" {
		t.Fatalf("rejection leader = %q", ro.Leader)
	}
	if err := e.CreateIndex("Person", "name"); !errors.As(err, &ro) {
		t.Fatalf("CreateIndex err = %v, want ReadOnlyReplicaError", err)
	}
	if err := e.ImportFrom(graph.New()); !errors.As(err, &ro) {
		t.Fatalf("ImportFrom err = %v, want ReadOnlyReplicaError", err)
	}
	// Reads keep working, and nothing leaked from the rejected write.
	res, err := e.Run(`MATCH (p:Person) RETURN count(p)`, nil)
	if err != nil {
		t.Fatalf("read on follower: %v", err)
	}
	if res.Rows()[0][0].String() != "1" {
		t.Fatalf("follower count %v, want 1", res.Rows())
	}
}
