package core

// MVCC-specific engine behaviour: version/pin accounting surfaced through
// MVCCStats, and the plan-cache discipline the versioned reads depend on —
// lookups key on the PINNED version's epoch, never the live graph's, and the
// cache retains plans for the last planEpochsRetained epochs so a publish
// does not evict the plan still-pinned readers are using.

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestPlanCacheKeysOnPinnedEpoch is the regression test for the pinned-epoch
// cache fix: a reader that races a commit (here: parked deterministically in
// the commit hook, after the index landed on the primary but before the
// version published) compiles its plan against the OLD pinned version. That
// plan must be cached under the old epoch — if it were cached under the live
// graph's epoch (the bug), the post-commit reader below would hit a stale
// label-scan plan and never use the new index.
func TestPlanCacheKeysOnPinnedEpoch(t *testing.T) {
	e := emptyEngine()
	run(t, e, `UNWIND range(1, 200) AS i CREATE (:P {p: i})`)

	const q = `MATCH (n:P {p: 5}) RETURN n.p`

	entered := make(chan struct{})
	release := make(chan struct{})
	e.SetCommitHook(func() {
		close(entered)
		<-release
	})
	done := make(chan error, 1)
	go func() { done <- e.CreateIndex("P", "p") }()
	<-entered

	// Mid-commit: the pinned version has no index, so this read must plan
	// (and cache) a scan for the OLD epoch — and still return correct rows.
	res := run(t, e, q)
	if got := rows(res); len(got) != 1 || got[0][0] != int64(5) {
		t.Fatalf("mid-commit read = %v, want [[5]]", got)
	}
	if strings.Contains(res.Plan, "NodeIndexSeek") {
		t.Fatalf("mid-commit read used an index its pinned version does not have:\n%s", res.Plan)
	}

	e.SetCommitHook(nil)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("CreateIndex failed: %v", err)
	}

	// Post-commit: the live epoch moved, so the stale scan plan must not be
	// served; a fresh compile sees the index.
	res = run(t, e, q)
	if got := rows(res); len(got) != 1 || got[0][0] != int64(5) {
		t.Fatalf("post-commit read = %v, want [[5]]", got)
	}
	if !strings.Contains(res.Plan, "NodeIndexSeek") {
		t.Fatalf("post-commit read served the pre-index plan (cache keyed on wrong epoch):\n%s", res.Plan)
	}
	if st := e.PlanCacheStats(); st.Invalidations == 0 {
		t.Errorf("epoch advance not counted as invalidation: %+v", st)
	}
}

func TestPlanCacheRetainsTwoEpochs(t *testing.T) {
	c := newPlanCache(0)
	mk := func() (*plan.Plan, error) { return &plan.Plan{}, nil }
	fail := func() (*plan.Plan, error) { t.Fatal("unexpected compile"); return nil, nil }

	p1, _ := c.getOrCompile("q", 1, mk)
	p2, _ := c.getOrCompile("q", 2, mk)
	if p1 == p2 {
		t.Fatal("distinct epochs shared a compilation")
	}
	// Both epochs answer from cache: the old plan survived the new publish.
	if got, _ := c.getOrCompile("q", 2, fail); got != p2 {
		t.Fatal("epoch-2 hit returned the wrong plan")
	}
	if got, _ := c.getOrCompile("q", 1, fail); got != p1 {
		t.Fatal("epoch-1 plan evicted by the epoch-2 insert")
	}
	st := c.stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	// An older-epoch lookup is a plain miss, never an invalidation…
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (only the 1→2 advance)", st.Invalidations)
	}
	// …and a third epoch drops the oldest retained plan (K=2).
	c.getOrCompile("q", 3, mk)
	if c.stats().Entries != 2 {
		t.Fatalf("entries after third epoch = %d, want 2", c.stats().Entries)
	}
	compiled := false
	c.getOrCompile("q", 1, func() (*plan.Plan, error) { compiled = true; return &plan.Plan{}, nil })
	if !compiled {
		t.Fatal("epoch 1 should have aged out after epoch 3 was cached")
	}
}

func TestPlanCacheOldEpochInsertKeepsNewest(t *testing.T) {
	// A pinned reader finishing its compile AFTER a writer published must
	// not evict the live head's plan: inserts keep the list sorted by epoch
	// with the newest retained.
	c := newPlanCache(0)
	mk := func() (*plan.Plan, error) { return &plan.Plan{}, nil }
	fail := func() (*plan.Plan, error) { t.Fatal("unexpected compile"); return nil, nil }

	pNew, _ := c.getOrCompile("q", 10, mk)
	c.getOrCompile("q", 4, mk) // late pinned-reader insert at an older epoch
	if got, _ := c.getOrCompile("q", 10, fail); got != pNew {
		t.Fatal("older-epoch insert displaced the newest plan")
	}
	if got, _ := c.getOrCompile("q", 4, fail); got == pNew {
		t.Fatal("older epoch resolved to the newer plan")
	}
}

func TestMVCCStatsCounters(t *testing.T) {
	e := emptyEngine()
	st := e.MVCCStats()
	if st.Enabled || st.Versions != 1 || st.Publishes != 0 {
		t.Fatalf("fresh engine stats = %+v", st)
	}

	run(t, e, `CREATE (:A)`)
	run(t, e, `MATCH (a:A) RETURN a`)
	run(t, e, `CREATE (:B)`)

	st = e.MVCCStats()
	if !st.Enabled || st.Versions != 2 {
		t.Fatalf("after writes: %+v, want 2 versions", st)
	}
	if st.Publishes != 2 {
		t.Errorf("publishes = %d, want 2", st.Publishes)
	}
	if st.Pins == 0 {
		t.Errorf("read did not register a pin: %+v", st)
	}
	if st.ActivePins != 0 {
		t.Errorf("pins leaked: %+v", st)
	}
	if st.PublishedEpoch != st.LiveEpoch {
		t.Errorf("idle engine left an unpublished epoch: %+v", st)
	}
	if st.Rebuilds != 0 {
		t.Errorf("healthy engine rebuilt its replica: %+v", st)
	}
}
