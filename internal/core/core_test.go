package core

import (
	"strings"
	"testing"

	"repro/internal/datasets"
)

func TestCreateAndMatchRoundTrip(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, `CREATE (a:Person {name: 'Ada', born: 1815})-[:KNOWS {since: 1840}]->(b:Person {name: 'Charles'}) RETURN a.name, b.name`)
	expectOrdered(t, res, [][]any{{"Ada", "Charles"}})
	if res.ReadOnly {
		t.Errorf("CREATE query should not be read-only")
	}

	res = run(t, e, "MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN a.name, k.since, b.name")
	expectOrdered(t, res, [][]any{{"Ada", 1840, "Charles"}})
	if !res.ReadOnly {
		t.Errorf("MATCH query should be read-only")
	}

	// Creating with a bound variable reuses the node.
	run(t, e, "MATCH (a:Person {name: 'Ada'}) CREATE (a)-[:WROTE]->(:Note {title: 'Menabrea'})")
	res = run(t, e, "MATCH (:Person {name: 'Ada'})-[:WROTE]->(n:Note) RETURN n.title")
	expectOrdered(t, res, [][]any{{"Menabrea"}})

	stats := e.Graph().Stats()
	if stats.NodeCount != 3 || stats.RelationshipCount != 2 {
		t.Errorf("graph counts after creates: %+v", stats)
	}
}

func TestWhereFiltering(t *testing.T) {
	g := datasets.SocialNetwork(datasets.SocialConfig{People: 30, FriendsEach: 3, Seed: 1})
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (p:Person) WHERE p.age >= 40 RETURN count(*) AS n")
	n := rows(res)[0][0].(int64)
	res2 := run(t, e, "MATCH (p:Person) WHERE NOT p.age < 40 RETURN count(*) AS n")
	if rows(res2)[0][0].(int64) != n {
		t.Errorf("NOT < and >= should agree")
	}
	res3 := run(t, e, "MATCH (p:Person) WHERE p.age >= 40 OR p.age < 40 RETURN count(*) AS n")
	if rows(res3)[0][0].(int64) != 30 {
		t.Errorf("total should be 30, got %v", rows(res3)[0][0])
	}
	// Null-valued property comparisons are unknown and filter the row out.
	res4 := run(t, e, "MATCH (p:Person) WHERE p.missing > 1 RETURN count(*) AS n")
	if rows(res4)[0][0].(int64) != 0 {
		t.Errorf("comparisons with missing properties should not match")
	}
}

func TestOptionalMatchNullRow(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:A {name: 'a1'})-[:REL]->(:B {name: 'b1'}), (:A {name: 'a2'})")
	res := run(t, e, "MATCH (a:A) OPTIONAL MATCH (a)-[:REL]->(b:B) RETURN a.name, b.name")
	expectBag(t, res, [][]any{
		{"a1", "b1"},
		{"a2", nil},
	})
	// The WHERE belongs to the OPTIONAL MATCH: rows that fail it get nulls
	// rather than disappearing (Figure 7).
	res = run(t, e, "MATCH (a:A) OPTIONAL MATCH (a)-[:REL]->(b:B) WHERE b.name = 'nope' RETURN a.name, b.name")
	expectBag(t, res, [][]any{
		{"a1", nil},
		{"a2", nil},
	})
}

func TestWithScopeCut(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	// After WITH r, the variable s is out of scope (as stressed in Section 3).
	if _, err := e.Run(`
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r
		RETURN s`, nil); err == nil {
		t.Fatalf("referencing a variable dropped by WITH should fail")
	}
}

func TestAggregationFunctions(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:P {g: 'a', v: 1}), (:P {g: 'a', v: 3}), (:P {g: 'b', v: 10}), (:P {g: 'b'})")
	res := run(t, e, `
		MATCH (p:P)
		RETURN p.g AS grp, count(*) AS cnt, count(p.v) AS cntv, sum(p.v) AS total,
		       avg(p.v) AS mean, min(p.v) AS lo, max(p.v) AS hi, collect(p.v) AS vals
		ORDER BY grp`)
	expectOrdered(t, res, [][]any{
		{"a", 2, 2, 4, 2.0, 1, 3, []any{int64(1), int64(3)}},
		{"b", 2, 1, 10, 10.0, 10, 10, []any{int64(10)}},
	})

	// Global aggregation over an empty match still returns one row.
	res = run(t, e, "MATCH (x:Missing) RETURN count(x) AS n, collect(x) AS xs, sum(x.v) AS s, min(x.v) AS lo")
	expectOrdered(t, res, [][]any{{0, []any{}, 0, nil}})

	// Aggregation combined with arithmetic in one item.
	res = run(t, e, "MATCH (p:P) RETURN count(*) + 1 AS cntPlus")
	expectOrdered(t, res, [][]any{{5}})

	// DISTINCT aggregation.
	res = run(t, e, "MATCH (p:P) RETURN count(DISTINCT p.g) AS groups")
	expectOrdered(t, res, [][]any{{2}})
}

func TestUnwindAndParameters(t *testing.T) {
	e := emptyEngine()
	res := runParams(t, e, "UNWIND $xs AS x RETURN x * 2 AS doubled", map[string]any{"xs": []any{1, 2, 3}})
	expectOrdered(t, res, [][]any{{2}, {4}, {6}})

	res = run(t, e, "UNWIND [] AS x RETURN x")
	if res.Len() != 0 {
		t.Errorf("unwinding an empty list should produce no rows")
	}
	res = run(t, e, "UNWIND null AS x RETURN x")
	if res.Len() != 0 {
		t.Errorf("unwinding null should produce no rows")
	}
	res = run(t, e, "UNWIND 7 AS x RETURN x")
	expectOrdered(t, res, [][]any{{7}})

	// Parameters in predicates and limits.
	run(t, e, "UNWIND range(1, 10) AS i CREATE (:Num {v: i})")
	res = runParams(t, e, "MATCH (n:Num) WHERE n.v > $min RETURN count(*) AS c", map[string]any{"min": 7})
	expectOrdered(t, res, [][]any{{3}})
	res = runParams(t, e, "MATCH (n:Num) RETURN n.v AS v ORDER BY v LIMIT $k", map[string]any{"k": 2})
	expectOrdered(t, res, [][]any{{1}, {2}})

	if _, err := e.Run("RETURN $missing", nil); err == nil {
		t.Errorf("missing parameter should be an error")
	}
}

func TestOrderSkipLimitDistinct(t *testing.T) {
	e := emptyEngine()
	run(t, e, "UNWIND [3, 1, 2, 3, 1] AS v CREATE (:N {v: v})")
	res := run(t, e, "MATCH (n:N) RETURN DISTINCT n.v AS v ORDER BY v DESC")
	expectOrdered(t, res, [][]any{{3}, {2}, {1}})
	res = run(t, e, "MATCH (n:N) RETURN n.v AS v ORDER BY v SKIP 1 LIMIT 2")
	expectOrdered(t, res, [][]any{{1}, {2}})
	// ORDER BY on an expression over a variable that is not projected.
	res = run(t, e, "MATCH (n:N) RETURN n.v AS v ORDER BY n.v * -1 LIMIT 1")
	expectOrdered(t, res, [][]any{{3}})
	// ORDER BY with nulls: nulls come last in ascending order.
	run(t, e, "CREATE (:N2 {v: 1}), (:N2)")
	res = run(t, e, "MATCH (n:N2) RETURN n.v AS v ORDER BY v")
	expectOrdered(t, res, [][]any{{1}, {nil}})
}

func TestUnionQueries(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Cat {name: 'Tom'}), (:Dog {name: 'Rex'}), (:Dog {name: 'Tom'})")
	res := run(t, e, "MATCH (c:Cat) RETURN c.name AS name UNION ALL MATCH (d:Dog) RETURN d.name AS name")
	expectBag(t, res, [][]any{{"Tom"}, {"Rex"}, {"Tom"}})
	res = run(t, e, "MATCH (c:Cat) RETURN c.name AS name UNION MATCH (d:Dog) RETURN d.name AS name")
	expectBag(t, res, [][]any{{"Tom"}, {"Rex"}})
	if _, err := e.Run("MATCH (c:Cat) RETURN c.name AS a UNION MATCH (d:Dog) RETURN d.name AS b", nil); err == nil {
		t.Errorf("UNION with different column names should fail")
	}
}

func TestSetRemoveDelete(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Person {name: 'Ann', age: 30})-[:KNOWS]->(:Person {name: 'Bob'})")
	run(t, e, "MATCH (p:Person {name: 'Ann'}) SET p.age = 31, p:Adult, p.city = 'Oslo'")
	res := run(t, e, "MATCH (p:Adult) RETURN p.name, p.age, p.city")
	expectOrdered(t, res, [][]any{{"Ann", 31, "Oslo"}})

	run(t, e, "MATCH (p:Person {name: 'Ann'}) SET p += {age: 32, hobby: 'chess'}")
	res = run(t, e, "MATCH (p:Person {name: 'Ann'}) RETURN p.age, p.hobby, p.city")
	expectOrdered(t, res, [][]any{{32, "chess", "Oslo"}})

	run(t, e, "MATCH (p:Person {name: 'Bob'}) SET p = {name: 'Bob', title: 'Dr'}")
	res = run(t, e, "MATCH (p:Person {name: 'Bob'}) RETURN p.title, p.age")
	expectOrdered(t, res, [][]any{{"Dr", nil}})

	run(t, e, "MATCH (p:Person {name: 'Ann'}) REMOVE p.hobby, p:Adult")
	res = run(t, e, "MATCH (p:Person {name: 'Ann'}) RETURN p.hobby, labels(p)")
	expectOrdered(t, res, [][]any{{nil, []any{"Person"}}})

	// Setting a relationship property.
	run(t, e, "MATCH (:Person {name: 'Ann'})-[k:KNOWS]->() SET k.since = 2001")
	res = run(t, e, "MATCH ()-[k:KNOWS]->() RETURN k.since")
	expectOrdered(t, res, [][]any{{2001}})

	// DELETE of a connected node requires DETACH.
	if _, err := e.Run("MATCH (p:Person {name: 'Ann'}) DELETE p", nil); err == nil {
		t.Fatalf("deleting a connected node without DETACH should fail")
	}
	run(t, e, "MATCH (p:Person {name: 'Ann'}) DETACH DELETE p")
	res = run(t, e, "MATCH (p:Person) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
	run(t, e, "MATCH ()-[r]-() DELETE r")
	run(t, e, "MATCH (n) DELETE n")
	res = run(t, e, "MATCH (n) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{0}})
}

func TestMergeSemantics(t *testing.T) {
	e := emptyEngine()
	// First MERGE creates, second matches.
	run(t, e, "MERGE (p:Person {name: 'Zoe'}) ON CREATE SET p.created = true ON MATCH SET p.matched = true")
	res := run(t, e, "MATCH (p:Person {name: 'Zoe'}) RETURN p.created, p.matched")
	expectOrdered(t, res, [][]any{{true, nil}})
	run(t, e, "MERGE (p:Person {name: 'Zoe'}) ON CREATE SET p.created = true ON MATCH SET p.matched = true")
	res = run(t, e, "MATCH (p:Person) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
	res = run(t, e, "MATCH (p:Person {name: 'Zoe'}) RETURN p.matched")
	expectOrdered(t, res, [][]any{{true}})

	// MERGE of a relationship pattern with bound endpoints.
	run(t, e, "CREATE (:City {name: 'Oslo'}), (:City {name: 'Bergen'})")
	run(t, e, "MATCH (a:City {name: 'Oslo'}), (b:City {name: 'Bergen'}) MERGE (a)-[:ROAD]->(b)")
	run(t, e, "MATCH (a:City {name: 'Oslo'}), (b:City {name: 'Bergen'}) MERGE (a)-[:ROAD]->(b)")
	res = run(t, e, "MATCH (:City)-[r:ROAD]->(:City) RETURN count(r) AS c")
	expectOrdered(t, res, [][]any{{1}})
}

func TestExpressionsInQueries(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, `RETURN 1 + 2 * 3 AS a, 'x' + 'y' AS b, [1,2,3][1] AS c,
		[1,2,3,4][1..3] AS d, {k: 41}.k + 1 AS e,
		CASE WHEN 1 > 2 THEN 'big' ELSE 'small' END AS f,
		[x IN range(1, 5) WHERE x % 2 = 1 | x * 10] AS g,
		size('hello') AS h, toUpper('ok') AS i, coalesce(null, 7) AS j,
		3 IN [1, 2, 3] AS k, NOT false AS l, 10 % 3 AS m, 2 ^ 3 AS n`)
	expectOrdered(t, res, [][]any{{
		7, "xy", 2, []any{int64(2), int64(3)}, 42, "small",
		[]any{int64(10), int64(30), int64(50)}, 5, "OK", 7, true, true, 1, 8.0,
	}})

	res = run(t, e, "RETURN 'Cypher' STARTS WITH 'Cy' AS a, 'Cypher' ENDS WITH 'er' AS b, 'Cypher' CONTAINS 'phe' AS c, 'Cypher' =~ 'C.*r' AS d")
	expectOrdered(t, res, [][]any{{true, true, true, true}})

	res = run(t, e, "RETURN null = null AS a, null IS NULL AS b, 1 <> null IS NULL AS c")
	expectOrdered(t, res, [][]any{{nil, true, true}})
}

func TestGraphFunctions(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (a {name: 'n1'})-[r:KNOWS]->(b) RETURN labels(a), type(r), r.since, id(a) = id(b) AS sameNode, keys(r), exists(a.name), exists(a.missing)")
	expectOrdered(t, res, [][]any{{[]any{"Teacher"}, "KNOWS", 1985, false, []any{"since"}, true, false}})

	res = run(t, e, "MATCH (a {name: 'n1'})-[r:KNOWS]->(b) RETURN startNode(r).name AS s, endNode(r).name AS t")
	expectOrdered(t, res, [][]any{{"n1", "n2"}})

	res = run(t, e, "MATCH (a {name: 'n1'}) RETURN properties(a)")
	want := map[string]any{"name": "n1"}
	got := rows(res)[0][0].(map[string]any)
	if len(got) != len(want) || got["name"] != "n1" {
		t.Errorf("properties() = %v", got)
	}
}

func TestNamedPathsAndPathFunctions(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH p = (a {name: 'n1'})-[:KNOWS*]->(b:Teacher) RETURN length(p) AS len, size(nodes(p)) AS nn, size(relationships(p)) AS nr ORDER BY len")
	expectOrdered(t, res, [][]any{
		{2, 3, 2},
		{3, 4, 3},
	})
	res = run(t, e, "MATCH p = (a {name: 'n1'})-[:KNOWS]->(b) RETURN [n IN nodes(p) | n.name] AS names")
	expectOrdered(t, res, [][]any{{[]any{"n1", "n2"}}})
}

func TestPatternPredicatesAndExists(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (r:Researcher) WHERE (r)-[:SUPERVISES]->(:Student) RETURN r.name ORDER BY r.name")
	expectOrdered(t, res, [][]any{{"Elin"}, {"Thor"}})
	res = run(t, e, "MATCH (r:Researcher) WHERE NOT (r)-[:SUPERVISES]->(:Student) RETURN r.name")
	expectOrdered(t, res, [][]any{{"Nils"}})
	res = run(t, e, "MATCH (r:Researcher) WHERE EXISTS((r)-[:AUTHORS]->()) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{2}})
}

func TestMultiPartPatternsAndCartesian(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	// Disconnected patterns produce a cartesian product.
	res := run(t, e, "MATCH (a:Teacher), (b:Student) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{3}})
	// Shared variables across parts join them.
	res = run(t, e, "MATCH (a)-[:KNOWS]->(b), (b)-[:KNOWS]->(c) RETURN a.name, b.name, c.name ORDER BY a.name")
	expectOrdered(t, res, [][]any{
		{"n1", "n2", "n3"},
		{"n2", "n3", "n4"},
	})
	// Relationship uniqueness applies across the parts of one MATCH
	// (relationship isomorphism over the pattern tuple).
	res = run(t, e, "MATCH (a)-[r1:KNOWS]->(b), (c)-[r2:KNOWS]->(d) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{6}}) // 3*3 minus the 3 pairs where r1 = r2
	// The same pattern split over two MATCH clauses is not subject to the
	// uniqueness restriction (it applies per clause).
	res = run(t, e, "MATCH (a)-[r1:KNOWS]->(b) MATCH (c)-[r2:KNOWS]->(d) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{9}})
}

func TestUndirectedAndIncomingPatterns(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (a {name: 'n2'})--(b) RETURN b.name ORDER BY b.name")
	expectOrdered(t, res, [][]any{{"n1"}, {"n3"}})
	res = run(t, e, "MATCH (a {name: 'n2'})<--(b) RETURN b.name")
	expectOrdered(t, res, [][]any{{"n1"}})
	res = run(t, e, "MATCH (a {name: 'n2'})-->(b) RETURN b.name")
	expectOrdered(t, res, [][]any{{"n3"}})
}

func TestReturnStarAndAliases(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (a {name: 'n1'})-[r:KNOWS]->(b) RETURN *")
	cols := res.Columns()
	if len(cols) != 3 {
		t.Fatalf("RETURN * should produce 3 columns, got %v", cols)
	}
	res = run(t, e, "MATCH (a {name: 'n1'}) RETURN a.name AS `weird name`")
	if res.Columns()[0] != "weird name" {
		t.Errorf("escaped alias wrong: %v", res.Columns())
	}
	// Implicit column names are the expression text (the paper's alpha
	// function).
	res = run(t, e, "MATCH (a {name: 'n1'}) RETURN a.name")
	if res.Columns()[0] != "a.name" {
		t.Errorf("implicit column name wrong: %v", res.Columns())
	}
}

func TestExplainAndPlanShape(t *testing.T) {
	g, _ := datasets.Citations()
	g.CreateIndex("Researcher", "name")
	e := NewEngine(g, Options{})
	plan, err := e.Explain("MATCH (r:Researcher {name: 'Elin'})-[:AUTHORS]->(p:Publication) RETURN p.acmid")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeIndexSeek") {
		t.Errorf("with an index on :Researcher(name) the plan should use NodeIndexSeek:\n%s", plan)
	}
	if !strings.Contains(plan, "Expand") {
		t.Errorf("plan should contain an Expand operator:\n%s", plan)
	}
	plan, err = e.Explain("MATCH (r:Researcher) RETURN r")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeByLabelScan") {
		t.Errorf("label scan expected:\n%s", plan)
	}
	plan, err = e.Explain("MATCH (n) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "AllNodesScan") {
		t.Errorf("all nodes scan expected:\n%s", plan)
	}
}

func TestErrorReporting(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	bad := []string{
		"MATCH (n) RETURN m",                             // unknown variable
		"MATCH (n) WHERE count(n) > 1 RETURN n",          // aggregate in WHERE
		"MATCH (n)",                                      // no RETURN
		"MATCH (n) RETURN n LIMIT -1",                    // negative limit
		"MATCH (a)-[r]->(b)-[r]->(c) RETURN a",           // reused relationship variable
		"CREATE (a)-[:X]-(b)",                            // undirected CREATE
		"CREATE (a)-[:X|Y]->(b)",                         // multiple types in CREATE
		"MATCH (n) RETURN n.name AS x, n.age AS x",       // duplicate column
		"RETURN unknownFunction(1)",                      // unknown function
		"MATCH (n) RETURN *, n UNION MATCH (m) RETURN m", // union column mismatch
		"MATCH (n) WITH n RETURN x",                      // variable dropped by WITH
		"RETURN $p",                                      // missing parameter
		"MATCH (n) DELETE n.name",                        // deleting a non-entity
	}
	for _, q := range bad {
		if _, err := e.Run(q, nil); err == nil {
			t.Errorf("query should fail: %s", q)
		}
	}
}

func TestMorphismModes(t *testing.T) {
	// Two parallel KNOWS relationships between a and b.
	build := func() *Engine {
		e := emptyEngine()
		run(t, e, "CREATE (a:P {name: 'a'})-[:KNOWS]->(b:P {name: 'b'}), (a)-[:KNOWS]->(b)")
		return e
	}
	// Pattern with two relationships: under edge isomorphism the two
	// relationship variables must bind distinct relationships.
	q := "MATCH (x)-[r1:KNOWS]->(y)<-[r2:KNOWS]-(x) RETURN count(*) AS c"

	e := build()
	res := run(t, e, q)
	expectOrdered(t, res, [][]any{{2}}) // r1,r2 in both orders

	eh := NewEngine(e.Graph(), Options{Morphism: Homomorphism})
	res = run(t, eh, q)
	expectOrdered(t, res, [][]any{{4}}) // r1 and r2 may coincide

	en := NewEngine(e.Graph(), Options{Morphism: NodeIsomorphism})
	res = run(t, en, "MATCH (x)-[:KNOWS]->(y) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{2}})
}

func TestValueRoundTripThroughQuery(t *testing.T) {
	e := emptyEngine()
	res := runParams(t, e, "RETURN $m.name AS name, $m.tags[0] AS tag, $n AS n",
		map[string]any{
			"m": map[string]any{"name": "Cypher", "tags": []any{"graph", "query"}},
			"n": nil,
		})
	expectOrdered(t, res, [][]any{{"Cypher", "graph", nil}})
}

func TestResultTableRendering(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (r:Researcher) RETURN r.name AS name ORDER BY name")
	s := res.Table.String()
	if !strings.Contains(s, "| name") || !strings.Contains(s, "'Elin'") {
		t.Errorf("table rendering unexpected:\n%s", s)
	}
}

func TestQueryCacheReuse(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	for i := 0; i < 3; i++ {
		res := run(t, e, "MATCH (t:Teacher) RETURN count(*) AS c")
		expectOrdered(t, res, [][]any{{3}})
	}
}

func TestFigure4VarLengthFromTable(t *testing.T) {
	// The Example 4.6 scenario driven through UNWIND instead of WHERE ... IN.
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := runParams(t, e, `
		UNWIND $names AS name
		MATCH (x {name: name})-[:KNOWS*]->(y)
		RETURN x, y`, map[string]any{"names": []any{"n1", "n3"}})
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nodes["n2"].ID()},
		{nodes["n1"].ID(), nodes["n3"].ID()},
		{nodes["n1"].ID(), nodes["n4"].ID()},
		{nodes["n3"].ID(), nodes["n4"].ID()},
	})
}
