package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// explainGraph is the fixed dataset behind the golden EXPLAIN tests: 10
// Company nodes (cid 0..9), 100 Person nodes (age 0..99, name p00..p99, one
// WORKS_AT relationship each), indexes on (Person, age) and (Person, name).
func explainGraph() *graph.Graph {
	g := graph.New()
	companies := make([]*graph.Node, 10)
	for i := range companies {
		companies[i] = g.CreateNode([]string{"Company"}, map[string]value.Value{"cid": value.NewInt(int64(i))})
	}
	for i := 0; i < 100; i++ {
		p := g.CreateNode([]string{"Person"}, map[string]value.Value{
			"age":  value.NewInt(int64(i)),
			"name": value.NewString(fmt.Sprintf("p%02d", i)),
		})
		if _, err := g.CreateRelationship(p, companies[i%10], "WORKS_AT", nil); err != nil {
			panic(err)
		}
	}
	g.CreateIndex("Person", "age")
	g.CreateIndex("Person", "name")
	return g
}

// TestGoldenExplainPlans pins the exact EXPLAIN output — operator shape,
// access-path choice and the cost model's estimated rows/cost per operator —
// for the representative query shapes of the cost-based planner: range,
// prefix, IN and equality seeks, label-in-WHERE selection, residual filters,
// seek-vs-scan choice with and without an index, expansion direction, and
// ExpandInto. A diff here means the planner changed its mind; update the
// golden only after confirming the new plan is intentional.
func TestGoldenExplainPlans(t *testing.T) {
	e := NewEngine(explainGraph(), Options{})
	cases := []struct {
		query string
		want  string
	}{
		{
			query: "MATCH (n:Person) WHERE n.age > 90 RETURN n",
			want: `+ SelectColumns(n) [rows~25 cost~75]
  + Project(n AS n) [rows~25 cost~50]
    + NodeIndexRangeSeek(n:Person {age > 90}) [rows~25 cost~25]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexRangeSeek(n:Person {age > 90}), unordered merge)
vectorized: eligible (batched NodeIndexRangeSeek(n:Person {age > 90}) -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person) WHERE n.age > 90 AND n.age <= 95 RETURN count(n) AS c",
			want: `+ SelectColumns(c) [rows~1.0 cost~23]
  + SelectColumns(c) [rows~1.0 cost~22]
    + Project(  agg#1 AS c) [rows~1.0 cost~21]
      + Aggregate(  agg#1: count(n)) [rows~1.0 cost~20]
        + NodeIndexRangeSeek(n:Person {age > 90, age <= 95}) [rows~10 cost~10]
          + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexRangeSeek(n:Person {age > 90, age <= 95}), unordered merge, partial aggregation)
vectorized: row-at-a-time (Aggregate materializes groups row-at-a-time)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person) WHERE n.name STARTS WITH 'p1' RETURN n",
			want: `+ SelectColumns(n) [rows~5.0 cost~15]
  + Project(n AS n) [rows~5.0 cost~10]
    + NodeIndexPrefixSeek(n:Person {name STARTS WITH 'p1'}) [rows~5.0 cost~5.0]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexPrefixSeek(n:Person {name STARTS WITH 'p1'}), unordered merge)
vectorized: eligible (batched NodeIndexPrefixSeek(n:Person {name STARTS WITH 'p1'}) -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person) WHERE n.age IN [1, 2, 3] RETURN n",
			want: `+ SelectColumns(n) [rows~3.0 cost~9.0]
  + Project(n AS n) [rows~3.0 cost~6.0]
    + NodeIndexSeek(n:Person {age IN [1, 2, 3]}) [rows~3.0 cost~3.0]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexSeek(n:Person {age IN [1, 2, 3]}), unordered merge)
vectorized: eligible (batched NodeIndexSeek(n:Person {age IN [1, 2, 3]}) -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person {age: 30}) RETURN n",
			want: `+ SelectColumns(n) [rows~1.0 cost~3.0]
  + Project(n AS n) [rows~1.0 cost~2.0]
    + NodeIndexSeek(n:Person {age = 30}) [rows~1.0 cost~1.0]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexSeek(n:Person {age = 30}), unordered merge)
vectorized: eligible (batched NodeIndexSeek(n:Person {age = 30}) -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person) WHERE n.age > 90 AND n.name <> 'p95' RETURN n",
			want: `+ SelectColumns(n) [rows~12 cost~75]
  + Project(n AS n) [rows~12 cost~62]
    + Filter(n.name <> 'p95') [rows~12 cost~50]
      + NodeIndexRangeSeek(n:Person {age > 90}) [rows~25 cost~25]
        + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexRangeSeek(n:Person {age > 90}), unordered merge)
vectorized: eligible (batched NodeIndexRangeSeek(n:Person {age > 90}) -> filter -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n) WHERE n:Person AND n.age = 5 RETURN n",
			want: `+ SelectColumns(n) [rows~1.0 cost~3.0]
  + Project(n AS n) [rows~1.0 cost~2.0]
    + NodeIndexSeek(n:Person {age = 5}) [rows~1.0 cost~1.0]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeIndexSeek(n:Person {age = 5}), unordered merge)
vectorized: eligible (batched NodeIndexSeek(n:Person {age = 5}) -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (c:Company) WHERE c.cid > 3 RETURN c",
			want: `+ SelectColumns(c) [rows~5.0 cost~30]
  + Project(c AS c) [rows~5.0 cost~25]
    + Filter(c.cid > 3) [rows~5.0 cost~20]
      + NodeByLabelScan(c:Company) [rows~10 cost~10]
        + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeByLabelScan(c:Company), unordered merge)
vectorized: eligible (batched NodeByLabelScan(c:Company) -> filter -> project -> select)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (p:Person)-[:WORKS_AT]->(c:Company) RETURN c.cid AS cid, count(p) AS n",
			want: `+ SelectColumns(cid, n) [rows~1.0 cost~36]
  + SelectColumns(cid, n) [rows~1.0 cost~35]
    + Project(cid AS cid,   agg#1 AS n) [rows~1.0 cost~34]
      + Aggregate(cid,   agg#1: count(p)) [rows~1.0 cost~33]
        + Filter(p:Person) [rows~4.5 cost~28]
          + Expand((c)<--[  rel#1:WORKS_AT](p)) [rows~9.1 cost~19]
            + NodeByLabelScan(c:Company) [rows~10 cost~10]
              + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeByLabelScan(c:Company), unordered merge, partial aggregation)
vectorized: eligible (batched NodeByLabelScan(c:Company) -> expand -> filter; Aggregate materializes groups row-at-a-time)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (a:Person {age: 1}) MATCH (b:Person {age: 11}) MATCH (a)-[:WORKS_AT]->(c)<-[:WORKS_AT]-(b) RETURN count(c) AS c",
			want: `+ SelectColumns(c) [rows~1.0 cost~6.8]
  + SelectColumns(c) [rows~1.0 cost~5.8]
    + Project(  agg#1 AS c) [rows~1.0 cost~4.8]
      + Aggregate(  agg#1: count(c)) [rows~1.0 cost~3.8]
        + ExpandInto((c)<--[  rel#2:WORKS_AT](b)) [rows~0.0 cost~3.8]
          + Expand((a)-->[  rel#1:WORKS_AT](c)) [rows~0.9 cost~2.9]
            + NodeIndexSeek(b:Person {age = 11}) [rows~1.0 cost~2.0]
              + NodeIndexSeek(a:Person {age = 1}) [rows~1.0 cost~1.0]
                + Start [rows~1.0 cost~0.0]
parallel: serial (no per-row work above the scan)
vectorized: row-at-a-time (NodeIndexSeek(b:Person {age = 11}) keeps the row path)
runtime parallelism: 1
`,
		},
		{
			query: "MATCH (n:Person) RETURN n",
			want: `+ SelectColumns(n) [rows~100 cost~300]
  + Project(n AS n) [rows~100 cost~200]
    + NodeByLabelScan(n:Person) [rows~100 cost~100]
      + Start [rows~1.0 cost~0.0]
parallel: eligible (morsel-driven NodeByLabelScan(n:Person), unordered merge)
vectorized: eligible (batched NodeByLabelScan(n:Person) -> project -> select)
runtime parallelism: 1
`,
		},
	}
	for _, c := range cases {
		got, err := e.Explain(c.query)
		if err != nil {
			t.Fatalf("explain %q: %v", c.query, err)
		}
		if got != c.want {
			t.Errorf("EXPLAIN drifted for %q\ngot:\n%s\nwant:\n%s", c.query, got, c.want)
		}
	}
}

// Estimates must be recomputed when the data changes: after the graph grows,
// a recompiled plan reflects the new statistics (the plan cache invalidates
// on the mutation epoch).
func TestExplainEstimatesTrackMutations(t *testing.T) {
	g := graph.New()
	e := NewEngine(g, Options{})
	g.CreateIndex("P", "k")
	run(t, e, "CREATE (:P {k: 1})")
	before, err := e.Explain("MATCH (n:P) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 99; i++ {
		run(t, e, "CREATE (:P {k: 2})")
	}
	after, err := e.Explain("MATCH (n:P) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Errorf("estimates should move with the data:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}
