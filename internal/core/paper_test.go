package core

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/value"
)

// The tests in this file reproduce, one by one, the figures, tables and
// worked examples of the paper (experiments E1-E15 in DESIGN.md).

// E1: the Figure 1 data graph.
func TestFigure1Graph(t *testing.T) {
	g, nodes := datasets.Citations()
	s := g.Stats()
	if s.NodeCount != 10 || s.RelationshipCount != 11 {
		t.Fatalf("Figure 1 graph has %d nodes and %d relationships, want 10 and 11", s.NodeCount, s.RelationshipCount)
	}
	if s.LabelCardinality("Researcher") != 3 || s.LabelCardinality("Publication") != 5 || s.LabelCardinality("Student") != 2 {
		t.Errorf("label cardinalities wrong: %+v", s.NodesByLabel)
	}
	if s.TypeCardinality("CITES") != 5 || s.TypeCardinality("AUTHORS") != 3 || s.TypeCardinality("SUPERVISES") != 3 {
		t.Errorf("type cardinalities wrong: %+v", s.RelationshipsByType)
	}
	if nodes["n1"].Property("name") != value.NewString("Nils") {
		t.Errorf("n1 should be Nils")
	}
}

// sectionThreeQuery is the worked example of Section 3.
const sectionThreeQuery = `
	MATCH (r:Researcher)
	OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
	WITH r, count(s) AS studentsSupervised
	MATCH (r)-[:AUTHORS]->(p1:Publication)
	OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
	RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`

// E6: the final result table of the Section 3 query.
func TestSection3FinalResult(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, sectionThreeQuery)
	if len(res.Columns()) != 3 || res.Columns()[0] != "r.name" || res.Columns()[1] != "studentsSupervised" || res.Columns()[2] != "citedCount" {
		t.Fatalf("columns = %v", res.Columns())
	}
	expectBag(t, res, [][]any{
		{"Nils", 0, 3},
		{"Elin", 2, 1},
	})
}

// E2: Figure 2(a) — the bindings after the OPTIONAL MATCH of line 2.
func TestSection3Figure2a(t *testing.T) {
	g, nodes := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		RETURN r, s`)
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nil},
		{nodes["n6"].ID(), nodes["n7"].ID()},
		{nodes["n6"].ID(), nodes["n8"].ID()},
		{nodes["n10"].ID(), nodes["n7"].ID()},
	})
}

// E3: Figure 2(b) — the bindings after the WITH of line 3.
func TestSection3Figure2b(t *testing.T) {
	g, nodes := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		RETURN r, studentsSupervised`)
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), 0},
		{nodes["n6"].ID(), 2},
		{nodes["n10"].ID(), 1},
	})
}

// E4: the intermediate table after the MATCH of line 4 (Thor disappears
// because he has not authored any publication).
func TestSection3AuthorsTable(t *testing.T) {
	g, nodes := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		MATCH (r)-[:AUTHORS]->(p1:Publication)
		RETURN r, studentsSupervised, p1`)
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), 0, nodes["n2"].ID()},
		{nodes["n6"].ID(), 2, nodes["n5"].ID()},
		{nodes["n6"].ID(), 2, nodes["n9"].ID()},
	})
}

// E5: the intermediate table after the OPTIONAL MATCH of line 5, including
// the duplicate rows marked with a dagger in the paper (n9 is reachable from
// n2 through two different citation chains), demonstrating bag semantics of
// variable-length matching.
func TestSection3CitesTable(t *testing.T) {
	g, nodes := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		MATCH (r)-[:AUTHORS]->(p1:Publication)
		OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
		RETURN r, studentsSupervised, p1, p2`)
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), 0, nodes["n2"].ID(), nodes["n4"].ID()},
		{nodes["n1"].ID(), 0, nodes["n2"].ID(), nodes["n9"].ID()}, // † via n4
		{nodes["n1"].ID(), 0, nodes["n2"].ID(), nodes["n5"].ID()},
		{nodes["n1"].ID(), 0, nodes["n2"].ID(), nodes["n9"].ID()}, // † via n5
		{nodes["n6"].ID(), 2, nodes["n5"].ID(), nodes["n9"].ID()},
		{nodes["n6"].ID(), 2, nodes["n9"].ID(), nil},
	})
}

// E7: the data-center industry query of Section 3. svc-, the most depended
// upon service, is returned with its transitive dependent count.
func TestIndustryDataCenter(t *testing.T) {
	g := datasets.DataCenter(datasets.DataCenterConfig{Services: 40, MaxDeps: 2, Seed: 7})
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
		RETURN svc, count(DISTINCT dep) AS dependents
		ORDER BY dependents DESC
		LIMIT 1`)
	if res.Len() != 1 {
		t.Fatalf("expected exactly one row, got %d", res.Len())
	}
	top := rows(res)[0]
	topCount := top[1].(int64)
	// Cross-check: no service can have more transitive dependents than the
	// winner.
	all := run(t, e, `
		MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
		RETURN svc, count(DISTINCT dep) AS dependents`)
	for _, row := range rows(all) {
		if row[1].(int64) > topCount {
			t.Fatalf("service %v has %v dependents, more than the reported maximum %v", row[0], row[1], topCount)
		}
	}
	if topCount < 1 {
		t.Fatalf("the most depended-upon service should have at least one dependent")
	}
}

// E8: the fraud-detection industry query of Section 3 (account holders
// sharing personal information).
func TestIndustryFraudRing(t *testing.T) {
	e := emptyEngine()
	// Build a small, fully controlled fraud scenario: two account holders
	// share an SSN, a third is clean.
	run(t, e, `
		CREATE (a1:AccountHolder {uniqueId: 'acc-1'}),
		       (a2:AccountHolder {uniqueId: 'acc-2'}),
		       (a3:AccountHolder {uniqueId: 'acc-3'}),
		       (ssn:SSN {value: 111}),
		       (ph:PhoneNumber {value: 555}),
		       (addr:Address {value: 'Main St'}),
		       (a1)-[:HAS]->(ssn),
		       (a2)-[:HAS]->(ssn),
		       (a1)-[:HAS]->(ph),
		       (a3)-[:HAS]->(addr)`)
	res := run(t, e, `
		MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
		WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
		WITH pInfo,
		     collect(accHolder.uniqueId) AS accountHolders,
		     count(*) AS fraudRingCount
		WHERE fraudRingCount > 1
		RETURN accountHolders, labels(pInfo) AS personalInformation, fraudRingCount`)
	if res.Len() != 1 {
		t.Fatalf("expected one fraud ring, got %d rows: %v", res.Len(), rows(res))
	}
	row := rows(res)[0]
	holders := row[0].([]any)
	if len(holders) != 2 {
		t.Fatalf("fraud ring should contain two account holders: %v", holders)
	}
	labels := row[1].([]any)
	if len(labels) != 1 || labels[0] != "SSN" {
		t.Errorf("personalInformation = %v, want [SSN]", labels)
	}
	if row[2] != int64(2) {
		t.Errorf("fraudRingCount = %v, want 2", row[2])
	}
}

// E9: Example 4.1 — the formal representation of the Figure 1 graph.
func TestExample41Representation(t *testing.T) {
	g, nodes := datasets.Citations()
	// src(r1) = n1, tgt(r1) = n2, tau(r1) = AUTHORS.
	rels := g.Relationships()
	r1 := rels[0]
	if r1.StartNodeID() != nodes["n1"].ID() || r1.EndNodeID() != nodes["n2"].ID() || r1.RelType() != "AUTHORS" {
		t.Errorf("r1 wrong: %v -> %v (%s)", r1.StartNodeID(), r1.EndNodeID(), r1.RelType())
	}
	// iota(n2, acmid) = 220; lambda(n7) = {Student}.
	if nodes["n2"].Property("acmid") != value.NewInt(220) {
		t.Errorf("iota(n2, acmid) wrong")
	}
	if labels := nodes["n7"].Labels(); len(labels) != 1 || labels[0] != "Student" {
		t.Errorf("lambda(n7) wrong: %v", labels)
	}
}

// E10: Example 4.2 — node pattern satisfaction over the Figure 4 graph.
func TestExample42(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	// (x:Teacher) is satisfied by n1, n3 and n4 but not by n2.
	res := run(t, e, "MATCH (x:Teacher) RETURN x")
	expectBag(t, res, [][]any{
		{nodes["n1"].ID()}, {nodes["n3"].ID()}, {nodes["n4"].ID()},
	})
	// (y) is satisfied by every node.
	res = run(t, e, "MATCH (y) RETURN count(y) AS n")
	expectOrdered(t, res, [][]any{{4}})
}

// E11: Example 4.3 — the rigid pattern (x:Teacher)-[:KNOWS*2]->(y) is
// satisfied by the path n1 r1 n2 r2 n3 with x=n1, y=n3.
func TestExample43(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x, y")
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nodes["n3"].ID()},
	})
}

// E12: Example 4.4 — the variable-length pattern
// (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) matches paths of
// different lengths and admits several assignments for the same path.
func TestExample44(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) RETURN x, z, y")
	expectBag(t, res, [][]any{
		// p1 = n1 r1 n2 r2 n3 with z = n2 (both segments of length 1).
		{nodes["n1"].ID(), nodes["n2"].ID(), nodes["n3"].ID()},
		// p2 = n1 r1 n2 r2 n3 r3 n4 with z = n2 (first segment 1, second 2).
		{nodes["n1"].ID(), nodes["n2"].ID(), nodes["n4"].ID()},
		// p2 with z = n3 (first segment 2, second 1).
		{nodes["n1"].ID(), nodes["n3"].ID(), nodes["n4"].ID()},
	})
}

// E13: Example 4.5 — with the middle node anonymous, the same path can
// satisfy the pattern in two ways, so two copies of {x: n1, y: n4} are
// returned (bag semantics).
func TestExample45(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x, y")
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nodes["n3"].ID()},
		{nodes["n1"].ID(), nodes["n4"].ID()},
		{nodes["n1"].ID(), nodes["n4"].ID()},
	})
}

// E14: Example 4.6 — MATCH (x)-[:KNOWS*]->(y) evaluated over the driving
// table containing x = n1 and x = n3.
func TestExample46(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (x) WHERE x.name IN ['n1', 'n3']
		MATCH (x)-[:KNOWS*]->(y)
		RETURN x, y`)
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nodes["n2"].ID()},
		{nodes["n1"].ID(), nodes["n3"].ID()},
		{nodes["n1"].ID(), nodes["n4"].ID()},
		{nodes["n3"].ID(), nodes["n4"].ID()},
	})
}

// E15: the complexity discussion of Section 4.2 — on a graph with a single
// node and a single self-loop, the pattern (x)-[*0..]->(x) returns exactly
// two matches (traversing the loop zero times and once), not infinitely
// many, because relationships cannot be repeated within a match.
func TestSelfLoopTwoMatches(t *testing.T) {
	g := datasets.SelfLoop()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (x)-[*0..]->(x) RETURN count(*) AS matches")
	expectOrdered(t, res, [][]any{{2}})

	// Under homomorphism semantics the same pattern has unboundedly many
	// matches; the engine caps the expansion depth to keep the result finite,
	// yielding depth+1 matches.
	eh := NewEngine(g, Options{Morphism: Homomorphism, MaxVarLengthDepth: 10})
	res = run(t, eh, "MATCH (x)-[*0..]->(x) RETURN count(*) AS matches")
	expectOrdered(t, res, [][]any{{11}})
}

// Example 4.4's relationship property pattern from Section 4.2:
// -[:KNOWS*1 {since: 1985}]- and -[:KNOWS {since: 1985}]- match the same
// single relationship.
func TestRelationshipPropertyPatterns(t *testing.T) {
	g, nodes := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, "MATCH (a)-[:KNOWS*1 {since: 1985}]-(b) RETURN a, b")
	expectBag(t, res, [][]any{
		{nodes["n1"].ID(), nodes["n2"].ID()},
		{nodes["n2"].ID(), nodes["n1"].ID()},
	})
	res2 := run(t, e, "MATCH (a)-[:KNOWS {since: 1985}]-(b) RETURN a, b")
	expectBag(t, res2, [][]any{
		{nodes["n1"].ID(), nodes["n2"].ID()},
		{nodes["n2"].ID(), nodes["n1"].ID()},
	})
}
