// Package core ties the Cypher pipeline together: parsing, semantic
// analysis, planning and execution. It is the engine behind the public
// cypher package; each query is compiled into a plan over the target graph
// and evaluated starting from the unit table, exactly as the paper's
// semantics prescribes (output(Q, G) = [[Q]]_G(T())).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/result"
	"repro/internal/semantic"
	"repro/internal/storage"
	_ "repro/internal/temporal" // registers the Cypher 10 temporal functions
	"repro/internal/value"
)

// Morphism re-exports the execution engine's pattern-matching modes.
type Morphism = exec.Morphism

// Pattern-matching modes (see Section 8 of the paper, "configurable
// morphisms").
const (
	EdgeIsomorphism = exec.EdgeIsomorphism
	Homomorphism    = exec.Homomorphism
	NodeIsomorphism = exec.NodeIsomorphism
)

// Options configures an Engine.
type Options struct {
	// Morphism selects the pattern-matching semantics (default:
	// relationship isomorphism, Cypher's semantics).
	Morphism Morphism
	// MaxVarLengthDepth caps unbounded variable-length expansion in
	// homomorphism mode (default 15).
	MaxVarLengthDepth int
	// Parallelism is the maximum number of workers a single read-only query
	// may use (morsel-driven execution of the scan→filter→project pipeline).
	// Zero or one keeps every query on the serial path. Plans that are not
	// parallel-safe (updating queries, UNION, LIMIT without a preceding
	// barrier, ...) always run serially.
	Parallelism int
	// MorselSize overrides the number of scan rows per parallel work unit
	// (default graph.DefaultMorselSize).
	MorselSize int
	// BatchSize overrides the number of rows per batch in the vectorized
	// pipeline (default exec.DefaultBatchSize, aligned with the morsel
	// size). Negative disables vectorized execution.
	BatchSize int
	// DefaultTimeout bounds every query's wall-clock execution time unless a
	// RunOptions override says otherwise. Zero means no engine-level
	// deadline (the caller's context may still carry one).
	DefaultTimeout time.Duration
	// MemoryBudget bounds the bytes of materialized state (sort buffers,
	// aggregation groups, distinct sets, result rows) a single query may
	// accumulate; exceeding it fails that query with a
	// *exec.ResourceExhaustedError. Zero means unlimited.
	MemoryBudget int64
}

// Engine executes Cypher queries against a single property graph. It is safe
// for concurrent use: queries are classified at parse time as read-only or
// mutating (from the AST's clause list). Read-only queries pin an immutable
// published version of the graph (MVCC, see graph.VersionedStore) for their
// whole execution and never take the write lock, so a slow write query no
// longer stalls the read fleet; mutating queries serialize among themselves
// and publish their result atomically at WAL group-commit.
type Engine struct {
	// writeMu serializes mutators: write queries, index creation, imports,
	// checkpoints and Close. Readers never take it. Snapshot stability for
	// readers comes from the versioned store instead: a pinned version is
	// not mutated until every pin on it is released, which is what makes the
	// deliberately lock-free entity accessors (Node.Property, Labels,
	// adjacency) memory-safe. All concurrent graph access must go through
	// the engine; direct store access is safe only single-threaded or
	// externally synchronized (graph.Graph's RWMutex guards the store's own
	// maps and indexes, not the entities they point to).
	writeMu sync.Mutex
	graph   *graph.Graph
	// versions is the MVCC store over the graph: readers pin the published
	// version, writers prepare against the primary and publish at commit.
	versions *graph.VersionedStore
	opts     Options

	// astMu guards astCache, which maps query text to parsed and
	// semantically checked ASTs. Parsing does not depend on the graph, so
	// these entries never need invalidation.
	astMu    sync.Mutex
	astCache map[string]*ast.Query

	// plans caches compiled plans keyed by query text, validated against
	// the graph's mutation epoch (see plancache.go). A hot query skips
	// lexer, parser, semantic analysis and planning entirely.
	plans *planCache

	// durable, when set, is the persistence layer: the engine's mutation
	// hook journals every change into it, and the engine group-commits the
	// journal at the end of each write query (still under the write lock, so
	// the WAL's batch boundaries are exactly the query boundaries). It is an
	// atomic pointer because leader election swaps it at promotion/demotion
	// while readers (the mutation hook, Stats) may be concurrently loading it.
	durable atomic.Pointer[storage.Store]

	// commitHook, when set, runs inside the write path after the WAL append
	// and before the new version is published. It is a seam for the
	// crash-recovery tests (kill the process in the append/publish window)
	// and a natural tap point for future replication. Set before sharing.
	commitHook func()

	// role distinguishes a writable engine from a read-only replica (and a
	// replica that currently knows no leader). nil means writer. See
	// replicate.go for the transitions; an atomic pointer because elections
	// flip the role while queries are in flight.
	role atomic.Pointer[replicaRole]

	// fence is the newest election term this engine has acknowledged;
	// ApplyReplicatedTerm refuses batches from older terms (a deposed
	// leader's late writes). See replicate.go.
	fence atomic.Uint64

	// gov holds the engine-level governance counters (see GovernanceStats).
	// All atomic; the serving layer's admission controller contributes the
	// queue-side numbers.
	gov govCounters
}

// govCounters are the engine's query-lifecycle counters.
type govCounters struct {
	inFlight         atomic.Int64
	canceled         atomic.Uint64
	deadlineExceeded atomic.Uint64
	memoryExhausted  atomic.Uint64
	panicsRecovered  atomic.Uint64
	peakQueryBytes   atomic.Int64
}

// GovernanceStats is a snapshot of the query-lifecycle counters. The engine
// fills the execution-side fields; serving layers running an admission
// controller (cmd/cypher-serve) fill the queue-side fields before rendering.
type GovernanceStats struct {
	// InFlight is the number of queries currently executing in the engine.
	InFlight int64
	// Queued is the number of requests waiting in the admission queue.
	Queued int64
	// Admitted counts requests that made it past admission control.
	Admitted uint64
	// Rejected counts requests refused by admission control (queue full or
	// wait deadline exceeded).
	Rejected uint64
	// Canceled counts queries stopped by caller cancellation (client
	// disconnect, explicit cancel).
	Canceled uint64
	// DeadlineExceeded counts queries killed by a deadline.
	DeadlineExceeded uint64
	// MemoryExhausted counts queries killed by their memory budget.
	MemoryExhausted uint64
	// PanicsRecovered counts operator panics contained at the query boundary.
	PanicsRecovered uint64
	// PeakQueryBytes is the largest materialized-byte high-water mark any
	// single governed query has reached.
	PeakQueryBytes int64
}

// GovernanceStats returns the engine's current governance counters (the
// queue-side fields are zero; serving layers overlay them).
func (e *Engine) GovernanceStats() GovernanceStats {
	return GovernanceStats{
		InFlight:         e.gov.inFlight.Load(),
		Canceled:         e.gov.canceled.Load(),
		DeadlineExceeded: e.gov.deadlineExceeded.Load(),
		MemoryExhausted:  e.gov.memoryExhausted.Load(),
		PanicsRecovered:  e.gov.panicsRecovered.Load(),
		PeakQueryBytes:   e.gov.peakQueryBytes.Load(),
	}
}

// NewEngine creates an engine over the graph. It installs itself as the
// graph's mutation hook (feeding the WAL journal and the MVCC replica
// backlog), so a graph must not be wrapped by two live engines at once.
func NewEngine(g *graph.Graph, opts Options) *Engine {
	e := &Engine{
		graph:    g,
		versions: graph.NewVersionedStore(g),
		opts:     opts,
		astCache: map[string]*ast.Query{},
		plans:    newPlanCache(0),
	}
	g.SetMutationHook(e.onMutation)
	return e
}

// onMutation is the graph's mutation hook: it runs inside the graph's write
// lock, in commit order, and fans each record out to the WAL journal (when
// durable) and the MVCC replica backlog.
func (e *Engine) onMutation(m graph.Mutation) {
	if d := e.durable.Load(); d != nil {
		d.Record(m)
	}
	e.versions.Capture(m)
}

// Graph returns the engine's underlying graph — the MVCC primary, whose
// identity is stable for the engine's lifetime.
func (e *Engine) Graph() *graph.Graph { return e.graph }

// MVCCStats reports the versioned store's counters: published epoch, version
// retention, active reader pins, writer drain waits.
func (e *Engine) MVCCStats() graph.MVCCStats { return e.versions.Stats() }

// SetCommitHook installs fn to run inside the write path between the WAL
// append and the version publish. Call before the engine is shared between
// goroutines. Used by the crash tests to die in that exact window.
func (e *Engine) SetCommitHook(fn func()) { e.commitHook = fn }

// SetDurability attaches an opened storage layer; from here on the engine's
// mutation hook journals every change into it. Call before the engine is
// shared between goroutines (recovery must already have happened, so
// replayed mutations are not re-journaled).
func (e *Engine) SetDurability(s *storage.Store) {
	e.durable.Store(s)
}

// Durability returns the engine's storage layer, or nil for a purely
// in-memory engine.
func (e *Engine) Durability() *storage.Store { return e.durable.Load() }

// Checkpoint writes a point-in-time snapshot and truncates the WAL. It holds
// the write lock: concurrent readers keep running (the snapshot only reads
// the primary, which is the published head between writes), writers wait for
// the snapshot. A no-op without a storage layer.
func (e *Engine) Checkpoint() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	d := e.durable.Load()
	if d == nil {
		return nil
	}
	return d.Checkpoint(e.graph)
}

// Close flushes and closes the storage layer (if any). The engine must not
// run further queries afterwards.
func (e *Engine) Close() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	d := e.durable.Load()
	if d == nil {
		return nil
	}
	return d.Close()
}

// CreateIndex declares a property index under the engine's write discipline,
// journaling and publishing it like any other mutation.
func (e *Engine) CreateIndex(label, property string) error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.versions.BeginWrite()
	defer e.versions.Publish()
	e.graph.CreateIndex(label, property)
	err := e.commitDurable()
	if e.commitHook != nil {
		e.commitHook()
	}
	return err
}

// commitDurable group-commits the journaled mutations of the current write.
// Callers hold the write lock.
func (e *Engine) commitDurable() error {
	d := e.durable.Load()
	if d == nil {
		return nil
	}
	return d.Commit()
}

// ImportFrom copies the contents of src (labels, properties, relationships,
// indexes) into the engine's graph, remapping identifiers. It is used to
// seed a freshly created durable graph from an example dataset; the copy is
// journaled and committed like one big write query — including on error,
// since partially-imported entities are already visible in memory and the
// WAL must mirror them (the same no-rollback contract as Run).
func (e *Engine) ImportFrom(src *graph.Graph) error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.versions.BeginWrite()
	defer e.versions.Publish()
	err := e.importLocked(src)
	if cerr := e.commitDurable(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (e *Engine) importLocked(src *graph.Graph) error {
	for _, idx := range src.Indexes() {
		e.graph.CreateIndex(idx[0], idx[1])
	}
	nodes := map[int64]*graph.Node{}
	for _, n := range src.Nodes() {
		nodes[n.ID()] = e.graph.CreateNode(n.Labels(), n.Properties())
	}
	for _, r := range src.Relationships() {
		if _, err := e.graph.CreateRelationship(nodes[r.StartNodeID()], nodes[r.EndNodeID()], r.RelType(), r.Properties()); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of running a query: the result table plus summary
// counters.
type Result struct {
	Table *result.Table
	// Plan is the textual form of the executed plan (EXPLAIN output).
	Plan string
	// ReadOnly reports whether the query contained no updating clauses.
	ReadOnly bool
	// Parallelism is the number of workers the execution actually used
	// (1 for a serial run).
	Parallelism int
}

// Columns returns the result column names.
func (r *Result) Columns() []string { return r.Table.Columns }

// Rows returns the result rows in column order.
func (r *Result) Rows() [][]value.Value { return r.Table.Rows() }

// Len returns the number of result rows.
func (r *Result) Len() int { return r.Table.Len() }

// parseChecked parses and semantically checks the query, with a per-engine
// cache of checked ASTs (queries are often re-run with different parameters,
// and neither parsing nor semantic analysis depends on the graph).
func (e *Engine) parseChecked(query string) (*ast.Query, error) {
	e.astMu.Lock()
	if q, ok := e.astCache[query]; ok {
		e.astMu.Unlock()
		return q, nil
	}
	e.astMu.Unlock()
	q, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := semantic.Check(q); err != nil {
		return nil, err
	}
	e.astMu.Lock()
	if len(e.astCache) > defaultPlanCacheSize {
		e.astCache = map[string]*ast.Query{}
	}
	e.astCache[query] = q
	e.astMu.Unlock()
	return q, nil
}

// planFor returns a plan for the (already checked) query against the given
// graph version, consulting the plan cache first. The cache is keyed on the
// PINNED version's epoch — not the live graph's — so a reader pinned to an
// older version can never be handed a plan compiled against statistics or
// indexes newer than its row source. Callers must keep g pinned (readers) or
// hold the write lock (writers) so g's epoch cannot move between the cache
// lookup and the compile.
func (e *Engine) planFor(g *graph.Graph, query string, q *ast.Query) (*plan.Plan, error) {
	return e.plans.getOrCompile(query, g.Epoch(), func() (*plan.Plan, error) {
		return planner.New(g).Plan(q)
	})
}

// RunOptions carries per-query governance overrides for RunContext.
type RunOptions struct {
	// Timeout overrides the engine's DefaultTimeout for this query: >0 sets
	// a deadline, 0 inherits the engine default, <0 disables the engine
	// deadline (the caller's context may still carry one).
	Timeout time.Duration
	// MemoryBudget overrides the engine's MemoryBudget with the same
	// convention: >0 sets a budget, 0 inherits, <0 disables.
	MemoryBudget int64
}

// Run parses, checks, plans and executes the query with the given
// parameters (which may be nil). The query is still governed by the engine's
// DefaultTimeout and MemoryBudget options; use RunContext to attach a
// cancelable context or per-query overrides.
func (e *Engine) Run(query string, params map[string]value.Value) (*Result, error) {
	return e.RunContext(context.Background(), query, params, RunOptions{})
}

// RunContext runs the query under the caller's context plus the resolved
// deadline and memory budget. Cancellation (client disconnect, deadline) is
// observed cooperatively at morsel/batch boundaries and every
// exec.CancelCheckStride rows in serial loops; the canceled query fails with
// *exec.CanceledError while every other query proceeds untouched. A query
// that exceeds its memory budget fails with *exec.ResourceExhaustedError; a
// panicking operator is contained at the query boundary and surfaces as
// *exec.PanicError. In all three cases the engine remains fully usable —
// MVCC pins, the write lock and pooled buffers are released on every exit
// path.
//
// A canceled WRITE query keeps whatever mutations it applied before the
// check fired: the in-memory store has no rollback, so partial effects are
// journaled and published exactly like any other failed write (the engine's
// long-standing no-rollback contract). Callers who need all-or-nothing
// writes should not set deadlines tighter than their writes.
func (e *Engine) RunContext(ctx context.Context, query string, params map[string]value.Value, ro RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := ro.Timeout
	if timeout == 0 {
		timeout = e.opts.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	budget := ro.MemoryBudget
	if budget == 0 {
		budget = e.opts.MemoryBudget
	}
	if budget < 0 {
		budget = 0
	}
	// Only build governance state when there is something to govern: plain
	// Run on an engine without timeout/budget options keeps the exact
	// pre-governance fast path (qc == nil short-circuits every check).
	var qc *exec.QueryCtx
	if ctx.Done() != nil || budget > 0 {
		qc = exec.NewQueryCtx(ctx, budget)
	}
	e.gov.inFlight.Add(1)
	defer e.gov.inFlight.Add(-1)
	res, err := e.runGoverned(qc, query, params)
	e.observeGoverned(qc, err)
	return res, err
}

// observeGoverned classifies a query outcome into the governance counters
// and folds the query's materialized high-water mark into the peak gauge.
func (e *Engine) observeGoverned(qc *exec.QueryCtx, err error) {
	if used := qc.UsedBytes(); used > 0 {
		for {
			cur := e.gov.peakQueryBytes.Load()
			if used <= cur || e.gov.peakQueryBytes.CompareAndSwap(cur, used) {
				break
			}
		}
	}
	if err == nil {
		return
	}
	var (
		pe *exec.PanicError
		re *exec.ResourceExhaustedError
		ce *exec.CanceledError
	)
	switch {
	case errors.As(err, &pe):
		e.gov.panicsRecovered.Add(1)
	case errors.As(err, &re):
		e.gov.memoryExhausted.Add(1)
	case errors.As(err, &ce):
		if errors.Is(err, context.DeadlineExceeded) {
			e.gov.deadlineExceeded.Add(1)
		} else {
			e.gov.canceled.Add(1)
		}
	}
}

// runGoverned is the Run body proper: classify, pin or lock, execute.
func (e *Engine) runGoverned(qc *exec.QueryCtx, query string, params map[string]value.Value) (*Result, error) {
	q, err := e.parseChecked(query)
	if err != nil {
		return nil, err
	}
	if q.IsReadOnly() {
		// Readers pin the published version for their whole execution and
		// never block on (or behind) a writer: a write query in progress
		// simply means the pin lands on the previous committed version.
		v := e.versions.Pin()
		defer e.versions.Unpin(v)
		return e.runOn(v, qc, query, q, params)
	}
	// Followers serve reads only; the write belongs on the leader.
	if err := e.readOnlyErr(); err != nil {
		return nil, err
	}
	// The locked section runs in a closure so its deferred Publish/Unlock
	// also fire on a panic — a manual Unlock after a panicking query would
	// leave the write lock held forever and wedge the engine. The durable
	// store is captured under the lock (elections swap it) and reused for
	// the post-lock fsync so the append and the sync hit the same store.
	var d *storage.Store
	res, ticket, err := func() (res *Result, ticket storage.CommitTicket, err error) {
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
		// Re-check the role under the lock: a demotion that raced the check
		// above completed while this writer queued, and applying its mutations
		// now would diverge this node from the new leader's log.
		if rerr := e.readOnlyErr(); rerr != nil {
			return nil, storage.CommitTicket{}, rerr
		}
		d = e.durable.Load()
		// BeginWrite publishes the last committed version for readers and
		// waits for pins on the primary to drain; from here the writer owns
		// the primary and mutates it in place.
		target := e.versions.BeginWrite()
		// Publish even when the query failed partway (deferred, so also on
		// panic): the in-memory store has no rollback, so whatever mutations
		// were applied before the error are real, and readers must converge
		// to the same state the memory holds.
		defer e.versions.Publish()
		res, err = e.runOn(target, qc, query, q, params)
		// Journal the batch even when the query failed partway, for the same
		// no-rollback reason — otherwise a restart would silently diverge
		// from what clients observed. The append happens under the write
		// lock and BEFORE the publish (commit ordering: a version is only
		// readable once its batch is in the log); the fsync deliberately
		// happens AFTER the lock is released, so the next writer can append
		// while this one waits on the disk and concurrent committers share
		// fsyncs (group commit).
		if d != nil {
			t, aerr := d.Append()
			if aerr != nil && err == nil {
				err = fmt.Errorf("query applied in memory but WAL append failed: %w", aerr)
			}
			ticket = t
		}
		if e.commitHook != nil {
			e.commitHook()
		}
		return res, ticket, err
	}()
	if d != nil {
		if serr := d.Sync(ticket); serr != nil && err == nil {
			err = fmt.Errorf("query applied in memory but WAL fsync failed: %w", serr)
		}
	}
	return res, err
}

// runOn plans and executes an already-checked query against one graph
// version: the pinned published version for readers, the exclusively-owned
// primary for writers (which is how a write query reads its own earlier
// clauses' writes).
func (e *Engine) runOn(g *graph.Graph, qc *exec.QueryCtx, query string, q *ast.Query, params map[string]value.Value) (*Result, error) {
	pl, err := e.planFor(g, query, q)
	if err != nil {
		return nil, err
	}
	ex := exec.New(g, params, exec.Options{
		Morphism:          e.opts.Morphism,
		MaxVarLengthDepth: e.opts.MaxVarLengthDepth,
		Parallelism:       e.opts.Parallelism,
		MorselSize:        e.opts.MorselSize,
		BatchSize:         e.opts.BatchSize,
		QueryCtx:          qc,
	})
	tbl, err := ex.Execute(pl)
	if err != nil {
		return nil, err
	}
	// Snapshot entity values while the version is still pinned: results
	// outlive the query, and a later writer must not race readers of
	// returned nodes/relationships.
	tbl.DetachEntities()
	return &Result{
		Table:       tbl,
		Plan:        pl.String(),
		ReadOnly:    pl.ReadOnly,
		Parallelism: ex.UsedParallelism(),
	}, nil
}

// Explain parses, checks and plans the query without executing it, returning
// the plan description. Planning only reads the graph, so Explain pins the
// published version like a reader regardless of whether the query would
// mutate.
func (e *Engine) Explain(query string) (string, error) {
	q, err := e.parseChecked(query)
	if err != nil {
		return "", err
	}
	v := e.versions.Pin()
	defer e.versions.Unpin(v)
	pl, err := e.planFor(v, query, q)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%sruntime parallelism: %d\n", pl.String(), e.chosenParallelism(v, pl)), nil
}

// chosenParallelism mirrors the executor's runtime decision for the plan:
// the configured worker budget, capped by the number of morsels the scan
// currently splits into, and 1 for ineligible plans or scans that fit in a
// single morsel. For the two scan leaves the morsel count is exact; for
// index-seek leaves the true result size depends on operand values that
// EXPLAIN does not have (parameters), so the count comes from the planner's
// cardinality estimate, bounded by the label cardinality — the executor's
// actual worker count (Result.Parallelism) can be lower when the seek
// returns fewer rows than estimated. Callers keep g pinned so the scan
// cardinality is stable.
func (e *Engine) chosenParallelism(g *graph.Graph, pl *plan.Plan) int {
	if e.opts.Parallelism <= 1 || pl.Parallel == nil || !pl.Parallel.Safe {
		return 1
	}
	morselSize := e.opts.MorselSize
	if morselSize <= 0 {
		morselSize = graph.DefaultMorselSize
	}
	stats := g.Stats()
	var n int
	switch s := pl.Parallel.Scan.(type) {
	case *plan.AllNodesScan:
		n = stats.NodeCount
	case *plan.NodeByLabelScan:
		n = stats.NodesByLabel[s.Label]
	case *plan.NodeIndexSeek, *plan.NodeIndexRangeSeek, *plan.NodeIndexPrefixSeek:
		var label string
		switch seek := s.(type) {
		case *plan.NodeIndexSeek:
			label = seek.Label
		case *plan.NodeIndexRangeSeek:
			label = seek.Label
		case *plan.NodeIndexPrefixSeek:
			label = seek.Label
		}
		// The label cardinality bounds any seek; plans without estimates
		// (hand-built, legacy) report that bound.
		n = stats.NodesByLabel[label]
		if est, ok := pl.Est[s]; ok && int(est.Rows) < n {
			n = int(est.Rows)
		}
	default:
		return 1
	}
	morsels := (n + morselSize - 1) / morselSize
	if morsels < 2 {
		return 1
	}
	if e.opts.Parallelism < morsels {
		return e.opts.Parallelism
	}
	return morsels
}

// PlanCacheStats reports plan-cache effectiveness counters.
func (e *Engine) PlanCacheStats() CacheStats { return e.plans.stats() }

// RunWithGoParams is a convenience wrapper that converts native Go parameter
// values into Cypher values.
func (e *Engine) RunWithGoParams(query string, params map[string]any) (*Result, error) {
	converted, err := ConvertParams(params)
	if err != nil {
		return nil, err
	}
	return e.Run(query, converted)
}

// RunContextWithGoParams is RunContext with native Go parameter conversion.
func (e *Engine) RunContextWithGoParams(ctx context.Context, query string, params map[string]any, ro RunOptions) (*Result, error) {
	converted, err := ConvertParams(params)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, query, converted, ro)
}

// ConvertParams converts a map of native Go values into Cypher values.
func ConvertParams(params map[string]any) (map[string]value.Value, error) {
	if params == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(params))
	for k, v := range params {
		cv, err := value.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}
