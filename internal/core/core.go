// Package core ties the Cypher pipeline together: parsing, semantic
// analysis, planning and execution. It is the engine behind the public
// cypher package; each query is compiled into a plan over the target graph
// and evaluated starting from the unit table, exactly as the paper's
// semantics prescribes (output(Q, G) = [[Q]]_G(T())).
package core

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/planner"
	"repro/internal/result"
	"repro/internal/semantic"
	_ "repro/internal/temporal" // registers the Cypher 10 temporal functions
	"repro/internal/value"
)

// Morphism re-exports the execution engine's pattern-matching modes.
type Morphism = exec.Morphism

// Pattern-matching modes (see Section 8 of the paper, "configurable
// morphisms").
const (
	EdgeIsomorphism = exec.EdgeIsomorphism
	Homomorphism    = exec.Homomorphism
	NodeIsomorphism = exec.NodeIsomorphism
)

// Options configures an Engine.
type Options struct {
	// Morphism selects the pattern-matching semantics (default:
	// relationship isomorphism, Cypher's semantics).
	Morphism Morphism
	// MaxVarLengthDepth caps unbounded variable-length expansion in
	// homomorphism mode (default 15).
	MaxVarLengthDepth int
}

// Engine executes Cypher queries against a single property graph.
type Engine struct {
	mu    sync.Mutex
	graph *graph.Graph
	opts  Options
	cache map[string]*ast.Query
}

// NewEngine creates an engine over the graph.
func NewEngine(g *graph.Graph, opts Options) *Engine {
	return &Engine{graph: g, opts: opts, cache: map[string]*ast.Query{}}
}

// Graph returns the engine's underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.graph }

// Result is the outcome of running a query: the result table plus summary
// counters.
type Result struct {
	Table *result.Table
	// Plan is the textual form of the executed plan (EXPLAIN output).
	Plan string
	// ReadOnly reports whether the query contained no updating clauses.
	ReadOnly bool
}

// Columns returns the result column names.
func (r *Result) Columns() []string { return r.Table.Columns }

// Rows returns the result rows in column order.
func (r *Result) Rows() [][]value.Value { return r.Table.Rows() }

// Len returns the number of result rows.
func (r *Result) Len() int { return r.Table.Len() }

// parse parses with a small per-engine cache (queries are often re-run with
// different parameters).
func (e *Engine) parse(query string) (*ast.Query, error) {
	e.mu.Lock()
	if q, ok := e.cache[query]; ok {
		e.mu.Unlock()
		return q, nil
	}
	e.mu.Unlock()
	q, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if len(e.cache) > 1024 {
		e.cache = map[string]*ast.Query{}
	}
	e.cache[query] = q
	e.mu.Unlock()
	return q, nil
}

// Run parses, checks, plans and executes the query with the given
// parameters (which may be nil).
func (e *Engine) Run(query string, params map[string]value.Value) (*Result, error) {
	q, err := e.parse(query)
	if err != nil {
		return nil, err
	}
	if err := semantic.Check(q); err != nil {
		return nil, err
	}
	pl, err := planner.New(e.graph).Plan(q)
	if err != nil {
		return nil, err
	}
	ex := exec.New(e.graph, params, exec.Options{
		Morphism:          e.opts.Morphism,
		MaxVarLengthDepth: e.opts.MaxVarLengthDepth,
	})
	tbl, err := ex.Execute(pl)
	if err != nil {
		return nil, err
	}
	return &Result{Table: tbl, Plan: pl.String(), ReadOnly: pl.ReadOnly}, nil
}

// Explain parses, checks and plans the query without executing it, returning
// the plan description.
func (e *Engine) Explain(query string) (string, error) {
	q, err := e.parse(query)
	if err != nil {
		return "", err
	}
	if err := semantic.Check(q); err != nil {
		return "", err
	}
	pl, err := planner.New(e.graph).Plan(q)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// RunWithGoParams is a convenience wrapper that converts native Go parameter
// values into Cypher values.
func (e *Engine) RunWithGoParams(query string, params map[string]any) (*Result, error) {
	converted, err := ConvertParams(params)
	if err != nil {
		return nil, err
	}
	return e.Run(query, converted)
}

// ConvertParams converts a map of native Go values into Cypher values.
func ConvertParams(params map[string]any) (map[string]value.Value, error) {
	if params == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(params))
	for k, v := range params {
		cv, err := value.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}
