package core

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/result"
	"repro/internal/value"
)

// run executes a query and fails the test on error.
func run(t *testing.T, e *Engine, query string) *Result {
	t.Helper()
	res, err := e.Run(query, nil)
	if err != nil {
		t.Fatalf("query failed: %s\n%v", query, err)
	}
	return res
}

// runParams executes a query with Go parameters and fails the test on error.
func runParams(t *testing.T, e *Engine, query string, params map[string]any) *Result {
	t.Helper()
	res, err := e.RunWithGoParams(query, params)
	if err != nil {
		t.Fatalf("query failed: %s\n%v", query, err)
	}
	return res
}

// rows converts a result into a [][]any using value.ToGo, for compact
// comparison against expectations. Nodes and relationships are mapped to
// their ids.
func rows(res *Result) [][]any {
	out := make([][]any, 0, res.Len())
	for _, row := range res.Rows() {
		conv := make([]any, len(row))
		for i, v := range row {
			conv[i] = simplify(v)
		}
		out = append(out, conv)
	}
	return out
}

func simplify(v value.Value) any {
	switch v.Kind() {
	case value.KindNode:
		n, _ := value.AsNode(v)
		return n.ID()
	case value.KindRelationship:
		r, _ := value.AsRelationship(v)
		return r.ID()
	case value.KindList:
		l, _ := value.AsList(v)
		out := make([]any, l.Len())
		for i, e := range l.Elements() {
			out[i] = simplify(e)
		}
		return out
	default:
		return value.ToGo(v)
	}
}

// expectBag asserts that the result contains exactly the expected rows,
// regardless of order (bag comparison).
func expectBag(t *testing.T, res *Result, want [][]any) {
	t.Helper()
	got := rows(res)
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d\ngot:  %v\nwant: %v\nplan:\n%s", len(got), len(want), got, want, res.Plan)
	}
	gotTable := toComparable(t, res.Columns(), got)
	wantTable := toComparable(t, res.Columns(), want)
	if !result.EqualAsBags(gotTable, wantTable) {
		t.Fatalf("result mismatch\ngot:  %v\nwant: %v\nplan:\n%s", got, want, res.Plan)
	}
}

// expectOrdered asserts that the result contains exactly the expected rows in
// order.
func expectOrdered(t *testing.T, res *Result, want [][]any) {
	t.Helper()
	got := rows(res)
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d\ngot: %v", len(got), len(want), got)
	}
	for i := range want {
		if !rowEqual(t, got[i], want[i]) {
			t.Fatalf("row %d mismatch\ngot:  %v\nwant: %v", i, got[i], want[i])
		}
	}
}

func rowEqual(t *testing.T, got, want []any) bool {
	t.Helper()
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		gv, err := value.FromGo(got[i])
		if err != nil {
			t.Fatalf("bad got value %v: %v", got[i], err)
		}
		wv, err := value.FromGo(want[i])
		if err != nil {
			t.Fatalf("bad want value %v: %v", want[i], err)
		}
		if value.Compare(gv, wv) != 0 {
			return false
		}
	}
	return true
}

func toComparable(t *testing.T, cols []string, data [][]any) *result.Table {
	t.Helper()
	tbl := result.NewTable(cols...)
	for _, row := range data {
		rec := result.NewRecord()
		for i, c := range cols {
			v, err := value.FromGo(row[i])
			if err != nil {
				t.Fatalf("bad value %v: %v", row[i], err)
			}
			rec.Set(c, v)
		}
		tbl.Add(rec)
	}
	return tbl
}

// columnOf extracts a single column as a sorted []any (helper for set-like
// assertions).
func columnOf(res *Result, col string) []any {
	idx := -1
	for i, c := range res.Columns() {
		if c == col {
			idx = i
		}
	}
	var out []any
	for _, row := range res.Rows() {
		out = append(out, simplify(row[idx]))
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := value.FromGo(out[i])
		b, _ := value.FromGo(out[j])
		return value.Compare(a, b) < 0
	})
	return out
}

// emptyEngine returns an engine over a fresh empty graph.
func emptyEngine() *Engine {
	return NewEngine(graph.New(), Options{})
}
