package core

// Isolation-anomaly regression battery for the MVCC engine.
//
// Achieved isolation level: SNAPSHOT ISOLATION for readers — a read-only
// query pins the published version at start and sees exactly that committed
// state for its whole execution — combined with fully SERIALIZED writers
// (one write query at a time, executing against the live primary). Because
// writers serialize, the overall schedule is serializable: there is no write
// skew and no lost update, and a write query reads its own earlier clauses'
// writes. The anomalies probed here:
//
//   - dirty read:          a reader must never observe a write that has not
//                          committed (published) yet, even while the writer
//                          is paused mid-commit.
//   - non-repeatable read: a reader pinned to a version must see the same
//                          rows when it re-reads after a concurrent commit.
//   - lost update:         concurrent read-modify-write queries must all
//                          take effect (writers serialize).
//   - read your own writes: a write query's later clauses see its earlier
//                          clauses' effects.
//
// The concurrent scenarios are made deterministic with the engine's commit
// hook (SetCommitHook), which runs after the write executed and its batch
// was WAL-appended but BEFORE the new version publishes — exactly the window
// a dirty read would need.

import (
	"sync"
	"testing"
	"time"
)

// countWhere runs the query (which must return a single integer) and returns
// it.
func countOf(t *testing.T, e *Engine, query string) int64 {
	t.Helper()
	res := run(t, e, query)
	got := rows(res)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("countOf(%s): unexpected shape %v", query, got)
	}
	n, ok := got[0][0].(int64)
	if !ok {
		t.Fatalf("countOf(%s): non-integer %T", query, got[0][0])
	}
	return n
}

func TestIsolationNoDirtyRead(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (:Account {bal: 100})`)

	// Pause the writer in the commit window: the mutation is applied to the
	// primary and WAL-appended, but the version is not published yet.
	entered := make(chan struct{})
	release := make(chan struct{})
	e.SetCommitHook(func() {
		close(entered)
		<-release
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(`MATCH (a:Account) SET a.bal = a.bal - 100 WITH a CREATE (:Account {bal: 100, fresh: true})`, nil)
		done <- err
	}()
	<-entered

	// The write is sitting un-published. Readers must see the old state:
	// one account, balance 100, no trace of the in-flight transfer.
	if n := countOf(t, e, `MATCH (a:Account) RETURN count(a)`); n != 1 {
		t.Errorf("dirty read: saw %d accounts mid-commit, want 1", n)
	}
	if n := countOf(t, e, `MATCH (a:Account) RETURN sum(a.bal)`); n != 100 {
		t.Errorf("dirty read: balance sum %d mid-commit, want 100", n)
	}

	e.SetCommitHook(nil) // hook field is only read under writeMu; clear before release
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	// After commit the full write is visible atomically.
	if n := countOf(t, e, `MATCH (a:Account) RETURN count(a)`); n != 2 {
		t.Errorf("post-commit: %d accounts, want 2", n)
	}
	if n := countOf(t, e, `MATCH (a:Account) RETURN sum(a.bal)`); n != 100 {
		t.Errorf("post-commit: balance sum %d, want 100", n)
	}
}

func TestIsolationRepeatableRead(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (:Item {v: 1})`)

	// Model a long-running reader: pin the published version the way Run's
	// read path does and read through it while a writer tries to move the
	// data. The MVCC discipline keeps a pinned version immutable by making
	// the writer WAIT for the pin to drain before touching that replica
	// (readers never wait; writers do), so the re-read must return the same
	// rows no matter how long the writer has been trying.
	v := e.versions.Pin()
	readPinned := func() [][]any {
		const q = `MATCH (i:Item) RETURN i.v ORDER BY i.v`
		parsed, err := e.parseChecked(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.runOn(v, nil, q, parsed, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rows(res)
	}

	first := readPinned()
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(`MATCH (i:Item) SET i.v = 2 WITH i CREATE (:Item {v: 3})`, nil)
		done <- err
	}()
	// Wait until the writer is parked draining our pin (it cannot mutate
	// the pinned version before we release it).
	deadline := time.Now().Add(5 * time.Second)
	for e.MVCCStats().WriterDrainWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never reached the drain wait")
		}
		time.Sleep(time.Millisecond)
	}
	second := readPinned()

	if len(first) != 1 || first[0][0] != int64(1) {
		t.Fatalf("first read = %v, want [[1]]", first)
	}
	if len(second) != 1 || second[0][0] != int64(1) {
		t.Errorf("non-repeatable read: second read through the same pin = %v, want [[1]]", second)
	}

	e.versions.Unpin(v)
	if err := <-done; err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	// A fresh reader sees the committed write.
	if n := countOf(t, e, `MATCH (i:Item) RETURN count(i)`); n != 2 {
		t.Errorf("fresh read after commit: %d items, want 2", n)
	}
	if got := columnOf(run(t, e, `MATCH (i:Item) RETURN i.v AS v`), "v"); len(got) != 2 || got[0] != int64(2) || got[1] != int64(3) {
		t.Errorf("fresh read rows = %v, want [2 3]", got)
	}
}

func TestIsolationNoLostUpdate(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (:Counter {n: 0})`)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := e.Run(`MATCH (c:Counter) SET c.n = c.n + 1`, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := countOf(t, e, `MATCH (c:Counter) RETURN c.n`); n != workers*perWorker {
		t.Errorf("lost update: counter = %d, want %d", n, workers*perWorker)
	}
}

func TestIsolationReadYourOwnWrites(t *testing.T) {
	e := emptyEngine()
	// Within one write query, later clauses read earlier clauses' writes:
	// the MATCH after WITH sees the node CREATE'd one clause earlier, and
	// SET reads the property it just wrote.
	res := run(t, e, `CREATE (:Own {v: 41}) WITH 1 AS one MATCH (n:Own) SET n.v = n.v + 1 RETURN n.v`)
	got := rows(res)
	if len(got) != 1 || got[0][0] != int64(42) {
		t.Fatalf("read-your-own-writes: got %v, want [[42]]", got)
	}
}

func TestReadersProceedWhileWriterMidCommit(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (:P {v: 1})`)

	entered := make(chan struct{})
	release := make(chan struct{})
	e.SetCommitHook(func() {
		close(entered)
		<-release
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(`CREATE (:P {v: 2})`, nil)
		done <- err
	}()
	<-entered

	// The writer is parked holding the write lock. Under the old RWMutex
	// design every reader would now block until release; under MVCC the
	// reads below must complete while the writer is still parked.
	readDone := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			if n := countOf(t, e, `MATCH (p:P) RETURN count(p)`); n != 1 {
				t.Errorf("read %d saw %d nodes mid-commit, want 1", i, n)
				break
			}
		}
		close(readDone)
	}()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("readers blocked behind a writer holding the commit window")
	}

	e.SetCommitHook(nil)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("writer failed: %v", err)
	}
}

func TestWriteVisibleImmediatelyAfterRun(t *testing.T) {
	// Publish happens before Run returns: a client that writes then reads
	// from the same goroutine must see its write (monotonic reads from the
	// caller's viewpoint).
	e := emptyEngine()
	for i := 0; i < 20; i++ {
		if _, err := e.Run(`CREATE (:Seq)`, nil); err != nil {
			t.Fatal(err)
		}
		if n := countOf(t, e, `MATCH (s:Seq) RETURN count(s)`); n != int64(i+1) {
			t.Fatalf("after %d writes, fresh read saw %d", i+1, n)
		}
	}
	if st := e.MVCCStats(); st.PublishedEpoch != st.LiveEpoch {
		t.Fatalf("idle engine has unpublished state: %+v", st)
	}
}
