package core

import (
	"testing"

	"repro/internal/datasets"
)

// Additional language-coverage tests complementing core_test.go: clause
// chaining, projection modifiers in the middle of queries, and corner cases
// of the clauses formalised in Figure 7.

func TestWithOrderLimitMidQuery(t *testing.T) {
	g := datasets.SocialNetwork(datasets.SocialConfig{People: 20, FriendsEach: 3, Seed: 3})
	e := NewEngine(g, Options{})
	// Take the three oldest people, then expand from only those.
	res := run(t, e, `
		MATCH (p:Person)
		WITH p ORDER BY p.age DESC LIMIT 3
		OPTIONAL MATCH (p)-[:KNOWS]->(q)
		RETURN count(DISTINCT p) AS people, count(q) >= 0 AS ok`)
	expectOrdered(t, res, [][]any{{3, true}})

	// WITH DISTINCT mid-query collapses duplicates before the next MATCH.
	res = run(t, e, `
		MATCH (p:Person)-[:KNOWS]->(:Person)
		WITH DISTINCT p
		RETURN count(*) = count(DISTINCT p) AS collapsed`)
	expectOrdered(t, res, [][]any{{true}})
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := emptyEngine()
	run(t, e, "UNWIND [['b', 2], ['a', 2], ['a', 1]] AS row CREATE (:Row {k: row[0], v: row[1]})")
	res := run(t, e, "MATCH (r:Row) RETURN r.k AS k, r.v AS v ORDER BY k, v DESC")
	expectOrdered(t, res, [][]any{
		{"a", 2},
		{"a", 1},
		{"b", 2},
	})
}

func TestLimitZeroAndSkipBeyondEnd(t *testing.T) {
	e := emptyEngine()
	run(t, e, "UNWIND range(1, 5) AS i CREATE (:N {i: i})")
	res := run(t, e, "MATCH (n:N) RETURN n.i AS i LIMIT 0")
	if res.Len() != 0 {
		t.Errorf("LIMIT 0 should return nothing")
	}
	res = run(t, e, "MATCH (n:N) RETURN n.i AS i ORDER BY i SKIP 99")
	if res.Len() != 0 {
		t.Errorf("SKIP beyond the end should return nothing")
	}
	res = run(t, e, "MATCH (n:N) RETURN n.i AS i ORDER BY i SKIP 3")
	expectOrdered(t, res, [][]any{{4}, {5}})
}

func TestRelationshipTypeAlternation(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (a:P {name: 'a'}), (b:P {name: 'b'}), (c:P {name: 'c'}),
		(a)-[:LIKES]->(b), (a)-[:KNOWS]->(c), (a)-[:HATES]->(b)`)
	res := run(t, e, "MATCH (a {name: 'a'})-[r:LIKES|KNOWS]->(x) RETURN type(r) AS t, x.name AS name ORDER BY t")
	expectOrdered(t, res, [][]any{
		{"KNOWS", "c"},
		{"LIKES", "b"},
	})
	// Alternation also applies inside variable-length patterns.
	run(t, e, "MATCH (b {name: 'b'}), (c {name: 'c'}) CREATE (b)-[:LIKES]->(c)")
	res = run(t, e, "MATCH (a {name: 'a'})-[:LIKES|KNOWS*1..2]->(x) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{3}})
}

func TestMergeRelationshipWithProperties(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:City {name: 'x'}), (:City {name: 'y'})")
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 2}]->(b) ON CREATE SET r.created = true")
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 2}]->(b) ON MATCH SET r.matched = true")
	// A MERGE with different properties creates a second relationship.
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 4}]->(b)")
	res := run(t, e, "MATCH (:City)-[r:ROAD]->(:City) RETURN count(*) AS roads")
	expectOrdered(t, res, [][]any{{2}})
	res = run(t, e, "MATCH ()-[r:ROAD {lanes: 2}]->() RETURN r.created, r.matched")
	expectOrdered(t, res, [][]any{{true, true}})
}

func TestMergeOnEmptyGraphCreatesOnce(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, "MERGE (n:Singleton) RETURN id(n) IS NOT NULL AS created")
	expectOrdered(t, res, [][]any{{true}})
	res = run(t, e, "MERGE (n:Singleton) RETURN count(n) AS c")
	expectOrdered(t, res, [][]any{{1}})
	if e.Graph().Stats().NodeCount != 1 {
		t.Errorf("repeated MERGE should not duplicate the node")
	}
}

func TestStringAndListFunctionsInQueries(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		RETURN toUpper(r.name) AS up, substring(r.name, 0, 2) AS prefix
		ORDER BY up`)
	expectOrdered(t, res, [][]any{
		{"ELIN", "El"},
		{"NILS", "Ni"},
		{"THOR", "Th"},
	})
	res = run(t, e, `
		MATCH (r:Researcher)-[:AUTHORS]->(p)
		WITH r, collect(p.acmid) AS ids
		RETURN r.name AS name, size(ids) AS n, head(ids) IS NOT NULL AS ok
		ORDER BY name`)
	expectOrdered(t, res, [][]any{
		{"Elin", 2, true},
		{"Nils", 1, true},
	})
}

func TestChainedWithAggregations(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	// Aggregate twice: publications per researcher, then the maximum.
	res := run(t, e, `
		MATCH (r:Researcher)-[:AUTHORS]->(p:Publication)
		WITH r, count(p) AS pubs
		RETURN max(pubs) AS most, min(pubs) AS least, count(*) AS researchers`)
	expectOrdered(t, res, [][]any{{2, 1, 2}})
}

func TestLabelsFunctionAndHasLabelFiltering(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:A:B {name: 'ab'}), (:A {name: 'a'}), (:B {name: 'b'})")
	res := run(t, e, "MATCH (n) WHERE n:A AND n:B RETURN n.name")
	expectOrdered(t, res, [][]any{{"ab"}})
	res = run(t, e, "MATCH (n:A) WHERE NOT n:B RETURN n.name")
	expectOrdered(t, res, [][]any{{"a"}})
	res = run(t, e, "MATCH (n {name: 'ab'}) RETURN labels(n)")
	expectOrdered(t, res, [][]any{{[]any{"A", "B"}}})
}

func TestSelfLoopSingleHopBothDirections(t *testing.T) {
	g := datasets.SelfLoop()
	e := NewEngine(g, Options{})
	// A single-hop undirected pattern over a self-loop matches the
	// relationship once per clause evaluation.
	res := run(t, e, "MATCH (x)-[r]-(y) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
	res = run(t, e, "MATCH (x)-[r]->(x) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
}

func TestParameterDrivenPatternProperties(t *testing.T) {
	e := emptyEngine()
	res := runParams(t, e, "CREATE (n:Item $props) RETURN n.name, n.qty", map[string]any{
		"props": map[string]any{"name": "bolt", "qty": 7},
	})
	expectOrdered(t, res, [][]any{{"bolt", 7}})
	res = runParams(t, e, "MATCH (n:Item {name: $name}) RETURN n.qty", map[string]any{"name": "bolt"})
	expectOrdered(t, res, [][]any{{7}})
}

func TestTemporalFunctionsInQueries(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Event {name: 'kickoff', on: '2018-06-10'}), (:Event {name: 'deadline', on: '2018-09-01'})")
	res := run(t, e, `
		MATCH (e:Event)
		RETURN e.name AS name, year(date(e.on)) AS y
		ORDER BY date(e.on)`)
	expectOrdered(t, res, [][]any{
		{"kickoff", 2018},
		{"deadline", 2018},
	})
}

func TestUnionAllBagMultiplicity(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (t:Teacher) RETURN 'teacher' AS kind
		UNION ALL MATCH (s:Student) RETURN 'student' AS kind
		UNION ALL MATCH (n) RETURN 'node' AS kind`)
	if res.Len() != 3+1+4 {
		t.Errorf("UNION ALL should preserve multiplicities, got %d rows", res.Len())
	}
}

// --- Regression tests for the PR-3 language fixes ---

func TestReduceExpression(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, "RETURN reduce(acc = 0, x IN [1, 2, 3, 4] | acc + x) AS sum, reduce(s = '', w IN ['a', 'b', 'c'] | s + w) AS cat")
	expectOrdered(t, res, [][]any{{10, "abc"}})

	// The two bound variables shadow outer names and do not leak.
	res = run(t, e, "WITH 5 AS x RETURN reduce(acc = x, x IN [1, 2] | acc + x) AS r, x")
	expectOrdered(t, res, [][]any{{8, 5}})

	// A null list folds to null; an empty list yields the initialiser.
	res = run(t, e, "RETURN reduce(acc = 0, x IN null | acc + x) AS a, reduce(acc = 42, x IN [] | acc + x) AS b")
	expectOrdered(t, res, [][]any{{nil, 42}})

	// Nested reduce and reduce over graph data.
	run(t, e, "CREATE (:Acct {amounts: [10, 20]}), (:Acct {amounts: [5]})")
	res = run(t, e, `MATCH (a:Acct) WITH collect(a.amounts) AS lists
		RETURN reduce(total = 0, l IN lists | total + reduce(s = 0, v IN l | s + v)) AS grand`)
	expectOrdered(t, res, [][]any{{35}})

	// The accumulator and element variables are local: referencing them
	// outside, or an undefined name inside, is a semantic error.
	if _, err := e.Run("RETURN reduce(acc = 0, x IN [1] | acc + x) + x", nil); err == nil {
		t.Error("reduce variable must not leak into the outer scope")
	}
	if _, err := e.Run("RETURN reduce(acc = 0, x IN [1] | acc + nope)", nil); err == nil {
		t.Error("undefined variable inside reduce must be rejected")
	}
	// Folding a non-list is a type error.
	if _, err := e.Run("RETURN reduce(acc = 0, x IN 7 | acc + x)", nil); err == nil {
		t.Error("reduce over a non-list must fail")
	}
}

func TestStringNumericConcatenation(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, "RETURN 'a' + 1 AS a, 1 + 'a' AS b, 'x' + 1.5 AS c, 2.5 + 'y' AS d, 'n' + 1 + 2 AS e, 1 + 2 + 'n' AS f")
	expectOrdered(t, res, [][]any{{"a1", "1a", "x1.5", "2.5y", "n12", "3n"}})

	// Property-sourced values behave the same.
	run(t, e, "CREATE (:P {name: 'v', n: 7})")
	res = run(t, e, "MATCH (p:P) RETURN p.name + p.n AS s")
	expectOrdered(t, res, [][]any{{"v7"}})

	// Null still dominates, and non-numeric operands still mismatch.
	res = run(t, e, "RETURN 'a' + null AS x")
	expectOrdered(t, res, [][]any{{nil}})
	if _, err := e.Run("RETURN true + 'a'", nil); err == nil {
		t.Error("boolean + string must stay a type error")
	}
	if _, err := e.Run("RETURN 'a' + true", nil); err == nil {
		t.Error("string + boolean must stay a type error")
	}
}

func TestDateTimeOffsetSuffixes(t *testing.T) {
	e := emptyEngine()
	// Z, +hh:mm and -hh:mm all denote the same instant, normalised to UTC.
	res := run(t, e, `RETURN datetime('2020-01-01T00:00:00Z') = datetime('2020-01-01T05:30:00+05:30') AS a,
		datetime('2020-01-01T00:00:00Z') = datetime('2019-12-31T19:00:00-05:00') AS b,
		year(datetime('2020-01-01T00:00:00Z')) AS y, day(datetime('2019-12-31T19:00:00-05:00')) AS d`)
	expectOrdered(t, res, [][]any{{true, true, 2020, 1}})

	// Fractional seconds with an offset, and offset without colon.
	run(t, e, "CREATE (:T {dt: datetime('1999-06-01T12:00:00.5+0200')})")
	res = run(t, e, "MATCH (n:T) RETURN year(n.dt) AS y")
	expectOrdered(t, res, [][]any{{1999}})

	// Local date-times (no suffix) still parse, and garbage still fails.
	res = run(t, e, "RETURN year(datetime('2018-03-04T05:06:07')) AS y")
	expectOrdered(t, res, [][]any{{2018}})
	if _, err := e.Run("RETURN datetime('2018-03-04T05:06:07Q')", nil); err == nil {
		t.Error("bad offset suffix must be rejected")
	}
}
