package core

import (
	"testing"

	"repro/internal/datasets"
)

// Additional language-coverage tests complementing core_test.go: clause
// chaining, projection modifiers in the middle of queries, and corner cases
// of the clauses formalised in Figure 7.

func TestWithOrderLimitMidQuery(t *testing.T) {
	g := datasets.SocialNetwork(datasets.SocialConfig{People: 20, FriendsEach: 3, Seed: 3})
	e := NewEngine(g, Options{})
	// Take the three oldest people, then expand from only those.
	res := run(t, e, `
		MATCH (p:Person)
		WITH p ORDER BY p.age DESC LIMIT 3
		OPTIONAL MATCH (p)-[:KNOWS]->(q)
		RETURN count(DISTINCT p) AS people, count(q) >= 0 AS ok`)
	expectOrdered(t, res, [][]any{{3, true}})

	// WITH DISTINCT mid-query collapses duplicates before the next MATCH.
	res = run(t, e, `
		MATCH (p:Person)-[:KNOWS]->(:Person)
		WITH DISTINCT p
		RETURN count(*) = count(DISTINCT p) AS collapsed`)
	expectOrdered(t, res, [][]any{{true}})
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := emptyEngine()
	run(t, e, "UNWIND [['b', 2], ['a', 2], ['a', 1]] AS row CREATE (:Row {k: row[0], v: row[1]})")
	res := run(t, e, "MATCH (r:Row) RETURN r.k AS k, r.v AS v ORDER BY k, v DESC")
	expectOrdered(t, res, [][]any{
		{"a", 2},
		{"a", 1},
		{"b", 2},
	})
}

func TestLimitZeroAndSkipBeyondEnd(t *testing.T) {
	e := emptyEngine()
	run(t, e, "UNWIND range(1, 5) AS i CREATE (:N {i: i})")
	res := run(t, e, "MATCH (n:N) RETURN n.i AS i LIMIT 0")
	if res.Len() != 0 {
		t.Errorf("LIMIT 0 should return nothing")
	}
	res = run(t, e, "MATCH (n:N) RETURN n.i AS i ORDER BY i SKIP 99")
	if res.Len() != 0 {
		t.Errorf("SKIP beyond the end should return nothing")
	}
	res = run(t, e, "MATCH (n:N) RETURN n.i AS i ORDER BY i SKIP 3")
	expectOrdered(t, res, [][]any{{4}, {5}})
}

func TestRelationshipTypeAlternation(t *testing.T) {
	e := emptyEngine()
	run(t, e, `CREATE (a:P {name: 'a'}), (b:P {name: 'b'}), (c:P {name: 'c'}),
		(a)-[:LIKES]->(b), (a)-[:KNOWS]->(c), (a)-[:HATES]->(b)`)
	res := run(t, e, "MATCH (a {name: 'a'})-[r:LIKES|KNOWS]->(x) RETURN type(r) AS t, x.name AS name ORDER BY t")
	expectOrdered(t, res, [][]any{
		{"KNOWS", "c"},
		{"LIKES", "b"},
	})
	// Alternation also applies inside variable-length patterns.
	run(t, e, "MATCH (b {name: 'b'}), (c {name: 'c'}) CREATE (b)-[:LIKES]->(c)")
	res = run(t, e, "MATCH (a {name: 'a'})-[:LIKES|KNOWS*1..2]->(x) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{3}})
}

func TestMergeRelationshipWithProperties(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:City {name: 'x'}), (:City {name: 'y'})")
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 2}]->(b) ON CREATE SET r.created = true")
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 2}]->(b) ON MATCH SET r.matched = true")
	// A MERGE with different properties creates a second relationship.
	run(t, e, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[r:ROAD {lanes: 4}]->(b)")
	res := run(t, e, "MATCH (:City)-[r:ROAD]->(:City) RETURN count(*) AS roads")
	expectOrdered(t, res, [][]any{{2}})
	res = run(t, e, "MATCH ()-[r:ROAD {lanes: 2}]->() RETURN r.created, r.matched")
	expectOrdered(t, res, [][]any{{true, true}})
}

func TestMergeOnEmptyGraphCreatesOnce(t *testing.T) {
	e := emptyEngine()
	res := run(t, e, "MERGE (n:Singleton) RETURN id(n) IS NOT NULL AS created")
	expectOrdered(t, res, [][]any{{true}})
	res = run(t, e, "MERGE (n:Singleton) RETURN count(n) AS c")
	expectOrdered(t, res, [][]any{{1}})
	if e.Graph().Stats().NodeCount != 1 {
		t.Errorf("repeated MERGE should not duplicate the node")
	}
}

func TestStringAndListFunctionsInQueries(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (r:Researcher)
		RETURN toUpper(r.name) AS up, substring(r.name, 0, 2) AS prefix
		ORDER BY up`)
	expectOrdered(t, res, [][]any{
		{"ELIN", "El"},
		{"NILS", "Ni"},
		{"THOR", "Th"},
	})
	res = run(t, e, `
		MATCH (r:Researcher)-[:AUTHORS]->(p)
		WITH r, collect(p.acmid) AS ids
		RETURN r.name AS name, size(ids) AS n, head(ids) IS NOT NULL AS ok
		ORDER BY name`)
	expectOrdered(t, res, [][]any{
		{"Elin", 2, true},
		{"Nils", 1, true},
	})
}

func TestChainedWithAggregations(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	// Aggregate twice: publications per researcher, then the maximum.
	res := run(t, e, `
		MATCH (r:Researcher)-[:AUTHORS]->(p:Publication)
		WITH r, count(p) AS pubs
		RETURN max(pubs) AS most, min(pubs) AS least, count(*) AS researchers`)
	expectOrdered(t, res, [][]any{{2, 1, 2}})
}

func TestLabelsFunctionAndHasLabelFiltering(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:A:B {name: 'ab'}), (:A {name: 'a'}), (:B {name: 'b'})")
	res := run(t, e, "MATCH (n) WHERE n:A AND n:B RETURN n.name")
	expectOrdered(t, res, [][]any{{"ab"}})
	res = run(t, e, "MATCH (n:A) WHERE NOT n:B RETURN n.name")
	expectOrdered(t, res, [][]any{{"a"}})
	res = run(t, e, "MATCH (n {name: 'ab'}) RETURN labels(n)")
	expectOrdered(t, res, [][]any{{[]any{"A", "B"}}})
}

func TestSelfLoopSingleHopBothDirections(t *testing.T) {
	g := datasets.SelfLoop()
	e := NewEngine(g, Options{})
	// A single-hop undirected pattern over a self-loop matches the
	// relationship once per clause evaluation.
	res := run(t, e, "MATCH (x)-[r]-(y) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
	res = run(t, e, "MATCH (x)-[r]->(x) RETURN count(*) AS c")
	expectOrdered(t, res, [][]any{{1}})
}

func TestParameterDrivenPatternProperties(t *testing.T) {
	e := emptyEngine()
	res := runParams(t, e, "CREATE (n:Item $props) RETURN n.name, n.qty", map[string]any{
		"props": map[string]any{"name": "bolt", "qty": 7},
	})
	expectOrdered(t, res, [][]any{{"bolt", 7}})
	res = runParams(t, e, "MATCH (n:Item {name: $name}) RETURN n.qty", map[string]any{"name": "bolt"})
	expectOrdered(t, res, [][]any{{7}})
}

func TestTemporalFunctionsInQueries(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Event {name: 'kickoff', on: '2018-06-10'}), (:Event {name: 'deadline', on: '2018-09-01'})")
	res := run(t, e, `
		MATCH (e:Event)
		RETURN e.name AS name, year(date(e.on)) AS y
		ORDER BY date(e.on)`)
	expectOrdered(t, res, [][]any{
		{"kickoff", 2018},
		{"deadline", 2018},
	})
}

func TestUnionAllBagMultiplicity(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	res := run(t, e, `
		MATCH (t:Teacher) RETURN 'teacher' AS kind
		UNION ALL MATCH (s:Student) RETURN 'student' AS kind
		UNION ALL MATCH (n) RETURN 'node' AS kind`)
	if res.Len() != 3+1+4 {
		t.Errorf("UNION ALL should preserve multiplicities, got %d rows", res.Len())
	}
}
