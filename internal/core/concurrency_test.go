package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/value"
)

// TestConcurrentReadWriteHammer drives the engine from many goroutines
// mixing read-only and mutating queries. Run under -race it checks the
// engine's read/write lock discipline: readers share the engine, writers
// serialize, and no query observes a torn graph.
func TestConcurrentReadWriteHammer(t *testing.T) {
	g := datasets.SocialNetwork(datasets.SocialConfig{People: 200, FriendsEach: 4, Seed: 7})
	e := NewEngine(g, Options{})

	const (
		readers         = 8
		writers         = 4
		roundsPerWorker = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			queries := []string{
				"MATCH (p:Person) RETURN count(*) AS c",
				"MATCH (a:Person)-[:KNOWS]->(b) RETURN count(b) AS c",
				"MATCH (p:Person) WHERE p.age >= 40 RETURN count(*) AS c",
			}
			for i := 0; i < roundsPerWorker; i++ {
				res, err := e.Run(queries[i%len(queries)], nil)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != 1 {
					errs <- fmt.Errorf("reader %d: aggregate should return one row, got %d", id, res.Len())
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < roundsPerWorker; i++ {
				name := fmt.Sprintf("writer-%d-%d", id, i)
				// Create, mutate and delete so the graph churns while
				// readers scan it.
				if _, err := e.RunWithGoParams(
					"CREATE (:Scratch {name: $n})", map[string]any{"n": name}); err != nil {
					errs <- err
					return
				}
				if _, err := e.RunWithGoParams(
					"MATCH (s:Scratch {name: $n}) SET s.touched = true", map[string]any{"n": name}); err != nil {
					errs <- err
					return
				}
				if _, err := e.RunWithGoParams(
					"MATCH (s:Scratch {name: $n}) DETACH DELETE s", map[string]any{"n": name}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All scratch nodes were deleted; the original dataset must be intact.
	res := run(t, e, "MATCH (s:Scratch) RETURN count(*) AS c")
	if rows(res)[0][0].(int64) != 0 {
		t.Errorf("scratch nodes left behind: %v", rows(res)[0][0])
	}
	res = run(t, e, "MATCH (p:Person) RETURN count(*) AS c")
	if rows(res)[0][0].(int64) != 200 {
		t.Errorf("person count disturbed: %v", rows(res)[0][0])
	}
}

// TestResultsAreSnapshots checks that entity values in a result are
// detached copies: reading a returned node's properties after Run has
// released its lock must not race with (or observe) later writers.
func TestResultsAreSnapshots(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Person {name: 'Ada', age: 1})")

	res, err := e.Run("MATCH (p:Person) RETURN p", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate from other goroutines while we read the returned node; under
	// -race this fails if the result still points at live store maps.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := e.Run("MATCH (p:Person) SET p.age = p.age + 1", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	node := res.Table.Records[0].Get("p").(value.NodeValue).N
	for i := 0; i < 100; i++ {
		node.Property("age")
		node.PropertyKeys()
		node.Labels()
	}
	wg.Wait()

	// The snapshot shows the state as of the query that produced it.
	if got := value.ToGo(node.Property("age")); got != int64(1) {
		t.Errorf("snapshot should still see age = 1, got %v", got)
	}
	res2 := run(t, e, "MATCH (p:Person) RETURN p.age")
	if got := rows(res2)[0][0]; got != int64(201) {
		t.Errorf("live graph should see age = 201, got %v", got)
	}
}

// TestPlanCacheInvalidationOnIndex checks the epoch-based invalidation end
// to end: a cached label-scan plan must be recompiled into an index seek
// after CREATE INDEX, even though the query text is identical.
func TestPlanCacheInvalidationOnIndex(t *testing.T) {
	g, _ := datasets.Citations()
	e := NewEngine(g, Options{})
	const query = "MATCH (r:Researcher {name: 'Elin'}) RETURN r.name"

	res := run(t, e, query)
	if strings.Contains(res.Plan, "NodeIndexSeek") {
		t.Fatalf("no index exists yet, plan should not seek:\n%s", res.Plan)
	}
	// Re-run: same epoch, so the plan must come from the cache.
	run(t, e, query)
	if s := e.PlanCacheStats(); s.Hits == 0 {
		t.Errorf("second run should hit the plan cache: %+v", s)
	}

	g.CreateIndex("Researcher", "name")

	pl, err := e.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "NodeIndexSeek") {
		t.Errorf("after CREATE INDEX the cached plan must be invalidated and recompiled to NodeIndexSeek:\n%s", pl)
	}
	res = run(t, e, query)
	if !strings.Contains(res.Plan, "NodeIndexSeek") {
		t.Errorf("Run should also pick up the recompiled plan:\n%s", res.Plan)
	}
	if s := e.PlanCacheStats(); s.Invalidations == 0 {
		t.Errorf("index creation should have invalidated the cached plan: %+v", s)
	}
}

// TestPlanCacheInvalidationOnWrite checks that a mutating query moves the
// graph epoch so cached read plans are recompiled against fresh statistics.
func TestPlanCacheInvalidationOnWrite(t *testing.T) {
	e := emptyEngine()
	run(t, e, "CREATE (:Person {name: 'Ada'})")
	const query = "MATCH (p:Person) RETURN count(*) AS c"

	res := run(t, e, query)
	expectOrdered(t, res, [][]any{{1}})
	before := e.PlanCacheStats()

	run(t, e, "CREATE (:Person {name: 'Grace'})")
	res = run(t, e, query)
	expectOrdered(t, res, [][]any{{2}})

	after := e.PlanCacheStats()
	if after.Invalidations <= before.Invalidations {
		t.Errorf("a write should invalidate the cached read plan: before %+v after %+v", before, after)
	}
}

// TestPlanCacheHitsSkipRecompile checks the steady-state fast path: repeated
// runs of the same query text at an unchanged epoch are all cache hits.
func TestPlanCacheHitsSkipRecompile(t *testing.T) {
	g, _ := datasets.Teachers()
	e := NewEngine(g, Options{})
	const query = "MATCH (t:Teacher) RETURN count(*) AS c"
	for i := 0; i < 5; i++ {
		run(t, e, query)
	}
	s := e.PlanCacheStats()
	if s.Hits < 4 {
		t.Errorf("4 of 5 runs should be plan-cache hits: %+v", s)
	}
	if s.Entries != 1 {
		t.Errorf("one query text should occupy one entry: %+v", s)
	}
}
