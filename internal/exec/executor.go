// Package exec implements the runtime that evaluates compiled query plans
// against a property graph. Operators are executed as a push-based pipeline
// (the tuple-at-a-time producer/consumer model the paper cites for Neo4j's
// compiled runtime [Neumann 2011]); the operator vocabulary itself follows
// the Volcano-style plans of package plan.
//
// Rows are slotted records (result.NewSlotted over the plan's SlotTable):
// a flat slice of values indexed by the slots the planner assigned, so
// binding a variable is a slice store instead of a map insert. On top of
// that the pipeline follows a borrowed-row discipline: the record passed to
// an emit function is only valid for the duration of the call, and operators
// that produce many rows from one input reuse a single row buffer,
// rebinding their output slots in place. Any operator that retains rows
// beyond the emit call — Sort, the morsel merge buffers, the final result
// table, MERGE's match list — clones them first. This keeps the steady-state
// scan→filter→expand→aggregate path free of per-row allocations beyond the
// entity values themselves.
//
// The pattern-matching core implements the match(pi, G, u) relation of
// Section 4.2 of the paper: bag semantics, and relationship-isomorphism
// (no relationship is traversed twice within one MATCH clause), configurable
// to homomorphism or node-isomorphism as discussed in the paper's
// "configurable morphisms" future work.
package exec

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// Morphism selects the pattern-matching semantics.
type Morphism int

// Pattern-matching morphism modes (Section 8 of the paper).
const (
	// EdgeIsomorphism is Cypher's default: within one MATCH clause no
	// relationship is bound more than once.
	EdgeIsomorphism Morphism = iota
	// Homomorphism places no uniqueness restriction on matches.
	Homomorphism
	// NodeIsomorphism requires all node bindings within one MATCH clause to
	// be distinct.
	NodeIsomorphism
)

// String returns the name of the morphism mode.
func (m Morphism) String() string {
	switch m {
	case Homomorphism:
		return "homomorphism"
	case NodeIsomorphism:
		return "node-isomorphism"
	default:
		return "edge-isomorphism"
	}
}

// Options configures an Executor.
type Options struct {
	// Morphism selects the pattern-matching semantics; the default is
	// relationship (edge) isomorphism.
	Morphism Morphism
	// MaxVarLengthDepth bounds unbounded variable-length expansion when the
	// morphism places no uniqueness restriction (homomorphism), which would
	// otherwise produce infinite results on cyclic graphs. Zero means the
	// default of 15.
	MaxVarLengthDepth int
	// Parallelism is the maximum number of workers used for morsel-driven
	// execution of parallel-safe read plans. Zero or one means serial
	// execution. Plans that the analysis marks unsafe always run serially
	// regardless of this setting.
	Parallelism int
	// MorselSize is the number of scan rows per morsel (the unit of work
	// handed to a parallel worker). Zero means graph.DefaultMorselSize.
	MorselSize int
	// BatchSize is the number of rows per batch in the vectorized pipeline.
	// Zero means DefaultBatchSize (aligned with the morsel size); a negative
	// value disables vectorized execution entirely — the differential tests
	// and benchmarks use it to pin the row-at-a-time path.
	BatchSize int
	// QueryCtx is the query's governance state: cancellation, deadline and
	// memory budget. Nil means ungoverned — every check compiles down to a
	// nil-receiver early return, keeping the happy path free.
	QueryCtx *QueryCtx
}

// DefaultMaxVarLengthDepth is the homomorphism-mode depth cap.
const DefaultMaxVarLengthDepth = 15

// Executor evaluates plans against a graph. Its fields are read-only during
// execution, so the morsel workers of a parallel run share one executor.
type Executor struct {
	graph   *graph.Graph
	params  map[string]value.Value
	opts    Options
	evalCtx *eval.Context
	// qc is the query's governance state (opts.QueryCtx); nil when the query
	// is ungoverned. Shared read-only/atomically by all morsel workers, so
	// cooperative-check counters live at the call sites, never here.
	qc *QueryCtx
	// tab is the slot table of the plan being executed (set by Execute).
	// It is frozen at plan time, so sharing it across morsel workers is safe.
	tab *result.SlotTable
	// readOnly reports whether the executing plan cannot mutate the graph.
	// Read-only expansions iterate the store's live adjacency slices;
	// mutating plans iterate private copies so a DELETE emitted downstream
	// cannot pull the slice out from under the loop.
	readOnly bool
	// usedParallelism records how many workers the last Execute actually
	// used (1 for the serial path). Set before workers start; read by the
	// engine for result metadata.
	usedParallelism int
}

// New creates an executor over the graph with the given query parameters.
func New(g *graph.Graph, params map[string]value.Value, opts Options) *Executor {
	if opts.MaxVarLengthDepth <= 0 {
		opts.MaxVarLengthDepth = DefaultMaxVarLengthDepth
	}
	ex := &Executor{graph: g, params: params, opts: opts, qc: opts.QueryCtx}
	ex.evalCtx = &eval.Context{Params: params, PatternPredicate: ex.patternPredicate}
	return ex
}

// Execute runs the plan and returns the result table. Parallel-safe plans
// execute morsel-driven when the executor's Parallelism option exceeds one
// and the scan is large enough to amortise the worker pool; everything else
// takes the serial tuple-at-a-time path.
//
// Execute is the panic-containment boundary: a panicking operator (or scalar
// function) unwinds through the deferred cleanups — pooled batches, ID sets
// and pipeline state are released on the way out — and surfaces as a
// *PanicError instead of killing the process. The morsel workers of a
// parallel run carry their own recovery (a panic on a plain goroutine would
// bypass this one; see executeParallel).
func (ex *Executor) Execute(p *plan.Plan) (tbl *result.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			tbl, err = nil, newPanicError(r)
		}
	}()
	if err := ex.qc.Err(); err != nil {
		// Already canceled (client gone, deadline passed while queued):
		// don't start work.
		return nil, err
	}
	ex.usedParallelism = 1
	ex.readOnly = p.ReadOnly
	ex.tab = p.Slots
	if ex.tab == nil {
		// Hand-built plan (tests): compute slots locally. The plan itself is
		// not annotated — it may be shared, and plans are immutable after
		// publication.
		ex.tab = plan.ComputeSlots(p)
	}
	if ex.opts.Parallelism > 1 {
		if tbl, done, err := ex.executeParallel(p); done {
			return tbl, err
		}
	}
	if ex.batchSize() > 0 {
		if tbl, done, err := ex.executeVectorized(p); done {
			return tbl, err
		}
	}
	tbl = result.NewTable(p.Columns...)
	err = ex.run(p.Root, nil, func(r result.Record) error {
		// The table outlives the emit call; take ownership of the row.
		if err := ex.qc.ChargeRecord(r); err != nil {
			return err
		}
		tbl.Add(r.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// UsedParallelism reports how many workers the last Execute call used (1 for
// a serial run).
func (ex *Executor) UsedParallelism() int {
	if ex.usedParallelism < 1 {
		return 1
	}
	return ex.usedParallelism
}

// emitFn consumes one produced row; returning an error stops production.
// The record is borrowed: it is only valid for the duration of the call, and
// the producer may rebind its slots for the next row as soon as emit
// returns. Consumers that retain rows must Clone them.
type emitFn func(result.Record) error

// run executes the operator, producing rows into emit. arg is the outer row
// supplied to Argument leaves (used by Optional and other apply-style
// operators); it is nil at the top level.
func (ex *Executor) run(op plan.Operator, arg *result.Record, emit emitFn) error {
	switch o := op.(type) {
	case *plan.Start:
		r := result.NewSlotted(ex.tab)
		return emit(r)
	case *plan.Argument:
		if arg == nil {
			return errors.New("exec: Argument operator outside of an apply context")
		}
		// The outer row is borrowed from the enclosing pipeline; the inner
		// plan will rebind slots, so it works on its own copy.
		return emit(arg.Clone())

	case *nodeSource:
		// Morsel source of a parallel run: one row per node of the morsel
		// over the unit record (the scan's Input is known to be Start). The
		// single row buffer is rebound per node.
		r := result.NewSlotted(ex.tab)
		tick := 0
		for _, n := range o.nodes {
			if err := ex.qc.Tick(&tick); err != nil {
				return err
			}
			r.Set(o.varName, value.NewNode(n))
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	case *vecSource:
		// Vectorized segment of a serial run or of one morsel: batches flow
		// through the kernel chain and surviving rows re-enter this row
		// pipeline through the batch adapter.
		return ex.runVectorized(o, emit)
	case *rowSource:
		// Merged-stream source: replays the rows gathered at the barrier
		// into the serial tail of a parallel plan. The rows are owned by the
		// buffer, which is discarded afterwards, so they can be emitted (and
		// scribbled on by the tail) directly.
		tick := 0
		for _, r := range o.rows {
			if err := ex.qc.Tick(&tick); err != nil {
				return err
			}
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil

	case *plan.AllNodesScan:
		// The cancellation tick counter is hoisted out of the per-row closure:
		// an inner scan of a cross product is re-activated once per outer row,
		// and the cumulative count across activations is what bounds the time
		// between checks.
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			for _, n := range ex.graph.Nodes() {
				if err := ex.qc.Tick(&tick); err != nil {
					return err
				}
				r.Set(o.Var, value.NewNode(n))
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})
	case *plan.NodeByLabelScan:
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			for _, n := range ex.graph.NodesByLabel(o.Label) {
				if err := ex.qc.Tick(&tick); err != nil {
					return err
				}
				r.Set(o.Var, value.NewNode(n))
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})
	case *plan.NodeIndexSeek:
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			nodes, err := ex.indexSeekNodes(o, r)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				if err := ex.qc.Tick(&tick); err != nil {
					return err
				}
				r.Set(o.Var, value.NewNode(n))
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})
	case *plan.NodeIndexRangeSeek:
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			nodes, err := ex.rangeSeekNodes(o, r)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				if err := ex.qc.Tick(&tick); err != nil {
					return err
				}
				r.Set(o.Var, value.NewNode(n))
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})
	case *plan.NodeIndexPrefixSeek:
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			nodes, err := ex.prefixSeekNodes(o, r)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				if err := ex.qc.Tick(&tick); err != nil {
					return err
				}
				r.Set(o.Var, value.NewNode(n))
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})

	case *plan.Expand:
		return ex.run(o.Input, arg, func(r result.Record) error {
			return ex.expand(o, r, emit)
		})

	case *plan.Filter:
		return ex.run(o.Input, arg, func(r result.Record) error {
			ok, err := ex.evalCtx.EvaluateTruth(o.Predicate, r)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return emit(r)
		})

	case *plan.Optional:
		// argRow is hoisted out of the per-row closure so taking its address
		// does not allocate per driving row.
		var argRow result.Record
		return ex.run(o.Input, arg, func(outer result.Record) error {
			matched := false
			argRow = outer
			err := ex.run(o.Inner, &argRow, func(r result.Record) error {
				matched = true
				return emit(r)
			})
			if err != nil {
				return err
			}
			if matched {
				return nil
			}
			r := outer.Clone()
			for _, v := range o.IntroducedVars {
				if !r.Has(v) {
					r.Set(v, value.Null())
				}
			}
			return emit(r)
		})

	case *plan.ProjectPath:
		return ex.run(o.Input, arg, func(r result.Record) error {
			p, err := ex.buildPath(o.Part, r)
			if err != nil {
				return err
			}
			r.Set(o.Var, p)
			return emit(r)
		})

	case *plan.Unwind:
		tick := 0
		return ex.run(o.Input, arg, func(r result.Record) error {
			v, err := ex.evalCtx.Evaluate(o.Expr, r)
			if err != nil {
				return err
			}
			// Figure 7: a list unwinds element-wise, an empty list and null
			// produce no rows, and any other value produces a single row.
			switch {
			case value.IsNull(v):
				return nil
			case v.Kind() == value.KindList:
				l, _ := value.AsList(v)
				for _, el := range l.Elements() {
					if err := ex.qc.Tick(&tick); err != nil {
						return err
					}
					r.Set(o.Alias, el)
					if err := emit(r); err != nil {
						return err
					}
				}
				return nil
			default:
				r.Set(o.Alias, v)
				return emit(r)
			}
		})

	case *plan.Project:
		// The projection writes into its own scratch row (a copy of the
		// input plus the items) instead of the borrowed input row: an item
		// may shadow an upstream variable (RETURN a.name AS a), and the
		// operator that bound that variable will not rebind it before its
		// next emission.
		out := result.NewSlotted(ex.tab)
		return ex.run(o.Input, arg, func(r result.Record) error {
			out.CopyFrom(r)
			for _, item := range o.Items {
				v, err := ex.evalCtx.Evaluate(item.Expr, r)
				if err != nil {
					return err
				}
				out.Set(item.Name, v)
			}
			return emit(out)
		})

	case *plan.Aggregate:
		return ex.runAggregate(o, arg, emit)

	case *plan.Distinct:
		seen := map[string]bool{}
		vals := make([]value.Value, len(o.Columns))
		var keyBuf []byte
		return ex.run(o.Input, arg, func(r result.Record) error {
			for i, c := range o.Columns {
				vals[i] = r.Get(c)
			}
			keyBuf = value.AppendGroupKeyOf(keyBuf[:0], vals...)
			// m[string(buf)] compiles without allocating; the key string is
			// only materialised for rows seen for the first time.
			if seen[string(keyBuf)] {
				return nil
			}
			// The set retains one key string per distinct row; charge it.
			if err := ex.qc.Charge(int64(len(keyBuf)) + dedupEntryCost); err != nil {
				return err
			}
			seen[string(keyBuf)] = true
			return emit(r)
		})

	case *plan.Sort:
		var rows []result.Record
		if err := ex.run(o.Input, arg, func(r result.Record) error {
			// Sort materializes its whole input; every buffered clone is
			// charged against the query's memory budget.
			if err := ex.qc.ChargeRecord(r); err != nil {
				return err
			}
			rows = append(rows, r.Clone())
			return nil
		}); err != nil {
			return err
		}
		keys := make([][]value.Value, len(rows))
		for i, r := range rows {
			keys[i] = make([]value.Value, len(o.Keys))
			for j, k := range o.Keys {
				v, err := ex.sortKeyValue(k.Expr, r)
				if err != nil {
					return err
				}
				keys[i][j] = v
			}
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for j, k := range o.Keys {
				cmp := value.Compare(keys[idx[a]][j], keys[idx[b]][j])
				if k.Descending {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		for _, i := range idx {
			if err := emit(rows[i]); err != nil {
				return err
			}
		}
		return nil

	case *plan.Skip:
		nVal, err := ex.constantCount(o.Count, "SKIP")
		if err != nil {
			return err
		}
		skipped := int64(0)
		return ex.run(o.Input, arg, func(r result.Record) error {
			if skipped < nVal {
				skipped++
				return nil
			}
			return emit(r)
		})

	case *plan.Limit:
		nVal, err := ex.constantCount(o.Count, "LIMIT")
		if err != nil {
			return err
		}
		stop := errors.New("limit reached")
		count := int64(0)
		err = ex.run(o.Input, arg, func(r result.Record) error {
			if count >= nVal {
				return stop
			}
			count++
			if err := emit(r); err != nil {
				return err
			}
			if count >= nVal {
				return stop
			}
			return nil
		})
		if errors.Is(err, stop) {
			return nil
		}
		return err

	case *plan.SelectColumns:
		// The scope cut reuses one scratch row: wiped, then rebound to just
		// the selected columns for every input row.
		out := result.NewSlotted(ex.tab)
		return ex.run(o.Input, arg, func(r result.Record) error {
			out.Zero()
			for _, c := range o.Columns {
				out.Set(c, r.Get(c))
			}
			return emit(out)
		})

	case *plan.Union:
		if o.All {
			if err := ex.run(o.Left, arg, emit); err != nil {
				return err
			}
			return ex.run(o.Right, arg, emit)
		}
		seen := map[string]bool{}
		vals := make([]value.Value, len(o.Columns))
		var keyBuf []byte
		dedup := func(r result.Record) error {
			for i, c := range o.Columns {
				vals[i] = r.Get(c)
			}
			keyBuf = value.AppendGroupKeyOf(keyBuf[:0], vals...)
			if seen[string(keyBuf)] {
				return nil
			}
			if err := ex.qc.Charge(int64(len(keyBuf)) + dedupEntryCost); err != nil {
				return err
			}
			seen[string(keyBuf)] = true
			return emit(r)
		}
		if err := ex.run(o.Left, arg, dedup); err != nil {
			return err
		}
		return ex.run(o.Right, arg, dedup)

	case *plan.CreateOp:
		return ex.run(o.Input, arg, func(r result.Record) error {
			out, err := ex.createPattern(o.Pattern, r)
			if err != nil {
				return err
			}
			return emit(out)
		})
	case *plan.MergeOp:
		return ex.run(o.Input, arg, func(r result.Record) error {
			return ex.merge(o, r, emit)
		})
	case *plan.DeleteOp:
		return ex.run(o.Input, arg, func(r result.Record) error {
			if err := ex.deleteEntities(o, r); err != nil {
				return err
			}
			return emit(r)
		})
	case *plan.SetOp:
		return ex.run(o.Input, arg, func(r result.Record) error {
			if err := ex.applySetItems(o.Items, r); err != nil {
				return err
			}
			return emit(r)
		})
	case *plan.RemoveOp:
		return ex.run(o.Input, arg, func(r result.Record) error {
			if err := ex.applyRemoveItems(o.Items, r); err != nil {
				return err
			}
			return emit(r)
		})

	default:
		return fmt.Errorf("exec: unsupported operator %T", op)
	}
}

// sortKeyValue evaluates an ORDER BY key over a row. If the textual form of
// the expression matches a projected column name (e.g. ORDER BY r.name after
// RETURN r.name), that column is used directly so that ordering works after
// projection and aggregation.
func (ex *Executor) sortKeyValue(e ast.Expr, r result.Record) (value.Value, error) {
	if name := e.String(); r.Has(name) {
		return r.Get(name), nil
	}
	return ex.evalCtx.Evaluate(e, r)
}

// constantCount evaluates a SKIP/LIMIT expression (which may reference
// parameters but not variables) to a non-negative integer.
func (ex *Executor) constantCount(e ast.Expr, what string) (int64, error) {
	v, err := ex.evalCtx.Evaluate(e, result.NewRecord())
	if err != nil {
		return 0, err
	}
	n, ok := value.AsInt(v)
	if !ok || n < 0 {
		return 0, fmt.Errorf("exec: %s requires a non-negative integer, got %s", what, v.String())
	}
	return n, nil
}

// aggGroup is the accumulated state of one group: its grouping-key values
// and one aggregator per aggregation item.
type aggGroup struct {
	keyVals []value.Value
	aggs    []eval.Aggregator
}

// aggState accumulates an Aggregate operator's groups. The serial path feeds
// it all input rows; the parallel path builds one state per morsel and folds
// them together at the barrier (in morsel order, so first-seen group order
// and order-sensitive aggregates match the serial engine).
type aggState struct {
	ex     *Executor
	o      *plan.Aggregate
	groups map[string]*aggGroup
	order  []string // first-seen group order
	// keyScratch holds the current row's grouping-key values; it is copied
	// only when the row opens a new group. keyBuf is the reused group-key
	// encoding buffer: rows of existing groups never materialise the key
	// string (the groups lookup goes through string(keyBuf), which Go
	// compiles allocation-free).
	keyScratch []value.Value
	keyBuf     []byte
	// retainedRowCost is the estimated bytes an input row adds to aggregator
	// state beyond its group entry: collect() keeps every value, DISTINCT
	// aggregators keep every distinct one. Zero for bounded aggregators
	// (count/sum/min/...), whose state does not grow with the input.
	retainedRowCost int64
}

func (ex *Executor) newAggState(o *plan.Aggregate) *aggState {
	s := &aggState{ex: ex, o: o, groups: map[string]*aggGroup{}, keyScratch: make([]value.Value, len(o.Grouping))}
	for _, a := range o.Aggregations {
		if a.Func == "collect" || a.Distinct {
			s.retainedRowCost += aggRetainedValueCost
		}
	}
	return s
}

func (s *aggState) newGroup(keyVals []value.Value) (*aggGroup, error) {
	g := &aggGroup{keyVals: keyVals}
	for _, a := range s.o.Aggregations {
		if a.Arg == nil {
			g.aggs = append(g.aggs, eval.NewCountStarAggregator())
			continue
		}
		agg, err := eval.NewAggregator(a.Func, a.Distinct)
		if err != nil {
			return nil, err
		}
		g.aggs = append(g.aggs, agg)
	}
	return g, nil
}

// add folds one input row into the state.
func (s *aggState) add(r result.Record) error {
	for i, gi := range s.o.Grouping {
		v, err := s.ex.evalCtx.Evaluate(gi.Expr, r)
		if err != nil {
			return err
		}
		s.keyScratch[i] = v
	}
	s.keyBuf = value.AppendGroupKeyOf(s.keyBuf[:0], s.keyScratch...)
	g, ok := s.groups[string(s.keyBuf)]
	if !ok {
		// A new group materializes its key string, key values and one
		// aggregator per item; charge before allocating.
		cost := int64(len(s.keyBuf)) + aggGroupCost + int64(len(s.o.Aggregations))*aggStateCost
		if err := s.ex.qc.Charge(cost); err != nil {
			return err
		}
		var err error
		g, err = s.newGroup(append([]value.Value(nil), s.keyScratch...))
		if err != nil {
			return err
		}
		key := string(s.keyBuf)
		s.groups[key] = g
		s.order = append(s.order, key)
	}
	if s.retainedRowCost > 0 {
		// collect()/DISTINCT aggregators grow with their input even within
		// one group.
		if err := s.ex.qc.Charge(s.retainedRowCost); err != nil {
			return err
		}
	}
	for i, a := range s.o.Aggregations {
		if a.Arg == nil {
			if err := g.aggs[i].Add(value.Null()); err != nil {
				return err
			}
			continue
		}
		v, err := s.ex.evalCtx.Evaluate(a.Arg, r)
		if err != nil {
			return err
		}
		if err := g.aggs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// merge folds another partial state (over the same Aggregate operator) into
// this one; the other state's groups keep their relative first-seen order.
func (s *aggState) merge(other *aggState) error {
	if other == nil {
		return nil
	}
	for _, key := range other.order {
		og := other.groups[key]
		g, ok := s.groups[key]
		if !ok {
			s.groups[key] = og
			s.order = append(s.order, key)
			continue
		}
		for i := range g.aggs {
			if err := g.aggs[i].Merge(og.aggs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit produces the aggregated output rows in first-seen group order. The
// rows are freshly allocated (one per group), so the serial tail may rebind
// their slots freely.
func (s *aggState) emit(emit emitFn) error {
	// A global aggregation (no grouping keys) over an empty input still
	// produces one row, e.g. MATCH (n:Missing) RETURN count(n) = 0.
	if len(s.groups) == 0 && len(s.o.Grouping) == 0 {
		g, err := s.newGroup(nil)
		if err != nil {
			return err
		}
		s.groups[""] = g
		s.order = append(s.order, "")
	}
	for _, key := range s.order {
		g := s.groups[key]
		out := result.NewSlotted(s.ex.tab)
		for i, gi := range s.o.Grouping {
			out.Set(gi.Name, g.keyVals[i])
		}
		for i, a := range s.o.Aggregations {
			out.Set(a.Name, g.aggs[i].Result())
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Executor) runAggregate(o *plan.Aggregate, arg *result.Record, emit emitFn) error {
	st := ex.newAggState(o)
	if err := ex.run(o.Input, arg, st.add); err != nil {
		return err
	}
	return st.emit(emit)
}
