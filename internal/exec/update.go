package exec

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// createPattern creates the entities of a CREATE pattern for one row,
// returning the row extended with the newly bound variables. The input row
// is borrowed and left untouched; the returned row is an independent copy.
func (ex *Executor) createPattern(pattern ast.Pattern, rec result.Record) (result.Record, error) {
	out := rec.Clone()
	for _, part := range pattern.Parts {
		if err := ex.createPart(part, &out); err != nil {
			return result.Record{}, err
		}
	}
	return out, nil
}

func (ex *Executor) createPart(part ast.PatternPart, out *result.Record) error {
	nodes := make([]*graph.Node, len(part.Nodes))
	for i, np := range part.Nodes {
		n, err := ex.resolveOrCreateNode(np, out)
		if err != nil {
			return err
		}
		nodes[i] = n
	}
	for i, rp := range part.Rels {
		if rp.VarLength {
			return errors.New("exec: variable-length relationships cannot be used in CREATE")
		}
		if len(rp.Types) != 1 {
			return errors.New("exec: CREATE requires exactly one relationship type")
		}
		if rp.Direction == ast.DirBoth {
			return errors.New("exec: CREATE requires a directed relationship")
		}
		props, err := ex.evalPropertyMap(rp.Properties, *out)
		if err != nil {
			return err
		}
		src, tgt := nodes[i], nodes[i+1]
		if rp.Direction == ast.DirIncoming {
			src, tgt = tgt, src
		}
		rel, err := ex.graph.CreateRelationship(src, tgt, rp.Types[0], props)
		if err != nil {
			return err
		}
		if rp.Variable != "" {
			out.Set(rp.Variable, value.NewRelationship(rel))
		}
	}
	if part.Variable != "" {
		p, err := ex.buildPath(part, *out)
		if err != nil {
			return err
		}
		out.Set(part.Variable, p)
	}
	return nil
}

// resolveOrCreateNode reuses a node already bound to the pattern's variable,
// or creates a new one from the pattern's labels and properties.
func (ex *Executor) resolveOrCreateNode(np ast.NodePattern, out *result.Record) (*graph.Node, error) {
	if np.Variable != "" && out.Has(np.Variable) {
		v := out.Get(np.Variable)
		if value.IsNull(v) {
			return nil, fmt.Errorf("exec: cannot CREATE using null variable %q", np.Variable)
		}
		n, err := asGraphNode(v)
		if err != nil {
			return nil, err
		}
		if len(np.Labels) > 0 || (np.Properties != nil && len(np.Properties.Keys) > 0) {
			return nil, fmt.Errorf("exec: variable %q is already bound; it cannot be given labels or properties in CREATE", np.Variable)
		}
		return n, nil
	}
	props, err := ex.evalPropertyMap(np.Properties, *out)
	if err != nil {
		return nil, err
	}
	n := ex.graph.CreateNode(np.Labels, props)
	if np.Variable != "" {
		out.Set(np.Variable, value.NewNode(n))
	}
	return n, nil
}

// evalPropertyMap evaluates a pattern's inline property map. A single
// parameter entry (written `{$props}` or `(n $props)`) expands the map-valued
// parameter.
func (ex *Executor) evalPropertyMap(props *ast.MapLiteral, rec result.Record) (map[string]value.Value, error) {
	if props == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(props.Keys))
	for i, k := range props.Keys {
		v, err := ex.evalCtx.Evaluate(props.Values[i], rec)
		if err != nil {
			return nil, err
		}
		if len(k) > 0 && k[0] == '$' {
			m, ok := value.AsMap(v)
			if !ok {
				return nil, fmt.Errorf("exec: parameter %s must be a map of properties", k)
			}
			for _, mk := range m.Keys() {
				mv, _ := m.Get(mk)
				if !value.Storable(mv) {
					return nil, fmt.Errorf("exec: a %s cannot be stored as a property value (key %q)", mv.Kind(), mk)
				}
				out[mk] = mv
			}
			continue
		}
		if !value.Storable(v) {
			return nil, fmt.Errorf("exec: a %s cannot be stored as a property value (key %q)", v.Kind(), k)
		}
		out[k] = v
	}
	return out, nil
}

// merge implements the MERGE clause for one row: emit every existing match,
// or create the pattern when there is none. The match rows are retained
// across the create/set decision, so they are cloned from the borrowed input
// (matchPartRows already extends copies).
func (ex *Executor) merge(o *plan.MergeOp, rec result.Record, emit emitFn) error {
	var matches []result.Record
	if err := ex.matchPartRows(o.Part, rec, func(r result.Record) error {
		matches = append(matches, r.Clone())
		return nil
	}); err != nil {
		return err
	}
	if len(matches) > 0 {
		for _, m := range matches {
			if err := ex.applySetItems(o.OnMatch, m); err != nil {
				return err
			}
			if err := emit(m); err != nil {
				return err
			}
		}
		return nil
	}
	out := rec.Clone()
	if err := ex.createPart(o.Part, &out); err != nil {
		return err
	}
	if err := ex.applySetItems(o.OnCreate, out); err != nil {
		return err
	}
	return emit(out)
}

// deleteEntities implements DELETE / DETACH DELETE for one row.
func (ex *Executor) deleteEntities(o *plan.DeleteOp, rec result.Record) error {
	for _, e := range o.Exprs {
		v, err := ex.evalCtx.Evaluate(e, rec)
		if err != nil {
			return err
		}
		if err := ex.deleteValue(v, o.Detach); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Executor) deleteValue(v value.Value, detach bool) error {
	switch {
	case value.IsNull(v):
		return nil
	case v.Kind() == value.KindNode:
		n, err := asGraphNode(v)
		if err != nil {
			return err
		}
		if detach {
			err = ex.graph.DetachDeleteNode(n)
		} else {
			err = ex.graph.DeleteNode(n)
		}
		if errors.Is(err, graph.ErrNotFound) {
			return nil // already deleted by an earlier row
		}
		return err
	case v.Kind() == value.KindRelationship:
		r, err := asGraphRelationship(v)
		if err != nil {
			return err
		}
		if err := ex.graph.DeleteRelationship(r); err != nil && !errors.Is(err, graph.ErrNotFound) {
			return err
		}
		return nil
	case v.Kind() == value.KindPath:
		p, _ := value.AsPath(v)
		for _, r := range p.Rels {
			if err := ex.deleteValue(value.NewRelationship(r), detach); err != nil {
				return err
			}
		}
		for _, n := range p.Nodes {
			if err := ex.deleteValue(value.NewNode(n), detach); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("exec: DELETE expects nodes, relationships or paths, got %s", v.Kind())
	}
}

// applySetItems applies SET items (also used by MERGE's ON CREATE / ON MATCH).
func (ex *Executor) applySetItems(items []ast.SetItem, rec result.Record) error {
	for _, item := range items {
		if err := ex.applySetItem(item, rec); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Executor) applySetItem(item ast.SetItem, rec result.Record) error {
	switch item.Kind {
	case ast.SetProperty:
		subject, err := ex.evalCtx.Evaluate(item.Property.Subject, rec)
		if err != nil {
			return err
		}
		if value.IsNull(subject) {
			return nil
		}
		v, err := ex.evalCtx.Evaluate(item.Value, rec)
		if err != nil {
			return err
		}
		return ex.setProperty(subject, item.Property.Key, v)

	case ast.SetAllProperties, ast.SetMergeProperties:
		subject := rec.Get(item.Variable)
		if value.IsNull(subject) {
			return nil
		}
		v, err := ex.evalCtx.Evaluate(item.Value, rec)
		if err != nil {
			return err
		}
		props, err := propertyMapOf(v)
		if err != nil {
			return err
		}
		if item.Kind == ast.SetAllProperties {
			return ex.replaceProperties(subject, props)
		}
		for k, pv := range props {
			if err := ex.setProperty(subject, k, pv); err != nil {
				return err
			}
		}
		return nil

	case ast.SetLabels:
		subject := rec.Get(item.Variable)
		if value.IsNull(subject) {
			return nil
		}
		n, err := asGraphNode(subject)
		if err != nil {
			return err
		}
		for _, l := range item.Labels {
			if err := ex.graph.AddNodeLabel(n, l); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("exec: unsupported SET item kind %d", item.Kind)
	}
}

// propertyMapOf converts a SET source value (a map, node or relationship)
// into a property map.
func propertyMapOf(v value.Value) (map[string]value.Value, error) {
	switch {
	case v.Kind() == value.KindMap:
		m, _ := value.AsMap(v)
		out := make(map[string]value.Value, m.Len())
		for _, k := range m.Keys() {
			pv, _ := m.Get(k)
			out[k] = pv
		}
		return out, nil
	case v.Kind() == value.KindNode:
		n, _ := value.AsNode(v)
		out := map[string]value.Value{}
		for _, k := range n.PropertyKeys() {
			out[k] = n.Property(k)
		}
		return out, nil
	case v.Kind() == value.KindRelationship:
		r, _ := value.AsRelationship(v)
		out := map[string]value.Value{}
		for _, k := range r.PropertyKeys() {
			out[k] = r.Property(k)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: SET requires a map, node or relationship, got %s", v.Kind())
	}
}

func (ex *Executor) setProperty(subject value.Value, key string, v value.Value) error {
	if !value.Storable(v) {
		return fmt.Errorf("exec: a %s cannot be stored as a property value", v.Kind())
	}
	switch subject.Kind() {
	case value.KindNode:
		n, err := asGraphNode(subject)
		if err != nil {
			return err
		}
		return ex.graph.SetNodeProperty(n, key, v)
	case value.KindRelationship:
		r, err := asGraphRelationship(subject)
		if err != nil {
			return err
		}
		return ex.graph.SetRelationshipProperty(r, key, v)
	default:
		return fmt.Errorf("exec: cannot SET a property on a %s", subject.Kind())
	}
}

func (ex *Executor) replaceProperties(subject value.Value, props map[string]value.Value) error {
	for k, v := range props {
		if !value.Storable(v) {
			return fmt.Errorf("exec: a %s cannot be stored as a property value (key %q)", v.Kind(), k)
		}
	}
	switch subject.Kind() {
	case value.KindNode:
		n, err := asGraphNode(subject)
		if err != nil {
			return err
		}
		return ex.graph.ReplaceNodeProperties(n, props)
	case value.KindRelationship:
		r, err := asGraphRelationship(subject)
		if err != nil {
			return err
		}
		return ex.graph.ReplaceRelationshipProperties(r, props)
	default:
		return fmt.Errorf("exec: cannot SET properties on a %s", subject.Kind())
	}
}

// applyRemoveItems applies REMOVE items.
func (ex *Executor) applyRemoveItems(items []ast.RemoveItem, rec result.Record) error {
	for _, item := range items {
		switch item.Kind {
		case ast.RemoveProperty:
			subject, err := ex.evalCtx.Evaluate(item.Property.Subject, rec)
			if err != nil {
				return err
			}
			if value.IsNull(subject) {
				continue
			}
			if err := ex.setProperty(subject, item.Property.Key, value.Null()); err != nil {
				return err
			}
		case ast.RemoveLabels:
			subject := rec.Get(item.Variable)
			if value.IsNull(subject) {
				continue
			}
			n, err := asGraphNode(subject)
			if err != nil {
				return err
			}
			for _, l := range item.Labels {
				if err := ex.graph.RemoveNodeLabel(n, l); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
