package exec

// Morsel-driven parallel execution of read-only plans. The scan at the
// bottom of a parallel-safe plan (see plan.AnalyzeParallelism) is
// partitioned into morsels — fixed-size slices of the node array — and a
// bounded pool of workers runs the per-row streaming segment of the plan
// over morsels pulled from a shared counter. Results meet at a barrier:
//
//   - plans with an Aggregate combine morsel-local partial aggregation
//     states in morsel order (so group order and order-sensitive aggregates
//     like collect match the serial engine exactly);
//   - plans whose tail contains a Sort or Distinct use an order-preserving
//     merge (per-morsel buffers concatenated in morsel order), which makes
//     ORDER BY output — including stable-sort tie-breaking — byte-identical
//     to serial execution;
//   - all other plans use a cheap unordered append under a mutex.
//
// The operators above the merge point run serially over the merged stream.
// Workers share the executor (its fields are read-only during execution) and
// run under the engine's shared query lock, so they see one consistent
// snapshot of the graph.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
)

// nodeSource is the synthetic leaf operator that replaces Start+scan inside
// a morsel worker: it produces one row per node of its morsel.
type nodeSource struct {
	varName string
	nodes   []*graph.Node
}

func (s *nodeSource) Describe() string      { return fmt.Sprintf("MorselScan(%s)", s.varName) }
func (s *nodeSource) Source() plan.Operator { return nil }

// rowSource is the synthetic leaf operator that feeds the merged parallel
// stream into the serial tail of the plan.
type rowSource struct {
	rows []result.Record
}

func (s *rowSource) Describe() string      { return "MergedRows" }
func (s *rowSource) Source() plan.Operator { return nil }

// buildChain rebuilds the operator chain (bottom-up order) on top of a new
// input, shallow-copying each operator. The analysis only admits operator
// types listed here, so an error indicates a bug rather than a user query.
func buildChain(input plan.Operator, ops []plan.Operator) (plan.Operator, error) {
	cur := input
	for _, op := range ops {
		switch o := op.(type) {
		case *plan.Filter:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Expand:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Project:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Unwind:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.ProjectPath:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Optional:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.SelectColumns:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Sort:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Distinct:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Skip:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Limit:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.Aggregate:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.AllNodesScan:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.NodeByLabelScan:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.NodeIndexSeek:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.NodeIndexRangeSeek:
			c := *o
			c.Input = cur
			cur = &c
		case *plan.NodeIndexPrefixSeek:
			c := *o
			c.Input = cur
			cur = &c
		default:
			return nil, fmt.Errorf("exec: operator %T cannot be rebased for parallel execution", op)
		}
	}
	return cur, nil
}

// executeParallel attempts a morsel-driven run of the plan. done is false
// when the plan (or the current graph size) does not warrant parallelism and
// the caller should take the serial path.
func (ex *Executor) executeParallel(p *plan.Plan) (tbl *result.Table, done bool, err error) {
	info := p.Parallel
	if info == nil {
		info = plan.AnalyzeParallelism(p)
	}
	if !info.Safe {
		return nil, false, nil
	}
	morselSize := ex.opts.MorselSize
	if morselSize <= 0 {
		morselSize = graph.DefaultMorselSize
	}
	var varName string
	var morsels [][]*graph.Node
	switch s := info.Scan.(type) {
	case *plan.AllNodesScan:
		varName = s.Var
		morsels = ex.graph.NodeMorsels(morselSize)
	case *plan.NodeByLabelScan:
		varName = s.Var
		morsels = ex.graph.LabelMorsels(s.Label, morselSize)
	case *plan.NodeIndexSeek:
		// An index seek in leaf position evaluates its operand over the unit
		// row (no pattern variable is in scope at a leaf) and yields a node
		// set that partitions like a scan. Evaluation errors fall back to the
		// serial path, which reports them identically.
		nodes, err := ex.indexSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName = s.Var
		morsels = graph.Morsels(nodes, morselSize)
	case *plan.NodeIndexRangeSeek:
		nodes, err := ex.rangeSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName = s.Var
		morsels = graph.Morsels(nodes, morselSize)
	case *plan.NodeIndexPrefixSeek:
		nodes, err := ex.prefixSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName = s.Var
		morsels = graph.Morsels(nodes, morselSize)
	default:
		return nil, false, nil
	}
	// A scan that fits in one morsel cannot amortise the pool; stay serial.
	if len(morsels) < 2 {
		return nil, false, nil
	}
	workers := ex.opts.Parallelism
	if workers > len(morsels) {
		workers = len(morsels)
	}
	ex.usedParallelism = workers

	// When the plan's vectorized analysis covers a prefix of the streaming
	// segment over the same scan, each worker pushes its morsel through the
	// batched kernels and only the remainder of the segment runs
	// row-at-a-time. Both analyses walk the same operator chain, so pointer
	// equality identifies the shared prefix.
	vecK := 0
	if ex.batchSize() > 0 {
		vinfo := p.Vector
		if vinfo == nil {
			vinfo = plan.AnalyzeVectorization(p)
		}
		if vinfo.Eligible && vinfo.Scan == info.Scan {
			for vecK < len(vinfo.Batched) && vecK < len(info.Streaming) && vinfo.Batched[vecK] == info.Streaming[vecK] {
				vecK++
			}
		}
	}
	vecOps := make([]plan.Operator, 0, vecK)
	if vecK > 0 {
		vecOps = append(vecOps, info.Streaming[:vecK]...)
	}

	type morselOut struct {
		rows []result.Record
		agg  *aggState
	}
	outs := make([]morselOut, len(morsels))
	var (
		mergeMu   sync.Mutex
		unordered []result.Record
	)
	errs := make([]error, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic on a worker goroutine would bypass Execute's recovery
			// and kill the process; contain it here and fan the failure out
			// to the other workers like any morsel error. The worker's pooled
			// state (batches, ID sets) is released by the deferred handlers
			// inside the unwound pipeline.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = newPanicError(r)
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(morsels) {
					return
				}
				// Cancellation check at the morsel boundary: a canceled query
				// stops all workers within one morsel of work each (the scan
				// loops inside the morsel tick at row granularity too).
				var top plan.Operator
				err := ex.qc.Err()
				if err == nil {
					if vecK > 0 {
						top, err = buildChain(&vecSource{varName: varName, nodes: morsels[i], ops: vecOps}, info.Streaming[vecK:])
					} else {
						top, err = buildChain(&nodeSource{varName: varName, nodes: morsels[i]}, info.Streaming)
					}
				}
				if err == nil {
					switch {
					case info.Agg != nil:
						st := ex.newAggState(info.Agg)
						err = ex.run(top, nil, st.add)
						outs[i].agg = st
					case info.Ordered:
						var buf []result.Record
						err = ex.run(top, nil, func(r result.Record) error {
							// Rows are borrowed from the worker's pipeline;
							// the buffer outlives the emit, so copy (and
							// charge the retained copy against the budget).
							if err := ex.qc.ChargeRecord(r); err != nil {
								return err
							}
							buf = append(buf, r.Clone())
							return nil
						})
						outs[i].rows = buf
					default:
						var buf []result.Record
						err = ex.run(top, nil, func(r result.Record) error {
							if err := ex.qc.ChargeRecord(r); err != nil {
								return err
							}
							buf = append(buf, r.Clone())
							return nil
						})
						mergeMu.Lock()
						unordered = append(unordered, buf...)
						mergeMu.Unlock()
					}
				}
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, true, e
		}
	}

	// Barrier: merge morsel outputs into the input stream of the serial tail.
	var rows []result.Record
	switch {
	case info.Agg != nil:
		merged := ex.newAggState(info.Agg)
		for i := range outs {
			if err := merged.merge(outs[i].agg); err != nil {
				return nil, true, err
			}
		}
		if err := merged.emit(func(r result.Record) error {
			rows = append(rows, r)
			return nil
		}); err != nil {
			return nil, true, err
		}
	case info.Ordered:
		total := 0
		for i := range outs {
			total += len(outs[i].rows)
		}
		rows = make([]result.Record, 0, total)
		for i := range outs {
			rows = append(rows, outs[i].rows...)
		}
	default:
		rows = unordered
	}

	top, err := buildChain(&rowSource{rows: rows}, info.Rest)
	if err != nil {
		return nil, true, err
	}
	tbl = result.NewTable(p.Columns...)
	if err := ex.run(top, nil, func(r result.Record) error {
		// The table outlives the emit call; take ownership of the row.
		if err := ex.qc.ChargeRecord(r); err != nil {
			return err
		}
		tbl.Add(r.Clone())
		return nil
	}); err != nil {
		return nil, true, err
	}
	return tbl, true, nil
}
