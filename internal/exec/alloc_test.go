package exec

// Allocation regression tests for the slotted row runtime. The borrowed-row
// pipeline promises that the steady-state scan and single-hop expand paths
// allocate nothing per row beyond the entity values themselves (one
// NodeValue and one RelationshipValue box per emitted row); these tests pin
// that budget with testing.AllocsPerRun so a future change that reintroduces
// a per-row map or clone fails loudly.

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// hubGraph builds one :Hub node with fanout outgoing :T relationships to
// :Leaf nodes.
func hubGraph(fanout int) (*graph.Graph, *graph.Node) {
	g := graph.New()
	hub := g.CreateNode([]string{"Hub"}, nil)
	for i := 0; i < fanout; i++ {
		leaf := g.CreateNode([]string{"Leaf"}, map[string]value.Value{"i": value.NewInt(int64(i))})
		if _, err := g.CreateRelationship(hub, leaf, "T", nil); err != nil {
			panic(err)
		}
	}
	return g, hub
}

// TestExpandAllocBudget asserts the single-hop expand hot path stays within
// two allocations per emitted row (the relationship and node value boxes),
// plus a small per-query constant.
func TestExpandAllocBudget(t *testing.T) {
	const fanout = 512
	g, _ := hubGraph(fanout)
	p := &plan.Plan{
		Root: &plan.Expand{
			Input:     &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "a", Label: "Hub"},
			FromVar:   "a",
			RelVar:    "r",
			ToVar:     "b",
			Types:     []string{"T"},
			Direction: ast.DirOutgoing,
		},
		Columns:  []string{"b"},
		ReadOnly: true,
	}
	ex := New(g, nil, Options{})
	ex.tab = plan.ComputeSlots(p)
	ex.readOnly = true

	rows := 0
	runOnce := func() {
		rows = 0
		if err := ex.run(p.Root, nil, func(result.Record) error {
			rows++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm the scan snapshot
	if rows != fanout {
		t.Fatalf("expected %d rows, got %d", fanout, rows)
	}
	allocs := testing.AllocsPerRun(20, runOnce)
	perRow := allocs / float64(fanout)
	const budget = 2.1 // 2 value boxes per row + the per-query constant
	if perRow > budget {
		t.Errorf("single-hop expand allocates %.2f allocs/row (%.0f total for %d rows), budget %.1f",
			perRow, allocs, fanout, budget)
	}
}

// TestLabelScanEmitAllocBudget asserts a label scan emits rows with exactly
// one allocation per row (the node value box): the scan snapshot and the
// reused row buffer contribute nothing.
func TestLabelScanEmitAllocBudget(t *testing.T) {
	const n = 512
	g, _ := hubGraph(n)
	p := &plan.Plan{
		Root:     &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"},
		Columns:  []string{"x"},
		ReadOnly: true,
	}
	ex := New(g, nil, Options{})
	ex.tab = plan.ComputeSlots(p)
	ex.readOnly = true
	runOnce := func() {
		if err := ex.run(p.Root, nil, func(result.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	runOnce()
	allocs := testing.AllocsPerRun(20, runOnce)
	perRow := allocs / float64(n)
	if perRow > 1.1 {
		t.Errorf("label scan allocates %.2f allocs/row (%.0f total for %d rows), budget 1.1", perRow, allocs, n)
	}
}

// TestExpandSkipsUniquenessSetWhenUnconstrained verifies the first expand of
// a MATCH (no earlier relationship variables) never builds a uniqueness set,
// and that constrained expands still enforce relationship isomorphism.
func TestExpandSkipsUniquenessSetWhenUnconstrained(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	if _, err := g.CreateRelationship(a, b, "T", nil); err != nil {
		t.Fatal(err)
	}
	// (a)-[r1:T]->(b)<-[r2:T]-(a) must not reuse the single relationship
	// under edge isomorphism: one hop out, zero rows back.
	tbl := runQuery(t, g, Options{}, "MATCH (x:A)-[r1:T]->(y:B)<-[r2:T]-(z) RETURN r1, r2")
	if tbl.Len() != 0 {
		t.Errorf("relationship isomorphism violated: got %d rows", tbl.Len())
	}
	// Homomorphism allows the reuse.
	tbl = runQuery(t, g, Options{Morphism: Homomorphism}, "MATCH (x:A)-[r1:T]->(y:B)<-[r2:T]-(z) RETURN r1, r2")
	if tbl.Len() != 1 {
		t.Errorf("homomorphism should allow reuse: got %d rows", tbl.Len())
	}
}

// TestBorrowedRowsSurviveRetainingOperators covers the operators that must
// clone borrowed rows: Sort buffers, MERGE match lists, and the result
// table. A query whose rows are all distinct would pass even with aliasing
// bugs; these shapes produce many rows from one reused buffer, so aliasing
// would collapse them to copies of the last row.
func TestBorrowedRowsSurviveRetainingOperators(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.CreateNode([]string{"N"}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	tbl := runQuery(t, g, Options{}, "MATCH (n:N) RETURN n.i AS i ORDER BY i DESC")
	if tbl.Len() != 10 {
		t.Fatalf("expected 10 rows, got %d", tbl.Len())
	}
	for i := 0; i < 10; i++ {
		want := int64(9 - i)
		if got, _ := value.AsInt(tbl.Records[i].Get("i")); got != want {
			t.Fatalf("row %d = %v, want %d (aliased row buffers?)", i, tbl.Records[i].Get("i"), want)
		}
	}
	// Unsorted retention via the result table.
	tbl = runQuery(t, g, Options{}, "MATCH (n:N) RETURN n.i AS i")
	seen := map[int64]bool{}
	for i := range tbl.Records {
		v, _ := value.AsInt(tbl.Records[i].Get("i"))
		if seen[v] {
			t.Fatalf("duplicate row value %d: emitted rows were retained without cloning", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("expected 10 distinct values, got %d", len(seen))
	}
}

// TestProjectShadowingVariable pins the regression where a projection item
// shadowing a pattern variable (RETURN a.name AS a) scribbled over the
// scan's binding in the shared row buffer.
func TestProjectShadowingVariable(t *testing.T) {
	g := graph.New()
	n1 := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("x")})
	n2 := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("y")})
	n3 := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("z")})
	for _, to := range []*graph.Node{n2, n3} {
		if _, err := g.CreateRelationship(n1, to, "T", nil); err != nil {
			t.Fatal(err)
		}
	}
	tbl := runQuery(t, g, Options{}, "MATCH (a:P)-[:T]->(b:P) RETURN a.name AS a, b.name AS b")
	if tbl.Len() != 2 {
		t.Fatalf("expected 2 rows, got %d:\n%s", tbl.Len(), tbl.String())
	}
	for i := range tbl.Records {
		a, _ := value.AsString(tbl.Records[i].Get("a"))
		if a != "x" {
			t.Fatalf("row %d: a = %q, want \"x\" (projection clobbered the scan variable)", i, a)
		}
	}
}

// TestSlotOverflowBindings exercises names outside the plan's slot table
// (list-comprehension and reduce binders) alongside slotted variables.
func TestSlotOverflowBindings(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"N"}, map[string]value.Value{"xs": value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3))})
	tbl := runQuery(t, g, Options{},
		"MATCH (n:N) RETURN [x IN n.xs WHERE x > 1 | x * 10] AS big, reduce(acc = 0, x IN n.xs | acc + x) AS total")
	if tbl.Len() != 1 {
		t.Fatalf("expected 1 row, got %d", tbl.Len())
	}
	if got := tbl.Records[0].Get("big").String(); got != "[20, 30]" {
		t.Errorf("big = %s", got)
	}
	if got, _ := value.AsInt(tbl.Records[0].Get("total")); got != 6 {
		t.Errorf("total = %d", got)
	}
}

// BenchmarkExpandHot drives the expand loop alone: one hub row in, fanout
// rows out, no projection or aggregation above it. This is the tightest
// emit loop the runtime has; ns/op and allocs/op here bound every MATCH.
func BenchmarkExpandHot(b *testing.B) {
	for _, fanout := range []int{16, 256} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			g, _ := hubGraph(fanout)
			p := &plan.Plan{
				Root: &plan.Expand{
					Input:     &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "a", Label: "Hub"},
					FromVar:   "a",
					RelVar:    "r",
					ToVar:     "b",
					Types:     []string{"T"},
					Direction: ast.DirOutgoing,
				},
				Columns:  []string{"b"},
				ReadOnly: true,
			}
			ex := New(g, nil, Options{})
			ex.tab = plan.ComputeSlots(p)
			ex.readOnly = true
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ex.run(p.Root, nil, func(result.Record) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
