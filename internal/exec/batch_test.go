package exec

// Unit tests for the vectorized batch pipeline: kernel semantics against the
// row path, scan+filter fusion, the batch pool, the row fallback, and the
// allocation budget the fused scan→filter loop promises.

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// leafGraph builds n :Leaf nodes with i = 0..n-1.
func leafGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"Leaf"}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	return g
}

// ltFilter builds Filter(x.i < limit) over its input.
func ltFilter(input plan.Operator, varName string, limit int64) *plan.Filter {
	return &plan.Filter{
		Input: input,
		Predicate: &ast.BinaryOp{
			Op:  ast.OpLt,
			LHS: &ast.PropertyAccess{Subject: &ast.Variable{Name: varName}, Key: "i"},
			RHS: &ast.Literal{Value: value.NewInt(limit)},
		},
	}
}

// runPlanWith executes the plan on a fresh executor with the given options
// and returns the table.
func runPlanWith(t *testing.T, g *graph.Graph, opts Options, p *plan.Plan) *result.Table {
	t.Helper()
	tbl, err := New(g, nil, opts).Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestVectorizedMatchesRowPath runs a scan→filter→project plan at several
// batch sizes and requires byte-identical output to the row engine,
// including batch sizes that split and straddle the filter's survivors.
func TestVectorizedMatchesRowPath(t *testing.T) {
	g := leafGraph(100)
	build := func() *plan.Plan {
		p := &plan.Plan{
			Root: &plan.Project{
				Input: ltFilter(&plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"}, "x", 17),
				Items: []plan.ProjectionItem{{Name: "j", Expr: &ast.PropertyAccess{Subject: &ast.Variable{Name: "x"}, Key: "i"}}},
			},
			Columns:  []string{"j"},
			ReadOnly: true,
		}
		return p
	}
	want := runPlanWith(t, g, Options{BatchSize: -1}, build()).String()
	if !strings.Contains(want, "16") {
		t.Fatalf("row path looks wrong:\n%s", want)
	}
	for _, size := range []int{1, 3, 7, 64, 1024} {
		got := runPlanWith(t, g, Options{BatchSize: size}, build()).String()
		if got != want {
			t.Errorf("BatchSize=%d diverged:\ngot:\n%s\nwant:\n%s", size, got, want)
		}
	}
}

// TestVectorizedLimitStopsScan checks the Limit kernel truncates across
// batch boundaries and stops the scan through the sentinel without leaking
// it as a user-visible error.
func TestVectorizedLimitStopsScan(t *testing.T) {
	g := leafGraph(50)
	for _, limit := range []int64{0, 1, 5, 49, 50, 60} {
		build := func() *plan.Plan {
			return &plan.Plan{
				Root: &plan.Limit{
					Input: &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"},
					Count: &ast.Literal{Value: value.NewInt(limit)},
				},
				Columns:  []string{"x"},
				ReadOnly: true,
			}
		}
		want := runPlanWith(t, g, Options{BatchSize: -1}, build()).String()
		got := runPlanWith(t, g, Options{BatchSize: 7}, build()).String()
		if got != want {
			t.Errorf("LIMIT %d diverged:\ngot:\n%s\nwant:\n%s", limit, got, want)
		}
	}
}

// TestVectorizedExpandMatchesRowPath pushes a batch through the Expand
// kernel with a relationship variable and compares against the row engine,
// with an output batch small enough to force mid-iteration flushes.
func TestVectorizedExpandMatchesRowPath(t *testing.T) {
	g, _ := hubGraph(40)
	build := func() *plan.Plan {
		return &plan.Plan{
			Root: &plan.Project{
				Input: &plan.Expand{
					Input:     &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "a", Label: "Hub"},
					FromVar:   "a",
					RelVar:    "r",
					ToVar:     "b",
					Types:     []string{"T"},
					Direction: ast.DirOutgoing,
				},
				Items: []plan.ProjectionItem{{Name: "j", Expr: &ast.PropertyAccess{Subject: &ast.Variable{Name: "b"}, Key: "i"}}},
			},
			Columns:  []string{"j"},
			ReadOnly: true,
		}
	}
	want := runPlanWith(t, g, Options{BatchSize: -1}, build()).String()
	for _, size := range []int{3, 8, 1024} {
		got := runPlanWith(t, g, Options{BatchSize: size}, build()).String()
		if got != want {
			t.Errorf("BatchSize=%d diverged:\ngot:\n%s\nwant:\n%s", size, got, want)
		}
	}
}

// TestVectorizedErrorParity checks a predicate error surfaces with the same
// message on the batched path as on the row path (the compiled batch
// predicate mirrors the scalar evaluator, including error text).
func TestVectorizedErrorParity(t *testing.T) {
	g := leafGraph(10)
	build := func() *plan.Plan {
		return &plan.Plan{
			Root: &plan.Filter{
				Input: &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"},
				// x.i:L → label predicate on an integer, a type error on
				// every row.
				Predicate: &ast.HasLabels{
					Subject: &ast.PropertyAccess{Subject: &ast.Variable{Name: "x"}, Key: "i"},
					Labels:  []string{"L"},
				},
			},
			Columns:  []string{"x"},
			ReadOnly: true,
		}
	}
	_, rowErr := New(g, nil, Options{BatchSize: -1}).Execute(build())
	_, vecErr := New(g, nil, Options{BatchSize: 4}).Execute(build())
	if rowErr == nil || vecErr == nil {
		t.Fatalf("expected both paths to fail: row=%v vec=%v", rowErr, vecErr)
	}
	if rowErr.Error() != vecErr.Error() {
		t.Errorf("error text diverged:\nrow: %v\nvec: %v", rowErr, vecErr)
	}
}

// TestColumnarFilterCompilation pins which predicate shapes take the
// columnar fast path and that flipped constant-first comparisons compare
// the right way around.
func TestColumnarFilterCompilation(t *testing.T) {
	g := leafGraph(10)
	p := &plan.Plan{
		Root:     &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"},
		Columns:  []string{"x"},
		ReadOnly: true,
	}
	ex := New(g, nil, Options{})
	ex.tab = plan.ComputeSlots(p)

	prop := func() ast.Expr {
		return &ast.PropertyAccess{Subject: &ast.Variable{Name: "x"}, Key: "i"}
	}
	lit := func(i int64) ast.Expr { return &ast.Literal{Value: value.NewInt(i)} }

	// 3 < x.i must flip to x.i > 3.
	cf, ok := ex.compileColumnarFilter(&ast.BinaryOp{Op: ast.OpLt, LHS: lit(3), RHS: prop()})
	if !ok {
		t.Fatal("constant-first comparison should compile")
	}
	nodes := g.NodesByLabel("Leaf")
	kept := cf.filterNodesInto(nil, nodes)
	if len(kept) != 6 { // i in 4..9
		t.Errorf("3 < x.i kept %d nodes, want 6", len(kept))
	}

	// Conjunction narrows: x.i >= 2 AND 7 > x.i keeps 2..6.
	cf, ok = ex.compileColumnarFilter(&ast.BinaryOp{
		Op:  ast.OpAnd,
		LHS: &ast.BinaryOp{Op: ast.OpGe, LHS: prop(), RHS: lit(2)},
		RHS: &ast.BinaryOp{Op: ast.OpGt, LHS: lit(7), RHS: prop()},
	})
	if !ok {
		t.Fatal("conjunction should compile")
	}
	if kept = cf.filterNodesInto(nil, nodes); len(kept) != 5 {
		t.Errorf("conjunction kept %d nodes, want 5", len(kept))
	}

	// Non-columnar shapes must not compile: OR, function-ish forms,
	// variable-variable comparisons.
	if _, ok = ex.compileColumnarFilter(&ast.BinaryOp{
		Op:  ast.OpOr,
		LHS: &ast.BinaryOp{Op: ast.OpEq, LHS: prop(), RHS: lit(1)},
		RHS: &ast.BinaryOp{Op: ast.OpEq, LHS: prop(), RHS: lit(2)},
	}); ok {
		t.Error("OR must not take the columnar path (Kleene-And compaction only)")
	}
	if _, ok = ex.compileColumnarFilter(&ast.BinaryOp{Op: ast.OpEq, LHS: prop(), RHS: prop()}); ok {
		t.Error("property-property comparison must not take the columnar path")
	}
}

// TestBatchPoolReuse checks a wiped pooled batch carries no values over and
// reshapes to new slot tables without losing capacity.
func TestBatchPoolReuse(t *testing.T) {
	tab1 := result.NewSlotTable()
	tab1.Add("a")
	tab1.Add("b")
	b := getBatch(tab1, 8)
	b.Reset(3)
	b.Col(0)[0] = value.NewInt(42)
	putBatch(b)

	tab2 := result.NewSlotTable()
	tab2.Add("a")
	tab2.Add("b")
	tab2.Add("c")
	b2 := getBatch(tab2, 8)
	if b2.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", b2.Capacity())
	}
	b2.Reset(8)
	for slot := 0; slot < 3; slot++ {
		for _, row := range b2.Selection() {
			if v := b2.Col(slot)[row]; v != nil {
				t.Fatalf("pooled batch leaked value %v at slot %d row %d", v, slot, row)
			}
		}
	}
	putBatch(b2)
}

// TestVectorizedFusedScanFilterAllocBudget pins the headline win: a warm
// batched scan→filter with a fused columnar predicate drops failing rows
// before boxing their nodes into values, so per-scanned-row allocations
// amortize to ~zero (only the few surviving rows pay the value box).
func TestVectorizedFusedScanFilterAllocBudget(t *testing.T) {
	const n = 4096
	g := leafGraph(n)
	p := &plan.Plan{
		Root:     ltFilter(&plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"}, "x", 8),
		Columns:  []string{"x"},
		ReadOnly: true,
	}
	ex := New(g, nil, Options{})
	ex.tab = plan.ComputeSlots(p)
	ex.readOnly = true
	src := &vecSource{
		varName: "x",
		nodes:   g.NodesByLabel("Leaf"),
		ops:     []plan.Operator{p.Root},
	}
	rows := 0
	runOnce := func() {
		rows = 0
		if err := ex.runVectorized(src, func(result.Record) error {
			rows++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm the batch pool and scan snapshot
	if rows != 8 {
		t.Fatalf("expected 8 surviving rows, got %d", rows)
	}
	allocs := testing.AllocsPerRun(20, runOnce)
	perRow := allocs / float64(n)
	// 8 survivor value boxes + a per-query constant (kernel closures, view
	// record) over 4096 scanned rows.
	const budget = 0.05
	if perRow > budget {
		t.Errorf("fused scan→filter allocates %.4f allocs/scanned-row (%.0f total for %d rows), budget %.2f",
			perRow, allocs, n, budget)
	}
}

// TestVectorizedFallsBackOnHandBuiltShapes checks a plan the kernels reject
// (a projection item without a slot) still answers correctly through the
// row fallback.
func TestVectorizedFallsBackOnHandBuiltShapes(t *testing.T) {
	g := leafGraph(5)
	p := &plan.Plan{
		Root: &plan.Project{
			Input: &plan.NodeByLabelScan{Input: &plan.Start{}, Var: "x", Label: "Leaf"},
			Items: []plan.ProjectionItem{{Name: "j", Expr: &ast.PropertyAccess{Subject: &ast.Variable{Name: "x"}, Key: "i"}}},
		},
		Columns:  []string{"j"},
		ReadOnly: true,
	}
	ex := New(g, nil, Options{BatchSize: 2})
	// A slot table missing the projection name forces every kernel build to
	// bail; runVectorized must fall back to the row path, not fail.
	ex.tab = result.NewSlotTable()
	ex.tab.Add("x")
	ex.readOnly = true
	var got []string
	src := &vecSource{varName: "x", nodes: g.NodesByLabel("Leaf"), ops: []plan.Operator{p.Root}}
	if err := ex.runVectorized(src, func(r result.Record) error {
		got = append(got, r.Get("j").String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != "0" || got[4] != "4" {
		t.Fatalf("fallback rows = %v", got)
	}
}
