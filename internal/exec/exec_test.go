package exec

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/result"
	"repro/internal/value"
)

// runQuery plans and executes a query against the graph with the given
// options.
func runQuery(t *testing.T, g *graph.Graph, opts Options, src string) *result.Table {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	pl, err := planner.New(g).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	tbl, err := New(g, nil, opts).Execute(pl)
	if err != nil {
		t.Fatalf("execute %q: %v", src, err)
	}
	return tbl
}

func count(t *testing.T, g *graph.Graph, opts Options, src string) int64 {
	t.Helper()
	tbl := runQuery(t, g, opts, src)
	if tbl.Len() != 1 {
		t.Fatalf("expected a single row from %q, got %d", src, tbl.Len())
	}
	n, ok := value.AsInt(tbl.Rows()[0][0])
	if !ok {
		t.Fatalf("expected an integer, got %v", tbl.Rows()[0][0])
	}
	return n
}

func TestMorphismString(t *testing.T) {
	if EdgeIsomorphism.String() != "edge-isomorphism" || Homomorphism.String() != "homomorphism" || NodeIsomorphism.String() != "node-isomorphism" {
		t.Errorf("Morphism.String wrong")
	}
}

func TestVarLengthBoundsAndDirections(t *testing.T) {
	// Chain a -> b -> c -> d.
	g := graph.New()
	var nodes []*graph.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, g.CreateNode([]string{"N"}, map[string]value.Value{"i": value.NewInt(int64(i))}))
	}
	for i := 0; i < 3; i++ {
		if _, err := g.CreateRelationship(nodes[i], nodes[i+1], "NEXT", nil); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{}
	cases := map[string]int64{
		"MATCH (a {i: 0})-[:NEXT*]->(x) RETURN count(*) AS c":       3,
		"MATCH (a {i: 0})-[:NEXT*0..]->(x) RETURN count(*) AS c":    4, // includes the zero-length match
		"MATCH (a {i: 0})-[:NEXT*2..]->(x) RETURN count(*) AS c":    2,
		"MATCH (a {i: 0})-[:NEXT*..2]->(x) RETURN count(*) AS c":    2,
		"MATCH (a {i: 0})-[:NEXT*3]->(x) RETURN count(*) AS c":      1,
		"MATCH (a {i: 3})<-[:NEXT*]-(x) RETURN count(*) AS c":       3,
		"MATCH (a {i: 1})-[:NEXT*1..2]-(x) RETURN count(*) AS c":    4, // undirected: 0,2 at depth 1; 3 and back-to-0? no: 0 and 2, then 3 and... 0 is reached once, 2 once, 3 via 2, and 0 has no further; total 4 (0,2,3 plus 2->3? recount below)
		"MATCH (a {i: 0})-[:MISSING*]->(x) RETURN count(*) AS c":    0,
		"MATCH (a {i: 0})-[:NEXT]->()-[:NEXT]->(x) RETURN x.i AS i": 2,
	}
	for src, want := range cases {
		if src == "MATCH (a {i: 1})-[:NEXT*1..2]-(x) RETURN count(*) AS c" {
			// Verify the undirected case by explicit enumeration instead of
			// the hand-computed constant: from node 1 the reachable
			// relationship sequences of length 1..2 without repeating a
			// relationship are: [r1] (to 0), [r2] (to 2), [r2,r3] (to 3) —
			// and from 0 there is nothing further, so 3 matches... unless the
			// traversal can also go [r1] then back over r2? No: [r1, ...]
			// from node 0 has no other incident relationship than r1 itself.
			want = 3
		}
		got := count(t, g, opts, src)
		if src == "MATCH (a {i: 0})-[:NEXT]->()-[:NEXT]->(x) RETURN x.i AS i" {
			// This case returns a value, not a count.
			continue
		}
		if got != want {
			t.Errorf("%s = %d, want %d", src, got, want)
		}
	}
	tbl := runQuery(t, g, opts, "MATCH (a {i: 0})-[:NEXT]->()-[:NEXT]->(x) RETURN x.i AS i")
	if tbl.Len() != 1 || value.Compare(tbl.Rows()[0][0], value.NewInt(2)) != 0 {
		t.Errorf("two-hop chain wrong: %v", tbl.Rows())
	}
}

func TestMorphismSemanticsOnTriangle(t *testing.T) {
	// Triangle a->b->c->a plus the reverse edges, rich in cycles.
	g := graph.New()
	a := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("a")})
	b := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("b")})
	c := g.CreateNode([]string{"P"}, map[string]value.Value{"name": value.NewString("c")})
	for _, pair := range [][2]*graph.Node{{a, b}, {b, c}, {c, a}} {
		if _, err := g.CreateRelationship(pair[0], pair[1], "R", nil); err != nil {
			t.Fatal(err)
		}
	}
	q := "MATCH (x {name: 'a'})-[:R*1..3]->(y) RETURN count(*) AS c"
	// Edge isomorphism: paths a->b, a->b->c, a->b->c->a : 3 matches.
	if got := count(t, g, Options{Morphism: EdgeIsomorphism}, q); got != 3 {
		t.Errorf("edge isomorphism count = %d, want 3", got)
	}
	// Homomorphism: relationships may repeat, but depth is still capped at 3
	// by the pattern: a->b, a->b->c, a->b->c->a — the same 3 here.
	if got := count(t, g, Options{Morphism: Homomorphism}, q); got != 3 {
		t.Errorf("homomorphism count = %d, want 3", got)
	}
	// Node isomorphism on the closing pattern: the cycle a->b->c->a revisits
	// a, so only 2 matches remain.
	if got := count(t, g, Options{Morphism: NodeIsomorphism}, q); got != 2 {
		t.Errorf("node isomorphism count = %d, want 2", got)
	}
	// Unbounded homomorphism is capped by MaxVarLengthDepth.
	unbounded := "MATCH (x {name: 'a'})-[:R*]->(y) RETURN count(*) AS c"
	if got := count(t, g, Options{Morphism: Homomorphism, MaxVarLengthDepth: 5}, unbounded); got != 5 {
		t.Errorf("capped homomorphism count = %d, want 5", got)
	}
	// Single-hop patterns sharing the same MATCH respect uniqueness across
	// pattern parts under edge isomorphism but not under homomorphism.
	twoRels := "MATCH (x)-[r1:R]->(y), (u)-[r2:R]->(v) RETURN count(*) AS c"
	if got := count(t, g, Options{Morphism: EdgeIsomorphism}, twoRels); got != 6 {
		t.Errorf("edge isomorphism pairs = %d, want 6", got)
	}
	if got := count(t, g, Options{Morphism: Homomorphism}, twoRels); got != 9 {
		t.Errorf("homomorphism pairs = %d, want 9", got)
	}
}

func TestExpandIntoAndNullSources(t *testing.T) {
	g, _ := datasets.Teachers()
	opts := Options{}
	// OPTIONAL MATCH that fails binds nulls; expanding from the null must not
	// blow up and contributes no rows.
	tbl := runQuery(t, g, opts, `
		MATCH (a {name: 'n4'})
		OPTIONAL MATCH (a)-[:KNOWS]->(b)
		OPTIONAL MATCH (b)-[:KNOWS]->(c)
		RETURN a.name AS a, b, c`)
	if tbl.Len() != 1 {
		t.Fatalf("expected one row, got %d", tbl.Len())
	}
	row := tbl.Rows()[0]
	if !value.IsNull(row[1]) || !value.IsNull(row[2]) {
		t.Errorf("nulls should propagate through chained optional matches: %v", row)
	}
}

func TestArgumentOutsideApplyFails(t *testing.T) {
	g := graph.New()
	ex := New(g, nil, Options{})
	_, err := ex.Execute(&plan.Plan{Root: &plan.Argument{}, Columns: nil})
	if err == nil || !strings.Contains(err.Error(), "Argument") {
		t.Errorf("Argument outside an apply context should fail, got %v", err)
	}
}

func TestUnsupportedOperatorFails(t *testing.T) {
	g := graph.New()
	ex := New(g, nil, Options{})
	_, err := ex.Execute(&plan.Plan{Root: fakeOp{}})
	if err == nil || !strings.Contains(err.Error(), "unsupported operator") {
		t.Errorf("unknown operators should fail, got %v", err)
	}
}

type fakeOp struct{}

func (fakeOp) Describe() string      { return "Fake" }
func (fakeOp) Source() plan.Operator { return nil }

func TestSkipLimitValidation(t *testing.T) {
	g := graph.New()
	ex := New(g, nil, Options{})
	bad := &plan.Plan{
		Root: &plan.Limit{
			Input: &plan.Start{},
			Count: &ast.Literal{Value: value.NewString("x")},
		},
	}
	if _, err := ex.Execute(bad); err == nil {
		t.Errorf("non-integer LIMIT should fail")
	}
	badSkip := &plan.Plan{
		Root: &plan.Skip{
			Input: &plan.Start{},
			Count: &ast.Literal{Value: value.NewInt(-1)},
		},
	}
	if _, err := ex.Execute(badSkip); err == nil {
		t.Errorf("negative SKIP should fail")
	}
}

func TestCreateValidation(t *testing.T) {
	g := graph.New()
	opts := Options{}
	// Reusing a bound variable with extra labels is rejected.
	q, err := parser.Parse("CREATE (a:X) CREATE (a:Y)")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := planner.New(g).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, nil, opts).Execute(pl); err == nil {
		t.Errorf("re-creating a bound variable with labels should fail")
	}
	// Plain reuse of a bound variable is fine (creates a relationship to it).
	tbl := runQuery(t, g, opts, "CREATE (a:X) CREATE (a)-[:R]->(b:Y) RETURN id(b) AS id")
	if tbl.Len() != 1 {
		t.Errorf("create with bound reuse should work")
	}
}

func TestDeletePathsAndMergeOnBoundNodes(t *testing.T) {
	g := graph.New()
	opts := Options{}
	runQuery(t, g, opts, "CREATE (:A {name: 'a'})-[:R]->(:B {name: 'b'})-[:R]->(:C {name: 'c'})")
	// Deleting a whole matched path removes its relationships and nodes.
	runQuery(t, g, opts, "MATCH p = (:A)-[:R*]->(:C) DETACH DELETE p")
	if g.Stats().NodeCount != 0 || g.Stats().RelationshipCount != 0 {
		t.Errorf("path delete should empty the graph: %+v", g.Stats())
	}

	// MERGE with bound endpoints creates the relationship at most once.
	runQuery(t, g, opts, "CREATE (:City {name: 'x'}), (:City {name: 'y'})")
	for i := 0; i < 3; i++ {
		runQuery(t, g, opts, "MATCH (a:City {name: 'x'}), (b:City {name: 'y'}) MERGE (a)-[:ROAD]->(b)")
	}
	if got := g.Stats().RelationshipCount; got != 1 {
		t.Errorf("MERGE should be idempotent, got %d relationships", got)
	}
}

func TestPatternPredicateHookAndPaths(t *testing.T) {
	g, _ := datasets.Citations()
	opts := Options{}
	tbl := runQuery(t, g, opts, "MATCH (r:Researcher) WHERE EXISTS((r)-[:AUTHORS]->(:Publication)) RETURN count(*) AS c")
	if value.Compare(tbl.Rows()[0][0], value.NewInt(2)) != 0 {
		t.Errorf("pattern predicate count wrong: %v", tbl.Rows()[0][0])
	}
	// Named variable-length paths are assembled with their interior nodes.
	tbl = runQuery(t, g, opts, "MATCH p = (:Publication {acmid: 269})-[:CITES*2]->(x) RETURN size(nodes(p)) AS n, x.acmid AS acmid")
	for _, row := range tbl.Rows() {
		if value.Compare(row[0], value.NewInt(3)) != 0 {
			t.Errorf("a 2-hop path has 3 nodes, got %v", row[0])
		}
	}
	if tbl.Len() != 2 {
		t.Errorf("n9 cites n4 and n5, which cite n2: expected 2 two-hop paths, got %d", tbl.Len())
	}
}

func TestDistinctUnionAndSortStability(t *testing.T) {
	g := graph.New()
	opts := Options{}
	runQuery(t, g, opts, "CREATE (:N {v: 1, tie: 1}), (:N {v: 1, tie: 2}), (:N {v: 2, tie: 3})")
	tbl := runQuery(t, g, opts, "MATCH (n:N) RETURN DISTINCT n.v AS v")
	if tbl.Len() != 2 {
		t.Errorf("DISTINCT should collapse duplicates, got %d rows", tbl.Len())
	}
	// Stable sort: equal keys keep their encounter order (by tie insertion).
	tbl = runQuery(t, g, opts, "MATCH (n:N) RETURN n.tie AS tie ORDER BY n.v")
	rows := tbl.Rows()
	if value.Compare(rows[0][0], value.NewInt(1)) != 0 || value.Compare(rows[1][0], value.NewInt(2)) != 0 {
		t.Errorf("stable sort order wrong: %v", rows)
	}
	tbl = runQuery(t, g, opts, "MATCH (n:N) RETURN n.v AS v UNION MATCH (n:N) RETURN n.v AS v")
	if tbl.Len() != 2 {
		t.Errorf("UNION should deduplicate across branches, got %d", tbl.Len())
	}
}
