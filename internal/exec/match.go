package exec

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// asGraphNode extracts the concrete graph node bound to a record value.
func asGraphNode(v value.Value) (*graph.Node, error) {
	n, ok := value.AsNode(v)
	if !ok {
		return nil, fmt.Errorf("exec: expected a node, got %s", v.Kind())
	}
	gn, ok := n.(*graph.Node)
	if !ok {
		return nil, fmt.Errorf("exec: foreign node implementation %T", n)
	}
	return gn, nil
}

func asGraphRelationship(v value.Value) (*graph.Relationship, error) {
	r, ok := value.AsRelationship(v)
	if !ok {
		return nil, fmt.Errorf("exec: expected a relationship, got %s", v.Kind())
	}
	gr, ok := r.(*graph.Relationship)
	if !ok {
		return nil, fmt.Errorf("exec: foreign relationship implementation %T", r)
	}
	return gr, nil
}

// toGraphDirection maps a pattern direction onto a graph traversal direction.
func toGraphDirection(d ast.Direction) graph.Direction {
	switch d {
	case ast.DirOutgoing:
		return graph.Outgoing
	case ast.DirIncoming:
		return graph.Incoming
	default:
		return graph.Both
	}
}

// idSetPool recycles the per-row uniqueness sets of the morphism checks
// (bound relationship/node identifiers, variable-length path sets). The
// sets' lifetime is strictly bracketed by one expand/match call, so pooling
// them removes a map allocation per row; sync.Pool makes the reuse safe
// under morsel-parallel execution.
var idSetPool = sync.Pool{
	New: func() any { return make(map[int64]bool, 16) },
}

func acquireIDSet() map[int64]bool {
	return idSetPool.Get().(map[int64]bool)
}

func releaseIDSet(m map[int64]bool) {
	if m == nil {
		return
	}
	clear(m)
	idSetPool.Put(m)
}

// boundRelIDs collects the identifiers of all relationships bound to the
// given variables in the record (variables may be bound to a relationship or
// to a list of relationships from a variable-length pattern). The returned
// set comes from the pool (release it) and is nil when no identifiers were
// found.
func boundRelIDs(rec result.Record, vars []string) map[int64]bool {
	out := acquireIDSet()
	for _, v := range vars {
		collectRelIDs(rec.Get(v), out)
	}
	if len(out) == 0 {
		releaseIDSet(out)
		return nil
	}
	return out
}

func collectRelIDs(v value.Value, out map[int64]bool) {
	switch {
	case value.IsNull(v):
	case v.Kind() == value.KindRelationship:
		r, _ := value.AsRelationship(v)
		out[r.ID()] = true
	case v.Kind() == value.KindList:
		l, _ := value.AsList(v)
		for _, el := range l.Elements() {
			collectRelIDs(el, out)
		}
	}
}

// boundNodeIDs collects node identifiers bound to the given variables
// (used by node-isomorphism matching). Pooled like boundRelIDs.
func boundNodeIDs(rec result.Record, vars []string) map[int64]bool {
	out := acquireIDSet()
	for _, v := range vars {
		if n, ok := value.AsNode(rec.Get(v)); ok {
			out[n.ID()] = true
		}
	}
	if len(out) == 0 {
		releaseIDSet(out)
		return nil
	}
	return out
}

// relPropertiesMatch checks the inline property map of a relationship pattern
// against a concrete relationship.
func (ex *Executor) relPropertiesMatch(props *ast.MapLiteral, rel *graph.Relationship, rec result.Record) (bool, error) {
	if props == nil {
		return true, nil
	}
	for i, k := range props.Keys {
		want, err := ex.evalCtx.Evaluate(props.Values[i], rec)
		if err != nil {
			return false, err
		}
		if value.Equals(rel.Property(k), want) != value.TrueT {
			return false, nil
		}
	}
	return true, nil
}

// nodeMatchesPattern checks labels and inline properties of a node pattern
// against a concrete node.
func (ex *Executor) nodeMatchesPattern(np ast.NodePattern, n *graph.Node, rec result.Record) (bool, error) {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			want, err := ex.evalCtx.Evaluate(np.Properties.Values[i], rec)
			if err != nil {
				return false, err
			}
			if value.Equals(n.Property(k), want) != value.TrueT {
				return false, nil
			}
		}
	}
	return true, nil
}

// --- Expand operator ---

// expand implements the Expand and VarLengthExpand operators for one input
// row. The row is borrowed: output bindings are written into its slots in
// place and rebound per traversed relationship (see the package comment).
func (ex *Executor) expand(o *plan.Expand, rec result.Record, emit emitFn) error {
	fromVal := rec.Get(o.FromVar)
	if value.IsNull(fromVal) {
		// An OPTIONAL MATCH may have bound the source node to null; there is
		// nothing to expand from.
		return nil
	}
	from, err := asGraphNode(fromVal)
	if err != nil {
		return err
	}

	// The uniqueness sets exist only when the plan actually carries
	// uniqueness constraints for this expand; a first expand in a MATCH has
	// none and skips the collection (and its allocation) entirely.
	var usedRels map[int64]bool
	var usedNodes map[int64]bool
	switch ex.opts.Morphism {
	case EdgeIsomorphism:
		if len(o.UniqueRels) > 0 {
			usedRels = boundRelIDs(rec, o.UniqueRels)
		}
	case NodeIsomorphism:
		if len(o.UniqueNodes) > 0 {
			usedNodes = boundNodeIDs(rec, o.UniqueNodes)
		}
	}

	var intoNode *graph.Node
	if o.ExpandInto {
		toVal := rec.Get(o.ToVar)
		if value.IsNull(toVal) {
			releaseIDSet(usedRels)
			releaseIDSet(usedNodes)
			return nil
		}
		intoNode, err = asGraphNode(toVal)
		if err != nil {
			releaseIDSet(usedRels)
			releaseIDSet(usedNodes)
			return err
		}
	}

	if o.VarLength {
		err = ex.expandVarLength(o, rec, from, intoNode, usedRels, usedNodes, emit)
	} else {
		err = ex.expandSingle(o, rec, from, intoNode, usedRels, usedNodes, emit)
	}
	releaseIDSet(usedRels)
	releaseIDSet(usedNodes)
	return err
}

// relTypeIn reports whether the relationship's type is in types.
func relTypeIn(rel *graph.Relationship, types []string) bool {
	for _, t := range types {
		if rel.RelType() == t {
			return true
		}
	}
	return false
}

// reverseDirection flips a traversal direction (Both is symmetric).
func reverseDirection(d graph.Direction) graph.Direction {
	switch d {
	case graph.Outgoing:
		return graph.Incoming
	case graph.Incoming:
		return graph.Outgoing
	default:
		return graph.Both
	}
}

func (ex *Executor) expandSingle(o *plan.Expand, rec result.Record, from, intoNode *graph.Node, usedRels, usedNodes map[int64]bool, emit emitFn) error {
	dir := toGraphDirection(o.Direction)
	// ExpandInto: both endpoints are bound, so the expansion only has to
	// find the relationships connecting them — probe whichever endpoint has
	// the smaller adjacency (degree is O(1) via the type buckets) and check
	// the other end, instead of always fanning out from the pattern's from
	// node. Probing the target side walks the same relationship set with the
	// roles mirrored, so every check below behaves identically. Self-probes
	// (intoNode == from, a loop pattern) keep the from side.
	probeFrom, probeInto := from, intoNode
	if intoNode != nil && intoNode != from &&
		intoNode.Degree(reverseDirection(dir), o.Types...) < from.Degree(dir, o.Types...) {
		probeFrom, probeInto = intoNode, from
		dir = reverseDirection(dir)
	}
	if !ex.readOnly {
		// A mutating plan may delete relationships downstream of the emit;
		// iterate a private copy of the adjacency.
		return ex.expandRels(o, rec, probeFrom, probeInto, usedRels, usedNodes, probeFrom.Relationships(dir, o.Types...), false, false, emit)
	}
	// Read-only plan: walk the store's live slices (the type bucket for a
	// single-type pattern), allocating nothing.
	if dir == graph.Outgoing || dir == graph.Both {
		rels, filtered := probeFrom.OutgoingRels(o.Types)
		if err := ex.expandRels(o, rec, probeFrom, probeInto, usedRels, usedNodes, rels, !filtered, false, emit); err != nil {
			return err
		}
	}
	if dir == graph.Incoming || dir == graph.Both {
		rels, filtered := probeFrom.IncomingRels(o.Types)
		// For Both, a self-loop appears in both adjacency slices and is
		// reported only once.
		if err := ex.expandRels(o, rec, probeFrom, probeInto, usedRels, usedNodes, rels, !filtered, dir == graph.Both, emit); err != nil {
			return err
		}
	}
	return nil
}

// expandRels runs the single-hop expansion over one relationship slice,
// rebinding the borrowed row's output slots per match.
func (ex *Executor) expandRels(o *plan.Expand, rec result.Record, from, intoNode *graph.Node, usedRels, usedNodes map[int64]bool, rels []*graph.Relationship, typeFilter, skipSelfLoops bool, emit emitFn) error {
	// The tick counter is call-local: it bounds unchecked work within one
	// source row's adjacency (supernodes); across rows the scan below this
	// expand carries its own counter.
	tick := 0
	for _, rel := range rels {
		if err := ex.qc.Tick(&tick); err != nil {
			return err
		}
		if typeFilter && !relTypeIn(rel, o.Types) {
			continue
		}
		if skipSelfLoops && rel.StartNode() == rel.EndNode() {
			continue
		}
		if usedRels != nil && usedRels[rel.ID()] {
			continue
		}
		target := rel.Other(from)
		// For directed traversal, the adjacency slice already restricted the
		// orientation; for Both, any orientation is fine.
		if ok, err := ex.relPropertiesMatch(o.RelProperties, rel, rec); err != nil {
			return err
		} else if !ok {
			continue
		}
		if usedNodes != nil && usedNodes[target.ID()] && (intoNode == nil || intoNode.ID() != target.ID()) {
			continue
		}
		if intoNode != nil {
			if target.ID() != intoNode.ID() {
				continue
			}
			if o.RelVar != "" {
				rec.Set(o.RelVar, value.NewRelationship(rel))
			}
			if err := emit(rec); err != nil {
				return err
			}
			continue
		}
		if o.RelVar != "" {
			rec.Set(o.RelVar, value.NewRelationship(rel))
		}
		rec.Set(o.ToVar, value.NewNode(target))
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// expandVarLength enumerates all relationship sequences of length within
// [MinHops, MaxHops] starting at from, under the configured morphism. This is
// the operational counterpart of the rigid-extension semantics of Section 4.2:
// every distinct admissible sequence contributes one row (bag semantics),
// which is what produces the duplicate rows marked with a dagger in the
// paper's Section 3 example.
func (ex *Executor) expandVarLength(o *plan.Expand, rec result.Record, from, intoNode *graph.Node, usedRels, usedNodes map[int64]bool, emit emitFn) error {
	minHops := o.MinHops
	if minHops < 0 {
		minHops = 1
	}
	maxHops := o.MaxHops
	unbounded := maxHops < 0
	if unbounded && ex.opts.Morphism == Homomorphism {
		// Without the relationship-uniqueness restriction an unbounded
		// variable-length pattern has infinitely many matches on a cyclic
		// graph (Section 4.2); cap the depth to keep the result finite.
		maxHops = ex.opts.MaxVarLengthDepth
		unbounded = false
	}
	dir := toGraphDirection(o.Direction)

	pathRels := make([]*graph.Relationship, 0, 8)
	pathRelSet := acquireIDSet()
	pathNodeSet := acquireIDSet()
	pathNodeSet[from.ID()] = true
	defer releaseIDSet(pathRelSet)
	defer releaseIDSet(pathNodeSet)

	emitCurrent := func(end *graph.Node) error {
		if intoNode != nil && end.ID() != intoNode.ID() {
			return nil
		}
		if o.RelVar != "" {
			rels := make([]value.Value, len(pathRels))
			for i, r := range pathRels {
				rels[i] = value.NewRelationship(r)
			}
			rec.Set(o.RelVar, value.NewListOf(rels))
		}
		if intoNode == nil {
			rec.Set(o.ToVar, value.NewNode(end))
		}
		return emit(rec)
	}

	// One counter for the whole traversal: the DFS can visit an arbitrarily
	// large subgraph before emitting anything (high MinHops, ExpandInto), so
	// the check rides on steps taken, not rows produced.
	tick := 0
	var dfs func(current *graph.Node, depth int) error
	dfs = func(current *graph.Node, depth int) error {
		if depth >= minHops {
			if err := emitCurrent(current); err != nil {
				return err
			}
		}
		if !unbounded && depth >= maxHops {
			return nil
		}
		step := func(rel *graph.Relationship) error {
			if err := ex.qc.Tick(&tick); err != nil {
				return err
			}
			switch ex.opts.Morphism {
			case EdgeIsomorphism:
				if pathRelSet[rel.ID()] || (usedRels != nil && usedRels[rel.ID()]) {
					return nil
				}
			case NodeIsomorphism:
				target := rel.Other(current)
				if pathNodeSet[target.ID()] || (usedNodes != nil && usedNodes[target.ID()]) {
					return nil
				}
			}
			if ok, err := ex.relPropertiesMatch(o.RelProperties, rel, rec); err != nil {
				return err
			} else if !ok {
				return nil
			}
			target := rel.Other(current)
			pathRels = append(pathRels, rel)
			pathRelSet[rel.ID()] = true
			pathNodeSet[target.ID()] = true
			err := dfs(target, depth+1)
			pathRels = pathRels[:len(pathRels)-1]
			delete(pathRelSet, rel.ID())
			if ex.opts.Morphism != NodeIsomorphism {
				delete(pathNodeSet, target.ID())
			}
			if err != nil {
				return err
			}
			if ex.opts.Morphism == NodeIsomorphism {
				delete(pathNodeSet, target.ID())
			}
			return nil
		}
		if !ex.readOnly {
			for _, rel := range current.Relationships(dir, o.Types...) {
				if err := step(rel); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		current.EachRelationship(dir, o.Types, func(rel *graph.Relationship) bool {
			stepErr = step(rel)
			return stepErr == nil
		})
		return stepErr
	}
	return dfs(from, 0)
}

// --- Named path construction ---

// buildPath assembles the path value for a named path pattern from the
// variable bindings produced by matching it.
func (ex *Executor) buildPath(part ast.PatternPart, rec result.Record) (value.Value, error) {
	firstVal := rec.Get(part.Nodes[0].Variable)
	if value.IsNull(firstVal) {
		return value.Null(), nil
	}
	current, err := asGraphNode(firstVal)
	if err != nil {
		return nil, err
	}
	p := value.Path{Nodes: []value.Node{current}}
	for i := range part.Rels {
		relVal := rec.Get(part.Rels[i].Variable)
		if value.IsNull(relVal) {
			return value.Null(), nil
		}
		// A single-hop pattern binds a relationship; a variable-length
		// pattern binds a list of relationships.
		var rels []*graph.Relationship
		if relVal.Kind() == value.KindList {
			l, _ := value.AsList(relVal)
			for _, el := range l.Elements() {
				gr, err := asGraphRelationship(el)
				if err != nil {
					return nil, err
				}
				rels = append(rels, gr)
			}
		} else {
			gr, err := asGraphRelationship(relVal)
			if err != nil {
				return nil, err
			}
			rels = append(rels, gr)
		}
		for _, gr := range rels {
			next := gr.Other(current)
			p.Rels = append(p.Rels, gr)
			p.Nodes = append(p.Nodes, next)
			current = next
		}
	}
	return value.NewPath(p), nil
}

// --- Ad-hoc pattern matching (MERGE, pattern predicates) ---

// patternPredicate reports whether the path pattern has at least one match
// under the record; used for WHERE pattern predicates and EXISTS(pattern).
func (ex *Executor) patternPredicate(part ast.PatternPart, rec result.Record) (bool, error) {
	found := false
	stop := fmt.Errorf("found")
	err := ex.matchPartRows(part, rec, func(result.Record) error {
		found = true
		return stop
	})
	if err != nil && err != stop { //nolint:errorlint // sentinel comparison
		return false, err
	}
	return found, nil
}

// matchPartRows enumerates all matches of a single path pattern under the
// given record, emitting one extended record per match. It is used by MERGE
// and by pattern predicates; MATCH clauses go through the planner instead.
// Unlike the plan operators it extends copies (the emitted records are
// independent of the input), because MERGE retains them.
func (ex *Executor) matchPartRows(part ast.PatternPart, rec result.Record, emit emitFn) error {
	used := acquireIDSet()
	err := ex.matchNode(part, 0, rec, used, emit)
	releaseIDSet(used)
	return err
}

func (ex *Executor) matchNode(part ast.PatternPart, idx int, rec result.Record, usedRels map[int64]bool, emit emitFn) error {
	np := part.Nodes[idx]
	tryCandidate := func(n *graph.Node) error {
		ok, err := ex.nodeMatchesPattern(np, n, rec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		next := rec
		if np.Variable != "" && !rec.Has(np.Variable) {
			next = rec.Extended(np.Variable, value.NewNode(n))
		}
		if idx == len(part.Nodes)-1 {
			return emit(next)
		}
		return ex.matchRel(part, idx, n, next, usedRels, emit)
	}

	if np.Variable != "" && rec.Has(np.Variable) {
		v := rec.Get(np.Variable)
		if value.IsNull(v) {
			return nil
		}
		n, err := asGraphNode(v)
		if err != nil {
			return err
		}
		return tryCandidate(n)
	}
	var candidates []*graph.Node
	if len(np.Labels) > 0 {
		candidates = ex.graph.NodesByLabel(np.Labels[0])
	} else {
		candidates = ex.graph.Nodes()
	}
	tick := 0
	for _, n := range candidates {
		if err := ex.qc.Tick(&tick); err != nil {
			return err
		}
		if err := tryCandidate(n); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Executor) matchRel(part ast.PatternPart, idx int, from *graph.Node, rec result.Record, usedRels map[int64]bool, emit emitFn) error {
	rp := part.Rels[idx]
	nextNP := part.Nodes[idx+1]
	dir := toGraphDirection(rp.Direction)

	bindAndRecurse := func(relValue value.Value, relIDs []int64, target *graph.Node) error {
		next := rec
		if rp.Variable != "" {
			next = next.Extended(rp.Variable, relValue)
		}
		matches, err := ex.nodeMatchesPattern(nextNP, target, next)
		if err != nil {
			return err
		}
		if !matches {
			return nil
		}
		if nextNP.Variable != "" {
			if next.Has(nextNP.Variable) {
				bound := next.Get(nextNP.Variable)
				bn, ok := value.AsNode(bound)
				if !ok || bn.ID() != target.ID() {
					return nil
				}
			} else {
				next = next.Extended(nextNP.Variable, value.NewNode(target))
			}
		}
		// Mark only the relationships not already tracked by an enclosing
		// traversal, and unmark exactly those afterwards.
		inserted := make([]int64, 0, len(relIDs))
		for _, id := range relIDs {
			if !usedRels[id] {
				usedRels[id] = true
				inserted = append(inserted, id)
			}
		}
		var err2 error
		if idx+1 == len(part.Nodes)-1 {
			err2 = emit(next)
		} else {
			err2 = ex.matchRel(part, idx+1, target, next, usedRels, emit)
		}
		for _, id := range inserted {
			delete(usedRels, id)
		}
		return err2
	}

	if !rp.VarLength {
		for _, rel := range from.Relationships(dir, rp.Types...) {
			if ex.opts.Morphism == EdgeIsomorphism && usedRels[rel.ID()] {
				continue
			}
			if ok, err := ex.relPropertiesMatch(rp.Properties, rel, rec); err != nil {
				return err
			} else if !ok {
				continue
			}
			if err := bindAndRecurse(value.NewRelationship(rel), []int64{rel.ID()}, rel.Other(from)); err != nil {
				return err
			}
		}
		return nil
	}

	// Variable-length pattern: reuse the var-length DFS via a synthetic plan
	// operator over a scratch variable, then recurse for every produced row.
	minHops := rp.MinHops
	if minHops < 0 {
		minHops = 1
	}
	maxHops := rp.MaxHops
	unbounded := maxHops < 0
	if unbounded && ex.opts.Morphism == Homomorphism {
		maxHops = ex.opts.MaxVarLengthDepth
		unbounded = false
	}

	var rels []*graph.Relationship
	tick := 0
	var dfs func(current *graph.Node, depth int) error
	dfs = func(current *graph.Node, depth int) error {
		if err := ex.qc.Tick(&tick); err != nil {
			return err
		}
		if depth >= minHops {
			vals := make([]value.Value, len(rels))
			ids := make([]int64, len(rels))
			for i, r := range rels {
				vals[i] = value.NewRelationship(r)
				ids[i] = r.ID()
			}
			if err := bindAndRecurse(value.NewListOf(vals), ids, current); err != nil {
				return err
			}
		}
		if !unbounded && depth >= maxHops {
			return nil
		}
		for _, rel := range current.Relationships(dir, rp.Types...) {
			if ex.opts.Morphism == EdgeIsomorphism && usedRels[rel.ID()] {
				continue
			}
			if ok, err := ex.relPropertiesMatch(rp.Properties, rel, rec); err != nil {
				return err
			} else if !ok {
				continue
			}
			usedRels[rel.ID()] = true
			rels = append(rels, rel)
			err := dfs(rel.Other(current), depth+1)
			rels = rels[:len(rels)-1]
			delete(usedRels, rel.ID())
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(from, 0)
}
