package exec

// Vectorized (batched) execution of the batch-safe plan segment marked by
// plan.AnalyzeVectorization. Instead of pushing one borrowed row per emit
// call, the scan chunks its node set into result.Batch columns (one slice
// per slot, capacity aligned with the morsel size) and pushes whole batches
// through operator kernels:
//
//   - Filter marks the selection vector in place (three tiers: a columnar
//     fast path for conjunctions of property/constant comparisons, a
//     compiled per-row predicate from eval.CompileBatchPredicate, and a
//     generic fallback through the scalar evaluator over a view record);
//   - a Filter directly above the scan whose columnar form reads only the
//     scan variable is fused into the scan loop, so rows that fail the
//     predicate are dropped before their node is ever boxed into a value;
//   - Project evaluates its items row-major against the pre-projection
//     columns (buffered per row, so shadowing and error order match the row
//     engine) and writes the target columns in place;
//   - Expand gathers the batch's source nodes and amortizes the
//     direction/type dispatch across the whole batch via
//     graph.EachRelationshipBatch, appending matches to a pooled output
//     batch;
//   - Limit truncates the selection vector and stops the scan through a
//     sentinel error;
//   - SelectColumns binds the kept columns (unbound -> null, like the row
//     path) and clears the rest.
//
// At the top of the batched segment a row adapter loads each selected row
// into a reused view record and feeds the remaining operators' proven
// row-at-a-time path. The borrowed-row discipline generalizes to batches:
// a batch passed to a kernel's emit is only valid for the duration of the
// call, and batches come from a package-level pool (executors are
// per-query; pooling across queries is what keeps warm batched scans
// allocation-free).
//
// Everything here preserves row order: chunks are scanned in snapshot
// order, kernels keep the selection vector in row order, and Expand visits
// adjacency in the same order as the row path — so vectorized, serial and
// morsel-parallel runs stay byte-identical.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// DefaultBatchSize is the default rows-per-batch, aligned with the morsel
// size so one morsel is one batch under parallel execution.
const DefaultBatchSize = graph.DefaultMorselSize

// batchSize resolves the executor's effective batch size: 0 means the
// default, negative disables vectorized execution.
func (ex *Executor) batchSize() int {
	switch {
	case ex.opts.BatchSize < 0:
		return 0
	case ex.opts.BatchSize == 0:
		return DefaultBatchSize
	default:
		return ex.opts.BatchSize
	}
}

// batchEmit consumes one produced batch; returning an error stops
// production. The batch is borrowed: it is only valid for the duration of
// the call.
type batchEmit func(*result.Batch) error

// errBatchLimit is the internal sentinel a Limit kernel returns once the
// limit is exhausted; the scan loop stops cleanly on it.
var errBatchLimit = errors.New("exec: batch limit reached")

// vecSource is the synthetic leaf operator that replaces Start+scan for a
// vectorized run (the whole scan serially, or one morsel per worker under
// parallelism). Its ops are the batch-safe operators folded into the
// batched pipeline; operators above it are rebased on top via buildChain
// and run row-at-a-time off the batch adapter.
type vecSource struct {
	varName string
	nodes   []*graph.Node
	ops     []plan.Operator
}

func (s *vecSource) Describe() string      { return fmt.Sprintf("VectorizedScan(%s)", s.varName) }
func (s *vecSource) Source() plan.Operator { return nil }

// batchPools recycles batches across queries, one pool per capacity
// (engines with different BatchSize options coexist in one process).
var batchPools sync.Map // int -> *sync.Pool

// batchesOutstanding counts batches currently checked out of the pools. The
// cancellation-hygiene tests assert it returns to its pre-query level after
// canceled, deadline-killed and panicking queries — pooled batches must be
// returned on every exit path (they are: putBatch runs in deferred handlers
// that also fire during panic unwinding).
var batchesOutstanding atomic.Int64

// BatchesOutstanding reports how many pooled batches are checked out across
// the process. Test instrumentation.
func BatchesOutstanding() int64 { return batchesOutstanding.Load() }

func batchPoolFor(capacity int) *sync.Pool {
	if p, ok := batchPools.Load(capacity); ok {
		return p.(*sync.Pool)
	}
	p, _ := batchPools.LoadOrStore(capacity, &sync.Pool{})
	return p.(*sync.Pool)
}

// getBatch returns a batch of the given capacity shaped for the slot table,
// reusing a pooled one when possible.
func getBatch(tab *result.SlotTable, capacity int) *result.Batch {
	batchesOutstanding.Add(1)
	if v := batchPoolFor(capacity).Get(); v != nil {
		b := v.(*result.Batch)
		b.Retab(tab)
		return b
	}
	return result.NewBatch(tab, capacity)
}

// putBatch wipes the batch (so it does not pin graph entities) and returns
// it to its capacity's pool.
func putBatch(b *result.Batch) {
	batchesOutstanding.Add(-1)
	b.Wipe()
	batchPoolFor(b.Capacity()).Put(b)
}

// --- Columnar filter fast path ---

// cmpKind is a comparison operator of the columnar filter.
type cmpKind int

const (
	cmpEq cmpKind = iota
	cmpNeq
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

// ternaryCmp applies the comparison through the same value comparators the
// scalar evaluator uses.
func ternaryCmp(k cmpKind, a, b value.Value) value.Ternary {
	switch k {
	case cmpEq:
		return value.Equals(a, b)
	case cmpNeq:
		return value.Not(value.Equals(a, b))
	case cmpLt:
		return value.Less(a, b)
	case cmpLe:
		return value.LessEq(a, b)
	case cmpGt:
		return value.Greater(a, b)
	default:
		return value.GreaterEq(a, b)
	}
}

// flipCmp mirrors a comparison when its operands are swapped
// (const < n.prop  ==  n.prop > const).
func flipCmp(k cmpKind) cmpKind {
	switch k {
	case cmpLt:
		return cmpGt
	case cmpLe:
		return cmpGe
	case cmpGt:
		return cmpLt
	case cmpGe:
		return cmpLe
	default:
		return k
	}
}

// columnarConjunct is one `var.key OP const` comparison.
type columnarConjunct struct {
	slot     int
	key      string
	kind     cmpKind
	constVal value.Value
}

// columnarFilter is a conjunction of property/constant comparisons that can
// run column-at-a-time without entering the expression evaluator. Because
// the conjuncts cannot error (property fetch on a node and the value
// comparators are total) and a row survives iff every conjunct is TrueT
// (Kleene AND), evaluating them conjunct-major is indistinguishable from
// the row engine's row-major order.
type columnarFilter struct {
	conjuncts []columnarConjunct
}

// flattenAnd appends the AND-conjuncts of e to out.
func flattenAnd(e ast.Expr, out []ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryOp); ok && b.Op == ast.OpAnd {
		out = flattenAnd(b.LHS, out)
		return flattenAnd(b.RHS, out)
	}
	return append(out, e)
}

// compileColumnarFilter recognises conjunctions of comparisons between a
// property of a slotted variable and a constant (literal or resolved
// parameter).
func (ex *Executor) compileColumnarFilter(pred ast.Expr) (*columnarFilter, bool) {
	exprs := flattenAnd(pred, nil)
	cf := &columnarFilter{conjuncts: make([]columnarConjunct, 0, len(exprs))}
	for _, e := range exprs {
		b, ok := e.(*ast.BinaryOp)
		if !ok {
			return nil, false
		}
		var kind cmpKind
		switch b.Op {
		case ast.OpEq:
			kind = cmpEq
		case ast.OpNeq:
			kind = cmpNeq
		case ast.OpLt:
			kind = cmpLt
		case ast.OpLe:
			kind = cmpLe
		case ast.OpGt:
			kind = cmpGt
		case ast.OpGe:
			kind = cmpGe
		default:
			return nil, false
		}
		lhs, rhs := b.LHS, b.RHS
		prop, propOK := lhs.(*ast.PropertyAccess)
		cv, constOK := ex.constantOperand(rhs)
		if !propOK || !constOK {
			// Try the mirrored form: const OP var.key.
			prop, propOK = rhs.(*ast.PropertyAccess)
			cv, constOK = ex.constantOperand(lhs)
			if !propOK || !constOK {
				return nil, false
			}
			kind = flipCmp(kind)
		}
		v, ok := prop.Subject.(*ast.Variable)
		if !ok {
			return nil, false
		}
		slot, ok := ex.tab.Slot(v.Name)
		if !ok {
			return nil, false
		}
		cf.conjuncts = append(cf.conjuncts, columnarConjunct{slot: slot, key: prop.Key, kind: kind, constVal: cv})
	}
	return cf, true
}

// constantOperand resolves a literal or a supplied parameter.
func (ex *Executor) constantOperand(e ast.Expr) (value.Value, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Value, true
	case *ast.Parameter:
		v, ok := ex.params[x.Name]
		return v, ok
	}
	return nil, false
}

// onlySlot reports whether every conjunct reads the given slot (the
// condition for fusing the filter into the scan loop).
func (cf *columnarFilter) onlySlot(slot int) bool {
	for _, c := range cf.conjuncts {
		if c.slot != slot {
			return false
		}
	}
	return true
}

// filterNodesInto appends the nodes passing every conjunct to dst. Used by
// the fused scan+filter loop: failing nodes are dropped before being boxed
// into values.
func (cf *columnarFilter) filterNodesInto(dst, nodes []*graph.Node) []*graph.Node {
	c := cf.conjuncts[0]
	for _, n := range nodes {
		if ternaryCmp(c.kind, n.Property(c.key), c.constVal) == value.TrueT {
			dst = append(dst, n)
		}
	}
	for _, c := range cf.conjuncts[1:] {
		k := 0
		for _, n := range dst {
			if ternaryCmp(c.kind, n.Property(c.key), c.constVal) == value.TrueT {
				dst[k] = n
				k++
			}
		}
		dst = dst[:k]
	}
	return dst
}

// applyBatch runs the conjuncts column-at-a-time over the batch's
// selection. It reports false without modifying the batch when a referenced
// value is not a concrete graph node (null subjects, maps, foreign nodes);
// the caller then uses per-row evaluation, which handles those cases with
// the scalar evaluator's exact semantics.
func (cf *columnarFilter) applyBatch(b *result.Batch) bool {
	for _, c := range cf.conjuncts {
		col := b.Col(c.slot)
		for _, row := range b.Selection() {
			nv, ok := col[row].(value.NodeValue)
			if !ok {
				return false
			}
			if _, ok := nv.N.(*graph.Node); !ok {
				return false
			}
		}
	}
	for ci := range cf.conjuncts {
		c := &cf.conjuncts[ci]
		col := b.Col(c.slot)
		b.CompactSel(func(_ int, row int32) bool {
			n := col[row].(value.NodeValue).N.(*graph.Node)
			return ternaryCmp(c.kind, n.Property(c.key), c.constVal) == value.TrueT
		})
		if b.Rows() == 0 {
			return true
		}
	}
	return true
}

// --- Kernel pipeline ---

// batchPipeline tracks the pooled batches a kernel chain owns (Expand
// output buffers), released when the pipeline finishes.
type batchPipeline struct {
	size  int
	owned []*result.Batch
}

func (bp *batchPipeline) close() {
	for _, b := range bp.owned {
		putBatch(b)
	}
	bp.owned = nil
}

// buildBatchKernels composes the batched kernels bottom-up around the sink.
// ok=false means some operator has no batched form here (e.g. a slot is
// missing on a hand-built plan) and the caller should run the row path;
// err is a real query error (e.g. an invalid LIMIT count) and must surface.
func (ex *Executor) buildBatchKernels(ops []plan.Operator, size int, sink batchEmit) (push batchEmit, bp *batchPipeline, ok bool, err error) {
	bp = &batchPipeline{size: size}
	cur := sink
	for i := len(ops) - 1; i >= 0; i-- {
		cur, ok, err = ex.buildKernel(ops[i], bp, cur)
		if !ok || err != nil {
			bp.close()
			return nil, nil, false, err
		}
	}
	return cur, bp, true, nil
}

// buildKernel builds the batched kernel for one operator, pushing into emit.
func (ex *Executor) buildKernel(op plan.Operator, bp *batchPipeline, emit batchEmit) (batchEmit, bool, error) {
	switch o := op.(type) {
	case *plan.Filter:
		return ex.buildFilterKernel(o, emit), true, nil
	case *plan.Project:
		return ex.buildProjectKernel(o, emit)
	case *plan.Expand:
		return ex.buildExpandKernel(o, bp, emit)
	case *plan.Limit:
		nVal, err := ex.constantCount(o.Count, "LIMIT")
		if err != nil {
			return nil, false, err
		}
		remaining := nVal
		return func(b *result.Batch) error {
			if remaining <= 0 {
				return errBatchLimit
			}
			if int64(b.Rows()) > remaining {
				b.TruncateSel(int(remaining))
			}
			remaining -= int64(b.Rows())
			if err := emit(b); err != nil {
				return err
			}
			if remaining <= 0 {
				return errBatchLimit
			}
			return nil
		}, true, nil
	case *plan.SelectColumns:
		keep := make([]bool, ex.tab.Len())
		for _, c := range o.Columns {
			s, ok := ex.tab.Slot(c)
			if !ok {
				return nil, false, nil
			}
			keep[s] = true
		}
		return func(b *result.Batch) error {
			for slot := range keep {
				col := b.Col(slot)
				if keep[slot] {
					// The row path binds every selected column, null when the
					// input left it unbound (out.Set(c, r.Get(c))).
					for _, row := range b.Selection() {
						if col[row] == nil {
							col[row] = value.Null()
						}
					}
				} else {
					for _, row := range b.Selection() {
						col[row] = nil
					}
				}
			}
			return emit(b)
		}, true, nil
	}
	return nil, false, nil
}

// buildFilterKernel builds the three-tier Filter kernel: columnar conjunct
// evaluation when the predicate has that shape and the batch's values are
// concrete nodes, a compiled per-row predicate otherwise, and the scalar
// evaluator over a view record as the last resort.
func (ex *Executor) buildFilterKernel(o *plan.Filter, emit batchEmit) batchEmit {
	cf, _ := ex.compileColumnarFilter(o.Predicate)
	pred, predOK := ex.evalCtx.CompileBatchPredicate(o.Predicate, ex.tab)
	view := result.NewSlotted(ex.tab)
	return func(b *result.Batch) error {
		if cf == nil || !cf.applyBatch(b) {
			if predOK {
				if err := b.FilterSel(func(row int32) (bool, error) {
					t, err := pred(b, row)
					if err != nil {
						return false, err
					}
					return t == value.TrueT, nil
				}); err != nil {
					return err
				}
			} else {
				if err := b.FilterSel(func(row int32) (bool, error) {
					b.LoadRecord(&view, row)
					return ex.evalCtx.EvaluateTruth(o.Predicate, view)
				}); err != nil {
					return err
				}
			}
		}
		if b.Rows() == 0 {
			return nil
		}
		return emit(b)
	}
}

// buildProjectKernel builds the Project kernel. Items are evaluated
// row-major against the pre-projection columns and buffered, then written —
// exactly the row path's scratch-row discipline (an item may shadow a
// variable other items still read).
func (ex *Executor) buildProjectKernel(o *plan.Project, emit batchEmit) (batchEmit, bool, error) {
	type compiledItem struct {
		slot int
		fast eval.BatchExpr
		expr ast.Expr
	}
	items := make([]compiledItem, len(o.Items))
	for i, it := range o.Items {
		slot, ok := ex.tab.Slot(it.Name)
		if !ok {
			return nil, false, nil
		}
		fast, _ := ex.evalCtx.CompileBatchExpr(it.Expr, ex.tab)
		items[i] = compiledItem{slot: slot, fast: fast, expr: it.Expr}
	}
	view := result.NewSlotted(ex.tab)
	vals := make([]value.Value, len(items))
	return func(b *result.Batch) error {
		for _, row := range b.Selection() {
			loaded := false
			for i := range items {
				if items[i].fast != nil {
					v, err := items[i].fast(b, row)
					if err != nil {
						return err
					}
					vals[i] = v
					continue
				}
				if !loaded {
					b.LoadRecord(&view, row)
					loaded = true
				}
				v, err := ex.evalCtx.Evaluate(items[i].expr, view)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			for i := range items {
				b.Col(items[i].slot)[row] = vals[i]
			}
		}
		return emit(b)
	}, true, nil
}

// buildExpandKernel builds the single-hop Expand kernel. Source nodes are
// gathered across the batch's selection, then graph.EachRelationshipBatch
// walks all their adjacency with the direction/type dispatch hoisted out of
// the per-row loop; matches append to a pooled output batch that is flushed
// downstream whenever it fills. Per-source-row state (uniqueness sets,
// inline property predicates) is refreshed lazily when the source ordinal
// advances. Check order matches expandRels: used-rel, rel properties,
// used-node, then bind.
func (ex *Executor) buildExpandKernel(o *plan.Expand, bp *batchPipeline, emit batchEmit) (batchEmit, bool, error) {
	if o.VarLength || o.ExpandInto {
		// The analysis keeps these on the row path; a hand-built plan may
		// still reach here.
		return nil, false, nil
	}
	fromSlot, ok := ex.tab.Slot(o.FromVar)
	if !ok {
		return nil, false, nil
	}
	toSlot, ok := ex.tab.Slot(o.ToVar)
	if !ok {
		return nil, false, nil
	}
	relSlot := -1
	if o.RelVar != "" {
		if relSlot, ok = ex.tab.Slot(o.RelVar); !ok {
			return nil, false, nil
		}
	}
	dir := toGraphDirection(o.Direction)
	needRelSet := ex.opts.Morphism == EdgeIsomorphism && len(o.UniqueRels) > 0
	needNodeSet := ex.opts.Morphism == NodeIsomorphism && len(o.UniqueNodes) > 0
	out := getBatch(ex.tab, bp.size)
	bp.owned = append(bp.owned, out)
	view := result.NewSlotted(ex.tab)
	nodesScratch := make([]*graph.Node, 0, bp.size)
	rowsScratch := make([]int32, 0, bp.size)
	return func(b *result.Batch) error {
		// One input batch can fan out to arbitrarily many output batches
		// (supernodes); check at the batch boundary like the drivers do.
		if err := ex.qc.Err(); err != nil {
			return err
		}
		nodesScratch = nodesScratch[:0]
		rowsScratch = rowsScratch[:0]
		fromCol := b.Col(fromSlot)
		for _, row := range b.Selection() {
			v := fromCol[row]
			if v == nil || value.IsNull(v) {
				// An OPTIONAL MATCH (or an unbound slot, which reads as null)
				// contributes nothing to expand from — same as the row path.
				continue
			}
			n, err := asGraphNode(v)
			if err != nil {
				return err
			}
			nodesScratch = append(nodesScratch, n)
			rowsScratch = append(rowsScratch, row)
		}
		if len(nodesScratch) == 0 {
			return nil
		}
		curOrd := -1
		var usedRels, usedNodes map[int64]bool
		var iterErr error
		out.Clear()
		graph.EachRelationshipBatch(nodesScratch, dir, o.Types, func(ord int, rel *graph.Relationship) bool {
			if ord != curOrd {
				curOrd = ord
				releaseIDSet(usedRels)
				releaseIDSet(usedNodes)
				usedRels, usedNodes = nil, nil
				if needRelSet || needNodeSet || o.RelProperties != nil {
					b.LoadRecord(&view, rowsScratch[ord])
				}
				if needRelSet {
					usedRels = boundRelIDs(view, o.UniqueRels)
				}
				if needNodeSet {
					usedNodes = boundNodeIDs(view, o.UniqueNodes)
				}
			}
			if usedRels != nil && usedRels[rel.ID()] {
				return true
			}
			target := rel.Other(nodesScratch[ord])
			if o.RelProperties != nil {
				ok, err := ex.relPropertiesMatch(o.RelProperties, rel, view)
				if err != nil {
					iterErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			if usedNodes != nil && usedNodes[target.ID()] {
				return true
			}
			if out.Full() {
				if err := emit(out); err != nil {
					iterErr = err
					return false
				}
				out.Clear()
			}
			dst := out.AppendFrom(b, rowsScratch[ord])
			if relSlot >= 0 {
				out.Col(relSlot)[dst] = value.NewRelationship(rel)
			}
			out.Col(toSlot)[dst] = value.NewNode(target)
			return true
		})
		releaseIDSet(usedRels)
		releaseIDSet(usedNodes)
		if iterErr != nil {
			return iterErr
		}
		if out.Rows() > 0 {
			if err := emit(out); err != nil {
				return err
			}
			out.Clear()
		}
		return nil
	}, true, nil
}

// --- Vectorized drivers ---

// executeVectorized attempts a serial vectorized run of the plan's batched
// segment with the remaining operators rebased on top, row-at-a-time. done
// is false when the plan is not eligible (the caller takes the row path).
func (ex *Executor) executeVectorized(p *plan.Plan) (tbl *result.Table, done bool, err error) {
	info := p.Vector
	if info == nil {
		info = plan.AnalyzeVectorization(p)
	}
	if !info.Eligible {
		return nil, false, nil
	}
	var varName string
	var nodes []*graph.Node
	switch s := info.Scan.(type) {
	case *plan.AllNodesScan:
		varName, nodes = s.Var, ex.graph.Nodes()
	case *plan.NodeByLabelScan:
		varName, nodes = s.Var, ex.graph.NodesByLabel(s.Label)
	case *plan.NodeIndexSeek:
		// Leaf seeks evaluate their operands over the unit row; evaluation
		// errors fall back to the serial path, which reports them identically.
		ns, err := ex.indexSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName, nodes = s.Var, ns
	case *plan.NodeIndexRangeSeek:
		ns, err := ex.rangeSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName, nodes = s.Var, ns
	case *plan.NodeIndexPrefixSeek:
		ns, err := ex.prefixSeekNodes(s, result.NewSlotted(ex.tab))
		if err != nil {
			return nil, false, nil
		}
		varName, nodes = s.Var, ns
	default:
		return nil, false, nil
	}
	var ops []plan.Operator
	for op := p.Root; op != nil; op = op.Source() {
		ops = append(ops, op)
	}
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	rest := ops[2+len(info.Batched):]
	top, err := buildChain(&vecSource{varName: varName, nodes: nodes, ops: info.Batched}, rest)
	if err != nil {
		return nil, false, nil
	}
	tbl = result.NewTable(p.Columns...)
	if err := ex.run(top, nil, func(r result.Record) error {
		// The table outlives the emit call; take ownership of the row.
		if err := ex.qc.ChargeRecord(r); err != nil {
			return err
		}
		tbl.Add(r.Clone())
		return nil
	}); err != nil {
		return nil, true, err
	}
	return tbl, true, nil
}

// runVectorized drives a vecSource leaf: chunk the node set into batches,
// push each through the kernel chain, and adapt surviving rows back into
// the row pipeline above.
func (ex *Executor) runVectorized(o *vecSource, emit emitFn) error {
	size := ex.batchSize()
	if size <= 0 {
		size = DefaultBatchSize
	}
	scanSlot, ok := ex.tab.Slot(o.varName)
	if !ok {
		return ex.runVecRowFallback(o, emit)
	}
	ops := o.ops
	// Scan+filter fusion: consecutive columnar filters directly above the
	// scan that read only the scan variable run over the raw node chunk,
	// before boxing (the planner pushes each WHERE conjunct as its own
	// Filter, so all of them merge into one fused conjunction).
	var fused *columnarFilter
	for len(ops) > 0 {
		f, isFilter := ops[0].(*plan.Filter)
		if !isFilter {
			break
		}
		cf, okc := ex.compileColumnarFilter(f.Predicate)
		if !okc || !cf.onlySlot(scanSlot) {
			break
		}
		if fused == nil {
			fused = cf
		} else {
			fused.conjuncts = append(fused.conjuncts, cf.conjuncts...)
		}
		ops = ops[1:]
	}
	view := result.NewSlotted(ex.tab)
	sink := func(b *result.Batch) error {
		for _, row := range b.Selection() {
			b.LoadRecord(&view, row)
			if err := emit(view); err != nil {
				return err
			}
		}
		return nil
	}
	push, bp, ok, err := ex.buildBatchKernels(ops, size, sink)
	if err != nil {
		return err
	}
	if !ok {
		return ex.runVecRowFallback(o, emit)
	}
	defer bp.close()
	b := getBatch(ex.tab, size)
	defer putBatch(b)
	var scratch []*graph.Node
	if fused != nil {
		scratch = make([]*graph.Node, 0, size)
	}
	for lo := 0; lo < len(o.nodes); lo += size {
		// Cancellation check at the batch boundary — the vectorized
		// counterpart of the row loops' stride ticks (one chunk is one
		// stride by construction).
		if err := ex.qc.Err(); err != nil {
			return err
		}
		chunk := o.nodes[lo:min(lo+size, len(o.nodes))]
		if fused != nil {
			scratch = fused.filterNodesInto(scratch[:0], chunk)
			chunk = scratch
			if len(chunk) == 0 {
				continue
			}
		}
		b.Reset(len(chunk))
		col := b.Col(scanSlot)
		for i, n := range chunk {
			col[i] = value.NewNode(n)
		}
		if err := push(b); err != nil {
			if errors.Is(err, errBatchLimit) {
				return nil
			}
			return err
		}
	}
	return nil
}

// runVecRowFallback runs the vecSource's segment on the row path (a
// hand-built plan can carry shapes the kernels reject, e.g. names without
// slots). Semantics are identical by construction: this is exactly the
// morsel worker's nodeSource chain.
func (ex *Executor) runVecRowFallback(o *vecSource, emit emitFn) error {
	top, err := buildChain(&nodeSource{varName: o.varName, nodes: o.nodes}, o.ops)
	if err != nil {
		return err
	}
	return ex.run(top, nil, emit)
}
