package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/value"
)

func TestQueryCtxNilIsUngoverned(t *testing.T) {
	var qc *QueryCtx
	if err := qc.Err(); err != nil {
		t.Errorf("nil.Err() = %v", err)
	}
	tick := CancelCheckStride * 3
	if err := qc.Tick(&tick); err != nil {
		t.Errorf("nil.Tick() = %v", err)
	}
	if err := qc.Charge(1 << 40); err != nil {
		t.Errorf("nil.Charge() = %v", err)
	}
	if err := qc.ChargeRecord(result.Record{}); err != nil {
		t.Errorf("nil.ChargeRecord() = %v", err)
	}
	if qc.UsedBytes() != 0 || qc.Budget() != 0 {
		t.Errorf("nil accounting: used=%d budget=%d", qc.UsedBytes(), qc.Budget())
	}
}

func TestQueryCtxTickStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	qc := NewQueryCtx(ctx, 0)
	tick := 0
	for i := 0; i < CancelCheckStride*2; i++ {
		if err := qc.Tick(&tick); err != nil {
			t.Fatalf("tick %d failed before cancel: %v", i, err)
		}
	}
	cancel()
	// The cancellation must surface within one stride of calls.
	var err error
	for i := 0; i < CancelCheckStride && err == nil; i++ {
		err = qc.Tick(&tick)
	}
	var canceled *CanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("post-cancel Tick = %v (%T), want *CanceledError", err, err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("plain cancel misclassified as deadline: %v", err)
	}
}

func TestQueryCtxDeadlineClassification(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := NewQueryCtx(ctx, 0).Err()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want deadline-exceeded cause", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "deadline") {
		t.Errorf("deadline error message %q does not say so", msg)
	}
}

func TestQueryCtxBudget(t *testing.T) {
	qc := NewQueryCtx(context.Background(), 100)
	if qc.Budget() != 100 {
		t.Fatalf("Budget() = %d", qc.Budget())
	}
	if err := qc.Charge(60); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := qc.Charge(39); err != nil {
		t.Fatalf("charge at budget: %v", err)
	}
	err := qc.Charge(2)
	var exhausted *ResourceExhaustedError
	if !errors.As(err, &exhausted) {
		t.Fatalf("over-budget charge = %v (%T), want *ResourceExhaustedError", err, err)
	}
	if exhausted.Budget != 100 || exhausted.Used != 101 {
		t.Errorf("exhausted = %+v, want budget 100 used 101", exhausted)
	}
	if qc.UsedBytes() != 101 {
		t.Errorf("UsedBytes() = %d after failed charge (accounting is monotonic)", qc.UsedBytes())
	}
	// Zero budget means account-only: never fails, still tracks usage.
	free := NewQueryCtx(context.Background(), 0)
	if err := free.Charge(1 << 40); err != nil {
		t.Fatalf("unbudgeted charge: %v", err)
	}
	if free.UsedBytes() != 1<<40 {
		t.Errorf("unbudgeted UsedBytes() = %d", free.UsedBytes())
	}
}

func TestRecordMemEstimate(t *testing.T) {
	r := result.NewRecord()
	small := r.MemEstimate()
	if small <= 0 {
		t.Fatalf("MemEstimate() = %d, want positive", small)
	}
	r.Set("a", value.NewInt(1))
	r.Set("b", value.NewInt(2))
	if grown := r.MemEstimate(); grown <= small {
		t.Errorf("estimate did not grow with entries: %d -> %d", small, grown)
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	err := newPanicError("boom")
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q", err.Error())
	}
	if !strings.Contains(string(err.Stack), "TestPanicErrorCarriesStack") {
		t.Errorf("stack does not include the panicking frame:\n%s", err.Stack)
	}
}
