package exec

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/result"
	"repro/internal/value"
)

// Index seek evaluation. The three seek operators evaluate their operand
// expressions against the current row (parameters, literals, or variables
// bound by earlier clauses) and enumerate the matching nodes through the
// graph's property indexes — hash buckets for equality and IN, the ordered
// bucket list for ranges and prefixes. The graph layer returns nodes in
// identifier order, the same order the equivalent label-scan-plus-filter
// plan would produce them, so plan choice never changes result order. All
// comparison semantics (ternary logic, null operands, type mismatches)
// mirror the expression evaluator exactly: a seek must return precisely the
// nodes the predicate it replaced would have kept.

// indexSeekNodes enumerates the nodes of an equality or IN-list seek.
func (ex *Executor) indexSeekNodes(o *plan.NodeIndexSeek, r result.Record) ([]*graph.Node, error) {
	v, err := ex.evalCtx.Evaluate(o.Value, r)
	if err != nil {
		return nil, err
	}
	if value.IsNull(v) {
		// `p = null` and `p IN null` are unknown for every row.
		return nil, nil
	}
	if !o.In {
		return ex.graph.NodesByLabelProperty(o.Label, o.Property, v), nil
	}
	l, ok := value.AsList(v)
	if !ok {
		// Mirror the evaluator's error for a non-list IN operand.
		return nil, fmt.Errorf("%w: IN requires a list, got %s", eval.ErrTypeError, v.Kind())
	}
	return ex.graph.NodesByLabelPropertyIn(o.Label, o.Property, l.Elements()), nil
}

// rangeSeekNodes enumerates the nodes of a range seek. A null bound makes
// the comparison unknown for every row, so it matches nothing.
func (ex *Executor) rangeSeekNodes(o *plan.NodeIndexRangeSeek, r result.Record) ([]*graph.Node, error) {
	var lo, hi value.Value
	if o.Lo != nil {
		v, err := ex.evalCtx.Evaluate(o.Lo, r)
		if err != nil {
			return nil, err
		}
		if value.IsNull(v) {
			return nil, nil
		}
		lo = v
	}
	if o.Hi != nil {
		v, err := ex.evalCtx.Evaluate(o.Hi, r)
		if err != nil {
			return nil, err
		}
		if value.IsNull(v) {
			return nil, nil
		}
		hi = v
	}
	return ex.graph.NodesByLabelPropertyRange(o.Label, o.Property, lo, o.LoInc, hi, o.HiInc), nil
}

// prefixSeekNodes enumerates the nodes of a STARTS WITH seek. A null or
// non-string prefix makes the predicate unknown for every row (the
// evaluator's lenient treatment), so it matches nothing.
func (ex *Executor) prefixSeekNodes(o *plan.NodeIndexPrefixSeek, r result.Record) ([]*graph.Node, error) {
	v, err := ex.evalCtx.Evaluate(o.Prefix, r)
	if err != nil {
		return nil, err
	}
	s, ok := value.AsString(v)
	if !ok {
		return nil, nil
	}
	return ex.graph.NodesByLabelPropertyPrefix(o.Label, o.Property, s), nil
}
