package exec

// Query lifecycle governance: the per-query context threaded from the engine
// into both execution pipelines. A QueryCtx bundles the caller's
// context.Context (cancellation + deadline) with a memory accountant charged
// by every materializing operator. All methods are safe on a nil receiver —
// an ungoverned query (no deadline, no budget, non-cancelable context) passes
// qc == nil and pays nothing on the hot path.
//
// Cancellation is cooperative. Serial loops call Tick with a loop-local
// counter and only reach the (atomic) context check every CancelCheckStride
// rows; batch and morsel drivers call Err once per chunk/morsel, which is the
// same granularity by construction (batches and morsels default to 1024
// rows). That bounds cancellation latency to roughly one stride of the
// cheapest per-row work while keeping the check itself off the per-row path.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/result"
)

// CancelCheckStride is the number of rows a serial operator loop may produce
// between cooperative cancellation checks. It is deliberately aligned with
// the default morsel/batch size so the row path, the vectorized path and the
// parallel path all observe cancellation at comparable row granularity.
const CancelCheckStride = 1024

// Shallow per-entry cost estimates the memory accountant charges for
// query-owned hash and aggregation state. Like Record.MemEstimate these are
// consistent lower bounds for budget enforcement, not heap measurements.
const (
	// dedupEntryCost is one DISTINCT/UNION set entry beyond its key bytes
	// (string header + map bucket share).
	dedupEntryCost = 48
	// aggGroupCost is one aggregation group's fixed state (struct, map entry,
	// order-slice entry) beyond its key bytes and aggregators.
	aggGroupCost = 96
	// aggStateCost is one aggregator's accumulator.
	aggStateCost = 48
	// aggRetainedValueCost is one input value retained by an unbounded
	// aggregator (collect, DISTINCT) per row.
	aggRetainedValueCost = 16
)

// QueryCtx is the query-scoped governance state: cancellation source and
// memory accountant. One QueryCtx is shared by every worker of a parallel
// run, so all state is read-only or atomic.
type QueryCtx struct {
	ctx    context.Context
	budget int64 // bytes; 0 means unlimited
	used   atomic.Int64
}

// NewQueryCtx builds a QueryCtx over the caller's context with the given
// memory budget in bytes (0 = unlimited). A nil ctx means background.
func NewQueryCtx(ctx context.Context, memoryBudget int64) *QueryCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	if memoryBudget < 0 {
		memoryBudget = 0
	}
	return &QueryCtx{ctx: ctx, budget: memoryBudget}
}

// Context returns the underlying context (background for a nil QueryCtx).
func (q *QueryCtx) Context() context.Context {
	if q == nil || q.ctx == nil {
		return context.Background()
	}
	return q.ctx
}

// Err checks the context once and converts a cancellation into a
// *CanceledError. It is the per-chunk / per-morsel check; serial loops go
// through Tick instead.
func (q *QueryCtx) Err() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	if err := q.ctx.Err(); err != nil {
		return &CanceledError{Cause: err}
	}
	return nil
}

// Tick is the serial-loop cancellation check: it increments the caller's
// loop-local counter and performs the real context check only every
// CancelCheckStride calls. The counter lives at the call site (not on the
// executor) because one executor is shared by all morsel workers.
func (q *QueryCtx) Tick(n *int) error {
	if q == nil {
		return nil
	}
	*n++
	if *n < CancelCheckStride {
		return nil
	}
	*n = 0
	return q.Err()
}

// Charge accounts n bytes of query-owned materialized state (sort buffers,
// aggregation groups, distinct sets, result rows). It fails the query with a
// *ResourceExhaustedError once the budget is exceeded. Memory is never
// un-charged: the accountant tracks the high-water mark of what the query
// materialized, which is what the budget bounds.
func (q *QueryCtx) Charge(n int64) error {
	if q == nil {
		return nil
	}
	used := q.used.Add(n)
	if q.budget > 0 && used > q.budget {
		return &ResourceExhaustedError{Budget: q.budget, Used: used}
	}
	return nil
}

// ChargeRecord charges a shallow estimate of one materialized record.
func (q *QueryCtx) ChargeRecord(r result.Record) error {
	if q == nil {
		return nil
	}
	return q.Charge(r.MemEstimate())
}

// UsedBytes reports the bytes charged so far (the query's materialized
// high-water mark; 0 for a nil QueryCtx).
func (q *QueryCtx) UsedBytes() int64 {
	if q == nil {
		return 0
	}
	return q.used.Load()
}

// Budget returns the configured budget in bytes (0 = unlimited).
func (q *QueryCtx) Budget() int64 {
	if q == nil {
		return 0
	}
	return q.budget
}

// CanceledError reports a query stopped by context cancellation or deadline
// expiry. Cause is the context error (context.Canceled or
// context.DeadlineExceeded) and is reachable through errors.Is/As.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		return "exec: query deadline exceeded"
	}
	return "exec: query canceled"
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// ResourceExhaustedError reports a query killed for exceeding its memory
// budget. Only the offending query fails; the process and all other queries
// are unaffected.
type ResourceExhaustedError struct {
	// Budget is the configured per-query budget in bytes.
	Budget int64
	// Used is the number of bytes the query had materialized when it tripped
	// the budget.
	Used int64
}

func (e *ResourceExhaustedError) Error() string {
	return fmt.Sprintf("exec: query memory budget exhausted (%d bytes materialized, budget %d)", e.Used, e.Budget)
}

// PanicError reports an operator panic recovered at the query boundary. The
// query fails with this error; the engine, its locks, pins and pools are
// unaffected (cleanup runs in the deferred handlers during unwinding).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: internal error: query execution panicked: %v", e.Value)
}

// newPanicError captures the panic value and current stack.
func newPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}
