// Package temporal implements the temporal types proposed for Cypher 10
// (Section 6 of the paper): the instant types Date and LocalDateTime and the
// Duration type, together with the constructor and accessor functions that
// expose them to queries (date(), datetime(), duration(), year(), month(),
// day(), durationBetween(), ...).
//
// The types implement value.Value (and value.Orderable), so they flow through
// expressions, ORDER BY, DISTINCT and aggregation like any other value.
package temporal

import (
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/value"
)

// Date is a calendar date without a time component.
type Date struct {
	Year  int
	Month time.Month
	Day   int
}

// DateTime is a date with a time-of-day component (no time zone — the
// proposal's LocalDateTime).
type DateTime struct {
	Date
	Hour, Minute, Second, Nanosecond int
}

// Duration is a length of time with month, day and second components, as in
// the openCypher proposal (months and days do not have a fixed length in
// seconds, so they are kept separately).
type Duration struct {
	Months  int
	Days    int
	Seconds int64
	Nanos   int64
}

// Kind reports the Date kind.
func (Date) Kind() value.Kind { return value.KindDate }

// Kind reports the DateTime kind.
func (DateTime) Kind() value.Kind { return value.KindDateTime }

// Kind reports the Duration kind.
func (Duration) Kind() value.Kind { return value.KindDuration }

// String renders the date in ISO-8601 form.
func (d Date) String() string { return fmt.Sprintf("%04d-%02d-%02d", d.Year, int(d.Month), d.Day) }

// String renders the date-time in ISO-8601 form.
func (dt DateTime) String() string {
	s := fmt.Sprintf("%sT%02d:%02d:%02d", dt.Date.String(), dt.Hour, dt.Minute, dt.Second)
	if dt.Nanosecond != 0 {
		s += fmt.Sprintf(".%09d", dt.Nanosecond)
	}
	return s
}

// String renders the duration in ISO-8601 form (P..M..DT..S).
func (d Duration) String() string {
	out := "P"
	if d.Months != 0 {
		out += fmt.Sprintf("%dM", d.Months)
	}
	if d.Days != 0 {
		out += fmt.Sprintf("%dD", d.Days)
	}
	if d.Seconds != 0 || d.Nanos != 0 || (d.Months == 0 && d.Days == 0) {
		out += "T"
		secs := float64(d.Seconds) + float64(d.Nanos)/1e9
		out += fmt.Sprintf("%gS", secs)
	}
	return out
}

// CompareTo orders dates chronologically.
func (d Date) CompareTo(other value.Value) int {
	o, ok := other.(Date)
	if !ok {
		return -1
	}
	return int(d.toTime().Sub(o.toTime()))
}

// CompareTo orders date-times chronologically.
func (dt DateTime) CompareTo(other value.Value) int {
	o, ok := other.(DateTime)
	if !ok {
		return -1
	}
	a, b := dt.toTime(), o.toTime()
	switch {
	case a.Before(b):
		return -1
	case a.After(b):
		return 1
	default:
		return 0
	}
}

// EqualTo compares durations component-wise, as openCypher requires:
// duration({months: 1}) is NOT equal to duration({days: 30}) even though
// they order the same under the nominal-length approximation.
func (d Duration) EqualTo(other value.Value) bool {
	o, ok := other.(Duration)
	return ok && d == o
}

// CompareTo orders durations by their nominal length (months are counted as
// 30 days, as in the openCypher comparability rules for durations).
func (d Duration) CompareTo(other value.Value) int {
	o, ok := other.(Duration)
	if !ok {
		return -1
	}
	a, b := d.approxSeconds(), o.approxSeconds()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (d Date) toTime() time.Time {
	return time.Date(d.Year, d.Month, d.Day, 0, 0, 0, 0, time.UTC)
}

func (dt DateTime) toTime() time.Time {
	return time.Date(dt.Year, dt.Month, dt.Day, dt.Hour, dt.Minute, dt.Second, dt.Nanosecond, time.UTC)
}

func (d Duration) approxSeconds() float64 {
	return float64(d.Months)*30*86400 + float64(d.Days)*86400 + float64(d.Seconds) + float64(d.Nanos)/1e9
}

// FromTime converts a Go time into a DateTime.
func FromTime(t time.Time) DateTime {
	return DateTime{
		Date:       Date{Year: t.Year(), Month: t.Month(), Day: t.Day()},
		Hour:       t.Hour(),
		Minute:     t.Minute(),
		Second:     t.Second(),
		Nanosecond: t.Nanosecond(),
	}
}

// ParseDate parses an ISO-8601 calendar date (YYYY-MM-DD).
func ParseDate(s string) (Date, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Date{}, fmt.Errorf("temporal: invalid date %q: %v", s, err)
	}
	return Date{Year: t.Year(), Month: t.Month(), Day: t.Day()}, nil
}

// ParseDateTime parses an ISO-8601 date-time (YYYY-MM-DDTHH:MM:SS), with an
// optional fractional-second part and an optional UTC offset suffix — `Z`,
// `±hh:mm` or `±hhmm`. An offset-qualified instant is normalised to UTC
// (the type itself is the proposal's LocalDateTime and carries no zone).
func ParseDateTime(s string) (DateTime, error) {
	// Offset-qualified layouts first: "Z07:00" matches both a literal Z and
	// a numeric ±hh:mm offset, and the ".999999999" fraction is optional at
	// parse time, so these four layouts also cover whole-second inputs.
	for _, layout := range []string{
		"2006-01-02T15:04:05.999999999Z07:00",
		"2006-01-02T15:04:05.999999999Z0700",
		"2006-01-02T15:04Z07:00",
		"2006-01-02T15:04Z0700",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return FromTime(t.UTC()), nil
		}
	}
	for _, layout := range []string{"2006-01-02T15:04:05.999999999", "2006-01-02T15:04:05", "2006-01-02T15:04", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return FromTime(t), nil
		}
	}
	return DateTime{}, fmt.Errorf("temporal: invalid datetime %q", s)
}

// Between returns the duration from a to b (dates or date-times).
func Between(a, b time.Time) Duration {
	diff := b.Sub(a)
	return Duration{Seconds: int64(diff / time.Second), Nanos: int64(diff % time.Second)}
}

// AddToDate adds a duration to a date.
func AddToDate(d Date, dur Duration) Date {
	t := d.toTime().AddDate(0, dur.Months, dur.Days).Add(time.Duration(dur.Seconds)*time.Second + time.Duration(dur.Nanos))
	return Date{Year: t.Year(), Month: t.Month(), Day: t.Day()}
}

// RegisterFunctions installs the temporal constructor and accessor functions
// into the expression function registry; it is called automatically on
// package import.
func RegisterFunctions() {
	eval.RegisterFunction("date", func(args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return nil, fmt.Errorf("temporal: date() requires a string argument in this implementation")
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		s, ok := value.AsString(args[0])
		if !ok {
			return nil, fmt.Errorf("temporal: date() expects a string, got %s", args[0].Kind())
		}
		d, err := ParseDate(s)
		if err != nil {
			return nil, err
		}
		return d, nil
	})
	eval.RegisterFunction("datetime", func(args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return nil, fmt.Errorf("temporal: datetime() requires a string argument in this implementation")
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		s, ok := value.AsString(args[0])
		if !ok {
			return nil, fmt.Errorf("temporal: datetime() expects a string, got %s", args[0].Kind())
		}
		dt, err := ParseDateTime(s)
		if err != nil {
			return nil, err
		}
		return dt, nil
	})
	eval.RegisterFunction("duration", func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("temporal: duration() expects one argument")
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		m, ok := value.AsMap(args[0])
		if !ok {
			return nil, fmt.Errorf("temporal: duration() expects a map like {days: 3, hours: 4}")
		}
		var d Duration
		getInt := func(key string) int64 {
			if v, ok := m.Get(key); ok {
				if i, isInt := value.AsInt(v); isInt {
					return i
				}
			}
			return 0
		}
		d.Months = int(getInt("months") + 12*getInt("years"))
		d.Days = int(getInt("days") + 7*getInt("weeks"))
		d.Seconds = getInt("seconds") + 60*getInt("minutes") + 3600*getInt("hours")
		return d, nil
	})
	eval.RegisterFunction("year", temporalComponent(func(d Date) int64 { return int64(d.Year) }))
	eval.RegisterFunction("month", temporalComponent(func(d Date) int64 { return int64(d.Month) }))
	eval.RegisterFunction("day", temporalComponent(func(d Date) int64 { return int64(d.Day) }))
	eval.RegisterFunction("durationbetween", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("temporal: durationBetween() expects two arguments")
		}
		if value.IsNull(args[0]) || value.IsNull(args[1]) {
			return value.Null(), nil
		}
		a, err := asTime(args[0])
		if err != nil {
			return nil, err
		}
		b, err := asTime(args[1])
		if err != nil {
			return nil, err
		}
		return Between(a, b), nil
	})
	eval.RegisterFunction("dateadd", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("temporal: dateAdd() expects a date and a duration")
		}
		if value.IsNull(args[0]) || value.IsNull(args[1]) {
			return value.Null(), nil
		}
		d, ok := args[0].(Date)
		if !ok {
			return nil, fmt.Errorf("temporal: dateAdd() expects a date as its first argument")
		}
		dur, ok := args[1].(Duration)
		if !ok {
			return nil, fmt.Errorf("temporal: dateAdd() expects a duration as its second argument")
		}
		return AddToDate(d, dur), nil
	})
}

func temporalComponent(get func(Date) int64) eval.ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("temporal: component accessor expects one argument")
		}
		switch v := args[0].(type) {
		case Date:
			return value.NewInt(get(v)), nil
		case DateTime:
			return value.NewInt(get(v.Date)), nil
		default:
			if value.IsNull(args[0]) {
				return value.Null(), nil
			}
			return nil, fmt.Errorf("temporal: expected a date or datetime, got %s", args[0].Kind())
		}
	}
}

func asTime(v value.Value) (time.Time, error) {
	switch t := v.(type) {
	case Date:
		return t.toTime(), nil
	case DateTime:
		return t.toTime(), nil
	default:
		return time.Time{}, fmt.Errorf("temporal: expected a date or datetime, got %s", v.Kind())
	}
}

func init() { RegisterFunctions() }
