package temporal

import (
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/value"
)

func evalHasFunction(name string) bool { return eval.HasFunction(name) }

func evalCall(name string, args []value.Value) (value.Value, error) {
	return eval.CallFunction(name, args)
}

func TestParseAndRender(t *testing.T) {
	d, err := ParseDate("2018-06-10")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2018-06-10" || d.Year != 2018 || d.Month != time.June || d.Day != 10 {
		t.Errorf("date wrong: %+v", d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Errorf("invalid date should fail")
	}

	dt, err := ParseDateTime("2018-06-10T14:30:05")
	if err != nil {
		t.Fatal(err)
	}
	if dt.String() != "2018-06-10T14:30:05" {
		t.Errorf("datetime rendering = %s", dt.String())
	}
	if _, err := ParseDateTime("junk"); err == nil {
		t.Errorf("invalid datetime should fail")
	}

	dur := Duration{Days: 2, Seconds: 3600}
	if dur.String() != "P2DT3600S" {
		t.Errorf("duration rendering = %s", dur.String())
	}
	if (Duration{}).String() != "PT0S" {
		t.Errorf("zero duration rendering = %s", Duration{}.String())
	}
}

func TestKindsAndOrdering(t *testing.T) {
	d1, _ := ParseDate("2018-06-10")
	d2, _ := ParseDate("2019-01-01")
	if d1.Kind() != value.KindDate || d2.Kind() != value.KindDate {
		t.Errorf("date kind wrong")
	}
	if value.Compare(d1, d2) >= 0 {
		t.Errorf("2018 should order before 2019")
	}
	if value.Compare(d2, d1) <= 0 || value.Compare(d1, d1) != 0 {
		t.Errorf("date ordering inconsistent")
	}

	dt1, _ := ParseDateTime("2018-06-10T08:00:00")
	dt2, _ := ParseDateTime("2018-06-10T09:00:00")
	if dt1.Kind() != value.KindDateTime || value.Compare(dt1, dt2) >= 0 {
		t.Errorf("datetime ordering wrong")
	}

	short := Duration{Seconds: 10}
	long := Duration{Days: 1}
	if short.Kind() != value.KindDuration || value.Compare(short, long) >= 0 {
		t.Errorf("duration ordering wrong")
	}
	if value.Compare(Duration{Months: 1}, Duration{Days: 29}) <= 0 {
		t.Errorf("a month orders after 29 days (30-day nominal months)")
	}
}

func TestArithmeticHelpers(t *testing.T) {
	d, _ := ParseDate("2018-06-10")
	later := AddToDate(d, Duration{Days: 5})
	if later.String() != "2018-06-15" {
		t.Errorf("AddToDate = %s", later.String())
	}
	withMonths := AddToDate(d, Duration{Months: 2, Days: 1})
	if withMonths.String() != "2018-08-11" {
		t.Errorf("AddToDate with months = %s", withMonths.String())
	}

	a, _ := ParseDateTime("2018-06-10T00:00:00")
	b, _ := ParseDateTime("2018-06-11T06:00:00")
	between := Between(a.toTime(), b.toTime())
	if between.Seconds != 30*3600 {
		t.Errorf("Between = %+v", between)
	}
	if FromTime(time.Date(2020, 2, 29, 12, 0, 0, 0, time.UTC)).String() != "2020-02-29T12:00:00" {
		t.Errorf("FromTime wrong")
	}
}

func TestRegisteredFunctions(t *testing.T) {
	// The functions are registered via init(); exercise them through the
	// scalar registry the same way the engine does.
	call := func(name string, args ...value.Value) (value.Value, error) {
		t.Helper()
		if !evalHasFunction(name) {
			t.Fatalf("function %s not registered", name)
		}
		return evalCall(name, args)
	}
	d, err := call("date", value.NewString("2018-06-10"))
	if err != nil {
		t.Fatal(err)
	}
	if d.(Date).Year != 2018 {
		t.Errorf("date() wrong: %v", d)
	}
	y, err := call("year", d)
	if err != nil || value.Compare(y, value.NewInt(2018)) != 0 {
		t.Errorf("year() wrong: %v %v", y, err)
	}
	if v, err := call("date", value.Null()); err != nil || !value.IsNull(v) {
		t.Errorf("date(null) should be null")
	}
	if _, err := call("date", value.NewInt(3)); err == nil {
		t.Errorf("date(3) should fail")
	}
	dur, err := call("duration", value.NewMap(map[string]value.Value{"hours": value.NewInt(2), "days": value.NewInt(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if dur.(Duration).Seconds != 7200 || dur.(Duration).Days != 1 {
		t.Errorf("duration() wrong: %v", dur)
	}
	dt, err := call("datetime", value.NewString("2018-06-10T10:00:00"))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := call("durationbetween", d, dt)
	if err != nil {
		t.Fatal(err)
	}
	if diff.(Duration).Seconds != 10*3600 {
		t.Errorf("durationBetween wrong: %v", diff)
	}
	added, err := call("dateadd", d, Duration{Days: 3})
	if err != nil || added.(Date).Day != 13 {
		t.Errorf("dateAdd wrong: %v %v", added, err)
	}
}

func TestParseDateTimeOffsets(t *testing.T) {
	want := DateTime{Date: Date{Year: 2020, Month: 1, Day: 1}}
	for _, s := range []string{
		"2020-01-01T00:00:00Z",
		"2020-01-01T05:30:00+05:30",
		"2019-12-31T19:00:00-05:00",
		"2020-01-01T02:00:00+0200",
		"2020-01-01T00:00Z",
	} {
		got, err := ParseDateTime(s)
		if err != nil {
			t.Errorf("ParseDateTime(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseDateTime(%q) = %v, want %v", s, got, want)
		}
	}
	// Fractional seconds survive offset normalisation.
	got, err := ParseDateTime("2020-06-01T12:00:00.25+02:00")
	if err != nil {
		t.Fatal(err)
	}
	if got.Hour != 10 || got.Nanosecond != 250000000 {
		t.Errorf("fractional offset parse: %+v", got)
	}
	// Local forms still work; junk still fails.
	if _, err := ParseDateTime("2020-01-01T00:00:00"); err != nil {
		t.Errorf("local datetime should still parse: %v", err)
	}
	for _, bad := range []string{"2020-01-01T00:00:00X", "2020-01-01T00:00:00+", "nonsense"} {
		if _, err := ParseDateTime(bad); err == nil {
			t.Errorf("ParseDateTime(%q) should fail", bad)
		}
	}
}

func TestDurationEqualityIsComponentWise(t *testing.T) {
	month := Duration{Months: 1}
	thirtyDays := Duration{Days: 30}
	day := Duration{Days: 1}
	day2 := Duration{Days: 1}
	if value.Equals(month, thirtyDays) != value.FalseT {
		t.Error("duration({months: 1}) must not equal duration({days: 30})")
	}
	if value.Equals(day, day2) != value.TrueT {
		t.Error("identical durations must be equal")
	}
	// Ordering still uses the nominal-length approximation.
	if month.CompareTo(thirtyDays) != 0 {
		t.Error("months-as-30-days ordering approximation changed")
	}
	// DateTime equality is by instant (ordering and equality coincide).
	a, _ := ParseDateTime("2020-01-01T00:00:00Z")
	b, _ := ParseDateTime("2020-01-01T05:30:00+05:30")
	if value.Equals(a, b) != value.TrueT {
		t.Error("equal instants must compare equal")
	}
}
