package schema

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func buildGraph() *graph.Graph {
	g := graph.New()
	g.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.NewString("Ann"), "ssn": value.NewInt(1)})
	g.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.NewString("Bob"), "ssn": value.NewInt(2)})
	g.CreateNode([]string{"Person"}, map[string]value.Value{"ssn": value.NewInt(2)})          // missing name, duplicate ssn
	g.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.NewInt(42)})        // wrong type for name
	g.CreateNode([]string{"Publication"}, map[string]value.Value{"acmid": value.NewInt(220)}) // other label, unaffected
	return g
}

func TestExistenceConstraint(t *testing.T) {
	g := buildGraph()
	s := New().RequireProperty("Person", "name")
	violations := s.Check(g)
	if len(violations) != 1 {
		t.Fatalf("expected 1 violation, got %d: %v", len(violations), violations)
	}
	if violations[0].Constraint.Kind != Existence || !strings.Contains(violations[0].String(), "exists(Person.name)") {
		t.Errorf("violation wrong: %v", violations[0])
	}
}

func TestUniquenessConstraint(t *testing.T) {
	g := buildGraph()
	s := New().Unique("Person", "ssn")
	violations := s.Check(g)
	if len(violations) != 1 {
		t.Fatalf("expected 1 violation, got %d: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0].Detail, "already used") {
		t.Errorf("detail wrong: %v", violations[0])
	}
}

func TestTypeConstraint(t *testing.T) {
	g := buildGraph()
	s := New().RequireType("Person", "name", value.KindString)
	violations := s.Check(g)
	if len(violations) != 1 {
		t.Fatalf("expected 1 violation, got %d: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0].Detail, "INTEGER") {
		t.Errorf("detail should mention the offending kind: %v", violations[0])
	}
}

func TestValidateAndConformingGraph(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.NewString("Ann"), "ssn": value.NewInt(1)})
	g.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.NewString("Bob"), "ssn": value.NewInt(2)})
	s := New().
		RequireProperty("Person", "name").
		Unique("Person", "ssn").
		RequireType("Person", "name", value.KindString)
	if err := s.Validate(g); err != nil {
		t.Fatalf("conforming graph should validate: %v", err)
	}
	if len(s.Constraints()) != 3 {
		t.Errorf("constraints accessor wrong")
	}

	bad := buildGraph()
	err := s.Validate(bad)
	if err == nil {
		t.Fatalf("violating graph should not validate")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Errorf("error message should summarise violations: %v", err)
	}
}

func TestConstraintStringForms(t *testing.T) {
	cases := map[string]Constraint{
		"CONSTRAINT exists(Person.name)":        {Kind: Existence, Label: "Person", Property: "name"},
		"CONSTRAINT unique(Person.ssn)":         {Kind: Uniqueness, Label: "Person", Property: "ssn"},
		"CONSTRAINT type(Person.age) = INTEGER": {Kind: TypeIs, Label: "Person", Property: "age", ValueKind: value.KindInt},
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
