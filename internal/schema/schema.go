// Package schema implements the optional schema layer discussed in the
// paper's future-work section ("Schema model"): Cypher was conceived
// schema-less, Neo4j is schema-optional, and other implementations are
// schema-strict. This package provides property-existence and uniqueness
// constraints over labels that can be validated against a graph, mirroring
// the schema-optional position.
package schema

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/value"
)

// ConstraintKind discriminates the supported constraint types.
type ConstraintKind int

// Supported constraint kinds.
const (
	// Existence requires every node with the label to have the property.
	Existence ConstraintKind = iota
	// Uniqueness requires the property value to be unique among nodes with
	// the label (nodes lacking the property are ignored).
	Uniqueness
	// TypeIs requires the property, when present, to have the given value
	// kind.
	TypeIs
)

// Constraint is a single schema rule.
type Constraint struct {
	Kind     ConstraintKind
	Label    string
	Property string
	// ValueKind applies to TypeIs constraints.
	ValueKind value.Kind
}

// String renders the constraint.
func (c Constraint) String() string {
	switch c.Kind {
	case Existence:
		return fmt.Sprintf("CONSTRAINT exists(%s.%s)", c.Label, c.Property)
	case Uniqueness:
		return fmt.Sprintf("CONSTRAINT unique(%s.%s)", c.Label, c.Property)
	default:
		return fmt.Sprintf("CONSTRAINT type(%s.%s) = %s", c.Label, c.Property, c.ValueKind)
	}
}

// Violation describes one node breaking one constraint.
type Violation struct {
	Constraint Constraint
	NodeID     int64
	Detail     string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s violated by node %d: %s", v.Constraint, v.NodeID, v.Detail)
}

// Schema is a set of constraints. The zero value is an empty schema.
type Schema struct {
	constraints []Constraint
}

// New creates an empty schema.
func New() *Schema { return &Schema{} }

// RequireProperty adds an existence constraint and returns the schema for
// chaining.
func (s *Schema) RequireProperty(label, property string) *Schema {
	s.constraints = append(s.constraints, Constraint{Kind: Existence, Label: label, Property: property})
	return s
}

// Unique adds a uniqueness constraint and returns the schema for chaining.
func (s *Schema) Unique(label, property string) *Schema {
	s.constraints = append(s.constraints, Constraint{Kind: Uniqueness, Label: label, Property: property})
	return s
}

// RequireType adds a property type constraint and returns the schema for
// chaining.
func (s *Schema) RequireType(label, property string, kind value.Kind) *Schema {
	s.constraints = append(s.constraints, Constraint{Kind: TypeIs, Label: label, Property: property, ValueKind: kind})
	return s
}

// Constraints returns the schema's constraints.
func (s *Schema) Constraints() []Constraint {
	return append([]Constraint(nil), s.constraints...)
}

// Check validates the graph against every constraint and returns all
// violations, ordered by node id for determinism.
func (s *Schema) Check(g *graph.Graph) []Violation {
	var out []Violation
	for _, c := range s.constraints {
		nodes := g.NodesByLabel(c.Label)
		switch c.Kind {
		case Existence:
			for _, n := range nodes {
				if value.IsNull(n.Property(c.Property)) {
					out = append(out, Violation{Constraint: c, NodeID: n.ID(), Detail: "property is missing"})
				}
			}
		case TypeIs:
			for _, n := range nodes {
				v := n.Property(c.Property)
				if value.IsNull(v) {
					continue
				}
				if v.Kind() != c.ValueKind {
					out = append(out, Violation{Constraint: c, NodeID: n.ID(), Detail: fmt.Sprintf("property has kind %s, want %s", v.Kind(), c.ValueKind)})
				}
			}
		case Uniqueness:
			seen := map[string]int64{}
			for _, n := range nodes {
				v := n.Property(c.Property)
				if value.IsNull(v) {
					continue
				}
				key := value.GroupKey(v)
				if firstID, dup := seen[key]; dup {
					out = append(out, Violation{
						Constraint: c,
						NodeID:     n.ID(),
						Detail:     fmt.Sprintf("value %s already used by node %d", v.String(), firstID),
					})
					continue
				}
				seen[key] = n.ID()
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeID != out[j].NodeID {
			return out[i].NodeID < out[j].NodeID
		}
		return out[i].Constraint.String() < out[j].Constraint.String()
	})
	return out
}

// Validate is like Check but returns an error summarising the violations (or
// nil when the graph conforms).
func (s *Schema) Validate(g *graph.Graph) error {
	violations := s.Check(g)
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("schema: %d violation(s), first: %s", len(violations), violations[0])
}
