package datasets

import (
	"testing"

	"repro/internal/graph"
)

func TestCitationsShape(t *testing.T) {
	g, nodes := Citations()
	s := g.Stats()
	if s.NodeCount != 10 || s.RelationshipCount != 11 {
		t.Fatalf("Figure 1 shape wrong: %+v", s)
	}
	if len(nodes) != 10 {
		t.Fatalf("node map should expose all 10 nodes")
	}
	// Spot-check the adjacency of Example 4.1: n6 authors n5 and n9 and
	// supervises n7 and n8.
	elin := nodes["n6"]
	if elin.Degree(graph.Outgoing, "AUTHORS") != 2 || elin.Degree(graph.Outgoing, "SUPERVISES") != 2 {
		t.Errorf("Elin's adjacency wrong")
	}
	if nodes["n9"].Degree(graph.Outgoing, "CITES") != 2 {
		t.Errorf("n9 should cite two publications")
	}
	if nodes["n10"].Degree(graph.Outgoing, "AUTHORS") != 0 {
		t.Errorf("Thor has no publications")
	}
}

func TestTeachersShape(t *testing.T) {
	g, nodes := Teachers()
	s := g.Stats()
	if s.NodeCount != 4 || s.RelationshipCount != 3 {
		t.Fatalf("Figure 4 shape wrong: %+v", s)
	}
	if s.LabelCardinality("Teacher") != 3 || s.LabelCardinality("Student") != 1 {
		t.Errorf("Figure 4 labels wrong: %+v", s.NodesByLabel)
	}
	if nodes["n1"].Degree(graph.Outgoing, "KNOWS") != 1 || nodes["n4"].Degree(graph.Outgoing, "KNOWS") != 0 {
		t.Errorf("KNOWS chain wrong")
	}
}

func TestSelfLoopShape(t *testing.T) {
	g := SelfLoop()
	s := g.Stats()
	if s.NodeCount != 1 || s.RelationshipCount != 1 {
		t.Fatalf("self-loop graph shape wrong: %+v", s)
	}
	n := g.Nodes()[0]
	if n.Degree(graph.Outgoing) != 1 || n.Degree(graph.Incoming) != 1 {
		t.Errorf("self loop adjacency wrong")
	}
}

func TestGeneratorsAreDeterministicAndSized(t *testing.T) {
	a := CitationNetwork(CitationConfig{Researchers: 20, PublicationsPerAuthor: 2, StudentsPerResearcher: 1, CitationsPerPaper: 2, Seed: 5})
	b := CitationNetwork(CitationConfig{Researchers: 20, PublicationsPerAuthor: 2, StudentsPerResearcher: 1, CitationsPerPaper: 2, Seed: 5})
	sa, sb := a.Stats(), b.Stats()
	if sa.NodeCount != sb.NodeCount || sa.RelationshipCount != sb.RelationshipCount {
		t.Errorf("same seed should give the same graph: %+v vs %+v", sa, sb)
	}
	if sa.LabelCardinality("Researcher") != 20 || sa.LabelCardinality("Publication") != 40 || sa.LabelCardinality("Student") != 20 {
		t.Errorf("citation network sizes wrong: %+v", sa.NodesByLabel)
	}

	f := FraudNetwork(FraudConfig{AccountHolders: 50, SharingFraction: 0.2, Seed: 1})
	sf := f.Stats()
	if sf.LabelCardinality("AccountHolder") != 50 {
		t.Errorf("fraud network holders wrong: %+v", sf.NodesByLabel)
	}
	if sf.TypeCardinality("HAS") != 150 {
		t.Errorf("every holder HAS three identifiers: %+v", sf.RelationshipsByType)
	}
	// Sharing means strictly fewer identifier nodes than 3 per holder.
	idNodes := sf.NodeCount - 50
	if idNodes >= 150 {
		t.Errorf("some identifiers should be shared, got %d identifier nodes", idNodes)
	}

	d := DataCenter(DataCenterConfig{Services: 30, MaxDeps: 2, ExtraTier: 5, Seed: 9})
	sd := d.Stats()
	if sd.LabelCardinality("Service") != 30 || sd.LabelCardinality("Server") != 5 {
		t.Errorf("data center sizes wrong: %+v", sd.NodesByLabel)
	}
	if sd.TypeCardinality("RUNS_ON") != 5 {
		t.Errorf("extra tier relationships wrong: %+v", sd.RelationshipsByType)
	}

	soc := SocialNetwork(SocialConfig{People: 40, FriendsEach: 3, Seed: 2})
	ss := soc.Stats()
	if ss.LabelCardinality("Person") != 40 {
		t.Errorf("social network size wrong: %+v", ss.NodesByLabel)
	}
	if ss.TypeCardinality("KNOWS") == 0 || ss.TypeCardinality("KNOWS") > 40*3 {
		t.Errorf("social network relationship count out of range: %+v", ss.RelationshipsByType)
	}
}

func TestGeneratorDefaults(t *testing.T) {
	// Zero-valued configs fall back to sensible defaults rather than empty
	// graphs.
	if CitationNetwork(CitationConfig{}).Stats().NodeCount == 0 {
		t.Errorf("default citation network should not be empty")
	}
	if FraudNetwork(FraudConfig{}).Stats().NodeCount == 0 {
		t.Errorf("default fraud network should not be empty")
	}
	if DataCenter(DataCenterConfig{}).Stats().NodeCount == 0 {
		t.Errorf("default data center should not be empty")
	}
	if SocialNetwork(SocialConfig{}).Stats().NodeCount == 0 {
		t.Errorf("default social network should not be empty")
	}
}

// The DataCenter generator must produce an acyclic dependency graph (services
// depend only on earlier services); verify by checking for the absence of
// directed cycles with a simple DFS.
func TestDataCenterIsAcyclic(t *testing.T) {
	g := DataCenter(DataCenterConfig{Services: 60, MaxDeps: 3, Seed: 4})
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[int64]int{}
	var visit func(n *graph.Node) bool
	visit = func(n *graph.Node) bool {
		state[n.ID()] = inStack
		for _, r := range n.Relationships(graph.Outgoing, "DEPENDS_ON") {
			next := r.EndNode()
			switch state[next.ID()] {
			case inStack:
				return false
			case unvisited:
				if !visit(next) {
					return false
				}
			}
		}
		state[n.ID()] = done
		return true
	}
	for _, n := range g.NodesByLabel("Service") {
		if state[n.ID()] == unvisited {
			if !visit(n) {
				t.Fatalf("dependency graph contains a cycle")
			}
		}
	}
}
