// Package datasets builds the example graphs used in the paper and synthetic
// workloads for the benchmark harness.
//
// Citations builds the data graph of Figure 1 (researchers, students and
// publications with AUTHORS / SUPERVISES / CITES relationships); Teachers
// builds the graph of Figure 4 (teachers and students connected by KNOWS).
// The generator functions produce parameterised synthetic graphs for the
// three industry scenarios discussed in Section 3: citation networks,
// fraud-detection graphs where account holders share personal information,
// and data-center dependency graphs.
package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/value"
)

func props(kv ...any) map[string]value.Value {
	out := make(map[string]value.Value, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		v, err := value.FromGo(kv[i+1])
		if err != nil {
			panic(err)
		}
		out[kv[i].(string)] = v
	}
	return out
}

func mustRel(g *graph.Graph, from, to *graph.Node, typ string, p map[string]value.Value) *graph.Relationship {
	r, err := g.CreateRelationship(from, to, typ, p)
	if err != nil {
		panic(err)
	}
	return r
}

// Citations builds the Figure 1 data graph. The returned map gives access to
// the nodes by their paper identifiers ("n1" ... "n10").
func Citations() (*graph.Graph, map[string]*graph.Node) {
	g := graph.NewNamed("citations")
	n := map[string]*graph.Node{}
	n["n1"] = g.CreateNode([]string{"Researcher"}, props("name", "Nils"))
	n["n2"] = g.CreateNode([]string{"Publication"}, props("acmid", 220))
	n["n3"] = g.CreateNode([]string{"Publication"}, props("acmid", 190))
	n["n4"] = g.CreateNode([]string{"Publication"}, props("acmid", 235))
	n["n5"] = g.CreateNode([]string{"Publication"}, props("acmid", 240))
	n["n6"] = g.CreateNode([]string{"Researcher"}, props("name", "Elin"))
	n["n7"] = g.CreateNode([]string{"Student"}, props("name", "Sten"))
	n["n8"] = g.CreateNode([]string{"Student"}, props("name", "Linda"))
	n["n9"] = g.CreateNode([]string{"Publication"}, props("acmid", 269))
	n["n10"] = g.CreateNode([]string{"Researcher"}, props("name", "Thor"))

	// Relationships r1...r11, with sources and targets as in Example 4.1.
	mustRel(g, n["n1"], n["n2"], "AUTHORS", nil)     // r1
	mustRel(g, n["n2"], n["n3"], "CITES", nil)       // r2
	mustRel(g, n["n4"], n["n2"], "CITES", nil)       // r3
	mustRel(g, n["n5"], n["n2"], "CITES", nil)       // r4
	mustRel(g, n["n6"], n["n5"], "AUTHORS", nil)     // r5
	mustRel(g, n["n6"], n["n7"], "SUPERVISES", nil)  // r6
	mustRel(g, n["n6"], n["n8"], "SUPERVISES", nil)  // r7
	mustRel(g, n["n10"], n["n7"], "SUPERVISES", nil) // r8
	mustRel(g, n["n9"], n["n4"], "CITES", nil)       // r9
	mustRel(g, n["n6"], n["n9"], "AUTHORS", nil)     // r10
	mustRel(g, n["n9"], n["n5"], "CITES", nil)       // r11
	return g, n
}

// Teachers builds the Figure 4 property graph: n1:Teacher, n2:Student,
// n3:Teacher, n4:Teacher with KNOWS relationships n1->n2->n3->n4. Each node
// carries a name property equal to its paper identifier for easy selection
// in tests.
func Teachers() (*graph.Graph, map[string]*graph.Node) {
	g := graph.NewNamed("teachers")
	n := map[string]*graph.Node{}
	n["n1"] = g.CreateNode([]string{"Teacher"}, props("name", "n1"))
	n["n2"] = g.CreateNode([]string{"Student"}, props("name", "n2"))
	n["n3"] = g.CreateNode([]string{"Teacher"}, props("name", "n3"))
	n["n4"] = g.CreateNode([]string{"Teacher"}, props("name", "n4"))
	mustRel(g, n["n1"], n["n2"], "KNOWS", props("since", 1985)) // r1
	mustRel(g, n["n2"], n["n3"], "KNOWS", props("since", 1992)) // r2
	mustRel(g, n["n3"], n["n4"], "KNOWS", props("since", 2001)) // r3
	return g, n
}

// SelfLoop builds the one-node, one-relationship graph of the complexity
// discussion in Section 4.2.
func SelfLoop() *graph.Graph {
	g := graph.NewNamed("selfloop")
	n := g.CreateNode([]string{"Node"}, nil)
	mustRel(g, n, n, "LOOP", nil)
	return g
}

// CitationConfig parameterises the synthetic citation network generator.
type CitationConfig struct {
	Researchers           int
	PublicationsPerAuthor int
	StudentsPerResearcher int
	CitationsPerPaper     int
	Seed                  int64
}

// CitationNetwork generates a synthetic citation graph shaped like Figure 1:
// researchers author publications and supervise students, and publications
// cite older publications.
func CitationNetwork(cfg CitationConfig) *graph.Graph {
	if cfg.Researchers <= 0 {
		cfg.Researchers = 100
	}
	if cfg.PublicationsPerAuthor <= 0 {
		cfg.PublicationsPerAuthor = 3
	}
	if cfg.CitationsPerPaper < 0 {
		cfg.CitationsPerPaper = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewNamed("citation-network")
	var pubs []*graph.Node
	for i := 0; i < cfg.Researchers; i++ {
		r := g.CreateNode([]string{"Researcher"}, props("name", fmt.Sprintf("researcher-%d", i)))
		for s := 0; s < cfg.StudentsPerResearcher; s++ {
			st := g.CreateNode([]string{"Student"}, props("name", fmt.Sprintf("student-%d-%d", i, s)))
			mustRel(g, r, st, "SUPERVISES", nil)
		}
		for p := 0; p < cfg.PublicationsPerAuthor; p++ {
			pub := g.CreateNode([]string{"Publication"}, props("acmid", int64(len(pubs)+1)))
			mustRel(g, r, pub, "AUTHORS", nil)
			// Cite earlier publications (keeps the citation graph acyclic).
			for c := 0; c < cfg.CitationsPerPaper && len(pubs) > 0; c++ {
				target := pubs[rng.Intn(len(pubs))]
				mustRel(g, pub, target, "CITES", nil)
			}
			pubs = append(pubs, pub)
		}
	}
	return g
}

// FraudConfig parameterises the fraud-detection graph generator.
type FraudConfig struct {
	AccountHolders int
	// SharingFraction is the fraction of account holders that share an
	// identifier with another account holder (the "fraud rings").
	SharingFraction float64
	Seed            int64
}

// FraudNetwork generates the Section 3 fraud-detection scenario: account
// holders HAS-connected to SSN, PhoneNumber and Address nodes, with a
// fraction of holders sharing identifiers.
func FraudNetwork(cfg FraudConfig) *graph.Graph {
	if cfg.AccountHolders <= 0 {
		cfg.AccountHolders = 100
	}
	if cfg.SharingFraction <= 0 {
		cfg.SharingFraction = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewNamed("fraud")
	kinds := []string{"SSN", "PhoneNumber", "Address"}
	var shared []*graph.Node
	for i := 0; i < cfg.AccountHolders; i++ {
		holder := g.CreateNode([]string{"AccountHolder"}, props("uniqueId", fmt.Sprintf("account-%d", i)))
		for _, kind := range kinds {
			var info *graph.Node
			if len(shared) > 0 && rng.Float64() < cfg.SharingFraction {
				info = shared[rng.Intn(len(shared))]
			} else {
				info = g.CreateNode([]string{kind}, props("value", fmt.Sprintf("%s-%d", kind, i)))
				shared = append(shared, info)
			}
			mustRel(g, holder, info, "HAS", nil)
		}
	}
	return g
}

// DataCenterConfig parameterises the data-center dependency graph generator.
type DataCenterConfig struct {
	Services  int
	MaxDeps   int
	ExtraTier int // additional infrastructure nodes (servers, switches)
	Seed      int64
}

// DataCenter generates the Section 3 network-management scenario: a DAG of
// Service nodes connected by DEPENDS_ON relationships, plus supporting
// infrastructure nodes.
func DataCenter(cfg DataCenterConfig) *graph.Graph {
	if cfg.Services <= 0 {
		cfg.Services = 100
	}
	if cfg.MaxDeps <= 0 {
		cfg.MaxDeps = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewNamed("datacenter")
	services := make([]*graph.Node, cfg.Services)
	for i := range services {
		services[i] = g.CreateNode([]string{"Service"}, props("name", fmt.Sprintf("svc-%d", i)))
		// Depend on earlier services only, so the dependency graph is acyclic
		// and lower-numbered services accumulate the most dependents.
		deps := rng.Intn(cfg.MaxDeps + 1)
		for d := 0; d < deps && i > 0; d++ {
			target := services[rng.Intn(i)]
			mustRel(g, services[i], target, "DEPENDS_ON", nil)
		}
	}
	for i := 0; i < cfg.ExtraTier; i++ {
		srv := g.CreateNode([]string{"Server"}, props("name", fmt.Sprintf("server-%d", i)))
		mustRel(g, services[rng.Intn(len(services))], srv, "RUNS_ON", nil)
	}
	return g
}

// SocialConfig parameterises the social network generator used by the
// morphism and variable-length benchmarks.
type SocialConfig struct {
	People      int
	FriendsEach int
	Seed        int64
}

// SocialNetwork generates a Person/KNOWS graph with roughly uniform degree.
func SocialNetwork(cfg SocialConfig) *graph.Graph {
	if cfg.People <= 0 {
		cfg.People = 100
	}
	if cfg.FriendsEach <= 0 {
		cfg.FriendsEach = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewNamed("social")
	people := make([]*graph.Node, cfg.People)
	for i := range people {
		people[i] = g.CreateNode([]string{"Person"}, props("name", fmt.Sprintf("person-%d", i), "age", int64(18+rng.Intn(60))))
	}
	for i, p := range people {
		for f := 0; f < cfg.FriendsEach; f++ {
			other := people[rng.Intn(len(people))]
			if other == p {
				continue
			}
			mustRel(g, p, other, "KNOWS", props("since", int64(1990+rng.Intn(30))))
		}
		_ = i
	}
	return g
}
