package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func parse(t *testing.T, src string) *ast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func firstClause(t *testing.T, src string) ast.Clause {
	t.Helper()
	q := parse(t, src)
	return q.Parts[0].Clauses[0]
}

func TestParseSection3Query(t *testing.T) {
	// The worked example of Section 3 of the paper.
	src := `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		MATCH (r)-[:AUTHORS]->(p1:Publication)
		OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
		RETURN r.name, studentsSupervised,
		       count(DISTINCT p2) AS citedCount`
	q := parse(t, src)
	if len(q.Parts) != 1 {
		t.Fatalf("expected a single query part")
	}
	clauses := q.Parts[0].Clauses
	if len(clauses) != 6 {
		t.Fatalf("expected 6 clauses, got %d", len(clauses))
	}
	m1, ok := clauses[0].(*ast.Match)
	if !ok || m1.Optional {
		t.Fatalf("clause 1 should be a plain MATCH: %T", clauses[0])
	}
	if m1.Pattern.Parts[0].Nodes[0].Labels[0] != "Researcher" {
		t.Errorf("first MATCH label wrong")
	}
	m2, ok := clauses[1].(*ast.Match)
	if !ok || !m2.Optional {
		t.Fatalf("clause 2 should be OPTIONAL MATCH")
	}
	if m2.Pattern.Parts[0].Rels[0].Types[0] != "SUPERVISES" || m2.Pattern.Parts[0].Rels[0].Direction != ast.DirOutgoing {
		t.Errorf("OPTIONAL MATCH relationship wrong: %+v", m2.Pattern.Parts[0].Rels[0])
	}
	w, ok := clauses[2].(*ast.With)
	if !ok {
		t.Fatalf("clause 3 should be WITH")
	}
	if len(w.Items) != 2 || w.Items[1].Alias != "studentsSupervised" {
		t.Errorf("WITH items wrong: %+v", w.Items)
	}
	if _, ok := w.Items[1].Expr.(*ast.FunctionCall); !ok {
		t.Errorf("WITH aggregation should be a function call")
	}
	m4, ok := clauses[4].(*ast.Match)
	if !ok || !m4.Optional {
		t.Fatalf("clause 5 should be OPTIONAL MATCH")
	}
	rel := m4.Pattern.Parts[0].Rels[0]
	if !rel.VarLength || rel.MinHops != -1 || rel.MaxHops != -1 {
		t.Errorf("CITES* should be an unbounded variable-length pattern: %+v", rel)
	}
	if rel.Direction != ast.DirIncoming {
		t.Errorf("CITES* should be an incoming pattern")
	}
	r, ok := clauses[5].(*ast.Return)
	if !ok {
		t.Fatalf("last clause should be RETURN")
	}
	if len(r.Items) != 3 || r.Items[2].Alias != "citedCount" {
		t.Errorf("RETURN items wrong: %+v", r.Items)
	}
	fc, ok := r.Items[2].Expr.(*ast.FunctionCall)
	if !ok || !fc.Distinct || fc.Name != "count" {
		t.Errorf("count(DISTINCT p2) parsed wrong: %+v", r.Items[2].Expr)
	}
}

func TestParseIndustryQueries(t *testing.T) {
	// Data-center dependency query from Section 3.
	q1 := parse(t, `
		MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
		RETURN svc, count(DISTINCT dep) AS dependents
		ORDER BY dependents DESC
		LIMIT 1`)
	ret := q1.Parts[0].Clauses[1].(*ast.Return)
	if len(ret.OrderBy) != 1 || !ret.OrderBy[0].Descending {
		t.Errorf("ORDER BY DESC wrong: %+v", ret.OrderBy)
	}
	if ret.Limit == nil {
		t.Errorf("LIMIT missing")
	}

	// Fraud-detection query from Section 3 (with the WHERE after WITH).
	q2 := parse(t, `
		MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
		WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
		WITH pInfo,
		     collect(accHolder.uniqueId) AS accountHolders,
		     count(*) AS fraudRingCount
		WHERE fraudRingCount > 1
		RETURN accountHolders,
		       labels(pInfo) AS personalInformation,
		       fraudRingCount`)
	m := q2.Parts[0].Clauses[0].(*ast.Match)
	if m.Where == nil {
		t.Fatalf("MATCH ... WHERE missing")
	}
	or, ok := m.Where.(*ast.BinaryOp)
	if !ok || or.Op != ast.OpOr {
		t.Fatalf("WHERE should be an OR: %T", m.Where)
	}
	w := q2.Parts[0].Clauses[1].(*ast.With)
	if w.Where == nil {
		t.Errorf("WITH ... WHERE missing")
	}
	if _, ok := w.Items[2].Expr.(*ast.CountStar); !ok {
		t.Errorf("count(*) should parse to CountStar, got %T", w.Items[2].Expr)
	}
}

func TestParsePatternsFigure3(t *testing.T) {
	// Node pattern with labels and properties.
	m := firstClause(t, "MATCH (x:Person:Male {name: 'Nils', age: 44}) RETURN x").(*ast.Match)
	np := m.Pattern.Parts[0].Nodes[0]
	if np.Variable != "x" || len(np.Labels) != 2 || np.Labels[1] != "Male" {
		t.Errorf("node pattern wrong: %+v", np)
	}
	if np.Properties == nil || len(np.Properties.Keys) != 2 {
		t.Errorf("node properties wrong: %+v", np.Properties)
	}

	// Relationship pattern ranges.
	cases := []struct {
		src           string
		varLen        bool
		minH, maxH    int
		dir           ast.Direction
		types         []string
		expectedTypes int
	}{
		{"MATCH ()-[:KNOWS]-() RETURN 1", false, -1, -1, ast.DirBoth, []string{"KNOWS"}, 1},
		{"MATCH ()-[:KNOWS*]->() RETURN 1", true, -1, -1, ast.DirOutgoing, []string{"KNOWS"}, 1},
		{"MATCH ()<-[:KNOWS*2]-() RETURN 1", true, 2, 2, ast.DirIncoming, []string{"KNOWS"}, 1},
		{"MATCH ()-[:KNOWS*1..2]-() RETURN 1", true, 1, 2, ast.DirBoth, []string{"KNOWS"}, 1},
		{"MATCH ()-[:KNOWS*..3]->() RETURN 1", true, -1, 3, ast.DirOutgoing, []string{"KNOWS"}, 1},
		{"MATCH ()-[:KNOWS*2..]->() RETURN 1", true, 2, -1, ast.DirOutgoing, []string{"KNOWS"}, 1},
		{"MATCH ()-[:LIKES|KNOWS]->() RETURN 1", false, -1, -1, ast.DirOutgoing, []string{"LIKES", "KNOWS"}, 2},
		{"MATCH ()-[r]->() RETURN r", false, -1, -1, ast.DirOutgoing, nil, 0},
		{"MATCH ()-->() RETURN 1", false, -1, -1, ast.DirOutgoing, nil, 0},
		{"MATCH ()<--() RETURN 1", false, -1, -1, ast.DirIncoming, nil, 0},
		{"MATCH ()--() RETURN 1", false, -1, -1, ast.DirBoth, nil, 0},
	}
	for _, c := range cases {
		m := firstClause(t, c.src).(*ast.Match)
		rp := m.Pattern.Parts[0].Rels[0]
		if rp.VarLength != c.varLen || rp.MinHops != c.minH || rp.MaxHops != c.maxH {
			t.Errorf("%s: range wrong: %+v", c.src, rp)
		}
		if rp.Direction != c.dir {
			t.Errorf("%s: direction = %v, want %v", c.src, rp.Direction, c.dir)
		}
		if len(rp.Types) != c.expectedTypes {
			t.Errorf("%s: types = %v", c.src, rp.Types)
		}
		for i, typ := range c.types {
			if rp.Types[i] != typ {
				t.Errorf("%s: type %d = %s, want %s", c.src, i, rp.Types[i], typ)
			}
		}
	}

	// Relationship with inline properties (paper example `-[:KNOWS*1 {since: 1985}]-`).
	m2 := firstClause(t, "MATCH ()-[:KNOWS*1 {since: 1985}]-() RETURN 1").(*ast.Match)
	rp := m2.Pattern.Parts[0].Rels[0]
	if !rp.VarLength || rp.MinHops != 1 || rp.MaxHops != 1 {
		t.Errorf("*1 should be the range [1,1]: %+v", rp)
	}
	if rp.Properties == nil || rp.Properties.Keys[0] != "since" {
		t.Errorf("relationship properties wrong: %+v", rp.Properties)
	}

	// Named path patterns.
	m3 := firstClause(t, "MATCH p = (a)-[:KNOWS]->(b) RETURN p").(*ast.Match)
	if m3.Pattern.Parts[0].Variable != "p" {
		t.Errorf("named path variable wrong: %+v", m3.Pattern.Parts[0])
	}

	// Pattern tuples.
	m4 := firstClause(t, "MATCH (a)-[:X]->(b), (b)-[:Y]->(c), (loner) RETURN a").(*ast.Match)
	if len(m4.Pattern.Parts) != 3 {
		t.Errorf("pattern tuple should have 3 parts, got %d", len(m4.Pattern.Parts))
	}
	vars := m4.Pattern.Variables()
	if strings.Join(vars, ",") != "a,b,c,loner" {
		t.Errorf("pattern variables = %v", vars)
	}
}

func TestParseLongPatternChain(t *testing.T) {
	m := firstClause(t, "MATCH (a)-[:R1]->(b)<-[:R2]-(c)-[:R3]-(d) RETURN a").(*ast.Match)
	part := m.Pattern.Parts[0]
	if len(part.Nodes) != 4 || len(part.Rels) != 3 {
		t.Fatalf("chain sizes wrong: %d nodes, %d rels", len(part.Nodes), len(part.Rels))
	}
	if part.Rels[0].Direction != ast.DirOutgoing || part.Rels[1].Direction != ast.DirIncoming || part.Rels[2].Direction != ast.DirBoth {
		t.Errorf("chain directions wrong")
	}
}

func TestParseUnions(t *testing.T) {
	q := parse(t, "MATCH (a:A) RETURN a.name AS name UNION MATCH (b:B) RETURN b.name AS name UNION ALL MATCH (c:C) RETURN c.name AS name")
	if len(q.Parts) != 3 || len(q.Unions) != 2 {
		t.Fatalf("union structure wrong: %d parts, %d unions", len(q.Parts), len(q.Unions))
	}
	if q.Unions[0] != ast.UnionDistinct || q.Unions[1] != ast.UnionAll {
		t.Errorf("union kinds wrong: %v", q.Unions)
	}
}

func TestParseUnwindSkipLimitDistinct(t *testing.T) {
	q := parse(t, "UNWIND [1,2,3] AS x WITH DISTINCT x ORDER BY x SKIP 1 LIMIT 10 RETURN DISTINCT x")
	u := q.Parts[0].Clauses[0].(*ast.Unwind)
	if u.Alias != "x" {
		t.Errorf("UNWIND alias = %q", u.Alias)
	}
	w := q.Parts[0].Clauses[1].(*ast.With)
	if !w.Distinct || w.Skip == nil || w.Limit == nil || len(w.OrderBy) != 1 {
		t.Errorf("WITH modifiers wrong: %+v", w)
	}
	r := q.Parts[0].Clauses[2].(*ast.Return)
	if !r.Distinct {
		t.Errorf("RETURN DISTINCT not parsed")
	}
}

func TestParseReturnStar(t *testing.T) {
	r := firstClause(t, "MATCH (n) RETURN *").(*ast.Match)
	_ = r
	q := parse(t, "MATCH (n) RETURN *, n.name AS name")
	ret := q.Parts[0].Clauses[1].(*ast.Return)
	if !ret.Star || len(ret.Items) != 1 {
		t.Errorf("RETURN *, expr wrong: %+v", ret)
	}
}

func TestParseUpdateClauses(t *testing.T) {
	c := firstClause(t, "CREATE (a:Person {name: 'X'})-[:KNOWS {since: 2000}]->(b:Person)").(*ast.Create)
	if len(c.Pattern.Parts[0].Nodes) != 2 {
		t.Errorf("CREATE pattern wrong")
	}

	q := parse(t, "MERGE (p:Person {name: 'X'}) ON CREATE SET p.created = true ON MATCH SET p.seen = p.seen + 1 RETURN p")
	mg := q.Parts[0].Clauses[0].(*ast.Merge)
	if len(mg.OnCreate) != 1 || len(mg.OnMatch) != 1 {
		t.Errorf("MERGE ON CREATE/ON MATCH wrong: %+v", mg)
	}

	q2 := parse(t, "MATCH (n) SET n.age = 30, n:Adult, n += {a: 1}, n = {b: 2}")
	st := q2.Parts[0].Clauses[1].(*ast.Set)
	if len(st.Items) != 4 {
		t.Fatalf("SET items = %d", len(st.Items))
	}
	if st.Items[0].Kind != ast.SetProperty || st.Items[1].Kind != ast.SetLabels ||
		st.Items[2].Kind != ast.SetMergeProperties || st.Items[3].Kind != ast.SetAllProperties {
		t.Errorf("SET item kinds wrong: %+v", st.Items)
	}

	q3 := parse(t, "MATCH (n) DETACH DELETE n")
	d := q3.Parts[0].Clauses[1].(*ast.Delete)
	if !d.Detach || len(d.Exprs) != 1 {
		t.Errorf("DETACH DELETE wrong: %+v", d)
	}
	q4 := parse(t, "MATCH (n)-[r]->() DELETE r, n")
	d2 := q4.Parts[0].Clauses[1].(*ast.Delete)
	if d2.Detach || len(d2.Exprs) != 2 {
		t.Errorf("DELETE wrong: %+v", d2)
	}

	q5 := parse(t, "MATCH (n) REMOVE n.age, n:Temp")
	rm := q5.Parts[0].Clauses[1].(*ast.Remove)
	if len(rm.Items) != 2 || rm.Items[0].Kind != ast.RemoveProperty || rm.Items[1].Kind != ast.RemoveLabels {
		t.Errorf("REMOVE wrong: %+v", rm.Items)
	}
}

func TestIsReadOnly(t *testing.T) {
	if !parse(t, "MATCH (n) RETURN n").IsReadOnly() {
		t.Errorf("MATCH ... RETURN should be read-only")
	}
	if parse(t, "CREATE (n)").IsReadOnly() {
		t.Errorf("CREATE should not be read-only")
	}
	if parse(t, "MATCH (n) SET n.x = 1").IsReadOnly() {
		t.Errorf("SET should not be read-only")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MATCH",
		"MATCH (a RETURN a",
		"MATCH (a) RETURN",
		"MATCH (a)-[]>(b) RETURN a",
		"MATCH (a) WHERE RETURN a",
		"RETURN 1 +",
		"RETURN count(",
		"MATCH (a) RETURN a extra_token_without_meaning (",
		"UNWIND [1,2] RETURN 1",
		"MATCH (a) SET a",
		"MERGE (a) ON DELETE SET a.x = 1",
		"RETURN CASE END",
		"RETURN [x IN [1,2] | ]",
		"MATCH (a) RETURN a; MATCH (b) RETURN b", // a second statement is not supported
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("MATCH (a)\nRETURN a +")
	if err == nil {
		t.Fatalf("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *Error, got %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error message should mention the line: %v", err)
	}
}

func TestClauseStringRoundTrip(t *testing.T) {
	// String() forms should re-parse to the same structure (smoke test over a
	// few representative queries).
	srcs := []string{
		"MATCH (r:Researcher) RETURN r.name AS name",
		"OPTIONAL MATCH (a)-[:X*1..2]->(b) WHERE a.v > 1 RETURN a, b ORDER BY a.v DESC SKIP 1 LIMIT 2",
		"UNWIND [1, 2] AS x RETURN x",
		"MATCH (a) WITH DISTINCT a WHERE a.x = 1 RETURN count(*)",
		"CREATE (a:Person {name: 'X'})-[:KNOWS]->(b)",
		"MATCH (n) DETACH DELETE n",
		"MATCH (n) SET n.a = 1, n:L REMOVE n.b, n:M",
		"MATCH (a:A) RETURN a UNION ALL MATCH (a:B) RETURN a",
	}
	for _, src := range srcs {
		q1 := parse(t, src)
		q2 := parse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip mismatch:\n  src: %s\n  1st: %s\n  2nd: %s", src, q1.String(), q2.String())
		}
	}
}
