package parser

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/value"
)

// Expression parsing, by descending precedence:
// OR < XOR < AND < NOT < comparisons and string/list/null predicates <
// addition < multiplication < exponentiation < unary sign < postfix
// (property access, indexing, slicing, label predicate) < atoms.

func (p *Parser) parseExpression() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	lhs, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("OR") {
		p.next()
		rhs, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryOp{Op: ast.OpOr, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseXor() (ast.Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("XOR") {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryOp{Op: ast.OpXor, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	lhs, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("AND") {
		p.next()
		rhs, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryOp{Op: ast.OpAnd, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.peek().Is("NOT") {
		p.next()
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryOp{Op: ast.OpNot, Operand: operand}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	lhs, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op ast.BinaryOperator
		switch {
		case t.Type == lexer.Eq:
			op = ast.OpEq
		case t.Type == lexer.Neq:
			op = ast.OpNeq
		case t.Type == lexer.Lt:
			op = ast.OpLt
		case t.Type == lexer.Le:
			op = ast.OpLe
		case t.Type == lexer.Gt:
			op = ast.OpGt
		case t.Type == lexer.Ge:
			op = ast.OpGe
		case t.Type == lexer.RegexEq:
			op = ast.OpRegexMatch
		case t.Is("IN"):
			op = ast.OpIn
		case t.Is("STARTS"):
			p.next()
			if err := p.expectKeyword("WITH"); err != nil {
				return nil, err
			}
			rhs, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			lhs = &ast.BinaryOp{Op: ast.OpStartsWith, LHS: lhs, RHS: rhs}
			continue
		case t.Is("ENDS"):
			p.next()
			if err := p.expectKeyword("WITH"); err != nil {
				return nil, err
			}
			rhs, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			lhs = &ast.BinaryOp{Op: ast.OpEndsWith, LHS: lhs, RHS: rhs}
			continue
		case t.Is("CONTAINS"):
			op = ast.OpContains
		case t.Is("IS"):
			p.next()
			negated := false
			if p.acceptKeyword("NOT") {
				negated = true
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			lhs = &ast.IsNull{Operand: lhs, Negated: negated}
			continue
		default:
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryOp{Op: op, LHS: lhs, RHS: rhs}
	}
}

func (p *Parser) parseAddSub() (ast.Expr, error) {
	lhs, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Type {
		case lexer.Plus:
			p.next()
			rhs, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			lhs = &ast.BinaryOp{Op: ast.OpAdd, LHS: lhs, RHS: rhs}
		case lexer.Minus:
			p.next()
			rhs, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			lhs = &ast.BinaryOp{Op: ast.OpSub, LHS: lhs, RHS: rhs}
		default:
			return lhs, nil
		}
	}
}

func (p *Parser) parseMulDiv() (ast.Expr, error) {
	lhs, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOperator
		switch p.peek().Type {
		case lexer.Star:
			op = ast.OpMul
		case lexer.Slash:
			op = ast.OpDiv
		case lexer.Percent:
			op = ast.OpMod
		default:
			return lhs, nil
		}
		p.next()
		rhs, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryOp{Op: op, LHS: lhs, RHS: rhs}
	}
}

func (p *Parser) parsePower() (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.peek().Type == lexer.Caret {
		p.next()
		// Right-associative.
		rhs, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		return &ast.BinaryOp{Op: ast.OpPow, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	switch p.peek().Type {
	case lexer.Minus:
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated numeric literal into the literal itself.
		if lit, ok := operand.(*ast.Literal); ok {
			if neg, err := value.Neg(lit.Value); err == nil {
				return &ast.Literal{Value: neg}, nil
			}
		}
		return &ast.UnaryOp{Op: ast.OpNeg, Operand: operand}, nil
	case lexer.Plus:
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryOp{Op: ast.OpPos, Operand: operand}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Type {
		case lexer.Dot:
			p.next()
			key, err := p.symbolicName("property key")
			if err != nil {
				return nil, err
			}
			e = &ast.PropertyAccess{Subject: e, Key: key}
		case lexer.LBracket:
			p.next()
			var from ast.Expr
			if p.peek().Type != lexer.DotDot {
				from, err = p.parseExpression()
				if err != nil {
					return nil, err
				}
			}
			if p.peek().Type == lexer.DotDot {
				p.next()
				var to ast.Expr
				if p.peek().Type != lexer.RBracket {
					to, err = p.parseExpression()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(lexer.RBracket, "']' closing a slice"); err != nil {
					return nil, err
				}
				e = &ast.Slice{Subject: e, From: from, To: to}
			} else {
				if _, err := p.expect(lexer.RBracket, "']' closing an index"); err != nil {
					return nil, err
				}
				e = &ast.Index{Subject: e, Idx: from}
			}
		case lexer.Colon:
			// Label predicate: expr:Label1:Label2 (only meaningful on node
			// expressions; e.g. `pInfo:SSN OR pInfo:PhoneNumber`).
			var labels []string
			for p.peek().Type == lexer.Colon {
				p.next()
				l, err := p.symbolicName("label")
				if err != nil {
					return nil, err
				}
				labels = append(labels, l)
			}
			e = &ast.HasLabels{Subject: e, Labels: labels}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parseAtom() (ast.Expr, error) {
	t := p.peek()
	switch {
	case t.Type == lexer.Integer:
		p.next()
		return &ast.Literal{Value: value.NewInt(t.IntVal)}, nil
	case t.Type == lexer.Float:
		p.next()
		return &ast.Literal{Value: value.NewFloat(t.FltVal)}, nil
	case t.Type == lexer.StringLit:
		p.next()
		return &ast.Literal{Value: value.NewString(t.StrVal)}, nil
	case t.Is("TRUE"):
		p.next()
		return &ast.Literal{Value: value.NewBool(true)}, nil
	case t.Is("FALSE"):
		p.next()
		return &ast.Literal{Value: value.NewBool(false)}, nil
	case t.Is("NULL"):
		p.next()
		return &ast.Literal{Value: value.Null()}, nil
	case t.Type == lexer.Parameter:
		p.next()
		return &ast.Parameter{Name: t.StrVal}, nil
	case t.Is("CASE"):
		return p.parseCase()
	case t.Is("EXISTS"):
		return p.parseExists()
	case t.Is("COUNT"):
		// COUNT is lexed as a keyword only if listed; it is not, so this arm
		// is unreachable — count() arrives as an identifier below.
		return p.parseFunctionOrVariable()
	case t.Type == lexer.LBrace:
		m, err := p.parseMapLiteral()
		if err != nil {
			return nil, err
		}
		return m, nil
	case t.Type == lexer.LBracket:
		return p.parseListLiteralOrComprehension()
	case t.Type == lexer.LParen:
		return p.parseParenthesizedOrPattern()
	case t.Type == lexer.Ident:
		return p.parseFunctionOrVariable()
	}
	return nil, p.errorf("expected an expression, found %s", t)
}

func (p *Parser) parseFunctionOrVariable() (ast.Expr, error) {
	name := p.next().StrVal
	if p.peek().Type != lexer.LParen {
		return &ast.Variable{Name: name}, nil
	}
	p.next() // consume '('
	call := &ast.FunctionCall{Name: strings.ToLower(name)}
	if call.Name == "reduce" {
		return p.parseReduceTail()
	}
	if p.peek().Type == lexer.Star && call.Name == "count" {
		p.next()
		if _, err := p.expect(lexer.RParen, "')' closing count(*)"); err != nil {
			return nil, err
		}
		return &ast.CountStar{}, nil
	}
	if p.acceptKeyword("DISTINCT") {
		call.Distinct = true
	}
	if p.peek().Type != lexer.RParen {
		for {
			arg, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.peek().Type != lexer.Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(lexer.RParen, "')' closing a function call"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	if !p.peek().Is("WHEN") {
		test, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		c.Test = test
	}
	for p.peek().Is("WHEN") {
		p.next()
		when, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		c.Alternatives = append(c.Alternatives, ast.CaseAlternative{When: when, Then: then})
	}
	if len(c.Alternatives) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN alternative")
	}
	if p.acceptKeyword("ELSE") {
		els, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		c.Else = els
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseExists() (ast.Expr, error) {
	if err := p.expectKeyword("EXISTS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LParen, "'(' after EXISTS"); err != nil {
		return nil, err
	}
	// EXISTS((a)-[:T]->(b)) is a pattern predicate; EXISTS(n.prop) is the
	// property-existence function.
	if p.peek().Type == lexer.LParen {
		save := p.pos
		part, err := p.parsePatternPart()
		if err == nil && len(part.Rels) > 0 && p.peek().Type == lexer.RParen {
			p.next()
			return &ast.PatternPredicate{Pattern: part}, nil
		}
		p.pos = save
	}
	arg, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen, "')' closing EXISTS"); err != nil {
		return nil, err
	}
	return &ast.FunctionCall{Name: "exists", Args: []ast.Expr{arg}}, nil
}

// parseReduceTail parses the body of reduce(acc = init, x IN list | expr)
// after the opening parenthesis. reduce is a binding form, not an ordinary
// function call: acc and x become locally bound variables of the final
// expression.
func (p *Parser) parseReduceTail() (ast.Expr, error) {
	red := &ast.Reduce{}
	tok := p.peek()
	if tok.Type != lexer.Ident {
		return nil, p.errorf("expected an accumulator variable in reduce(...), found %s", tok)
	}
	red.Accumulator = p.next().StrVal
	if _, err := p.expect(lexer.Eq, "'=' after the reduce accumulator"); err != nil {
		return nil, err
	}
	init, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	red.Init = init
	if _, err := p.expect(lexer.Comma, "',' after the reduce accumulator initialiser"); err != nil {
		return nil, err
	}
	tok = p.peek()
	if tok.Type != lexer.Ident {
		return nil, p.errorf("expected an iteration variable in reduce(...), found %s", tok)
	}
	red.Variable = p.next().StrVal
	if red.Variable == red.Accumulator {
		// Shadowing the accumulator would silently degenerate the fold to
		// a function of the last element only.
		return nil, p.errorf("variable `%s` already declared as the reduce accumulator", red.Variable)
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	list, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	red.List = list
	if _, err := p.expect(lexer.Pipe, "'|' before the reduce expression"); err != nil {
		return nil, err
	}
	expr, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	red.Expr = expr
	if _, err := p.expect(lexer.RParen, "')' closing reduce(...)"); err != nil {
		return nil, err
	}
	return red, nil
}

func (p *Parser) parseListLiteralOrComprehension() (ast.Expr, error) {
	if _, err := p.expect(lexer.LBracket, "'['"); err != nil {
		return nil, err
	}
	// Empty list.
	if p.peek().Type == lexer.RBracket {
		p.next()
		return &ast.ListLiteral{}, nil
	}
	// List comprehension: [x IN expr WHERE pred | proj].
	if p.peek().Type == lexer.Ident && p.peekAt(1).Is("IN") {
		variable := p.next().StrVal
		p.next() // IN
		list, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		lc := &ast.ListComprehension{Variable: variable, List: list}
		if p.acceptKeyword("WHERE") {
			where, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			lc.Where = where
		}
		if p.peek().Type == lexer.Pipe {
			p.next()
			proj, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			lc.Projection = proj
		}
		if _, err := p.expect(lexer.RBracket, "']' closing a list comprehension"); err != nil {
			return nil, err
		}
		return lc, nil
	}
	// Plain list literal.
	lit := &ast.ListLiteral{}
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		lit.Elems = append(lit.Elems, e)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	if _, err := p.expect(lexer.RBracket, "']' closing a list"); err != nil {
		return nil, err
	}
	return lit, nil
}

// parseParenthesizedOrPattern disambiguates `(expr)` from a pattern predicate
// such as `(a)-[:KNOWS]->(b)` used as a boolean expression in WHERE. It first
// attempts to parse a path pattern; if that fails or yields a bare node, it
// backtracks and parses a parenthesized expression.
func (p *Parser) parseParenthesizedOrPattern() (ast.Expr, error) {
	save := p.pos
	part, err := p.parseAnonymousPatternPart(ast.PatternPart{})
	if err == nil && len(part.Rels) > 0 {
		return &ast.PatternPredicate{Pattern: part}, nil
	}
	p.pos = save
	if _, err := p.expect(lexer.LParen, "'('"); err != nil {
		return nil, err
	}
	e, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen, "')'"); err != nil {
		return nil, err
	}
	return e, nil
}
