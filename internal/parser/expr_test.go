package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpression(src)
	if err != nil {
		t.Fatalf("ParseExpression(%q): %v", src, err)
	}
	return e
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"42", value.NewInt(42)},
		{"-7", value.NewInt(-7)},
		{"3.5", value.NewFloat(3.5)},
		{"'hello'", value.NewString("hello")},
		{"true", value.NewBool(true)},
		{"FALSE", value.NewBool(false)},
		{"null", value.Null()},
	}
	for _, c := range cases {
		e := parseExpr(t, c.src)
		lit, ok := e.(*ast.Literal)
		if !ok {
			t.Errorf("%q should parse to a literal, got %T", c.src, e)
			continue
		}
		if value.Compare(lit.Value, c.want) != 0 {
			t.Errorf("%q = %v, want %v", c.src, lit.Value, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "1 + 2 * 3"}, // structure differs, text form flattens
		{"a OR b AND c", "a OR b AND c"},
		{"NOT a AND b", "NOT a AND b"},
		{"a.x > 1 + 2", "a.x > 1 + 2"},
	}
	_ = cases
	// Structural checks are more meaningful than text comparison:
	e := parseExpr(t, "1 + 2 * 3")
	add := e.(*ast.BinaryOp)
	if add.Op != ast.OpAdd {
		t.Fatalf("top operator should be +, got %v", add.Op)
	}
	if mul, ok := add.RHS.(*ast.BinaryOp); !ok || mul.Op != ast.OpMul {
		t.Errorf("* should bind tighter than +")
	}

	e2 := parseExpr(t, "(1 + 2) * 3")
	mul := e2.(*ast.BinaryOp)
	if mul.Op != ast.OpMul {
		t.Fatalf("top operator should be *")
	}
	if add2, ok := mul.LHS.(*ast.BinaryOp); !ok || add2.Op != ast.OpAdd {
		t.Errorf("parenthesized + should be the left operand")
	}

	e3 := parseExpr(t, "a OR b AND c XOR d")
	or := e3.(*ast.BinaryOp)
	if or.Op != ast.OpOr {
		t.Fatalf("top operator should be OR, got %v", or.Op)
	}
	xor := or.RHS.(*ast.BinaryOp)
	if xor.Op != ast.OpXor {
		t.Fatalf("second level should be XOR, got %v", xor.Op)
	}
	and := xor.LHS.(*ast.BinaryOp)
	if and.Op != ast.OpAnd {
		t.Errorf("AND should bind tighter than XOR")
	}

	e4 := parseExpr(t, "NOT a = b")
	not := e4.(*ast.UnaryOp)
	if not.Op != ast.OpNot {
		t.Fatalf("top should be NOT")
	}
	if cmp, ok := not.Operand.(*ast.BinaryOp); !ok || cmp.Op != ast.OpEq {
		t.Errorf("NOT should apply to the whole comparison")
	}

	e5 := parseExpr(t, "2 ^ 3 ^ 2")
	pow := e5.(*ast.BinaryOp)
	if pow.Op != ast.OpPow {
		t.Fatalf("top should be ^")
	}
	if rhs, ok := pow.RHS.(*ast.BinaryOp); !ok || rhs.Op != ast.OpPow {
		t.Errorf("^ should be right-associative")
	}

	e6 := parseExpr(t, "1 - 2 - 3")
	sub := e6.(*ast.BinaryOp)
	if lhs, ok := sub.LHS.(*ast.BinaryOp); !ok || lhs.Op != ast.OpSub {
		t.Errorf("- should be left-associative")
	}
}

func TestParseComparisonsAndPredicates(t *testing.T) {
	ops := map[string]ast.BinaryOperator{
		"a = b":             ast.OpEq,
		"a <> b":            ast.OpNeq,
		"a < b":             ast.OpLt,
		"a <= b":            ast.OpLe,
		"a > b":             ast.OpGt,
		"a >= b":            ast.OpGe,
		"a IN [1,2]":        ast.OpIn,
		"a STARTS WITH 'x'": ast.OpStartsWith,
		"a ENDS WITH 'x'":   ast.OpEndsWith,
		"a CONTAINS 'x'":    ast.OpContains,
		"a =~ 'x.*'":        ast.OpRegexMatch,
		"a % b":             ast.OpMod,
	}
	for src, want := range ops {
		e := parseExpr(t, src)
		bo, ok := e.(*ast.BinaryOp)
		if !ok || bo.Op != want {
			t.Errorf("%q: got %T %v, want op %v", src, e, e, want)
		}
	}

	e := parseExpr(t, "a.age IS NULL")
	isn, ok := e.(*ast.IsNull)
	if !ok || isn.Negated {
		t.Errorf("IS NULL wrong: %T", e)
	}
	e2 := parseExpr(t, "a.age IS NOT NULL")
	isn2, ok := e2.(*ast.IsNull)
	if !ok || !isn2.Negated {
		t.Errorf("IS NOT NULL wrong: %T", e2)
	}
	e3 := parseExpr(t, "pInfo:SSN OR pInfo:PhoneNumber")
	or := e3.(*ast.BinaryOp)
	hl, ok := or.LHS.(*ast.HasLabels)
	if !ok || hl.Labels[0] != "SSN" {
		t.Errorf("label predicate wrong: %T %v", or.LHS, or.LHS)
	}
}

func TestParsePropertyAccessIndexSlice(t *testing.T) {
	e := parseExpr(t, "a.b.c")
	pa := e.(*ast.PropertyAccess)
	if pa.Key != "c" {
		t.Errorf("outer key = %q", pa.Key)
	}
	inner := pa.Subject.(*ast.PropertyAccess)
	if inner.Key != "b" {
		t.Errorf("inner key = %q", inner.Key)
	}

	e2 := parseExpr(t, "list[0]")
	if _, ok := e2.(*ast.Index); !ok {
		t.Errorf("index expression wrong: %T", e2)
	}
	e3 := parseExpr(t, "list[1..3]")
	sl, ok := e3.(*ast.Slice)
	if !ok || sl.From == nil || sl.To == nil {
		t.Errorf("slice wrong: %T", e3)
	}
	e4 := parseExpr(t, "list[..3]")
	sl4 := e4.(*ast.Slice)
	if sl4.From != nil || sl4.To == nil {
		t.Errorf("open-start slice wrong")
	}
	e5 := parseExpr(t, "list[1..]")
	sl5 := e5.(*ast.Slice)
	if sl5.From == nil || sl5.To != nil {
		t.Errorf("open-end slice wrong")
	}
	// Property access on a parameter and on a map literal.
	e6 := parseExpr(t, "$param.key")
	if _, ok := e6.(*ast.PropertyAccess); !ok {
		t.Errorf("parameter property access wrong: %T", e6)
	}
	e7 := parseExpr(t, "{a: 1}.a")
	if _, ok := e7.(*ast.PropertyAccess); !ok {
		t.Errorf("map literal property access wrong: %T", e7)
	}
}

func TestParseListsAndMaps(t *testing.T) {
	e := parseExpr(t, "[1, 'two', [3]]")
	ll := e.(*ast.ListLiteral)
	if len(ll.Elems) != 3 {
		t.Errorf("list literal elems = %d", len(ll.Elems))
	}
	e2 := parseExpr(t, "[]")
	if len(e2.(*ast.ListLiteral).Elems) != 0 {
		t.Errorf("empty list wrong")
	}
	e3 := parseExpr(t, "{name: 'Nils', scores: [1,2]}")
	ml := e3.(*ast.MapLiteral)
	if len(ml.Keys) != 2 || ml.Keys[0] != "name" {
		t.Errorf("map literal wrong: %+v", ml)
	}
	e4 := parseExpr(t, "{}")
	if len(e4.(*ast.MapLiteral).Keys) != 0 {
		t.Errorf("empty map wrong")
	}
	e5 := parseExpr(t, "3 IN list")
	if e5.(*ast.BinaryOp).Op != ast.OpIn {
		t.Errorf("IN wrong")
	}
}

func TestParseListComprehension(t *testing.T) {
	e := parseExpr(t, "[x IN range(1,10) WHERE x % 2 = 0 | x * 10]")
	lc, ok := e.(*ast.ListComprehension)
	if !ok {
		t.Fatalf("expected list comprehension, got %T", e)
	}
	if lc.Variable != "x" || lc.Where == nil || lc.Projection == nil {
		t.Errorf("list comprehension parts wrong: %+v", lc)
	}
	e2 := parseExpr(t, "[x IN list | x.name]")
	lc2 := e2.(*ast.ListComprehension)
	if lc2.Where != nil || lc2.Projection == nil {
		t.Errorf("projection-only comprehension wrong")
	}
	e3 := parseExpr(t, "[x IN list WHERE x > 0]")
	lc3 := e3.(*ast.ListComprehension)
	if lc3.Where == nil || lc3.Projection != nil {
		t.Errorf("filter-only comprehension wrong")
	}
}

func TestParseCase(t *testing.T) {
	e := parseExpr(t, "CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END")
	c := e.(*ast.Case)
	if c.Test != nil || len(c.Alternatives) != 2 || c.Else == nil {
		t.Errorf("searched CASE wrong: %+v", c)
	}
	e2 := parseExpr(t, "CASE a.grade WHEN 1 THEN 'first' ELSE 'other' END")
	c2 := e2.(*ast.Case)
	if c2.Test == nil || len(c2.Alternatives) != 1 {
		t.Errorf("simple CASE wrong: %+v", c2)
	}
}

func TestParseFunctionsAndAggregates(t *testing.T) {
	e := parseExpr(t, "count(DISTINCT p)")
	fc := e.(*ast.FunctionCall)
	if fc.Name != "count" || !fc.Distinct || len(fc.Args) != 1 {
		t.Errorf("count(DISTINCT p) wrong: %+v", fc)
	}
	e2 := parseExpr(t, "coalesce(a.x, b.y, 0)")
	fc2 := e2.(*ast.FunctionCall)
	if fc2.Name != "coalesce" || len(fc2.Args) != 3 {
		t.Errorf("coalesce wrong: %+v", fc2)
	}
	e3 := parseExpr(t, "count(*)")
	if _, ok := e3.(*ast.CountStar); !ok {
		t.Errorf("count(*) wrong: %T", e3)
	}
	e4 := parseExpr(t, "size([1,2,3])")
	if e4.(*ast.FunctionCall).Name != "size" {
		t.Errorf("size wrong")
	}
	// Function names are case-insensitive (normalised to lower case).
	e5 := parseExpr(t, "COLLECT(x)")
	if e5.(*ast.FunctionCall).Name != "collect" {
		t.Errorf("function name should be normalised to lower case")
	}
}

func TestParseExistsAndPatternPredicate(t *testing.T) {
	e := parseExpr(t, "exists(n.email)")
	fc, ok := e.(*ast.FunctionCall)
	if !ok || fc.Name != "exists" {
		t.Errorf("exists(prop) wrong: %T", e)
	}
	e2 := parseExpr(t, "EXISTS((a)-[:KNOWS]->(b))")
	if _, ok := e2.(*ast.PatternPredicate); !ok {
		t.Errorf("EXISTS(pattern) wrong: %T", e2)
	}
	e3 := parseExpr(t, "(a)-[:KNOWS]->(b)")
	pp, ok := e3.(*ast.PatternPredicate)
	if !ok || len(pp.Pattern.Rels) != 1 {
		t.Errorf("bare pattern predicate wrong: %T", e3)
	}
	// A parenthesized arithmetic expression must not be mistaken for a
	// pattern.
	e4 := parseExpr(t, "(a) - 2")
	if _, ok := e4.(*ast.BinaryOp); !ok {
		t.Errorf("(a) - 2 should be arithmetic, got %T", e4)
	}
}

func TestParseParametersAndUnary(t *testing.T) {
	e := parseExpr(t, "$limit")
	if e.(*ast.Parameter).Name != "limit" {
		t.Errorf("parameter wrong")
	}
	e2 := parseExpr(t, "-x")
	if e2.(*ast.UnaryOp).Op != ast.OpNeg {
		t.Errorf("unary minus wrong")
	}
	e3 := parseExpr(t, "+x")
	if e3.(*ast.UnaryOp).Op != ast.OpPos {
		t.Errorf("unary plus wrong")
	}
	e4 := parseExpr(t, "NOT NOT true")
	inner := e4.(*ast.UnaryOp).Operand.(*ast.UnaryOp)
	if inner.Op != ast.OpNot {
		t.Errorf("double NOT wrong")
	}
	e5 := parseExpr(t, "-3.5")
	if v := e5.(*ast.Literal).Value; value.Compare(v, value.NewFloat(-3.5)) != 0 {
		t.Errorf("negative float literal folding wrong: %v", v)
	}
}

func TestExpressionStringForms(t *testing.T) {
	// The String() form is used for implicit column names; spot-check a few.
	cases := []struct{ src, want string }{
		{"r.name", "r.name"},
		{"count(DISTINCT p2)", "count(DISTINCT p2)"},
		{"count(*)", "count(*)"},
		{"1 + 2", "1 + 2"},
		{"a IS NULL", "a IS NULL"},
		{"[x IN l WHERE x > 0 | x]", "[x IN l WHERE x > 0 | x]"},
		{"labels(pInfo)", "labels(pInfo)"},
		{"a:Person", "a:Person"},
		{"CASE WHEN a THEN 1 ELSE 2 END", "CASE WHEN a THEN 1 ELSE 2 END"},
		{"m[1..2]", "m[1..2]"},
		{"-x", "-x"},
		{"$p", "$p"},
	}
	for _, c := range cases {
		e := parseExpr(t, c.src)
		if got := e.String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseReduce(t *testing.T) {
	e := parseExpr(t, "reduce(acc = 0, x IN [1, 2] | acc + x)")
	red, ok := e.(*ast.Reduce)
	if !ok {
		t.Fatalf("expected *ast.Reduce, got %T", e)
	}
	if red.Accumulator != "acc" || red.Variable != "x" {
		t.Errorf("bound variables: %q, %q", red.Accumulator, red.Variable)
	}
	if red.Init == nil || red.List == nil || red.Expr == nil {
		t.Fatalf("incomplete reduce: %+v", red)
	}
	if got := red.String(); got != "reduce(acc = 0, x IN [1, 2] | acc + x)" {
		t.Errorf("String() = %q", got)
	}

	// reduce nests and composes with other expressions.
	e = parseExpr(t, "1 + reduce(s = '', c IN reduce(l = [], y IN [1] | l + y) | s + c)")
	if _, ok := e.(*ast.BinaryOp); !ok {
		t.Errorf("nested reduce should parse inside arithmetic, got %T", e)
	}

	// Malformed variants are syntax errors.
	for _, bad := range []string{
		"reduce(acc, x IN [1] | acc)",        // missing = init
		"reduce(acc = 0, x IN [1])",          // missing | expr
		"reduce(acc = 0 | acc)",              // missing iteration
		"reduce(acc = 0, x [1] | acc)",       // missing IN
		"reduce(acc = 0, x IN [1] | acc, 1)", // trailing argument
		"reduce(x = 0, x IN [1, 2] | x + 1)", // iteration variable shadows the accumulator
	} {
		if _, err := ParseExpression(bad); err == nil {
			t.Errorf("ParseExpression(%q) should fail", bad)
		}
	}
}
