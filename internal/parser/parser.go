// Package parser implements a recursive-descent parser for the core Cypher
// language formalised in the paper: the pattern grammar of Figure 3, the
// expression / query / clause grammar of Figure 5, plus ORDER BY, SKIP,
// LIMIT and the updating clauses described in Section 2.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// Parser consumes a token stream and produces an AST.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a complete Cypher query (possibly a UNION of single queries).
func Parse(src string) (*ast.Query, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Type == lexer.Semicolon {
		p.next()
	}
	if p.peek().Type != lexer.EOF {
		return nil, p.errorf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

// ParseExpression parses a standalone expression (used by tests and tools).
func ParseExpression(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if p.peek().Type != lexer.EOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// --- token helpers ---

func (p *Parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(offset int) lexer.Token {
	i := p.pos + offset
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[i]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(tt lexer.Type, what string) (lexer.Token, error) {
	if p.peek().Type != tt {
		return lexer.Token{}, p.errorf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.peek().Is(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	p.next()
	return nil
}

// acceptKeyword consumes the keyword if present and reports whether it did.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.peek().Is(kw) {
		p.next()
		return true
	}
	return false
}

// symbolicName parses an identifier-like name; Cypher allows most keywords to
// be used as property keys, labels and relationship types, so keywords are
// accepted here with their original spelling.
func (p *Parser) symbolicName(what string) (string, error) {
	t := p.peek()
	switch t.Type {
	case lexer.Ident:
		p.next()
		return t.StrVal, nil
	case lexer.Keyword:
		p.next()
		return t.StrVal, nil
	default:
		return "", p.errorf("expected %s, found %s", what, t)
	}
}

// variableName parses a variable name (identifiers only).
func (p *Parser) variableName(what string) (string, error) {
	t, err := p.expect(lexer.Ident, what)
	if err != nil {
		return "", err
	}
	return t.StrVal, nil
}

// --- queries ---

func (p *Parser) parseQuery() (*ast.Query, error) {
	q := &ast.Query{}
	first, err := p.parseSingleQuery()
	if err != nil {
		return nil, err
	}
	q.Parts = append(q.Parts, first)
	for p.peek().Is("UNION") {
		p.next()
		kind := ast.UnionDistinct
		if p.acceptKeyword("ALL") {
			kind = ast.UnionAll
		}
		part, err := p.parseSingleQuery()
		if err != nil {
			return nil, err
		}
		q.Parts = append(q.Parts, part)
		q.Unions = append(q.Unions, kind)
	}
	return q, nil
}

func (p *Parser) parseSingleQuery() (*ast.SingleQuery, error) {
	sq := &ast.SingleQuery{}
	for {
		t := p.peek()
		if t.Type == lexer.EOF || t.Type == lexer.Semicolon || t.Is("UNION") {
			break
		}
		clause, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		sq.Clauses = append(sq.Clauses, clause)
		if _, ok := clause.(*ast.Return); ok {
			break
		}
	}
	if len(sq.Clauses) == 0 {
		return nil, p.errorf("expected a clause, found %s", p.peek())
	}
	return sq, nil
}

func (p *Parser) parseClause() (ast.Clause, error) {
	t := p.peek()
	switch {
	case t.Is("MATCH") || t.Is("OPTIONAL"):
		return p.parseMatch()
	case t.Is("UNWIND"):
		return p.parseUnwind()
	case t.Is("WITH"):
		return p.parseWith()
	case t.Is("RETURN"):
		return p.parseReturn()
	case t.Is("CREATE"):
		return p.parseCreate()
	case t.Is("MERGE"):
		return p.parseMerge()
	case t.Is("SET"):
		return p.parseSet()
	case t.Is("DELETE") || t.Is("DETACH"):
		return p.parseDelete()
	case t.Is("REMOVE"):
		return p.parseRemove()
	default:
		return nil, p.errorf("expected a clause keyword, found %s", t)
	}
}

func (p *Parser) parseMatch() (ast.Clause, error) {
	optional := false
	if p.acceptKeyword("OPTIONAL") {
		optional = true
	}
	if err := p.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	pattern, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	m := &ast.Match{Optional: optional, Pattern: pattern}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		m.Where = where
	}
	return m, nil
}

func (p *Parser) parseUnwind() (ast.Clause, error) {
	if err := p.expectKeyword("UNWIND"); err != nil {
		return nil, err
	}
	e, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	alias, err := p.variableName("variable name after AS")
	if err != nil {
		return nil, err
	}
	return &ast.Unwind{Expr: e, Alias: alias}, nil
}

func (p *Parser) parseProjection() (ast.Projection, error) {
	proj := ast.Projection{}
	if p.acceptKeyword("DISTINCT") {
		proj.Distinct = true
	}
	if p.peek().Type == lexer.Star {
		p.next()
		proj.Star = true
		if p.peek().Type == lexer.Comma {
			p.next()
			items, err := p.parseReturnItems()
			if err != nil {
				return proj, err
			}
			proj.Items = items
		}
	} else {
		items, err := p.parseReturnItems()
		if err != nil {
			return proj, err
		}
		proj.Items = items
	}
	if p.peek().Is("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return proj, err
		}
		for {
			e, err := p.parseExpression()
			if err != nil {
				return proj, err
			}
			item := ast.SortItem{Expr: e}
			if p.acceptKeyword("DESC") || p.acceptKeyword("DESCENDING") {
				item.Descending = true
			} else if p.acceptKeyword("ASC") || p.acceptKeyword("ASCENDING") {
				item.Descending = false
			}
			proj.OrderBy = append(proj.OrderBy, item)
			if p.peek().Type != lexer.Comma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("SKIP") {
		e, err := p.parseExpression()
		if err != nil {
			return proj, err
		}
		proj.Skip = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpression()
		if err != nil {
			return proj, err
		}
		proj.Limit = e
	}
	return proj, nil
}

func (p *Parser) parseReturnItems() ([]ast.ReturnItem, error) {
	var items []ast.ReturnItem
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		item := ast.ReturnItem{Expr: e}
		if p.acceptKeyword("AS") {
			alias, err := p.symbolicName("alias after AS")
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		items = append(items, item)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	return items, nil
}

func (p *Parser) parseWith() (ast.Clause, error) {
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	proj, err := p.parseProjection()
	if err != nil {
		return nil, err
	}
	w := &ast.With{Projection: proj}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		w.Where = where
	}
	return w, nil
}

func (p *Parser) parseReturn() (ast.Clause, error) {
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	proj, err := p.parseProjection()
	if err != nil {
		return nil, err
	}
	return &ast.Return{Projection: proj}, nil
}

func (p *Parser) parseCreate() (ast.Clause, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	pattern, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	return &ast.Create{Pattern: pattern}, nil
}

func (p *Parser) parseMerge() (ast.Clause, error) {
	if err := p.expectKeyword("MERGE"); err != nil {
		return nil, err
	}
	part, err := p.parsePatternPart()
	if err != nil {
		return nil, err
	}
	m := &ast.Merge{Part: part}
	for p.peek().Is("ON") {
		p.next()
		switch {
		case p.acceptKeyword("CREATE"):
			if err := p.expectKeyword("SET"); err != nil {
				return nil, err
			}
			items, err := p.parseSetItems()
			if err != nil {
				return nil, err
			}
			m.OnCreate = append(m.OnCreate, items...)
		case p.acceptKeyword("MATCH"):
			if err := p.expectKeyword("SET"); err != nil {
				return nil, err
			}
			items, err := p.parseSetItems()
			if err != nil {
				return nil, err
			}
			m.OnMatch = append(m.OnMatch, items...)
		default:
			return nil, p.errorf("expected CREATE or MATCH after ON, found %s", p.peek())
		}
	}
	return m, nil
}

func (p *Parser) parseSet() (ast.Clause, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	items, err := p.parseSetItems()
	if err != nil {
		return nil, err
	}
	return &ast.Set{Items: items}, nil
}

func (p *Parser) parseSetItems() ([]ast.SetItem, error) {
	var items []ast.SetItem
	for {
		item, err := p.parseSetItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	return items, nil
}

func (p *Parser) parseSetItem() (ast.SetItem, error) {
	name, err := p.variableName("variable in SET")
	if err != nil {
		return ast.SetItem{}, err
	}
	switch p.peek().Type {
	case lexer.Dot:
		// variable.prop[.prop...] = expr
		var subject ast.Expr = &ast.Variable{Name: name}
		var lastKey string
		for p.peek().Type == lexer.Dot {
			p.next()
			key, err := p.symbolicName("property key")
			if err != nil {
				return ast.SetItem{}, err
			}
			if lastKey != "" {
				subject = &ast.PropertyAccess{Subject: subject, Key: lastKey}
			}
			lastKey = key
		}
		if _, err := p.expect(lexer.Eq, "'='"); err != nil {
			return ast.SetItem{}, err
		}
		v, err := p.parseExpression()
		if err != nil {
			return ast.SetItem{}, err
		}
		return ast.SetItem{
			Kind:     ast.SetProperty,
			Property: &ast.PropertyAccess{Subject: subject, Key: lastKey},
			Value:    v,
		}, nil
	case lexer.PlusEq:
		p.next()
		v, err := p.parseExpression()
		if err != nil {
			return ast.SetItem{}, err
		}
		return ast.SetItem{Kind: ast.SetMergeProperties, Variable: name, Value: v}, nil
	case lexer.Eq:
		p.next()
		v, err := p.parseExpression()
		if err != nil {
			return ast.SetItem{}, err
		}
		return ast.SetItem{Kind: ast.SetAllProperties, Variable: name, Value: v}, nil
	case lexer.Colon:
		var labels []string
		for p.peek().Type == lexer.Colon {
			p.next()
			l, err := p.symbolicName("label")
			if err != nil {
				return ast.SetItem{}, err
			}
			labels = append(labels, l)
		}
		return ast.SetItem{Kind: ast.SetLabels, Variable: name, Labels: labels}, nil
	default:
		return ast.SetItem{}, p.errorf("expected '.', '=', '+=' or ':' in SET item, found %s", p.peek())
	}
}

func (p *Parser) parseDelete() (ast.Clause, error) {
	detach := false
	if p.acceptKeyword("DETACH") {
		detach = true
	}
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	var exprs []ast.Expr
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	return &ast.Delete{Detach: detach, Exprs: exprs}, nil
}

func (p *Parser) parseRemove() (ast.Clause, error) {
	if err := p.expectKeyword("REMOVE"); err != nil {
		return nil, err
	}
	var items []ast.RemoveItem
	for {
		name, err := p.variableName("variable in REMOVE")
		if err != nil {
			return nil, err
		}
		switch p.peek().Type {
		case lexer.Dot:
			var subject ast.Expr = &ast.Variable{Name: name}
			var lastKey string
			for p.peek().Type == lexer.Dot {
				p.next()
				key, err := p.symbolicName("property key")
				if err != nil {
					return nil, err
				}
				if lastKey != "" {
					subject = &ast.PropertyAccess{Subject: subject, Key: lastKey}
				}
				lastKey = key
			}
			items = append(items, ast.RemoveItem{
				Kind:     ast.RemoveProperty,
				Property: &ast.PropertyAccess{Subject: subject, Key: lastKey},
			})
		case lexer.Colon:
			var labels []string
			for p.peek().Type == lexer.Colon {
				p.next()
				l, err := p.symbolicName("label")
				if err != nil {
					return nil, err
				}
				labels = append(labels, l)
			}
			items = append(items, ast.RemoveItem{Kind: ast.RemoveLabels, Variable: name, Labels: labels})
		default:
			return nil, p.errorf("expected '.' or ':' in REMOVE item, found %s", p.peek())
		}
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	return &ast.Remove{Items: items}, nil
}
