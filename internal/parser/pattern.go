package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
)

// parsePattern parses a comma-separated tuple of path patterns.
func (p *Parser) parsePattern() (ast.Pattern, error) {
	var pattern ast.Pattern
	for {
		part, err := p.parsePatternPart()
		if err != nil {
			return pattern, err
		}
		pattern.Parts = append(pattern.Parts, part)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	return pattern, nil
}

// parsePatternPart parses one path pattern, optionally named: `a = (x)-[..]->(y)`.
func (p *Parser) parsePatternPart() (ast.PatternPart, error) {
	var part ast.PatternPart
	if p.peek().Type == lexer.Ident && p.peekAt(1).Type == lexer.Eq {
		name := p.next().StrVal
		p.next() // '='
		part.Variable = name
	}
	return p.parseAnonymousPatternPart(part)
}

// parseAnonymousPatternPart parses the chain of node and relationship
// patterns that makes up a path pattern.
func (p *Parser) parseAnonymousPatternPart(part ast.PatternPart) (ast.PatternPart, error) {
	node, err := p.parseNodePattern()
	if err != nil {
		return part, err
	}
	part.Nodes = append(part.Nodes, node)
	for p.peek().Type == lexer.Minus || p.peek().Type == lexer.Lt {
		rel, err := p.parseRelationshipPattern()
		if err != nil {
			return part, err
		}
		node, err := p.parseNodePattern()
		if err != nil {
			return part, err
		}
		part.Rels = append(part.Rels, rel)
		part.Nodes = append(part.Nodes, node)
	}
	return part, nil
}

// parseNodePattern parses `( [variable] [:Label]* [{props}] )`.
func (p *Parser) parseNodePattern() (ast.NodePattern, error) {
	var np ast.NodePattern
	if _, err := p.expect(lexer.LParen, "'(' starting a node pattern"); err != nil {
		return np, err
	}
	if p.peek().Type == lexer.Ident {
		np.Variable = p.next().StrVal
	}
	for p.peek().Type == lexer.Colon {
		p.next()
		label, err := p.symbolicName("node label")
		if err != nil {
			return np, err
		}
		np.Labels = append(np.Labels, label)
	}
	if p.peek().Type == lexer.LBrace {
		props, err := p.parseMapLiteral()
		if err != nil {
			return np, err
		}
		np.Properties = props
	} else if p.peek().Type == lexer.Parameter {
		// `(n $props)` — properties supplied via a parameter; represent as a
		// one-entry map literal keyed by the parameter for the planner.
		tok := p.next()
		np.Properties = &ast.MapLiteral{Keys: []string{"$" + tok.StrVal}, Values: []ast.Expr{&ast.Parameter{Name: tok.StrVal}}}
	}
	if _, err := p.expect(lexer.RParen, "')' closing a node pattern"); err != nil {
		return np, err
	}
	return np, nil
}

// parseRelationshipPattern parses the relationship part of a pattern:
// `-[r:TYPE*1..2 {props}]->`, `<-[...]-`, `-[...]-`, `-->`, `<--`, `--`.
func (p *Parser) parseRelationshipPattern() (ast.RelationshipPattern, error) {
	rp := ast.RelationshipPattern{MinHops: -1, MaxHops: -1}
	leftArrow := false
	if p.peek().Type == lexer.Lt {
		p.next()
		leftArrow = true
	}
	if _, err := p.expect(lexer.Minus, "'-' in a relationship pattern"); err != nil {
		return rp, err
	}
	if p.peek().Type == lexer.LBracket {
		p.next()
		if p.peek().Type == lexer.Ident {
			rp.Variable = p.next().StrVal
		}
		if p.peek().Type == lexer.Colon {
			p.next()
			typ, err := p.symbolicName("relationship type")
			if err != nil {
				return rp, err
			}
			rp.Types = append(rp.Types, typ)
			for p.peek().Type == lexer.Pipe {
				p.next()
				// Allow both `:A|B` and `:A|:B`.
				if p.peek().Type == lexer.Colon {
					p.next()
				}
				typ, err := p.symbolicName("relationship type")
				if err != nil {
					return rp, err
				}
				rp.Types = append(rp.Types, typ)
			}
		}
		if p.peek().Type == lexer.Star {
			p.next()
			rp.VarLength = true
			if p.peek().Type == lexer.Integer {
				rp.MinHops = int(p.next().IntVal)
				rp.MaxHops = rp.MinHops // `*n` means exactly n unless a range follows
			}
			if p.peek().Type == lexer.DotDot {
				p.next()
				rp.MaxHops = -1
				if p.peek().Type == lexer.Integer {
					rp.MaxHops = int(p.next().IntVal)
				}
			}
		}
		if p.peek().Type == lexer.LBrace {
			props, err := p.parseMapLiteral()
			if err != nil {
				return rp, err
			}
			rp.Properties = props
		}
		if _, err := p.expect(lexer.RBracket, "']' closing a relationship pattern"); err != nil {
			return rp, err
		}
	}
	if _, err := p.expect(lexer.Minus, "'-' in a relationship pattern"); err != nil {
		return rp, err
	}
	rightArrow := false
	if p.peek().Type == lexer.Gt {
		p.next()
		rightArrow = true
	}
	switch {
	case leftArrow && !rightArrow:
		rp.Direction = ast.DirIncoming
	case rightArrow && !leftArrow:
		rp.Direction = ast.DirOutgoing
	default:
		rp.Direction = ast.DirBoth
	}
	return rp, nil
}

// parseMapLiteral parses `{ key: expr, ... }`.
func (p *Parser) parseMapLiteral() (*ast.MapLiteral, error) {
	if _, err := p.expect(lexer.LBrace, "'{'"); err != nil {
		return nil, err
	}
	m := &ast.MapLiteral{}
	if p.peek().Type == lexer.RBrace {
		p.next()
		return m, nil
	}
	for {
		key, err := p.symbolicName("map key")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon, "':' after map key"); err != nil {
			return nil, err
		}
		v, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		m.Keys = append(m.Keys, key)
		m.Values = append(m.Values, v)
		if p.peek().Type != lexer.Comma {
			break
		}
		p.next()
	}
	if _, err := p.expect(lexer.RBrace, "'}' closing a map"); err != nil {
		return nil, err
	}
	return m, nil
}
