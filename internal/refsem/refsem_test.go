package refsem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/result"
	"repro/internal/value"
)

// mustEval parses and evaluates a query under the reference semantics.
func mustEval(t *testing.T, g *graph.Graph, q string) *result.Table {
	t.Helper()
	parsed, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	tbl, err := Evaluate(parsed, g, nil)
	if err != nil {
		t.Fatalf("evaluate %q: %v", q, err)
	}
	return tbl
}

func TestReferenceSemanticsSection3(t *testing.T) {
	g, _ := datasets.Citations()
	tbl := mustEval(t, g, `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		MATCH (r)-[:AUTHORS]->(p1:Publication)
		OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
		RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`)
	if tbl.Len() != 2 {
		t.Fatalf("expected 2 rows, got %d:\n%s", tbl.Len(), tbl.String())
	}
	tbl.SortByAllColumns()
	rows := tbl.Rows()
	if rows[0][0].String() != "'Elin'" || value.Compare(rows[0][1], value.NewInt(2)) != 0 || value.Compare(rows[0][2], value.NewInt(1)) != 0 {
		t.Errorf("Elin row wrong: %v", rows[0])
	}
	if rows[1][0].String() != "'Nils'" || value.Compare(rows[1][1], value.NewInt(0)) != 0 || value.Compare(rows[1][2], value.NewInt(3)) != 0 {
		t.Errorf("Nils row wrong: %v", rows[1])
	}
}

func TestReferenceSemanticsExample46(t *testing.T) {
	g, _ := datasets.Teachers()
	tbl := mustEval(t, g, "MATCH (x) WHERE x.name IN ['n1', 'n3'] MATCH (x)-[:KNOWS*]->(y) RETURN x.name AS x, y.name AS y")
	if tbl.Len() != 4 {
		t.Fatalf("Example 4.6 should yield 4 rows, got %d:\n%s", tbl.Len(), tbl.String())
	}
}

func TestReferenceSemanticsExample45BagSemantics(t *testing.T) {
	g, _ := datasets.Teachers()
	tbl := mustEval(t, g, "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x.name AS x, y.name AS y")
	if tbl.Len() != 3 {
		t.Fatalf("Example 4.5 should yield 3 rows (two copies of n1/n4), got %d:\n%s", tbl.Len(), tbl.String())
	}
	copies := 0
	for i := range tbl.Records {
		row := tbl.Row(i)
		if row[0].String() == "'n1'" && row[1].String() == "'n4'" {
			copies++
		}
	}
	if copies != 2 {
		t.Errorf("expected two copies of (n1, n4), got %d", copies)
	}
}

func TestReferenceSemanticsSelfLoop(t *testing.T) {
	g := datasets.SelfLoop()
	tbl := mustEval(t, g, "MATCH (x)-[*0..]->(x) RETURN count(*) AS matches")
	if tbl.Len() != 1 || value.Compare(tbl.Rows()[0][0], value.NewInt(2)) != 0 {
		t.Fatalf("self-loop should produce exactly 2 matches, got %s", tbl.String())
	}
}

func TestReferenceSemanticsRejectsUpdates(t *testing.T) {
	g := datasets.SelfLoop()
	parsed, err := parser.Parse("CREATE (n) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(parsed, g, nil); err == nil {
		t.Fatalf("the reference semantics covers only the read-only core")
	}
}

// differentialCorpus is the query corpus compared between the optimised
// engine and the literal Figure 6/7 semantics (experiments E18/E19).
var differentialCorpus = []string{
	// Clause composition (Figure 6).
	"MATCH (n) RETURN n",
	"MATCH (n:Teacher) RETURN n.name AS name",
	"MATCH (n:Teacher) RETURN n.name AS name UNION ALL MATCH (n:Student) RETURN n.name AS name",
	"MATCH (n) RETURN labels(n) AS l UNION MATCH (n) RETURN labels(n) AS l",
	"RETURN 1 + 1 AS two, 'a' AS letter",
	// MATCH / OPTIONAL MATCH / WHERE (Figure 7).
	"MATCH (a)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b",
	"MATCH (a)-[r:KNOWS]->(b) WHERE r.since > 1990 RETURN a.name AS a, b.name AS b",
	"MATCH (a)<-[:KNOWS]-(b) RETURN a.name AS a, b.name AS b",
	"MATCH (a)--(b) RETURN a.name AS a, b.name AS b",
	"MATCH (a:Teacher)-[:KNOWS*1..2]->(b) RETURN a.name AS a, b.name AS b",
	"MATCH (a:Teacher)-[:KNOWS*2]->(b) RETURN a.name AS a, b.name AS b",
	"MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x.name AS x, y.name AS y",
	"MATCH (a {name: 'n2'}) OPTIONAL MATCH (a)-[:TEACHES]->(b) RETURN a.name AS a, b AS b",
	"MATCH (a) OPTIONAL MATCH (a)-[:KNOWS]->(b:Teacher) RETURN a.name AS a, b.name AS b",
	"MATCH (a)-[r1:KNOWS]->(b), (c)-[r2:KNOWS]->(d) RETURN a.name AS a, b.name AS b, c.name AS c, d.name AS d",
	"MATCH (a) WHERE (a)-[:KNOWS]->(:Teacher) RETURN a.name AS a",
	// WITH / UNWIND / aggregation / DISTINCT / ORDER BY / SKIP / LIMIT.
	"MATCH (a)-[:KNOWS]->(b) WITH a, count(b) AS n RETURN a.name AS a, n",
	"MATCH (a) WITH a WHERE a.name STARTS WITH 'n' RETURN count(*) AS c",
	"UNWIND [1, 2, 2, 3] AS x RETURN DISTINCT x",
	"UNWIND [1, 2, 3, 4] AS x WITH x WHERE x % 2 = 0 RETURN collect(x) AS evens",
	"MATCH (a) RETURN a.name AS name ORDER BY name DESC SKIP 1 LIMIT 2",
	"MATCH (a) RETURN count(*) AS c, min(a.name) AS lo, max(a.name) AS hi",
	"MATCH (a:Teacher) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a.name AS a, count(b) AS friends",
	"MATCH (a) RETURN CASE WHEN a:Teacher THEN 'T' ELSE 'S' END AS kind, count(*) AS c",
	// Expression fixes (PR 3): reduce, string/number concatenation, datetime
	// offsets — the oracle shares the expression evaluator, so these assert
	// that the engine's planning/rewriting layers do not diverge from it.
	"UNWIND [1, 2, 3] AS x WITH collect(x) AS xs RETURN reduce(acc = 0, v IN xs | acc + v) AS sum",
	"MATCH (a) RETURN reduce(s = '', c IN [a.name, '!'] | s + c) AS tagged",
	"MATCH (a) RETURN a.name + 1 AS suffixed, 0 + a.name AS prefixed",
	"RETURN datetime('2020-01-01T00:00:00Z') = datetime('2019-12-31T19:00:00-05:00') AS same",
}

// TestDifferentialEngineVsReference runs the corpus through both the
// optimised engine and the reference semantics and requires bag-equal
// results on every graph (E18/E19 in DESIGN.md).
func TestDifferentialEngineVsReference(t *testing.T) {
	graphs := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"teachers", func() *graph.Graph { g, _ := datasets.Teachers(); return g }},
		{"citations", func() *graph.Graph { g, _ := datasets.Citations(); return g }},
		{"social", func() *graph.Graph {
			return datasets.SocialNetwork(datasets.SocialConfig{People: 12, FriendsEach: 2, Seed: 9})
		}},
	}
	for _, gc := range graphs {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.build()
			e := core.NewEngine(g, core.Options{})
			for _, q := range differentialCorpus {
				engineRes, err := e.Run(q, nil)
				if err != nil {
					t.Fatalf("engine failed on %q: %v", q, err)
				}
				parsed, err := parser.Parse(q)
				if err != nil {
					t.Fatalf("parse failed on %q: %v", q, err)
				}
				refRes, err := Evaluate(parsed, g, nil)
				if err != nil {
					t.Fatalf("reference semantics failed on %q: %v", q, err)
				}
				// Column order is defined by the projection in both
				// implementations; align the reference table's columns with
				// the engine's before comparison to tolerate naming of
				// unaliased items.
				if len(refRes.Columns) != len(engineRes.Table.Columns) {
					t.Fatalf("column count mismatch on %q: %v vs %v", q, refRes.Columns, engineRes.Table.Columns)
				}
				refRes.Columns = engineRes.Table.Columns
				if !result.EqualAsBags(engineRes.Table, refRes) {
					t.Errorf("engine and reference semantics disagree on %q\nengine:\n%s\nreference:\n%s\nplan:\n%s",
						q, engineRes.Table.String(), refRes.String(), engineRes.Plan)
				}
			}
		})
	}
}
