// Package refsem is a reference implementation of the denotational semantics
// of core Cypher given in Figures 6 and 7 of the paper: every clause is a
// function from tables to tables, queries compose those functions, and
// evaluation starts from the unit table T().
//
// The implementation is deliberately literal and unoptimised — patterns are
// matched by naive enumeration, without planning, statistics, or indexes. It
// exists to differentially test the optimised engine (internal/core et al.)
// against an independent reading of the paper's semantics, and to serve as
// the measurement baseline for the engine-vs-reference benchmark.
package refsem

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/result"
	"repro/internal/value"
)

// Evaluate computes output(Q, G) = [[Q]]_G(T()) for the core read-only
// fragment of Cypher covered by the paper's Figures 6 and 7: MATCH, OPTIONAL
// MATCH, WHERE, WITH, UNWIND, RETURN (including aggregation, DISTINCT, ORDER
// BY, SKIP and LIMIT) and UNION / UNION ALL.
func Evaluate(q *ast.Query, g *graph.Graph, params map[string]value.Value) (*result.Table, error) {
	ev := &evaluator{g: g}
	ev.ctx = &eval.Context{Params: params, PatternPredicate: ev.patternPredicate}

	var out *result.Table
	for i, part := range q.Parts {
		tbl, err := ev.evalSingleQuery(part)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out = tbl
			continue
		}
		if len(tbl.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("refsem: UNION column mismatch")
		}
		all := q.Unions[i-1] == ast.UnionAll
		out.Records = append(out.Records, tbl.Records...)
		if !all {
			out = dedup(out)
		}
	}
	return out, nil
}

type evaluator struct {
	g   *graph.Graph
	ctx *eval.Context
}

func (ev *evaluator) evalSingleQuery(sq *ast.SingleQuery) (*result.Table, error) {
	// Evaluation starts from the table containing the single empty record.
	tbl := result.Unit()
	for _, clause := range sq.Clauses {
		var err error
		switch c := clause.(type) {
		case *ast.Match:
			tbl, err = ev.evalMatch(c, tbl)
		case *ast.Unwind:
			tbl, err = ev.evalUnwind(c, tbl)
		case *ast.With:
			tbl, err = ev.evalProjection(c.Projection, tbl, c.Where, true)
		case *ast.Return:
			tbl, err = ev.evalProjection(c.Projection, tbl, nil, false)
		default:
			return nil, fmt.Errorf("refsem: unsupported clause %T (the reference semantics covers the read-only core)", clause)
		}
		if err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// --- MATCH ---

func (ev *evaluator) evalMatch(m *ast.Match, in *result.Table) (*result.Table, error) {
	out := result.NewTable()
	for _, u := range in.Records {
		matches, err := ev.matchTuple(m.Pattern, u)
		if err != nil {
			return nil, err
		}
		if m.Where != nil {
			var kept []result.Record
			for _, r := range matches {
				ok, err := ev.ctx.EvaluateTruth(m.Where, r)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, r)
				}
			}
			matches = kept
		}
		if len(matches) == 0 && m.Optional {
			// (u, (free(u, pi) : null))
			r := u.Clone()
			for _, v := range m.Pattern.Variables() {
				if !r.Has(v) {
					r.Set(v, value.Null())
				}
			}
			out.Add(r)
			continue
		}
		if len(matches) == 0 && !m.Optional {
			continue
		}
		for _, r := range matches {
			out.Add(r)
		}
	}
	return out, nil
}

// matchTuple enumerates match(pi-bar, G, u): all extensions of u that satisfy
// every path pattern in the tuple, with no relationship occurring in more
// than one binding (relationship isomorphism across the tuple).
func (ev *evaluator) matchTuple(p ast.Pattern, u result.Record) ([]result.Record, error) {
	recs := []result.Record{u.Clone()}
	used := [][]int64{nil}
	for _, part := range p.Parts {
		var nextRecs []result.Record
		var nextUsed [][]int64
		for i, rec := range recs {
			extensions, relIDs, err := ev.matchPart(part, rec, used[i])
			if err != nil {
				return nil, err
			}
			nextRecs = append(nextRecs, extensions...)
			nextUsed = append(nextUsed, relIDs...)
		}
		recs = nextRecs
		used = nextUsed
	}
	return recs, nil
}

// matchPart enumerates the bindings of one path pattern under rec, returning
// for each binding the relationships it used (so that subsequent parts can
// honour the uniqueness restriction).
func (ev *evaluator) matchPart(part ast.PatternPart, rec result.Record, usedSoFar []int64) ([]result.Record, [][]int64, error) {
	var outRecs []result.Record
	var outUsed [][]int64
	usedSet := map[int64]bool{}
	for _, id := range usedSoFar {
		usedSet[id] = true
	}

	type state struct {
		rec   result.Record
		node  *graph.Node
		used  map[int64]bool
		rels  []int64
		nodes []*graph.Node
		rlist []*graph.Relationship
	}

	emit := func(s state) error {
		final := s.rec
		if part.Variable != "" {
			p := value.Path{}
			for _, n := range s.nodes {
				p.Nodes = append(p.Nodes, n)
			}
			for _, r := range s.rlist {
				p.Rels = append(p.Rels, r)
			}
			final = final.Extended(part.Variable, value.NewPath(p))
		}
		outRecs = append(outRecs, final)
		ids := append(append([]int64(nil), usedSoFar...), s.rels...)
		outUsed = append(outUsed, ids)
		return nil
	}

	var advance func(s state, idx int) error
	advance = func(s state, idx int) error {
		if idx == len(part.Rels) {
			return emit(s)
		}
		rp := part.Rels[idx]
		nextNP := part.Nodes[idx+1]
		minHops, maxHops := 1, 1
		if rp.VarLength {
			minHops, maxHops = rp.MinHops, rp.MaxHops
			if minHops < 0 {
				minHops = 1
			}
			if maxHops < 0 {
				maxHops = 1 << 30
			}
		}
		var walk func(cur *graph.Node, depth int, s state) error
		walk = func(cur *graph.Node, depth int, s state) error {
			if depth >= minHops {
				// Try to close this segment at cur.
				ok, err := ev.nodeMatches(nextNP, cur, s.rec)
				if err != nil {
					return err
				}
				bindOK := true
				next := s
				next.rec = s.rec
				if nextNP.Variable != "" {
					if s.rec.Has(nextNP.Variable) {
						bound, isNode := value.AsNode(s.rec.Get(nextNP.Variable))
						if !isNode || bound.ID() != cur.ID() {
							bindOK = false
						}
					} else {
						next.rec = s.rec.Extended(nextNP.Variable, value.NewNode(cur))
					}
				}
				if ok && bindOK {
					segRels := append([]*graph.Relationship(nil), next.rlist[len(s.rlist)-(depth):]...)
					_ = segRels
					if rp.Variable != "" {
						if rp.VarLength {
							vals := make([]value.Value, depth)
							for i := 0; i < depth; i++ {
								vals[i] = value.NewRelationship(next.rlist[len(next.rlist)-depth+i])
							}
							next.rec = next.rec.Extended(rp.Variable, value.NewListOf(vals))
						} else if depth == 1 {
							next.rec = next.rec.Extended(rp.Variable, value.NewRelationship(next.rlist[len(next.rlist)-1]))
						}
					}
					next.node = cur
					if err := advance(next, idx+1); err != nil {
						return err
					}
				}
			}
			if depth >= maxHops {
				return nil
			}
			dir := graph.Both
			if rp.Direction == ast.DirOutgoing {
				dir = graph.Outgoing
			} else if rp.Direction == ast.DirIncoming {
				dir = graph.Incoming
			}
			for _, rel := range cur.Relationships(dir, rp.Types...) {
				if s.used[rel.ID()] {
					continue
				}
				match, err := ev.relMatches(rp, rel, s.rec)
				if err != nil {
					return err
				}
				if !match {
					continue
				}
				ns := s
				ns.used = cloneSet(s.used)
				ns.used[rel.ID()] = true
				ns.rels = append(append([]int64(nil), s.rels...), rel.ID())
				ns.rlist = append(append([]*graph.Relationship(nil), s.rlist...), rel)
				ns.nodes = append(append([]*graph.Node(nil), s.nodes...), rel.Other(cur))
				if err := walk(rel.Other(cur), depth+1, ns); err != nil {
					return err
				}
			}
			return nil
		}
		return walk(s.node, 0, s)
	}

	// Candidates for the first node.
	np := part.Nodes[0]
	tryStart := func(n *graph.Node) error {
		ok, err := ev.nodeMatches(np, n, rec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		r := rec
		if np.Variable != "" && !rec.Has(np.Variable) {
			r = rec.Extended(np.Variable, value.NewNode(n))
		}
		return advance(state{rec: r, node: n, used: cloneSet(usedSet), nodes: []*graph.Node{n}}, 0)
	}
	if np.Variable != "" && rec.Has(np.Variable) {
		v := rec.Get(np.Variable)
		if value.IsNull(v) {
			return nil, nil, nil
		}
		n, ok := value.AsNode(v)
		if !ok {
			return nil, nil, fmt.Errorf("refsem: %s is not a node", np.Variable)
		}
		gn, _ := ev.g.NodeByID(n.ID())
		if gn == nil {
			return nil, nil, nil
		}
		if err := tryStart(gn); err != nil {
			return nil, nil, err
		}
	} else {
		for _, n := range ev.g.Nodes() {
			if err := tryStart(n); err != nil {
				return nil, nil, err
			}
		}
	}
	return outRecs, outUsed, nil
}

func cloneSet(in map[int64]bool) map[int64]bool {
	out := make(map[int64]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func (ev *evaluator) nodeMatches(np ast.NodePattern, n *graph.Node, rec result.Record) (bool, error) {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	if np.Properties != nil {
		for i, k := range np.Properties.Keys {
			want, err := ev.ctx.Evaluate(np.Properties.Values[i], rec)
			if err != nil {
				return false, err
			}
			if value.Equals(n.Property(k), want) != value.TrueT {
				return false, nil
			}
		}
	}
	if np.Variable != "" && rec.Has(np.Variable) {
		bound, ok := value.AsNode(rec.Get(np.Variable))
		if !ok {
			return false, nil
		}
		return bound.ID() == n.ID(), nil
	}
	return true, nil
}

func (ev *evaluator) relMatches(rp ast.RelationshipPattern, rel *graph.Relationship, rec result.Record) (bool, error) {
	if len(rp.Types) > 0 {
		found := false
		for _, t := range rp.Types {
			if rel.RelType() == t {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	if rp.Properties != nil {
		for i, k := range rp.Properties.Keys {
			want, err := ev.ctx.Evaluate(rp.Properties.Values[i], rec)
			if err != nil {
				return false, err
			}
			if value.Equals(rel.Property(k), want) != value.TrueT {
				return false, nil
			}
		}
	}
	return true, nil
}

func (ev *evaluator) patternPredicate(part ast.PatternPart, rec result.Record) (bool, error) {
	recs, _, err := ev.matchPart(part, rec, nil)
	if err != nil {
		return false, err
	}
	return len(recs) > 0, nil
}

// --- UNWIND ---

func (ev *evaluator) evalUnwind(c *ast.Unwind, in *result.Table) (*result.Table, error) {
	out := result.NewTable()
	for _, u := range in.Records {
		v, err := ev.ctx.Evaluate(c.Expr, u)
		if err != nil {
			return nil, err
		}
		switch {
		case value.IsNull(v):
		case v.Kind() == value.KindList:
			l, _ := value.AsList(v)
			for _, el := range l.Elements() {
				out.Add(u.Extended(c.Alias, el))
			}
		default:
			out.Add(u.Extended(c.Alias, v))
		}
	}
	return out, nil
}

// --- WITH / RETURN ---

func (ev *evaluator) evalProjection(p ast.Projection, in *result.Table, where ast.Expr, isWith bool) (*result.Table, error) {
	items := p.Items
	if p.Star {
		// All fields of the driving table, in sorted order, then the explicit
		// items.
		fieldSet := map[string]bool{}
		for _, r := range in.Records {
			for _, f := range r.Fields() {
				fieldSet[f] = true
			}
		}
		var fields []string
		for f := range fieldSet {
			if f != "" && f[0] != ' ' {
				fields = append(fields, f)
			}
		}
		sort.Strings(fields)
		var starItems []ast.ReturnItem
		for _, f := range fields {
			starItems = append(starItems, ast.ReturnItem{Expr: &ast.Variable{Name: f}})
		}
		items = append(starItems, items...)
	}

	var columns []string
	for _, it := range items {
		columns = append(columns, it.Name())
	}

	hasAgg := false
	for _, it := range items {
		if eval.ContainsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var out *result.Table
	var err error
	if hasAgg {
		out, err = ev.aggregate(items, columns, in)
	} else {
		out = result.NewTable(columns...)
		for _, u := range in.Records {
			rec := result.NewRecord()
			for i, it := range items {
				v, evalErr := ev.ctx.Evaluate(it.Expr, u)
				if evalErr != nil {
					return nil, evalErr
				}
				rec.Set(columns[i], v)
			}
			out.Add(rec)
		}
	}
	if err != nil {
		return nil, err
	}
	out.Columns = columns

	if p.Distinct {
		out = dedup(out)
	}
	if len(p.OrderBy) > 0 {
		sortTable(ev.ctx, out, p.OrderBy)
	}
	if p.Skip != nil {
		n, err := ev.countOf(p.Skip)
		if err != nil {
			return nil, err
		}
		if n > int64(len(out.Records)) {
			n = int64(len(out.Records))
		}
		out.Records = out.Records[n:]
	}
	if p.Limit != nil {
		n, err := ev.countOf(p.Limit)
		if err != nil {
			return nil, err
		}
		if n < int64(len(out.Records)) {
			out.Records = out.Records[:n]
		}
	}
	if where != nil {
		var kept []result.Record
		for _, r := range out.Records {
			ok, err := ev.ctx.EvaluateTruth(where, r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		out.Records = kept
	}
	return out, nil
}

func (ev *evaluator) countOf(e ast.Expr) (int64, error) {
	v, err := ev.ctx.Evaluate(e, result.NewRecord())
	if err != nil {
		return 0, err
	}
	n, ok := value.AsInt(v)
	if !ok || n < 0 {
		return 0, fmt.Errorf("refsem: SKIP/LIMIT must be a non-negative integer")
	}
	return n, nil
}

func (ev *evaluator) aggregate(items []ast.ReturnItem, columns []string, in *result.Table) (*result.Table, error) {
	type group struct {
		keyVals map[string]value.Value
		rows    []result.Record
	}
	var groupingIdx, aggIdx []int
	for i, it := range items {
		if eval.ContainsAggregate(it.Expr) {
			aggIdx = append(aggIdx, i)
		} else {
			groupingIdx = append(groupingIdx, i)
		}
	}
	groups := map[string]*group{}
	var order []string
	for _, u := range in.Records {
		var keyVals []value.Value
		named := map[string]value.Value{}
		for _, gi := range groupingIdx {
			v, err := ev.ctx.Evaluate(items[gi].Expr, u)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
			named[columns[gi]] = v
		}
		key := value.GroupKeyOf(keyVals...)
		g, ok := groups[key]
		if !ok {
			g = &group{keyVals: named}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, u)
	}
	if len(groups) == 0 && len(groupingIdx) == 0 {
		groups[""] = &group{keyVals: map[string]value.Value{}}
		order = append(order, "")
	}

	out := result.NewTable(columns...)
	for _, key := range order {
		g := groups[key]
		rec := result.NewRecord()
		for _, gi := range groupingIdx {
			rec.Set(columns[gi], g.keyVals[columns[gi]])
		}
		for _, ai := range aggIdx {
			v, err := ev.evalAggregateExpr(items[ai].Expr, g.rows)
			if err != nil {
				return nil, err
			}
			rec.Set(columns[ai], v)
		}
		out.Add(rec)
	}
	return out, nil
}

// evalAggregateExpr evaluates an expression that is a single aggregating
// function call (the common case in the paper's examples) over the rows of a
// group.
func (ev *evaluator) evalAggregateExpr(e ast.Expr, rows []result.Record) (value.Value, error) {
	switch x := e.(type) {
	case *ast.CountStar:
		return value.NewInt(int64(len(rows))), nil
	case *ast.FunctionCall:
		if !eval.IsAggregate(x.Name) {
			return nil, fmt.Errorf("refsem: unsupported aggregation expression %s", e.String())
		}
		agg, err := eval.NewAggregator(x.Name, x.Distinct)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			v, err := ev.ctx.Evaluate(x.Args[0], r)
			if err != nil {
				return nil, err
			}
			if err := agg.Add(v); err != nil {
				return nil, err
			}
		}
		return agg.Result(), nil
	default:
		return nil, fmt.Errorf("refsem: aggregation expressions must be a single aggregate call, got %s", e.String())
	}
}

// --- helpers ---

func dedup(t *result.Table) *result.Table {
	out := result.NewTable(t.Columns...)
	seen := map[string]bool{}
	for i := range t.Records {
		vals := t.Row(i)
		key := value.GroupKeyOf(vals...)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Add(t.Records[i])
	}
	return out
}

func sortTable(ctx *eval.Context, t *result.Table, keys []ast.SortItem) {
	sort.SliceStable(t.Records, func(i, j int) bool {
		for _, k := range keys {
			vi := sortVal(ctx, k.Expr, t.Records[i])
			vj := sortVal(ctx, k.Expr, t.Records[j])
			cmp := value.Compare(vi, vj)
			if k.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func sortVal(ctx *eval.Context, e ast.Expr, r result.Record) value.Value {
	if name := e.String(); r.Has(name) {
		return r.Get(name)
	}
	v, err := ctx.Evaluate(e, r)
	if err != nil {
		return value.Null()
	}
	return v
}
