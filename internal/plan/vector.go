package plan

// Vectorization analysis for batched push execution. Like the parallelism
// analysis, this is purely structural and computed once per compiled plan:
// the executor consults it to decide how far above the scan it can push
// columnar batches before handing the stream back to the row-at-a-time
// engine through the batch→row adapter.
//
// A plan's batchable segment is the scan leaf plus the maximal prefix of the
// streaming operators directly above it that have batched kernels (Filter,
// Project, Limit, SelectColumns, single-hop Expand). The first operator
// without a kernel becomes the boundary: everything from it upward runs on
// the proven row path, fed one row at a time from the batch adapter. The
// analysis is independent of the parallel analysis — under morsel
// parallelism each worker runs one batch pipeline per morsel, and the
// batchable prefix is intersected with the parallel streaming segment.

import "strings"

// VectorInfo is the result of analysing a plan for batched execution. When
// Eligible is false, Reason says why every operator runs row-at-a-time
// (surfaced by EXPLAIN).
type VectorInfo struct {
	// Eligible reports whether at least the scan and one operator above it
	// can execute batched.
	Eligible bool
	// Reason is the fallback explanation when Eligible is false.
	Reason string

	// Scan is the batchable leaf (same operator the parallel analysis
	// partitions: a full scan or a leaf index seek).
	Scan Operator
	// Batched lists the operators with batched kernels, in bottom-up order
	// (closest to the scan first).
	Batched []Operator
	// Boundary explains where batching stops when operators remain above the
	// batched prefix ("" when the whole chain is batched).
	Boundary string
}

// rowOnly returns a non-eligible analysis with the given fallback reason.
func rowOnly(reason string) *VectorInfo {
	return &VectorInfo{Eligible: false, Reason: reason}
}

// batchSafe reports whether the operator has a batched kernel, or the reason
// it keeps the row path.
func batchSafe(op Operator) (ok bool, reason string) {
	switch o := op.(type) {
	case *Filter, *Project, *Limit, *SelectColumns:
		return true, ""
	case *Expand:
		if o.VarLength {
			return false, "variable-length expand keeps the row path"
		}
		if o.ExpandInto {
			return false, "ExpandInto keeps the row path"
		}
		return true, ""
	case *Aggregate:
		return false, "Aggregate materializes groups row-at-a-time"
	case *Sort:
		return false, "Sort materializes rows"
	case *Distinct:
		return false, "Distinct keeps the row path"
	case *Optional:
		return false, "Optional runs its inner plan per row"
	case *Unwind:
		return false, "Unwind keeps the row path"
	case *ProjectPath:
		return false, "ProjectPath keeps the row path"
	case *Skip:
		return false, "Skip keeps the row path"
	}
	return false, op.Describe() + " keeps the row path"
}

// KernelName returns the short name of an operator's batched kernel, used by
// EXPLAIN to render the batched segment.
func KernelName(op Operator) string {
	switch op.(type) {
	case *Filter:
		return "filter"
	case *Project:
		return "project"
	case *Expand:
		return "expand"
	case *Limit:
		return "limit"
	case *SelectColumns:
		return "select"
	}
	return "?"
}

// AnalyzeVectorization decomposes the plan into a batched segment and a row
// remainder, or explains why it runs entirely row-at-a-time.
func AnalyzeVectorization(p *Plan) *VectorInfo {
	if !p.ReadOnly {
		return rowOnly("updating query")
	}

	var ops []Operator
	for op := p.Root; op != nil; op = op.Source() {
		if _, ok := op.(*Union); ok {
			return rowOnly("UNION combines two plans")
		}
		ops = append(ops, op)
	}
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}

	if len(ops) < 2 {
		return rowOnly("no scan to batch")
	}
	if _, ok := ops[0].(*Start); !ok {
		return rowOnly("leaf is not Start")
	}
	switch ops[1].(type) {
	case *AllNodesScan, *NodeByLabelScan,
		*NodeIndexSeek, *NodeIndexRangeSeek, *NodeIndexPrefixSeek:
		// Every partitionable leaf enumerates a node set, which the scan
		// kernel chunks into batches.
	default:
		return rowOnly(ops[1].Describe() + " is not a batchable scan")
	}

	info := &VectorInfo{Eligible: true, Scan: ops[1]}
	for _, op := range ops[2:] {
		ok, reason := batchSafe(op)
		if !ok {
			info.Boundary = reason
			break
		}
		info.Batched = append(info.Batched, op)
	}
	if len(info.Batched) == 0 {
		reason := info.Boundary
		if reason == "" {
			reason = "no per-row work above the scan"
		}
		return rowOnly(reason)
	}
	return info
}

// describeBatched renders the batched segment for EXPLAIN:
// "batched NodeByLabelScan(p:Person) -> filter -> project".
func (v *VectorInfo) describeBatched() string {
	var sb strings.Builder
	sb.WriteString("batched ")
	sb.WriteString(v.Scan.Describe())
	for _, op := range v.Batched {
		sb.WriteString(" -> ")
		sb.WriteString(KernelName(op))
	}
	return sb.String()
}
