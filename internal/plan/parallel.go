package plan

// Parallel-safety analysis for morsel-driven execution. A plan qualifies
// when it is a read-only linear operator chain whose leaf is a full scan
// (AllNodesScan or NodeByLabelScan) directly over Start: the scan is then
// partitioned into morsels, the contiguous run of per-row streaming
// operators above it executes inside a worker pool, and everything above the
// first pipeline breaker runs serially over the merged stream.
//
// The analysis is purely structural, so the planner computes it once per
// compiled plan and the executor reuses it on every run (plans are cached).

// ParallelInfo is the result of analysing a plan for morsel-driven
// execution. When Safe is false, Reason says why the plan falls back to the
// serial path (surfaced by EXPLAIN).
type ParallelInfo struct {
	// Safe reports whether the plan can execute with morsel parallelism.
	Safe bool
	// Reason is the fallback explanation when Safe is false.
	Reason string

	// Scan is the partitionable leaf (AllNodesScan or NodeByLabelScan).
	Scan Operator
	// Streaming lists the per-row operators executed inside workers, in
	// bottom-up order (closest to the scan first).
	Streaming []Operator
	// Agg, when non-nil, is an Aggregate evaluated with morsel-local partial
	// states that are combined at the barrier (in morsel order, so group
	// order matches the serial engine).
	Agg *Aggregate
	// Rest lists the operators above the merge point, in bottom-up order;
	// they run serially over the merged stream.
	Rest []Operator
	// Ordered reports whether the merge must preserve morsel order (the
	// serial row order). It is set when Rest contains a Sort — so that
	// stable-sort tie-breaking is byte-identical to serial execution — a
	// Distinct, whose surviving representative row depends on input order,
	// or an Aggregate, whose group order and collect() results do too.
	// Otherwise the merge is a cheap unordered append.
	Ordered bool
}

// serial returns a non-eligible analysis with the given fallback reason.
func serial(reason string) *ParallelInfo {
	return &ParallelInfo{Safe: false, Reason: reason}
}

// streamingSafe reports whether the operator is a per-row streaming operator
// that may run inside a morsel worker: it reads only the graph and its input
// row, and carries no state across rows. Expand qualifies in all its forms —
// relationship-uniqueness (UniqueRels/UniqueNodes) is tracked per input row,
// and a row never spans two morsels, so there is no uniqueness coupling
// across partitions.
func streamingSafe(op Operator) bool {
	switch op.(type) {
	case *Filter, *Expand, *Project, *Unwind, *ProjectPath, *Optional, *SelectColumns:
		return true
	}
	return false
}

// AnalyzeParallelism decomposes the plan for morsel-driven execution, or
// explains why it must stay serial.
func AnalyzeParallelism(p *Plan) *ParallelInfo {
	if !p.ReadOnly {
		return serial("updating query")
	}

	// Flatten the operator chain leaf-first. Union has two inputs and
	// Source() only follows the left one, so its presence ends the walk.
	var ops []Operator
	for op := p.Root; op != nil; op = op.Source() {
		if _, ok := op.(*Union); ok {
			return serial("UNION combines two plans")
		}
		ops = append(ops, op)
	}
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}

	if len(ops) < 2 {
		return serial("no scan to partition")
	}
	if _, ok := ops[0].(*Start); !ok {
		return serial("leaf is not Start")
	}
	switch ops[1].(type) {
	case *AllNodesScan, *NodeByLabelScan,
		*NodeIndexSeek, *NodeIndexRangeSeek, *NodeIndexPrefixSeek:
		// Index seeks in leaf position (directly over Start) evaluate their
		// bound expressions once — parameters and literals only, since no
		// pattern variable is in scope at the leaf — and then enumerate a
		// node set just like a scan, so the executor partitions that set
		// into morsels the same way.
	default:
		return serial(ops[1].Describe() + " is not a partitionable scan")
	}

	info := &ParallelInfo{Safe: true, Scan: ops[1]}
	inStreaming := true
	// barrierBelow records whether a Sort or Aggregate sits below the
	// current operator; SKIP/LIMIT above such a barrier cannot exit early
	// (the barrier materialises everything anyway), below one they can, and
	// the serial engine's early exit must be preserved.
	barrierBelow := false
	for _, op := range ops[2:] {
		if inStreaming {
			if streamingSafe(op) {
				info.Streaming = append(info.Streaming, op)
				continue
			}
			inStreaming = false
			if agg, ok := op.(*Aggregate); ok {
				info.Agg = agg
				barrierBelow = true
				continue
			}
		}
		switch o := op.(type) {
		case *Filter, *Expand, *Project, *Unwind, *ProjectPath, *Optional,
			*SelectColumns, *AllNodesScan, *NodeByLabelScan, *NodeIndexSeek,
			*NodeIndexRangeSeek, *NodeIndexPrefixSeek:
			info.Rest = append(info.Rest, op)
		case *Aggregate:
			// An aggregate running serially above the merge is fed the
			// merged stream directly, and collect()/first-seen group order
			// are input-order-sensitive — require the ordered merge.
			info.Rest = append(info.Rest, op)
			info.Ordered = true
			barrierBelow = true
		case *Sort:
			info.Rest = append(info.Rest, op)
			info.Ordered = true
			barrierBelow = true
		case *Distinct:
			info.Rest = append(info.Rest, op)
			info.Ordered = true
		case *Skip, *Limit:
			if !barrierBelow {
				return serial(o.Describe() + " depends on serial early exit")
			}
			info.Rest = append(info.Rest, op)
		default:
			return serial(op.Describe() + " is not parallel-safe")
		}
	}
	if len(info.Streaming) == 0 && info.Agg == nil {
		return serial("no per-row work above the scan")
	}
	return info
}
