// Package plan defines the logical/physical operator algebra that Cypher
// queries are compiled into. The operator set mirrors the one the paper
// sketches for Neo4j's runtime (Section 2 "Neo4j implementation"): the usual
// relational operators plus Expand, which follows the graph's direct
// node-to-relationship references, and its variable-length variant.
//
// A plan is a tree of operators; every non-leaf operator consumes the rows of
// its Input. Query execution starts from the Start operator, which produces
// the unit table containing a single empty record (T() in the paper).
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/result"
)

// Operator is a node in a query plan.
type Operator interface {
	// Describe returns a one-line description used by EXPLAIN.
	Describe() string
	// Source returns the input operator, or nil for leaves.
	Source() Operator
}

// Plan is a complete compiled query: the operator tree plus the output
// column names in order.
type Plan struct {
	Root    Operator
	Columns []string
	// ReadOnly reports whether executing the plan cannot modify the graph.
	ReadOnly bool
	// Parallel is the morsel-parallelism analysis of the plan (set by the
	// planner; nil for hand-built plans, which the executor analyses lazily).
	Parallel *ParallelInfo
	// Vector is the batched-execution analysis of the plan (set by the
	// planner; nil for hand-built plans, which the executor analyses lazily).
	Vector *VectorInfo
	// Slots maps every name the plan can bind to a fixed row slot (set by the
	// planner via ComputeSlots; nil for hand-built plans, which the executor
	// computes lazily). The executor's rows are slices indexed by these slots.
	Slots *result.SlotTable
	// Est carries the planner's cardinality/cost estimates per operator
	// (surfaced by EXPLAIN; nil for hand-built plans). The map is frozen
	// after planning: plans are shared via the plan cache.
	Est map[Operator]Estimate
}

// Estimate is the planner's prediction for one operator: the number of rows
// it emits and the cumulative cost (rows touched) of the subtree rooted at
// it. See the "Cost model & statistics" section of docs/ARCHITECTURE.md for
// the estimation formulas.
type Estimate struct {
	Rows float64
	Cost float64
}

// fmtEst renders an estimate figure compactly and deterministically for
// EXPLAIN output (golden-tested): one decimal below 10, integers above.
func fmtEst(v float64) string {
	if v < 10 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// String renders the plan operator tree, one operator per line, leaf last,
// followed by the plan's parallel eligibility when it has been analysed.
func (p *Plan) String() string {
	var lines []string
	for op := p.Root; op != nil; op = op.Source() {
		line := op.Describe()
		if e, ok := p.Est[op]; ok {
			line += " [rows~" + fmtEst(e.Rows) + " cost~" + fmtEst(e.Cost) + "]"
		}
		lines = append(lines, line)
	}
	var sb strings.Builder
	for i, l := range lines {
		sb.WriteString(strings.Repeat("  ", i))
		sb.WriteString("+ ")
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	if p.Parallel != nil {
		if p.Parallel.Safe {
			merge := "unordered merge"
			if p.Parallel.Ordered {
				merge = "ordered merge"
			}
			agg := ""
			if p.Parallel.Agg != nil {
				agg = ", partial aggregation"
			}
			fmt.Fprintf(&sb, "parallel: eligible (morsel-driven %s, %s%s)\n",
				p.Parallel.Scan.Describe(), merge, agg)
		} else {
			fmt.Fprintf(&sb, "parallel: serial (%s)\n", p.Parallel.Reason)
		}
	}
	if p.Vector != nil {
		if p.Vector.Eligible {
			boundary := ""
			if p.Vector.Boundary != "" {
				boundary = "; " + p.Vector.Boundary
			}
			fmt.Fprintf(&sb, "vectorized: eligible (%s%s)\n",
				p.Vector.describeBatched(), boundary)
		} else {
			fmt.Fprintf(&sb, "vectorized: row-at-a-time (%s)\n", p.Vector.Reason)
		}
	}
	return sb.String()
}

// ProjectionItem is one named projection expression.
type ProjectionItem struct {
	Name string
	Expr ast.Expr
}

// AggregationItem is one aggregating expression in an Aggregate operator.
type AggregationItem struct {
	Name     string
	Func     string // "count", "collect", "sum", "avg", "min", "max"
	Distinct bool
	Arg      ast.Expr // nil for count(*)
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr       ast.Expr
	Descending bool
}

// --- Leaves ---

// Start produces the unit table: a single empty record.
type Start struct{}

// Argument produces the current outer row inside an Optional (or other
// apply-style) operator.
type Argument struct{}

// --- Scans and expansion ---

// AllNodesScan binds Var to every node of the graph, once per input row.
type AllNodesScan struct {
	Input Operator
	Var   string
}

// NodeByLabelScan binds Var to every node carrying Label, using the label
// index.
type NodeByLabelScan struct {
	Input Operator
	Var   string
	Label string
}

// NodeIndexSeek binds Var to the nodes with Label whose Property equals the
// value of Value, using a property index when available. With In set, Value
// must evaluate to a list and the seek unions the buckets of its distinct
// non-null elements (an IN-list seek).
type NodeIndexSeek struct {
	Input    Operator
	Var      string
	Label    string
	Property string
	Value    ast.Expr
	In       bool
}

// NodeIndexRangeSeek binds Var to the nodes with Label whose Property lies in
// the range (Lo, Hi) — either bound may be nil for a half-open range — using
// the ordered form of the property index. Inclusivity per bound follows
// LoInc/HiInc (`>=`/`<=` versus `>`/`<`).
type NodeIndexRangeSeek struct {
	Input        Operator
	Var          string
	Label        string
	Property     string
	Lo, Hi       ast.Expr // nil = unbounded on that side
	LoInc, HiInc bool
}

// NodeIndexPrefixSeek binds Var to the nodes with Label whose string-valued
// Property starts with the value of Prefix (STARTS WITH), using the ordered
// form of the property index.
type NodeIndexPrefixSeek struct {
	Input    Operator
	Var      string
	Label    string
	Property string
	Prefix   ast.Expr
}

// Expand traverses relationships from the node bound to FromVar, binding
// RelVar to the relationship and ToVar to the other endpoint. It implements
// both the single-hop Expand of the paper and, when VarLength is set, the
// variable-length expansion used by patterns such as [:CITES*] (RelVar is
// then bound to the list of traversed relationships).
type Expand struct {
	Input     Operator
	FromVar   string
	RelVar    string
	ToVar     string
	Types     []string
	Direction ast.Direction
	// Variable-length expansion ("transitive closure" patterns).
	VarLength bool
	MinHops   int // -1 when unspecified (defaults to 1)
	MaxHops   int // -1 when unspecified (defaults to unbounded)
	// ExpandInto is set when ToVar is already bound: the expansion checks the
	// endpoint instead of binding it.
	ExpandInto bool
	// RelProperties carries inline property predicates on the relationship
	// pattern, e.g. -[:KNOWS {since: 1985}]-.
	RelProperties *ast.MapLiteral
	// UniqueRels lists relationship variables bound earlier in the same MATCH
	// clause; under Cypher's relationship-isomorphism semantics the newly
	// traversed relationships must be distinct from all of them.
	UniqueRels []string
	// UniqueNodes lists node variables bound earlier in the same MATCH
	// clause; used only under node-isomorphism matching semantics.
	UniqueNodes []string
}

// Filter keeps only rows for which Predicate evaluates to true.
type Filter struct {
	Input     Operator
	Predicate ast.Expr
}

// Optional implements OPTIONAL MATCH: for every input row the Inner plan
// (rooted at an Argument) is evaluated; if it produces no rows, one row is
// emitted with the IntroducedVars bound to null.
type Optional struct {
	Input          Operator
	Inner          Operator
	IntroducedVars []string
}

// ProjectPath binds Var to the path value matched by the pattern part (named
// paths: p = (a)-[:X*]->(b)).
type ProjectPath struct {
	Input Operator
	Var   string
	Part  ast.PatternPart
}

// --- Row operators ---

// Unwind expands a list-valued expression into one row per element.
type Unwind struct {
	Input Operator
	Expr  ast.Expr
	Alias string
}

// Project adds the named projection expressions to each row, keeping existing
// columns (pruning is done separately by SelectColumns so that ORDER BY can
// still see pre-projection variables).
type Project struct {
	Input Operator
	Items []ProjectionItem
}

// Aggregate groups rows by the grouping expressions and computes the
// aggregations per group. Its output rows contain only the grouping and
// aggregation columns.
type Aggregate struct {
	Input        Operator
	Grouping     []ProjectionItem
	Aggregations []AggregationItem
}

// Distinct removes duplicate rows, considering only Columns.
type Distinct struct {
	Input   Operator
	Columns []string
}

// Sort orders rows by the sort keys.
type Sort struct {
	Input Operator
	Keys  []SortKey
}

// Skip discards the first Count rows.
type Skip struct {
	Input Operator
	Count ast.Expr
}

// Limit keeps at most Count rows.
type Limit struct {
	Input Operator
	Count ast.Expr
}

// SelectColumns restricts each row to the named columns (the scope cut
// performed by WITH, and the final projection of RETURN).
type SelectColumns struct {
	Input   Operator
	Columns []string
}

// Union combines the results of two plans; when All is false, duplicate rows
// are removed (set union).
type Union struct {
	Left    Operator
	Right   Operator
	All     bool
	Columns []string
}

// --- Updating operators ---

// CreateOp creates the nodes and relationships of the pattern for every input
// row, binding the new entities to their pattern variables.
type CreateOp struct {
	Input   Operator
	Pattern ast.Pattern
}

// MergeOp matches the pattern part and, if no match exists for the row,
// creates it (running the respective ON MATCH / ON CREATE SET items).
type MergeOp struct {
	Input    Operator
	Part     ast.PatternPart
	OnCreate []ast.SetItem
	OnMatch  []ast.SetItem
}

// DeleteOp deletes the entities denoted by Exprs.
type DeleteOp struct {
	Input  Operator
	Detach bool
	Exprs  []ast.Expr
}

// SetOp applies SET items (property and label updates).
type SetOp struct {
	Input Operator
	Items []ast.SetItem
}

// RemoveOp applies REMOVE items.
type RemoveOp struct {
	Input Operator
	Items []ast.RemoveItem
}

// --- Operator interface implementations ---

// Describe implementations.

func (*Start) Describe() string    { return "Start" }
func (*Argument) Describe() string { return "Argument" }
func (o *AllNodesScan) Describe() string {
	return fmt.Sprintf("AllNodesScan(%s)", o.Var)
}
func (o *NodeByLabelScan) Describe() string {
	return fmt.Sprintf("NodeByLabelScan(%s:%s)", o.Var, o.Label)
}
func (o *NodeIndexSeek) Describe() string {
	op := "="
	if o.In {
		op = "IN"
	}
	return fmt.Sprintf("NodeIndexSeek(%s:%s {%s %s %s})", o.Var, o.Label, o.Property, op, o.Value.String())
}
func (o *NodeIndexRangeSeek) Describe() string {
	var bounds []string
	if o.Lo != nil {
		op := ">"
		if o.LoInc {
			op = ">="
		}
		bounds = append(bounds, fmt.Sprintf("%s %s %s", o.Property, op, o.Lo.String()))
	}
	if o.Hi != nil {
		op := "<"
		if o.HiInc {
			op = "<="
		}
		bounds = append(bounds, fmt.Sprintf("%s %s %s", o.Property, op, o.Hi.String()))
	}
	return fmt.Sprintf("NodeIndexRangeSeek(%s:%s {%s})", o.Var, o.Label, strings.Join(bounds, ", "))
}
func (o *NodeIndexPrefixSeek) Describe() string {
	return fmt.Sprintf("NodeIndexPrefixSeek(%s:%s {%s STARTS WITH %s})", o.Var, o.Label, o.Property, o.Prefix.String())
}
func (o *Expand) Describe() string {
	kind := "Expand"
	if o.VarLength {
		kind = "VarLengthExpand"
	}
	if o.ExpandInto {
		kind += "Into"
	}
	types := ""
	if len(o.Types) > 0 {
		types = ":" + strings.Join(o.Types, "|")
	}
	arrow := "-->"
	if o.Direction == ast.DirIncoming {
		arrow = "<--"
	} else if o.Direction == ast.DirBoth {
		arrow = "--"
	}
	return fmt.Sprintf("%s((%s)%s[%s%s](%s))", kind, o.FromVar, arrow, o.RelVar, types, o.ToVar)
}
func (o *Filter) Describe() string   { return "Filter(" + o.Predicate.String() + ")" }
func (o *Optional) Describe() string { return "Optional" }
func (o *ProjectPath) Describe() string {
	return fmt.Sprintf("ProjectPath(%s = %s)", o.Var, o.Part.String())
}
func (o *Unwind) Describe() string { return fmt.Sprintf("Unwind(%s AS %s)", o.Expr.String(), o.Alias) }
func (o *Project) Describe() string {
	parts := make([]string, len(o.Items))
	for i, it := range o.Items {
		parts[i] = it.Expr.String() + " AS " + it.Name
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}
func (o *Aggregate) Describe() string {
	var parts []string
	for _, g := range o.Grouping {
		parts = append(parts, g.Name)
	}
	for _, a := range o.Aggregations {
		if a.Arg == nil {
			parts = append(parts, a.Name+": count(*)")
		} else {
			parts = append(parts, fmt.Sprintf("%s: %s(%s)", a.Name, a.Func, a.Arg.String()))
		}
	}
	return "Aggregate(" + strings.Join(parts, ", ") + ")"
}
func (o *Distinct) Describe() string { return "Distinct(" + strings.Join(o.Columns, ", ") + ")" }
func (o *Sort) Describe() string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.Expr.String()
		if k.Descending {
			parts[i] += " DESC"
		}
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}
func (o *Skip) Describe() string  { return "Skip(" + o.Count.String() + ")" }
func (o *Limit) Describe() string { return "Limit(" + o.Count.String() + ")" }
func (o *SelectColumns) Describe() string {
	return "SelectColumns(" + strings.Join(o.Columns, ", ") + ")"
}
func (o *Union) Describe() string {
	if o.All {
		return "UnionAll"
	}
	return "Union"
}
func (o *CreateOp) Describe() string { return "Create(" + o.Pattern.String() + ")" }
func (o *MergeOp) Describe() string  { return "Merge(" + o.Part.String() + ")" }
func (o *DeleteOp) Describe() string {
	parts := make([]string, len(o.Exprs))
	for i, e := range o.Exprs {
		parts[i] = e.String()
	}
	kind := "Delete"
	if o.Detach {
		kind = "DetachDelete"
	}
	return kind + "(" + strings.Join(parts, ", ") + ")"
}
func (o *SetOp) Describe() string    { return "Set" }
func (o *RemoveOp) Describe() string { return "Remove" }

// Source implementations.

func (*Start) Source() Operator                 { return nil }
func (*Argument) Source() Operator              { return nil }
func (o *AllNodesScan) Source() Operator        { return o.Input }
func (o *NodeByLabelScan) Source() Operator     { return o.Input }
func (o *NodeIndexSeek) Source() Operator       { return o.Input }
func (o *NodeIndexRangeSeek) Source() Operator  { return o.Input }
func (o *NodeIndexPrefixSeek) Source() Operator { return o.Input }
func (o *Expand) Source() Operator              { return o.Input }
func (o *Filter) Source() Operator              { return o.Input }
func (o *Optional) Source() Operator            { return o.Input }
func (o *ProjectPath) Source() Operator         { return o.Input }
func (o *Unwind) Source() Operator              { return o.Input }
func (o *Project) Source() Operator             { return o.Input }
func (o *Aggregate) Source() Operator           { return o.Input }
func (o *Distinct) Source() Operator            { return o.Input }
func (o *Sort) Source() Operator                { return o.Input }
func (o *Skip) Source() Operator                { return o.Input }
func (o *Limit) Source() Operator               { return o.Input }
func (o *SelectColumns) Source() Operator       { return o.Input }
func (o *Union) Source() Operator               { return o.Left }
func (o *CreateOp) Source() Operator            { return o.Input }
func (o *MergeOp) Source() Operator             { return o.Input }
func (o *DeleteOp) Source() Operator            { return o.Input }
func (o *SetOp) Source() Operator               { return o.Input }
func (o *RemoveOp) Source() Operator            { return o.Input }
