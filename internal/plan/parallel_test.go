package plan

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func analyzed(root Operator, readOnly bool) *ParallelInfo {
	return AnalyzeParallelism(&Plan{Root: root, Columns: []string{"x"}, ReadOnly: readOnly})
}

func TestAnalyzeParallelismStreaming(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	scan := &NodeByLabelScan{Input: &Start{}, Var: "n", Label: "Person"}
	filter := &Filter{Input: scan, Predicate: v("ok")}
	expand := &Expand{Input: filter, FromVar: "n", RelVar: "r", ToVar: "m", Direction: ast.DirOutgoing}
	project := &Project{Input: expand, Items: []ProjectionItem{{Name: "x", Expr: v("m")}}}
	sel := &SelectColumns{Input: project, Columns: []string{"x"}}

	info := analyzed(sel, true)
	if !info.Safe {
		t.Fatalf("streaming pipeline should be parallel-safe, got: %s", info.Reason)
	}
	if info.Scan != scan {
		t.Errorf("scan not identified")
	}
	if len(info.Streaming) != 4 || info.Agg != nil || len(info.Rest) != 0 {
		t.Errorf("decomposition wrong: %d streaming, agg=%v, %d rest",
			len(info.Streaming), info.Agg, len(info.Rest))
	}
	if info.Ordered {
		t.Errorf("pure streaming plan should use the unordered merge")
	}
}

func TestAnalyzeParallelismAggregateAndSort(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	lit := func(i int64) ast.Expr { return &ast.Literal{Value: value.NewInt(i)} }
	scan := &AllNodesScan{Input: &Start{}, Var: "n"}
	agg := &Aggregate{Input: scan, Grouping: []ProjectionItem{{Name: "g", Expr: v("g")}},
		Aggregations: []AggregationItem{{Name: "c", Func: "count"}}}
	project := &Project{Input: agg, Items: []ProjectionItem{{Name: "x", Expr: v("c")}}}
	sortOp := &Sort{Input: project, Keys: []SortKey{{Expr: v("x")}}}
	limit := &Limit{Input: sortOp, Count: lit(1)}
	sel := &SelectColumns{Input: limit, Columns: []string{"x"}}

	info := analyzed(sel, true)
	if !info.Safe {
		t.Fatalf("aggregate+sort+limit plan should be parallel-safe, got: %s", info.Reason)
	}
	if info.Agg != agg {
		t.Errorf("aggregate not captured for partial aggregation")
	}
	if !info.Ordered {
		t.Errorf("a Sort above the barrier should force the ordered merge")
	}
	if len(info.Rest) != 4 { // Project, Sort, Limit, SelectColumns
		t.Errorf("rest should hold the 4 serial tail operators, got %d", len(info.Rest))
	}
}

func TestAnalyzeParallelismAggregateInRestForcesOrderedMerge(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	scan := &NodeByLabelScan{Input: &Start{}, Var: "p", Label: "Person"}
	filter := &Filter{Input: scan, Predicate: v("ok")}
	// A second scan ends the streaming segment, so the aggregate lands in
	// Rest instead of being captured for partial aggregation.
	scan2 := &NodeByLabelScan{Input: filter, Var: "t", Label: "Team"}
	agg := &Aggregate{Input: scan2, Grouping: []ProjectionItem{{Name: "g", Expr: v("t")}},
		Aggregations: []AggregationItem{{Name: "names", Func: "collect", Arg: v("p")}}}

	info := analyzed(agg, true)
	if !info.Safe {
		t.Fatalf("plan should stay parallel-safe, got: %s", info.Reason)
	}
	if info.Agg != nil {
		t.Errorf("aggregate behind a second scan must not use partial aggregation")
	}
	if !info.Ordered {
		t.Errorf("an Aggregate in the serial tail must force the ordered merge (collect/group order are input-order-sensitive)")
	}
}

func TestAnalyzeParallelismFallbacks(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	lit := func(i int64) ast.Expr { return &ast.Literal{Value: value.NewInt(i)} }
	scan := &NodeByLabelScan{Input: &Start{}, Var: "n", Label: "Person"}
	project := &Project{Input: scan, Items: []ProjectionItem{{Name: "x", Expr: v("n")}}}

	cases := []struct {
		name   string
		root   Operator
		ro     bool
		reason string
	}{
		{"updating", &CreateOp{Input: &Start{}}, false, "updating"},
		{"union", &Union{Left: project, Right: project, Columns: []string{"x"}}, true, "UNION"},
		{"limit-early-exit", &Limit{Input: project, Count: lit(3)}, true, "early exit"},
		{"skip-early-exit", &Skip{Input: project, Count: lit(3)}, true, "early exit"},
		{"argument-leaf", &Project{Input: &Argument{}, Items: []ProjectionItem{{Name: "x", Expr: v("n")}}}, true, "leaf is not Start"},
		{"bare-scan", scan, true, "no per-row work"},
	}
	for _, c := range cases {
		info := analyzed(c.root, c.ro)
		if info.Safe {
			t.Errorf("%s: should not be parallel-safe", c.name)
			continue
		}
		if !strings.Contains(info.Reason, c.reason) {
			t.Errorf("%s: reason %q should mention %q", c.name, info.Reason, c.reason)
		}
	}
}

func TestAnalyzeParallelismSeekLeaves(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	lit := func(i int64) ast.Expr { return &ast.Literal{Value: value.NewInt(i)} }
	items := []ProjectionItem{{Name: "x", Expr: v("n")}}
	leaves := []Operator{
		&NodeIndexSeek{Input: &Start{}, Var: "n", Label: "P", Property: "k", Value: lit(1)},
		&NodeIndexRangeSeek{Input: &Start{}, Var: "n", Label: "P", Property: "k", Lo: lit(1)},
		&NodeIndexPrefixSeek{Input: &Start{}, Var: "n", Label: "P", Property: "k", Prefix: lit(1)},
	}
	for _, leaf := range leaves {
		info := analyzed(&Project{Input: leaf, Items: items}, true)
		if !info.Safe {
			t.Errorf("%s leaf should be a partitionable scan: %s", leaf.Describe(), info.Reason)
		} else if info.Scan != leaf {
			t.Errorf("%s: partitionable leaf should be the seek itself", leaf.Describe())
		}
	}
}

func TestPlanStringReportsParallel(t *testing.T) {
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }
	scan := &NodeByLabelScan{Input: &Start{}, Var: "n", Label: "Person"}
	project := &Project{Input: scan, Items: []ProjectionItem{{Name: "x", Expr: v("n")}}}
	p := &Plan{Root: project, Columns: []string{"x"}, ReadOnly: true}
	if strings.Contains(p.String(), "parallel:") {
		t.Errorf("un-analysed plan should not print a parallel line:\n%s", p.String())
	}
	p.Parallel = AnalyzeParallelism(p)
	if !strings.Contains(p.String(), "parallel: eligible") {
		t.Errorf("analysed plan should print its eligibility:\n%s", p.String())
	}
}
