package plan

import "repro/internal/result"

// ComputeSlots walks the finished operator tree and assigns a fixed slot to
// every name any operator can bind: scan/expand variables, projection and
// aggregation column names, UNWIND aliases, path variables, CREATE/MERGE
// pattern variables, and the plan's output columns. The executor carries rows
// as slot-indexed slices (result.NewSlotted); names outside the table — e.g.
// list-comprehension binders that only exist during expression evaluation —
// fall back to a record's overflow map.
//
// The returned table is frozen: plans are shared by concurrent queries via
// the plan cache, and the slot table with them.
func ComputeSlots(p *Plan) *result.SlotTable {
	t := result.NewSlotTable()
	var walk func(op Operator)
	walk = func(op Operator) {
		if op == nil {
			return
		}
		switch o := op.(type) {
		case *AllNodesScan:
			walk(o.Input)
			t.Add(o.Var)
		case *NodeByLabelScan:
			walk(o.Input)
			t.Add(o.Var)
		case *NodeIndexSeek:
			walk(o.Input)
			t.Add(o.Var)
		case *NodeIndexRangeSeek:
			walk(o.Input)
			t.Add(o.Var)
		case *NodeIndexPrefixSeek:
			walk(o.Input)
			t.Add(o.Var)
		case *Expand:
			walk(o.Input)
			t.Add(o.FromVar)
			t.Add(o.RelVar)
			t.Add(o.ToVar)
		case *Optional:
			walk(o.Input)
			walk(o.Inner)
			for _, v := range o.IntroducedVars {
				t.Add(v)
			}
		case *ProjectPath:
			walk(o.Input)
			t.Add(o.Var)
		case *Unwind:
			walk(o.Input)
			t.Add(o.Alias)
		case *Project:
			walk(o.Input)
			for _, it := range o.Items {
				t.Add(it.Name)
			}
		case *Aggregate:
			walk(o.Input)
			for _, g := range o.Grouping {
				t.Add(g.Name)
			}
			for _, a := range o.Aggregations {
				t.Add(a.Name)
			}
		case *Distinct:
			walk(o.Input)
			for _, c := range o.Columns {
				t.Add(c)
			}
		case *SelectColumns:
			walk(o.Input)
			for _, c := range o.Columns {
				t.Add(c)
			}
		case *Union:
			walk(o.Left)
			walk(o.Right)
			for _, c := range o.Columns {
				t.Add(c)
			}
		case *CreateOp:
			walk(o.Input)
			for _, v := range o.Pattern.Variables() {
				t.Add(v)
			}
		case *MergeOp:
			walk(o.Input)
			for _, v := range o.Part.Variables() {
				t.Add(v)
			}
		default:
			// Filter, Sort, Skip, Limit, Delete/Set/Remove and synthetic
			// runtime sources bind nothing themselves.
			walk(op.Source())
		}
	}
	walk(p.Root)
	for _, c := range p.Columns {
		t.Add(c)
	}
	return t
}
