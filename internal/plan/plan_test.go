package plan

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func TestDescribeAndSource(t *testing.T) {
	lit := func(i int64) ast.Expr { return &ast.Literal{Value: value.NewInt(i)} }
	v := func(n string) ast.Expr { return &ast.Variable{Name: n} }

	start := &Start{}
	scan := &NodeByLabelScan{Input: start, Var: "n", Label: "Person"}
	seek := &NodeIndexSeek{Input: start, Var: "n", Label: "Person", Property: "name", Value: lit(1)}
	all := &AllNodesScan{Input: start, Var: "n"}
	expand := &Expand{Input: scan, FromVar: "n", RelVar: "r", ToVar: "m", Types: []string{"KNOWS"}, Direction: ast.DirOutgoing}
	varExpand := &Expand{Input: scan, FromVar: "n", RelVar: "r", ToVar: "m", Direction: ast.DirIncoming, VarLength: true, ExpandInto: true}
	filter := &Filter{Input: expand, Predicate: v("ok")}
	optional := &Optional{Input: scan, Inner: &Argument{}, IntroducedVars: []string{"m"}}
	pp := &ProjectPath{Input: expand, Var: "p", Part: ast.PatternPart{Nodes: []ast.NodePattern{{Variable: "n"}}}}
	unwind := &Unwind{Input: start, Expr: v("xs"), Alias: "x"}
	project := &Project{Input: filter, Items: []ProjectionItem{{Name: "name", Expr: v("n")}}}
	agg := &Aggregate{Input: project, Grouping: []ProjectionItem{{Name: "g", Expr: v("g")}}, Aggregations: []AggregationItem{{Name: "c", Func: "count"}, {Name: "s", Func: "sum", Arg: v("x")}}}
	distinct := &Distinct{Input: agg, Columns: []string{"g"}}
	sortOp := &Sort{Input: distinct, Keys: []SortKey{{Expr: v("g"), Descending: true}}}
	skip := &Skip{Input: sortOp, Count: lit(1)}
	limit := &Limit{Input: skip, Count: lit(2)}
	sel := &SelectColumns{Input: limit, Columns: []string{"g", "c"}}
	union := &Union{Left: sel, Right: sel, All: true, Columns: []string{"g"}}
	unionD := &Union{Left: sel, Right: sel, Columns: []string{"g"}}
	create := &CreateOp{Input: start, Pattern: ast.Pattern{Parts: []ast.PatternPart{{Nodes: []ast.NodePattern{{Variable: "n"}}}}}}
	merge := &MergeOp{Input: start, Part: ast.PatternPart{Nodes: []ast.NodePattern{{Variable: "n"}}}}
	del := &DeleteOp{Input: start, Detach: true, Exprs: []ast.Expr{v("n")}}
	set := &SetOp{Input: start}
	remove := &RemoveOp{Input: start}
	arg := &Argument{}

	cases := []struct {
		op       Operator
		contains string
		source   Operator
	}{
		{start, "Start", nil},
		{arg, "Argument", nil},
		{all, "AllNodesScan(n)", start},
		{scan, "NodeByLabelScan(n:Person)", start},
		{seek, "NodeIndexSeek(n:Person {name = 1})", start},
		{expand, "Expand((n)-->[r:KNOWS](m))", scan},
		{varExpand, "VarLengthExpandInto((n)<--[r](m))", scan},
		{filter, "Filter(ok)", expand},
		{optional, "Optional", scan},
		{pp, "ProjectPath(p = (n))", expand},
		{unwind, "Unwind(xs AS x)", start},
		{project, "Project(n AS name)", filter},
		{agg, "Aggregate(g, c: count(*), s: sum(x))", project},
		{distinct, "Distinct(g)", agg},
		{sortOp, "Sort(g DESC)", distinct},
		{skip, "Skip(1)", sortOp},
		{limit, "Limit(2)", skip},
		{sel, "SelectColumns(g, c)", limit},
		{union, "UnionAll", sel},
		{unionD, "Union", sel},
		{create, "Create((n))", start},
		{merge, "Merge((n))", start},
		{del, "DetachDelete(n)", start},
		{set, "Set", start},
		{remove, "Remove", start},
	}
	for _, c := range cases {
		if got := c.op.Describe(); !strings.Contains(got, c.contains) {
			t.Errorf("Describe() = %q, want it to contain %q", got, c.contains)
		}
		if got := c.op.Source(); got != c.source {
			t.Errorf("%T.Source() = %v, want %v", c.op, got, c.source)
		}
	}
	if (&DeleteOp{Input: start, Exprs: []ast.Expr{v("n")}}).Describe() != "Delete(n)" {
		t.Errorf("non-detach delete describe wrong")
	}
	if (&Expand{Input: scan, FromVar: "a", ToVar: "b", Direction: ast.DirBoth}).Describe() != "Expand((a)--[](b))" {
		t.Errorf("undirected expand describe wrong")
	}
}

func TestPlanString(t *testing.T) {
	start := &Start{}
	scan := &NodeByLabelScan{Input: start, Var: "n", Label: "Person"}
	sel := &SelectColumns{Input: scan, Columns: []string{"n"}}
	p := &Plan{Root: sel, Columns: []string{"n"}, ReadOnly: true}
	s := p.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("plan rendering should have 3 lines:\n%s", s)
	}
	if !strings.Contains(lines[0], "SelectColumns") || !strings.Contains(lines[1], "NodeByLabelScan") || !strings.Contains(lines[2], "Start") {
		t.Errorf("plan rendering order wrong:\n%s", s)
	}
	if !strings.HasPrefix(lines[1], "  + ") {
		t.Errorf("plan rendering should indent children:\n%s", s)
	}
}
