package tck

// BuiltinScenarios is a conformance suite over the core language, organised
// roughly like the openCypher TCK feature areas: match, optional match,
// where, with, return, unwind, union, aggregation, expressions, and updates.
func BuiltinScenarios() []Scenario {
	movies := []string{
		`CREATE (keanu:Person {name: 'Keanu', born: 1964}),
		        (carrie:Person {name: 'Carrie', born: 1967}),
		        (laurence:Person {name: 'Laurence', born: 1961}),
		        (matrix:Movie {title: 'The Matrix', released: 1999}),
		        (speed:Movie {title: 'Speed', released: 1994}),
		        (keanu)-[:ACTED_IN {role: 'Neo'}]->(matrix),
		        (carrie)-[:ACTED_IN {role: 'Trinity'}]->(matrix),
		        (laurence)-[:ACTED_IN {role: 'Morpheus'}]->(matrix),
		        (keanu)-[:ACTED_IN {role: 'Jack'}]->(speed)`,
	}
	return []Scenario{
		// --- MATCH ---
		{
			Name:    "match all nodes of a label",
			Setup:   movies,
			Query:   "MATCH (m:Movie) RETURN m.title AS title",
			Columns: []string{"title"},
			Rows:    [][]any{{"The Matrix"}, {"Speed"}},
		},
		{
			Name:    "match with inline properties",
			Setup:   movies,
			Query:   "MATCH (p:Person {name: 'Keanu'})-[:ACTED_IN]->(m) RETURN m.title AS title",
			Columns: []string{"title"},
			Rows:    [][]any{{"The Matrix"}, {"Speed"}},
		},
		{
			Name:    "match relationship properties and direction",
			Setup:   movies,
			Query:   "MATCH (p)-[r:ACTED_IN {role: 'Trinity'}]->(m:Movie) RETURN p.name AS name, m.title AS title",
			Columns: []string{"name", "title"},
			Rows:    [][]any{{"Carrie", "The Matrix"}},
		},
		{
			Name:    "match incoming direction",
			Setup:   movies,
			Query:   "MATCH (m:Movie {title: 'Speed'})<-[:ACTED_IN]-(p) RETURN p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}},
		},
		{
			Name:    "match undirected counts both orientations",
			Setup:   []string{"CREATE (:A {name: 'a'})-[:R]->(:B {name: 'b'})"},
			Query:   "MATCH (x)--(y) RETURN count(*) AS c",
			Columns: []string{"c"},
			Rows:    [][]any{{2}},
		},
		{
			Name:    "co-actor pattern (two relationships sharing a node)",
			Setup:   movies,
			Query:   "MATCH (a:Person)-[:ACTED_IN]->(:Movie {title: 'The Matrix'})<-[:ACTED_IN]-(b:Person) WHERE a.name < b.name RETURN a.name AS a, b.name AS b",
			Columns: []string{"a", "b"},
			Rows:    [][]any{{"Carrie", "Keanu"}, {"Carrie", "Laurence"}, {"Keanu", "Laurence"}},
		},
		{
			Name:    "variable length path",
			Setup:   []string{"CREATE (:Stop {name: 'a'})-[:NEXT]->(:Stop {name: 'b'})-[:NEXT]->(:Stop {name: 'c'})-[:NEXT]->(:Stop {name: 'd'})"},
			Query:   "MATCH (a:Stop {name: 'a'})-[:NEXT*2..3]->(x) RETURN x.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"c"}, {"d"}},
		},
		{
			Name:    "named path length",
			Setup:   []string{"CREATE (:Stop {name: 'a'})-[:NEXT]->(:Stop {name: 'b'})-[:NEXT]->(:Stop {name: 'c'})"},
			Query:   "MATCH p = (:Stop {name: 'a'})-[:NEXT*]->(:Stop {name: 'c'}) RETURN length(p) AS len",
			Columns: []string{"len"},
			Rows:    [][]any{{2}},
		},

		// --- OPTIONAL MATCH ---
		{
			Name:    "optional match binds null when there is no match",
			Setup:   movies,
			Query:   "MATCH (p:Person) OPTIONAL MATCH (p)-[:DIRECTED]->(m) RETURN p.name AS name, m AS movie",
			Columns: []string{"name", "movie"},
			Rows:    [][]any{{"Keanu", nil}, {"Carrie", nil}, {"Laurence", nil}},
		},
		{
			Name:    "optional match keeps matching rows",
			Setup:   movies,
			Query:   "MATCH (m:Movie) OPTIONAL MATCH (m)<-[:ACTED_IN {role: 'Neo'}]-(p) RETURN m.title AS title, p.name AS actor",
			Columns: []string{"title", "actor"},
			Rows:    [][]any{{"The Matrix", "Keanu"}, {"Speed", nil}},
		},

		// --- WHERE ---
		{
			Name:    "where with comparison and boolean connectives",
			Setup:   movies,
			Query:   "MATCH (p:Person) WHERE p.born > 1960 AND p.born < 1965 RETURN p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}, {"Laurence"}},
		},
		{
			Name:    "where with string predicates",
			Setup:   movies,
			Query:   "MATCH (p:Person) WHERE p.name STARTS WITH 'K' OR p.name CONTAINS 'au' RETURN p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}, {"Laurence"}},
		},
		{
			Name:    "where null comparisons exclude rows",
			Setup:   movies,
			Query:   "MATCH (p:Person) WHERE p.missing = 1 RETURN p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{},
		},
		{
			Name:    "where IN list",
			Setup:   movies,
			Query:   "MATCH (p:Person) WHERE p.name IN ['Keanu', 'Carrie'] RETURN count(*) AS c",
			Columns: []string{"c"},
			Rows:    [][]any{{2}},
		},
		{
			Name:    "where pattern predicate",
			Setup:   movies,
			Query:   "MATCH (p:Person) WHERE (p)-[:ACTED_IN]->(:Movie {title: 'Speed'}) RETURN p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}},
		},

		// --- WITH / aggregation ---
		{
			Name:    "with aggregation and filtering on the aggregate",
			Setup:   movies,
			Query:   "MATCH (p:Person)-[:ACTED_IN]->(m:Movie) WITH p, count(m) AS movies WHERE movies > 1 RETURN p.name AS name, movies",
			Columns: []string{"name", "movies"},
			Rows:    [][]any{{"Keanu", 2}},
		},
		{
			Name:    "collect and size",
			Setup:   movies,
			Query:   "MATCH (p:Person)-[:ACTED_IN]->(m:Movie {title: 'The Matrix'}) RETURN size(collect(p.name)) AS castSize",
			Columns: []string{"castSize"},
			Rows:    [][]any{{3}},
		},
		{
			Name:    "min max avg sum",
			Setup:   movies,
			Query:   "MATCH (p:Person) RETURN min(p.born) AS lo, max(p.born) AS hi, sum(p.born) AS total, avg(p.born) AS mean",
			Columns: []string{"lo", "hi", "total", "mean"},
			Rows:    [][]any{{1961, 1967, 5892, 1964.0}},
		},
		{
			Name:    "count distinct",
			Setup:   movies,
			Query:   "MATCH (p:Person)-[:ACTED_IN]->(m:Movie) RETURN count(DISTINCT p) AS actors, count(*) AS credits",
			Columns: []string{"actors", "credits"},
			Rows:    [][]any{{3, 4}},
		},

		// --- RETURN modifiers ---
		{
			Name:    "order by skip limit",
			Setup:   movies,
			Query:   "MATCH (p:Person) RETURN p.name AS name ORDER BY name SKIP 1 LIMIT 1",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}},
			Ordered: true,
		},
		{
			Name:    "order by descending",
			Setup:   movies,
			Query:   "MATCH (p:Person) RETURN p.name AS name ORDER BY p.born DESC",
			Columns: []string{"name"},
			Rows:    [][]any{{"Carrie"}, {"Keanu"}, {"Laurence"}},
			Ordered: true,
		},
		{
			Name:    "return distinct",
			Setup:   movies,
			Query:   "MATCH (p:Person)-[:ACTED_IN]->(:Movie) RETURN DISTINCT p.name AS name",
			Columns: []string{"name"},
			Rows:    [][]any{{"Keanu"}, {"Carrie"}, {"Laurence"}},
		},

		// --- UNWIND / UNION ---
		{
			Name:    "unwind a literal list",
			Query:   "UNWIND [1, 2, 3] AS x RETURN x * x AS sq",
			Columns: []string{"sq"},
			Rows:    [][]any{{1}, {4}, {9}},
		},
		{
			Name:    "unwind a parameter",
			Query:   "UNWIND $xs AS x RETURN x AS v",
			Params:  map[string]any{"xs": []any{"a", "b"}},
			Columns: []string{"v"},
			Rows:    [][]any{{"a"}, {"b"}},
		},
		{
			Name:    "union removes duplicates, union all keeps them",
			Setup:   movies,
			Query:   "MATCH (p:Person {name: 'Keanu'}) RETURN p.born AS y UNION ALL MATCH (p:Person {name: 'Keanu'}) RETURN p.born AS y",
			Columns: []string{"y"},
			Rows:    [][]any{{1964}, {1964}},
		},
		{
			Name:    "union distinct",
			Setup:   movies,
			Query:   "MATCH (p:Person {name: 'Keanu'}) RETURN p.born AS y UNION MATCH (p:Person {name: 'Keanu'}) RETURN p.born AS y",
			Columns: []string{"y"},
			Rows:    [][]any{{1964}},
		},

		// --- expressions ---
		{
			Name:    "case expression",
			Setup:   movies,
			Query:   "MATCH (p:Person) RETURN p.name AS name, CASE WHEN p.born < 1964 THEN 'older' ELSE 'younger' END AS bucket",
			Columns: []string{"name", "bucket"},
			Rows:    [][]any{{"Keanu", "younger"}, {"Carrie", "younger"}, {"Laurence", "older"}},
		},
		{
			Name:    "list comprehension and slicing",
			Query:   "RETURN [x IN range(0, 10) WHERE x % 3 = 0 | x][1..3] AS xs",
			Columns: []string{"xs"},
			Rows:    [][]any{{[]any{3, 6}}},
		},
		{
			Name:    "three valued logic",
			Query:   "RETURN (null OR true) AS a, (null AND false) AS b, (null AND true) AS c, NOT null AS d",
			Columns: []string{"a", "b", "c", "d"},
			Rows:    [][]any{{true, false, nil, nil}},
		},
		{
			Name:    "temporal functions",
			Query:   "RETURN year(date('2018-06-10')) AS y, month(date('2018-06-10')) AS m, day(dateAdd(date('2018-06-10'), duration({days: 5}))) AS d",
			Columns: []string{"y", "m", "d"},
			Rows:    [][]any{{2018, 6, 15}},
		},

		{
			Name:    "reduce folds a list",
			Query:   "RETURN reduce(acc = 0, x IN [1, 2, 3, 4] | acc + x) AS sum, reduce(s = 'seed', w IN [] | s + w) AS seed",
			Columns: []string{"sum", "seed"},
			Rows:    [][]any{{10, "seed"}},
		},
		{
			Name:    "reduce over collected node values",
			Setup:   []string{"CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})"},
			Query:   "MATCH (n:N) WITH collect(n.v) AS vs RETURN reduce(acc = 1, v IN vs | acc * v) AS product",
			Columns: []string{"product"},
			Rows:    [][]any{{6}},
		},
		{
			Name:    "reduce of a null list is null",
			Query:   "RETURN reduce(acc = 0, x IN null | acc + x) AS r",
			Columns: []string{"r"},
			Rows:    [][]any{{nil}},
		},
		{
			Name:    "string concatenation coerces numbers",
			Query:   "RETURN 'a' + 1 AS a, 1 + 'a' AS b, 'x' + 1.5 AS c, 'n' + 1 + 2 AS d",
			Columns: []string{"a", "b", "c", "d"},
			Rows:    [][]any{{"a1", "1a", "x1.5", "n12"}},
		},
		{
			Name:        "boolean + string stays a type error",
			Query:       "RETURN true + 'a'",
			ExpectError: true,
		},
		{
			Name:    "datetime accepts UTC and numeric offsets",
			Query:   "RETURN year(datetime('2020-01-01T00:00:00Z')) AS y, datetime('2020-01-01T05:30:00+05:30') = datetime('2020-01-01T00:00:00Z') AS same, day(datetime('2019-12-31T19:00:00-05:00')) AS d",
			Columns: []string{"y", "same", "d"},
			Rows:    [][]any{{2020, true, 1}},
		},

		// --- updates ---
		{
			Name:    "create then count",
			Query:   "CREATE (:X), (:X), (:X)-[:R]->(:Y) RETURN 1 AS ok",
			Columns: []string{"ok"},
			Rows:    [][]any{{1}},
		},
		{
			Name:    "merge is idempotent",
			Setup:   []string{"MERGE (:Tag {name: 'go'})", "MERGE (:Tag {name: 'go'})"},
			Query:   "MATCH (t:Tag) RETURN count(*) AS c",
			Columns: []string{"c"},
			Rows:    [][]any{{1}},
		},
		{
			Name:    "set and remove",
			Setup:   []string{"CREATE (:Item {name: 'a', price: 10})", "MATCH (i:Item) SET i.price = 12, i:Discounted", "MATCH (i:Item) REMOVE i.name"},
			Query:   "MATCH (i:Discounted) RETURN i.price AS price, i.name AS name",
			Columns: []string{"price", "name"},
			Rows:    [][]any{{12, nil}},
		},
		{
			Name:    "detach delete",
			Setup:   []string{"CREATE (:A)-[:R]->(:B)", "MATCH (a:A) DETACH DELETE a"},
			Query:   "MATCH (n) RETURN count(*) AS c",
			Columns: []string{"c"},
			Rows:    [][]any{{1}},
		},

		// --- negative scenarios ---
		{
			Name:        "undefined variable is rejected",
			Query:       "MATCH (n) RETURN banana",
			ExpectError: true,
		},
		{
			Name:        "aggregation in where is rejected",
			Query:       "MATCH (n) WHERE count(n) > 0 RETURN n",
			ExpectError: true,
		},
		{
			Name:        "query ending in match is rejected",
			Query:       "MATCH (n)",
			ExpectError: true,
		},
	}
}
