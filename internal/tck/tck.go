// Package tck provides a small conformance scenario harness in the spirit of
// the openCypher Technology Compatibility Kit mentioned in Section 5 of the
// paper. A scenario sets up a graph with Cypher statements, runs a query,
// and states the expected result as a bag of rows; the harness executes it
// against the engine and reports mismatches.
package tck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/result"
	"repro/internal/value"
)

// Scenario is one conformance case.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Setup statements are run first (typically CREATE statements); they may
	// be empty for scenarios over an empty graph.
	Setup []string
	// Query is the statement under test.
	Query string
	// Params are optional query parameters (native Go values).
	Params map[string]any
	// Columns are the expected result column names in order.
	Columns []string
	// Rows is the expected bag of rows (native Go values; nodes and
	// relationships cannot be stated literally, use their properties
	// instead). If Ordered is set the rows must appear in exactly this
	// order.
	Rows [][]any
	// Ordered makes the comparison order-sensitive (for ORDER BY scenarios).
	Ordered bool
	// ExpectError marks scenarios whose query must be rejected.
	ExpectError bool
}

// Outcome is the result of running one scenario.
type Outcome struct {
	Scenario Scenario
	Passed   bool
	Message  string
}

// Run executes a single scenario against a fresh graph and reports its
// outcome.
func Run(sc Scenario) Outcome {
	g := graph.New()
	engine := core.NewEngine(g, core.Options{})
	for _, stmt := range sc.Setup {
		if _, err := engine.Run(stmt, nil); err != nil {
			return Outcome{Scenario: sc, Passed: false, Message: fmt.Sprintf("setup failed: %v", err)}
		}
	}
	params, err := core.ConvertParams(sc.Params)
	if err != nil {
		return Outcome{Scenario: sc, Passed: false, Message: fmt.Sprintf("bad parameters: %v", err)}
	}
	res, err := engine.Run(sc.Query, params)
	if sc.ExpectError {
		if err == nil {
			return Outcome{Scenario: sc, Passed: false, Message: "expected the query to be rejected, but it succeeded"}
		}
		return Outcome{Scenario: sc, Passed: true}
	}
	if err != nil {
		return Outcome{Scenario: sc, Passed: false, Message: fmt.Sprintf("query failed: %v", err)}
	}
	if msg := compare(sc, res); msg != "" {
		return Outcome{Scenario: sc, Passed: false, Message: msg}
	}
	return Outcome{Scenario: sc, Passed: true}
}

// RunAll executes every scenario and returns the outcomes.
func RunAll(scs []Scenario) []Outcome {
	out := make([]Outcome, 0, len(scs))
	for _, sc := range scs {
		out = append(out, Run(sc))
	}
	return out
}

// Failures filters the outcomes down to the failed ones.
func Failures(outcomes []Outcome) []Outcome {
	var out []Outcome
	for _, o := range outcomes {
		if !o.Passed {
			out = append(out, o)
		}
	}
	return out
}

func compare(sc Scenario, res *core.Result) string {
	if len(sc.Columns) > 0 {
		got := res.Columns()
		if len(got) != len(sc.Columns) {
			return fmt.Sprintf("expected columns %v, got %v", sc.Columns, got)
		}
		for i := range got {
			if got[i] != sc.Columns[i] {
				return fmt.Sprintf("expected columns %v, got %v", sc.Columns, got)
			}
		}
	}
	expected, err := buildTable(res.Columns(), sc.Rows)
	if err != nil {
		return err.Error()
	}
	if sc.Ordered {
		if res.Len() != expected.Len() {
			return fmt.Sprintf("expected %d rows, got %d\n%s", expected.Len(), res.Len(), res.Table.String())
		}
		for i := 0; i < res.Len(); i++ {
			gotRow := res.Table.Row(i)
			wantRow := expected.Row(i)
			for j := range gotRow {
				if value.Compare(gotRow[j], wantRow[j]) != 0 {
					return fmt.Sprintf("row %d differs: got %v, want %v", i, gotRow, wantRow)
				}
			}
		}
		return ""
	}
	if !result.EqualAsBags(res.Table, expected) {
		return fmt.Sprintf("result mismatch\ngot:\n%s\nwant:\n%s", res.Table.String(), expected.String())
	}
	return ""
}

func buildTable(columns []string, rows [][]any) (*result.Table, error) {
	tbl := result.NewTable(columns...)
	for _, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("expected row %v has %d values for %d columns", row, len(row), len(columns))
		}
		rec := result.NewRecord()
		for i, c := range columns {
			v, err := value.FromGo(row[i])
			if err != nil {
				return nil, fmt.Errorf("bad expected value %v: %v", row[i], err)
			}
			rec.Set(c, v)
		}
		tbl.Add(rec)
	}
	return tbl, nil
}
