package tck

import "testing"

// TestBuiltinScenarios runs the whole conformance suite against the engine.
func TestBuiltinScenarios(t *testing.T) {
	for _, sc := range BuiltinScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			outcome := Run(sc)
			if !outcome.Passed {
				t.Errorf("scenario failed: %s", outcome.Message)
			}
		})
	}
}

func TestRunAllAndFailures(t *testing.T) {
	scenarios := []Scenario{
		{
			Name:    "passing scenario",
			Query:   "RETURN 1 AS one",
			Columns: []string{"one"},
			Rows:    [][]any{{1}},
		},
		{
			Name:    "failing scenario (wrong expectation)",
			Query:   "RETURN 1 AS one",
			Columns: []string{"one"},
			Rows:    [][]any{{2}},
		},
		{
			Name:    "failing scenario (wrong columns)",
			Query:   "RETURN 1 AS one",
			Columns: []string{"two"},
			Rows:    [][]any{{1}},
		},
		{
			Name:        "expected error that does not happen",
			Query:       "RETURN 1 AS one",
			ExpectError: true,
		},
		{
			Name:  "setup failure",
			Setup: []string{"THIS IS NOT CYPHER"},
			Query: "RETURN 1 AS one",
		},
		{
			Name:    "ordered comparison failure",
			Query:   "UNWIND [1,2] AS x RETURN x",
			Columns: []string{"x"},
			Rows:    [][]any{{2}, {1}},
			Ordered: true,
		},
	}
	outcomes := RunAll(scenarios)
	if len(outcomes) != len(scenarios) {
		t.Fatalf("expected %d outcomes", len(scenarios))
	}
	failures := Failures(outcomes)
	if len(failures) != 5 {
		for _, f := range failures {
			t.Logf("failure: %s: %s", f.Scenario.Name, f.Message)
		}
		t.Fatalf("expected 5 failures, got %d", len(failures))
	}
	if !outcomes[0].Passed {
		t.Errorf("the passing scenario should pass: %s", outcomes[0].Message)
	}
}

func TestScenarioRowArityChecked(t *testing.T) {
	out := Run(Scenario{
		Name:    "bad expectation arity",
		Query:   "RETURN 1 AS a, 2 AS b",
		Columns: []string{"a", "b"},
		Rows:    [][]any{{1}},
	})
	if out.Passed {
		t.Errorf("scenario with mis-shaped expectations should fail")
	}
}
