// Package eval implements the semantics of Cypher expressions,
// [[expr]]_{G,u} in Section 4.3 of the paper: given a graph, a record u
// binding names to values, and query parameters, an expression denotes a
// value. The package also provides the aggregation functions used by WITH
// and RETURN.
package eval

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"repro/internal/ast"
	"repro/internal/result"
	"repro/internal/value"
)

// ErrUnknownVariable is returned when an expression references a name that is
// not bound in the current record.
var ErrUnknownVariable = errors.New("eval: unknown variable")

// ErrUnknownParameter is returned when a query parameter was not supplied.
var ErrUnknownParameter = errors.New("eval: missing query parameter")

// ErrTypeError is returned when an expression is applied to a value of the
// wrong type.
var ErrTypeError = errors.New("eval: type error")

// ErrAggregateHere is returned when an aggregating function appears in a
// context where aggregation is not possible (e.g. inside WHERE).
var ErrAggregateHere = errors.New("eval: aggregation is not allowed in this context")

// PatternPredicateFunc checks whether a pattern predicate (a path pattern
// used as a boolean expression) has at least one match under the given
// record. The execution engine injects its matcher here to avoid an import
// cycle.
type PatternPredicateFunc func(part ast.PatternPart, rec result.Record) (bool, error)

// Context carries everything an expression may need: query parameters and
// the pattern-predicate hook. The graph itself is reached through the node
// and relationship values bound in records.
type Context struct {
	Params           map[string]value.Value
	PatternPredicate PatternPredicateFunc
}

// Evaluate computes the value of the expression under the record.
func (c *Context) Evaluate(e ast.Expr, rec result.Record) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Value, nil
	case *ast.Variable:
		if !rec.Has(x.Name) {
			return nil, fmt.Errorf("%w: %s", ErrUnknownVariable, x.Name)
		}
		return rec.Get(x.Name), nil
	case *ast.Parameter:
		if v, ok := c.Params[x.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("%w: $%s", ErrUnknownParameter, x.Name)
	case *ast.PropertyAccess:
		return c.evalPropertyAccess(x, rec)
	case *ast.ListLiteral:
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := c.Evaluate(el, rec)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return value.NewListOf(elems), nil
	case *ast.MapLiteral:
		entries := make(map[string]value.Value, len(x.Keys))
		for i, k := range x.Keys {
			v, err := c.Evaluate(x.Values[i], rec)
			if err != nil {
				return nil, err
			}
			entries[k] = v
		}
		return value.NewMap(entries), nil
	case *ast.Index:
		return c.evalIndex(x, rec)
	case *ast.Slice:
		return c.evalSlice(x, rec)
	case *ast.BinaryOp:
		return c.evalBinary(x, rec)
	case *ast.UnaryOp:
		return c.evalUnary(x, rec)
	case *ast.IsNull:
		v, err := c.Evaluate(x.Operand, rec)
		if err != nil {
			return nil, err
		}
		isNull := value.IsNull(v)
		if x.Negated {
			return value.NewBool(!isNull), nil
		}
		return value.NewBool(isNull), nil
	case *ast.HasLabels:
		return c.evalHasLabels(x, rec)
	case *ast.FunctionCall:
		return c.evalFunction(x, rec)
	case *ast.CountStar:
		return nil, fmt.Errorf("%w: count(*)", ErrAggregateHere)
	case *ast.Case:
		return c.evalCase(x, rec)
	case *ast.ListComprehension:
		return c.evalListComprehension(x, rec)
	case *ast.Reduce:
		return c.evalReduce(x, rec)
	case *ast.PatternPredicate:
		if c.PatternPredicate == nil {
			return nil, errors.New("eval: pattern predicates are not supported in this context")
		}
		ok, err := c.PatternPredicate(x.Pattern, rec)
		if err != nil {
			return nil, err
		}
		return value.NewBool(ok), nil
	default:
		return nil, fmt.Errorf("eval: unsupported expression %T", e)
	}
}

// EvaluateTruth evaluates the expression as a WHERE predicate: only a result
// of true passes (false and null both reject), per Figure 7.
func (c *Context) EvaluateTruth(e ast.Expr, rec result.Record) (bool, error) {
	v, err := c.Evaluate(e, rec)
	if err != nil {
		return false, err
	}
	return value.TernaryOf(v) == value.TrueT, nil
}

func (c *Context) evalPropertyAccess(x *ast.PropertyAccess, rec result.Record) (value.Value, error) {
	subject, err := c.Evaluate(x.Subject, rec)
	if err != nil {
		return nil, err
	}
	return PropertyOf(subject, x.Key)
}

// PropertyOf implements `subject.key` for nodes, relationships, maps and
// null.
func PropertyOf(subject value.Value, key string) (value.Value, error) {
	switch {
	case value.IsNull(subject):
		return value.Null(), nil
	case subject.Kind() == value.KindNode:
		n, _ := value.AsNode(subject)
		return n.Property(key), nil
	case subject.Kind() == value.KindRelationship:
		r, _ := value.AsRelationship(subject)
		return r.Property(key), nil
	case subject.Kind() == value.KindMap:
		m, _ := value.AsMap(subject)
		if v, ok := m.Get(key); ok {
			return v, nil
		}
		return value.Null(), nil
	default:
		return nil, fmt.Errorf("%w: cannot access property %q of a %s", ErrTypeError, key, subject.Kind())
	}
}

func (c *Context) evalIndex(x *ast.Index, rec result.Record) (value.Value, error) {
	subject, err := c.Evaluate(x.Subject, rec)
	if err != nil {
		return nil, err
	}
	idx, err := c.Evaluate(x.Idx, rec)
	if err != nil {
		return nil, err
	}
	if value.IsNull(subject) || value.IsNull(idx) {
		return value.Null(), nil
	}
	switch subject.Kind() {
	case value.KindList:
		l, _ := value.AsList(subject)
		i, ok := value.AsInt(idx)
		if !ok {
			return nil, fmt.Errorf("%w: list index must be an integer, got %s", ErrTypeError, idx.Kind())
		}
		n := int64(l.Len())
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return value.Null(), nil
		}
		return l.At(int(i)), nil
	case value.KindMap:
		m, _ := value.AsMap(subject)
		k, ok := value.AsString(idx)
		if !ok {
			return nil, fmt.Errorf("%w: map index must be a string, got %s", ErrTypeError, idx.Kind())
		}
		if v, present := m.Get(k); present {
			return v, nil
		}
		return value.Null(), nil
	case value.KindNode:
		n, _ := value.AsNode(subject)
		k, ok := value.AsString(idx)
		if !ok {
			return nil, fmt.Errorf("%w: property index must be a string", ErrTypeError)
		}
		return n.Property(k), nil
	case value.KindRelationship:
		r, _ := value.AsRelationship(subject)
		k, ok := value.AsString(idx)
		if !ok {
			return nil, fmt.Errorf("%w: property index must be a string", ErrTypeError)
		}
		return r.Property(k), nil
	default:
		return nil, fmt.Errorf("%w: cannot index a %s", ErrTypeError, subject.Kind())
	}
}

func (c *Context) evalSlice(x *ast.Slice, rec result.Record) (value.Value, error) {
	subject, err := c.Evaluate(x.Subject, rec)
	if err != nil {
		return nil, err
	}
	if value.IsNull(subject) {
		return value.Null(), nil
	}
	l, ok := value.AsList(subject)
	if !ok {
		return nil, fmt.Errorf("%w: cannot slice a %s", ErrTypeError, subject.Kind())
	}
	n := int64(l.Len())
	from, to := int64(0), n
	if x.From != nil {
		fv, err := c.Evaluate(x.From, rec)
		if err != nil {
			return nil, err
		}
		if value.IsNull(fv) {
			return value.Null(), nil
		}
		i, ok := value.AsInt(fv)
		if !ok {
			return nil, fmt.Errorf("%w: slice bound must be an integer", ErrTypeError)
		}
		from = i
	}
	if x.To != nil {
		tv, err := c.Evaluate(x.To, rec)
		if err != nil {
			return nil, err
		}
		if value.IsNull(tv) {
			return value.Null(), nil
		}
		i, ok := value.AsInt(tv)
		if !ok {
			return nil, fmt.Errorf("%w: slice bound must be an integer", ErrTypeError)
		}
		to = i
	}
	if from < 0 {
		from += n
	}
	if to < 0 {
		to += n
	}
	from = clamp(from, 0, n)
	to = clamp(to, 0, n)
	if from >= to {
		return value.NewList(), nil
	}
	elems := make([]value.Value, 0, to-from)
	for i := from; i < to; i++ {
		elems = append(elems, l.At(int(i)))
	}
	return value.NewListOf(elems), nil
}

func clamp(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (c *Context) evalBinary(x *ast.BinaryOp, rec result.Record) (value.Value, error) {
	// Logical connectives use three-valued logic over both operands.
	switch x.Op {
	case ast.OpAnd, ast.OpOr, ast.OpXor:
		lv, err := c.Evaluate(x.LHS, rec)
		if err != nil {
			return nil, err
		}
		rv, err := c.Evaluate(x.RHS, rec)
		if err != nil {
			return nil, err
		}
		lt, rt := value.TernaryOf(lv), value.TernaryOf(rv)
		switch x.Op {
		case ast.OpAnd:
			return value.And(lt, rt).ToValue(), nil
		case ast.OpOr:
			return value.Or(lt, rt).ToValue(), nil
		default:
			return value.Xor(lt, rt).ToValue(), nil
		}
	}

	lv, err := c.Evaluate(x.LHS, rec)
	if err != nil {
		return nil, err
	}
	rv, err := c.Evaluate(x.RHS, rec)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpAdd:
		return value.Add(lv, rv)
	case ast.OpSub:
		return value.Sub(lv, rv)
	case ast.OpMul:
		return value.Mul(lv, rv)
	case ast.OpDiv:
		return value.Div(lv, rv)
	case ast.OpMod:
		return value.Mod(lv, rv)
	case ast.OpPow:
		return value.Pow(lv, rv)
	case ast.OpEq:
		return value.Equals(lv, rv).ToValue(), nil
	case ast.OpNeq:
		return value.Not(value.Equals(lv, rv)).ToValue(), nil
	case ast.OpLt:
		return value.Less(lv, rv).ToValue(), nil
	case ast.OpLe:
		return value.LessEq(lv, rv).ToValue(), nil
	case ast.OpGt:
		return value.Greater(lv, rv).ToValue(), nil
	case ast.OpGe:
		return value.GreaterEq(lv, rv).ToValue(), nil
	case ast.OpIn:
		return evalIn(lv, rv)
	case ast.OpStartsWith, ast.OpEndsWith, ast.OpContains:
		return evalStringPredicate(x.Op, lv, rv)
	case ast.OpRegexMatch:
		return evalRegex(lv, rv)
	default:
		return nil, fmt.Errorf("eval: unsupported binary operator %v", x.Op)
	}
}

func evalIn(needle, haystack value.Value) (value.Value, error) {
	if value.IsNull(haystack) {
		return value.Null(), nil
	}
	l, ok := value.AsList(haystack)
	if !ok {
		return nil, fmt.Errorf("%w: IN requires a list, got %s", ErrTypeError, haystack.Kind())
	}
	sawUnknown := false
	for _, el := range l.Elements() {
		switch value.Equals(needle, el) {
		case value.TrueT:
			return value.NewBool(true), nil
		case value.UnknownT:
			sawUnknown = true
		}
	}
	if sawUnknown || value.IsNull(needle) {
		return value.Null(), nil
	}
	return value.NewBool(false), nil
}

func evalStringPredicate(op ast.BinaryOperator, lv, rv value.Value) (value.Value, error) {
	if value.IsNull(lv) || value.IsNull(rv) {
		return value.Null(), nil
	}
	ls, lok := value.AsString(lv)
	rs, rok := value.AsString(rv)
	if !lok || !rok {
		// Non-string operands make the predicate null (consistent with
		// openCypher's lenient treatment).
		return value.Null(), nil
	}
	switch op {
	case ast.OpStartsWith:
		return value.NewBool(strings.HasPrefix(ls, rs)), nil
	case ast.OpEndsWith:
		return value.NewBool(strings.HasSuffix(ls, rs)), nil
	default:
		return value.NewBool(strings.Contains(ls, rs)), nil
	}
}

func evalRegex(lv, rv value.Value) (value.Value, error) {
	if value.IsNull(lv) || value.IsNull(rv) {
		return value.Null(), nil
	}
	ls, lok := value.AsString(lv)
	rs, rok := value.AsString(rv)
	if !lok || !rok {
		return value.Null(), nil
	}
	re, err := regexp.Compile("^(?:" + rs + ")$")
	if err != nil {
		return nil, fmt.Errorf("eval: invalid regular expression %q: %v", rs, err)
	}
	return value.NewBool(re.MatchString(ls)), nil
}

func (c *Context) evalUnary(x *ast.UnaryOp, rec result.Record) (value.Value, error) {
	v, err := c.Evaluate(x.Operand, rec)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpNot:
		return value.Not(value.TernaryOf(v)).ToValue(), nil
	case ast.OpNeg:
		return value.Neg(v)
	default: // OpPos
		if value.IsNull(v) || value.IsNumber(v) {
			return v, nil
		}
		return nil, fmt.Errorf("%w: unary + requires a number", ErrTypeError)
	}
}

func (c *Context) evalHasLabels(x *ast.HasLabels, rec result.Record) (value.Value, error) {
	subject, err := c.Evaluate(x.Subject, rec)
	if err != nil {
		return nil, err
	}
	if value.IsNull(subject) {
		return value.Null(), nil
	}
	n, ok := value.AsNode(subject)
	if !ok {
		return nil, fmt.Errorf("%w: label predicate requires a node, got %s", ErrTypeError, subject.Kind())
	}
	for _, l := range x.Labels {
		if !n.HasLabel(l) {
			return value.NewBool(false), nil
		}
	}
	return value.NewBool(true), nil
}

func (c *Context) evalCase(x *ast.Case, rec result.Record) (value.Value, error) {
	if x.Test != nil {
		test, err := c.Evaluate(x.Test, rec)
		if err != nil {
			return nil, err
		}
		for _, alt := range x.Alternatives {
			w, err := c.Evaluate(alt.When, rec)
			if err != nil {
				return nil, err
			}
			if value.Equals(test, w) == value.TrueT {
				return c.Evaluate(alt.Then, rec)
			}
		}
	} else {
		for _, alt := range x.Alternatives {
			ok, err := c.EvaluateTruth(alt.When, rec)
			if err != nil {
				return nil, err
			}
			if ok {
				return c.Evaluate(alt.Then, rec)
			}
		}
	}
	if x.Else != nil {
		return c.Evaluate(x.Else, rec)
	}
	return value.Null(), nil
}

func (c *Context) evalListComprehension(x *ast.ListComprehension, rec result.Record) (value.Value, error) {
	listVal, err := c.Evaluate(x.List, rec)
	if err != nil {
		return nil, err
	}
	if value.IsNull(listVal) {
		return value.Null(), nil
	}
	l, ok := value.AsList(listVal)
	if !ok {
		return nil, fmt.Errorf("%w: list comprehension requires a list, got %s", ErrTypeError, listVal.Kind())
	}
	var out []value.Value
	for _, el := range l.Elements() {
		inner := rec.Extended(x.Variable, el)
		if x.Where != nil {
			ok, err := c.EvaluateTruth(x.Where, inner)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if x.Projection != nil {
			v, err := c.Evaluate(x.Projection, inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		} else {
			out = append(out, el)
		}
	}
	return value.NewListOf(out), nil
}

// evalReduce folds a list: the accumulator starts at Init and is rebound to
// Expr for each element. A null list yields null, as elsewhere.
func (c *Context) evalReduce(x *ast.Reduce, rec result.Record) (value.Value, error) {
	acc, err := c.Evaluate(x.Init, rec)
	if err != nil {
		return nil, err
	}
	listVal, err := c.Evaluate(x.List, rec)
	if err != nil {
		return nil, err
	}
	if value.IsNull(listVal) {
		return value.Null(), nil
	}
	l, ok := value.AsList(listVal)
	if !ok {
		return nil, fmt.Errorf("%w: reduce requires a list, got %s", ErrTypeError, listVal.Kind())
	}
	for _, el := range l.Elements() {
		inner := rec.Extended(x.Accumulator, acc).Extended(x.Variable, el)
		acc, err = c.Evaluate(x.Expr, inner)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (c *Context) evalFunction(x *ast.FunctionCall, rec result.Record) (value.Value, error) {
	if IsAggregate(x.Name) {
		return nil, fmt.Errorf("%w: %s(...)", ErrAggregateHere, x.Name)
	}
	fn, ok := scalarFunctions[x.Name]
	if !ok {
		return nil, fmt.Errorf("eval: unknown function %q", x.Name)
	}
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := c.Evaluate(a, rec)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn(args)
}

// ContainsAggregate reports whether the expression contains an aggregating
// function call (count, collect, sum, ...), which determines whether a WITH
// or RETURN projection performs grouping.
func ContainsAggregate(e ast.Expr) bool {
	found := false
	WalkExpr(e, func(sub ast.Expr) {
		switch f := sub.(type) {
		case *ast.FunctionCall:
			if IsAggregate(f.Name) {
				found = true
			}
		case *ast.CountStar:
			found = true
		}
	})
	return found
}

// WalkExpr visits every sub-expression of e (including e itself) in
// depth-first order.
func WalkExpr(e ast.Expr, visit func(ast.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *ast.PropertyAccess:
		WalkExpr(x.Subject, visit)
	case *ast.ListLiteral:
		for _, el := range x.Elems {
			WalkExpr(el, visit)
		}
	case *ast.MapLiteral:
		for _, v := range x.Values {
			WalkExpr(v, visit)
		}
	case *ast.Index:
		WalkExpr(x.Subject, visit)
		WalkExpr(x.Idx, visit)
	case *ast.Slice:
		WalkExpr(x.Subject, visit)
		WalkExpr(x.From, visit)
		WalkExpr(x.To, visit)
	case *ast.BinaryOp:
		WalkExpr(x.LHS, visit)
		WalkExpr(x.RHS, visit)
	case *ast.UnaryOp:
		WalkExpr(x.Operand, visit)
	case *ast.IsNull:
		WalkExpr(x.Operand, visit)
	case *ast.HasLabels:
		WalkExpr(x.Subject, visit)
	case *ast.FunctionCall:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	case *ast.Case:
		WalkExpr(x.Test, visit)
		for _, alt := range x.Alternatives {
			WalkExpr(alt.When, visit)
			WalkExpr(alt.Then, visit)
		}
		WalkExpr(x.Else, visit)
	case *ast.ListComprehension:
		WalkExpr(x.List, visit)
		WalkExpr(x.Where, visit)
		WalkExpr(x.Projection, visit)
	case *ast.Reduce:
		WalkExpr(x.Init, visit)
		WalkExpr(x.List, visit)
		WalkExpr(x.Expr, visit)
	}
}

// Variables returns the names of all free variables referenced by the
// expression (list-comprehension variables are bound locally and excluded).
func Variables(e ast.Expr) []string {
	bound := map[string]bool{}
	var out []string
	seen := map[string]bool{}
	var walk func(ast.Expr)
	walk = func(sub ast.Expr) {
		switch x := sub.(type) {
		case nil:
			return
		case *ast.Variable:
			if !bound[x.Name] && !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *ast.ListComprehension:
			walk(x.List)
			prev := bound[x.Variable]
			bound[x.Variable] = true
			walk(x.Where)
			walk(x.Projection)
			bound[x.Variable] = prev
		case *ast.Reduce:
			walk(x.Init)
			walk(x.List)
			prevAcc, prevVar := bound[x.Accumulator], bound[x.Variable]
			bound[x.Accumulator], bound[x.Variable] = true, true
			walk(x.Expr)
			bound[x.Accumulator], bound[x.Variable] = prevAcc, prevVar
		case *ast.PatternPredicate:
			for _, v := range x.Pattern.Variables() {
				if !bound[v] && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			for _, np := range x.Pattern.Nodes {
				if np.Properties != nil {
					walk(np.Properties)
				}
			}
		case *ast.PropertyAccess:
			walk(x.Subject)
		case *ast.ListLiteral:
			for _, el := range x.Elems {
				walk(el)
			}
		case *ast.MapLiteral:
			for _, v := range x.Values {
				walk(v)
			}
		case *ast.Index:
			walk(x.Subject)
			walk(x.Idx)
		case *ast.Slice:
			walk(x.Subject)
			walk(x.From)
			walk(x.To)
		case *ast.BinaryOp:
			walk(x.LHS)
			walk(x.RHS)
		case *ast.UnaryOp:
			walk(x.Operand)
		case *ast.IsNull:
			walk(x.Operand)
		case *ast.HasLabels:
			walk(x.Subject)
		case *ast.FunctionCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.Case:
			walk(x.Test)
			for _, alt := range x.Alternatives {
				walk(alt.When)
				walk(alt.Then)
			}
			walk(x.Else)
		}
	}
	walk(e)
	return out
}
