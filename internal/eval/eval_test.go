package eval

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/result"
	"repro/internal/value"
)

// evalStr parses and evaluates an expression under the given record.
func evalStr(t *testing.T, src string, rec result.Record, params map[string]value.Value) (value.Value, error) {
	t.Helper()
	e, err := parser.ParseExpression(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ctx := &Context{Params: params}
	return ctx.Evaluate(e, rec)
}

func mustEval(t *testing.T, src string, rec result.Record) value.Value {
	t.Helper()
	v, err := evalStr(t, src, rec, nil)
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v
}

func TestEvaluateLiteralsAndArithmetic(t *testing.T) {
	rec := result.NewRecord()
	cases := map[string]value.Value{
		"1 + 2 * 3":              value.NewInt(7),
		"(1 + 2) * 3":            value.NewInt(9),
		"10 / 4":                 value.NewInt(2),
		"10.0 / 4":               value.NewFloat(2.5),
		"7 % 3":                  value.NewInt(1),
		"2 ^ 10":                 value.NewFloat(1024),
		"-5 + 2":                 value.NewInt(-3),
		"'a' + 'b'":              value.NewString("ab"),
		"[1] + [2, 3]":           value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3)),
		"1 = 1.0":                value.NewBool(true),
		"1 < 2":                  value.NewBool(true),
		"2 <= 1":                 value.NewBool(false),
		"'abc' STARTS WITH 'ab'": value.NewBool(true),
		"'abc' ENDS WITH 'bc'":   value.NewBool(true),
		"'abc' CONTAINS 'd'":     value.NewBool(false),
		"'abc' =~ 'a.c'":         value.NewBool(true),
		"2 IN [1, 2, 3]":         value.NewBool(true),
		"5 IN [1, 2, 3]":         value.NewBool(false),
		"true AND false":         value.NewBool(false),
		"true OR false":          value.NewBool(true),
		"true XOR true":          value.NewBool(false),
		"NOT false":              value.NewBool(true),
		"null IS NULL":           value.NewBool(true),
		"1 IS NOT NULL":          value.NewBool(true),
	}
	for src, want := range cases {
		got := mustEval(t, src, rec)
		if value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvaluateNullPropagation(t *testing.T) {
	rec := result.FromMap(map[string]value.Value{"x": value.Null()})
	nullCases := []string{
		"x + 1", "1 + x", "x = 1", "x < 1", "x STARTS WITH 'a'", "x IN [1, 2]",
		"1 IN [x]", "x[0]", "x[0..1]", "x.prop", "NOT x", "-x",
		"x AND true", "x OR false", "x XOR true",
	}
	for _, src := range nullCases {
		got := mustEval(t, src, rec)
		if !value.IsNull(got) {
			t.Errorf("%s should be null, got %v", src, got)
		}
	}
	// Three-valued logic short circuits.
	if got := mustEval(t, "x AND false", rec); value.Compare(got, value.NewBool(false)) != 0 {
		t.Errorf("null AND false should be false")
	}
	if got := mustEval(t, "x OR true", rec); value.Compare(got, value.NewBool(true)) != 0 {
		t.Errorf("null OR true should be true")
	}
	// IN with a null element is unknown unless a match is found.
	if got := mustEval(t, "1 IN [null, 2]", result.NewRecord()); !value.IsNull(got) {
		t.Errorf("1 IN [null, 2] should be null, got %v", got)
	}
	if got := mustEval(t, "2 IN [null, 2]", result.NewRecord()); value.Compare(got, value.NewBool(true)) != 0 {
		t.Errorf("2 IN [null, 2] should be true")
	}
}

func TestEvaluateCollections(t *testing.T) {
	rec := result.FromMap(map[string]value.Value{"xs": value.NewList(value.NewInt(10), value.NewInt(20), value.NewInt(30))})
	cases := map[string]value.Value{
		"xs[0]":                           value.NewInt(10),
		"xs[-1]":                          value.NewInt(30),
		"xs[5]":                           value.Null(),
		"xs[0..2]":                        value.NewList(value.NewInt(10), value.NewInt(20)),
		"xs[..2]":                         value.NewList(value.NewInt(10), value.NewInt(20)),
		"xs[1..]":                         value.NewList(value.NewInt(20), value.NewInt(30)),
		"xs[-2..]":                        value.NewList(value.NewInt(20), value.NewInt(30)),
		"xs[2..1]":                        value.NewList(),
		"{a: 1}.a":                        value.NewInt(1),
		"{a: 1}.b":                        value.Null(),
		"{a: 1}['a']":                     value.NewInt(1),
		"[x IN xs WHERE x > 10 | x / 10]": value.NewList(value.NewInt(2), value.NewInt(3)),
		"[x IN xs | x + 1]":               value.NewList(value.NewInt(11), value.NewInt(21), value.NewInt(31)),
		"[x IN xs WHERE x > 100]":         value.NewList(),
		"size(xs)":                        value.NewInt(3),
		"head(xs)":                        value.NewInt(10),
		"last(xs)":                        value.NewInt(30),
		"tail(xs)":                        value.NewList(value.NewInt(20), value.NewInt(30)),
		"reverse(xs)[0]":                  value.NewInt(30),
	}
	for src, want := range cases {
		got := mustEval(t, src, rec)
		if value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvaluateCase(t *testing.T) {
	rec := result.FromMap(map[string]value.Value{"x": value.NewInt(2)})
	cases := map[string]value.Value{
		"CASE WHEN x = 1 THEN 'one' WHEN x = 2 THEN 'two' ELSE 'many' END": value.NewString("two"),
		"CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END":                   value.NewString("two"),
		"CASE x WHEN 9 THEN 'nine' END":                                    value.Null(),
		"CASE WHEN x > 10 THEN 'big' END":                                  value.Null(),
	}
	for src, want := range cases {
		got := mustEval(t, src, rec)
		if value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	rec := result.NewRecord()
	if _, err := evalStr(t, "missing + 1", rec, nil); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("unknown variable error expected, got %v", err)
	}
	if _, err := evalStr(t, "$p", rec, nil); !errors.Is(err, ErrUnknownParameter) {
		t.Errorf("unknown parameter error expected, got %v", err)
	}
	if _, err := evalStr(t, "count(1)", rec, nil); !errors.Is(err, ErrAggregateHere) {
		t.Errorf("aggregate misuse error expected, got %v", err)
	}
	if _, err := evalStr(t, "count(*)", rec, nil); !errors.Is(err, ErrAggregateHere) {
		t.Errorf("count(*) misuse error expected, got %v", err)
	}
	if _, err := evalStr(t, "1.prop", rec, nil); !errors.Is(err, ErrTypeError) {
		t.Errorf("property access on integer should be a type error, got %v", err)
	}
	if _, err := evalStr(t, "1[0]", rec, nil); !errors.Is(err, ErrTypeError) {
		t.Errorf("indexing an integer should be a type error, got %v", err)
	}
	if _, err := evalStr(t, "'x'[0..1]", rec, nil); !errors.Is(err, ErrTypeError) {
		t.Errorf("slicing a string should be a type error, got %v", err)
	}
	if _, err := evalStr(t, "nosuchfunction(1)", rec, nil); err == nil {
		t.Errorf("unknown function should fail")
	}
	if _, err := evalStr(t, "'a' =~ '('", rec, nil); err == nil {
		t.Errorf("invalid regular expression should fail")
	}
	if _, err := evalStr(t, "1 IN 2", rec, nil); !errors.Is(err, ErrTypeError) {
		t.Errorf("IN on a non-list should be a type error, got %v", err)
	}
}

func TestEvaluateParameters(t *testing.T) {
	params := map[string]value.Value{"limit": value.NewInt(3), "name": value.NewString("Ada")}
	v, err := evalStr(t, "$limit * 2", result.NewRecord(), params)
	if err != nil || value.Compare(v, value.NewInt(6)) != 0 {
		t.Errorf("$limit * 2 = %v, %v", v, err)
	}
	v, err = evalStr(t, "$name STARTS WITH 'A'", result.NewRecord(), params)
	if err != nil || value.Compare(v, value.NewBool(true)) != 0 {
		t.Errorf("parameter string predicate wrong: %v, %v", v, err)
	}
}

func TestScalarFunctionLibrary(t *testing.T) {
	rec := result.NewRecord()
	cases := map[string]value.Value{
		"coalesce(null, null, 3)":     value.NewInt(3),
		"coalesce(null)":              value.Null(),
		"abs(-4)":                     value.NewInt(4),
		"abs(-4.5)":                   value.NewFloat(4.5),
		"sign(-9)":                    value.NewInt(-1),
		"sign(0)":                     value.NewInt(0),
		"ceil(1.2)":                   value.NewFloat(2),
		"floor(1.8)":                  value.NewFloat(1),
		"round(1.5)":                  value.NewFloat(2),
		"sqrt(16)":                    value.NewFloat(4),
		"toInteger('42')":             value.NewInt(42),
		"toInteger(3.9)":              value.NewInt(3),
		"toInteger('junk')":           value.Null(),
		"toFloat('2.5')":              value.NewFloat(2.5),
		"toFloat(2)":                  value.NewFloat(2),
		"toBoolean('true')":           value.NewBool(true),
		"toBoolean('junk')":           value.Null(),
		"toString(42)":                value.NewString("42"),
		"toUpper('ab')":               value.NewString("AB"),
		"toLower('AB')":               value.NewString("ab"),
		"trim('  x  ')":               value.NewString("x"),
		"lTrim('  x')":                value.NewString("x"),
		"rTrim('x  ')":                value.NewString("x"),
		"replace('banana', 'a', 'o')": value.NewString("bonono"),
		"split('a,b,c', ',')[1]":      value.NewString("b"),
		"substring('hello', 1, 3)":    value.NewString("ell"),
		"substring('hello', 1)":       value.NewString("ello"),
		"left('hello', 2)":            value.NewString("he"),
		"right('hello', 2)":           value.NewString("lo"),
		"reverse('abc')":              value.NewString("cba"),
		"size('hello')":               value.NewInt(5),
		"length('hello')":             value.NewInt(5),
		"range(1, 4)":                 value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4)),
		"range(5, 1, -2)":             value.NewList(value.NewInt(5), value.NewInt(3), value.NewInt(1)),
		"exists(null)":                value.NewBool(false),
		"exists(1)":                   value.NewBool(true),
	}
	for src, want := range cases {
		got := mustEval(t, src, rec)
		if value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "range(1, 10, 0)", rec, nil); err == nil {
		t.Errorf("range with zero step should fail")
	}
	if _, err := evalStr(t, "abs('x')", rec, nil); err == nil {
		t.Errorf("abs of a string should fail")
	}
}

func TestAggregators(t *testing.T) {
	feed := func(t *testing.T, name string, distinct bool, vals ...value.Value) value.Value {
		t.Helper()
		agg, err := NewAggregator(name, distinct)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if err := agg.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		return agg.Result()
	}
	if got := feed(t, "count", false, value.NewInt(1), value.Null(), value.NewInt(2)); value.Compare(got, value.NewInt(2)) != 0 {
		t.Errorf("count skips nulls: %v", got)
	}
	if got := feed(t, "count", true, value.NewInt(1), value.NewInt(1), value.NewInt(2)); value.Compare(got, value.NewInt(2)) != 0 {
		t.Errorf("count distinct: %v", got)
	}
	if got := feed(t, "sum", false, value.NewInt(1), value.NewFloat(2.5)); value.Compare(got, value.NewFloat(3.5)) != 0 {
		t.Errorf("sum: %v", got)
	}
	if got := feed(t, "sum", false); value.Compare(got, value.NewInt(0)) != 0 {
		t.Errorf("empty sum should be 0: %v", got)
	}
	if got := feed(t, "avg", false, value.NewInt(1), value.NewInt(3)); value.Compare(got, value.NewFloat(2)) != 0 {
		t.Errorf("avg: %v", got)
	}
	if got := feed(t, "avg", false); !value.IsNull(got) {
		t.Errorf("empty avg should be null: %v", got)
	}
	if got := feed(t, "min", false, value.NewInt(5), value.NewInt(2), value.Null()); value.Compare(got, value.NewInt(2)) != 0 {
		t.Errorf("min: %v", got)
	}
	if got := feed(t, "max", false, value.NewString("a"), value.NewString("c")); value.Compare(got, value.NewString("c")) != 0 {
		t.Errorf("max: %v", got)
	}
	if got := feed(t, "min", false); !value.IsNull(got) {
		t.Errorf("empty min should be null: %v", got)
	}
	if got := feed(t, "collect", true, value.NewInt(1), value.NewInt(1), value.Null()); value.Compare(got, value.NewList(value.NewInt(1))) != 0 {
		t.Errorf("collect distinct skips nulls and duplicates: %v", got)
	}
	star := NewCountStarAggregator()
	_ = star.Add(value.Null())
	_ = star.Add(value.Null())
	if value.Compare(star.Result(), value.NewInt(2)) != 0 {
		t.Errorf("count(*) counts rows including nulls")
	}
	if _, err := NewAggregator("nope", false); err == nil {
		t.Errorf("unknown aggregator should fail")
	}
	agg, _ := NewAggregator("sum", false)
	if err := agg.Add(value.NewString("x")); err == nil {
		t.Errorf("sum of a string should fail")
	}
	avgAgg, _ := NewAggregator("avg", false)
	if err := avgAgg.Add(value.NewBool(true)); err == nil {
		t.Errorf("avg of a boolean should fail")
	}
}

func TestContainsAggregateAndVariables(t *testing.T) {
	parse := func(src string) ast.Expr {
		e, err := parser.ParseExpression(src)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if !ContainsAggregate(parse("count(x) + 1")) || !ContainsAggregate(parse("count(*)")) {
		t.Errorf("ContainsAggregate misses aggregates")
	}
	if ContainsAggregate(parse("size(x) + 1")) {
		t.Errorf("size() is not an aggregate")
	}
	if !IsAggregate("collect") || IsAggregate("size") {
		t.Errorf("IsAggregate wrong")
	}
	vars := Variables(parse("a.x + b[c] + [y IN d WHERE y > e | y + f]"))
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true, "f": true}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected variable %q", v)
		}
	}
	// The comprehension variable itself is not free.
	for _, v := range vars {
		if v == "y" {
			t.Errorf("comprehension variable should not be free")
		}
	}
	if vs := Variables(parse("(a)-[:KNOWS]->(b)")); len(vs) != 2 {
		t.Errorf("pattern predicate variables = %v", vs)
	}
}

// Property: evaluating a literal integer expression equals doing the
// arithmetic in Go (within a safe range).
func TestQuickArithmeticAgainstGo(t *testing.T) {
	ctx := &Context{}
	f := func(a, b int16) bool {
		e := &ast.BinaryOp{
			Op:  ast.OpAdd,
			LHS: &ast.Literal{Value: value.NewInt(int64(a))},
			RHS: &ast.BinaryOp{Op: ast.OpMul, LHS: &ast.Literal{Value: value.NewInt(int64(b))}, RHS: &ast.Literal{Value: value.NewInt(3)}},
		}
		got, err := ctx.Evaluate(e, result.NewRecord())
		if err != nil {
			return false
		}
		return value.Compare(got, value.NewInt(int64(a)+int64(b)*3)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
