package eval

// Batch compilation of the common WHERE predicates. The vectorized Filter
// kernel asks the evaluator to compile its predicate once per pipeline into
// a closure over (batch, row) so the hot loop does not re-enter the scalar
// tree walker per row. Compilation is best-effort: any expression form
// without a batch translation reports !ok and the kernel falls back to
// per-row evaluation over a view record, which keeps semantics (and error
// messages) trivially identical.
//
// The compiled forms mirror the scalar evaluator exactly: logical
// connectives evaluate both operands (no short-circuit, matching
// evalBinary), comparisons go through the same value.* ternary comparators,
// and unbound variables raise the same ErrUnknownVariable.

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/result"
	"repro/internal/value"
)

// BatchPredicate evaluates a compiled predicate against one selected row of
// a batch, returning the three-valued truth of the scalar evaluator.
type BatchPredicate func(b *result.Batch, row int32) (value.Ternary, error)

// BatchExpr evaluates a compiled expression against one row of a batch.
type BatchExpr func(b *result.Batch, row int32) (value.Value, error)

// CompileBatchPredicate compiles a WHERE predicate for batch evaluation over
// rows laid out by tab. It reports ok=false when the expression contains a
// form without a batch translation; the caller then keeps per-row scalar
// evaluation.
func (c *Context) CompileBatchPredicate(e ast.Expr, tab *result.SlotTable) (BatchPredicate, bool) {
	ce, ok := c.compileBatchExpr(e, tab)
	if !ok {
		return nil, false
	}
	return func(b *result.Batch, row int32) (value.Ternary, error) {
		v, err := ce(b, row)
		if err != nil {
			return value.UnknownT, err
		}
		return value.TernaryOf(v), nil
	}, true
}

// CompileBatchExpr compiles an expression for batch evaluation (the Project
// kernel uses it per item). Same contract as CompileBatchPredicate.
func (c *Context) CompileBatchExpr(e ast.Expr, tab *result.SlotTable) (BatchExpr, bool) {
	return c.compileBatchExpr(e, tab)
}

// compileBatchExpr compiles the subset of expressions the batch kernels
// support: literals, resolved parameters, slotted variables, property
// access, comparisons, string predicates, IN, logical connectives, NOT,
// IS [NOT] NULL, and label predicates.
func (c *Context) compileBatchExpr(e ast.Expr, tab *result.SlotTable) (BatchExpr, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		v := x.Value
		return func(*result.Batch, int32) (value.Value, error) { return v, nil }, true
	case *ast.Parameter:
		// Resolved at compile time (parameters are per-query constants). A
		// missing parameter makes the expression non-compilable so the row
		// fallback surfaces the identical ErrUnknownParameter.
		v, ok := c.Params[x.Name]
		if !ok {
			return nil, false
		}
		return func(*result.Batch, int32) (value.Value, error) { return v, nil }, true
	case *ast.Variable:
		slot, ok := tab.Slot(x.Name)
		if !ok {
			return nil, false
		}
		name := x.Name
		return func(b *result.Batch, row int32) (value.Value, error) {
			v := b.Col(slot)[row]
			if v == nil {
				return nil, fmt.Errorf("%w: %s", ErrUnknownVariable, name)
			}
			return v, nil
		}, true
	case *ast.PropertyAccess:
		subject, ok := c.compileBatchExpr(x.Subject, tab)
		if !ok {
			return nil, false
		}
		key := x.Key
		return func(b *result.Batch, row int32) (value.Value, error) {
			sv, err := subject(b, row)
			if err != nil {
				return nil, err
			}
			return PropertyOf(sv, key)
		}, true
	case *ast.IsNull:
		operand, ok := c.compileBatchExpr(x.Operand, tab)
		if !ok {
			return nil, false
		}
		negated := x.Negated
		return func(b *result.Batch, row int32) (value.Value, error) {
			v, err := operand(b, row)
			if err != nil {
				return nil, err
			}
			isNull := value.IsNull(v)
			if negated {
				return value.NewBool(!isNull), nil
			}
			return value.NewBool(isNull), nil
		}, true
	case *ast.HasLabels:
		subject, ok := c.compileBatchExpr(x.Subject, tab)
		if !ok {
			return nil, false
		}
		labels := x.Labels
		return func(b *result.Batch, row int32) (value.Value, error) {
			sv, err := subject(b, row)
			if err != nil {
				return nil, err
			}
			if value.IsNull(sv) {
				return value.Null(), nil
			}
			n, ok := value.AsNode(sv)
			if !ok {
				return nil, fmt.Errorf("%w: label predicate requires a node, got %s", ErrTypeError, sv.Kind())
			}
			for _, l := range labels {
				if !n.HasLabel(l) {
					return value.NewBool(false), nil
				}
			}
			return value.NewBool(true), nil
		}, true
	case *ast.UnaryOp:
		if x.Op != ast.OpNot {
			return nil, false
		}
		operand, ok := c.compileBatchExpr(x.Operand, tab)
		if !ok {
			return nil, false
		}
		return func(b *result.Batch, row int32) (value.Value, error) {
			v, err := operand(b, row)
			if err != nil {
				return nil, err
			}
			return value.Not(value.TernaryOf(v)).ToValue(), nil
		}, true
	case *ast.BinaryOp:
		lhs, ok := c.compileBatchExpr(x.LHS, tab)
		if !ok {
			return nil, false
		}
		rhs, ok := c.compileBatchExpr(x.RHS, tab)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpXor:
			// Like evalBinary, both operands are evaluated (no short-circuit:
			// an error on the right surfaces even when the left decides).
			op := x.Op
			return func(b *result.Batch, row int32) (value.Value, error) {
				lv, err := lhs(b, row)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(b, row)
				if err != nil {
					return nil, err
				}
				lt, rt := value.TernaryOf(lv), value.TernaryOf(rv)
				switch op {
				case ast.OpAnd:
					return value.And(lt, rt).ToValue(), nil
				case ast.OpOr:
					return value.Or(lt, rt).ToValue(), nil
				default:
					return value.Xor(lt, rt).ToValue(), nil
				}
			}, true
		case ast.OpEq, ast.OpNeq, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			op := x.Op
			return func(b *result.Batch, row int32) (value.Value, error) {
				lv, err := lhs(b, row)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(b, row)
				if err != nil {
					return nil, err
				}
				switch op {
				case ast.OpEq:
					return value.Equals(lv, rv).ToValue(), nil
				case ast.OpNeq:
					return value.Not(value.Equals(lv, rv)).ToValue(), nil
				case ast.OpLt:
					return value.Less(lv, rv).ToValue(), nil
				case ast.OpLe:
					return value.LessEq(lv, rv).ToValue(), nil
				case ast.OpGt:
					return value.Greater(lv, rv).ToValue(), nil
				default:
					return value.GreaterEq(lv, rv).ToValue(), nil
				}
			}, true
		case ast.OpStartsWith, ast.OpEndsWith, ast.OpContains:
			op := x.Op
			return func(b *result.Batch, row int32) (value.Value, error) {
				lv, err := lhs(b, row)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(b, row)
				if err != nil {
					return nil, err
				}
				return evalStringPredicate(op, lv, rv)
			}, true
		case ast.OpIn:
			return func(b *result.Batch, row int32) (value.Value, error) {
				lv, err := lhs(b, row)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(b, row)
				if err != nil {
					return nil, err
				}
				return evalIn(lv, rv)
			}, true
		}
		return nil, false
	}
	return nil, false
}
