package eval

import (
	"testing"

	"repro/internal/value"
)

// TestAggregatorMerge verifies that splitting an input stream into chunks,
// aggregating each chunk separately and merging the partial states (in chunk
// order) produces exactly the result of one serial pass — the property the
// parallel executor relies on at its barrier.
func TestAggregatorMerge(t *testing.T) {
	inputs := []value.Value{
		value.NewInt(3), value.NewInt(1), value.Null(), value.NewInt(4),
		value.NewInt(1), value.NewInt(5), value.NewInt(9), value.Null(),
		value.NewInt(2), value.NewInt(6), value.NewInt(5), value.NewInt(3),
	}
	cases := []struct {
		fn       string
		distinct bool
	}{
		{"count", false}, {"count", true},
		{"collect", false}, {"collect", true},
		{"sum", false}, {"avg", false},
		{"min", false}, {"max", false},
	}
	for _, c := range cases {
		serial, err := NewAggregator(c.fn, c.distinct)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range inputs {
			if err := serial.Add(v); err != nil {
				t.Fatal(err)
			}
		}

		// Three uneven chunks, merged in order.
		bounds := []int{0, 5, 7, len(inputs)}
		var parts []Aggregator
		for i := 0; i+1 < len(bounds); i++ {
			part, err := NewAggregator(c.fn, c.distinct)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range inputs[bounds[i]:bounds[i+1]] {
				if err := part.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			parts = append(parts, part)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}

		want, got := serial.Result(), merged.Result()
		if value.Compare(want, got) != 0 || want.String() != got.String() {
			t.Errorf("%s(distinct=%v): merged %s != serial %s", c.fn, c.distinct, got, want)
		}
	}

	// count(*) merges row counts.
	a, b := NewCountStarAggregator(), NewCountStarAggregator()
	for i := 0; i < 3; i++ {
		_ = a.Add(value.Null())
	}
	for i := 0; i < 4; i++ {
		_ = b.Add(value.Null())
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, _ := value.AsInt(a.Result()); got != 7 {
		t.Errorf("merged count(*) = %d, want 7", got)
	}

	// Merging different aggregator kinds is a programming error.
	x, _ := NewAggregator("sum", false)
	y, _ := NewAggregator("count", false)
	if err := x.Merge(y); err == nil {
		t.Errorf("merging sum into count should fail")
	}
}
