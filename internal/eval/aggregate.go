package eval

import (
	"fmt"

	"repro/internal/value"
)

// aggregateNames is the set of aggregating functions. Their semantics follow
// SQL (and the paper's Section 3 examples): null inputs are skipped, count(*)
// counts rows, and DISTINCT de-duplicates inputs before aggregation.
var aggregateNames = map[string]bool{
	"count":   true,
	"collect": true,
	"sum":     true,
	"avg":     true,
	"min":     true,
	"max":     true,
}

// IsAggregate reports whether the named function is an aggregating function.
func IsAggregate(name string) bool { return aggregateNames[name] }

// Aggregator accumulates values for one aggregation expression within one
// group.
type Aggregator interface {
	// Add feeds one input value (already evaluated) into the aggregate.
	Add(v value.Value) error
	// Merge folds another partial aggregate of the same kind into this one.
	// The parallel executor builds one aggregator per morsel and combines
	// them at the barrier in morsel order, so merged results (including
	// order-sensitive ones like collect) match serial execution exactly.
	Merge(other Aggregator) error
	// Result returns the aggregate for the group.
	Result() value.Value
}

// mergeTypeError reports an attempt to merge aggregators of different kinds;
// it can only happen through a programming error in the parallel executor.
func mergeTypeError(dst, src Aggregator) error {
	return fmt.Errorf("eval: cannot merge aggregator %T into %T", src, dst)
}

// NewAggregator creates an aggregator for the named function. Distinct wraps
// the aggregator so that equivalent input values are only counted once.
func NewAggregator(name string, distinct bool) (Aggregator, error) {
	var agg Aggregator
	switch name {
	case "count":
		agg = &countAgg{}
	case "collect":
		agg = &collectAgg{}
	case "sum":
		agg = &sumAgg{}
	case "avg":
		agg = &avgAgg{}
	case "min":
		agg = &minMaxAgg{min: true}
	case "max":
		agg = &minMaxAgg{min: false}
	default:
		return nil, fmt.Errorf("eval: unknown aggregating function %q", name)
	}
	if distinct {
		return &distinctAgg{inner: agg, seen: map[string]bool{}}, nil
	}
	return agg, nil
}

// NewCountStarAggregator returns the aggregator for count(*), which counts
// rows rather than non-null values.
func NewCountStarAggregator() Aggregator { return &countStarAgg{} }

type countAgg struct{ n int64 }

func (a *countAgg) Add(v value.Value) error {
	if !value.IsNull(v) {
		a.n++
	}
	return nil
}
func (a *countAgg) Result() value.Value { return value.NewInt(a.n) }

func (a *countAgg) Merge(other Aggregator) error {
	o, ok := other.(*countAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	a.n += o.n
	return nil
}

type countStarAgg struct{ n int64 }

func (a *countStarAgg) Add(value.Value) error { a.n++; return nil }
func (a *countStarAgg) Result() value.Value   { return value.NewInt(a.n) }

func (a *countStarAgg) Merge(other Aggregator) error {
	o, ok := other.(*countStarAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	a.n += o.n
	return nil
}

type collectAgg struct{ vals []value.Value }

func (a *collectAgg) Add(v value.Value) error {
	if !value.IsNull(v) {
		a.vals = append(a.vals, v)
	}
	return nil
}
func (a *collectAgg) Result() value.Value { return value.NewListOf(a.vals) }

func (a *collectAgg) Merge(other Aggregator) error {
	o, ok := other.(*collectAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	a.vals = append(a.vals, o.vals...)
	return nil
}

type sumAgg struct {
	sum value.Value
	any bool
}

func (a *sumAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	if !value.IsNumber(v) {
		return fmt.Errorf("%w: sum() requires numbers, got %s", ErrTypeError, v.Kind())
	}
	if !a.any {
		a.sum = v
		a.any = true
		return nil
	}
	s, err := value.Add(a.sum, v)
	if err != nil {
		return err
	}
	a.sum = s
	return nil
}
func (a *sumAgg) Result() value.Value {
	if !a.any {
		return value.NewInt(0)
	}
	return a.sum
}

func (a *sumAgg) Merge(other Aggregator) error {
	o, ok := other.(*sumAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	if !o.any {
		return nil
	}
	return a.Add(o.sum)
}

type avgAgg struct {
	sum   float64
	count int64
}

func (a *avgAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	f, ok := value.AsFloat(v)
	if !ok {
		return fmt.Errorf("%w: avg() requires numbers, got %s", ErrTypeError, v.Kind())
	}
	a.sum += f
	a.count++
	return nil
}
func (a *avgAgg) Result() value.Value {
	if a.count == 0 {
		return value.Null()
	}
	return value.NewFloat(a.sum / float64(a.count))
}

func (a *avgAgg) Merge(other Aggregator) error {
	o, ok := other.(*avgAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	a.sum += o.sum
	a.count += o.count
	return nil
}

type minMaxAgg struct {
	min  bool
	best value.Value
}

func (a *minMaxAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	if a.best == nil {
		a.best = v
		return nil
	}
	cmp := value.Compare(v, a.best)
	if (a.min && cmp < 0) || (!a.min && cmp > 0) {
		a.best = v
	}
	return nil
}
func (a *minMaxAgg) Result() value.Value {
	if a.best == nil {
		return value.Null()
	}
	return a.best
}

func (a *minMaxAgg) Merge(other Aggregator) error {
	o, ok := other.(*minMaxAgg)
	if !ok || a.min != o.min {
		return mergeTypeError(a, other)
	}
	if o.best == nil {
		return nil
	}
	return a.Add(o.best)
}

type distinctAgg struct {
	inner Aggregator
	seen  map[string]bool
	// order keeps the distinct values in first-seen order so that a merge
	// can replay the other side's values (deduplicating against this side)
	// without re-evaluating any input rows.
	order []value.Value
	// keyBuf is the reused key-encoding buffer; already-seen values are
	// rejected without materialising a key string (m[string(buf)] lookups
	// do not allocate).
	keyBuf []byte
}

func (a *distinctAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	a.keyBuf = value.AppendGroupKey(a.keyBuf[:0], v)
	if a.seen[string(a.keyBuf)] {
		return nil
	}
	a.seen[string(a.keyBuf)] = true
	a.order = append(a.order, v)
	return a.inner.Add(v)
}

func (a *distinctAgg) Merge(other Aggregator) error {
	o, ok := other.(*distinctAgg)
	if !ok {
		return mergeTypeError(a, other)
	}
	for _, v := range o.order {
		if err := a.Add(v); err != nil {
			return err
		}
	}
	return nil
}

func (a *distinctAgg) Result() value.Value { return a.inner.Result() }
