package eval

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/value"
)

// ScalarFunc is the signature of a built-in scalar function.
type ScalarFunc func(args []value.Value) (value.Value, error)

// scalarFunctions is the registry of non-aggregating built-in functions
// (the set F of base functions the paper parameterises the semantics with).
var scalarFunctions = map[string]ScalarFunc{}

// RegisterFunction adds (or replaces) a scalar function; used by extension
// packages such as the temporal types.
func RegisterFunction(name string, fn ScalarFunc) {
	scalarFunctions[strings.ToLower(name)] = fn
}

// HasFunction reports whether a scalar function with the given name exists.
func HasFunction(name string) bool {
	_, ok := scalarFunctions[strings.ToLower(name)]
	return ok
}

// CallFunction invokes a registered scalar function directly with
// already-evaluated arguments; used by tools and tests.
func CallFunction(name string, args []value.Value) (value.Value, error) {
	fn, ok := scalarFunctions[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("eval: unknown function %q", name)
	}
	return fn(args)
}

func argError(name string, expected string) error {
	return fmt.Errorf("%w: %s expects %s", ErrTypeError, name, expected)
}

func arity(name string, args []value.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("eval: %s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func init() {
	// --- graph entity functions ---
	RegisterFunction("id", func(args []value.Value) (value.Value, error) {
		if err := arity("id", args, 1); err != nil {
			return nil, err
		}
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindNode:
			n, _ := value.AsNode(args[0])
			return value.NewInt(n.ID()), nil
		case args[0].Kind() == value.KindRelationship:
			r, _ := value.AsRelationship(args[0])
			return value.NewInt(r.ID()), nil
		}
		return nil, argError("id", "a node or relationship")
	})
	RegisterFunction("labels", func(args []value.Value) (value.Value, error) {
		if err := arity("labels", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		n, ok := value.AsNode(args[0])
		if !ok {
			return nil, argError("labels", "a node")
		}
		labels := n.Labels()
		out := make([]value.Value, len(labels))
		for i, l := range labels {
			out[i] = value.NewString(l)
		}
		return value.NewListOf(out), nil
	})
	RegisterFunction("type", func(args []value.Value) (value.Value, error) {
		if err := arity("type", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		r, ok := value.AsRelationship(args[0])
		if !ok {
			return nil, argError("type", "a relationship")
		}
		return value.NewString(r.RelType()), nil
	})
	RegisterFunction("keys", func(args []value.Value) (value.Value, error) {
		if err := arity("keys", args, 1); err != nil {
			return nil, err
		}
		var keys []string
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindNode:
			n, _ := value.AsNode(args[0])
			keys = n.PropertyKeys()
		case args[0].Kind() == value.KindRelationship:
			r, _ := value.AsRelationship(args[0])
			keys = r.PropertyKeys()
		case args[0].Kind() == value.KindMap:
			m, _ := value.AsMap(args[0])
			keys = m.Keys()
		default:
			return nil, argError("keys", "a node, relationship or map")
		}
		out := make([]value.Value, len(keys))
		for i, k := range keys {
			out[i] = value.NewString(k)
		}
		return value.NewListOf(out), nil
	})
	RegisterFunction("properties", func(args []value.Value) (value.Value, error) {
		if err := arity("properties", args, 1); err != nil {
			return nil, err
		}
		entries := map[string]value.Value{}
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindNode:
			n, _ := value.AsNode(args[0])
			for _, k := range n.PropertyKeys() {
				entries[k] = n.Property(k)
			}
		case args[0].Kind() == value.KindRelationship:
			r, _ := value.AsRelationship(args[0])
			for _, k := range r.PropertyKeys() {
				entries[k] = r.Property(k)
			}
		case args[0].Kind() == value.KindMap:
			return args[0], nil
		default:
			return nil, argError("properties", "a node, relationship or map")
		}
		return value.NewMap(entries), nil
	})
	RegisterFunction("startnode", func(args []value.Value) (value.Value, error) {
		if err := arity("startNode", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		r, ok := value.AsRelationship(args[0])
		if !ok {
			return nil, argError("startNode", "a relationship")
		}
		return relEndpoint(r, true)
	})
	RegisterFunction("endnode", func(args []value.Value) (value.Value, error) {
		if err := arity("endNode", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		r, ok := value.AsRelationship(args[0])
		if !ok {
			return nil, argError("endNode", "a relationship")
		}
		return relEndpoint(r, false)
	})
	RegisterFunction("nodes", func(args []value.Value) (value.Value, error) {
		if err := arity("nodes", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		p, ok := value.AsPath(args[0])
		if !ok {
			return nil, argError("nodes", "a path")
		}
		out := make([]value.Value, len(p.Nodes))
		for i, n := range p.Nodes {
			out[i] = value.NewNode(n)
		}
		return value.NewListOf(out), nil
	})
	RegisterFunction("relationships", func(args []value.Value) (value.Value, error) {
		if err := arity("relationships", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		p, ok := value.AsPath(args[0])
		if !ok {
			return nil, argError("relationships", "a path")
		}
		out := make([]value.Value, len(p.Rels))
		for i, r := range p.Rels {
			out[i] = value.NewRelationship(r)
		}
		return value.NewListOf(out), nil
	})
	RegisterFunction("length", func(args []value.Value) (value.Value, error) {
		if err := arity("length", args, 1); err != nil {
			return nil, err
		}
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindPath:
			p, _ := value.AsPath(args[0])
			return value.NewInt(int64(p.Length())), nil
		case args[0].Kind() == value.KindList:
			l, _ := value.AsList(args[0])
			return value.NewInt(int64(l.Len())), nil
		case args[0].Kind() == value.KindString:
			s, _ := value.AsString(args[0])
			return value.NewInt(int64(len(s))), nil
		}
		return nil, argError("length", "a path, list or string")
	})
	RegisterFunction("size", func(args []value.Value) (value.Value, error) {
		if err := arity("size", args, 1); err != nil {
			return nil, err
		}
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindList:
			l, _ := value.AsList(args[0])
			return value.NewInt(int64(l.Len())), nil
		case args[0].Kind() == value.KindString:
			s, _ := value.AsString(args[0])
			return value.NewInt(int64(len(s))), nil
		case args[0].Kind() == value.KindMap:
			m, _ := value.AsMap(args[0])
			return value.NewInt(int64(m.Len())), nil
		}
		return nil, argError("size", "a list, string or map")
	})
	RegisterFunction("exists", func(args []value.Value) (value.Value, error) {
		if err := arity("exists", args, 1); err != nil {
			return nil, err
		}
		return value.NewBool(!value.IsNull(args[0])), nil
	})
	RegisterFunction("coalesce", func(args []value.Value) (value.Value, error) {
		for _, a := range args {
			if !value.IsNull(a) {
				return a, nil
			}
		}
		return value.Null(), nil
	})

	// --- list functions ---
	RegisterFunction("head", listFunc("head", func(l value.List) (value.Value, error) {
		if l.Len() == 0 {
			return value.Null(), nil
		}
		return l.At(0), nil
	}))
	RegisterFunction("last", listFunc("last", func(l value.List) (value.Value, error) {
		if l.Len() == 0 {
			return value.Null(), nil
		}
		return l.At(l.Len() - 1), nil
	}))
	RegisterFunction("tail", listFunc("tail", func(l value.List) (value.Value, error) {
		if l.Len() == 0 {
			return value.NewList(), nil
		}
		return value.NewListOf(append([]value.Value(nil), l.Elements()[1:]...)), nil
	}))
	RegisterFunction("reverse", func(args []value.Value) (value.Value, error) {
		if err := arity("reverse", args, 1); err != nil {
			return nil, err
		}
		switch {
		case value.IsNull(args[0]):
			return value.Null(), nil
		case args[0].Kind() == value.KindString:
			s, _ := value.AsString(args[0])
			runes := []rune(s)
			for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
				runes[i], runes[j] = runes[j], runes[i]
			}
			return value.NewString(string(runes)), nil
		case args[0].Kind() == value.KindList:
			l, _ := value.AsList(args[0])
			out := make([]value.Value, l.Len())
			for i := 0; i < l.Len(); i++ {
				out[l.Len()-1-i] = l.At(i)
			}
			return value.NewListOf(out), nil
		}
		return nil, argError("reverse", "a list or string")
	})
	RegisterFunction("range", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("eval: range expects 2 or 3 arguments, got %d", len(args))
		}
		for _, a := range args {
			if value.IsNull(a) {
				return value.Null(), nil
			}
		}
		from, ok1 := value.AsInt(args[0])
		to, ok2 := value.AsInt(args[1])
		step := int64(1)
		ok3 := true
		if len(args) == 3 {
			step, ok3 = value.AsInt(args[2])
		}
		if !ok1 || !ok2 || !ok3 {
			return nil, argError("range", "integer arguments")
		}
		if step == 0 {
			return nil, fmt.Errorf("eval: range step cannot be zero")
		}
		var out []value.Value
		if step > 0 {
			for i := from; i <= to; i += step {
				out = append(out, value.NewInt(i))
			}
		} else {
			for i := from; i >= to; i += step {
				out = append(out, value.NewInt(i))
			}
		}
		return value.NewListOf(out), nil
	})

	// --- numeric functions ---
	RegisterFunction("abs", numericFunc("abs", func(f float64) float64 { return math.Abs(f) }, func(i int64) (int64, bool) {
		if i < 0 {
			return -i, true
		}
		return i, true
	}))
	RegisterFunction("sign", func(args []value.Value) (value.Value, error) {
		if err := arity("sign", args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		f, ok := value.AsFloat(args[0])
		if !ok {
			return nil, argError("sign", "a number")
		}
		switch {
		case f > 0:
			return value.NewInt(1), nil
		case f < 0:
			return value.NewInt(-1), nil
		default:
			return value.NewInt(0), nil
		}
	})
	RegisterFunction("ceil", floatFunc("ceil", math.Ceil))
	RegisterFunction("floor", floatFunc("floor", math.Floor))
	RegisterFunction("round", floatFunc("round", math.Round))
	RegisterFunction("sqrt", floatFunc("sqrt", math.Sqrt))
	RegisterFunction("exp", floatFunc("exp", math.Exp))
	RegisterFunction("log", floatFunc("log", math.Log))
	RegisterFunction("log10", floatFunc("log10", math.Log10))

	// --- type conversions ---
	RegisterFunction("tointeger", func(args []value.Value) (value.Value, error) {
		if err := arity("toInteger", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0]; {
		case value.IsNull(v):
			return value.Null(), nil
		case v.Kind() == value.KindInt:
			return v, nil
		case v.Kind() == value.KindFloat:
			f, _ := value.AsFloat(v)
			return value.NewInt(int64(f)), nil
		case v.Kind() == value.KindString:
			s, _ := value.AsString(v)
			if i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
				return value.NewInt(i), nil
			}
			if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
				return value.NewInt(int64(f)), nil
			}
			return value.Null(), nil
		}
		return nil, argError("toInteger", "a number or string")
	})
	RegisterFunction("tofloat", func(args []value.Value) (value.Value, error) {
		if err := arity("toFloat", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0]; {
		case value.IsNull(v):
			return value.Null(), nil
		case v.Kind() == value.KindFloat:
			return v, nil
		case v.Kind() == value.KindInt:
			f, _ := value.AsFloat(v)
			return value.NewFloat(f), nil
		case v.Kind() == value.KindString:
			s, _ := value.AsString(v)
			if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
				return value.NewFloat(f), nil
			}
			return value.Null(), nil
		}
		return nil, argError("toFloat", "a number or string")
	})
	RegisterFunction("toboolean", func(args []value.Value) (value.Value, error) {
		if err := arity("toBoolean", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0]; {
		case value.IsNull(v):
			return value.Null(), nil
		case v.Kind() == value.KindBool:
			return v, nil
		case v.Kind() == value.KindString:
			s, _ := value.AsString(v)
			switch strings.ToLower(strings.TrimSpace(s)) {
			case "true":
				return value.NewBool(true), nil
			case "false":
				return value.NewBool(false), nil
			}
			return value.Null(), nil
		}
		return nil, argError("toBoolean", "a boolean or string")
	})
	RegisterFunction("tostring", func(args []value.Value) (value.Value, error) {
		if err := arity("toString", args, 1); err != nil {
			return nil, err
		}
		v := args[0]
		if value.IsNull(v) {
			return value.Null(), nil
		}
		if s, ok := value.AsString(v); ok {
			return value.NewString(s), nil
		}
		return value.NewString(v.String()), nil
	})

	// --- string functions ---
	RegisterFunction("toupper", stringFunc("toUpper", strings.ToUpper))
	RegisterFunction("tolower", stringFunc("toLower", strings.ToLower))
	RegisterFunction("trim", stringFunc("trim", strings.TrimSpace))
	RegisterFunction("ltrim", stringFunc("lTrim", func(s string) string { return strings.TrimLeft(s, " \t\r\n") }))
	RegisterFunction("rtrim", stringFunc("rTrim", func(s string) string { return strings.TrimRight(s, " \t\r\n") }))
	RegisterFunction("replace", func(args []value.Value) (value.Value, error) {
		if err := arity("replace", args, 3); err != nil {
			return nil, err
		}
		s, old, new_, ok := threeStrings(args)
		if !ok {
			return value.Null(), nil
		}
		return value.NewString(strings.ReplaceAll(s, old, new_)), nil
	})
	RegisterFunction("split", func(args []value.Value) (value.Value, error) {
		if err := arity("split", args, 2); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) || value.IsNull(args[1]) {
			return value.Null(), nil
		}
		s, ok1 := value.AsString(args[0])
		sep, ok2 := value.AsString(args[1])
		if !ok1 || !ok2 {
			return nil, argError("split", "string arguments")
		}
		parts := strings.Split(s, sep)
		out := make([]value.Value, len(parts))
		for i, p := range parts {
			out[i] = value.NewString(p)
		}
		return value.NewListOf(out), nil
	})
	RegisterFunction("substring", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("eval: substring expects 2 or 3 arguments")
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		s, ok := value.AsString(args[0])
		if !ok {
			return nil, argError("substring", "a string")
		}
		start, ok := value.AsInt(args[1])
		if !ok {
			return nil, argError("substring", "an integer start")
		}
		runes := []rune(s)
		if start < 0 || start > int64(len(runes)) {
			return value.NewString(""), nil
		}
		end := int64(len(runes))
		if len(args) == 3 {
			n, ok := value.AsInt(args[2])
			if !ok {
				return nil, argError("substring", "an integer length")
			}
			if start+n < end {
				end = start + n
			}
		}
		return value.NewString(string(runes[start:end])), nil
	})
	RegisterFunction("left", func(args []value.Value) (value.Value, error) {
		if err := arity("left", args, 2); err != nil {
			return nil, err
		}
		return takeString(args, true)
	})
	RegisterFunction("right", func(args []value.Value) (value.Value, error) {
		if err := arity("right", args, 2); err != nil {
			return nil, err
		}
		return takeString(args, false)
	})
}

func relEndpoint(r value.Relationship, start bool) (value.Value, error) {
	// The relationship interface only exposes endpoint identifiers; concrete
	// graph relationships expose the nodes directly.
	type endpoints interface {
		StartEndNodes() (value.Node, value.Node)
	}
	if ep, ok := r.(endpoints); ok {
		s, e := ep.StartEndNodes()
		if start {
			return value.NewNode(s), nil
		}
		return value.NewNode(e), nil
	}
	return nil, fmt.Errorf("eval: relationship does not expose its endpoints")
}

func listFunc(name string, fn func(value.List) (value.Value, error)) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		l, ok := value.AsList(args[0])
		if !ok {
			return nil, argError(name, "a list")
		}
		return fn(l)
	}
}

func floatFunc(name string, fn func(float64) float64) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		f, ok := value.AsFloat(args[0])
		if !ok {
			return nil, argError(name, "a number")
		}
		return value.NewFloat(fn(f)), nil
	}
}

func numericFunc(name string, ffn func(float64) float64, ifn func(int64) (int64, bool)) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		if i, ok := value.AsInt(args[0]); ok {
			if r, ok2 := ifn(i); ok2 {
				return value.NewInt(r), nil
			}
		}
		f, ok := value.AsFloat(args[0])
		if !ok {
			return nil, argError(name, "a number")
		}
		return value.NewFloat(ffn(f)), nil
	}
}

func stringFunc(name string, fn func(string) string) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		if value.IsNull(args[0]) {
			return value.Null(), nil
		}
		s, ok := value.AsString(args[0])
		if !ok {
			return nil, argError(name, "a string")
		}
		return value.NewString(fn(s)), nil
	}
}

func threeStrings(args []value.Value) (a, b, c string, ok bool) {
	for _, x := range args {
		if value.IsNull(x) {
			return "", "", "", false
		}
	}
	a, ok1 := value.AsString(args[0])
	b, ok2 := value.AsString(args[1])
	c, ok3 := value.AsString(args[2])
	return a, b, c, ok1 && ok2 && ok3
}

func takeString(args []value.Value, fromLeft bool) (value.Value, error) {
	if value.IsNull(args[0]) || value.IsNull(args[1]) {
		return value.Null(), nil
	}
	s, ok1 := value.AsString(args[0])
	n, ok2 := value.AsInt(args[1])
	if !ok1 || !ok2 {
		return nil, argError("left/right", "a string and an integer")
	}
	runes := []rune(s)
	if n < 0 {
		return nil, fmt.Errorf("eval: left/right length must be non-negative")
	}
	if n > int64(len(runes)) {
		n = int64(len(runes))
	}
	if fromLeft {
		return value.NewString(string(runes[:n])), nil
	}
	return value.NewString(string(runes[int64(len(runes))-n:])), nil
}
