package value

import (
	"testing"
	"testing/quick"
)

func TestEqualsScalars(t *testing.T) {
	cases := []struct {
		a, b Value
		want Ternary
	}{
		{NewInt(1), NewInt(1), TrueT},
		{NewInt(1), NewInt(2), FalseT},
		{NewInt(1), NewFloat(1.0), TrueT},
		{NewFloat(2.5), NewInt(2), FalseT},
		{NewString("a"), NewString("a"), TrueT},
		{NewString("a"), NewString("b"), FalseT},
		{NewBool(true), NewBool(true), TrueT},
		{NewBool(true), NewBool(false), FalseT},
		{NewInt(1), NewString("1"), FalseT},
		{Null(), NewInt(1), UnknownT},
		{NewInt(1), Null(), UnknownT},
		{Null(), Null(), UnknownT},
	}
	for _, c := range cases {
		if got := Equals(c.a, c.b); got != c.want {
			t.Errorf("Equals(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualsComposite(t *testing.T) {
	l1 := NewList(NewInt(1), NewInt(2))
	l2 := NewList(NewInt(1), NewInt(2))
	l3 := NewList(NewInt(1), NewInt(3))
	l4 := NewList(NewInt(1))
	lNull := NewList(NewInt(1), Null())
	if Equals(l1, l2) != TrueT {
		t.Errorf("equal lists should be equal")
	}
	if Equals(l1, l3) != FalseT {
		t.Errorf("different lists should not be equal")
	}
	if Equals(l1, l4) != FalseT {
		t.Errorf("lists of different length should not be equal")
	}
	if Equals(l1, lNull) != UnknownT {
		t.Errorf("list containing null compared with equal prefix should be unknown")
	}
	if Equals(NewList(NewInt(2), Null()), l1) != FalseT {
		t.Errorf("a definite element mismatch dominates an unknown")
	}

	m1 := NewMap(map[string]Value{"a": NewInt(1), "b": NewString("x")})
	m2 := NewMap(map[string]Value{"b": NewString("x"), "a": NewInt(1)})
	m3 := NewMap(map[string]Value{"a": NewInt(2), "b": NewString("x")})
	m4 := NewMap(map[string]Value{"a": NewInt(1)})
	mNull := NewMap(map[string]Value{"a": Null(), "b": NewString("x")})
	if Equals(m1, m2) != TrueT {
		t.Errorf("maps with same entries should be equal")
	}
	if Equals(m1, m3) != FalseT {
		t.Errorf("maps with different values should not be equal")
	}
	if Equals(m1, m4) != FalseT {
		t.Errorf("maps with different sizes should not be equal")
	}
	if Equals(m1, mNull) != UnknownT {
		t.Errorf("map with null value should compare unknown")
	}
}

func TestEqualsEntities(t *testing.T) {
	n1 := NewNode(fakeNode{id: 1})
	n1b := NewNode(fakeNode{id: 1, labels: []string{"X"}})
	n2 := NewNode(fakeNode{id: 2})
	if Equals(n1, n1b) != TrueT {
		t.Errorf("nodes compare by identifier")
	}
	if Equals(n1, n2) != FalseT {
		t.Errorf("different nodes differ")
	}
	r1 := NewRelationship(fakeRel{id: 10})
	r2 := NewRelationship(fakeRel{id: 11})
	if Equals(r1, r1) != TrueT || Equals(r1, r2) != FalseT {
		t.Errorf("relationships compare by identifier")
	}
	p1 := NewPath(Path{Nodes: []Node{fakeNode{id: 1}, fakeNode{id: 2}}, Rels: []Relationship{fakeRel{id: 10}}})
	p2 := NewPath(Path{Nodes: []Node{fakeNode{id: 1}, fakeNode{id: 2}}, Rels: []Relationship{fakeRel{id: 10}}})
	p3 := NewPath(Path{Nodes: []Node{fakeNode{id: 1}, fakeNode{id: 3}}, Rels: []Relationship{fakeRel{id: 10}}})
	p4 := NewPath(Path{Nodes: []Node{fakeNode{id: 1}}})
	if Equals(p1, p2) != TrueT || Equals(p1, p3) != FalseT || Equals(p1, p4) != FalseT {
		t.Errorf("path equality by node/relationship identifiers")
	}
	if Equals(n1, r1) != FalseT {
		t.Errorf("node and relationship are never equal")
	}
}

func TestLessAndFriends(t *testing.T) {
	cases := []struct {
		a, b Value
		want Ternary
	}{
		{NewInt(1), NewInt(2), TrueT},
		{NewInt(2), NewInt(1), FalseT},
		{NewInt(2), NewInt(2), FalseT},
		{NewInt(1), NewFloat(1.5), TrueT},
		{NewFloat(0.5), NewInt(1), TrueT},
		{NewString("a"), NewString("b"), TrueT},
		{NewString("b"), NewString("a"), FalseT},
		{NewBool(false), NewBool(true), TrueT},
		{NewBool(true), NewBool(false), FalseT},
		{NewInt(1), NewString("2"), UnknownT},
		{Null(), NewInt(1), UnknownT},
		{NewList(NewInt(1)), NewList(NewInt(2)), TrueT},
		{NewList(NewInt(1), NewInt(1)), NewList(NewInt(1)), FalseT},
		{NewList(NewInt(1)), NewList(NewInt(1), NewInt(0)), TrueT},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if Greater(NewInt(2), NewInt(1)) != TrueT {
		t.Errorf("Greater wrong")
	}
	if LessEq(NewInt(2), NewInt(2)) != TrueT || LessEq(NewInt(3), NewInt(2)) != FalseT {
		t.Errorf("LessEq wrong")
	}
	if LessEq(Null(), NewInt(2)) != UnknownT {
		t.Errorf("LessEq with null should be unknown")
	}
	if GreaterEq(NewInt(2), NewInt(2)) != TrueT || GreaterEq(NewInt(1), NewInt(2)) != FalseT {
		t.Errorf("GreaterEq wrong")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Orderability: maps < nodes < relationships < lists < paths < strings <
	// booleans < numbers < null.
	ordered := []Value{
		NewMap(map[string]Value{"a": NewInt(1)}),
		NewNode(fakeNode{id: 1}),
		NewRelationship(fakeRel{id: 1}),
		NewList(NewInt(1)),
		NewPath(Path{Nodes: []Node{fakeNode{id: 1}}}),
		NewString("s"),
		NewBool(false),
		NewInt(0),
		Null(),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want negative", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want positive", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestCompareWithinKinds(t *testing.T) {
	if Compare(NewInt(1), NewInt(2)) >= 0 {
		t.Errorf("1 should order before 2")
	}
	if Compare(NewInt(2), NewFloat(1.5)) <= 0 {
		t.Errorf("2 should order after 1.5")
	}
	if Compare(NewFloat(1.0), NewInt(1)) != 0 {
		t.Errorf("1.0 and 1 should be equivalent")
	}
	if Compare(NewString("a"), NewString("b")) >= 0 {
		t.Errorf("strings order lexicographically")
	}
	if Compare(NewBool(false), NewBool(true)) >= 0 {
		t.Errorf("false orders before true")
	}
	if Compare(NewList(NewInt(1)), NewList(NewInt(1), NewInt(2))) >= 0 {
		t.Errorf("prefix list orders before longer list")
	}
	if Compare(NewMap(map[string]Value{"a": NewInt(1)}), NewMap(map[string]Value{"a": NewInt(2)})) >= 0 {
		t.Errorf("map values participate in ordering")
	}
	if Compare(NewMap(map[string]Value{"a": NewInt(1)}), NewMap(map[string]Value{"b": NewInt(1)})) >= 0 {
		t.Errorf("map keys participate in ordering")
	}
	if Compare(NewNode(fakeNode{id: 1}), NewNode(fakeNode{id: 5})) >= 0 {
		t.Errorf("nodes order by identifier")
	}
	nan, _ := Div(NewFloat(0), NewFloat(0))
	if Compare(nan, NewFloat(1e18)) <= 0 {
		t.Errorf("NaN orders after numbers")
	}
	if Compare(nan, nan) != 0 {
		t.Errorf("NaN is equivalent to NaN")
	}
}

func TestEquivalentAndSort(t *testing.T) {
	if !Equivalent(NewInt(1), NewFloat(1)) {
		t.Errorf("1 and 1.0 are equivalent")
	}
	if !Equivalent(Null(), Null()) {
		t.Errorf("null is equivalent to null for grouping")
	}
	if Equivalent(NewInt(1), NewInt(2)) {
		t.Errorf("1 and 2 are not equivalent")
	}
	vs := []Value{Null(), NewInt(3), NewString("a"), NewInt(1), NewBool(true)}
	SortValues(vs)
	if _, ok := AsString(vs[0]); !ok {
		t.Errorf("strings order first among these kinds, got %v", vs[0])
	}
	if !IsNull(vs[len(vs)-1]) {
		t.Errorf("null orders last, got %v", vs[len(vs)-1])
	}
}

func TestTernaryOfAndToValue(t *testing.T) {
	if TernaryOf(NewBool(true)) != TrueT || TernaryOf(NewBool(false)) != FalseT {
		t.Errorf("TernaryOf booleans wrong")
	}
	if TernaryOf(Null()) != UnknownT || TernaryOf(NewInt(1)) != UnknownT {
		t.Errorf("TernaryOf null/non-bool should be unknown")
	}
	if TrueT.ToValue() != NewBool(true) || FalseT.ToValue() != NewBool(false) || !IsNull(UnknownT.ToValue()) {
		t.Errorf("Ternary.ToValue wrong")
	}
}

// Property: Compare defines a total order consistent with Equals on
// comparable kinds, and Equals is symmetric.
func TestQuickEqualsSymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Equals(NewInt(a), NewInt(b)) == Equals(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		va, vb := NewInt(a), NewInt(b)
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		vs1, vs2 := NewString(s1), NewString(s2)
		return sign(Compare(vs1, vs2)) == -sign(Compare(vs2, vs1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c float64) bool {
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
