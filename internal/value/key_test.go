package value

import (
	"testing"
	"testing/quick"
)

func TestGroupKeyEquivalence(t *testing.T) {
	cases := []struct {
		a, b Value
		same bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewFloat(1.0), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewString("1"), false},
		{Null(), Null(), true},
		{Null(), NewInt(0), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewBool(false), false},
		{NewString("ab"), NewString("ab"), true},
		{NewString("ab"), NewString("abc"), false},
		{NewList(NewInt(1), NewInt(2)), NewList(NewInt(1), NewInt(2)), true},
		{NewList(NewInt(1), NewInt(2)), NewList(NewInt(1), NewInt(3)), false},
		{NewList(NewInt(1)), NewList(NewInt(1), Null()), false},
		{NewMap(map[string]Value{"a": NewInt(1)}), NewMap(map[string]Value{"a": NewInt(1)}), true},
		{NewMap(map[string]Value{"a": NewInt(1)}), NewMap(map[string]Value{"b": NewInt(1)}), false},
		{NewNode(fakeNode{id: 4}), NewNode(fakeNode{id: 4, labels: []string{"L"}}), true},
		{NewNode(fakeNode{id: 4}), NewNode(fakeNode{id: 5}), false},
		{NewRelationship(fakeRel{id: 9}), NewRelationship(fakeRel{id: 9}), true},
	}
	for _, c := range cases {
		ka, kb := GroupKey(c.a), GroupKey(c.b)
		if (ka == kb) != c.same {
			t.Errorf("GroupKey(%v) vs GroupKey(%v): same=%v, want %v", c.a, c.b, ka == kb, c.same)
		}
	}
}

func TestGroupKeyNaN(t *testing.T) {
	nan1, _ := Div(NewFloat(0), NewFloat(0))
	nan2, _ := Div(NewFloat(0), NewFloat(0))
	if GroupKey(nan1) != GroupKey(nan2) {
		t.Errorf("NaN should group with NaN")
	}
}

func TestGroupKeyOfTuples(t *testing.T) {
	k1 := GroupKeyOf(NewInt(1), NewString("a"))
	k2 := GroupKeyOf(NewInt(1), NewString("a"))
	k3 := GroupKeyOf(NewInt(1), NewString("b"))
	k4 := GroupKeyOf(NewInt(1))
	if k1 != k2 {
		t.Errorf("identical tuples should share a key")
	}
	if k1 == k3 || k1 == k4 {
		t.Errorf("different tuples should not share a key")
	}
	// Tuple boundaries matter: (["a","b"]) differs from ("a","b").
	k5 := GroupKeyOf(NewList(NewString("a"), NewString("b")))
	k6 := GroupKeyOf(NewString("a"), NewString("b"))
	if k5 == k6 {
		t.Errorf("list tuple and flat tuple should not collide")
	}
}

// Property: GroupKey is consistent with Equivalent (Compare == 0) for
// scalars.
func TestQuickGroupKeyConsistentWithCompare(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return (GroupKey(va) == GroupKey(vb)) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := NewString(a), NewString(b)
		return (GroupKey(va) == GroupKey(vb)) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(a float64, b int64) bool {
		va, vb := NewFloat(a), NewInt(b)
		return (GroupKey(va) == GroupKey(vb)) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}
