package value

import (
	"encoding/binary"
	"math"
	"strconv"
)

// GroupKey returns a canonical string encoding of a value usable as a Go map
// key for grouping and DISTINCT. Two values receive the same key if and only
// if they are Equivalent (Compare(a,b) == 0). In particular integers and
// floats representing the same number encode identically, null has a single
// encoding, and NaN is equivalent to NaN.
func GroupKey(v Value) string {
	return string(AppendGroupKey(nil, v))
}

// GroupKeyOf returns a canonical composite key for a tuple of values.
func GroupKeyOf(vs ...Value) string {
	return string(AppendGroupKeyOf(nil, vs...))
}

// AppendGroupKey appends the canonical encoding of v to dst and returns the
// extended buffer. Hot paths (grouping, DISTINCT) keep one buffer per
// operator and look groups up with m[string(buf)] — which Go compiles
// without allocating — so the key string itself is only materialised when a
// new group is created.
func AppendGroupKey(dst []byte, v Value) []byte {
	return appendGroupKey(dst, v)
}

// AppendGroupKeyOf appends the canonical composite encoding of the tuple.
func AppendGroupKeyOf(dst []byte, vs ...Value) []byte {
	for _, v := range vs {
		dst = appendGroupKey(dst, v)
		dst = append(dst, 0x1f) // unit separator between tuple positions
	}
	return dst
}

func appendGroupKey(dst []byte, v Value) []byte {
	switch t := v.(type) {
	case nullValue:
		return append(dst, "\x00N"...)
	case Bool:
		if bool(t) {
			return append(dst, "\x01T"...)
		}
		return append(dst, "\x01F"...)
	case Int:
		dst = append(dst, '\x02')
		dst = appendFloatBits(dst, float64(t))
		// Disambiguate integers too large to be exact floats by also writing
		// the decimal form; equal floats/ints still share a prefix.
		if float64(int64(t)) != float64(t) || int64(float64(t)) != int64(t) {
			dst = strconv.AppendInt(dst, int64(t), 10)
		}
		return dst
	case Float:
		dst = append(dst, '\x02')
		f := float64(t)
		if math.IsNaN(f) {
			return append(dst, "NaN"...)
		}
		dst = appendFloatBits(dst, f)
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Align with the Int encoding above for whole-number floats.
			i := int64(f)
			if float64(i) != f || int64(float64(i)) != i {
				dst = strconv.AppendInt(dst, i, 10)
			}
		}
		return dst
	case String:
		dst = append(dst, '\x03')
		dst = strconv.AppendInt(dst, int64(len(t)), 10)
		dst = append(dst, ':')
		return append(dst, t...)
	case List:
		dst = append(dst, "\x04["...)
		for _, e := range t.Elements() {
			dst = appendGroupKey(dst, e)
			dst = append(dst, 0x1e)
		}
		return append(dst, ']')
	case Map:
		dst = append(dst, "\x05{"...)
		for _, k := range t.Keys() {
			dst = strconv.AppendInt(dst, int64(len(k)), 10)
			dst = append(dst, ':')
			dst = append(dst, k...)
			dst = append(dst, '=')
			e, _ := t.Get(k)
			dst = appendGroupKey(dst, e)
			dst = append(dst, 0x1e)
		}
		return append(dst, '}')
	case NodeValue:
		dst = append(dst, "\x06n"...)
		return strconv.AppendInt(dst, t.N.ID(), 10)
	case RelationshipValue:
		dst = append(dst, "\x07r"...)
		return strconv.AppendInt(dst, t.R.ID(), 10)
	case PathValue:
		dst = append(dst, "\x08p"...)
		for _, n := range t.P.Nodes {
			dst = strconv.AppendInt(dst, n.ID(), 10)
			dst = append(dst, ',')
		}
		dst = append(dst, '|')
		for _, r := range t.P.Rels {
			dst = strconv.AppendInt(dst, r.ID(), 10)
			dst = append(dst, ',')
		}
		return dst
	default:
		dst = append(dst, "\x09x"...)
		dst = append(dst, v.Kind().String()...)
		return append(dst, v.String()...)
	}
}

func appendFloatBits(dst []byte, f float64) []byte {
	if f == 0 {
		f = 0 // normalise -0 to +0
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(dst, buf[:]...)
}
