package value

import (
	"encoding/binary"
	"math"
	"strconv"
	"strings"
)

// GroupKey returns a canonical string encoding of a value usable as a Go map
// key for grouping and DISTINCT. Two values receive the same key if and only
// if they are Equivalent (Compare(a,b) == 0). In particular integers and
// floats representing the same number encode identically, null has a single
// encoding, and NaN is equivalent to NaN.
func GroupKey(v Value) string {
	var sb strings.Builder
	writeGroupKey(&sb, v)
	return sb.String()
}

// GroupKeyOf returns a canonical composite key for a tuple of values.
func GroupKeyOf(vs ...Value) string {
	var sb strings.Builder
	for _, v := range vs {
		writeGroupKey(&sb, v)
		sb.WriteByte(0x1f) // unit separator between tuple positions
	}
	return sb.String()
}

func writeGroupKey(sb *strings.Builder, v Value) {
	switch t := v.(type) {
	case nullValue:
		sb.WriteString("\x00N")
	case Bool:
		if bool(t) {
			sb.WriteString("\x01T")
		} else {
			sb.WriteString("\x01F")
		}
	case Int:
		sb.WriteString("\x02")
		writeFloatBits(sb, float64(t))
		// Disambiguate integers too large to be exact floats by also writing
		// the decimal form; equal floats/ints still share a prefix.
		if float64(int64(t)) != float64(t) || int64(float64(t)) != int64(t) {
			sb.WriteString(strconv.FormatInt(int64(t), 10))
		}
	case Float:
		sb.WriteString("\x02")
		f := float64(t)
		if math.IsNaN(f) {
			sb.WriteString("NaN")
			return
		}
		writeFloatBits(sb, f)
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Align with the Int encoding above for whole-number floats.
			i := int64(f)
			if float64(i) != f || int64(float64(i)) != i {
				sb.WriteString(strconv.FormatInt(i, 10))
			}
		}
	case String:
		sb.WriteString("\x03")
		sb.WriteString(strconv.Itoa(len(t)))
		sb.WriteString(":")
		sb.WriteString(string(t))
	case List:
		sb.WriteString("\x04[")
		for _, e := range t.Elements() {
			writeGroupKey(sb, e)
			sb.WriteByte(0x1e)
		}
		sb.WriteString("]")
	case Map:
		sb.WriteString("\x05{")
		for _, k := range t.Keys() {
			sb.WriteString(strconv.Itoa(len(k)))
			sb.WriteString(":")
			sb.WriteString(k)
			sb.WriteString("=")
			e, _ := t.Get(k)
			writeGroupKey(sb, e)
			sb.WriteByte(0x1e)
		}
		sb.WriteString("}")
	case NodeValue:
		sb.WriteString("\x06n")
		sb.WriteString(strconv.FormatInt(t.N.ID(), 10))
	case RelationshipValue:
		sb.WriteString("\x07r")
		sb.WriteString(strconv.FormatInt(t.R.ID(), 10))
	case PathValue:
		sb.WriteString("\x08p")
		for _, n := range t.P.Nodes {
			sb.WriteString(strconv.FormatInt(n.ID(), 10))
			sb.WriteString(",")
		}
		sb.WriteString("|")
		for _, r := range t.P.Rels {
			sb.WriteString(strconv.FormatInt(r.ID(), 10))
			sb.WriteString(",")
		}
	default:
		sb.WriteString("\x09x")
		sb.WriteString(v.Kind().String())
		sb.WriteString(v.String())
	}
}

func writeFloatBits(sb *strings.Builder, f float64) {
	if f == 0 {
		f = 0 // normalise -0 to +0
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
	sb.Write(buf[:])
}
