package value

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// fakeNode and fakeRel are minimal graph entities for testing the value layer
// without importing the graph package.
type fakeNode struct {
	id     int64
	labels []string
	props  map[string]Value
}

func (n fakeNode) ID() int64 { return n.id }
func (n fakeNode) Labels() []string {
	out := append([]string(nil), n.labels...)
	sort.Strings(out)
	return out
}
func (n fakeNode) HasLabel(l string) bool {
	for _, x := range n.labels {
		if x == l {
			return true
		}
	}
	return false
}
func (n fakeNode) Property(k string) Value {
	if v, ok := n.props[k]; ok {
		return v
	}
	return Null()
}
func (n fakeNode) PropertyKeys() []string {
	keys := make([]string, 0, len(n.props))
	for k := range n.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type fakeRel struct {
	id       int64
	typ      string
	from, to int64
	props    map[string]Value
}

func (r fakeRel) ID() int64          { return r.id }
func (r fakeRel) RelType() string    { return r.typ }
func (r fakeRel) StartNodeID() int64 { return r.from }
func (r fakeRel) EndNodeID() int64   { return r.to }
func (r fakeRel) Property(k string) Value {
	if v, ok := r.props[k]; ok {
		return v
	}
	return Null()
}
func (r fakeRel) PropertyKeys() []string {
	keys := make([]string, 0, len(r.props))
	for k := range r.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want Kind
	}{
		{Null(), KindNull},
		{NewBool(true), KindBool},
		{NewInt(1), KindInt},
		{NewFloat(1.5), KindFloat},
		{NewString("x"), KindString},
		{NewList(NewInt(1)), KindList},
		{NewMap(map[string]Value{"a": NewInt(1)}), KindMap},
		{NewNode(fakeNode{id: 1}), KindNode},
		{NewRelationship(fakeRel{id: 1}), KindRelationship},
		{NewPath(Path{Nodes: []Node{fakeNode{id: 1}}}), KindPath},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.want {
			t.Errorf("Kind(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "INTEGER" || KindNull.String() != "NULL" {
		t.Errorf("unexpected kind names: %s, %s", KindInt, KindNull)
	}
	if !strings.HasPrefix(Kind(99).String(), "KIND(") {
		t.Errorf("unknown kind should render as KIND(n), got %s", Kind(99))
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(42), "42"},
		{NewFloat(2.5), "2.5"},
		{NewFloat(3), "3.0"},
		{NewString("hi"), "'hi'"},
		{NewList(NewInt(1), NewString("a")), "[1, 'a']"},
		{NewMap(map[string]Value{"b": NewInt(2), "a": NewInt(1)}), "{a: 1, b: 2}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNodeAndRelRendering(t *testing.T) {
	n := fakeNode{id: 1, labels: []string{"Person"}, props: map[string]Value{"name": NewString("Nils")}}
	nv := NewNode(n)
	if got := nv.String(); got != "(:Person {name: 'Nils'})" {
		t.Errorf("node rendering = %q", got)
	}
	r := fakeRel{id: 7, typ: "KNOWS", from: 1, to: 2, props: map[string]Value{"since": NewInt(1985)}}
	rv := NewRelationship(r)
	if got := rv.String(); got != "[:KNOWS {since: 1985}]" {
		t.Errorf("relationship rendering = %q", got)
	}
}

func TestPathRendering(t *testing.T) {
	n1 := fakeNode{id: 1, labels: []string{"A"}}
	n2 := fakeNode{id: 2, labels: []string{"B"}}
	r := fakeRel{id: 5, typ: "REL", from: 1, to: 2}
	p := Path{Nodes: []Node{n1, n2}, Rels: []Relationship{r}}
	got := NewPath(p).String()
	if got != "(:A)-[:REL]->(:B)" {
		t.Errorf("path rendering = %q", got)
	}
	// Reversed relationship renders with a left arrow.
	rBack := fakeRel{id: 6, typ: "REL", from: 2, to: 1}
	p2 := Path{Nodes: []Node{n1, n2}, Rels: []Relationship{rBack}}
	if got := NewPath(p2).String(); got != "(:A)<-[:REL]-(:B)" {
		t.Errorf("reverse path rendering = %q", got)
	}
}

func TestAccessors(t *testing.T) {
	if v, ok := AsInt(NewInt(3)); !ok || v != 3 {
		t.Errorf("AsInt failed")
	}
	if _, ok := AsInt(NewString("3")); ok {
		t.Errorf("AsInt should fail on string")
	}
	if v, ok := AsFloat(NewInt(3)); !ok || v != 3.0 {
		t.Errorf("AsFloat on int failed")
	}
	if v, ok := AsFloat(NewFloat(2.5)); !ok || v != 2.5 {
		t.Errorf("AsFloat on float failed")
	}
	if v, ok := AsBool(NewBool(true)); !ok || !v {
		t.Errorf("AsBool failed")
	}
	if v, ok := AsString(NewString("x")); !ok || v != "x" {
		t.Errorf("AsString failed")
	}
	l, ok := AsList(NewList(NewInt(1), NewInt(2)))
	if !ok || l.Len() != 2 || l.At(1) != NewInt(2) {
		t.Errorf("AsList failed")
	}
	m, ok := AsMap(NewMap(map[string]Value{"k": NewInt(9)}))
	if !ok || m.Len() != 1 {
		t.Errorf("AsMap failed")
	}
	if v, present := m.Get("k"); !present || v != NewInt(9) {
		t.Errorf("Map.Get failed")
	}
	if _, present := m.Get("missing"); present {
		t.Errorf("Map.Get should report missing keys")
	}
	if !IsNull(Null()) || IsNull(NewInt(0)) {
		t.Errorf("IsNull misbehaves")
	}
	if !IsNumber(NewInt(1)) || !IsNumber(NewFloat(1)) || IsNumber(NewString("1")) {
		t.Errorf("IsNumber misbehaves")
	}
}

func TestPathAccessors(t *testing.T) {
	n1 := fakeNode{id: 1}
	n2 := fakeNode{id: 2}
	r := fakeRel{id: 3, from: 1, to: 2}
	p := Path{Nodes: []Node{n1, n2}, Rels: []Relationship{r}}
	if p.Length() != 1 {
		t.Errorf("Length = %d, want 1", p.Length())
	}
	if p.Start().ID() != 1 || p.End().ID() != 2 {
		t.Errorf("Start/End wrong")
	}
	pv, ok := AsPath(NewPath(p))
	if !ok || pv.Length() != 1 {
		t.Errorf("AsPath failed")
	}
	if n, ok := AsNode(NewNode(n1)); !ok || n.ID() != 1 {
		t.Errorf("AsNode failed")
	}
	if rr, ok := AsRelationship(NewRelationship(r)); !ok || rr.ID() != 3 {
		t.Errorf("AsRelationship failed")
	}
}

func TestFromGoAndToGo(t *testing.T) {
	in := map[string]any{
		"name":   "Elin",
		"age":    37,
		"score":  1.5,
		"active": true,
		"tags":   []any{"a", "b"},
		"nested": map[string]any{"x": nil},
	}
	v, err := FromGo(in)
	if err != nil {
		t.Fatalf("FromGo: %v", err)
	}
	m, ok := AsMap(v)
	if !ok {
		t.Fatalf("expected map, got %v", v.Kind())
	}
	if got, _ := m.Get("age"); got != NewInt(37) {
		t.Errorf("age = %v", got)
	}
	if got, _ := m.Get("score"); got != NewFloat(1.5) {
		t.Errorf("score = %v", got)
	}
	tags, _ := m.Get("tags")
	tl, _ := AsList(tags)
	if tl.Len() != 2 {
		t.Errorf("tags length = %d", tl.Len())
	}
	nested, _ := m.Get("nested")
	nm, _ := AsMap(nested)
	if x, _ := nm.Get("x"); !IsNull(x) {
		t.Errorf("nested null lost: %v", x)
	}

	round := ToGo(v)
	rm, ok := round.(map[string]any)
	if !ok {
		t.Fatalf("ToGo did not produce a map: %T", round)
	}
	if rm["name"] != "Elin" || rm["age"] != int64(37) || rm["active"] != true {
		t.Errorf("round trip lost data: %v", rm)
	}

	if _, err := FromGo(struct{}{}); err == nil {
		t.Errorf("FromGo should reject unsupported types")
	}
}

func TestFromGoScalars(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{int8(1), NewInt(1)},
		{int16(2), NewInt(2)},
		{int32(3), NewInt(3)},
		{int64(4), NewInt(4)},
		{uint(5), NewInt(5)},
		{uint8(6), NewInt(6)},
		{uint16(7), NewInt(7)},
		{uint32(8), NewInt(8)},
		{float32(1.5), NewFloat(1.5)},
		{NewInt(9), NewInt(9)},
	}
	for _, c := range cases {
		got, err := FromGo(c.in)
		if err != nil {
			t.Fatalf("FromGo(%v): %v", c.in, err)
		}
		if Compare(got, c.want) != 0 {
			t.Errorf("FromGo(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMapKeysSorted(t *testing.T) {
	m := NewMap(map[string]Value{"z": NewInt(1), "a": NewInt(2), "m": NewInt(3)})
	mv, _ := AsMap(m)
	keys := mv.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keys not sorted: %v", keys)
	}
}

func TestFloatRenderingSpecials(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	if inf.String() != "Infinity" {
		t.Errorf("inf renders as %q", inf.String())
	}
	ninf := NewFloat(math.Inf(-1))
	if ninf.String() != "-Infinity" {
		t.Errorf("-inf renders as %q", ninf.String())
	}
	nan, _ := Div(NewFloat(0), NewFloat(0))
	if nan.String() != "NaN" {
		t.Errorf("NaN renders as %q", nan.String())
	}
}
