package value

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// mustVal returns a helper that unwraps a (Value, error) pair, failing the
// test on error.
func mustVal(t *testing.T) func(Value, error) Value {
	return func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
}

func TestAdd(t *testing.T) {
	must := mustVal(t)
	if got := must(Add(NewInt(2), NewInt(3))); got != NewInt(5) {
		t.Errorf("2+3 = %v", got)
	}
	if got := must(Add(NewInt(2), NewFloat(0.5))); got != NewFloat(2.5) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := must(Add(NewFloat(1.5), NewInt(1))); got != NewFloat(2.5) {
		t.Errorf("1.5+1 = %v", got)
	}
	if got := must(Add(NewString("ab"), NewString("cd"))); got != NewString("abcd") {
		t.Errorf("string concat = %v", got)
	}
	if got := must(Add(NewList(NewInt(1)), NewList(NewInt(2)))); Compare(got, NewList(NewInt(1), NewInt(2))) != 0 {
		t.Errorf("list concat = %v", got)
	}
	if got := must(Add(NewList(NewInt(1)), NewInt(2))); Compare(got, NewList(NewInt(1), NewInt(2))) != 0 {
		t.Errorf("list append = %v", got)
	}
	if got := must(Add(NewInt(0), NewList(NewInt(1)))); Compare(got, NewList(NewInt(0), NewInt(1))) != 0 {
		t.Errorf("list prepend = %v", got)
	}
	if got := must(Add(Null(), NewInt(1))); !IsNull(got) {
		t.Errorf("null + 1 should be null")
	}
	if _, err := Add(NewBool(true), NewInt(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("bool + int should be a type mismatch, got %v", err)
	}
	if _, err := Add(NewInt(math.MaxInt64), NewInt(1)); !errors.Is(err, ErrIntegerOverflow) {
		t.Errorf("overflow not detected: %v", err)
	}
}

func TestSubMulDiv(t *testing.T) {
	must := mustVal(t)
	if got := must(Sub(NewInt(5), NewInt(3))); got != NewInt(2) {
		t.Errorf("5-3 = %v", got)
	}
	if got := must(Sub(NewFloat(5), NewInt(3))); got != NewFloat(2) {
		t.Errorf("5.0-3 = %v", got)
	}
	if got := must(Mul(NewInt(4), NewInt(3))); got != NewInt(12) {
		t.Errorf("4*3 = %v", got)
	}
	if got := must(Mul(NewInt(4), NewFloat(0.5))); got != NewFloat(2) {
		t.Errorf("4*0.5 = %v", got)
	}
	if got := must(Div(NewInt(7), NewInt(2))); got != NewInt(3) {
		t.Errorf("integer division truncates: 7/2 = %v", got)
	}
	if got := must(Div(NewFloat(7), NewInt(2))); got != NewFloat(3.5) {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := must(Mod(NewInt(7), NewInt(4))); got != NewInt(3) {
		t.Errorf("7%%4 = %v", got)
	}
	if got := must(Mod(NewFloat(7.5), NewFloat(2))); got != NewFloat(1.5) {
		t.Errorf("7.5 mod 2 = %v", got)
	}
	if got := must(Pow(NewInt(2), NewInt(10))); got != NewFloat(1024) {
		t.Errorf("2^10 = %v", got)
	}
	if got := must(Neg(NewInt(4))); got != NewInt(-4) {
		t.Errorf("-4 = %v", got)
	}
	if got := must(Neg(NewFloat(2.5))); got != NewFloat(-2.5) {
		t.Errorf("-2.5 = %v", got)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	must := mustVal(t)
	ops := []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod, Pow}
	for i, op := range ops {
		if got := must(op(Null(), NewInt(2))); !IsNull(got) {
			t.Errorf("op %d: null lhs should yield null", i)
		}
		if got := must(op(NewInt(2), Null())); !IsNull(got) {
			t.Errorf("op %d: null rhs should yield null", i)
		}
	}
	if got := must(Neg(Null())); !IsNull(got) {
		t.Errorf("negating null should yield null")
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); !errors.Is(err, ErrDivisionByZero) {
		t.Errorf("integer division by zero should error, got %v", err)
	}
	if _, err := Mod(NewInt(1), NewInt(0)); !errors.Is(err, ErrDivisionByZero) {
		t.Errorf("integer modulo by zero should error, got %v", err)
	}
	if v, err := Div(NewFloat(1), NewFloat(0)); err != nil || v.String() != "Infinity" {
		t.Errorf("float division by zero yields Infinity, got %v, %v", v, err)
	}
	if _, err := Sub(NewString("a"), NewInt(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string - int should be a type mismatch")
	}
	if _, err := Mul(NewBool(true), NewInt(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("bool * int should be a type mismatch")
	}
	if _, err := Pow(NewString("a"), NewInt(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string ^ int should be a type mismatch")
	}
	if _, err := Neg(NewString("a")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("negating a string should be a type mismatch")
	}
	if _, err := Sub(NewInt(math.MinInt64), NewInt(1)); !errors.Is(err, ErrIntegerOverflow) {
		t.Errorf("subtraction overflow not detected")
	}
	if _, err := Mul(NewInt(math.MaxInt64), NewInt(2)); !errors.Is(err, ErrIntegerOverflow) {
		t.Errorf("multiplication overflow not detected")
	}
	if _, err := Neg(NewInt(math.MinInt64)); !errors.Is(err, ErrIntegerOverflow) {
		t.Errorf("negation overflow not detected")
	}
}

// Property: integer addition is commutative and Add/Sub are inverses when no
// overflow occurs.
func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(NewInt(int64(a)), NewInt(int64(b)))
		y, err2 := Add(NewInt(int64(b)), NewInt(int64(a)))
		if err1 != nil || err2 != nil {
			return false
		}
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := Add(NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		back, err := Sub(sum, NewInt(int64(b)))
		if err != nil {
			return false
		}
		return back == NewInt(int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddStringNumberCoercion(t *testing.T) {
	cases := []struct {
		a, b Value
		want string
	}{
		{NewString("a"), NewInt(1), "a1"},
		{NewInt(1), NewString("a"), "1a"},
		{NewString("x"), NewFloat(1.5), "x1.5"},
		{NewFloat(2.5), NewString("y"), "2.5y"},
		{NewString(""), NewInt(-7), "-7"},
		{NewFloat(3), NewString("!"), "3.0!"}, // floats keep their float rendering
	}
	for _, c := range cases {
		got, err := Add(c.a, c.b)
		if err != nil {
			t.Errorf("Add(%v, %v): %v", c.a, c.b, err)
			continue
		}
		s, ok := AsString(got)
		if !ok || s != c.want {
			t.Errorf("Add(%v, %v) = %v, want %q", c.a, c.b, got, c.want)
		}
	}
	// Booleans and lists do not coerce.
	if _, err := Add(NewString("a"), NewBool(true)); err == nil {
		t.Error("string + bool must be a type mismatch")
	}
	if _, err := Add(NewBool(true), NewString("a")); err == nil {
		t.Error("bool + string must be a type mismatch")
	}
}
