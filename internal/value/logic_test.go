package value

import "testing"

func TestAndTruthTable(t *testing.T) {
	cases := []struct{ a, b, want Ternary }{
		{TrueT, TrueT, TrueT},
		{TrueT, FalseT, FalseT},
		{FalseT, TrueT, FalseT},
		{FalseT, FalseT, FalseT},
		{TrueT, UnknownT, UnknownT},
		{UnknownT, TrueT, UnknownT},
		{FalseT, UnknownT, FalseT},
		{UnknownT, FalseT, FalseT},
		{UnknownT, UnknownT, UnknownT},
	}
	for _, c := range cases {
		if got := And(c.a, c.b); got != c.want {
			t.Errorf("And(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrTruthTable(t *testing.T) {
	cases := []struct{ a, b, want Ternary }{
		{TrueT, TrueT, TrueT},
		{TrueT, FalseT, TrueT},
		{FalseT, TrueT, TrueT},
		{FalseT, FalseT, FalseT},
		{TrueT, UnknownT, TrueT},
		{UnknownT, TrueT, TrueT},
		{FalseT, UnknownT, UnknownT},
		{UnknownT, FalseT, UnknownT},
		{UnknownT, UnknownT, UnknownT},
	}
	for _, c := range cases {
		if got := Or(c.a, c.b); got != c.want {
			t.Errorf("Or(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNotTruthTable(t *testing.T) {
	if Not(TrueT) != FalseT || Not(FalseT) != TrueT || Not(UnknownT) != UnknownT {
		t.Errorf("Not truth table wrong")
	}
}

func TestXorTruthTable(t *testing.T) {
	cases := []struct{ a, b, want Ternary }{
		{TrueT, TrueT, FalseT},
		{TrueT, FalseT, TrueT},
		{FalseT, TrueT, TrueT},
		{FalseT, FalseT, FalseT},
		{TrueT, UnknownT, UnknownT},
		{UnknownT, FalseT, UnknownT},
		{UnknownT, UnknownT, UnknownT},
	}
	for _, c := range cases {
		if got := Xor(c.a, c.b); got != c.want {
			t.Errorf("Xor(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// De Morgan's laws hold in three-valued logic; verify exhaustively.
func TestDeMorgan(t *testing.T) {
	all := []Ternary{TrueT, FalseT, UnknownT}
	for _, a := range all {
		for _, b := range all {
			if Not(And(a, b)) != Or(Not(a), Not(b)) {
				t.Errorf("De Morgan AND failed for %v, %v", a, b)
			}
			if Not(Or(a, b)) != And(Not(a), Not(b)) {
				t.Errorf("De Morgan OR failed for %v, %v", a, b)
			}
		}
	}
}

// AND and OR are commutative and associative in three-valued logic.
func TestConnectiveAlgebra(t *testing.T) {
	all := []Ternary{TrueT, FalseT, UnknownT}
	for _, a := range all {
		for _, b := range all {
			if And(a, b) != And(b, a) {
				t.Errorf("AND not commutative for %v, %v", a, b)
			}
			if Or(a, b) != Or(b, a) {
				t.Errorf("OR not commutative for %v, %v", a, b)
			}
			if Xor(a, b) != Xor(b, a) {
				t.Errorf("XOR not commutative for %v, %v", a, b)
			}
			for _, c := range all {
				if And(And(a, b), c) != And(a, And(b, c)) {
					t.Errorf("AND not associative for %v, %v, %v", a, b, c)
				}
				if Or(Or(a, b), c) != Or(a, Or(b, c)) {
					t.Errorf("OR not associative for %v, %v, %v", a, b, c)
				}
			}
		}
	}
}
