package value

import "sort"

// This file implements snapshot copies of graph entities. Query results can
// outlive the lock the query ran under; a node or relationship value in a
// result must therefore not read the live store when the caller later asks
// for its labels or properties. Detach walks a value and replaces every
// entity view with an immutable copy taken while the query's lock is still
// held, giving results true snapshot semantics.

// detachedNode is an immutable copy of a node, decoupled from any store.
type detachedNode struct {
	id     int64
	labels []string // sorted
	props  map[string]Value
}

func (n *detachedNode) ID() int64 { return n.id }

func (n *detachedNode) Labels() []string { return append([]string(nil), n.labels...) }

func (n *detachedNode) HasLabel(label string) bool {
	i := sort.SearchStrings(n.labels, label)
	return i < len(n.labels) && n.labels[i] == label
}

func (n *detachedNode) Property(key string) Value {
	if v, ok := n.props[key]; ok {
		return v
	}
	return Null()
}

func (n *detachedNode) PropertyKeys() []string {
	keys := make([]string, 0, len(n.props))
	for k := range n.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// detachedRelationship is an immutable copy of a relationship.
type detachedRelationship struct {
	id         int64
	typ        string
	start, end int64
	props      map[string]Value
}

func (r *detachedRelationship) ID() int64          { return r.id }
func (r *detachedRelationship) RelType() string    { return r.typ }
func (r *detachedRelationship) StartNodeID() int64 { return r.start }
func (r *detachedRelationship) EndNodeID() int64   { return r.end }

func (r *detachedRelationship) Property(key string) Value {
	if v, ok := r.props[key]; ok {
		return v
	}
	return Null()
}

func (r *detachedRelationship) PropertyKeys() []string {
	keys := make([]string, 0, len(r.props))
	for k := range r.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DetachNode copies a node view into an immutable snapshot. Property values
// themselves are immutable (SET replaces them wholesale), so only the map
// and label slice are copied.
func DetachNode(n Node) Node {
	if _, ok := n.(*detachedNode); ok {
		return n
	}
	keys := n.PropertyKeys()
	props := make(map[string]Value, len(keys))
	for _, k := range keys {
		props[k] = n.Property(k)
	}
	return &detachedNode{id: n.ID(), labels: n.Labels(), props: props}
}

// DetachRelationship copies a relationship view into an immutable snapshot.
func DetachRelationship(r Relationship) Relationship {
	if _, ok := r.(*detachedRelationship); ok {
		return r
	}
	keys := r.PropertyKeys()
	props := make(map[string]Value, len(keys))
	for _, k := range keys {
		props[k] = r.Property(k)
	}
	return &detachedRelationship{
		id: r.ID(), typ: r.RelType(),
		start: r.StartNodeID(), end: r.EndNodeID(),
		props: props,
	}
}

// Detach returns a value in which every graph entity (including entities
// nested in lists, maps and paths) is replaced by an immutable snapshot.
// Scalar values are returned unchanged; containers are only re-allocated
// when they actually hold entities.
func Detach(v Value) Value {
	d, _ := detach(v)
	return d
}

// detach reports whether it had to copy, so containers of plain scalars can
// be returned as-is.
func detach(v Value) (Value, bool) {
	switch t := v.(type) {
	case NodeValue:
		if _, ok := t.N.(*detachedNode); ok {
			return v, false
		}
		return NodeValue{N: DetachNode(t.N)}, true
	case RelationshipValue:
		if _, ok := t.R.(*detachedRelationship); ok {
			return v, false
		}
		return RelationshipValue{R: DetachRelationship(t.R)}, true
	case PathValue:
		nodes := make([]Node, len(t.P.Nodes))
		for i, n := range t.P.Nodes {
			nodes[i] = DetachNode(n)
		}
		rels := make([]Relationship, len(t.P.Rels))
		for i, r := range t.P.Rels {
			rels[i] = DetachRelationship(r)
		}
		return PathValue{P: Path{Nodes: nodes, Rels: rels}}, true
	case List:
		elems := t.Elements()
		var out []Value
		for i, e := range elems {
			d, changed := detach(e)
			if changed && out == nil {
				out = make([]Value, len(elems))
				copy(out, elems[:i])
			}
			if out != nil {
				out[i] = d
			}
		}
		if out == nil {
			return v, false
		}
		return NewListOf(out), true
	case Map:
		var out map[string]Value
		for k, e := range t.Entries() {
			d, changed := detach(e)
			if changed && out == nil {
				out = make(map[string]Value, t.Len())
				for k2, e2 := range t.Entries() {
					out[k2] = e2
				}
			}
			if out != nil {
				out[k] = d
			}
		}
		if out == nil {
			return v, false
		}
		return NewMap(out), true
	default:
		return v, false
	}
}
