package value

import (
	"errors"
	"fmt"
	"math"
)

// ErrTypeMismatch is returned when an arithmetic operator is applied to
// operands of unsupported types.
var ErrTypeMismatch = errors.New("value: type mismatch")

// ErrDivisionByZero is returned for integer division or modulo by zero.
var ErrDivisionByZero = errors.New("value: division by zero")

// ErrIntegerOverflow is returned when integer arithmetic overflows int64.
var ErrIntegerOverflow = errors.New("value: integer overflow")

func typeMismatch(op string, a, b Value) error {
	return fmt.Errorf("%w: cannot apply %q to %s and %s", ErrTypeMismatch, op, a.Kind(), b.Kind())
}

// Add implements the Cypher `+` operator: numeric addition, string
// concatenation (a numeric operand next to a string is rendered into the
// string, so 'a' + 1 = 'a1' and 1 + 'a' = '1a', as in openCypher), and list
// concatenation (list + element appends). Any null operand yields null.
func Add(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	switch av := a.(type) {
	case Int:
		switch bv := b.(type) {
		case Int:
			s := int64(av) + int64(bv)
			if (int64(av) > 0 && int64(bv) > 0 && s < 0) || (int64(av) < 0 && int64(bv) < 0 && s >= 0) {
				return nil, ErrIntegerOverflow
			}
			return NewInt(s), nil
		case Float:
			return NewFloat(float64(av) + float64(bv)), nil
		case String:
			return NewString(av.String() + string(bv)), nil
		}
	case Float:
		if bs, ok := b.(String); ok {
			return NewString(av.String() + string(bs)), nil
		}
		if bf, ok := AsFloat(b); ok {
			return NewFloat(float64(av) + bf), nil
		}
	case String:
		switch bv := b.(type) {
		case String:
			return NewString(string(av) + string(bv)), nil
		case Int:
			return NewString(string(av) + bv.String()), nil
		case Float:
			return NewString(string(av) + bv.String()), nil
		}
	case List:
		if bl, ok := AsList(b); ok {
			elems := make([]Value, 0, av.Len()+bl.Len())
			elems = append(elems, av.Elements()...)
			elems = append(elems, bl.Elements()...)
			return NewListOf(elems), nil
		}
		elems := make([]Value, 0, av.Len()+1)
		elems = append(elems, av.Elements()...)
		elems = append(elems, b)
		return NewListOf(elems), nil
	}
	// element + list prepends.
	if bl, ok := AsList(b); ok {
		elems := make([]Value, 0, bl.Len()+1)
		elems = append(elems, a)
		elems = append(elems, bl.Elements()...)
		return NewListOf(elems), nil
	}
	return nil, typeMismatch("+", a, b)
}

// Sub implements the Cypher `-` operator on numbers.
func Sub(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok2 := b.(Int); ok2 {
			d := int64(ai) - int64(bi)
			if (int64(ai) >= 0 && int64(bi) < 0 && d < 0) || (int64(ai) < 0 && int64(bi) > 0 && d > 0) {
				return nil, ErrIntegerOverflow
			}
			return NewInt(d), nil
		}
	}
	if af, ok := AsFloat(a); ok {
		if bf, ok2 := AsFloat(b); ok2 {
			return NewFloat(af - bf), nil
		}
	}
	return nil, typeMismatch("-", a, b)
}

// Mul implements the Cypher `*` operator on numbers.
func Mul(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok2 := b.(Int); ok2 {
			x, y := int64(ai), int64(bi)
			p := x * y
			if x != 0 && (p/x != y) {
				return nil, ErrIntegerOverflow
			}
			return NewInt(p), nil
		}
	}
	if af, ok := AsFloat(a); ok {
		if bf, ok2 := AsFloat(b); ok2 {
			return NewFloat(af * bf), nil
		}
	}
	return nil, typeMismatch("*", a, b)
}

// Div implements the Cypher `/` operator: integer division truncates toward
// zero; mixing ints and floats yields floats.
func Div(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok2 := b.(Int); ok2 {
			if bi == 0 {
				return nil, ErrDivisionByZero
			}
			return NewInt(int64(ai) / int64(bi)), nil
		}
	}
	if af, ok := AsFloat(a); ok {
		if bf, ok2 := AsFloat(b); ok2 {
			return NewFloat(af / bf), nil
		}
	}
	return nil, typeMismatch("/", a, b)
}

// Mod implements the Cypher `%` operator.
func Mod(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok2 := b.(Int); ok2 {
			if bi == 0 {
				return nil, ErrDivisionByZero
			}
			return NewInt(int64(ai) % int64(bi)), nil
		}
	}
	if af, ok := AsFloat(a); ok {
		if bf, ok2 := AsFloat(b); ok2 {
			return NewFloat(math.Mod(af, bf)), nil
		}
	}
	return nil, typeMismatch("%", a, b)
}

// Pow implements the Cypher `^` operator; the result is always a float, as in
// openCypher.
func Pow(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return Null(), nil
	}
	af, aok := AsFloat(a)
	bf, bok := AsFloat(b)
	if !aok || !bok {
		return nil, typeMismatch("^", a, b)
	}
	return NewFloat(math.Pow(af, bf)), nil
}

// Neg implements unary minus.
func Neg(a Value) (Value, error) {
	if IsNull(a) {
		return Null(), nil
	}
	switch av := a.(type) {
	case Int:
		if int64(av) == math.MinInt64 {
			return nil, ErrIntegerOverflow
		}
		return NewInt(-int64(av)), nil
	case Float:
		return NewFloat(-float64(av)), nil
	}
	return nil, fmt.Errorf("%w: cannot negate %s", ErrTypeMismatch, a.Kind())
}
