package value

// Three-valued logic connectives (Section 4.3 "Logic": Cypher uses the same
// rules as SQL for AND, OR, NOT and XOR over true, false and null).

// And returns the three-valued conjunction of a and b.
func And(a, b Ternary) Ternary {
	switch {
	case a == FalseT || b == FalseT:
		return FalseT
	case a == TrueT && b == TrueT:
		return TrueT
	default:
		return UnknownT
	}
}

// Or returns the three-valued disjunction of a and b.
func Or(a, b Ternary) Ternary {
	switch {
	case a == TrueT || b == TrueT:
		return TrueT
	case a == FalseT && b == FalseT:
		return FalseT
	default:
		return UnknownT
	}
}

// Not returns the three-valued negation of a.
func Not(a Ternary) Ternary {
	switch a {
	case TrueT:
		return FalseT
	case FalseT:
		return TrueT
	default:
		return UnknownT
	}
}

// Xor returns the three-valued exclusive disjunction of a and b.
func Xor(a, b Ternary) Ternary {
	if a == UnknownT || b == UnknownT {
		return UnknownT
	}
	if (a == TrueT) != (b == TrueT) {
		return TrueT
	}
	return FalseT
}
